# Empty dependencies file for bench_xor_kernels.
# This may be replaced when dependencies are built.

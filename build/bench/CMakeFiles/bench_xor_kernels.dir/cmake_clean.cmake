file(REMOVE_RECURSE
  "CMakeFiles/bench_xor_kernels.dir/bench_xor_kernels.cc.o"
  "CMakeFiles/bench_xor_kernels.dir/bench_xor_kernels.cc.o.d"
  "bench_xor_kernels"
  "bench_xor_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xor_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_disk_model.
# This may be replaced when dependencies are built.

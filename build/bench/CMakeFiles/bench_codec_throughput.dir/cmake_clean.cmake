file(REMOVE_RECURSE
  "CMakeFiles/bench_codec_throughput.dir/bench_codec_throughput.cc.o"
  "CMakeFiles/bench_codec_throughput.dir/bench_codec_throughput.cc.o.d"
  "bench_codec_throughput"
  "bench_codec_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codec_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig6_normal_read.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig5_io_cost.
# This may be replaced when dependencies are built.

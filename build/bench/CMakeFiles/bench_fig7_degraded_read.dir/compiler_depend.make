# Empty compiler generated dependencies file for bench_fig7_degraded_read.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_extended_codes.dir/bench_extended_codes.cc.o"
  "CMakeFiles/bench_extended_codes.dir/bench_extended_codes.cc.o.d"
  "bench_extended_codes"
  "bench_extended_codes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extended_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_extended_codes.
# This may be replaced when dependencies are built.

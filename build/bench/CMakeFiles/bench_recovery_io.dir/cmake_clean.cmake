file(REMOVE_RECURSE
  "CMakeFiles/bench_recovery_io.dir/bench_recovery_io.cc.o"
  "CMakeFiles/bench_recovery_io.dir/bench_recovery_io.cc.o.d"
  "bench_recovery_io"
  "bench_recovery_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recovery_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

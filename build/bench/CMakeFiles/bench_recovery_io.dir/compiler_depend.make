# Empty compiler generated dependencies file for bench_recovery_io.
# This may be replaced when dependencies are built.

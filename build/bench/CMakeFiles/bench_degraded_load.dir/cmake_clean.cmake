file(REMOVE_RECURSE
  "CMakeFiles/bench_degraded_load.dir/bench_degraded_load.cc.o"
  "CMakeFiles/bench_degraded_load.dir/bench_degraded_load.cc.o.d"
  "bench_degraded_load"
  "bench_degraded_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_degraded_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_degraded_load.
# This may be replaced when dependencies are built.

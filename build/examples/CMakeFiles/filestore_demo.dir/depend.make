# Empty dependencies file for filestore_demo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/filestore_demo.dir/filestore_demo.cpp.o"
  "CMakeFiles/filestore_demo.dir/filestore_demo.cpp.o.d"
  "filestore_demo"
  "filestore_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filestore_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

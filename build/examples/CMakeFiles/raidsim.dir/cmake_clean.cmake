file(REMOVE_RECURSE
  "CMakeFiles/raidsim.dir/raidsim.cpp.o"
  "CMakeFiles/raidsim.dir/raidsim.cpp.o.d"
  "raidsim"
  "raidsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raidsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

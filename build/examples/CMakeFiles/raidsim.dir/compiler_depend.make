# Empty compiler generated dependencies file for raidsim.
# This may be replaced when dependencies are built.

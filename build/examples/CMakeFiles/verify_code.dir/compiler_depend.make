# Empty compiler generated dependencies file for verify_code.
# This may be replaced when dependencies are built.

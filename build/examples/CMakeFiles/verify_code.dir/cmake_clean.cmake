file(REMOVE_RECURSE
  "CMakeFiles/verify_code.dir/verify_code.cpp.o"
  "CMakeFiles/verify_code.dir/verify_code.cpp.o.d"
  "verify_code"
  "verify_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

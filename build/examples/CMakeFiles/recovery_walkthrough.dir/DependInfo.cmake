
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/recovery_walkthrough.cpp" "examples/CMakeFiles/recovery_walkthrough.dir/recovery_walkthrough.cpp.o" "gcc" "examples/CMakeFiles/recovery_walkthrough.dir/recovery_walkthrough.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dcode_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/raid/CMakeFiles/dcode_raid.dir/DependInfo.cmake"
  "/root/repo/build/src/codes/CMakeFiles/dcode_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/rs/CMakeFiles/dcode_rs.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/dcode_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/xorops/CMakeFiles/dcode_xorops.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcode_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/recovery_walkthrough.dir/recovery_walkthrough.cpp.o"
  "CMakeFiles/recovery_walkthrough.dir/recovery_walkthrough.cpp.o.d"
  "recovery_walkthrough"
  "recovery_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

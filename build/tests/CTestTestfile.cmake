# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/xorops_test[1]_include.cmake")
include("/root/repo/build/tests/gf_test[1]_include.cmake")
include("/root/repo/build/tests/rs_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/mds_test[1]_include.cmake")
include("/root/repo/build/tests/dcode_decoder_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/raid6_array_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/shortened_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/journal_test[1]_include.cmake")
include("/root/repo/build/tests/star_test[1]_include.cmake")
include("/root/repo/build/tests/volume_manager_test[1]_include.cmake")
include("/root/repo/build/tests/degraded_write_test[1]_include.cmake")
include("/root/repo/build/tests/decoder_properties_test[1]_include.cmake")
include("/root/repo/build/tests/address_map_test[1]_include.cmake")
include("/root/repo/build/tests/crash_rebuild_test[1]_include.cmake")
include("/root/repo/build/tests/reproduction_regression_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/reproduction_regression_test.dir/reproduction_regression_test.cc.o"
  "CMakeFiles/reproduction_regression_test.dir/reproduction_regression_test.cc.o.d"
  "reproduction_regression_test"
  "reproduction_regression_test.pdb"
  "reproduction_regression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reproduction_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for reproduction_regression_test.
# This may be replaced when dependencies are built.

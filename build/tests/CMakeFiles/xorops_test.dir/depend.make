# Empty dependencies file for xorops_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/xorops_test.dir/xorops_test.cc.o"
  "CMakeFiles/xorops_test.dir/xorops_test.cc.o.d"
  "xorops_test"
  "xorops_test.pdb"
  "xorops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xorops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

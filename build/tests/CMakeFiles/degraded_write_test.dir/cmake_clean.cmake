file(REMOVE_RECURSE
  "CMakeFiles/degraded_write_test.dir/degraded_write_test.cc.o"
  "CMakeFiles/degraded_write_test.dir/degraded_write_test.cc.o.d"
  "degraded_write_test"
  "degraded_write_test.pdb"
  "degraded_write_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degraded_write_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/decoder_properties_test.dir/decoder_properties_test.cc.o"
  "CMakeFiles/decoder_properties_test.dir/decoder_properties_test.cc.o.d"
  "decoder_properties_test"
  "decoder_properties_test.pdb"
  "decoder_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoder_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

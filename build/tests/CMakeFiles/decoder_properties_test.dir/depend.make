# Empty dependencies file for decoder_properties_test.
# This may be replaced when dependencies are built.

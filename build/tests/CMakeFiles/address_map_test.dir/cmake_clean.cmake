file(REMOVE_RECURSE
  "CMakeFiles/address_map_test.dir/address_map_test.cc.o"
  "CMakeFiles/address_map_test.dir/address_map_test.cc.o.d"
  "address_map_test"
  "address_map_test.pdb"
  "address_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/address_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for crash_rebuild_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/crash_rebuild_test.dir/crash_rebuild_test.cc.o"
  "CMakeFiles/crash_rebuild_test.dir/crash_rebuild_test.cc.o.d"
  "crash_rebuild_test"
  "crash_rebuild_test.pdb"
  "crash_rebuild_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_rebuild_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/shortened_test.dir/shortened_test.cc.o"
  "CMakeFiles/shortened_test.dir/shortened_test.cc.o.d"
  "shortened_test"
  "shortened_test.pdb"
  "shortened_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shortened_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for shortened_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dcode_decoder_test.dir/dcode_decoder_test.cc.o"
  "CMakeFiles/dcode_decoder_test.dir/dcode_decoder_test.cc.o.d"
  "dcode_decoder_test"
  "dcode_decoder_test.pdb"
  "dcode_decoder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcode_decoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

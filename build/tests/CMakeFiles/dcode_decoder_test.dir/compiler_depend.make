# Empty compiler generated dependencies file for dcode_decoder_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for raid6_array_test.
# This may be replaced when dependencies are built.

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for raid6_array_test.

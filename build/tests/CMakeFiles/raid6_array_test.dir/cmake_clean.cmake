file(REMOVE_RECURSE
  "CMakeFiles/raid6_array_test.dir/raid6_array_test.cc.o"
  "CMakeFiles/raid6_array_test.dir/raid6_array_test.cc.o.d"
  "raid6_array_test"
  "raid6_array_test.pdb"
  "raid6_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raid6_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

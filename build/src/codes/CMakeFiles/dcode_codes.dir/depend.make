# Empty dependencies file for dcode_codes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libdcode_codes.a"
)

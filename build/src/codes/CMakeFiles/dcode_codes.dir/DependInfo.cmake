
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codes/code_layout.cc" "src/codes/CMakeFiles/dcode_codes.dir/code_layout.cc.o" "gcc" "src/codes/CMakeFiles/dcode_codes.dir/code_layout.cc.o.d"
  "/root/repo/src/codes/dcode.cc" "src/codes/CMakeFiles/dcode_codes.dir/dcode.cc.o" "gcc" "src/codes/CMakeFiles/dcode_codes.dir/dcode.cc.o.d"
  "/root/repo/src/codes/dcode_decoder.cc" "src/codes/CMakeFiles/dcode_codes.dir/dcode_decoder.cc.o" "gcc" "src/codes/CMakeFiles/dcode_codes.dir/dcode_decoder.cc.o.d"
  "/root/repo/src/codes/decoder.cc" "src/codes/CMakeFiles/dcode_codes.dir/decoder.cc.o" "gcc" "src/codes/CMakeFiles/dcode_codes.dir/decoder.cc.o.d"
  "/root/repo/src/codes/encoder.cc" "src/codes/CMakeFiles/dcode_codes.dir/encoder.cc.o" "gcc" "src/codes/CMakeFiles/dcode_codes.dir/encoder.cc.o.d"
  "/root/repo/src/codes/evenodd.cc" "src/codes/CMakeFiles/dcode_codes.dir/evenodd.cc.o" "gcc" "src/codes/CMakeFiles/dcode_codes.dir/evenodd.cc.o.d"
  "/root/repo/src/codes/hcode.cc" "src/codes/CMakeFiles/dcode_codes.dir/hcode.cc.o" "gcc" "src/codes/CMakeFiles/dcode_codes.dir/hcode.cc.o.d"
  "/root/repo/src/codes/hdp.cc" "src/codes/CMakeFiles/dcode_codes.dir/hdp.cc.o" "gcc" "src/codes/CMakeFiles/dcode_codes.dir/hdp.cc.o.d"
  "/root/repo/src/codes/liberation.cc" "src/codes/CMakeFiles/dcode_codes.dir/liberation.cc.o" "gcc" "src/codes/CMakeFiles/dcode_codes.dir/liberation.cc.o.d"
  "/root/repo/src/codes/pcode.cc" "src/codes/CMakeFiles/dcode_codes.dir/pcode.cc.o" "gcc" "src/codes/CMakeFiles/dcode_codes.dir/pcode.cc.o.d"
  "/root/repo/src/codes/rdp.cc" "src/codes/CMakeFiles/dcode_codes.dir/rdp.cc.o" "gcc" "src/codes/CMakeFiles/dcode_codes.dir/rdp.cc.o.d"
  "/root/repo/src/codes/registry.cc" "src/codes/CMakeFiles/dcode_codes.dir/registry.cc.o" "gcc" "src/codes/CMakeFiles/dcode_codes.dir/registry.cc.o.d"
  "/root/repo/src/codes/shortened.cc" "src/codes/CMakeFiles/dcode_codes.dir/shortened.cc.o" "gcc" "src/codes/CMakeFiles/dcode_codes.dir/shortened.cc.o.d"
  "/root/repo/src/codes/star.cc" "src/codes/CMakeFiles/dcode_codes.dir/star.cc.o" "gcc" "src/codes/CMakeFiles/dcode_codes.dir/star.cc.o.d"
  "/root/repo/src/codes/stripe.cc" "src/codes/CMakeFiles/dcode_codes.dir/stripe.cc.o" "gcc" "src/codes/CMakeFiles/dcode_codes.dir/stripe.cc.o.d"
  "/root/repo/src/codes/xcode.cc" "src/codes/CMakeFiles/dcode_codes.dir/xcode.cc.o" "gcc" "src/codes/CMakeFiles/dcode_codes.dir/xcode.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dcode_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xorops/CMakeFiles/dcode_xorops.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

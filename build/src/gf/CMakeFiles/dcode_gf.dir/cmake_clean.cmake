file(REMOVE_RECURSE
  "CMakeFiles/dcode_gf.dir/bitmatrix.cc.o"
  "CMakeFiles/dcode_gf.dir/bitmatrix.cc.o.d"
  "CMakeFiles/dcode_gf.dir/gf.cc.o"
  "CMakeFiles/dcode_gf.dir/gf.cc.o.d"
  "CMakeFiles/dcode_gf.dir/gf_matrix.cc.o"
  "CMakeFiles/dcode_gf.dir/gf_matrix.cc.o.d"
  "libdcode_gf.a"
  "libdcode_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcode_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdcode_gf.a"
)

# Empty compiler generated dependencies file for dcode_gf.
# This may be replaced when dependencies are built.

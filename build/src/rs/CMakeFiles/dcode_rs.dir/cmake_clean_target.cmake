file(REMOVE_RECURSE
  "libdcode_rs.a"
)

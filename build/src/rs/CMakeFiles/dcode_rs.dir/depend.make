# Empty dependencies file for dcode_rs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dcode_rs.dir/cauchy_rs.cc.o"
  "CMakeFiles/dcode_rs.dir/cauchy_rs.cc.o.d"
  "CMakeFiles/dcode_rs.dir/reed_solomon.cc.o"
  "CMakeFiles/dcode_rs.dir/reed_solomon.cc.o.d"
  "libdcode_rs.a"
  "libdcode_rs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcode_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for dcode_xorops.
# This may be replaced when dependencies are built.

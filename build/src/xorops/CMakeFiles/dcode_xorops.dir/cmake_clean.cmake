file(REMOVE_RECURSE
  "CMakeFiles/dcode_xorops.dir/xor_region.cc.o"
  "CMakeFiles/dcode_xorops.dir/xor_region.cc.o.d"
  "libdcode_xorops.a"
  "libdcode_xorops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcode_xorops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

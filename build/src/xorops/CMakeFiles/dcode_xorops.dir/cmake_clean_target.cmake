file(REMOVE_RECURSE
  "libdcode_xorops.a"
)

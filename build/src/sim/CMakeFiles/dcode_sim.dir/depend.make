# Empty dependencies file for dcode_sim.
# This may be replaced when dependencies are built.

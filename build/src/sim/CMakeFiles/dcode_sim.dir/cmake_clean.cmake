file(REMOVE_RECURSE
  "CMakeFiles/dcode_sim.dir/disk_model.cc.o"
  "CMakeFiles/dcode_sim.dir/disk_model.cc.o.d"
  "CMakeFiles/dcode_sim.dir/experiments.cc.o"
  "CMakeFiles/dcode_sim.dir/experiments.cc.o.d"
  "CMakeFiles/dcode_sim.dir/trace.cc.o"
  "CMakeFiles/dcode_sim.dir/trace.cc.o.d"
  "CMakeFiles/dcode_sim.dir/workload.cc.o"
  "CMakeFiles/dcode_sim.dir/workload.cc.o.d"
  "libdcode_sim.a"
  "libdcode_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcode_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/disk_model.cc" "src/sim/CMakeFiles/dcode_sim.dir/disk_model.cc.o" "gcc" "src/sim/CMakeFiles/dcode_sim.dir/disk_model.cc.o.d"
  "/root/repo/src/sim/experiments.cc" "src/sim/CMakeFiles/dcode_sim.dir/experiments.cc.o" "gcc" "src/sim/CMakeFiles/dcode_sim.dir/experiments.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/dcode_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/dcode_sim.dir/trace.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/sim/CMakeFiles/dcode_sim.dir/workload.cc.o" "gcc" "src/sim/CMakeFiles/dcode_sim.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/raid/CMakeFiles/dcode_raid.dir/DependInfo.cmake"
  "/root/repo/build/src/codes/CMakeFiles/dcode_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcode_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xorops/CMakeFiles/dcode_xorops.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

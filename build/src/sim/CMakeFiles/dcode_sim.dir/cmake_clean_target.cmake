file(REMOVE_RECURSE
  "libdcode_sim.a"
)

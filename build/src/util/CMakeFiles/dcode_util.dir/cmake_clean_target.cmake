file(REMOVE_RECURSE
  "libdcode_util.a"
)

# Empty compiler generated dependencies file for dcode_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dcode_util.dir/primes.cc.o"
  "CMakeFiles/dcode_util.dir/primes.cc.o.d"
  "CMakeFiles/dcode_util.dir/table.cc.o"
  "CMakeFiles/dcode_util.dir/table.cc.o.d"
  "CMakeFiles/dcode_util.dir/thread_pool.cc.o"
  "CMakeFiles/dcode_util.dir/thread_pool.cc.o.d"
  "libdcode_util.a"
  "libdcode_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcode_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdcode_raid.a"
)

# Empty dependencies file for dcode_raid.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dcode_raid.dir/planner.cc.o"
  "CMakeFiles/dcode_raid.dir/planner.cc.o.d"
  "CMakeFiles/dcode_raid.dir/raid6_array.cc.o"
  "CMakeFiles/dcode_raid.dir/raid6_array.cc.o.d"
  "CMakeFiles/dcode_raid.dir/recovery.cc.o"
  "CMakeFiles/dcode_raid.dir/recovery.cc.o.d"
  "CMakeFiles/dcode_raid.dir/volume_manager.cc.o"
  "CMakeFiles/dcode_raid.dir/volume_manager.cc.o.d"
  "libdcode_raid.a"
  "libdcode_raid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcode_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/raid/planner.cc" "src/raid/CMakeFiles/dcode_raid.dir/planner.cc.o" "gcc" "src/raid/CMakeFiles/dcode_raid.dir/planner.cc.o.d"
  "/root/repo/src/raid/raid6_array.cc" "src/raid/CMakeFiles/dcode_raid.dir/raid6_array.cc.o" "gcc" "src/raid/CMakeFiles/dcode_raid.dir/raid6_array.cc.o.d"
  "/root/repo/src/raid/recovery.cc" "src/raid/CMakeFiles/dcode_raid.dir/recovery.cc.o" "gcc" "src/raid/CMakeFiles/dcode_raid.dir/recovery.cc.o.d"
  "/root/repo/src/raid/volume_manager.cc" "src/raid/CMakeFiles/dcode_raid.dir/volume_manager.cc.o" "gcc" "src/raid/CMakeFiles/dcode_raid.dir/volume_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codes/CMakeFiles/dcode_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/xorops/CMakeFiles/dcode_xorops.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcode_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

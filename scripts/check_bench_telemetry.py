#!/usr/bin/env python3
"""Validate bench telemetry documents against scripts/bench_schema.json.

Usage:
    check_bench_telemetry.py FILE [FILE ...]
    check_bench_telemetry.py --run BENCH_BINARY [ARGS ...]

The first form validates already-written telemetry files. The second runs
a bench binary with a temporary --json path and validates what it wrote —
the mode the ctest/CI hooks use.

Only the Python standard library is used: the validator implements the
subset of JSON Schema draft-07 that bench_schema.json needs (type,
required, properties, additionalProperties, items, enum, const, minimum,
pattern). Growing the schema may require growing the validator; it fails
loudly on keywords it does not understand.
"""

import json
import os
import re
import subprocess
import sys
import tempfile

HANDLED = {
    "$schema", "title", "description",
    "type", "required", "properties", "additionalProperties", "items",
    "enum", "const", "minimum", "pattern",
    # Extension, applied by check_bench_contract() rather than validate():
    # per-bench required results/runtime-metric names.
    "x-bench-required",
}

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; exclude it explicitly.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate(value, schema, path, errors):
    unknown = set(schema) - HANDLED
    if unknown:
        raise SystemExit(
            f"bench_schema.json uses unimplemented keywords {sorted(unknown)}; "
            "teach check_bench_telemetry.py about them")

    if "const" in schema:
        if value != schema["const"]:
            errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
        return
    if "enum" in schema:
        if value not in schema["enum"]:
            errors.append(f"{path}: {value!r} not one of {schema['enum']}")
        return

    if "type" in schema:
        types = schema["type"]
        if isinstance(types, str):
            types = [types]
        if not any(TYPE_CHECKS[t](value) for t in types):
            errors.append(f"{path}: expected {'/'.join(types)}, "
                          f"got {type(value).__name__}")
            return

    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} below minimum {schema['minimum']}")

    if "pattern" in schema and isinstance(value, str):
        if not re.search(schema["pattern"], value):
            errors.append(f"{path}: {value!r} does not match "
                          f"{schema['pattern']!r}")

    if isinstance(value, dict):
        props = schema.get("properties", {})
        for req in schema.get("required", []):
            if req not in value:
                errors.append(f"{path}: missing required key {req!r}")
        extra = schema.get("additionalProperties", True)
        for key, sub in value.items():
            if key in props:
                validate(sub, props[key], f"{path}.{key}", errors)
            elif isinstance(extra, dict):
                validate(sub, extra, f"{path}.{key}", errors)
            elif extra is False:
                errors.append(f"{path}: unexpected key {key!r}")

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def check_bench_contract(doc, schema, errors):
    """Apply the x-bench-required contract: benches with a listed profile
    must emit every required result metric (meeting any results_min_rows
    row-count floor) and every required runtime metric name."""
    contract = schema.get("x-bench-required", {}).get(doc.get("bench"))
    if not isinstance(contract, dict):
        return
    counts = {}
    for r in doc.get("results", []):
        if isinstance(r, dict):
            counts[r.get("metric")] = counts.get(r.get("metric"), 0) + 1
    for metric in contract.get("results", []):
        if metric not in counts:
            errors.append(f"$.results: bench {doc['bench']!r} must emit "
                          f"metric {metric!r} (x-bench-required)")
    for metric, floor in contract.get("results_min_rows", {}).items():
        if metric == "description":
            continue
        if counts.get(metric, 0) < floor:
            errors.append(
                f"$.results: bench {doc['bench']!r} must emit >= {floor} "
                f"rows of {metric!r}, found {counts.get(metric, 0)} "
                f"(x-bench-required results_min_rows)")
    runtime = {m.get("name")
               for m in doc.get("runtime_metrics", {}).get("metrics", [])
               if isinstance(m, dict)}
    for name in contract.get("runtime_metrics", []):
        if name not in runtime:
            errors.append(f"$.runtime_metrics: bench {doc['bench']!r} must "
                          f"record {name!r} (x-bench-required)")


def check_file(path, schema):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL {path}: {e}")
        return False
    errors = []
    validate(doc, schema, "$", errors)
    if isinstance(doc, dict):
        check_bench_contract(doc, schema, errors)
    if errors:
        print(f"FAIL {path}:")
        for e in errors:
            print(f"  {e}")
        return False
    n = len(doc["results"])
    m = len(doc["runtime_metrics"]["metrics"])
    print(f"OK   {path}: bench={doc['bench']} version={doc['version']} "
          f"results={n} runtime_metrics={m}")
    return True


def main(argv):
    schema_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "bench_schema.json")
    with open(schema_path) as f:
        schema = json.load(f)

    if not argv:
        print(__doc__)
        return 2

    if argv[0] == "--run":
        if len(argv) < 2:
            print("--run needs a bench binary", file=sys.stderr)
            return 2
        with tempfile.TemporaryDirectory() as tmp:
            out = os.path.join(tmp, "telemetry.json")
            cmd = [argv[1], "--json", out] + argv[2:]
            proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
            if proc.returncode != 0:
                print(f"FAIL {argv[1]}: exit code {proc.returncode}")
                return 1
            return 0 if check_file(out, schema) else 1

    ok = all([check_file(p, schema) for p in argv])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#include "rs/cauchy_rs.h"

#include <cstring>

#include "util/check.h"

namespace dcode::rs {

CauchyRsCodec::CauchyRsCodec(int k, int m, int w, bool smart)
    : k_(k), m_(m), w_(w), smart_(smart), field_(gf::field_for(w)) {
  DCODE_CHECK(k > 0 && m > 0, "k and m must be positive");
  DCODE_CHECK(static_cast<uint32_t>(k + m) <= field_.size(),
              "k + m must fit in GF(2^w)");
  coding_matrix_ = gf::cauchy_coding_matrix(field_, k, m);
  gf::BitMatrix bm = gf::to_bitmatrix(field_, coding_matrix_);
  encode_schedule_ = smart ? gf::smart_schedule(bm, k, m, w)
                           : gf::dumb_schedule(bm, k, m, w);
}

size_t CauchyRsCodec::schedule_xors() const {
  size_t n = 0;
  for (const auto& op : encode_schedule_) n += op.assign ? 0 : 1;
  return n;
}

void CauchyRsCodec::encode(std::span<const uint8_t* const> data,
                           std::span<uint8_t* const> coding,
                           size_t size) const {
  DCODE_CHECK(static_cast<int>(data.size()) == k_, "expected k data buffers");
  DCODE_CHECK(static_cast<int>(coding.size()) == m_,
              "expected m coding buffers");
  std::vector<const uint8_t*> d(data.begin(), data.end());
  std::vector<uint8_t*> c(coding.begin(), coding.end());
  gf::apply_schedule(encode_schedule_, d, c, w_, size);
}

bool CauchyRsCodec::decode(std::span<uint8_t* const> data,
                           std::span<uint8_t* const> coding,
                           std::span<const int> erased, size_t size) const {
  DCODE_CHECK(static_cast<int>(erased.size()) <= m_,
              "cannot repair more than m erasures");
  std::vector<bool> is_erased(static_cast<size_t>(k_ + m_), false);
  for (int id : erased) {
    DCODE_CHECK(id >= 0 && id < k_ + m_, "erasure id out of range");
    is_erased[static_cast<size_t>(id)] = true;
  }

  // Build the surviving k x k field matrix and its survivor buffer list.
  gf::Matrix survive(k_, k_);
  std::vector<const uint8_t*> survivors;
  int filled = 0;
  for (int j = 0; j < k_ && filled < k_; ++j) {
    if (is_erased[static_cast<size_t>(j)]) continue;
    survive.at(filled, j) = 1;
    survivors.push_back(data[j]);
    ++filled;
  }
  for (int i = 0; i < m_ && filled < k_; ++i) {
    if (is_erased[static_cast<size_t>(k_ + i)]) continue;
    for (int j = 0; j < k_; ++j) survive.at(filled, j) = coding_matrix_.at(i, j);
    survivors.push_back(coding[i]);
    ++filled;
  }
  if (filled < k_) return false;

  gf::Matrix inv;
  if (!gf::invert(field_, survive, &inv)) return false;

  // Repair data devices via a bit-matrix schedule over the survivor list.
  std::vector<int> lost_data;
  for (int id : erased) {
    if (id < k_) lost_data.push_back(id);
  }
  if (!lost_data.empty()) {
    gf::Matrix repair(static_cast<int>(lost_data.size()), k_);
    for (size_t r = 0; r < lost_data.size(); ++r) {
      for (int j = 0; j < k_; ++j) {
        repair.at(static_cast<int>(r), j) = inv.at(lost_data[r], j);
      }
    }
    gf::BitMatrix bm = gf::to_bitmatrix(field_, repair);
    auto schedule =
        smart_ ? gf::smart_schedule(bm, k_, static_cast<int>(lost_data.size()), w_)
               : gf::dumb_schedule(bm, k_, static_cast<int>(lost_data.size()), w_);
    std::vector<uint8_t*> out;
    out.reserve(lost_data.size());
    for (int id : lost_data) out.push_back(data[id]);
    gf::apply_schedule(schedule, survivors, out, w_, size);
  }

  // Re-encode lost coding devices from complete data.
  std::vector<int> lost_coding;
  for (int id : erased) {
    if (id >= k_) lost_coding.push_back(id - k_);
  }
  if (!lost_coding.empty()) {
    gf::Matrix rows(static_cast<int>(lost_coding.size()), k_);
    for (size_t r = 0; r < lost_coding.size(); ++r) {
      for (int j = 0; j < k_; ++j) {
        rows.at(static_cast<int>(r), j) = coding_matrix_.at(lost_coding[r], j);
      }
    }
    gf::BitMatrix bm = gf::to_bitmatrix(field_, rows);
    auto schedule =
        smart_ ? gf::smart_schedule(bm, k_, static_cast<int>(lost_coding.size()), w_)
               : gf::dumb_schedule(bm, k_, static_cast<int>(lost_coding.size()), w_);
    std::vector<const uint8_t*> d(data.begin(), data.end());
    std::vector<uint8_t*> out;
    out.reserve(lost_coding.size());
    for (int i : lost_coding) out.push_back(coding[i]);
    gf::apply_schedule(schedule, d, out, w_, size);
  }
  return true;
}

}  // namespace dcode::rs

#include "rs/reed_solomon.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"
#include "xorops/xor_region.h"

namespace dcode::rs {

RsCodec::RsCodec(int k, int m, int w, GeneratorKind kind)
    : k_(k), m_(m), w_(w), field_(gf::field_for(w)) {
  DCODE_CHECK(k > 0 && m > 0, "k and m must be positive");
  DCODE_CHECK(static_cast<uint32_t>(k + m) <= field_.size(),
              "k + m must fit in GF(2^w)");
  coding_matrix_ = kind == GeneratorKind::kCauchy
                       ? gf::cauchy_coding_matrix(field_, k, m)
                       : gf::vandermonde_coding_matrix(field_, k, m);
}

void RsCodec::encode(std::span<const uint8_t* const> data,
                     std::span<uint8_t* const> coding, size_t size) const {
  DCODE_CHECK(static_cast<int>(data.size()) == k_, "expected k data buffers");
  DCODE_CHECK(static_cast<int>(coding.size()) == m_,
              "expected m coding buffers");
  for (int i = 0; i < m_; ++i) {
    bool first = true;
    for (int j = 0; j < k_; ++j) {
      uint32_t c = coding_matrix_.at(i, j);
      if (c == 0) {
        if (first) std::memset(coding[i], 0, size);
        first = false;
        continue;
      }
      field_.mul_region(coding[i], data[j], c, size, /*accumulate=*/!first);
      first = false;
    }
  }
}

bool RsCodec::decode(std::span<uint8_t* const> data,
                     std::span<uint8_t* const> coding,
                     std::span<const int> erased, size_t size) const {
  DCODE_CHECK(static_cast<int>(data.size()) == k_, "expected k data buffers");
  DCODE_CHECK(static_cast<int>(coding.size()) == m_,
              "expected m coding buffers");
  DCODE_CHECK(static_cast<int>(erased.size()) <= m_,
              "cannot repair more than m erasures");

  std::vector<bool> is_erased(static_cast<size_t>(k_ + m_), false);
  for (int id : erased) {
    DCODE_CHECK(id >= 0 && id < k_ + m_, "erasure id out of range");
    is_erased[static_cast<size_t>(id)] = true;
  }

  // Select k surviving rows of the generator [I; C]: data row j is the unit
  // row e_j; coding row i is coding_matrix_ row i.
  gf::Matrix survive(k_, k_);
  std::vector<const uint8_t*> survivors;
  survivors.reserve(static_cast<size_t>(k_));
  int filled = 0;
  for (int j = 0; j < k_ && filled < k_; ++j) {
    if (is_erased[static_cast<size_t>(j)]) continue;
    survive.at(filled, j) = 1;
    survivors.push_back(data[j]);
    ++filled;
  }
  for (int i = 0; i < m_ && filled < k_; ++i) {
    if (is_erased[static_cast<size_t>(k_ + i)]) continue;
    for (int j = 0; j < k_; ++j) survive.at(filled, j) = coding_matrix_.at(i, j);
    survivors.push_back(coding[i]);
    ++filled;
  }
  if (filled < k_) return false;  // not enough survivors

  gf::Matrix inv;
  if (!gf::invert(field_, survive, &inv)) return false;

  // Recover erased data devices: data_j = sum_l inv[j][l] * survivor_l.
  for (int id : erased) {
    if (id >= k_) continue;
    uint8_t* dst = data[id];
    bool first = true;
    for (int l = 0; l < k_; ++l) {
      uint32_t c = inv.at(id, l);
      if (c == 0) {
        if (first) std::memset(dst, 0, size);
        first = false;
        continue;
      }
      field_.mul_region(dst, survivors[static_cast<size_t>(l)], c, size,
                        !first);
      first = false;
    }
  }

  // Re-encode erased coding devices from the (now complete) data.
  for (int id : erased) {
    if (id < k_) continue;
    int i = id - k_;
    bool first = true;
    for (int j = 0; j < k_; ++j) {
      uint32_t c = coding_matrix_.at(i, j);
      if (c == 0) {
        if (first) std::memset(coding[i], 0, size);
        first = false;
        continue;
      }
      field_.mul_region(coding[i], data[j], c, size, !first);
      first = false;
    }
  }
  return true;
}

Raid6PqCodec::Raid6PqCodec(int k) : k_(k), field_(gf::gf8()) {
  DCODE_CHECK(k >= 1 && k <= 255, "RAID-6 P/Q supports 1..255 data disks");
}

void Raid6PqCodec::encode(std::span<const uint8_t* const> data, uint8_t* p,
                          uint8_t* q, size_t size) const {
  DCODE_CHECK(static_cast<int>(data.size()) == k_, "expected k data buffers");
  std::memcpy(p, data[0], size);
  field_.mul_region(q, data[0], field_.exp(0), size, /*accumulate=*/false);
  for (int i = 1; i < k_; ++i) {
    xorops::xor_into(p, data[i], size);
    field_.mul_region(q, data[i], field_.exp(static_cast<uint32_t>(i)), size,
                      /*accumulate=*/true);
  }
}

void Raid6PqCodec::decode(std::span<uint8_t* const> data, uint8_t* p,
                          uint8_t* q, std::span<const int> erased,
                          size_t size) const {
  DCODE_CHECK(static_cast<int>(data.size()) == k_, "expected k data buffers");
  DCODE_CHECK(erased.size() >= 1 && erased.size() <= 2,
              "RAID-6 recovers one or two erasures");

  // Normalize: ids 0..k-1 data, k = P, k+1 = Q.
  std::vector<int> ids(erased.begin(), erased.end());
  std::sort(ids.begin(), ids.end());
  for (int id : ids)
    DCODE_CHECK(id >= 0 && id <= k_ + 1, "erasure id out of range");

  auto reencode_p = [&] {
    std::memcpy(p, data[0], size);
    for (int i = 1; i < k_; ++i) xorops::xor_into(p, data[i], size);
  };
  auto reencode_q = [&] {
    field_.mul_region(q, data[0], 1, size, false);
    for (int i = 1; i < k_; ++i) {
      field_.mul_region(q, data[i], field_.exp(static_cast<uint32_t>(i)),
                        size, true);
    }
  };

  if (ids.size() == 1) {
    int id = ids[0];
    if (id == k_) {
      reencode_p();
    } else if (id == k_ + 1) {
      reencode_q();
    } else {
      // Single data erasure: cheapest via P.
      std::memcpy(data[id], p, size);
      for (int i = 0; i < k_; ++i) {
        if (i != id) xorops::xor_into(data[id], data[i], size);
      }
    }
    return;
  }

  const int a = ids[0], b = ids[1];
  if (a == k_ && b == k_ + 1) {
    // Lost both parities: recompute.
    reencode_p();
    reencode_q();
  } else if (b == k_) {
    // Data + P: recover the data element via Q, then P.
    uint8_t* dst = data[a];
    // dst = (Q ^ sum_{i != a} g^i d_i) * g^{-a}
    field_.mul_region(dst, q, 1, size, false);
    for (int i = 0; i < k_; ++i) {
      if (i == a) continue;
      field_.mul_region(dst, data[i], field_.exp(static_cast<uint32_t>(i)),
                        size, true);
    }
    uint32_t ginv = field_.inverse(field_.exp(static_cast<uint32_t>(a)));
    field_.mul_region(dst, dst, ginv, size, false);
    reencode_p();
  } else if (b == k_ + 1) {
    // Data + Q: recover the data element via P, then Q.
    uint8_t* dst = data[a];
    std::memcpy(dst, p, size);
    for (int i = 0; i < k_; ++i) {
      if (i != a) xorops::xor_into(dst, data[i], size);
    }
    reencode_q();
  } else {
    // Two data erasures a < b: the textbook RAID-6 double recovery.
    //   Pxor = P ^ sum_{i != a,b} d_i          (= d_a ^ d_b)
    //   Qxor = Q ^ sum_{i != a,b} g^i d_i      (= g^a d_a ^ g^b d_b)
    //   d_a  = (g^{b-a} Pxor ^ g^{-a} Qxor... ) — we use the direct form:
    //   d_a  = (Qxor ^ g^b * Pxor) / (g^a ^ g^b),  d_b = Pxor ^ d_a.
    std::vector<uint8_t> pxor(size), qxor(size);
    std::memcpy(pxor.data(), p, size);
    field_.mul_region(qxor.data(), q, 1, size, false);
    for (int i = 0; i < k_; ++i) {
      if (i == a || i == b) continue;
      xorops::xor_into(pxor.data(), data[i], size);
      field_.mul_region(qxor.data(), data[i],
                        field_.exp(static_cast<uint32_t>(i)), size, true);
    }
    uint32_t ga = field_.exp(static_cast<uint32_t>(a));
    uint32_t gb = field_.exp(static_cast<uint32_t>(b));
    uint32_t denom_inv = field_.inverse(ga ^ gb);

    uint8_t* da = data[a];
    uint8_t* db = data[b];
    // da = (qxor ^ gb * pxor) * denom_inv
    field_.mul_region(da, pxor.data(), gb, size, false);
    xorops::xor_into(da, qxor.data(), size);
    field_.mul_region(da, da, denom_inv, size, false);
    // db = pxor ^ da
    xorops::xor_assign(db, pxor.data(), da, size);
  }
}

}  // namespace dcode::rs

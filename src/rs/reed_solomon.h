// Matrix Reed–Solomon erasure codec (jerasure-1.2 style API).
//
// The paper implements every code on top of Jerasure; since Jerasure is
// not available offline we provide the same functionality natively:
//   * RsCodec        — generator-matrix encode / inverted-matrix decode
//                      over GF(2^w), with Cauchy or distilled-Vandermonde
//                      generators (both MDS);
//   * Raid6PqCodec   — the classic P/Q RAID-6 specialization
//                      (P = xor(d_i), Q = xor(g^i * d_i) over GF(2^8))
//                      with closed-form two-erasure recovery.
//
// These serve as the "horizontal, GF-arithmetic" baselines the XOR array
// codes are measured against in bench_codec_throughput.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gf/gf_matrix.h"

namespace dcode::rs {

enum class GeneratorKind { kCauchy, kVandermonde };

// Buffers are caller-owned; `data` has k spans, `coding` has m spans, all
// the same size. Erasure ids: 0..k-1 = data devices, k..k+m-1 = coding.
class RsCodec {
 public:
  RsCodec(int k, int m, int w, GeneratorKind kind = GeneratorKind::kCauchy);

  int k() const { return k_; }
  int m() const { return m_; }
  int w() const { return w_; }
  const gf::Matrix& coding_matrix() const { return coding_matrix_; }

  void encode(std::span<const uint8_t* const> data,
              std::span<uint8_t* const> coding, size_t size) const;

  // Repairs the devices listed in `erased` (any mix of data and coding ids,
  // at most m of them) in place. All non-erased buffers must hold valid
  // content. Returns false only if the erasure pattern is unrecoverable
  // (cannot happen for an MDS generator with |erased| <= m; kept for API
  // robustness).
  bool decode(std::span<uint8_t* const> data, std::span<uint8_t* const> coding,
              std::span<const int> erased, size_t size) const;

 private:
  int k_, m_, w_;
  const gf::GaloisField& field_;
  gf::Matrix coding_matrix_;  // m x k
};

// Fixed RAID-6 P/Q codec over GF(2^8): m = 2, k <= 255.
class Raid6PqCodec {
 public:
  explicit Raid6PqCodec(int k);

  int k() const { return k_; }

  void encode(std::span<const uint8_t* const> data, uint8_t* p, uint8_t* q,
              size_t size) const;

  // Closed-form recovery for every one- and two-erasure pattern:
  // {data}, {p}, {q}, {data,data}, {data,p}, {data,q}, {p,q}.
  void decode(std::span<uint8_t* const> data, uint8_t* p, uint8_t* q,
              std::span<const int> erased, size_t size) const;

 private:
  int k_;
  const gf::GaloisField& field_;
};

}  // namespace dcode::rs

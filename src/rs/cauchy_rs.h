// Cauchy Reed–Solomon codec with bit-matrix scheduling (XOR-only).
//
// Encoding never multiplies in the field: the generator is expanded to a
// binary matrix once and executed as a schedule of packet XORs (see
// gf/bitmatrix.h). Decoding inverts the surviving field matrix, expands
// the repair rows to bits, and replays them the same way. This mirrors
// jerasure's cauchy_* path and is the fairest "general-purpose code" of
// the era to benchmark the specialized RAID-6 array codes against.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gf/bitmatrix.h"

namespace dcode::rs {

class CauchyRsCodec {
 public:
  // `smart` selects jerasure's differential schedule.
  CauchyRsCodec(int k, int m, int w, bool smart = true);

  int k() const { return k_; }
  int m() const { return m_; }
  int w() const { return w_; }
  size_t schedule_xors() const;  // XOR op count, for the complexity bench

  // Buffer sizes must be divisible by w (packets).
  void encode(std::span<const uint8_t* const> data,
              std::span<uint8_t* const> coding, size_t size) const;

  bool decode(std::span<uint8_t* const> data, std::span<uint8_t* const> coding,
              std::span<const int> erased, size_t size) const;

 private:
  int k_, m_, w_;
  bool smart_;
  const gf::GaloisField& field_;
  gf::Matrix coding_matrix_;
  std::vector<gf::ScheduleOp> encode_schedule_;
};

}  // namespace dcode::rs

#include "sim/experiments.h"

#include <algorithm>

#include "raid/planner.h"
#include "util/rng.h"

namespace dcode::sim {

using raid::AddressMap;
using raid::IoPlan;
using raid::IoPlanner;

LoadResult run_load_experiment(const codes::CodeLayout& layout,
                               WorkloadKind kind, WorkloadParams params,
                               bool rotate) {
  AddressMap map(layout, rotate);
  IoPlanner planner(map);

  params.start_space = layout.data_count();
  std::vector<Op> ops = generate_workload(kind, params);

  IoStats stats(layout.cols());
  for (const Op& op : ops) {
    IoPlan plan = op.is_write ? planner.plan_write(op.start, op.len)
                              : planner.plan_read(op.start, op.len);
    stats.accumulate(plan, op.times);
  }
  return LoadResult{stats, stats.load_balancing_factor(), stats.total()};
}

LoadResult run_load_experiment(const codes::CodeLayout& layout,
                               WorkloadKind kind, uint64_t seed, bool rotate,
                               int operations) {
  WorkloadParams params;
  params.operations = operations;
  params.seed = seed;
  return run_load_experiment(layout, kind, params, rotate);
}

SpeedResult run_normal_read_experiment(const codes::CodeLayout& layout,
                                       uint64_t seed,
                                       const DiskModelParams& params,
                                       int operations) {
  AddressMap map(layout);
  IoPlanner planner(map);
  Pcg32 rng(seed);

  std::vector<double> disk_ms(static_cast<size_t>(layout.cols()), 0.0);
  int64_t total_bytes = 0;
  int64_t element_reads = 0;
  for (int i = 0; i < operations; ++i) {
    int64_t start = static_cast<int64_t>(
        rng.next_u64() % static_cast<uint64_t>(layout.data_count()));
    int len = rng.next_in_range(1, 20);
    IoPlan plan = planner.plan_read(start, len);
    auto t = plan_disk_times_ms(plan, layout.cols(), params);
    for (int d = 0; d < layout.cols(); ++d)
      disk_ms[static_cast<size_t>(d)] += t[static_cast<size_t>(d)];
    total_bytes += static_cast<int64_t>(len) *
                   static_cast<int64_t>(params.element_bytes);
    element_reads += plan.total();
  }
  // Throughput view: elapsed time is the busiest disk's total service.
  double total_ms = *std::max_element(disk_ms.begin(), disk_ms.end());
  double mb = static_cast<double>(total_bytes) / (1024.0 * 1024.0);
  double speed = mb / (total_ms / 1000.0);
  return SpeedResult{speed, speed / layout.cols(), element_reads};
}

SpeedResult run_degraded_read_experiment(const codes::CodeLayout& layout,
                                         uint64_t seed,
                                         const DiskModelParams& params,
                                         int operations_per_case) {
  AddressMap map(layout);
  IoPlanner planner(map);
  Pcg32 rng(seed);

  double total_ms = 0.0;
  int64_t total_bytes = 0;
  int64_t element_reads = 0;
  for (int failed = 0; failed < layout.cols(); ++failed) {
    // Only disks hosting data constitute "data disk failure cases".
    if (layout.parity_elements_on_disk(failed) == layout.rows()) continue;
    int fd[1] = {failed};
    std::vector<double> disk_ms(static_cast<size_t>(layout.cols()), 0.0);
    for (int i = 0; i < operations_per_case; ++i) {
      int64_t start = static_cast<int64_t>(
          rng.next_u64() % static_cast<uint64_t>(layout.data_count()));
      int len = rng.next_in_range(1, 20);
      IoPlan plan = planner.plan_degraded_read(start, len, fd);
      auto t = plan_disk_times_ms(plan, layout.cols(), params);
      for (int d = 0; d < layout.cols(); ++d)
        disk_ms[static_cast<size_t>(d)] += t[static_cast<size_t>(d)];
      total_bytes += static_cast<int64_t>(len) *
                     static_cast<int64_t>(params.element_bytes);
      element_reads += plan.total();
    }
    total_ms += *std::max_element(disk_ms.begin(), disk_ms.end());
  }
  double mb = static_cast<double>(total_bytes) / (1024.0 * 1024.0);
  double speed = mb / (total_ms / 1000.0);
  return SpeedResult{speed, speed / layout.cols(), element_reads};
}

}  // namespace dcode::sim

// Analytic disk service-time model — the substitute for the paper's
// 16-disk Savvio 10K.3 array (DESIGN.md §4).
//
// Model: disks serve their accesses in parallel; one operation's latency
// is the busiest disk's service time. Per disk, accesses to consecutive
// rows of the same stripe merge into one positioning delay plus a longer
// transfer (a real drive services them as one sequential request):
//
//   t_disk = runs * positioning + elements * element_bytes / bandwidth
//   t_op   = max over disks of t_disk            (latency view)
//
// Positioning = average seek + half-rotation, defaulting to 10k-RPM SAS
// figures (3.8 ms seek, 3.0 ms rotational latency). The read-speed
// experiments use the *throughput* view: per-disk service times accumulate
// across the whole workload and the elapsed time is the busiest disk's
// total (disks are parallel servers kept busy by the benchmark client, as
// in the paper's aggregate MB/s measurements) — this is exactly where
// "the parity disks contribute nothing to normal reads" turns into lower
// MB/s for the horizontal codes.
#pragma once

#include <cstddef>
#include <vector>

#include "raid/io_plan.h"

namespace dcode::sim {

struct DiskModelParams {
  double seek_ms = 3.8;           // average seek, Savvio 10K.3 class
  double rotational_ms = 3.0;     // half a rotation at 10k RPM
  double bandwidth_mb_s = 150.0;  // media transfer rate
  size_t element_bytes = 64 * 1024;

  double positioning_ms() const { return seek_ms + rotational_ms; }
};

// Per-disk service milliseconds for one plan (adjacent same-disk accesses
// merged). Index = physical disk; disks not in the plan get 0. Reads and
// writes cost the same in this model; `plan.reconstructions` are XOR work,
// not disk time.
std::vector<double> plan_disk_times_ms(const raid::IoPlan& plan, int disks,
                                       const DiskModelParams& params);

// Modeled wall-clock milliseconds to serve one plan in isolation: the
// busiest disk's service time (disks work in parallel).
double plan_service_time_ms(const raid::IoPlan& plan,
                            const DiskModelParams& params);

}  // namespace dcode::sim

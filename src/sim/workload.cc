#include "sim/workload.h"

#include <cmath>

#include "util/check.h"

namespace dcode::sim {

const char* workload_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kReadOnly:
      return "read-only";
    case WorkloadKind::kReadIntensive:
      return "read-intensive (7:3)";
    case WorkloadKind::kMixed:
      return "read-write mixed (1:1)";
  }
  return "?";
}

std::vector<Op> generate_workload(WorkloadKind kind,
                                  const WorkloadParams& params) {
  DCODE_CHECK(params.operations > 0, "need at least one operation");
  DCODE_CHECK(params.min_len >= 1 && params.min_len <= params.max_len,
              "invalid length range");
  DCODE_CHECK(params.min_times >= 1 && params.min_times <= params.max_times,
              "invalid times range");
  DCODE_CHECK(params.start_space >= 1, "empty start space");
  DCODE_CHECK(params.skew >= 1.0, "skew < 1 would bias toward high addresses");

  Pcg32 rng(params.seed);
  std::vector<Op> ops;
  ops.reserve(static_cast<size_t>(params.operations));
  for (int i = 0; i < params.operations; ++i) {
    Op op;
    switch (kind) {
      case WorkloadKind::kReadOnly:
        op.is_write = false;
        break;
      case WorkloadKind::kReadIntensive:
        op.is_write = rng.next_below(10) < 3;
        break;
      case WorkloadKind::kMixed:
        op.is_write = rng.next_below(2) == 0;
        break;
    }
    if (params.skew == 1.0) {
      op.start = static_cast<int64_t>(
          rng.next_u64() % static_cast<uint64_t>(params.start_space));
    } else {
      double u = rng.next_double();
      op.start = static_cast<int64_t>(
          static_cast<double>(params.start_space) *
          std::pow(u, params.skew));
      if (op.start >= params.start_space) op.start = params.start_space - 1;
    }
    op.len = rng.next_in_range(params.min_len, params.max_len);
    op.times = rng.next_in_range(params.min_times, params.max_times);
    ops.push_back(op);
  }
  return ops;
}

}  // namespace dcode::sim

#include "sim/workload.h"

#include <cmath>
#include <optional>

#include "util/check.h"

namespace dcode::sim {

const char* workload_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kReadOnly:
      return "read-only";
    case WorkloadKind::kReadIntensive:
      return "read-intensive (7:3)";
    case WorkloadKind::kMixed:
      return "read-write mixed (1:1)";
  }
  return "?";
}

std::vector<Op> generate_workload(WorkloadKind kind,
                                  const WorkloadParams& params) {
  DCODE_CHECK(params.operations > 0, "need at least one operation");
  DCODE_CHECK(params.min_len >= 1 && params.min_len <= params.max_len,
              "invalid length range");
  DCODE_CHECK(params.min_times >= 1 && params.min_times <= params.max_times,
              "invalid times range");
  DCODE_CHECK(params.start_space >= 1, "empty start space");
  DCODE_CHECK(params.skew >= 1.0, "skew < 1 would bias toward high addresses");
  DCODE_CHECK(params.zipf_theta >= 0.0 && params.zipf_theta < 1.0,
              "zipf_theta must be in [0, 1)");

  std::optional<ZipfianGenerator> zipf_storage;
  const ZipfianGenerator* zipf = nullptr;
  if (params.zipf_theta > 0.0) {
    zipf_storage.emplace(params.start_space, params.zipf_theta);
    zipf = &*zipf_storage;
  }

  Pcg32 rng(params.seed);
  std::vector<Op> ops;
  ops.reserve(static_cast<size_t>(params.operations));
  for (int i = 0; i < params.operations; ++i) {
    Op op;
    switch (kind) {
      case WorkloadKind::kReadOnly:
        op.is_write = false;
        break;
      case WorkloadKind::kReadIntensive:
        op.is_write = rng.next_below(10) < 3;
        break;
      case WorkloadKind::kMixed:
        op.is_write = rng.next_below(2) == 0;
        break;
    }
    if (zipf != nullptr) {
      op.start = zipf->next(rng);
    } else if (params.skew == 1.0) {
      op.start = static_cast<int64_t>(
          rng.next_u64() % static_cast<uint64_t>(params.start_space));
    } else {
      double u = rng.next_double();
      op.start = static_cast<int64_t>(
          static_cast<double>(params.start_space) *
          std::pow(u, params.skew));
      if (op.start >= params.start_space) op.start = params.start_space - 1;
    }
    op.len = rng.next_in_range(params.min_len, params.max_len);
    op.times = rng.next_in_range(params.min_times, params.max_times);
    ops.push_back(op);
  }
  return ops;
}

namespace {

// Generalized harmonic number H_{n,theta} = sum_{i=1..n} 1/i^theta.
double zeta(int64_t n, double theta) {
  double sum = 0.0;
  for (int64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

// SplitMix64 finalizer: an invertible 64-bit mix, used to scatter
// popularity ranks across the address space deterministically.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(int64_t n, double theta, bool scramble)
    : n_(n), theta_(theta), scramble_(scramble) {
  DCODE_CHECK(n >= 1, "Zipfian space must be non-empty");
  DCODE_CHECK(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
  alpha_ = 1.0 / (1.0 - theta_);
  zetan_ = zeta(n_, theta_);
  eta_ = (1.0 - std::pow(2.0 / double(n_), 1.0 - theta_)) /
         (1.0 - zeta(2, theta_) / zetan_);
}

int64_t ZipfianGenerator::next(Pcg32& rng) const {
  double u = rng.next_double();
  double uz = u * zetan_;
  int64_t rank;
  if (uz < 1.0) {
    rank = 0;
  } else if (uz < 1.0 + std::pow(0.5, theta_)) {
    rank = 1;
  } else {
    rank = static_cast<int64_t>(
        double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (rank >= n_) rank = n_ - 1;
  }
  if (!scramble_) return rank;
  return static_cast<int64_t>(mix64(static_cast<uint64_t>(rank)) %
                              static_cast<uint64_t>(n_));
}

}  // namespace dcode::sim

// Trace files: replayable workloads.
//
// The simulator's native workloads are synthetic; real evaluations replay
// block traces. The format is one operation per line,
//
//   R <start> <len> [times]
//   W <start> <len> [times]
//
// with '#' comments and blank lines ignored; `start` is a logical data
// element index, `len` a run of consecutive elements, `times` an optional
// repeat count (default 1) — the same <S, L, T> tuples as §IV-A.
// Parsing is strict: malformed lines throw with the line number.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/workload.h"

namespace dcode::sim {

std::vector<Op> load_trace(std::istream& in);
std::vector<Op> load_trace_file(const std::string& path);

void save_trace(const std::vector<Op>& ops, std::ostream& out);
void save_trace_file(const std::vector<Op>& ops, const std::string& path);

}  // namespace dcode::sim

#include "sim/trace.h"

#include <fstream>
#include <sstream>

#include "util/check.h"

namespace dcode::sim {

std::vector<Op> load_trace(std::istream& in) {
  std::vector<Op> ops;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments.
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank line

    Op op;
    if (kind == "R" || kind == "r") {
      op.is_write = false;
    } else if (kind == "W" || kind == "w") {
      op.is_write = true;
    } else {
      DCODE_CHECK(false, "trace line " + std::to_string(lineno) +
                             ": expected R or W, got '" + kind + "'");
    }
    DCODE_CHECK(static_cast<bool>(ls >> op.start >> op.len),
                "trace line " + std::to_string(lineno) +
                    ": expected '<start> <len> [times]'");
    if (!(ls >> op.times)) op.times = 1;
    DCODE_CHECK(op.start >= 0 && op.len >= 1 && op.times >= 1,
                "trace line " + std::to_string(lineno) +
                    ": start/len/times out of range");
    std::string trailing;
    DCODE_CHECK(!(ls >> trailing), "trace line " + std::to_string(lineno) +
                                       ": unexpected trailing tokens");
    ops.push_back(op);
  }
  return ops;
}

std::vector<Op> load_trace_file(const std::string& path) {
  std::ifstream in(path);
  DCODE_CHECK(in.good(), "cannot open trace file: " + path);
  return load_trace(in);
}

void save_trace(const std::vector<Op>& ops, std::ostream& out) {
  out << "# dcode trace: <R|W> <start-element> <length> [times]\n";
  for (const Op& op : ops) {
    out << (op.is_write ? 'W' : 'R') << ' ' << op.start << ' ' << op.len;
    if (op.times != 1) out << ' ' << op.times;
    out << '\n';
  }
}

void save_trace_file(const std::vector<Op>& ops, const std::string& path) {
  std::ofstream out(path);
  DCODE_CHECK(out.good(), "cannot open trace file for writing: " + path);
  save_trace(ops, out);
  DCODE_CHECK(out.good(), "error writing trace file: " + path);
}

}  // namespace dcode::sim

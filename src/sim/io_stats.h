// Per-disk I/O accounting and the paper's two load metrics.
//
//   Load balancing factor  LF   = Lmax / Lmin   (paper Eq. 8; infinity
//                                 when an idle disk exists — Figure 4
//                                 plots it clamped at 30)
//   I/O cost               Cost = sum of all disks' accesses (Eq. 9)
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "raid/io_plan.h"
#include "util/check.h"

namespace dcode::sim {

class IoStats {
 public:
  explicit IoStats(int disks) : per_disk_(static_cast<size_t>(disks), 0) {}
  // Adopts an existing per-disk tally — the bridge from runtime counters
  // (e.g. raid::Raid6Array::per_disk_element_accesses()) into the
  // simulator's metric machinery.
  explicit IoStats(std::vector<int64_t> per_disk)
      : per_disk_(std::move(per_disk)) {}

  int disks() const { return static_cast<int>(per_disk_.size()); }
  int64_t accesses(int disk) const {
    return per_disk_[static_cast<size_t>(disk)];
  }

  void add(int disk, int64_t count) {
    per_disk_[static_cast<size_t>(disk)] += count;
  }

  // Tally a plan executed `times` times.
  void accumulate(const raid::IoPlan& plan, int times = 1) {
    for (const auto& a : plan.accesses) {
      DCODE_ASSERT(a.disk >= 0 && a.disk < disks(), "disk out of range");
      per_disk_[static_cast<size_t>(a.disk)] += times;
    }
  }

  int64_t total() const {
    int64_t t = 0;
    for (int64_t v : per_disk_) t += v;
    return t;
  }

  int64_t max_load() const {
    int64_t m = 0;
    for (int64_t v : per_disk_) m = v > m ? v : m;
    return m;
  }

  // Combines another tally into this one (disk-by-disk sum), so runtime
  // per-disk counters and simulator counters can be compared on equal
  // footing or accumulated across experiment phases.
  void merge(const IoStats& other) {
    DCODE_CHECK(other.disks() == disks(),
                "cannot merge IoStats over different disk counts");
    for (size_t i = 0; i < per_disk_.size(); ++i) {
      per_disk_[i] += other.per_disk_[i];
    }
  }

  int64_t min_load() const {
    // Empty check first: the scan below must not run (and its sentinel
    // must not leak out) when there are no disks at all.
    if (per_disk_.empty()) return 0;
    int64_t m = std::numeric_limits<int64_t>::max();
    for (int64_t v : per_disk_) m = v < m ? v : m;
    return m;
  }

  // Lmax / Lmin; +infinity if some disk saw no I/O at all.
  double load_balancing_factor() const {
    int64_t lmin = min_load();
    if (lmin == 0) return std::numeric_limits<double>::infinity();
    return static_cast<double>(max_load()) / static_cast<double>(lmin);
  }

  const std::vector<int64_t>& per_disk() const { return per_disk_; }

 private:
  std::vector<int64_t> per_disk_;
};

}  // namespace dcode::sim

// Workload generation — paper §IV-A's methodology, reproduced exactly.
//
// Each operation is a 3-tuple <S, L, T>: starting logical data element S,
// length L consecutive elements, repeated T times. The paper draws 2000
// tuples per configuration with S anywhere in the stripe, L uniform in
// [1, 20] (the FAST'12 range) and T uniform in [1, 1000] (the HDP range),
// under three mixes:
//   read-only        (cloud storage),
//   read-intensive   (7:3 reads:writes — SSD arrays),
//   evenly mixed     (1:1 — traditional filesystems over disk arrays).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace dcode::sim {

struct Op {
  bool is_write = false;
  int64_t start = 0;  // logical data element index
  int len = 1;        // L: consecutive elements
  int times = 1;      // T: repetition count
};

enum class WorkloadKind { kReadOnly, kReadIntensive, kMixed };

const char* workload_name(WorkloadKind kind);

struct WorkloadParams {
  int operations = 2000;
  int min_len = 1;
  int max_len = 20;
  int min_times = 1;
  int max_times = 1000;
  // S is drawn from [0, start_space). The paper draws starts within one
  // stripe; callers pass the layout's data_count().
  int64_t start_space = 1;
  // Start-address skew: 1.0 = uniform (the paper's setting); larger
  // values concentrate starts toward low addresses via S = space * u^skew
  // (a hot-spot workload for the skew ablation).
  double skew = 1.0;
  // Zipfian start addresses: 0 = off (use `skew` above). In (0, 1) the
  // starts are drawn rank-by-popularity with P(rank k) ~ 1/(k+1)^theta
  // and scrambled across [0, start_space), the standard key-value-store
  // skew model (0.99 ≈ YCSB's default hot-spot). Overrides `skew`.
  double zipf_theta = 0.0;
  uint64_t seed = 0x5eed;
};

// Write probability: read-only 0, read-intensive 3/10, mixed 1/2.
std::vector<Op> generate_workload(WorkloadKind kind,
                                  const WorkloadParams& params);

// Zipfian sampler over [0, n): Gray et al.'s closed-form method (SIGMOD
// '94, the YCSB generator), O(n) setup and O(1) per draw. theta in
// (0, 1) sets the skew — higher is hotter. With `scramble` (default) the
// popularity ranks are hashed across the space so the hot set is not one
// contiguous low-address run; without it, rank k maps to address k
// (useful for asserting the distribution in tests).
class ZipfianGenerator {
 public:
  ZipfianGenerator(int64_t n, double theta, bool scramble = true);

  int64_t n() const { return n_; }
  double theta() const { return theta_; }

  // Draws one address using the caller's RNG stream.
  int64_t next(Pcg32& rng) const;

 private:
  int64_t n_;
  double theta_;
  bool scramble_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace dcode::sim

#include "sim/disk_model.h"

#include <algorithm>
#include <map>
#include <utility>

#include "util/check.h"

namespace dcode::sim {

std::vector<double> plan_disk_times_ms(const raid::IoPlan& plan, int disks,
                                       const DiskModelParams& params) {
  std::vector<double> times(static_cast<size_t>(disks), 0.0);

  // Bucket accesses by disk as (stripe, row) positions.
  std::map<int, std::vector<std::pair<int64_t, int>>> by_disk;
  for (const auto& a : plan.accesses) {
    DCODE_CHECK(a.disk >= 0 && a.disk < disks, "disk out of range");
    by_disk[a.disk].emplace_back(a.stripe, a.element.row);
  }

  const double transfer_ms_per_element =
      static_cast<double>(params.element_bytes) /
      (params.bandwidth_mb_s * 1024.0 * 1024.0) * 1000.0;

  for (auto& [disk, pos] : by_disk) {
    std::sort(pos.begin(), pos.end());
    pos.erase(std::unique(pos.begin(), pos.end()), pos.end());
    // Count runs of consecutive rows within a stripe; each run costs one
    // positioning delay.
    size_t runs = 0;
    for (size_t i = 0; i < pos.size(); ++i) {
      if (i == 0 || pos[i].first != pos[i - 1].first ||
          pos[i].second != pos[i - 1].second + 1) {
        ++runs;
      }
    }
    times[static_cast<size_t>(disk)] =
        static_cast<double>(runs) * params.positioning_ms() +
        static_cast<double>(pos.size()) * transfer_ms_per_element;
  }
  return times;
}

double plan_service_time_ms(const raid::IoPlan& plan,
                            const DiskModelParams& params) {
  int max_disk = -1;
  for (const auto& a : plan.accesses) max_disk = std::max(max_disk, a.disk);
  if (max_disk < 0) return 0.0;
  auto times = plan_disk_times_ms(plan, max_disk + 1, params);
  return *std::max_element(times.begin(), times.end());
}

}  // namespace dcode::sim

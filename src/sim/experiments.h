// Experiment drivers shared by the bench binaries and the integration
// tests (tests exercise them at reduced operation counts).
//
// Each function reproduces one of the paper's evaluation procedures:
//   run_load_experiment          -> Figures 4 (LF) and 5 (Cost), §IV
//   run_normal_read_experiment   -> Figure 6, §V-B
//   run_degraded_read_experiment -> Figure 7, §V-C
#pragma once

#include <cstdint>

#include "codes/code_layout.h"
#include "sim/disk_model.h"
#include "sim/io_stats.h"
#include "sim/workload.h"

namespace dcode::sim {

struct LoadResult {
  IoStats stats;
  double load_balancing_factor;
  int64_t io_cost;
};

// 2000 random <S, L, T> tuples (paper defaults) planned through the
// write/read planners and tallied per physical disk. `rotate` enables the
// stripe-by-stripe disk rotation strawman for the ablation bench.
LoadResult run_load_experiment(const codes::CodeLayout& layout,
                               WorkloadKind kind, uint64_t seed,
                               bool rotate = false, int operations = 2000);

// Full-control variant: caller supplies the workload parameters
// (start_space is overridden with the layout's data_count()); used by the
// skew ablation.
LoadResult run_load_experiment(const codes::CodeLayout& layout,
                               WorkloadKind kind, WorkloadParams params,
                               bool rotate = false);

struct SpeedResult {
  double read_mb_s;       // requested bytes / modeled elapsed time
  double avg_mb_s_disk;   // read_mb_s / number of disks (paper Fig 6b/7b)
  int64_t element_reads;  // total element accesses issued
};

// Normal mode: `operations` random (start, len) reads, len in [1, 20].
SpeedResult run_normal_read_experiment(const codes::CodeLayout& layout,
                                       uint64_t seed,
                                       const DiskModelParams& params,
                                       int operations = 2000);

// Degraded mode: for every disk hosting data, `operations_per_case` random
// reads with that disk failed (paper: 200 per failure case).
SpeedResult run_degraded_read_experiment(const codes::CodeLayout& layout,
                                         uint64_t seed,
                                         const DiskModelParams& params,
                                         int operations_per_case = 200);

}  // namespace dcode::sim

// H-Code (Wu, Wan, He, Cao & Xie, IPDPS 2011).
//
// Stripe: (p-1) x (p+1), p prime. Column p is a dedicated horizontal
// parity disk; the anti-diagonal parities sit *inside* the data matrix at
// C[i][i+1] — "in the middle of the stripe", which is why the D-Code paper
// dings H-Code's normal-read balance even though its horizontal parities
// make partial stripe writes cheap.
//
//   Horizontal:    C[i][p]   = XOR_{j=0..p-1, j != i+1} C[i][j]
//   Anti-diagonal: C[i][i+1] = XOR_{j=0..p-2} C[j][(i+j+2) mod p]
//
// Each anti-diagonal group is the line (col - row) mod p == i+2, which
// never meets a parity cell ((col - row) of a parity is 1, and i+2 != 1
// for 0 <= i <= p-2), so each data element lies in exactly one horizontal
// and one anti-diagonal equation: optimal update complexity. The
// construction is validated exhaustively in tests: every two-disk failure
// decodes for p in {5, 7, 11, 13}.
#pragma once

#include "codes/code_layout.h"

namespace dcode::codes {

class HCodeLayout final : public CodeLayout {
 public:
  explicit HCodeLayout(int p);
};

}  // namespace dcode::codes

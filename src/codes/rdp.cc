#include "codes/rdp.h"

#include "util/modmath.h"
#include "util/primes.h"

namespace dcode::codes {

RdpLayout::RdpLayout(int p) : CodeLayout("rdp", p, p - 1, p + 1) {
  DCODE_CHECK(is_prime(p), "RDP requires a prime p");
  DCODE_CHECK(p >= 3, "RDP needs p >= 3");

  for (int r = 0; r < p - 1; ++r) {
    set_kind(r, p - 1, ElementKind::kParityP);  // row parity disk
    set_kind(r, p, ElementKind::kParityQ);      // diagonal parity disk
  }

  // Row parities: P[r][p-1] = XOR of the row's data.
  for (int r = 0; r < p - 1; ++r) {
    std::vector<Element> sources;
    sources.reserve(static_cast<size_t>(p - 1));
    for (int c = 0; c <= p - 2; ++c) sources.push_back(make_element(r, c));
    add_equation(make_element(r, p - 1), std::move(sources));
  }

  // Diagonal parities: diagonal d = { (r, c) : (r + c) % p == d } over
  // columns 0..p-1 (row parity column included), rows 0..p-2.
  for (int d = 0; d < p - 1; ++d) {
    std::vector<Element> sources;
    for (int c = 0; c <= p - 1; ++c) {
      int r = pmod(d - c, p);
      if (r <= p - 2) sources.push_back(make_element(r, c));
    }
    add_equation(make_element(d, p), std::move(sources));
  }

  finalize();
}

}  // namespace dcode::codes

// Shortening: run a prime-parameter code on an arbitrary disk count.
//
// The classic trick (used by every EVENODD/RDP deployment): construct the
// code for a larger prime and declare some *pure-data* columns to be
// virtual — permanently all-zero, neither stored nor addressable. XORing
// zero changes nothing, so every parity equation simply drops its virtual
// sources and the fault-tolerance argument carries over verbatim (our
// tests re-verify MDS-ness of shortened layouts exhaustively anyway).
//
// Only columns with no parity elements can be dropped, which is why this
// works for the horizontal codes (RDP, EVENODD: data columns 0..p-2) and
// H-Code (column 0), but not for the fully-vertical codes — D-Code,
// X-Code, HDP and P-Code put parity on every disk, which is exactly the
// price of their balanced layout. make_shortened_layout() picks the
// smallest prime that shortens down to the requested disk count and
// throws if the family cannot shorten.
#pragma once

#include <memory>
#include <string>

#include "codes/code_layout.h"

namespace dcode::codes {

class ShortenedLayout final : public CodeLayout {
 public:
  // Shortens `base` by dropping its `drop` highest-index *pure-data*
  // columns (parity columns are never dropped; the surviving columns are
  // renumbered contiguously, parity disks sliding left). Throws if the
  // base has fewer than `drop` pure-data columns.
  ShortenedLayout(const CodeLayout& base, int drop);

  int dropped_columns() const { return drop_; }

 private:
  int drop_;
};

// Number of pure-data columns (the shortening capacity).
int droppable_columns(const CodeLayout& base);

// Builds `family` (a registry code name) shortened to exactly `disks`
// disks, using the smallest viable prime. Throws when impossible (the
// fully-vertical families, or disk counts below the family minimum).
std::unique_ptr<CodeLayout> make_shortened_layout(const std::string& family,
                                                  int disks);

}  // namespace dcode::codes

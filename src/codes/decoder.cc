#include "codes/decoder.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "xorops/xor_region.h"

namespace dcode::codes {
namespace {

// Maps each lost element to a dense unknown index; -1 = known.
std::vector<int> unknown_map(const CodeLayout& layout,
                             std::span<const Element> lost) {
  std::vector<int> map(static_cast<size_t>(layout.rows()) * layout.cols(), -1);
  int next = 0;
  for (const Element& e : lost) {
    size_t idx = static_cast<size_t>(e.row) * layout.cols() + e.col;
    DCODE_CHECK(map[idx] == -1, "duplicate lost element");
    map[idx] = next++;
  }
  return map;
}

inline int unknown_of(const std::vector<int>& map, const CodeLayout& layout,
                      Element e) {
  return map[static_cast<size_t>(e.row) * layout.cols() + e.col];
}

// All members of an equation: parity + sources.
template <typename Fn>
void for_each_member(const Equation& q, Fn&& fn) {
  fn(q.parity);
  for (const Element& e : q.sources) fn(e);
}

}  // namespace

std::vector<Element> elements_of_disks(const CodeLayout& layout,
                                       std::span<const int> disks) {
  std::vector<Element> out;
  out.reserve(static_cast<size_t>(layout.rows()) * disks.size());
  for (int d : disks) {
    for (int r = 0; r < layout.rows(); ++r) out.push_back(make_element(r, d));
  }
  return out;
}

DecodeResult peel_decode(Stripe& stripe, std::span<const Element> lost) {
  const CodeLayout& layout = stripe.layout();
  const size_t esize = stripe.element_size();
  std::vector<int> unknown = unknown_map(layout, lost);
  size_t remaining = lost.size();

  DecodeResult result;
  if (remaining == 0) {
    result.success = true;
    return result;
  }

  // Per-equation count of unresolved members; a count of 1 means solvable.
  const auto& eqs = layout.equations();
  std::vector<int> missing(eqs.size(), 0);
  for (size_t qi = 0; qi < eqs.size(); ++qi) {
    for_each_member(eqs[qi], [&](Element e) {
      if (unknown_of(unknown, layout, e) >= 0) ++missing[qi];
    });
  }

  std::vector<const uint8_t*> sources;
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (size_t qi = 0; qi < eqs.size(); ++qi) {
      if (missing[qi] != 1) continue;
      const Equation& q = eqs[qi];
      // Find the single unresolved member and rebuild it from the others.
      Element target{};
      bool found = false;
      for_each_member(q, [&](Element e) {
        if (unknown_of(unknown, layout, e) >= 0) {
          target = e;
          found = true;
        }
      });
      DCODE_ASSERT(found, "missing-count bookkeeping out of sync");

      sources.clear();
      for_each_member(q, [&](Element e) {
        if (e != target) sources.push_back(stripe.at(e));
      });
      xorops::xor_many(stripe.at(target), sources, esize);
      result.xor_ops += sources.size() - 1;
      ++result.steps;

      // Mark resolved everywhere.
      unknown[static_cast<size_t>(target.row) * layout.cols() + target.col] =
          -1;
      for (int mq : layout.equations_containing(target.row, target.col)) {
        --missing[static_cast<size_t>(mq)];
      }
      --remaining;
      progress = true;
    }
  }
  result.success = remaining == 0;
  return result;
}

DecodeResult ge_decode(Stripe& stripe, std::span<const Element> lost) {
  const CodeLayout& layout = stripe.layout();
  const size_t esize = stripe.element_size();
  const int nunknown = static_cast<int>(lost.size());
  DecodeResult result;
  if (nunknown == 0) {
    result.success = true;
    return result;
  }
  std::vector<int> unknown = unknown_map(layout, lost);

  // Build the system: one row per equation that touches an unknown.
  // Row = bitset over unknowns; RHS = XOR of the equation's known members.
  struct Row {
    std::vector<uint8_t> coeff;  // 0/1 per unknown
    AlignedBuffer rhs;
  };
  std::vector<Row> rows;
  const auto& eqs = layout.equations();
  for (const Equation& q : eqs) {
    bool touches = false;
    for_each_member(q, [&](Element e) {
      if (unknown_of(unknown, layout, e) >= 0) touches = true;
    });
    if (!touches) continue;

    Row row;
    row.coeff.assign(static_cast<size_t>(nunknown), 0);
    row.rhs = AlignedBuffer(esize);
    for_each_member(q, [&](Element e) {
      int u = unknown_of(unknown, layout, e);
      if (u >= 0) {
        row.coeff[static_cast<size_t>(u)] ^= 1;
      } else {
        xorops::xor_into(row.rhs.data(), stripe.at(e), esize);
        ++result.xor_ops;
      }
    });
    rows.push_back(std::move(row));
  }

  // Forward elimination with partial pivoting over GF(2).
  std::vector<int> pivot_row(static_cast<size_t>(nunknown), -1);
  size_t next_row = 0;
  for (int col = 0; col < nunknown && next_row < rows.size(); ++col) {
    size_t pr = next_row;
    while (pr < rows.size() && rows[pr].coeff[static_cast<size_t>(col)] == 0)
      ++pr;
    if (pr == rows.size()) continue;  // free column (for now)
    std::swap(rows[next_row], rows[pr]);
    for (size_t r = 0; r < rows.size(); ++r) {
      if (r == next_row) continue;
      if (rows[r].coeff[static_cast<size_t>(col)]) {
        for (int c2 = 0; c2 < nunknown; ++c2)
          rows[r].coeff[static_cast<size_t>(c2)] ^=
              rows[next_row].coeff[static_cast<size_t>(c2)];
        xorops::xor_into(rows[r].rhs.data(), rows[next_row].rhs.data(), esize);
        ++result.xor_ops;
      }
    }
    pivot_row[static_cast<size_t>(col)] = static_cast<int>(next_row);
    ++next_row;
    ++result.steps;
  }

  // Solvable only if every unknown got a pivot.
  for (int u = 0; u < nunknown; ++u) {
    if (pivot_row[static_cast<size_t>(u)] < 0) {
      result.success = false;
      return result;
    }
  }

  // After full Gauss–Jordan style elimination each pivot row is a unit
  // vector: copy its RHS into the unknown's buffer.
  for (int u = 0; u < nunknown; ++u) {
    const Row& row = rows[static_cast<size_t>(pivot_row[static_cast<size_t>(u)])];
    DCODE_ASSERT(row.coeff[static_cast<size_t>(u)] == 1,
                 "pivot bookkeeping out of sync");
    std::memcpy(stripe.at(lost[static_cast<size_t>(u)]), row.rhs.data(),
                esize);
  }
  result.success = true;
  return result;
}

DecodeResult hybrid_decode(Stripe& stripe, std::span<const Element> lost) {
  const CodeLayout& layout = stripe.layout();
  // Try pure peeling first (cheap, and optimal for the XOR codes).
  // To avoid reconstructing twice, run peeling and track what it solved.
  DecodeResult peeled = peel_decode(stripe, lost);
  if (peeled.success) return peeled;

  // Peeling mutated buffers of the elements it *did* solve; those are now
  // valid, so re-run GE with only the still-unknown set. Recompute which
  // elements remain unknown by replaying peeling's reachability without
  // buffers.
  std::vector<int> unknown = [&] {
    std::vector<int> map(static_cast<size_t>(layout.rows()) * layout.cols(),
                         -1);
    int next = 0;
    for (const Element& e : lost)
      map[static_cast<size_t>(e.row) * layout.cols() + e.col] = next++;
    return map;
  }();
  const auto& eqs = layout.equations();
  std::vector<int> missing(eqs.size(), 0);
  for (size_t qi = 0; qi < eqs.size(); ++qi) {
    for_each_member(eqs[qi], [&](Element e) {
      if (unknown[static_cast<size_t>(e.row) * layout.cols() + e.col] >= 0)
        ++missing[qi];
    });
  }
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t qi = 0; qi < eqs.size(); ++qi) {
      if (missing[qi] != 1) continue;
      for_each_member(eqs[qi], [&](Element e) {
        size_t idx = static_cast<size_t>(e.row) * layout.cols() + e.col;
        if (unknown[idx] >= 0) {
          unknown[idx] = -1;
          for (int mq : layout.equations_containing(e.row, e.col))
            --missing[static_cast<size_t>(mq)];
          progress = true;
        }
      });
    }
  }
  std::vector<Element> still_lost;
  for (const Element& e : lost) {
    if (unknown[static_cast<size_t>(e.row) * layout.cols() + e.col] >= 0)
      still_lost.push_back(e);
  }
  DecodeResult ge = ge_decode(stripe, still_lost);
  ge.xor_ops += peeled.xor_ops;
  ge.steps += peeled.steps;
  return ge;
}

bool is_recoverable(const CodeLayout& layout, std::span<const Element> lost) {
  // Rank test over GF(2) on the coefficient matrix only (no buffers).
  const int nunknown = static_cast<int>(lost.size());
  if (nunknown == 0) return true;
  std::vector<int> unknown = unknown_map(layout, lost);

  std::vector<std::vector<uint8_t>> rows;
  for (const Equation& q : layout.equations()) {
    std::vector<uint8_t> coeff(static_cast<size_t>(nunknown), 0);
    bool touches = false;
    for_each_member(q, [&](Element e) {
      int u = unknown_of(unknown, layout, e);
      if (u >= 0) {
        coeff[static_cast<size_t>(u)] ^= 1;
        touches = true;
      }
    });
    if (touches) rows.push_back(std::move(coeff));
  }

  size_t next_row = 0;
  int rank = 0;
  for (int col = 0; col < nunknown && next_row < rows.size(); ++col) {
    size_t pr = next_row;
    while (pr < rows.size() && rows[pr][static_cast<size_t>(col)] == 0) ++pr;
    if (pr == rows.size()) return false;  // free unknown: unrecoverable
    std::swap(rows[next_row], rows[pr]);
    for (size_t r = next_row + 1; r < rows.size(); ++r) {
      if (rows[r][static_cast<size_t>(col)]) {
        for (int c2 = col; c2 < nunknown; ++c2)
          rows[r][static_cast<size_t>(c2)] ^=
              rows[next_row][static_cast<size_t>(c2)];
      }
    }
    ++next_row;
    ++rank;
  }
  return rank == nunknown;
}

}  // namespace dcode::codes

#include "codes/hdp.h"

#include "util/modmath.h"
#include "util/primes.h"

namespace dcode::codes {

HdpLayout::HdpLayout(int p) : HdpLayout(p, HdpVariant{}) {}

HdpLayout::HdpLayout(int p, const HdpVariant& variant)
    : CodeLayout("hdp", p, p - 1, p - 1) {
  DCODE_CHECK(is_prime(p), "HDP requires a prime p");
  DCODE_CHECK(p >= 5, "HDP needs p >= 5");

  for (int i = 0; i < p - 1; ++i) {
    set_kind(i, i, ElementKind::kParityP);          // horizontal parities
    set_kind(i, p - 2 - i, ElementKind::kParityQ);  // diagonal parities
  }

  // Diagonal parities first (they feed the horizontal equations when
  // row_covers_anti_parity is set): equations 0..p-2.
  for (int i = 0; i < p - 1; ++i) {
    int s = pmod(variant.slope * i + variant.offset, p);
    std::vector<Element> sources;
    for (int c = 0; c <= p - 2; ++c) {
      int r = variant.family == HdpVariant::Family::kDiff ? pmod(c - s, p)
                                                          : pmod(s - c, p);
      if (r > p - 2) continue;               // wrapped off the stripe
      if (r == i && c == p - 2 - i) continue;  // the parity cell itself
      if (c == p - 2 - r) continue;          // never cover other Q parities
      if (r == c && !variant.anti_covers_horizontal_parity) continue;
      sources.push_back(make_element(r, c));
    }
    DCODE_CHECK(!sources.empty(), "degenerate diagonal line");
    add_equation(make_element(i, p - 2 - i), std::move(sources));
  }

  // Horizontal parities: equations p-1..2p-3.
  for (int i = 0; i < p - 1; ++i) {
    std::vector<Element> sources;
    sources.reserve(static_cast<size_t>(p - 2));
    for (int j = 0; j <= p - 2; ++j) {
      if (j == i) continue;
      if (!variant.row_covers_anti_parity && j == p - 2 - i) continue;
      sources.push_back(make_element(i, j));
    }
    add_equation(make_element(i, i), std::move(sources));
  }

  finalize();
}

}  // namespace dcode::codes

// CodeLayout: the single abstraction every experiment consumes.
//
// A layout describes one stripe of an array code as
//   * a rows x cols element matrix (cols == number of disks),
//   * a kind (data / parity family) for every cell, and
//   * a list of parity equations, each "parity element = XOR of sources"
//     where sources may be data elements or other parity elements (RDP's
//     diagonals include the row parities; EVENODD's diagonals share the S
//     adjuster).
//
// Encoders, the peeling/GE decoders, the write/read planners, and the I/O
// simulators all operate on this one representation, so adding a code to
// the library means writing exactly one subclass; every test, bench, and
// example picks it up through the registry.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "codes/element.h"
#include "util/check.h"

namespace dcode::codes {

// One XOR parity constraint: buffers satisfy parity == XOR(sources).
struct Equation {
  Element parity;
  std::vector<Element> sources;
};

class CodeLayout {
 public:
  virtual ~CodeLayout() = default;

  CodeLayout(const CodeLayout&) = delete;
  CodeLayout& operator=(const CodeLayout&) = delete;

  const std::string& name() const { return name_; }
  // The prime parameter the code was constructed with (paper's p or n).
  int prime() const { return p_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }  // == disk count
  // Declared number of concurrent whole-disk failures the code tolerates
  // (2 for the RAID-6 codes, 3 for STAR); verified exhaustively in tests.
  int fault_tolerance() const { return tolerance_; }

  ElementKind kind(int row, int col) const {
    return kinds_[cell_index(row, col)];
  }
  bool is_parity(int row, int col) const {
    return kind(row, col) != ElementKind::kData;
  }

  // --- Parity equations -------------------------------------------------
  const std::vector<Equation>& equations() const { return equations_; }

  // Indices (into equations()) of every equation that *contains* the given
  // element as a source, plus — for a parity element — the equation it
  // stores. This is what the write planner uses to find the parities a
  // data update must touch.
  const std::vector<int>& equations_containing(int row, int col) const {
    return membership_[cell_index(row, col)];
  }

  // For a parity element: the equation stored there (-1 for data cells).
  int equation_of_parity(int row, int col) const {
    return parity_equation_[cell_index(row, col)];
  }

  // Topological evaluation order of equations for encoding (equations whose
  // sources include other parities come after those parities' equations).
  // Empty only if the parity system is cyclic — no code in this library is.
  const std::vector<int>& encode_order() const { return encode_order_; }

  // --- Logical data addressing -------------------------------------------
  // Data elements are numbered row-major (the papers' "continuous data
  // elements" order).
  int data_count() const { return static_cast<int>(data_elements_.size()); }
  Element data_element(int logical_index) const {
    DCODE_CHECK(logical_index >= 0 && logical_index < data_count(),
                "logical data index out of range");
    return data_elements_[static_cast<size_t>(logical_index)];
  }
  // -1 for parity cells.
  int data_index(int row, int col) const {
    return data_index_[cell_index(row, col)];
  }

  int parity_count() const { return static_cast<int>(equations_.size()); }

  // Elements (data + parity) hosted on one disk, ascending by row.
  std::vector<Element> elements_on_disk(int disk) const;
  int parity_elements_on_disk(int disk) const;

 protected:
  CodeLayout(std::string name, int p, int rows, int cols, int tolerance = 2);

  void set_kind(int row, int col, ElementKind k) {
    kinds_[cell_index(row, col)] = k;
  }
  void add_equation(Element parity, std::vector<Element> sources);

  // Validates the structure and builds all derived tables. Must be called
  // at the end of every subclass constructor.
  void finalize();

  size_t cell_index(int row, int col) const {
    DCODE_CHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_,
                "element out of stripe bounds");
    return static_cast<size_t>(row) * cols_ + col;
  }

 private:
  std::string name_;
  int p_;
  int rows_, cols_;
  int tolerance_;
  std::vector<ElementKind> kinds_;
  std::vector<Equation> equations_;
  std::vector<std::vector<int>> membership_;
  std::vector<int> parity_equation_;
  std::vector<int> encode_order_;
  std::vector<Element> data_elements_;
  std::vector<int> data_index_;
};

}  // namespace dcode::codes

// P-Code (Jin, Jiang & Zhou, ICS 2009) — the pairing-based vertical MDS
// code the D-Code paper's §II cites among the codes with uneven parity
// placement (all parities sit in one row, so that *row* is hot on writes
// even though each disk holds exactly one parity element).
//
// Construction over a prime p: p-1 disks (columns labeled 1..p-1), a
// stripe of (p-1)/2 rows. Row 0 holds one parity per disk; the data
// element slots of column c are the unordered pairs {i, j} with
// i + j == c (mod p), i, j in 1..p-1, i < j — each column gets (p-3)/2 of
// them. Parity group g is the XOR of every data element whose pair
// contains g, so each data element lies in exactly two groups: optimal
// update complexity, and two-disk fault tolerance (verified exhaustively
// in tests, like every construction here).
#pragma once

#include <utility>

#include "codes/code_layout.h"

namespace dcode::codes {

class PCodeLayout final : public CodeLayout {
 public:
  explicit PCodeLayout(int p);

  // The pair {i, j} stored at a data cell (for the layout explorer).
  std::pair<int, int> pair_of(int row, int col) const;

 private:
  std::vector<std::pair<int, int>> pairs_;  // indexed by cell
};

}  // namespace dcode::codes

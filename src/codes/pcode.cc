#include "codes/pcode.h"

#include <algorithm>
#include <map>

#include "util/modmath.h"
#include "util/primes.h"

namespace dcode::codes {

PCodeLayout::PCodeLayout(int p)
    : CodeLayout("pcode", p, (p - 1) / 2, p - 1) {
  DCODE_CHECK(is_prime(p), "P-Code requires a prime p");
  DCODE_CHECK(p >= 5, "P-Code needs p >= 5");

  pairs_.assign(static_cast<size_t>(rows()) * cols(), {0, 0});
  for (int c = 0; c < p - 1; ++c) {
    set_kind(0, c, ElementKind::kParityP);
  }

  // Lay out each column's pairs {i, j}, i < j, i + j == label (mod p), in
  // ascending i order below the parity row.
  std::map<std::pair<int, int>, Element> where;
  for (int col = 0; col < p - 1; ++col) {
    const int label = col + 1;
    int row = 1;
    for (int i = 1; i <= p - 1; ++i) {
      int j = pmod(label - i, p);
      if (j == 0 || j <= i) continue;
      DCODE_ASSERT(row < rows(), "more pairs than data rows");
      Element e = make_element(row, col);
      pairs_[cell_index(row, col)] = {i, j};
      where[{i, j}] = e;
      ++row;
    }
    DCODE_ASSERT(row == rows(), "column must fill all data rows");
  }

  // Parity group g = XOR of every data element whose pair contains g.
  for (int col = 0; col < p - 1; ++col) {
    const int g = col + 1;
    std::vector<Element> sources;
    for (int x = 1; x <= p - 1; ++x) {
      if (x == g || pmod(g + x, p) == 0) continue;
      auto key = std::minmax(g, x);
      auto it = where.find({key.first, key.second});
      DCODE_ASSERT(it != where.end(), "pair must have been laid out");
      sources.push_back(it->second);
    }
    add_equation(make_element(0, col), std::move(sources));
  }

  finalize();
}

std::pair<int, int> PCodeLayout::pair_of(int row, int col) const {
  DCODE_CHECK(!is_parity(row, col), "parity cells store no pair");
  return pairs_[cell_index(row, col)];
}

}  // namespace dcode::codes

#include "codes/liberation.h"

#include "util/modmath.h"
#include "util/primes.h"

namespace dcode::codes {

LiberationLayout::LiberationLayout(int p)
    : CodeLayout("liberation", p, p, p + 2) {
  DCODE_CHECK(is_prime(p), "Liberation requires a prime p");
  DCODE_CHECK(p >= 5, "Liberation needs p >= 5");

  for (int r = 0; r < p; ++r) {
    set_kind(r, p, ElementKind::kParityP);      // row parity disk
    set_kind(r, p + 1, ElementKind::kParityQ);  // liberated diagonal disk
  }

  for (int j = 0; j < p; ++j) {
    std::vector<Element> row;
    row.reserve(static_cast<size_t>(p));
    for (int i = 0; i < p; ++i) row.push_back(make_element(j, i));
    add_equation(make_element(j, p), std::move(row));
  }

  const int half_up = (p + 1) / 2;    // == inverse of 2 mod p
  const int half_down = (p - 1) / 2;  // == -inverse of 2 mod p
  std::vector<std::vector<Element>> q(static_cast<size_t>(p));
  for (int j = 0; j < p; ++j) {
    for (int i = 0; i < p; ++i) {
      q[static_cast<size_t>(j)].push_back(make_element(pmod(j - i, p), i));
    }
  }
  for (int i = 1; i < p; ++i) {
    int qrow = pmod(static_cast<int64_t>(half_up) * i, p);
    int drow = pmod(static_cast<int64_t>(half_down) * i + 1, p);
    q[static_cast<size_t>(qrow)].push_back(make_element(drow, i));
  }
  for (int j = 0; j < p; ++j) {
    add_equation(make_element(j, p + 1), std::move(q[static_cast<size_t>(j)]));
  }

  finalize();
}

}  // namespace dcode::codes

// X-Code (Xu & Bruck 1999): the vertical baseline D-Code is derived from.
//
// Stripe: p x p, p prime. Rows 0..p-3 hold data; row p-2 holds diagonal
// parities and row p-1 anti-diagonal parities:
//   E[p-2][i] = XOR_{j=0..p-3} E[j][(i+j+2) mod p]
//   E[p-1][i] = XOR_{j=0..p-3} E[j][(i-j-2) mod p]
// Parity is perfectly even (two per disk) and update complexity is the
// optimal 2, but *consecutive* data elements land on different diagonals,
// which is exactly the partial-stripe-write / degraded-read weakness the
// D-Code paper attacks.
#pragma once

#include "codes/code_layout.h"

namespace dcode::codes {

class XCodeLayout final : public CodeLayout {
 public:
  explicit XCodeLayout(int p);
};

}  // namespace dcode::codes

// Liberation-style minimum-density RAID-6 code (after Plank, FAST 2008).
//
// Stripe: p rows x (p+2) columns, p prime: p data disks, one row-parity
// disk (column p) and one "liberated" diagonal-parity disk (column p+1).
//
//   P_j = XOR_i          D[j][i]
//   Q_j = XOR_i          D[(j - i) mod p][i]           (shifted diagonals)
//         plus, for each data device i >= 1, ONE extra bit:
//         D[((p-1)/2 * i + 1) mod p][i] is also added to
//         Q[((p+1)/2 * i) mod p].
//
// The Q matrix therefore has p^2 + p - 1 ones — exactly the
// kw + k - 1 minimum-density bound that defines the liberation family,
// which is what makes its update complexity nearly optimal for a
// horizontal code (2 + 1/p parities per data bit on average, vs RDP's
// ~3 with the dense diagonal).
//
// Plank specifies the codes through bit-matrix listings we do not have
// offline; this construction was recovered by exhaustive search over
// affine extra-bit placements (with (p±1)/2 coefficient terms) under two
// oracles — the MDS property for every double disk failure and the
// minimum-density count — and is re-verified for every prime up to 17 in
// the test suite. It may differ from Plank's listings by a row/column
// relabeling (which Lemma 2 of the D-Code paper shows is irrelevant to
// fault tolerance).
#pragma once

#include "codes/code_layout.h"

namespace dcode::codes {

class LiberationLayout final : public CodeLayout {
 public:
  explicit LiberationLayout(int p);
};

}  // namespace dcode::codes

#include "codes/xcode.h"

#include "util/modmath.h"
#include "util/primes.h"

namespace dcode::codes {

XCodeLayout::XCodeLayout(int p) : CodeLayout("xcode", p, p, p) {
  DCODE_CHECK(is_prime(p), "X-Code requires a prime disk count");
  DCODE_CHECK(p >= 5, "X-Code needs p >= 5");

  for (int c = 0; c < p; ++c) {
    set_kind(p - 2, c, ElementKind::kParityP);  // diagonal parity row
    set_kind(p - 1, c, ElementKind::kParityQ);  // anti-diagonal parity row
  }

  // Diagonal family first (equations 0..p-1), then anti-diagonals
  // (p..2p-1): family-major ordering, so "the first equation of an
  // element" consistently means its primary family — the convention the
  // conventional-recovery baseline and the D-Code chain decoder rely on.
  for (int i = 0; i < p; ++i) {
    std::vector<Element> diag;
    diag.reserve(static_cast<size_t>(p - 2));
    for (int j = 0; j <= p - 3; ++j) {
      diag.push_back(make_element(j, pmod(i + j + 2, p)));
    }
    add_equation(make_element(p - 2, i), std::move(diag));
  }
  for (int i = 0; i < p; ++i) {
    std::vector<Element> anti;
    anti.reserve(static_cast<size_t>(p - 2));
    for (int j = 0; j <= p - 3; ++j) {
      anti.push_back(make_element(j, pmod(i - j - 2, p)));
    }
    add_equation(make_element(p - 1, i), std::move(anti));
  }

  finalize();
}

}  // namespace dcode::codes

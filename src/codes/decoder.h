// Generic erasure decoders over parity equations.
//
// Two strategies, one contract: given a stripe whose elements at the
// `lost` positions are unknown (buffer contents ignored), reconstruct them
// from the surviving elements.
//
//  * Peeling: repeatedly find an equation with exactly one lost member and
//    solve it with one fused XOR. O(equations) per round, optimal I/O, and
//    sufficient for every double *disk* failure of the pure XOR codes
//    (D-Code, X-Code, RDP, H-Code, HDP).
//  * Gaussian elimination over GF(2): treats lost elements as unknowns and
//    the full equation set as a linear system with buffer-valued right-hand
//    sides. Slower, but complete: it recovers anything recoverable, which
//    makes it (a) the fallback when peeling stalls (EVENODD's S-coupled
//    diagonals) and (b) the oracle our MDS-property tests use to validate
//    every construction exhaustively.
#pragma once

#include <span>
#include <vector>

#include "codes/stripe.h"

namespace dcode::codes {

struct DecodeResult {
  bool success = false;
  // Element-level XOR ops spent (one per source element consumed).
  size_t xor_ops = 0;
  // Peeling rounds or GE eliminations — diagnostic only.
  size_t steps = 0;
};

// `lost` lists the unknown elements (typically all elements of 1–2 disks).
// On success their buffers contain the reconstructed content.
DecodeResult peel_decode(Stripe& stripe, std::span<const Element> lost);

DecodeResult ge_decode(Stripe& stripe, std::span<const Element> lost);

// Peeling first, GE for whatever peeling could not reach.
DecodeResult hybrid_decode(Stripe& stripe, std::span<const Element> lost);

// Convenience: all elements on the given failed disks.
std::vector<Element> elements_of_disks(const CodeLayout& layout,
                                       std::span<const int> disks);

// Dry-run feasibility check (no buffers touched): can `lost` be recovered?
// Used by the exhaustive MDS tests and by planners that must know whether
// a failure pattern is recoverable before issuing I/O.
bool is_recoverable(const CodeLayout& layout, std::span<const Element> lost);

}  // namespace dcode::codes

#include "codes/stripe.h"

#include <cstring>

namespace dcode::codes {

Stripe::Stripe(const CodeLayout& layout, size_t element_size)
    : layout_(&layout),
      element_size_(element_size),
      disk_size_(element_size * static_cast<size_t>(layout.rows())) {
  DCODE_CHECK(element_size > 0, "element size must be positive");
  disks_.reserve(static_cast<size_t>(layout.cols()));
  for (int c = 0; c < layout.cols(); ++c) {
    disks_.emplace_back(disk_size_);
  }
}

uint8_t* Stripe::at(int row, int col) {
  DCODE_CHECK(row >= 0 && row < layout_->rows(), "row out of range");
  return disks_[static_cast<size_t>(col)].data() +
         static_cast<size_t>(row) * element_size_;
}

const uint8_t* Stripe::at(int row, int col) const {
  DCODE_CHECK(row >= 0 && row < layout_->rows(), "row out of range");
  return disks_[static_cast<size_t>(col)].data() +
         static_cast<size_t>(row) * element_size_;
}

uint8_t* Stripe::disk(int col) {
  return disks_[static_cast<size_t>(col)].data();
}
const uint8_t* Stripe::disk(int col) const {
  return disks_[static_cast<size_t>(col)].data();
}

void Stripe::randomize_data(Pcg32& rng) {
  for (int i = 0; i < layout_->data_count(); ++i) {
    Element e = layout_->data_element(i);
    rng.fill_bytes(at(e), element_size_);
  }
}

void Stripe::erase_disk(int col) {
  disks_[static_cast<size_t>(col)].zero();
}

void Stripe::zero() {
  for (auto& d : disks_) d.zero();
}

Stripe Stripe::clone() const {
  Stripe copy(*layout_, element_size_);
  for (int c = 0; c < layout_->cols(); ++c) {
    std::memcpy(copy.disks_[static_cast<size_t>(c)].data(),
                disks_[static_cast<size_t>(c)].data(), disk_size_);
  }
  return copy;
}

bool Stripe::data_equals(const Stripe& other) const {
  if (layout_ != other.layout_ || element_size_ != other.element_size_)
    return false;
  for (int i = 0; i < layout_->data_count(); ++i) {
    Element e = layout_->data_element(i);
    if (std::memcmp(at(e), other.at(e), element_size_) != 0) return false;
  }
  return true;
}

bool Stripe::equals(const Stripe& other) const {
  if (layout_ != other.layout_ || element_size_ != other.element_size_)
    return false;
  for (int c = 0; c < layout_->cols(); ++c) {
    if (std::memcmp(disk(c), other.disk(c), disk_size_) != 0) return false;
  }
  return true;
}

}  // namespace dcode::codes

// Generic stripe encoder.
//
// Walks the layout's topologically ordered equations and materializes each
// parity with one fused multi-source XOR. Works unchanged for every code
// in the registry; also exposes the XOR-operation count so the complexity
// bench can verify the paper's 2 - 2/(n-2) optimal encoding claim.
#pragma once

#include <cstddef>
#include <span>

#include "codes/stripe.h"

namespace dcode::codes {

// Computes every parity element of `stripe` from its data elements.
void encode_stripe(Stripe& stripe);

// Recomputes only the given equations (by index into layout.equations()).
void encode_equations(Stripe& stripe, std::span<const int> equation_indices);

// XOR single-element operations a full encode performs:
// sum over equations of (|sources| - 1).
size_t encode_xor_count(const CodeLayout& layout);

}  // namespace dcode::codes

// EVENODD (Blaum, Bruck & Menon 1995/1999).
//
// Stripe: (p-1) x (p+2), p prime. Columns 0..p-1 hold data, column p the
// row parities, column p+1 the diagonal parities. The diagonals are
// "adjusted" by S, the XOR of the special diagonal (r + c) mod p == p-1:
//   P[i][p+1] = S ^ XOR{ D[r][c] : (r+c) mod p == i }.
// Because S appears in every diagonal equation, data elements on the
// special diagonal participate in *all* p-1 diagonal parities — EVENODD's
// well-known non-optimal update complexity, and the reason its
// double-failure decode does not always peel (our hybrid decoder falls
// back to GF(2) elimination there).
#pragma once

#include "codes/code_layout.h"

namespace dcode::codes {

class EvenOddLayout final : public CodeLayout {
 public:
  explicit EvenOddLayout(int p);
};

}  // namespace dcode::codes

#include "codes/evenodd.h"

#include "util/modmath.h"
#include "util/primes.h"

namespace dcode::codes {

EvenOddLayout::EvenOddLayout(int p) : CodeLayout("evenodd", p, p - 1, p + 2) {
  DCODE_CHECK(is_prime(p), "EVENODD requires a prime p");
  DCODE_CHECK(p >= 3, "EVENODD needs p >= 3");

  for (int r = 0; r < p - 1; ++r) {
    set_kind(r, p, ElementKind::kParityP);      // row parity disk
    set_kind(r, p + 1, ElementKind::kParityQ);  // diagonal parity disk
  }

  // Row parities over the p data columns.
  for (int r = 0; r < p - 1; ++r) {
    std::vector<Element> sources;
    sources.reserve(static_cast<size_t>(p));
    for (int c = 0; c <= p - 1; ++c) sources.push_back(make_element(r, c));
    add_equation(make_element(r, p), std::move(sources));
  }

  // The S adjuster: data elements on the special diagonal
  // (r + c) mod p == p - 1.
  std::vector<Element> s_diag;
  for (int c = 1; c <= p - 1; ++c) {
    int r = p - 1 - c;
    if (r <= p - 2) s_diag.push_back(make_element(r, c));
  }

  // Diagonal parities: P[i][p+1] = S ^ XOR(diagonal i). Expressed as one
  // XOR equation whose source list concatenates both sets (they are
  // disjoint since i != p-1, so nothing cancels).
  for (int i = 0; i < p - 1; ++i) {
    std::vector<Element> sources = s_diag;
    for (int c = 0; c <= p - 1; ++c) {
      int r = pmod(i - c, p);
      if (r <= p - 2) sources.push_back(make_element(r, c));
    }
    add_equation(make_element(i, p + 1), std::move(sources));
  }

  finalize();
}

}  // namespace dcode::codes

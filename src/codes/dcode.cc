#include "codes/dcode.h"

#include "util/modmath.h"
#include "util/primes.h"

namespace dcode::codes {

DCodeLayout::DCodeLayout(int n) : CodeLayout("dcode", n, n, n) {
  DCODE_CHECK(is_prime(n), "D-Code requires a prime disk count");
  DCODE_CHECK(n >= 5, "D-Code needs n >= 5 (n - 2 data rows, 2 parity rows)");

  for (int c = 0; c < n; ++c) {
    set_kind(n - 2, c, ElementKind::kParityP);  // horizontal parity row
    set_kind(n - 1, c, ElementKind::kParityQ);  // deployment parity row
  }

  const int half = (n - 3) / 2;  // (n-3)/2, integral since n is odd

  // Eq. (1): horizontal parities.
  for (int i = 0; i < n; ++i) {
    std::vector<Element> sources;
    sources.reserve(static_cast<size_t>(n - 2));
    for (int j = 0; j <= n - 3; ++j) {
      int col = pmod(i + j + 2, n);
      int row = pmod(static_cast<int64_t>(half) * (col - j), n - 2);
      sources.push_back(make_element(row, col));
    }
    add_equation(make_element(n - 2, i), std::move(sources));
  }

  // Eq. (2): deployment parities.
  for (int i = 0; i < n; ++i) {
    std::vector<Element> sources;
    sources.reserve(static_cast<size_t>(n - 2));
    for (int j = 0; j <= n - 3; ++j) {
      int col = pmod(i - j - 2, n);
      int row = pmod(static_cast<int64_t>(half) * (col - j), n - 2);
      sources.push_back(make_element(row, col));
    }
    add_equation(make_element(n - 1, i), std::move(sources));
  }

  finalize();
}

std::vector<std::vector<Element>> DCodeLayout::horizontal_groups(int n) {
  DCODE_CHECK(is_prime(n) && n >= 5, "D-Code requires a prime n >= 5");
  // Step 1: identify data elements in row-major ("next horizontal") order.
  // Step 2: chunk the stream into n groups of n-2 consecutive elements.
  std::vector<std::vector<Element>> groups(static_cast<size_t>(n));
  const int total = n * (n - 2);
  for (int id = 0; id < total; ++id) {
    int group = id / (n - 2);
    groups[static_cast<size_t>(group)].push_back(
        make_element(id / n, id % n));
  }
  return groups;
}

int DCodeLayout::horizontal_parity_col(int n, int group) {
  DCODE_CHECK(group >= 0 && group < n, "group out of range");
  // Step 3: the group's last element is D[x][y]; its parity is
  // P[n-2][(y+1) mod n].
  int last_id = group * (n - 2) + (n - 3);
  int y = last_id % n;
  return pmod(y + 1, n);
}

std::vector<std::vector<Element>> DCodeLayout::deployment_groups(int n) {
  DCODE_CHECK(is_prime(n) && n >= 5, "D-Code requires a prime n >= 5");
  // The paper's "next deployment element" walk, disambiguated by its
  // worked example (the printed rule swaps the two cases): from (i, j)
  // with j != 0 go below-left to ((i+1) mod (n-2), j-1); from (i, 0) jump
  // to the last element of the current row, (i, n-1).
  std::vector<std::vector<Element>> groups(static_cast<size_t>(n));
  int i = 0, j = 0;
  const int total = n * (n - 2);
  for (int id = 0; id < total; ++id) {
    groups[static_cast<size_t>(id / (n - 2))].push_back(make_element(i, j));
    if (j != 0) {
      i = pmod(i + 1, n - 2);
      j = j - 1;
    } else {
      j = n - 1;
    }
  }
  return groups;
}

int DCodeLayout::deployment_parity_col(int n, int group) {
  DCODE_CHECK(group >= 0 && group < n, "group out of range");
  // Step 3: group k ("letter" k) stores its parity at column (2 + 2k) mod n
  // of the deployment parity row.
  return pmod(2 + 2 * group, n);
}

}  // namespace dcode::codes

#include "codes/dcode_decoder.h"

#include <deque>

#include "util/modmath.h"
#include "xorops/xor_region.h"

namespace dcode::codes {

ChainDecodeResult dcode_decode_two_disks(Stripe& stripe, int f1, int f2) {
  const CodeLayout& layout = stripe.layout();
  DCODE_CHECK(layout.name() == "dcode",
              "dcode_decode_two_disks requires a D-Code stripe");
  DCODE_CHECK(f1 != f2, "two distinct failed disks required");
  DCODE_CHECK(f1 >= 0 && f1 < layout.cols() && f2 >= 0 && f2 < layout.cols(),
              "failed disk out of range");

  const size_t esize = stripe.element_size();
  const int n = layout.cols();
  ChainDecodeResult result;

  // Unknown tracking.
  std::vector<uint8_t> unknown(static_cast<size_t>(layout.rows()) * n, 0);
  auto idx = [&](Element e) {
    return static_cast<size_t>(e.row) * n + e.col;
  };
  int remaining = 0;
  for (int r = 0; r < layout.rows(); ++r) {
    unknown[idx(make_element(r, f1))] = 1;
    unknown[idx(make_element(r, f2))] = 1;
    remaining += 2;
  }

  const auto& eqs = layout.equations();
  std::vector<int> missing(eqs.size(), 0);
  for (size_t qi = 0; qi < eqs.size(); ++qi) {
    if (unknown[idx(eqs[qi].parity)]) ++missing[qi];
    for (const Element& e : eqs[qi].sources) {
      if (unknown[idx(e)]) ++missing[qi];
    }
  }

  // Seed the queue in the paper's order: the four corner parities first
  // (their equations are the ones missing exactly one element for a
  // generic failure pair), then everything else that is ready.
  std::deque<int> ready;
  std::vector<uint8_t> queued(eqs.size(), 0);
  // Chain continuations go to the front (depth-first along the chain, the
  // paper's order); fresh seeds go to the back.
  auto enqueue = [&](int qi, bool front) {
    if (!queued[static_cast<size_t>(qi)] &&
        missing[static_cast<size_t>(qi)] == 1) {
      queued[static_cast<size_t>(qi)] = 1;
      if (front) {
        ready.push_front(qi);
      } else {
        ready.push_back(qi);
      }
    }
  };
  // Horizontal parity of column c stores equation c (equations 0..n-1 are
  // horizontal by construction order, n..2n-1 deployment).
  const int corners[4] = {
      /* P[n-2][f1-1] */ pmod(f1 - 1, n),
      /* P[n-2][f2-1] */ pmod(f2 - 1, n),
      /* P[n-1][f1+1] */ n + pmod(f1 + 1, n),
      /* P[n-1][f2+1] */ n + pmod(f2 + 1, n),
  };
  for (int qi : corners) enqueue(qi, /*front=*/false);
  for (size_t qi = 0; qi < eqs.size(); ++qi)
    enqueue(static_cast<int>(qi), /*front=*/false);

  std::vector<const uint8_t*> sources;
  while (!ready.empty()) {
    int qi = ready.front();
    ready.pop_front();
    queued[static_cast<size_t>(qi)] = 0;
    if (missing[static_cast<size_t>(qi)] != 1) continue;

    const Equation& q = eqs[static_cast<size_t>(qi)];
    Element target = q.parity;
    if (!unknown[idx(target)]) {
      for (const Element& e : q.sources) {
        if (unknown[idx(e)]) {
          target = e;
          break;
        }
      }
    }

    sources.clear();
    if (target != q.parity) sources.push_back(stripe.at(q.parity));
    for (const Element& e : q.sources) {
      if (e != target) sources.push_back(stripe.at(e));
    }
    xorops::xor_many(stripe.at(target), sources, esize);
    result.xor_ops += sources.size() - 1;
    result.sequence.push_back(ChainStep{target, qi});

    unknown[idx(target)] = 0;
    --remaining;
    for (int mq : layout.equations_containing(target.row, target.col)) {
      --missing[static_cast<size_t>(mq)];
      enqueue(mq, /*front=*/true);
    }
  }

  result.success = remaining == 0;
  return result;
}

}  // namespace dcode::codes

// RDP — Row-Diagonal Parity (Corbett et al., FAST 2004).
//
// The canonical *horizontal* RAID-6 code. Stripe: (p-1) x (p+1), p prime.
// Columns 0..p-2 hold data, column p-1 the row parities, column p the
// diagonal parities. Diagonal d contains the elements (r, c) with
// (r + c) mod p == d over columns 0..p-1 — *including* the row-parity
// column, which is what gives RDP optimal encoding complexity. Diagonal
// p-1 is not stored ("the missing diagonal").
//
// Its two dedicated parity disks serve no normal reads and absorb every
// partial-write update — the unbalanced-I/O problem the D-Code paper
// opens with.
#pragma once

#include "codes/code_layout.h"

namespace dcode::codes {

class RdpLayout final : public CodeLayout {
 public:
  explicit RdpLayout(int p);
};

}  // namespace dcode::codes

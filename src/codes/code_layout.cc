#include "codes/code_layout.h"

#include <algorithm>
#include <set>

namespace dcode::codes {

CodeLayout::CodeLayout(std::string name, int p, int rows, int cols,
                       int tolerance)
    : name_(std::move(name)), p_(p), rows_(rows), cols_(cols),
      tolerance_(tolerance) {
  DCODE_CHECK(rows_ > 0 && cols_ > 0, "stripe must be non-empty");
  DCODE_CHECK(tolerance_ >= 1, "a code must tolerate at least one failure");
  kinds_.assign(static_cast<size_t>(rows_) * cols_, ElementKind::kData);
}

void CodeLayout::add_equation(Element parity, std::vector<Element> sources) {
  DCODE_CHECK(!sources.empty(), "parity equation needs at least one source");
  // Canonicalize: sort sources; XOR semantics mean duplicate pairs cancel,
  // so strike out elements appearing an even number of times.
  std::sort(sources.begin(), sources.end());
  std::vector<Element> canonical;
  canonical.reserve(sources.size());
  for (size_t i = 0; i < sources.size();) {
    size_t j = i;
    while (j < sources.size() && sources[j] == sources[i]) ++j;
    if ((j - i) % 2 == 1) canonical.push_back(sources[i]);
    i = j;
  }
  DCODE_CHECK(!canonical.empty(), "equation cancelled to empty source set");
  for (const Element& e : canonical) {
    DCODE_CHECK(e != parity, "parity element cannot be its own source");
    (void)cell_index(e.row, e.col);  // bounds-check
  }
  equations_.push_back(Equation{parity, std::move(canonical)});
}

void CodeLayout::finalize() {
  const size_t ncells = kinds_.size();

  // Data addressing: row-major over data cells.
  data_index_.assign(ncells, -1);
  data_elements_.clear();
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      if (kind(r, c) == ElementKind::kData) {
        data_index_[cell_index(r, c)] = static_cast<int>(data_elements_.size());
        data_elements_.push_back(make_element(r, c));
      }
    }
  }

  // Parity-equation ownership and membership lists.
  parity_equation_.assign(ncells, -1);
  membership_.assign(ncells, {});
  for (size_t qi = 0; qi < equations_.size(); ++qi) {
    const Equation& q = equations_[qi];
    size_t pc = cell_index(q.parity.row, q.parity.col);
    DCODE_CHECK(kinds_[pc] != ElementKind::kData,
                "equation parity must be marked as a parity cell");
    DCODE_CHECK(parity_equation_[pc] == -1,
                "a parity element can store only one equation");
    parity_equation_[pc] = static_cast<int>(qi);
    membership_[pc].push_back(static_cast<int>(qi));
    std::set<Element> seen;
    for (const Element& e : q.sources) {
      DCODE_CHECK(seen.insert(e).second, "duplicate source in equation");
      membership_[cell_index(e.row, e.col)].push_back(static_cast<int>(qi));
    }
  }
  // Every parity cell must store exactly one equation, and every data cell
  // must be protected by at least one.
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      size_t idx = cell_index(r, c);
      if (kinds_[idx] == ElementKind::kData) {
        DCODE_CHECK(!membership_[idx].empty(),
                    "data element not covered by any parity");
      } else {
        DCODE_CHECK(parity_equation_[idx] >= 0,
                    "parity cell without an equation");
      }
    }
  }

  // Topological encode order: an equation is ready once every parity
  // element among its sources has been computed.
  encode_order_.clear();
  std::vector<bool> computed(equations_.size(), false);
  bool progress = true;
  while (encode_order_.size() < equations_.size() && progress) {
    progress = false;
    for (size_t qi = 0; qi < equations_.size(); ++qi) {
      if (computed[qi]) continue;
      bool ready = true;
      for (const Element& e : equations_[qi].sources) {
        size_t idx = cell_index(e.row, e.col);
        if (kinds_[idx] != ElementKind::kData) {
          int dep = parity_equation_[idx];
          if (dep >= 0 && !computed[static_cast<size_t>(dep)]) {
            ready = false;
            break;
          }
        }
      }
      if (ready) {
        computed[qi] = true;
        encode_order_.push_back(static_cast<int>(qi));
        progress = true;
      }
    }
  }
  DCODE_CHECK(encode_order_.size() == equations_.size(),
              "cyclic parity dependencies — layout cannot be encoded");
}

std::vector<Element> CodeLayout::elements_on_disk(int disk) const {
  DCODE_CHECK(disk >= 0 && disk < cols_, "disk index out of range");
  std::vector<Element> out;
  out.reserve(static_cast<size_t>(rows_));
  for (int r = 0; r < rows_; ++r) out.push_back(make_element(r, disk));
  return out;
}

int CodeLayout::parity_elements_on_disk(int disk) const {
  DCODE_CHECK(disk >= 0 && disk < cols_, "disk index out of range");
  int n = 0;
  for (int r = 0; r < rows_; ++r) n += is_parity(r, disk) ? 1 : 0;
  return n;
}

}  // namespace dcode::codes

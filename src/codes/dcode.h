// D-Code — the paper's contribution (Fu & Shu, IPDPS 2015).
//
// Stripe: n x n, n prime (one column per disk). Rows 0..n-3 hold data;
// row n-2 holds the *horizontal* parities and row n-1 the *deployment*
// parities, so parity is spread evenly (exactly two parity elements per
// disk) and all data sits in a contiguous band every disk contributes to.
//
// Horizontal parity i (Eq. 1 of the paper):
//   P[n-2][i] = XOR_{j=0..n-3} D[ ((n-3)/2 * ((i+j+2)%n - j)) % (n-2) ]
//                              [ (i+j+2) % n ]
// Each horizontal parity covers n-2 *consecutive* elements of the
// row-major data stream (groups wrap across row ends, shifting 2 columns
// per row) — this is what makes partial stripe writes cheap.
//
// Deployment parity i (Eq. 2):
//   P[n-1][i] = XOR_{j=0..n-3} D[ ((n-3)/2 * ((i-j-2)%n - j)) % (n-2) ]
//                              [ (i-j-2) % n ]
// Deployment groups follow the paper's "deployment walk": from (i, j) go
// below-left to ((i+1) % (n-2), j-1), and from column 0 jump to the end of
// the current row.
//
// Both the closed forms above and the paper's 4-step procedural
// constructions are implemented; tests assert they generate identical
// equations for every prime, which caught transcription typos in the
// paper's own Eq. 2 rendering (the published text garbles the walk's
// j = 0 case; the worked figure disambiguates it).
#pragma once

#include <memory>

#include "codes/code_layout.h"

namespace dcode::codes {

class DCodeLayout final : public CodeLayout {
 public:
  // `n`: disk count; must be prime and >= 5.
  explicit DCodeLayout(int n);

  // The paper's procedural constructions (§III-A steps 1–4), exposed for
  // cross-validation and for the layout_explorer example:
  // horizontal_groups()[g] lists the data elements labeled with number g;
  // deployment_groups()[g] lists those labeled with letter g.
  // Group g's parity columns are horizontal_parity_col(g) /
  // deployment_parity_col(g).
  static std::vector<std::vector<Element>> horizontal_groups(int n);
  static std::vector<std::vector<Element>> deployment_groups(int n);
  static int horizontal_parity_col(int n, int group);
  static int deployment_parity_col(int n, int group);
};

}  // namespace dcode::codes

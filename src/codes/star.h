// STAR code (Huang & Xu, 2005/2008): EVENODD extended to tolerate THREE
// concurrent disk failures — the "beyond RAID-6" extension the D-Code
// paper's related-work section gestures at (STAIR, triple-parity).
//
// Stripe: (p-1) x (p+3), p prime. Columns 0..p-1 hold data; column p the
// row parities; column p+1 the EVENODD diagonal parities (classes
// (r + c) mod p == i, adjusted by S1 = class p-1); column p+2 the
// anti-diagonal parities (classes (r - c) mod p == i, adjusted by
// S2 = class p-1).
//
// Triple-failure recovery runs through the generic GF(2) elimination
// decoder — no code-specific decode needed — and the construction is
// validated exhaustively: every C(p+3, 3) disk triple decodes for every
// prime in the test sweep.
#pragma once

#include "codes/code_layout.h"

namespace dcode::codes {

class StarLayout final : public CodeLayout {
 public:
  explicit StarLayout(int p);
};

}  // namespace dcode::codes

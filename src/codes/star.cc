#include "codes/star.h"

#include "util/modmath.h"
#include "util/primes.h"

namespace dcode::codes {

StarLayout::StarLayout(int p)
    : CodeLayout("star", p, p - 1, p + 3, /*tolerance=*/3) {
  DCODE_CHECK(is_prime(p), "STAR requires a prime p");
  DCODE_CHECK(p >= 3, "STAR needs p >= 3");

  for (int r = 0; r < p - 1; ++r) {
    set_kind(r, p, ElementKind::kParityP);      // row parity disk
    set_kind(r, p + 1, ElementKind::kParityQ);  // diagonal parity disk
    set_kind(r, p + 2, ElementKind::kParityQ);  // anti-diagonal parity disk
  }

  // Data elements of a wrapped class. sign=+1: (r + c) mod p == s
  // (diagonals); sign=-1: (r - c) mod p == s (anti-diagonals).
  auto klass = [&](int sign, int s) {
    std::vector<Element> out;
    for (int c = 0; c <= p - 1; ++c) {
      int r = sign > 0 ? pmod(s - c, p) : pmod(s + c, p);
      if (r <= p - 2) out.push_back(make_element(r, c));
    }
    return out;
  };

  // Row parities.
  for (int r = 0; r < p - 1; ++r) {
    std::vector<Element> row;
    row.reserve(static_cast<size_t>(p));
    for (int c = 0; c <= p - 1; ++c) row.push_back(make_element(r, c));
    add_equation(make_element(r, p), std::move(row));
  }

  // Diagonal parities (EVENODD): P[i][p+1] = S1 ^ class(+1, i).
  for (int i = 0; i < p - 1; ++i) {
    std::vector<Element> sources = klass(+1, p - 1);  // S1
    auto ci = klass(+1, i);
    sources.insert(sources.end(), ci.begin(), ci.end());
    add_equation(make_element(i, p + 1), std::move(sources));
  }

  // Anti-diagonal parities: P[i][p+2] = S2 ^ class(-1, i).
  for (int i = 0; i < p - 1; ++i) {
    std::vector<Element> sources = klass(-1, p - 1);  // S2
    auto ci = klass(-1, i);
    sources.insert(sources.end(), ci.begin(), ci.end());
    add_equation(make_element(i, p + 2), std::move(sources));
  }

  finalize();
}

}  // namespace dcode::codes

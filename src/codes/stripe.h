// Stripe: the byte storage behind one stripe of a layout.
//
// Storage is disk-major (one aligned buffer per column) because that is
// how a RAID controller sees it: element (r, c) lives at offset
// r * element_size on disk c. The view accessors return raw pointers so
// the XOR kernels work in place with zero copies.
#pragma once

#include <cstddef>
#include <vector>

#include "codes/code_layout.h"
#include "util/aligned_buffer.h"
#include "util/rng.h"

namespace dcode::codes {

class Stripe {
 public:
  Stripe(const CodeLayout& layout, size_t element_size);

  const CodeLayout& layout() const { return *layout_; }
  size_t element_size() const { return element_size_; }

  uint8_t* at(int row, int col);
  const uint8_t* at(int row, int col) const;
  uint8_t* at(Element e) { return at(e.row, e.col); }
  const uint8_t* at(Element e) const { return at(e.row, e.col); }

  uint8_t* disk(int col);
  const uint8_t* disk(int col) const;
  size_t disk_size() const { return disk_size_; }

  // Fill every data element with pseudo-random bytes (tests/benches).
  void randomize_data(Pcg32& rng);
  // Zero one whole column, simulating a disk erasure.
  void erase_disk(int col);
  void zero();

  // Deep copy (stripes are otherwise move-only via the buffers).
  Stripe clone() const;

  bool data_equals(const Stripe& other) const;
  bool equals(const Stripe& other) const;

 private:
  const CodeLayout* layout_;
  size_t element_size_;
  size_t disk_size_;
  std::vector<AlignedBuffer> disks_;
};

}  // namespace dcode::codes

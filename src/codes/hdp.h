// HDP — Horizontal-Diagonal Parity code (Wu et al., DSN 2010).
//
// Stripe: (p-1) x (p-1), p prime. The horizontal parities sit on the main
// diagonal C[i][i] and the diagonal parities on the anti-diagonal
// C[i][p-2-i], so parity is spread across all disks — HDP is one of the
// two "well-balanced" baselines (with X-Code) in the D-Code paper's
// Figure 4, and like X-Code it pays for balance with extra partial-write
// I/O (Figure 5).
//
//   Horizontal: C[i][i]     = XOR of every other element of row i —
//               including the embedded anti-diagonal parity element, the
//               way RDP's diagonals cover the row parities.
//   Diagonal:   C[i][p-2-i] = XOR of the data elements on the wrapped
//               diagonal line (col - row) mod p == -2(i+1) mod p — the
//               line through the parity cell itself (which is excluded;
//               the line meets no other parity cell).
//
// This coupling is what makes HDP partial writes dear (the D-Code paper's
// Figure 5): updating a data element dirties its row parity, its diagonal
// parity, and — because the diagonal parity lives in *another* row whose
// horizontal parity covers it — that row's horizontal parity too, so a
// run of L consecutive elements touches ~2L+2 parities, X-Code-class
// cost, despite the shared row parity.
//
// The D-Code paper does not restate HDP's equations, so HdpVariant keeps
// the construction knobs explicit. The shipped defaults are the unique
// natural variant (parity covers its own line; rows cover embedded
// parities) that passes the exhaustive two-disk-failure MDS check for
// every prime up to 19 (re-verified in tests/mds_test.cc).
#pragma once

#include "codes/code_layout.h"

namespace dcode::codes {

struct HdpVariant {
  // Does the row parity cover the anti-diagonal parity embedded in its
  // row?
  bool row_covers_anti_parity = true;
  // Do the diagonal parities cover horizontal parity cells their line
  // crosses? (With the default family/slope the line never crosses one.)
  bool anti_covers_horizontal_parity = false;
  // Line family of parity i: kDiff means (col - row) mod p == s(i),
  // kSum means (row + col) mod p == s(i), with s(i) = slope*i + offset.
  enum class Family { kDiff, kSum };
  Family family = Family::kDiff;
  int slope = -2;
  int offset = -2;
};

class HdpLayout final : public CodeLayout {
 public:
  explicit HdpLayout(int p);
  // Exposed for construction-search tooling and variant tests.
  HdpLayout(int p, const HdpVariant& variant);
};

}  // namespace dcode::codes

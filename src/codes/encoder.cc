#include "codes/encoder.h"

#include <vector>

#include "xorops/xor_region.h"

namespace dcode::codes {

void encode_equations(Stripe& stripe, std::span<const int> equation_indices) {
  const CodeLayout& layout = stripe.layout();
  const size_t esize = stripe.element_size();
  std::vector<const uint8_t*> sources;
  for (int qi : equation_indices) {
    const Equation& q = layout.equations()[static_cast<size_t>(qi)];
    sources.clear();
    sources.reserve(q.sources.size());
    for (const Element& e : q.sources) sources.push_back(stripe.at(e));
    xorops::xor_many(stripe.at(q.parity), sources, esize);
  }
}

void encode_stripe(Stripe& stripe) {
  encode_equations(stripe, stripe.layout().encode_order());
}

size_t encode_xor_count(const CodeLayout& layout) {
  size_t n = 0;
  for (const Equation& q : layout.equations()) {
    n += q.sources.size() - 1;
  }
  return n;
}

}  // namespace dcode::codes

// Layout factory: codes by name, the way benches/examples select them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "codes/code_layout.h"

namespace dcode::codes {

enum class CodeId {
  kDCode, kXCode, kRdp, kEvenOdd, kHCode, kHdp, kPCode, kLiberation,
  kStar  // three-fault-tolerant (beyond RAID-6)
};

// Human-readable ids: "dcode", "xcode", "rdp", "evenodd", "hcode", "hdp",
// "pcode", "liberation", "star".
const std::vector<std::string>& all_code_names();

// Throws std::logic_error for unknown names or invalid primes.
std::unique_ptr<CodeLayout> make_layout(const std::string& name, int p);
std::unique_ptr<CodeLayout> make_layout(CodeId id, int p);

// The five codes the paper's evaluation compares (Figures 4–7), in the
// paper's legend order: rdp, hcode, hdp, xcode, dcode.
const std::vector<std::string>& paper_comparison_codes();

}  // namespace dcode::codes

// D-Code's double-disk-failure reconstruction (paper §III-C).
//
// When disks f1 < f2 fail, recovery starts from the four "corner" parities
// the failed columns do not touch — horizontal parities at columns f1-1
// and f2-1, deployment parities at columns f1+1 and f2+1 — and walks
// recovery chains that alternate between the horizontal and deployment
// equations of the just-recovered element, exactly as in the paper's
// Figure 3 example ({D13 -> D22 -> D23 -> D32 -> D33 -> P62}, ...).
//
// The implementation is a deterministic work-queue peel over D-Code's
// equations: seeded with every equation that has exactly one member on a
// failed disk (the four corners for a generic failure pair), each resolved
// element enqueues its *other* equation. It records the full recovery
// sequence so tests can check the paper's chains verbatim and the
// recovery_walkthrough example can print them.
#pragma once

#include <vector>

#include "codes/stripe.h"

namespace dcode::codes {

struct ChainStep {
  Element recovered;      // the element reconstructed at this step
  int equation;           // index into layout.equations() used to do it
};

struct ChainDecodeResult {
  bool success = false;
  std::vector<ChainStep> sequence;  // in recovery order
  size_t xor_ops = 0;
};

// Rebuilds all elements of failed disks f1 and f2 in place. The stripe's
// layout must be a DCodeLayout (checked); other codes go through the
// generic decoders.
ChainDecodeResult dcode_decode_two_disks(Stripe& stripe, int f1, int f2);

}  // namespace dcode::codes

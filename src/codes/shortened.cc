#include "codes/shortened.h"

#include <vector>

#include "codes/registry.h"
#include "util/primes.h"

namespace dcode::codes {

int droppable_columns(const CodeLayout& base) {
  int n = 0;
  for (int c = 0; c < base.cols(); ++c) {
    if (base.parity_elements_on_disk(c) == 0) ++n;
  }
  return n;
}

namespace {

// Old-column -> new-column map after dropping the `drop` highest-index
// pure-data columns; -1 marks a dropped (virtual, all-zero) column.
std::vector<int> column_remap(const CodeLayout& base, int drop) {
  std::vector<bool> dropped(static_cast<size_t>(base.cols()), false);
  int remaining = drop;
  for (int c = base.cols() - 1; c >= 0 && remaining > 0; --c) {
    if (base.parity_elements_on_disk(c) == 0) {
      dropped[static_cast<size_t>(c)] = true;
      --remaining;
    }
  }
  DCODE_CHECK(remaining == 0,
              "can only drop pure-data columns (vertical codes have none)");
  std::vector<int> map(static_cast<size_t>(base.cols()), -1);
  int next = 0;
  for (int c = 0; c < base.cols(); ++c) {
    if (!dropped[static_cast<size_t>(c)]) map[static_cast<size_t>(c)] = next++;
  }
  return map;
}

}  // namespace

ShortenedLayout::ShortenedLayout(const CodeLayout& base, int drop)
    : CodeLayout(base.name() + "-short", base.prime(), base.rows(),
                 base.cols() - drop),
      drop_(drop) {
  DCODE_CHECK(drop >= 0 && drop < base.cols(), "invalid shortening amount");
  const std::vector<int> remap = column_remap(base, drop);

  for (int r = 0; r < rows(); ++r) {
    for (int c = 0; c < base.cols(); ++c) {
      int nc = remap[static_cast<size_t>(c)];
      if (nc >= 0) set_kind(r, nc, base.kind(r, c));
    }
  }

  for (const Equation& q : base.equations()) {
    int pc = remap[static_cast<size_t>(q.parity.col)];
    DCODE_ASSERT(pc >= 0, "parity columns are never dropped");
    std::vector<Element> sources;
    sources.reserve(q.sources.size());
    for (const Element& e : q.sources) {
      int nc = remap[static_cast<size_t>(e.col)];
      if (nc >= 0) sources.push_back(make_element(e.row, nc));
      // Dropped sources are virtual zeros: XORing them away is free.
    }
    DCODE_CHECK(!sources.empty(), "equation lost every source");
    add_equation(make_element(q.parity.row, pc), std::move(sources));
  }

  finalize();
}

std::unique_ptr<CodeLayout> make_shortened_layout(const std::string& family,
                                                  int disks) {
  DCODE_CHECK(disks >= 4, "RAID-6 needs at least 4 disks");
  // Find the smallest prime whose layout has >= disks columns and enough
  // droppable data columns to land exactly on `disks`.
  for (int p = 5; p < disks + 200; p = next_prime(p + 1)) {
    std::unique_ptr<CodeLayout> base;
    try {
      base = make_layout(family, p);
    } catch (const std::logic_error&) {
      continue;  // family minimum not reached yet
    }
    if (base->cols() == disks) return base;  // exact fit, no shortening
    if (base->cols() < disks) continue;
    int drop = base->cols() - disks;
    if (droppable_columns(*base) >= drop) {
      return std::make_unique<ShortenedLayout>(*base, drop);
    }
    // Columns available but not droppable: a vertical family with parity
    // on every disk. No larger prime changes that.
    DCODE_CHECK(false, family + " cannot be shortened to " +
                           std::to_string(disks) +
                           " disks (parity on every column)");
  }
  DCODE_CHECK(false, "no viable prime found for " + family);
  return nullptr;
}

}  // namespace dcode::codes

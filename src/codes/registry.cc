#include "codes/registry.h"

#include "codes/dcode.h"
#include "codes/evenodd.h"
#include "codes/hcode.h"
#include "codes/hdp.h"
#include "codes/liberation.h"
#include "codes/pcode.h"
#include "codes/rdp.h"
#include "codes/star.h"
#include "codes/xcode.h"
#include "util/check.h"

namespace dcode::codes {

const std::vector<std::string>& all_code_names() {
  static const std::vector<std::string> names = {
      "dcode", "xcode", "rdp", "evenodd", "hcode", "hdp", "pcode",
      "liberation", "star"};
  return names;
}

const std::vector<std::string>& paper_comparison_codes() {
  static const std::vector<std::string> names = {"rdp", "hcode", "hdp",
                                                 "xcode", "dcode"};
  return names;
}

std::unique_ptr<CodeLayout> make_layout(CodeId id, int p) {
  switch (id) {
    case CodeId::kDCode:
      return std::make_unique<DCodeLayout>(p);
    case CodeId::kXCode:
      return std::make_unique<XCodeLayout>(p);
    case CodeId::kRdp:
      return std::make_unique<RdpLayout>(p);
    case CodeId::kEvenOdd:
      return std::make_unique<EvenOddLayout>(p);
    case CodeId::kHCode:
      return std::make_unique<HCodeLayout>(p);
    case CodeId::kHdp:
      return std::make_unique<HdpLayout>(p);
    case CodeId::kPCode:
      return std::make_unique<PCodeLayout>(p);
    case CodeId::kLiberation:
      return std::make_unique<LiberationLayout>(p);
    case CodeId::kStar:
      return std::make_unique<StarLayout>(p);
  }
  DCODE_CHECK(false, "unknown code id");
  return nullptr;
}

std::unique_ptr<CodeLayout> make_layout(const std::string& name, int p) {
  if (name == "dcode") return make_layout(CodeId::kDCode, p);
  if (name == "xcode") return make_layout(CodeId::kXCode, p);
  if (name == "rdp") return make_layout(CodeId::kRdp, p);
  if (name == "evenodd") return make_layout(CodeId::kEvenOdd, p);
  if (name == "hcode") return make_layout(CodeId::kHCode, p);
  if (name == "hdp") return make_layout(CodeId::kHdp, p);
  if (name == "pcode") return make_layout(CodeId::kPCode, p);
  if (name == "liberation") return make_layout(CodeId::kLiberation, p);
  if (name == "star") return make_layout(CodeId::kStar, p);
  DCODE_CHECK(false, "unknown code name: " + name);
  return nullptr;
}

}  // namespace dcode::codes

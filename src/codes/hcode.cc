#include "codes/hcode.h"

#include "util/modmath.h"
#include "util/primes.h"

namespace dcode::codes {

HCodeLayout::HCodeLayout(int p) : CodeLayout("hcode", p, p - 1, p + 1) {
  DCODE_CHECK(is_prime(p), "H-Code requires a prime p");
  DCODE_CHECK(p >= 5, "H-Code needs p >= 5");

  for (int i = 0; i < p - 1; ++i) {
    set_kind(i, p, ElementKind::kParityP);      // horizontal parity disk
    set_kind(i, i + 1, ElementKind::kParityQ);  // anti-diagonal parities
  }

  // Horizontal parities: whole row except the embedded anti-diagonal
  // parity element.
  for (int i = 0; i < p - 1; ++i) {
    std::vector<Element> sources;
    sources.reserve(static_cast<size_t>(p - 1));
    for (int j = 0; j <= p - 1; ++j) {
      if (j == i + 1) continue;
      sources.push_back(make_element(i, j));
    }
    add_equation(make_element(i, p), std::move(sources));
  }

  // Anti-diagonal parities: line (col - row) mod p == i + 2, one element
  // per data row.
  for (int i = 0; i < p - 1; ++i) {
    std::vector<Element> sources;
    sources.reserve(static_cast<size_t>(p - 1));
    for (int j = 0; j <= p - 2; ++j) {
      sources.push_back(make_element(j, pmod(i + j + 2, p)));
    }
    add_equation(make_element(i, i + 1), std::move(sources));
  }

  finalize();
}

}  // namespace dcode::codes

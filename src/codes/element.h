// Element addressing inside one stripe of an array code.
//
// Every RAID-6 array code in this library lays a stripe out as a
// rows x cols matrix of fixed-size elements, one column per disk. An
// Element names one cell; ordering is row-major so elements sort in the
// same order the papers enumerate "continuous data elements".
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace dcode::codes {

struct Element {
  int16_t row = 0;
  int16_t col = 0;

  friend auto operator<=>(const Element&, const Element&) = default;
};

inline Element make_element(int row, int col) {
  return Element{static_cast<int16_t>(row), static_cast<int16_t>(col)};
}

struct ElementHash {
  size_t operator()(const Element& e) const {
    return std::hash<uint32_t>{}(
        (static_cast<uint32_t>(static_cast<uint16_t>(e.row)) << 16) |
        static_cast<uint16_t>(e.col));
  }
};

// What a cell holds. Codes with two parity families map them to kParityP
// (first family: horizontal/diagonal/row) and kParityQ (second family:
// deployment/anti-diagonal/diagonal), in the order the papers define them.
enum class ElementKind : uint8_t { kData, kParityP, kParityQ };

}  // namespace dcode::codes

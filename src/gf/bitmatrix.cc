#include "gf/bitmatrix.h"

#include <cstring>

#include "xorops/xor_region.h"

namespace dcode::gf {

BitMatrix to_bitmatrix(const GaloisField& f, const Matrix& m) {
  const int w = f.w();
  BitMatrix bm;
  bm.rows = m.rows() * w;
  bm.cols = m.cols() * w;
  bm.bits.assign(static_cast<size_t>(bm.rows) * bm.cols, 0);

  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) {
      uint32_t e = m.at(i, j);
      // Column b of the w x w block is the bit pattern of e * x^b.
      uint32_t v = e;
      for (int b = 0; b < w; ++b) {
        for (int r = 0; r < w; ++r) {
          bm.at(i * w + r, j * w + b) = (v >> r) & 1u;
        }
        v = f.mul(v, 2);
      }
    }
  }
  return bm;
}

namespace {

// Emit the ops for one output bit-row computed from scratch.
void emit_row(const BitMatrix& bm, int row, int dst_device, int dst_bit,
              int w, std::vector<ScheduleOp>* ops) {
  bool first = true;
  for (int c = 0; c < bm.cols; ++c) {
    if (!bm.at(row, c)) continue;
    ops->push_back(ScheduleOp{c / w, c % w, dst_device, dst_bit, first});
    first = false;
  }
  DCODE_ASSERT(!first, "coding bit-row must have at least one input");
}

int row_weight(const BitMatrix& bm, int row) {
  int weight = 0;
  for (int c = 0; c < bm.cols; ++c) weight += bm.at(row, c);
  return weight;
}

int row_distance(const BitMatrix& bm, int r1, int r2) {
  int distance = 0;
  for (int c = 0; c < bm.cols; ++c)
    distance += bm.at(r1, c) != bm.at(r2, c);
  return distance;
}

}  // namespace

std::vector<ScheduleOp> dumb_schedule(const BitMatrix& bm, int k, int m,
                                      int w) {
  DCODE_CHECK(bm.rows == m * w && bm.cols == k * w,
              "bitmatrix shape mismatch");
  std::vector<ScheduleOp> ops;
  for (int r = 0; r < bm.rows; ++r) {
    emit_row(bm, r, r / w, r % w, w, &ops);
  }
  return ops;
}

std::vector<ScheduleOp> smart_schedule(const BitMatrix& bm, int k, int m,
                                       int w) {
  DCODE_CHECK(bm.rows == m * w && bm.cols == k * w,
              "bitmatrix shape mismatch");
  std::vector<ScheduleOp> ops;
  for (int r = 0; r < bm.rows; ++r) {
    const int dst_device = r / w;
    const int dst_bit = r % w;
    if (r % w == 0) {
      // First row of an output device: nothing to derive from.
      emit_row(bm, r, dst_device, dst_bit, w, &ops);
      continue;
    }
    int weight = row_weight(bm, r);
    int distance = row_distance(bm, r, r - 1);
    if (distance + 1 < weight) {
      // Derive from the previous bit-row of the same device: copy it, then
      // XOR in only the differing columns.
      ops.push_back(ScheduleOp{k + dst_device, dst_bit - 1, dst_device,
                               dst_bit, true});
      for (int c = 0; c < bm.cols; ++c) {
        if (bm.at(r, c) != bm.at(r - 1, c)) {
          ops.push_back(ScheduleOp{c / w, c % w, dst_device, dst_bit, false});
        }
      }
    } else {
      emit_row(bm, r, dst_device, dst_bit, w, &ops);
    }
  }
  return ops;
}

void apply_schedule(const std::vector<ScheduleOp>& ops,
                    const std::vector<const uint8_t*>& data,
                    const std::vector<uint8_t*>& coding, int w, size_t size) {
  DCODE_CHECK(size % static_cast<size_t>(w) == 0,
              "buffer size must divide into w packets");
  const size_t packet = size / static_cast<size_t>(w);
  const int k = static_cast<int>(data.size());

  auto src_ptr = [&](int device, int bit) -> const uint8_t* {
    if (device < k) return data[device] + static_cast<size_t>(bit) * packet;
    return coding[device - k] + static_cast<size_t>(bit) * packet;
  };

  for (const auto& op : ops) {
    uint8_t* dst = coding[op.dst_device] + static_cast<size_t>(op.dst_bit) * packet;
    const uint8_t* src = src_ptr(op.src_device, op.src_bit);
    if (op.assign) {
      std::memcpy(dst, src, packet);
    } else {
      xorops::xor_into(dst, src, packet);
    }
  }
}

}  // namespace dcode::gf

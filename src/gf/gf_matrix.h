// Dense matrices over GF(2^w): the linear-algebra layer under the
// Reed–Solomon codecs.
//
// A codec's generator is a (k+m) x k matrix whose top k rows are the
// identity (systematic form); decoding inverts the k x k submatrix of
// surviving rows. Cauchy generators are used because *every* square
// submatrix of a Cauchy matrix is invertible, which makes the code MDS by
// construction; Vandermonde generators are provided in jerasure's
// "distilled" systematic form for compatibility.
#pragma once

#include <cstdint>
#include <vector>

#include "gf/gf.h"

namespace dcode::gf {

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, 0) {
    DCODE_CHECK(rows >= 0 && cols >= 0, "negative matrix dimensions");
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  uint32_t& at(int r, int c) {
    DCODE_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                 "matrix index out of range");
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  uint32_t at(int r, int c) const {
    DCODE_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                 "matrix index out of range");
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  const uint32_t* row(int r) const {
    return &data_[static_cast<size_t>(r) * cols_];
  }

  bool operator==(const Matrix& other) const = default;

  static Matrix identity(int n);

 private:
  int rows_, cols_;
  std::vector<uint32_t> data_;
};

// C = A * B over the field.
Matrix multiply(const GaloisField& f, const Matrix& a, const Matrix& b);

// Gauss–Jordan inverse. Returns false (and leaves `out` unspecified) if the
// matrix is singular.
bool invert(const GaloisField& f, const Matrix& m, Matrix* out);

// m x k Cauchy coding matrix: entry (i, j) = 1 / (x_i + y_j) with
// x_i = i + k, y_j = j. Requires k + m <= 2^w. Every square submatrix of
// the stacked [I; C] generator is invertible, so the resulting code is MDS.
Matrix cauchy_coding_matrix(const GaloisField& f, int k, int m);

// m x k systematic Vandermonde coding matrix, distilled the same way
// jerasure does it: build the (k+m) x k Vandermonde matrix, reduce the top
// block to identity with column operations, return the bottom m rows.
Matrix vandermonde_coding_matrix(const GaloisField& f, int k, int m);

}  // namespace dcode::gf

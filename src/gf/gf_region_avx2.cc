// 256-bit (AVX2 VPSHUFB) GF(2^8) region-multiply backend.
#include "gf/gf_region.h"

#ifdef DCODE_HAVE_ISA_AVX2

#include <immintrin.h>

#include "gf/gf_simd_impl.h"

namespace dcode::gf::detail {
namespace {

struct Avx2Traits {
  using V = __m256i;
  static V load(const uint8_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(uint8_t* p, V v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static V vxor(V a, V b) { return _mm256_xor_si256(a, b); }
  static V broadcast_table(const uint8_t* t) {
    return _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t)));
  }
  static V low_nibbles(V v) {
    return _mm256_and_si256(v, _mm256_set1_epi8(0x0f));
  }
  static V high_nibbles(V v) {
    return _mm256_and_si256(_mm256_srli_epi64(v, 4), _mm256_set1_epi8(0x0f));
  }
  static V shuffle(V table, V idx) { return _mm256_shuffle_epi8(table, idx); }
};

}  // namespace

void mul_region8_avx2(uint8_t* dst, const uint8_t* src, const uint8_t* nib,
                      const uint8_t* row, size_t len, bool accumulate) {
  simd_mul_region8<Avx2Traits>(dst, src, nib, row, len, accumulate);
}

}  // namespace dcode::gf::detail

#endif  // DCODE_HAVE_ISA_AVX2

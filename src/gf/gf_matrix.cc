#include "gf/gf_matrix.h"

namespace dcode::gf {

Matrix Matrix::identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

Matrix multiply(const GaloisField& f, const Matrix& a, const Matrix& b) {
  DCODE_CHECK(a.cols() == b.rows(), "dimension mismatch in matrix multiply");
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int l = 0; l < a.cols(); ++l) {
      uint32_t av = a.at(i, l);
      if (av == 0) continue;
      for (int j = 0; j < b.cols(); ++j) {
        c.at(i, j) ^= f.mul(av, b.at(l, j));
      }
    }
  }
  return c;
}

bool invert(const GaloisField& f, const Matrix& m, Matrix* out) {
  DCODE_CHECK(m.rows() == m.cols(), "only square matrices invert");
  const int n = m.rows();
  Matrix a = m;
  Matrix inv = Matrix::identity(n);

  for (int col = 0; col < n; ++col) {
    // Find a pivot at or below the diagonal.
    int pivot = -1;
    for (int r = col; r < n; ++r) {
      if (a.at(r, col) != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) return false;
    if (pivot != col) {
      for (int c = 0; c < n; ++c) {
        std::swap(a.at(pivot, c), a.at(col, c));
        std::swap(inv.at(pivot, c), inv.at(col, c));
      }
    }
    // Normalize the pivot row.
    uint32_t d = a.at(col, col);
    if (d != 1) {
      uint32_t dinv = f.inverse(d);
      for (int c = 0; c < n; ++c) {
        a.at(col, c) = f.mul(a.at(col, c), dinv);
        inv.at(col, c) = f.mul(inv.at(col, c), dinv);
      }
    }
    // Eliminate everywhere else.
    for (int r = 0; r < n; ++r) {
      if (r == col) continue;
      uint32_t factor = a.at(r, col);
      if (factor == 0) continue;
      for (int c = 0; c < n; ++c) {
        a.at(r, c) ^= f.mul(factor, a.at(col, c));
        inv.at(r, c) ^= f.mul(factor, inv.at(col, c));
      }
    }
  }
  *out = std::move(inv);
  return true;
}

Matrix cauchy_coding_matrix(const GaloisField& f, int k, int m) {
  DCODE_CHECK(k > 0 && m > 0, "k and m must be positive");
  DCODE_CHECK(static_cast<uint32_t>(k + m) <= f.size(),
              "k + m exceeds the field size");
  Matrix c(m, k);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < k; ++j) {
      uint32_t xi = static_cast<uint32_t>(i + k);
      uint32_t yj = static_cast<uint32_t>(j);
      c.at(i, j) = f.inverse(xi ^ yj);
    }
  }
  return c;
}

Matrix vandermonde_coding_matrix(const GaloisField& f, int k, int m) {
  DCODE_CHECK(k > 0 && m > 0, "k and m must be positive");
  DCODE_CHECK(static_cast<uint32_t>(k + m) <= f.size(),
              "k + m exceeds the field size");

  // Rows i of the raw (k+m) x k Vandermonde matrix: [i^0, i^1, ..., i^(k-1)]
  // with the convention 0^0 = 1.
  Matrix v(k + m, k);
  for (int i = 0; i < k + m; ++i) {
    for (int j = 0; j < k; ++j) {
      v.at(i, j) = f.pow(static_cast<uint32_t>(i), static_cast<uint32_t>(j));
    }
  }

  // Distill: column operations that turn the top k x k block into identity
  // preserve the MDS property (they multiply by an invertible matrix on the
  // right). This mirrors jerasure's vandermonde -> systematic conversion.
  for (int col = 0; col < k; ++col) {
    // Ensure v[col][col] != 0 by swapping columns if needed.
    if (v.at(col, col) == 0) {
      int swap_col = -1;
      for (int c = col + 1; c < k; ++c) {
        if (v.at(col, c) != 0) {
          swap_col = c;
          break;
        }
      }
      DCODE_ASSERT(swap_col >= 0, "Vandermonde block must be nonsingular");
      for (int r = 0; r < k + m; ++r) std::swap(v.at(r, col), v.at(r, swap_col));
    }
    // Scale the column so the diagonal entry is 1.
    uint32_t dinv = f.inverse(v.at(col, col));
    if (dinv != 1) {
      for (int r = 0; r < k + m; ++r) v.at(r, col) = f.mul(v.at(r, col), dinv);
    }
    // Zero the rest of row `col` with column operations.
    for (int c = 0; c < k; ++c) {
      if (c == col) continue;
      uint32_t factor = v.at(col, c);
      if (factor == 0) continue;
      for (int r = 0; r < k + m; ++r) {
        v.at(r, c) ^= f.mul(factor, v.at(r, col));
      }
    }
  }

  Matrix out(m, k);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < k; ++j) out.at(i, j) = v.at(k + i, j);
  }
  return out;
}

}  // namespace dcode::gf

#include "gf/gf.h"

#include <cstring>

namespace dcode::gf {

GaloisField::GaloisField(int w) : w_(w) {
  DCODE_CHECK(w == 4 || w == 8 || w == 16, "supported word sizes: 4, 8, 16");
  field_size_ = 1u << w;
  uint32_t poly = w == 4 ? kPrimitivePoly4
                 : w == 8 ? kPrimitivePoly8
                          : kPrimitivePoly16;
  build_tables(poly);

  if (w == 8) {
    mul8_.assign(256 * 256, 0);
    for (uint32_t a = 1; a < 256; ++a) {
      for (uint32_t b = 1; b < 256; ++b) {
        mul8_[(a << 8) | b] = static_cast<uint8_t>(mul(a, b));
      }
    }
    // Split tables: c * x = c * (x & 0xf)  ^  c * (x & 0xf0), so two
    // 16-entry lookups cover a byte — the shape PSHUFB evaluates 16/32/64
    // bytes at a time.
    nib8_.assign(256 * 32, 0);
    for (uint32_t c = 0; c < 256; ++c) {
      uint8_t* t = &nib8_[c * 32];
      for (uint32_t x = 0; x < 16; ++x) {
        t[x] = static_cast<uint8_t>(mul(c, x));
        t[16 + x] = static_cast<uint8_t>(mul(c, x << 4));
      }
    }
    mul8_fn_ = detail::mul_region8_kernel(xorops::active_isa());
  }
}

void GaloisField::build_tables(uint32_t prim_poly) {
  const uint32_t order = field_size_ - 1;
  log_.assign(field_size_, 0);
  antilog_.assign(2 * order, 0);

  uint32_t v = 1;
  for (uint32_t e = 0; e < order; ++e) {
    antilog_[e] = v;
    antilog_[e + order] = v;  // doubled so mul() needs no modulo
    log_[v] = static_cast<int>(e);
    v <<= 1;
    if (v & field_size_) v ^= prim_poly;
  }
  DCODE_ASSERT(v == 1, "primitive polynomial must generate the full group");
}

uint32_t GaloisField::pow(uint32_t a, uint32_t e) const {
  if (e == 0) return 1;
  if (a == 0) return 0;
  uint64_t l = static_cast<uint64_t>(log_[a]) * e % (field_size_ - 1);
  return antilog_[l];
}

namespace detail {

void mul_region8_scalar(uint8_t* dst, const uint8_t* src, const uint8_t* nib,
                        const uint8_t* row, size_t len, bool accumulate) {
  (void)nib;  // the 256-entry row is faster than two nibble lookups here
  if (accumulate) {
    for (size_t i = 0; i < len; ++i) dst[i] ^= row[src[i]];
  } else {
    for (size_t i = 0; i < len; ++i) dst[i] = row[src[i]];
  }
}

MulRegion8Fn mul_region8_kernel(xorops::Isa isa) {
  DCODE_CHECK(xorops::isa_supported(isa),
              "requested ISA backend is not available");
  switch (isa) {
    case xorops::Isa::kScalar:
      break;
#ifdef DCODE_HAVE_ISA_SSE2
    case xorops::Isa::kSse2:
      return mul_region8_ssse3;
#endif
#ifdef DCODE_HAVE_ISA_AVX2
    case xorops::Isa::kAvx2:
      return mul_region8_avx2;
#endif
#ifdef DCODE_HAVE_ISA_AVX512
    case xorops::Isa::kAvx512:
      return mul_region8_avx512;
#endif
    default:
      break;
  }
  return mul_region8_scalar;
}

}  // namespace detail

void GaloisField::mul_region(uint8_t* dst, const uint8_t* src, uint32_t c,
                             size_t len, bool accumulate) const {
  DCODE_CHECK(c <= max_element(), "constant outside the field");
  if (c == 0) {
    if (!accumulate) std::memset(dst, 0, len);
    return;
  }
  if (c == 1) {
    if (accumulate) {
      for (size_t i = 0; i < len; ++i) dst[i] ^= src[i];
    } else {
      std::memcpy(dst, src, len);
    }
    return;
  }

  switch (w_) {
    case 8: {
      mul8_fn_(dst, src, &nib8_[c * 32], &mul8_[c << 8], len, accumulate);
      break;
    }
    case 4: {
      // Two 4-bit elements per byte, multiplied independently.
      for (size_t i = 0; i < len; ++i) {
        uint32_t lo = src[i] & 0x0f;
        uint32_t hi = (src[i] >> 4) & 0x0f;
        uint8_t out = static_cast<uint8_t>(mul(lo, c) | (mul(hi, c) << 4));
        if (accumulate) {
          dst[i] ^= out;
        } else {
          dst[i] = out;
        }
      }
      break;
    }
    case 16: {
      DCODE_CHECK(len % 2 == 0, "w=16 regions must be even-length");
      // Regions long enough to amortize the build get two 256-entry
      // product tables (one per source byte): with e = elo ^ (ehi << 8),
      // c*e = c*elo ^ c*(ehi << 8), so each element becomes two lookups
      // and a XOR instead of a log/antilog mul() with a zero branch.
      constexpr size_t kTableThresholdBytes = 1024;
      if (len >= kTableThresholdBytes) {
        uint16_t lo_tab[256];
        uint16_t hi_tab[256];
        for (uint32_t b = 0; b < 256; ++b) {
          lo_tab[b] = static_cast<uint16_t>(mul(b, c));
          hi_tab[b] = static_cast<uint16_t>(mul(b << 8, c));
        }
        for (size_t i = 0; i < len; i += 2) {
          uint32_t out = static_cast<uint32_t>(lo_tab[src[i]]) ^
                         static_cast<uint32_t>(hi_tab[src[i + 1]]);
          if (accumulate) {
            dst[i] ^= static_cast<uint8_t>(out);
            dst[i + 1] ^= static_cast<uint8_t>(out >> 8);
          } else {
            dst[i] = static_cast<uint8_t>(out);
            dst[i + 1] = static_cast<uint8_t>(out >> 8);
          }
        }
        break;
      }
      for (size_t i = 0; i < len; i += 2) {
        uint32_t e = static_cast<uint32_t>(src[i]) |
                     (static_cast<uint32_t>(src[i + 1]) << 8);
        uint32_t out = mul(e, c);
        if (accumulate) {
          dst[i] ^= static_cast<uint8_t>(out);
          dst[i + 1] ^= static_cast<uint8_t>(out >> 8);
        } else {
          dst[i] = static_cast<uint8_t>(out);
          dst[i + 1] = static_cast<uint8_t>(out >> 8);
        }
      }
      break;
    }
    default:
      DCODE_ASSERT(false, "unreachable word size");
  }
}

void GaloisField::mul_region(uint8_t* dst, const uint8_t* src, uint32_t c,
                             size_t len, bool accumulate,
                             xorops::Isa isa) const {
  DCODE_CHECK(w_ == 8, "per-ISA mul_region exists only for w=8");
  DCODE_CHECK(c <= max_element(), "constant outside the field");
  // No c==0/1 shortcuts here: the differential tests want the kernels
  // themselves exercised for every constant.
  detail::mul_region8_kernel(isa)(dst, src, &nib8_[c * 32], &mul8_[c << 8],
                                  len, accumulate);
}

const GaloisField& gf4() {
  static const GaloisField f(4);
  return f;
}
const GaloisField& gf8() {
  static const GaloisField f(8);
  return f;
}
const GaloisField& gf16() {
  static const GaloisField f(16);
  return f;
}
const GaloisField& field_for(int w) {
  switch (w) {
    case 4:
      return gf4();
    case 8:
      return gf8();
    case 16:
      return gf16();
    default:
      DCODE_CHECK(false, "supported word sizes: 4, 8, 16");
  }
  // unreachable
  return gf8();
}

}  // namespace dcode::gf

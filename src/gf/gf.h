// GF(2^w) arithmetic for w in {4, 8, 16}.
//
// The Reed–Solomon baselines (the role Jerasure 1.2 plays in the paper)
// need finite-field multiplication. We build log/antilog tables at
// construction from the standard primitive polynomials, plus — for w=8 —
// a full 256x256 product table (scalar path: one lookup per byte) and a
// per-constant 4-bit split-table array that the SIMD mul_region backends
// shuffle in-register (see gf/gf_region.h; backend chosen once via
// xorops::active_isa()). The class is immutable after construction and
// safe to share across threads.
#pragma once

#include <cstdint>
#include <vector>

#include "gf/gf_region.h"
#include "util/check.h"

namespace dcode::gf {

// Primitive polynomials (including the x^w term) used by virtually every
// storage coding library, so our codewords match common test vectors.
constexpr uint32_t kPrimitivePoly4 = 0x13;      // x^4 + x + 1
constexpr uint32_t kPrimitivePoly8 = 0x11d;     // x^8 + x^4 + x^3 + x^2 + 1
constexpr uint32_t kPrimitivePoly16 = 0x1100b;  // x^16 + x^12 + x^3 + x + 1

class GaloisField {
 public:
  explicit GaloisField(int w);

  int w() const { return w_; }
  uint32_t size() const { return field_size_; }          // 2^w
  uint32_t max_element() const { return field_size_ - 1; }

  uint32_t add(uint32_t a, uint32_t b) const { return a ^ b; }

  uint32_t mul(uint32_t a, uint32_t b) const {
    if (a == 0 || b == 0) return 0;
    return antilog_[log_[a] + log_[b]];
  }

  uint32_t div(uint32_t a, uint32_t b) const {
    DCODE_CHECK(b != 0, "division by zero in GF(2^w)");
    if (a == 0) return 0;
    int d = log_[a] - log_[b];
    if (d < 0) d += static_cast<int>(field_size_) - 1;
    return antilog_[d];
  }

  uint32_t inverse(uint32_t a) const { return div(1, a); }

  // alpha^e where alpha is the primitive element (polynomial x).
  uint32_t exp(uint32_t e) const {
    return antilog_[e % (field_size_ - 1)];
  }

  uint32_t log(uint32_t a) const {
    DCODE_CHECK(a != 0, "log of zero in GF(2^w)");
    return static_cast<uint32_t>(log_[a]);
  }

  uint32_t pow(uint32_t a, uint32_t e) const;

  // dst[i] (op)= c * src[i] over `len` bytes, interpreting the buffers as
  // packed field elements (w=8: bytes; w=16: little-endian uint16; w=4:
  // two elements per byte). If `accumulate`, XORs into dst, else assigns.
  // len must be a multiple of the element byte width (1 for w=4/8).
  // For w=8 this dispatches to the SIMD backend resolved at construction.
  void mul_region(uint8_t* dst, const uint8_t* src, uint32_t c, size_t len,
                  bool accumulate) const;

  // w=8 only: same contract, but forced through a specific backend —
  // how the differential tests and per-ISA benches pin each backend
  // regardless of what active_isa() resolved to. Throws if `isa` is not
  // supported on this CPU/build.
  void mul_region(uint8_t* dst, const uint8_t* src, uint32_t c, size_t len,
                  bool accumulate, xorops::Isa isa) const;

 private:
  void build_tables(uint32_t prim_poly);

  int w_;
  uint32_t field_size_;
  std::vector<int> log_;          // log_[a], a in [1, 2^w)
  std::vector<uint32_t> antilog_; // antilog_[e], e in [0, 2*(2^w-1))
  std::vector<uint8_t> mul8_;     // full product table, w=8 only
  // w=8 only: one 32-byte row per constant c — products of c with the 16
  // low nibbles, then with the 16 high nibbles (x << 4). The vector
  // backends broadcast these rows into PSHUFB lookups.
  std::vector<uint8_t> nib8_;
  detail::MulRegion8Fn mul8_fn_ = nullptr;  // resolved once, w=8 only
};

// Shared singletons (tables are expensive to rebuild per codec).
const GaloisField& gf4();
const GaloisField& gf8();
const GaloisField& gf16();
const GaloisField& field_for(int w);

}  // namespace dcode::gf

// Shared body for the vector GF(2^8) region-multiply backends.
//
// Instantiated from each backend TU (compiled with that ISA's target
// flags) with a Traits type wrapping the intrinsics:
//
//   struct Traits {
//     using V = <vector register type>;
//     static V load(const uint8_t* p);            // unaligned
//     static void store(uint8_t* p, V v);         // unaligned
//     static V vxor(V a, V b);
//     static V broadcast_table(const uint8_t* t); // 16B table -> every lane
//     static V low_nibbles(V v);                  // v & 0x0f, per byte
//     static V high_nibbles(V v);                 // (v >> 4) & 0x0f
//     static V shuffle(V table, V idx);           // per-lane byte shuffle
//   };
//
// PSHUFB-family shuffles operate within each 128-bit lane, which is
// exactly right here: the same 16-entry table is broadcast to every lane.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dcode::gf::detail {

template <typename T>
void simd_mul_region8(uint8_t* dst, const uint8_t* src, const uint8_t* nib,
                      const uint8_t* row, size_t len, bool accumulate) {
  constexpr size_t kV = sizeof(typename T::V);
  const auto lo = T::broadcast_table(nib);
  const auto hi = T::broadcast_table(nib + 16);
  size_t i = 0;
  auto product = [&](size_t at) {
    auto v = T::load(src + at);
    return T::vxor(T::shuffle(lo, T::low_nibbles(v)),
                   T::shuffle(hi, T::high_nibbles(v)));
  };
  if (accumulate) {
    for (; i + 2 * kV <= len; i += 2 * kV) {
      T::store(dst + i, T::vxor(T::load(dst + i), product(i)));
      T::store(dst + i + kV, T::vxor(T::load(dst + i + kV), product(i + kV)));
    }
    for (; i + kV <= len; i += kV) {
      T::store(dst + i, T::vxor(T::load(dst + i), product(i)));
    }
    for (; i < len; ++i) dst[i] ^= row[src[i]];
  } else {
    for (; i + 2 * kV <= len; i += 2 * kV) {
      T::store(dst + i, product(i));
      T::store(dst + i + kV, product(i + kV));
    }
    for (; i + kV <= len; i += kV) {
      T::store(dst + i, product(i));
    }
    for (; i < len; ++i) dst[i] = row[src[i]];
  }
}

}  // namespace dcode::gf::detail

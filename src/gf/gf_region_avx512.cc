// 512-bit (AVX-512BW VPSHUFB) GF(2^8) region-multiply backend.
#include "gf/gf_region.h"

#ifdef DCODE_HAVE_ISA_AVX512

#include <immintrin.h>

#include <cstring>

#include "gf/gf_simd_impl.h"

namespace dcode::gf::detail {
namespace {

struct Avx512Traits {
  using V = __m512i;
  static V load(const uint8_t* p) { return _mm512_loadu_si512(p); }
  static void store(uint8_t* p, V v) { _mm512_storeu_si512(p, v); }
  static V vxor(V a, V b) { return _mm512_xor_si512(a, b); }
  static V broadcast_table(const uint8_t* t) {
    // Replicate through memory instead of _mm512_broadcast_i32x4: GCC's
    // implementation of the lane-broadcast intrinsics routes through
    // _mm512_undefined_epi32 and trips -Wuninitialized. Runs once per
    // region call, outside the hot loop.
    alignas(64) uint8_t rep[64];
    for (int i = 0; i < 64; i += 16) std::memcpy(rep + i, t, 16);
    return _mm512_load_si512(rep);
  }
  static V low_nibbles(V v) {
    return _mm512_and_si512(v, _mm512_set1_epi8(0x0f));
  }
  static V high_nibbles(V v) {
    // maskz variant of srli: the plain _mm512_srli_epi64 goes through
    // GCC's _mm512_undefined_epi32 and trips -Wuninitialized (GCC 12).
    return _mm512_and_si512(
        _mm512_maskz_srli_epi64(static_cast<__mmask8>(-1), v, 4),
        _mm512_set1_epi8(0x0f));
  }
  static V shuffle(V table, V idx) { return _mm512_shuffle_epi8(table, idx); }
};

}  // namespace

void mul_region8_avx512(uint8_t* dst, const uint8_t* src, const uint8_t* nib,
                        const uint8_t* row, size_t len, bool accumulate) {
  simd_mul_region8<Avx512Traits>(dst, src, nib, row, len, accumulate);
}

}  // namespace dcode::gf::detail

#endif  // DCODE_HAVE_ISA_AVX512

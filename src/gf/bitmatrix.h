// Bit-matrix (Cauchy Reed–Solomon) machinery, jerasure-style.
//
// A GF(2^w) coding matrix expands into a (m*w) x (k*w) matrix over GF(2):
// each field entry e becomes the w x w binary matrix whose column j holds
// the bits of e * x^j. Coding then needs only XORs of w "packets" per
// element — no field multiplies — which is why Cauchy RS was the fast
// general-purpose code of jerasure's era. We also implement jerasure's
// "smart" scheduling: consecutive bit-rows usually differ in few positions,
// so row r+1 is computed from row r with only the differing XORs.
#pragma once

#include <cstdint>
#include <vector>

#include "gf/gf_matrix.h"

namespace dcode::gf {

struct BitMatrix {
  int rows = 0;  // total bit rows (m * w)
  int cols = 0;  // total bit columns (k * w)
  std::vector<uint8_t> bits;  // row-major, one byte per bit

  uint8_t at(int r, int c) const {
    return bits[static_cast<size_t>(r) * cols + c];
  }
  uint8_t& at(int r, int c) {
    return bits[static_cast<size_t>(r) * cols + c];
  }
};

// Expand a field matrix into its binary representation.
BitMatrix to_bitmatrix(const GaloisField& f, const Matrix& m);

// One XOR step of a coding schedule: dst_packet (op)= src_packet, where a
// packet id is (device * w + bit_row). `assign` means copy instead of XOR
// (the first source of each output row).
struct ScheduleOp {
  int src_device;
  int src_bit;
  int dst_device;
  int dst_bit;
  bool assign;
};

// Dumb schedule: every output bit row is the XOR of all its set inputs.
std::vector<ScheduleOp> dumb_schedule(const BitMatrix& bm, int k, int m,
                                      int w);

// Smart schedule: compute row r from row r-1 when their Hamming distance
// is smaller than row r's weight (jerasure's optimization).
std::vector<ScheduleOp> smart_schedule(const BitMatrix& bm, int k, int m,
                                       int w);

// Execute a schedule. `data[d]` and `coding[c]` are element buffers of
// `size` bytes; size must be divisible by w * packet, with packet =
// size / w rounded — we require size % w == 0 and use packet = size / w.
void apply_schedule(const std::vector<ScheduleOp>& ops,
                    const std::vector<const uint8_t*>& data,
                    const std::vector<uint8_t*>& coding, int w, size_t size);

}  // namespace dcode::gf

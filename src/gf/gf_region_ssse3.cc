// 128-bit (SSSE3 PSHUFB) GF(2^8) region-multiply backend.
#include "gf/gf_region.h"

#ifdef DCODE_HAVE_ISA_SSE2

#include <tmmintrin.h>

#include "gf/gf_simd_impl.h"

namespace dcode::gf::detail {
namespace {

struct Ssse3Traits {
  using V = __m128i;
  static V load(const uint8_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void store(uint8_t* p, V v) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static V vxor(V a, V b) { return _mm_xor_si128(a, b); }
  static V broadcast_table(const uint8_t* t) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(t));
  }
  static V low_nibbles(V v) { return _mm_and_si128(v, _mm_set1_epi8(0x0f)); }
  static V high_nibbles(V v) {
    return _mm_and_si128(_mm_srli_epi64(v, 4), _mm_set1_epi8(0x0f));
  }
  static V shuffle(V table, V idx) { return _mm_shuffle_epi8(table, idx); }
};

}  // namespace

void mul_region8_ssse3(uint8_t* dst, const uint8_t* src, const uint8_t* nib,
                       const uint8_t* row, size_t len, bool accumulate) {
  simd_mul_region8<Ssse3Traits>(dst, src, nib, row, len, accumulate);
}

}  // namespace dcode::gf::detail

#endif  // DCODE_HAVE_ISA_SSE2

// Per-ISA region-multiply kernels behind GaloisField::mul_region (w=8).
//
// All backends implement the same split-table contract: the caller passes
// the constant's 32-byte nibble-table row `nib` (bytes 0..15 are the
// products c*x for x in 0..15, bytes 16..31 are c*(x<<4); GaloisField
// precomputes one row per constant) and its 256-entry full product row
// `row` (used for scalar tails). A byte's product is then
// nib[b & 0xf] ^ nib[16 + (b >> 4)] — two 16-entry lookups the vector
// backends evaluate 16/32/64 bytes at a time with PSHUFB-style in-register
// shuffles (the technique of Plank's "screaming fast" split tables and
// Intel ISA-L).
#pragma once

#include <cstddef>
#include <cstdint>

#include "xorops/isa.h"

namespace dcode::gf::detail {

// dst[i] (op)= product(c, src[i]) over len bytes; `accumulate` selects
// XOR-into versus assign. Pointers may be arbitrarily unaligned and len
// arbitrary.
using MulRegion8Fn = void (*)(uint8_t* dst, const uint8_t* src,
                              const uint8_t* nib, const uint8_t* row,
                              size_t len, bool accumulate);

// Kernel for one backend; throws std::logic_error if `isa` is not
// supported (not compiled in, or the CPU lacks it).
MulRegion8Fn mul_region8_kernel(xorops::Isa isa);

void mul_region8_scalar(uint8_t* dst, const uint8_t* src, const uint8_t* nib,
                        const uint8_t* row, size_t len, bool accumulate);
#ifdef DCODE_HAVE_ISA_SSE2
void mul_region8_ssse3(uint8_t* dst, const uint8_t* src, const uint8_t* nib,
                       const uint8_t* row, size_t len, bool accumulate);
#endif
#ifdef DCODE_HAVE_ISA_AVX2
void mul_region8_avx2(uint8_t* dst, const uint8_t* src, const uint8_t* nib,
                      const uint8_t* row, size_t len, bool accumulate);
#endif
#ifdef DCODE_HAVE_ISA_AVX512
void mul_region8_avx512(uint8_t* dst, const uint8_t* src, const uint8_t* nib,
                        const uint8_t* row, size_t len, bool accumulate);
#endif

}  // namespace dcode::gf::detail

#include "volume/volume_manager.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace dcode::volume {

namespace {

constexpr uint64_t kMagic = 0xDC0DE7AB1E0001ull;  // "dcode table v1"

// On-disk superblock layout (little-endian, fixed size):
//   u64 magic | u32 count | count entries of
//   { char name[32] | i64 offset | i64 size }
struct RawEntry {
  char name[32];
  int64_t offset;
  int64_t size;
};

}  // namespace

size_t VolumeManager::superblock_bytes() {
  return sizeof(uint64_t) + sizeof(uint32_t) +
         static_cast<size_t>(kMaxVolumes) * sizeof(RawEntry);
}

VolumeManager::Target VolumeManager::target_of(raid::Raid6Array& array) {
  return Target{
      [&array](int64_t off, std::span<const uint8_t> d) {
        array.write(off, d);
      },
      [&array](int64_t off, std::span<uint8_t> o) { array.read(off, o); },
      [&array] { return array.capacity(); },
  };
}

VolumeManager::Target VolumeManager::target_of(StoragePool& pool) {
  return Target{
      [&pool](int64_t off, std::span<const uint8_t> d) {
        pool.write(off, d);
      },
      [&pool](int64_t off, std::span<uint8_t> o) { pool.read(off, o); },
      [&pool] { return pool.capacity(); },
  };
}

VolumeManager VolumeManager::format(Target target) {
  DCODE_CHECK(target.capacity() >
                  static_cast<int64_t>(superblock_bytes()),
              "target too small for a volume table");
  VolumeManager vm(std::move(target));
  vm.volumes_.clear();
  vm.persist();
  return vm;
}

VolumeManager VolumeManager::format(raid::Raid6Array& array) {
  return format(target_of(array));
}

VolumeManager VolumeManager::format(StoragePool& pool) {
  return format(target_of(pool));
}

VolumeManager VolumeManager::open(Target target) {
  VolumeManager vm(std::move(target));
  vm.load();
  return vm;
}

VolumeManager VolumeManager::open(raid::Raid6Array& array) {
  return open(target_of(array));
}

VolumeManager VolumeManager::open(StoragePool& pool) {
  return open(target_of(pool));
}

void VolumeManager::persist() {
  std::vector<uint8_t> block(superblock_bytes(), 0);
  size_t off = 0;
  uint64_t magic = kMagic;
  std::memcpy(block.data() + off, &magic, sizeof(magic));
  off += sizeof(magic);
  uint32_t count = static_cast<uint32_t>(volumes_.size());
  std::memcpy(block.data() + off, &count, sizeof(count));
  off += sizeof(count);
  for (const VolumeInfo& v : volumes_) {
    RawEntry e{};
    DCODE_ASSERT(v.name.size() <= kMaxNameLen, "name length enforced earlier");
    std::memcpy(e.name, v.name.data(), v.name.size());
    e.offset = v.offset;
    e.size = v.size;
    std::memcpy(block.data() + off, &e, sizeof(e));
    off += sizeof(e);
  }
  target_.write(0, block);
}

void VolumeManager::load() {
  std::vector<uint8_t> block(superblock_bytes());
  target_.read(0, block);
  size_t off = 0;
  uint64_t magic = 0;
  std::memcpy(&magic, block.data() + off, sizeof(magic));
  off += sizeof(magic);
  DCODE_CHECK(magic == kMagic, "no volume table on this target (format it?)");
  uint32_t count = 0;
  std::memcpy(&count, block.data() + off, sizeof(count));
  off += sizeof(count);
  DCODE_CHECK(count <= kMaxVolumes, "corrupt volume table");
  volumes_.clear();
  for (uint32_t i = 0; i < count; ++i) {
    RawEntry e{};
    std::memcpy(&e, block.data() + off, sizeof(e));
    off += sizeof(e);
    VolumeInfo v;
    v.name.assign(e.name, strnlen(e.name, sizeof(e.name)));
    v.offset = e.offset;
    v.size = e.size;
    DCODE_CHECK(v.offset >= static_cast<int64_t>(superblock_bytes()) &&
                    v.size > 0 &&
                    v.offset + v.size <= target_.capacity(),
                "corrupt volume extent");
    volumes_.push_back(std::move(v));
  }
}

void VolumeManager::create(const std::string& name, int64_t size) {
  DCODE_CHECK(!name.empty() && name.size() <= kMaxNameLen,
              "volume name must be 1..31 characters");
  DCODE_CHECK(size > 0, "volume size must be positive");
  DCODE_CHECK(static_cast<int>(volumes_.size()) < kMaxVolumes,
              "volume table full");
  DCODE_CHECK(!find(name).has_value(), "volume already exists: " + name);

  // First-fit over gaps between extents (sorted by offset).
  std::vector<VolumeInfo> sorted = volumes_;
  std::sort(sorted.begin(), sorted.end(),
            [](const VolumeInfo& a, const VolumeInfo& b) {
              return a.offset < b.offset;
            });
  int64_t cursor = static_cast<int64_t>(superblock_bytes());
  int64_t chosen = -1;
  for (const VolumeInfo& v : sorted) {
    if (v.offset - cursor >= size) {
      chosen = cursor;
      break;
    }
    cursor = v.offset + v.size;
  }
  if (chosen < 0 && target_.capacity() - cursor >= size) chosen = cursor;
  DCODE_CHECK(chosen >= 0, "no contiguous extent of " + std::to_string(size) +
                               " bytes free");

  volumes_.push_back(VolumeInfo{name, chosen, size});
  persist();
}

void VolumeManager::remove(const std::string& name) {
  auto it = std::find_if(volumes_.begin(), volumes_.end(),
                         [&](const VolumeInfo& v) { return v.name == name; });
  DCODE_CHECK(it != volumes_.end(), "unknown volume: " + name);
  volumes_.erase(it);
  persist();
}

const VolumeInfo& VolumeManager::lookup(const std::string& name) const {
  for (const VolumeInfo& v : volumes_) {
    if (v.name == name) return v;
  }
  DCODE_CHECK(false, "unknown volume: " + name);
  static VolumeInfo unreachable;
  return unreachable;
}

void VolumeManager::write(const std::string& name, int64_t offset,
                          std::span<const uint8_t> data) {
  const VolumeInfo& v = lookup(name);
  DCODE_CHECK(offset >= 0 &&
                  offset + static_cast<int64_t>(data.size()) <= v.size,
              "write outside volume " + name);
  target_.write(v.offset + offset, data);
}

void VolumeManager::read(const std::string& name, int64_t offset,
                         std::span<uint8_t> out) {
  const VolumeInfo& v = lookup(name);
  DCODE_CHECK(offset >= 0 && offset + static_cast<int64_t>(out.size()) <=
                                 v.size,
              "read outside volume " + name);
  target_.read(v.offset + offset, out);
}

std::vector<VolumeInfo> VolumeManager::list() const { return volumes_; }

std::optional<VolumeInfo> VolumeManager::find(const std::string& name) const {
  for (const VolumeInfo& v : volumes_) {
    if (v.name == name) return v;
  }
  return std::nullopt;
}

int64_t VolumeManager::free_bytes() const {
  int64_t used = static_cast<int64_t>(superblock_bytes());
  for (const VolumeInfo& v : volumes_) used += v.size;
  return target_.capacity() - used;
}

int64_t VolumeManager::largest_free_extent() const {
  std::vector<VolumeInfo> sorted = volumes_;
  std::sort(sorted.begin(), sorted.end(),
            [](const VolumeInfo& a, const VolumeInfo& b) {
              return a.offset < b.offset;
            });
  int64_t cursor = static_cast<int64_t>(superblock_bytes());
  int64_t best = 0;
  for (const VolumeInfo& v : sorted) {
    best = std::max(best, v.offset - cursor);
    cursor = v.offset + v.size;
  }
  return std::max(best, target_.capacity() - cursor);
}

}  // namespace dcode::volume

// StoragePool: many Raid6Arrays behind one logical block space.
//
// A single n×n D-Code array is capped at prime-n disks; a production
// pool spans hundreds of devices. The pool shards the logical space
// across N identically-shaped arrays by round-robin chunk striping:
//
//   chunk c  ->  shard c % N,  byte offset (c / N) * chunk_bytes
//
// Each shard is a full PR 1-7 stack — its own Raid6Array (spares,
// health monitor, background rebuild, journal) fronted by its own
// StripePipeline (worker threads, admission range-lock, write merging)
// — so one shard rebuilding or even crashed never blocks I/O routed to
// the others. Every shard registers its metrics under a namespaced
// view of the pool's registry (`shard0.raid.reads`, `shard1.pipeline.
// queue_depth`, ...) and the pool adds pool.* aggregates on top.
//
// Online capacity add (`add_shard`) attaches shard N and restripes in
// the background, re-using the token-bucket + watermark protocol of the
// array's background rebuild:
//
//   * chunks below the restripe watermark route with N+1 shards (new
//     placement), chunks at/above it with N (old placement);
//   * the worker walks chunks in ascending order: under the chunk's
//     lock it copies old placement -> new placement, then advances the
//     watermark before unlocking, so every foreground op sees a
//     bit-identical view mid-migration;
//   * ascending order makes the in-place migration safe: the old
//     occupant of chunk c's new location is c' = floor(c/(N+1))*N +
//     (c mod N+1) <= c, already migrated out (or c itself — a self-copy
//     that is skipped), and the chunk that will overwrite c's *old*
//     location is d = floor(c/N)*(N+1) + (c mod N) >= c, migrated only
//     after c has moved;
//   * the expanded capacity becomes visible only when the restripe
//     completes — exposing it earlier would hand out addresses whose
//     new placement still holds un-migrated chunks.
//
// Foreground ops take the chunk-lock slots they cover in bounded
// windows (<= kWindowSlots held at once, ascending within a window,
// all released before the next window) and hold each window's locks
// across its shard futures, so a chunk is never migrated while a
// segment is in flight on it. Pipeline workers and the migrator never
// take chunk locks they don't already hold, so the lock graph is
// acyclic. Multi-chunk ops are not atomic as a whole — concurrent
// overlapping ops may interleave at window granularity, the same
// torn-read contract as any block device spanning sectors.
//
// read()/write() are safe from many threads. The admin operations —
// add_shard() and restart_all() — are serialized against each other
// internally; restart_all() additionally quiesces foreground pool I/O
// (and the migrator) across restart + journal replay. I/O issued
// directly through shard_pipeline()/shard_array() bypasses that gate
// and must not run concurrently with restart_all().
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "raid/pipeline.h"
#include "raid/raid6_array.h"
#include "raid/stripe_lock_table.h"
#include "util/token_bucket.h"

namespace dcode::volume {

// Shape shared by every shard in a pool (shards are interchangeable, so
// the routing arithmetic never needs per-shard capacities).
struct ShardSpec {
  std::string code = "dcode";  // codes::make_layout name
  int prime = 5;               // layout parameter (disks per shard)
  size_t element_size = 4096;
  int64_t stripes = 64;
  unsigned threads = 1;  // engine pool threads per shard
  raid::ArrayOptions array;
  int hot_spares = 0;     // added to every shard at attach
  int journal_slots = 0;  // > 0 enables write-intent journaling
};

struct PoolOptions {
  int64_t chunk_bytes = 64 * 1024;  // must divide shard capacity
  raid::PipelineOptions pipeline;
  // Background restripe throttle in chunks/second; <= 0 = unthrottled.
  double restripe_rate_chunks_per_sec = 0.0;
  double restripe_burst_chunks = 8.0;
  // Slots in the sharded chunk lock table (same trade-off as the
  // array's stripe_lock_slots).
  int chunk_lock_slots = 256;
};

// Aggregated point-in-time pool health, one row per shard plus totals.
struct PoolHealth {
  struct ShardHealth {
    int failed_disks = 0;
    int hot_spares = 0;
    bool rebuilding = false;
    bool crashed = false;
  };
  std::vector<ShardHealth> shards;
  int degraded_shards = 0;    // >= 1 failed disk
  int rebuilding_shards = 0;  // background rebuild active
  int crashed_shards = 0;     // power-loss gate tripped
  bool restriping = false;
};

class StoragePool {
 public:
  static constexpr int kMaxShards = 64;
  // Max chunk-lock slots a foreground op holds simultaneously: large
  // ops take their covered slots in windows of this size (ascending
  // within a window, fully released between windows), so one op never
  // pins the whole lock table — and never exceeds TSan's 64-held-locks
  // deadlock-detector capacity on the tsan CI leg.
  static constexpr int kWindowSlots = 48;

  // `registry` hosts the pool.* metrics and the per-shard namespaced
  // views; nullptr means the process-global obs::Registry.
  StoragePool(ShardSpec spec, int shards, PoolOptions options = {},
              obs::Registry* registry = nullptr);
  ~StoragePool();

  StoragePool(const StoragePool&) = delete;
  StoragePool& operator=(const StoragePool&) = delete;

  // Usable bytes. Grows only when a restripe completes.
  int64_t capacity() const {
    return capacity_.load(std::memory_order_acquire);
  }
  int64_t chunk_bytes() const { return chunk_bytes_; }
  int64_t chunks_per_shard() const { return chunks_per_shard_; }
  int shard_count() const {
    return shard_count_.load(std::memory_order_acquire);
  }

  // Byte-addressed synchronous I/O over the pooled logical space.
  // Bounds-checked against capacity(); fans out through the covered
  // shards' pipelines and waits for completion (the first shard error
  // is rethrown). Safe to call from many threads.
  void write(int64_t offset, std::span<const uint8_t> data);
  void read(int64_t offset, std::span<uint8_t> out);

  // Durability barrier across every shard; returns devices flushed.
  int flush();

  // --- Online capacity add -----------------------------------------------
  // Attaches one more shard (same ShardSpec) and starts the background
  // restripe. Throws if a restripe is already running (or stalled) or
  // the pool is at kMaxShards. Capacity grows when the restripe
  // completes; I/O continues throughout. Concurrent admin calls are
  // serialized: of two racing add_shard() calls one attaches and the
  // other throws (restripe already pending).
  void add_shard();
  // Blocks until the restripe worker stands down. Returns true when the
  // restripe completed (false = stalled on a crash/unrecoverable shard;
  // recover the shards, then resume_restripe()).
  bool wait_for_restripe();
  bool restripe_in_progress() const;
  // Restarts a stalled restripe (after restart_all/journal recovery).
  // No-op when no restripe is pending.
  void resume_restripe();
  // Retunes the restripe throttle (chunks/second; <= 0 = unthrottled).
  void set_restripe_rate(double chunks_per_sec, double burst = 8.0);
  // Chunks already migrated to the new placement.
  int64_t restripe_watermark() const {
    return restripe_watermark_.load(std::memory_order_acquire);
  }

  // --- Per-shard access and pool-wide maintenance -------------------------
  raid::Raid6Array& shard_array(int i);
  raid::StripePipeline& shard_pipeline(int i);

  PoolHealth health() const;

  // Pool reboot after power loss: pauses the migrator AND gates out
  // foreground pool I/O (in-flight ops drain, new ones block), restarts
  // every shard (clearing a consumed crash and an unconsumed injected
  // budget alike), replays the journal of each shard that actually
  // crashed — replay must precede any new write to that shard, or an
  // RMW write would carry the torn stripe's stale parity forward and
  // close the crash's open intent behind it — then reopens the gate and
  // lets a pending restripe continue. Safe to call with concurrent
  // read()/write() traffic; I/O issued directly through
  // shard_pipeline()/shard_array() is NOT gated. Returns the number of
  // crashed shards restarted.
  int restart_all();
  // Journal recovery on every journaled shard; total stripes repaired.
  int64_t journal_recover_all();
  // Open write intents across all shards (0 after clean recovery).
  int64_t journal_open_intents() const;
  // Blocks until no shard has a background rebuild active; true when
  // every shard is fully reconstructed.
  bool wait_for_rebuilds();
  // Integrity scrub across all shards (parity equations + checksum
  // sidecar); total inconsistent stripes. Feeds the pool.integrity.*
  // rollup counters. Same quiesce contract as Raid6Array::scrub.
  int64_t scrub_all();
  // Repair scrub across all shards; reports are summed (including the
  // checksum/stale channels) and rolled into pool.integrity.*.
  raid::ScrubReport scrub_repair_all();

  obs::Registry& metrics_registry() const { return *registry_; }

 private:
  struct Shard {
    obs::Registry* registry = nullptr;  // namespaced view, root-owned
    std::unique_ptr<raid::Raid6Array> array;
    std::unique_ptr<raid::StripePipeline> pipeline;  // after array:
                                                     // destroyed first
  };

  struct Placement {
    int shard;
    int64_t offset;  // bytes within the shard
  };

  struct PoolMetrics {
    obs::Counter* reads;
    obs::Counter* writes;
    obs::Counter* read_bytes;
    obs::Counter* written_bytes;
    obs::Histogram* read_latency_ns;
    obs::Histogram* write_latency_ns;
    obs::Histogram* op_fanout;
    obs::Histogram* chunk_lock_wait_ns;
    obs::Gauge* shards;
    obs::Gauge* capacity_bytes;
    obs::Gauge* degraded_shards;
    obs::Gauge* rebuilding_shards;
    obs::Gauge* crashed_shards;
    obs::Gauge* restripe_in_progress;
    obs::Counter* restripes;
    obs::Counter* restripe_chunks_moved;
    obs::Histogram* restripe_throttle_wait_ns;
    // Integrity-scrub rollups across shards (fed by scrub_all /
    // scrub_repair_all; the per-shard raid.integrity.* and raid.scrub.*
    // metrics carry the fine-grained view).
    obs::Counter* integrity_checksum_mismatches;
    obs::Counter* integrity_checksum_located;
    obs::Counter* integrity_stale_stripes;
  };

  std::unique_ptr<Shard> make_shard(int index);
  // Placement of `chunk` under the routing state current for it. Callers
  // must hold the chunk's lock slot for the answer to be stable.
  Placement place(int64_t chunk) const;
  static Placement place_with(int64_t chunk, int shards, int64_t chunk_bytes);
  // Shared fan-out for read/write: splits [offset, offset+len) into
  // per-chunk segments under the covered chunk locks, submits to the
  // shard pipelines, waits for every future.
  void run_op(bool is_write, int64_t offset, std::span<uint8_t> rbuf,
              std::span<const uint8_t> wbuf);
  void restripe_worker();
  // Stands the migrator down (joined, resumable) so restart + journal
  // replay can run with no chunk copy in flight.
  void pause_restripe();
  // One ascending pass over un-migrated chunks; false = stand down with
  // the restripe still pending.
  bool restripe_pass();
  void finish_restripe();

  ShardSpec spec_;
  PoolOptions options_;
  obs::Registry* registry_;
  PoolMetrics metrics_;
  obs::Registry::CollectorId collector_id_ = 0;

  int64_t chunk_bytes_;
  int64_t chunks_per_shard_;

  // Fixed slot array + atomic count: readers index without locks; a new
  // shard is fully constructed before the count is published (release).
  std::array<std::unique_ptr<Shard>, kMaxShards> shards_;
  std::atomic<int> shard_count_{0};
  std::atomic<int64_t> capacity_{0};

  // Restripe routing state. All four are published (release) before the
  // new shard count, and place() pairs with that by loading shard_count_
  // before restriping_ — seeing the new count therefore implies seeing
  // restriping_ set. Per-chunk accuracy comes from the chunk locks, not
  // from cross-field atomicity.
  std::atomic<bool> restriping_{false};
  std::atomic<int> route_old_{0};   // shard count of the old placement
  std::atomic<int> route_new_{0};   // shard count of the new placement
  std::atomic<int64_t> restripe_watermark_{0};
  std::atomic<int64_t> restripe_chunks_{0};  // chunks to migrate (old total)

  raid::StripeLockTable chunk_locks_;

  // Serializes admin operations (add_shard, restart_all) against each
  // other. Never taken by the I/O or migrator paths.
  std::mutex admin_mu_;
  // Restart gate: run_op holds it shared for an op's whole lifetime;
  // restart_all holds it exclusive across restart + journal replay so
  // no foreground write can land on a torn stripe before recovery.
  std::shared_mutex io_gate_;

  // Restripe worker: at most one thread, resumable after a stall.
  mutable std::mutex restripe_mu_;
  std::condition_variable restripe_cv_;
  bool restripe_running_ = false;
  std::thread restripe_thread_;
  std::atomic<bool> stop_restripe_{false};
  TokenBucket restripe_throttle_;
};

}  // namespace dcode::volume

#include "volume/storage_pool.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <exception>
#include <vector>

#include "codes/registry.h"
#include "obs/trace.h"
#include "raid/block_device.h"
#include "raid/journal.h"
#include "util/check.h"

namespace dcode::volume {

namespace {

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Chunks touched per op: small powers of two, overflow covers huge ops.
std::vector<int64_t> fanout_bounds() { return {1, 2, 4, 8, 16, 32, 64}; }

}  // namespace

StoragePool::StoragePool(ShardSpec spec, int shards, PoolOptions options,
                         obs::Registry* registry)
    : spec_(std::move(spec)),
      options_(options),
      registry_(registry != nullptr ? registry : &obs::Registry::global()),
      chunk_bytes_(options.chunk_bytes),
      chunk_locks_(options.chunk_lock_slots, nullptr),
      restripe_throttle_(options.restripe_rate_chunks_per_sec,
                         options.restripe_burst_chunks) {
  DCODE_CHECK(shards >= 1 && shards <= kMaxShards,
              "pool needs 1.." + std::to_string(kMaxShards) + " shards");
  DCODE_CHECK(chunk_bytes_ > 0, "chunk_bytes must be positive");

  metrics_.reads = &registry_->counter("pool.reads");
  metrics_.writes = &registry_->counter("pool.writes");
  metrics_.read_bytes = &registry_->counter("pool.read_bytes");
  metrics_.written_bytes = &registry_->counter("pool.written_bytes");
  metrics_.read_latency_ns = &registry_->histogram(
      "pool.read_latency_ns", obs::latency_fine_bounds_ns());
  metrics_.write_latency_ns = &registry_->histogram(
      "pool.write_latency_ns", obs::latency_fine_bounds_ns());
  metrics_.op_fanout =
      &registry_->histogram("pool.op_fanout", fanout_bounds());
  metrics_.chunk_lock_wait_ns = &registry_->histogram(
      "pool.chunk_lock_wait_ns", obs::latency_bounds_ns());
  metrics_.shards = &registry_->gauge("pool.shards");
  metrics_.capacity_bytes = &registry_->gauge("pool.capacity_bytes");
  metrics_.degraded_shards = &registry_->gauge("pool.degraded_shards");
  metrics_.rebuilding_shards = &registry_->gauge("pool.rebuilding_shards");
  metrics_.crashed_shards = &registry_->gauge("pool.crashed_shards");
  metrics_.restripe_in_progress =
      &registry_->gauge("pool.restripe.in_progress");
  metrics_.restripes = &registry_->counter("pool.restripes");
  metrics_.restripe_chunks_moved =
      &registry_->counter("pool.restripe.chunks_moved");
  metrics_.restripe_throttle_wait_ns = &registry_->histogram(
      "pool.restripe.throttle_wait_ns", obs::latency_bounds_ns());
  metrics_.integrity_checksum_mismatches = &registry_->counter(
      "pool.integrity.checksum_mismatches", {},
      "elements the checksum sidecar condemned across pool scrubs");
  metrics_.integrity_checksum_located = &registry_->counter(
      "pool.integrity.checksum_located", {},
      "scrub repairs localized via the checksum sidecar across shards");
  metrics_.integrity_stale_stripes = &registry_->counter(
      "pool.integrity.stale_stripes", {},
      "parity-consistent stale (rolled-back) stripes found by pool scrubs");

  for (int i = 0; i < shards; ++i) {
    shards_[static_cast<size_t>(i)] = make_shard(i);
  }
  DCODE_CHECK(shards_[0]->array->capacity() % chunk_bytes_ == 0,
              "chunk_bytes must divide the shard capacity (" +
                  std::to_string(shards_[0]->array->capacity()) + " bytes)");
  chunks_per_shard_ = shards_[0]->array->capacity() / chunk_bytes_;

  route_old_.store(shards, std::memory_order_relaxed);
  route_new_.store(shards, std::memory_order_relaxed);
  shard_count_.store(shards, std::memory_order_release);
  capacity_.store(shards * chunks_per_shard_ * chunk_bytes_,
                  std::memory_order_release);
  metrics_.shards->set(shards);
  metrics_.capacity_bytes->set(capacity());

  collector_id_ = registry_->add_collector([this] {
    PoolHealth h = health();
    metrics_.degraded_shards->set(h.degraded_shards);
    metrics_.rebuilding_shards->set(h.rebuilding_shards);
    metrics_.crashed_shards->set(h.crashed_shards);
    metrics_.restripe_in_progress->set(h.restriping ? 1 : 0);
  });
}

StoragePool::~StoragePool() {
  stop_restripe_.store(true, std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> lock(restripe_mu_);
    restripe_cv_.wait(lock, [&] { return !restripe_running_; });
    if (restripe_thread_.joinable()) restripe_thread_.join();
  }
  registry_->remove_collector(collector_id_);
  // Shards (pipeline before array, per member order) tear down on reset.
  for (auto& s : shards_) s.reset();
}

std::unique_ptr<StoragePool::Shard> StoragePool::make_shard(int index) {
  auto shard = std::make_unique<Shard>();
  shard->registry =
      &registry_->namespaced("shard" + std::to_string(index) + ".");
  shard->array = std::make_unique<raid::Raid6Array>(
      codes::make_layout(spec_.code, spec_.prime), spec_.element_size,
      spec_.stripes, spec_.threads, shard->registry, spec_.array);
  if (spec_.journal_slots > 0) {
    shard->array->enable_journal(spec_.journal_slots);
  }
  if (spec_.hot_spares > 0) {
    shard->array->add_hot_spares(spec_.hot_spares);
  }
  shard->pipeline = std::make_unique<raid::StripePipeline>(
      *shard->array, options_.pipeline);
  return shard;
}

StoragePool::Placement StoragePool::place_with(int64_t chunk, int shards,
                                               int64_t chunk_bytes) {
  return Placement{static_cast<int>(chunk % shards),
                   (chunk / shards) * chunk_bytes};
}

StoragePool::Placement StoragePool::place(int64_t chunk) const {
  // Load shard_count_ BEFORE restriping_. add_shard() publishes
  // restriping_=true (release) before shard_count_=n+1 (release), so a
  // thread whose acquire load here returns the new count is guaranteed
  // to also read restriping_==true (or false only after finish_restripe,
  // when both placements agree) and take the watermark branch. The
  // inverted order admits restriping_==false (stale) followed by
  // shard_count_==n+1 (fresh): the chunk would route with the new
  // placement while nothing has migrated.
  const int count = shard_count_.load(std::memory_order_acquire);
  if (restriping_.load(std::memory_order_acquire)) {
    const int n =
        chunk < restripe_watermark_.load(std::memory_order_acquire)
            ? route_new_.load(std::memory_order_acquire)
            : route_old_.load(std::memory_order_acquire);
    return place_with(chunk, n, chunk_bytes_);
  }
  return place_with(chunk, count, chunk_bytes_);
}

void StoragePool::run_op(bool is_write, int64_t offset,
                         std::span<uint8_t> rbuf,
                         std::span<const uint8_t> wbuf) {
  const int64_t len =
      is_write ? static_cast<int64_t>(wbuf.size())
               : static_cast<int64_t>(rbuf.size());
  DCODE_CHECK(offset >= 0 && len >= 0 && offset + len <= capacity(),
              "pool op out of range: offset " + std::to_string(offset) +
                  " len " + std::to_string(len));
  if (len == 0) return;
  // Shared side of the restart gate: restart_all() takes it exclusive
  // so no foreground op can reach a restarted shard before its journal
  // has been replayed.
  std::shared_lock<std::shared_mutex> gate(io_gate_);
  const int64_t t0 = now_ns();
  const int64_t first_chunk = offset / chunk_bytes_;
  const int64_t last_chunk = (offset + len - 1) / chunk_bytes_;

  // Covered chunks are processed in windows of at most kWindowSlots
  // simultaneously-held slot locks: a chunk's slot lock is held while
  // its segment is in flight (so the migrator never copies under it),
  // but a pool-capacity-sized op no longer pins every slot in the table
  // at once — which would stall the whole pool and overflow TSan's
  // 64-held-locks deadlock-detector capacity. Within a window the slots
  // are distinct (window <= slot_count, consecutive chunks map to
  // consecutive slots) and locked in ascending order; all are released
  // before the next window is taken, so the lock graph stays acyclic.
  const size_t slot_count = chunk_locks_.slot_count();
  const size_t window =
      std::min<size_t>(slot_count, static_cast<size_t>(kWindowSlots));
  uint64_t shard_mask = 0;
  std::exception_ptr error;
  std::vector<size_t> slots;
  std::vector<std::unique_lock<std::mutex>> locks;
  std::vector<raid::OpFuture> futures;
  for (int64_t w = first_chunk; w <= last_chunk && !error;
       w += static_cast<int64_t>(window)) {
    const int64_t w_last =
        std::min(last_chunk, w + static_cast<int64_t>(window) - 1);
    slots.clear();
    for (int64_t c = w; c <= w_last; ++c) {
      slots.push_back(static_cast<size_t>(c) % slot_count);
    }
    std::sort(slots.begin(), slots.end());
    const int64_t lock_t0 = now_ns();
    locks.clear();
    locks.reserve(slots.size());
    for (size_t slot : slots) {
      locks.push_back(chunk_locks_.lock(static_cast<int64_t>(slot)));
    }
    metrics_.chunk_lock_wait_ns->observe(now_ns() - lock_t0);

    // Placement is stable for every chunk of the window while its locks
    // are held: the migrator advances a chunk's routing only under its
    // lock.
    futures.clear();
    futures.reserve(static_cast<size_t>(w_last - w) + 1);
    try {
      for (int64_t c = w; c <= w_last; ++c) {
        const int64_t seg_begin = std::max(offset, c * chunk_bytes_);
        const int64_t seg_end =
            std::min(offset + len, (c + 1) * chunk_bytes_);
        const Placement p = place(c);
        const int64_t shard_off = p.offset + (seg_begin - c * chunk_bytes_);
        const size_t buf_off = static_cast<size_t>(seg_begin - offset);
        const size_t seg_len = static_cast<size_t>(seg_end - seg_begin);
        Shard& shard = *shards_[static_cast<size_t>(p.shard)];
        shard_mask |= uint64_t{1} << p.shard;
        if (is_write) {
          futures.push_back(shard.pipeline->submit_write(
              shard_off, wbuf.subspan(buf_off, seg_len)));
        } else {
          futures.push_back(shard.pipeline->submit_read(
              shard_off, rbuf.subspan(buf_off, seg_len)));
        }
      }
    } catch (...) {
      // submit_read/submit_write can throw (pipeline shutting down).
      // The window's chunk locks must outlive every segment already in
      // flight — unwinding past them would let the migrator copy a
      // chunk under an in-flight op — so settle those futures first.
      for (raid::OpFuture& f : futures) f.wait();
      throw;
    }

    // Wait for every segment of the window before releasing its chunk
    // locks (a chunk must not migrate under an in-flight segment),
    // keeping the first error to rethrow; later windows are skipped.
    for (raid::OpFuture& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    locks.clear();
  }

  metrics_.op_fanout->observe(
      static_cast<int64_t>(std::popcount(shard_mask)));
  if (error) std::rethrow_exception(error);
  const int64_t dur = now_ns() - t0;
  if (is_write) {
    metrics_.writes->inc();
    metrics_.written_bytes->inc(len);
    metrics_.write_latency_ns->observe(dur);
  } else {
    metrics_.reads->inc();
    metrics_.read_bytes->inc(len);
    metrics_.read_latency_ns->observe(dur);
  }
}

void StoragePool::write(int64_t offset, std::span<const uint8_t> data) {
  obs::Span span(obs::TraceLog::global(), "pool.write",
                 {{"offset", offset},
                  {"bytes", static_cast<int64_t>(data.size())}});
  run_op(/*is_write=*/true, offset, {}, data);
}

void StoragePool::read(int64_t offset, std::span<uint8_t> out) {
  obs::Span span(obs::TraceLog::global(), "pool.read",
                 {{"offset", offset},
                  {"bytes", static_cast<int64_t>(out.size())}});
  run_op(/*is_write=*/false, offset, out, {});
}

int StoragePool::flush() {
  int flushed = 0;
  const int n = shard_count();
  for (int i = 0; i < n; ++i) {
    shards_[static_cast<size_t>(i)]->pipeline->drain();
    flushed += shards_[static_cast<size_t>(i)]->array->flush();
  }
  return flushed;
}

// --- Online capacity add ---------------------------------------------------

void StoragePool::add_shard() {
  // Serialize against other admin ops: without the mutex two concurrent
  // add_shard() calls could both pass the restriping_ check and race on
  // the shards_[n] slot and the routing publication.
  std::lock_guard<std::mutex> admin(admin_mu_);
  const int n = shard_count();
  DCODE_CHECK(!restriping_.load(std::memory_order_acquire),
              "a restripe is already pending; wait_for_restripe() (and "
              "resume_restripe() after a stall) first");
  DCODE_CHECK(n < kMaxShards, "pool is at kMaxShards");

  std::unique_ptr<Shard> shard = make_shard(n);
  DCODE_CHECK(shard->array->capacity() == chunks_per_shard_ * chunk_bytes_,
              "new shard capacity mismatch");

  // Publish the restripe routing state *before* the new shard count;
  // place() pairs with this by loading shard_count_ before restriping_,
  // so an op that already sees n+1 shards must also see restriping_ set
  // and cannot route chunks with the new placement prematurely.
  restripe_chunks_.store(n * chunks_per_shard_, std::memory_order_relaxed);
  restripe_watermark_.store(0, std::memory_order_relaxed);
  route_old_.store(n, std::memory_order_relaxed);
  route_new_.store(n + 1, std::memory_order_relaxed);
  restriping_.store(true, std::memory_order_release);

  shards_[static_cast<size_t>(n)] = std::move(shard);
  shard_count_.store(n + 1, std::memory_order_release);
  metrics_.shards->set(n + 1);
  metrics_.restripes->inc();
  metrics_.restripe_in_progress->set(1);

  resume_restripe();
}

void StoragePool::resume_restripe() {
  if (!restriping_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(restripe_mu_);
  if (restripe_running_) return;
  if (restripe_thread_.joinable()) restripe_thread_.join();
  restripe_running_ = true;
  restripe_thread_ = std::thread([this] { restripe_worker(); });
}

void StoragePool::restripe_worker() {
  obs::Span span(obs::TraceLog::global(), "pool.restripe",
                 {{"chunks", restripe_chunks_.load()},
                  {"shards", route_new_.load()}});
  const bool done = restripe_pass();
  if (done) finish_restripe();
  std::lock_guard<std::mutex> lock(restripe_mu_);
  restripe_running_ = false;
  restripe_cv_.notify_all();
}

bool StoragePool::restripe_pass() {
  const int old_shards = route_old_.load(std::memory_order_acquire);
  const int new_shards = route_new_.load(std::memory_order_acquire);
  const int64_t total = restripe_chunks_.load(std::memory_order_acquire);
  std::vector<uint8_t> buf(static_cast<size_t>(chunk_bytes_));

  for (int64_t c = restripe_watermark_.load(std::memory_order_acquire);
       c < total; ++c) {
    if (stop_restripe_.load(std::memory_order_relaxed)) return false;
    const int64_t waited = restripe_throttle_.acquire(1.0);
    if (waited > 0) metrics_.restripe_throttle_wait_ns->observe(waited);

    const Placement from = place_with(c, old_shards, chunk_bytes_);
    const Placement to = place_with(c, new_shards, chunk_bytes_);
    for (int attempt = 0;; ++attempt) {
      std::unique_lock<std::mutex> lock = chunk_locks_.lock(c);
      try {
        // Chunks 0..old_shards-1 map to the same (shard, offset) under
        // both placements; skip the self-copy but still advance the
        // watermark so routing flips over in one monotone front.
        if (from.shard != to.shard || from.offset != to.offset) {
          Shard& src = *shards_[static_cast<size_t>(from.shard)];
          Shard& dst = *shards_[static_cast<size_t>(to.shard)];
          src.array->read(from.offset, buf);
          dst.array->write(to.offset, buf);
        }
        // Advance before unlocking: the next op on this chunk must
        // already route to the new placement, which now holds the data.
        restripe_watermark_.store(c + 1, std::memory_order_release);
        metrics_.restripe_chunks_moved->inc();
        break;
      } catch (const raid::PowerLossError&) {
        return false;  // stand down; resume after restart + recovery
      } catch (const raid::DiskFailedError&) {
        // The shard's own failover/rebuild machinery handles most disk
        // loss internally; what escapes here is a shard beyond its
        // tolerance mid-copy — retry around transient windows, then
        // stand down and let the operator repair + resume.
        if (attempt >= 3) return false;
      }
    }
  }
  return true;
}

void StoragePool::finish_restripe() {
  const int n = route_new_.load(std::memory_order_acquire);
  // Every chunk is below the watermark now, so old/new routing agree;
  // fold the routing state back to steady-state, then expose the new
  // capacity (ops admitted against it can only land on migrated space).
  route_old_.store(n, std::memory_order_relaxed);
  restriping_.store(false, std::memory_order_release);
  capacity_.store(n * chunks_per_shard_ * chunk_bytes_,
                  std::memory_order_release);
  metrics_.capacity_bytes->set(capacity());
  metrics_.restripe_in_progress->set(0);
}

bool StoragePool::wait_for_restripe() {
  {
    std::unique_lock<std::mutex> lock(restripe_mu_);
    restripe_cv_.wait(lock, [&] { return !restripe_running_; });
    if (restripe_thread_.joinable()) restripe_thread_.join();
  }
  return !restriping_.load(std::memory_order_acquire);
}

bool StoragePool::restripe_in_progress() const {
  std::lock_guard<std::mutex> lock(restripe_mu_);
  return restripe_running_;
}

void StoragePool::set_restripe_rate(double chunks_per_sec, double burst) {
  restripe_throttle_.set_rate(chunks_per_sec, burst);
}

// --- Per-shard access and pool-wide maintenance ----------------------------

raid::Raid6Array& StoragePool::shard_array(int i) {
  DCODE_CHECK(i >= 0 && i < shard_count(), "shard index out of range");
  return *shards_[static_cast<size_t>(i)]->array;
}

raid::StripePipeline& StoragePool::shard_pipeline(int i) {
  DCODE_CHECK(i >= 0 && i < shard_count(), "shard index out of range");
  return *shards_[static_cast<size_t>(i)]->pipeline;
}

PoolHealth StoragePool::health() const {
  PoolHealth h;
  const int n = shard_count();
  h.shards.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const raid::Raid6Array& a = *shards_[static_cast<size_t>(i)]->array;
    PoolHealth::ShardHealth sh;
    sh.failed_disks = a.failed_disk_count();
    sh.hot_spares = a.hot_spares();
    sh.rebuilding = a.rebuild_in_progress();
    sh.crashed = a.crashed();
    if (sh.failed_disks > 0) ++h.degraded_shards;
    if (sh.rebuilding) ++h.rebuilding_shards;
    if (sh.crashed) ++h.crashed_shards;
    h.shards.push_back(sh);
  }
  h.restriping = restriping_.load(std::memory_order_acquire);
  return h;
}

void StoragePool::pause_restripe() {
  stop_restripe_.store(true, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(restripe_mu_);
  restripe_cv_.wait(lock, [&] { return !restripe_running_; });
  if (restripe_thread_.joinable()) restripe_thread_.join();
  stop_restripe_.store(false, std::memory_order_relaxed);
}

int StoragePool::restart_all() {
  // A restarted shard's journal must be replayed before any new write
  // reaches it: an RMW write to a stripe the crash left torn folds the
  // stale parity error into its delta, and its commit closes the
  // crash's open intent — the inconsistency becomes invisible to
  // recovery and multi-element, so repair-scrub can't localize it.
  // Two kinds of writer can race that window: the migrator, paused
  // across restart + replay and only then allowed to continue, and
  // foreground pool ops, held off by the exclusive side of io_gate_
  // (run_op holds it shared for the op's whole lifetime, so acquiring
  // it exclusively also waits out every op already in flight).
  std::lock_guard<std::mutex> admin(admin_mu_);
  pause_restripe();
  int restarted = 0;
  {
    std::unique_lock<std::shared_mutex> gate(io_gate_);
    const int n = shard_count();
    for (int i = 0; i < n; ++i) {
      raid::Raid6Array& a = *shards_[static_cast<size_t>(i)]->array;
      const bool crashed = a.crashed();
      a.restart();  // clears a consumed crash and an unconsumed budget alike
      if (crashed) {
        if (a.journal_enabled()) a.journal_recover();
        ++restarted;
      }
    }
  }
  resume_restripe();
  return restarted;
}

int64_t StoragePool::journal_recover_all() {
  int64_t repaired = 0;
  const int n = shard_count();
  for (int i = 0; i < n; ++i) {
    raid::Raid6Array& a = *shards_[static_cast<size_t>(i)]->array;
    if (a.journal_enabled()) repaired += a.journal_recover();
  }
  return repaired;
}

int64_t StoragePool::journal_open_intents() const {
  int64_t open = 0;
  const int n = shard_count();
  for (int i = 0; i < n; ++i) {
    const raid::Raid6Array& a = *shards_[static_cast<size_t>(i)]->array;
    if (a.journal_enabled()) {
      open += static_cast<int64_t>(a.journal_open_stripes().size());
    }
  }
  return open;
}

bool StoragePool::wait_for_rebuilds() {
  bool all = true;
  const int n = shard_count();
  for (int i = 0; i < n; ++i) {
    all = shards_[static_cast<size_t>(i)]->array->wait_for_rebuild() && all;
  }
  return all;
}

int64_t StoragePool::scrub_all() {
  int64_t inconsistent = 0;
  const int n = shard_count();
  for (int i = 0; i < n; ++i) {
    raid::ScrubReport r =
        shards_[static_cast<size_t>(i)]->array->scrub_report();
    inconsistent += static_cast<int64_t>(r.inconsistent_stripes.size());
    metrics_.integrity_checksum_mismatches->inc(r.checksum_mismatches);
    metrics_.integrity_stale_stripes->inc(
        static_cast<int64_t>(r.stale_stripes.size()));
  }
  return inconsistent;
}

raid::ScrubReport StoragePool::scrub_repair_all() {
  raid::ScrubReport total;
  const int n = shard_count();
  for (int i = 0; i < n; ++i) {
    raid::ScrubReport r = shards_[static_cast<size_t>(i)]->array->scrub_report(
        {.repair = true});
    total.stripes_checked += r.stripes_checked;
    for (int64_t s : r.inconsistent_stripes) {
      total.inconsistent_stripes.push_back(s);
    }
    for (int64_t s : r.stale_stripes) total.stale_stripes.push_back(s);
    total.equations_checked += r.equations_checked;
    total.equations_skipped += r.equations_skipped;
    total.elements_located += r.elements_located;
    total.elements_repaired += r.elements_repaired;
    total.stripes_unrepairable += r.stripes_unrepairable;
    total.stripes_skipped_degraded += r.stripes_skipped_degraded;
    total.stripes_family_disagreement += r.stripes_family_disagreement;
    total.checksum_mismatches += r.checksum_mismatches;
    total.elements_checksum_located += r.elements_checksum_located;
    total.elements_stale += r.elements_stale;
    metrics_.integrity_checksum_mismatches->inc(r.checksum_mismatches);
    metrics_.integrity_checksum_located->inc(r.elements_checksum_located);
    metrics_.integrity_stale_stripes->inc(
        static_cast<int64_t>(r.stale_stripes.size()));
  }
  return total;
}

}  // namespace dcode::volume

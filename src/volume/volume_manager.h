// VolumeManager: named volumes on top of a StoragePool or Raid6Array.
//
// The thinnest useful storage frontend: a superblock at the start of the
// backing store's logical space holds a volume table (name, offset,
// size); volumes are contiguous byte extents allocated first-fit. The
// superblock lives *inside* the protected data space, so volume metadata
// enjoys the same two-disk-per-shard fault tolerance as the data —
// open() after a failure/rebuild cycle sees the same volumes.
//
// The manager is written against a type-erased byte target, so the same
// code runs over a single Raid6Array (the original substrate) or a
// sharded StoragePool — where named volumes transparently span shards
// and keep working through shard rebuilds and online capacity adds
// (capacity is re-read from the target, so free_bytes()/create() see
// space added by a completed restripe).
//
// This is deliberately a flat, fixed-size table (64 volumes, 32-byte
// names): the point is a realistic consumer of the pool/array API (byte
// addressing, degraded reads, journaled writes), not a filesystem.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "raid/raid6_array.h"
#include "volume/storage_pool.h"

namespace dcode::volume {

struct VolumeInfo {
  std::string name;
  int64_t offset = 0;  // bytes, within the target's data space
  int64_t size = 0;    // bytes
};

class VolumeManager {
 public:
  static constexpr int kMaxVolumes = 64;
  static constexpr size_t kMaxNameLen = 31;

  // The byte substrate the manager runs over. capacity() is consulted
  // on every allocation, so a target that grows (pool restripe) makes
  // the new space allocatable without reopening.
  struct Target {
    std::function<void(int64_t, std::span<const uint8_t>)> write;
    std::function<void(int64_t, std::span<uint8_t>)> read;
    std::function<int64_t()> capacity;
  };

  // Initializes an empty volume table (destroys existing metadata).
  static VolumeManager format(raid::Raid6Array& array);
  static VolumeManager format(StoragePool& pool);
  static VolumeManager format(Target target);
  // Loads an existing table; throws if the superblock is not recognized.
  static VolumeManager open(raid::Raid6Array& array);
  static VolumeManager open(StoragePool& pool);
  static VolumeManager open(Target target);

  // Creates a volume of `size` bytes; first-fit allocation. Throws on
  // duplicate name, a full table, or insufficient contiguous space.
  void create(const std::string& name, int64_t size);
  // Removes a volume (its extent becomes reusable). Throws if unknown.
  void remove(const std::string& name);

  // Byte I/O within a volume; bounds-checked against the volume size.
  void write(const std::string& name, int64_t offset,
             std::span<const uint8_t> data);
  void read(const std::string& name, int64_t offset, std::span<uint8_t> out);

  std::vector<VolumeInfo> list() const;
  std::optional<VolumeInfo> find(const std::string& name) const;

  // Usable bytes not covered by any volume or the superblock.
  int64_t free_bytes() const;
  // Largest single volume that could be created right now.
  int64_t largest_free_extent() const;

 private:
  explicit VolumeManager(Target target) : target_(std::move(target)) {}
  static Target target_of(raid::Raid6Array& array);
  static Target target_of(StoragePool& pool);
  void persist();
  void load();
  const VolumeInfo& lookup(const std::string& name) const;

  static size_t superblock_bytes();

  Target target_;
  std::vector<VolumeInfo> volumes_;
};

}  // namespace dcode::volume

// Primality utilities.
//
// Every code in this library is parameterized by a prime p (D-Code and
// X-Code require the *column count* to be prime; RDP/EVENODD/H-Code/HDP
// require their internal p to be prime). Constructors use these helpers
// to validate their arguments.
#pragma once

#include <vector>

namespace dcode {

// Deterministic trial-division primality test; ample for the disk counts
// a RAID controller would ever see (p < 10^6 decides instantly).
constexpr bool is_prime(int n) {
  if (n < 2) return false;
  if (n < 4) return true;
  if (n % 2 == 0) return false;
  for (int d = 3; d * d <= n; d += 2) {
    if (n % d == 0) return false;
  }
  return true;
}

static_assert(is_prime(2) && is_prime(5) && is_prime(7) && is_prime(13));
static_assert(!is_prime(1) && !is_prime(9) && !is_prime(15));

// All primes in [lo, hi], ascending. Used by parameter sweeps in tests
// and benchmarks (the paper evaluates p in {5, 7, 11, 13}).
std::vector<int> primes_in_range(int lo, int hi);

// Smallest prime >= n, e.g. for sizing a code to a requested disk count.
int next_prime(int n);

}  // namespace dcode

// PCG32: a small, fast, statistically strong PRNG (O'Neill 2014).
//
// Simulations in this repo (workload generation, random stripes, failure
// injection) need reproducible streams that are cheap to fork. PCG32 gives
// a 2^64 period, independent streams via the `seq` parameter, and identical
// output across platforms — unlike std::default_random_engine, whose
// definition is implementation-specified.
#pragma once

#include <cstdint>

#include "util/check.h"

namespace dcode {

class Pcg32 {
 public:
  // `seed` selects the starting point; `seq` selects one of 2^63
  // independent streams.
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t seq = 1)
      : state_(0), inc_((seq << 1u) | 1u) {
    next_u32();
    state_ += seed;
    next_u32();
  }

  uint32_t next_u32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  uint64_t next_u64() {
    return (static_cast<uint64_t>(next_u32()) << 32) | next_u32();
  }

  // Uniform integer in [0, bound) without modulo bias (Lemire-style
  // rejection on the low 32 bits).
  uint32_t next_below(uint32_t bound) {
    DCODE_CHECK(bound > 0, "next_below bound must be positive");
    uint32_t threshold = (-bound) % bound;
    for (;;) {
      uint32_t r = next_u32();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in the inclusive range [lo, hi].
  int next_in_range(int lo, int hi) {
    DCODE_CHECK(lo <= hi, "next_in_range requires lo <= hi");
    return lo + static_cast<int>(
                    next_below(static_cast<uint32_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u32()) * (1.0 / 4294967296.0);
  }

  // Fill a byte buffer with pseudo-random content (test stripes).
  void fill_bytes(uint8_t* data, size_t len) {
    size_t i = 0;
    for (; i + 4 <= len; i += 4) {
      uint32_t v = next_u32();
      data[i + 0] = static_cast<uint8_t>(v);
      data[i + 1] = static_cast<uint8_t>(v >> 8);
      data[i + 2] = static_cast<uint8_t>(v >> 16);
      data[i + 3] = static_cast<uint8_t>(v >> 24);
    }
    if (i < len) {
      uint32_t v = next_u32();
      for (; i < len; ++i, v >>= 8) data[i] = static_cast<uint8_t>(v);
    }
  }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace dcode

// A small fixed-size thread pool with a blocking parallel_for.
//
// Stripe encode/decode/rebuild is embarrassingly parallel across stripes,
// so the pool only needs static chunking and a completion barrier — no
// futures, no work stealing. Tasks must not throw across the boundary;
// exceptions are captured and rethrown on the calling thread (first one
// wins), matching how a RAID rebuild would surface a fault.
//
// Completion is tracked per dispatch, not pool-wide: every parallel_for
// call owns a completion ticket (`Batch`) counting only its own chunks, so
// concurrent callers never block on each other's work and an exception is
// attributed to the call whose task threw. A nested parallel_for issued
// from inside one of this pool's workers runs inline on that worker —
// queueing it would deadlock, since the worker would wait on chunks that
// need its own queue slot to drain.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dcode {

class ThreadPool {
 public:
  // Point-in-time introspection of one pool (per-pool numbers; the
  // process-wide aggregates across pools live in obs::Registry::global()
  // under threadpool.*).
  struct Stats {
    int64_t tasks_run = 0;          // chunks executed to completion
    int64_t busy_ns = 0;            // summed wall time inside tasks
    int64_t queue_depth_high_water = 0;  // max tasks ever queued at once
    unsigned active_workers = 0;    // workers running a task right now
    size_t queued = 0;              // tasks waiting in the queue right now
  };

  // `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  Stats stats() const;

  // Runs fn(i) for i in [0, count), partitioned into contiguous chunks,
  // and blocks until all iterations complete. Runs inline when the pool
  // has a single worker, the range is tiny (avoids dispatch overhead), or
  // the caller is itself one of this pool's workers.
  void parallel_for(size_t count, const std::function<void(size_t)>& fn);

  // Like parallel_for but hands each worker a [begin, end) slice; useful
  // when per-chunk setup (e.g. a scratch buffer) amortizes across items.
  void parallel_for_chunked(
      size_t count, const std::function<void(size_t, size_t)>& fn);

 private:
  struct Batch;  // per-dispatch completion ticket (defined in the .cc)

  // A queued chunk and the ticket it completes. The worker signals the
  // ticket only after run_task's accounting lands, so a caller returning
  // from parallel_for observes stats() that include every one of its
  // chunks.
  struct QueuedTask {
    std::function<void()> work;
    Batch* batch = nullptr;
  };

  void worker_loop();
  void run_task(const std::function<void()>& task);

  std::vector<std::thread> workers_;
  std::queue<QueuedTask> tasks_;
  mutable std::mutex mu_;
  std::condition_variable task_cv_;  // workers wait for tasks
  bool stopping_ = false;

  // Accounting (relaxed atomics: read by stats() and the obs collector
  // without the queue lock).
  std::atomic<int64_t> tasks_run_{0};
  std::atomic<int64_t> busy_ns_{0};
  std::atomic<int64_t> queue_depth_hwm_{0};
  std::atomic<unsigned> active_workers_{0};
};

}  // namespace dcode

// Runtime CPU feature detection for the SIMD kernel backends.
//
// Detection happens once (thread-safe, on first use) and answers only the
// questions the dispatch layer asks: which vector ISAs can this CPU
// execute. Compile-time availability (was a backend built into this
// binary at all) is a separate axis handled by the DCODE_HAVE_ISA_*
// macros in the build system; see xorops/isa.h for the combined view.
#pragma once

namespace dcode::util {

struct CpuFeatures {
  bool sse2 = false;
  bool ssse3 = false;  // PSHUFB — required by the GF split-table kernels
  bool avx2 = false;
  // F + BW + VL together: 512-bit byte shuffles/XORs on ordinary
  // registers, which is what the kernels actually emit.
  bool avx512 = false;
};

// Detected once per process; non-x86 builds report everything false.
const CpuFeatures& cpu_features();

}  // namespace dcode::util

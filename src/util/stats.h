// Streaming statistics accumulator (Welford) and small helpers.
//
// Experiment drivers feed per-run measurements (I/O counts, modeled read
// times) into Accumulator and report mean/min/max/stddev without storing
// every sample. Welford's update is numerically stable for the long runs
// the paper uses (2000 operations per configuration).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "util/check.h"

namespace dcode {

class Accumulator {
 public:
  void add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  // Sample variance / standard deviation (n-1 denominator).
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void merge(const Accumulator& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    double n1 = static_cast<double>(count_);
    double n2 = static_cast<double>(other.count_);
    double delta = other.mean_ - mean_;
    mean_ = (n1 * mean_ + n2 * other.mean_) / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace dcode

// TokenBucket: a blocking rate limiter for background work.
//
// The background rebuild worker acquires one token per stripe so repair
// traffic can be throttled below foreground I/O. Tokens refill at a
// configurable steady rate up to a burst cap; acquire() blocks until the
// requested tokens accumulate and reports how long it waited (what the
// throttle-wait histogram wants). A rate of zero (or less) disables the
// throttle entirely — acquire() returns immediately.
//
// The clock is steady_clock and the state is mutex-protected: the rate
// can be retuned (set_rate) while a worker is mid-acquire, and the new
// rate applies from the next refill computation.
#pragma once

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

namespace dcode {

class TokenBucket {
 public:
  explicit TokenBucket(double tokens_per_sec = 0.0, double burst = 1.0)
      : rate_(tokens_per_sec),
        burst_(std::max(1.0, burst)),
        tokens_(burst_),
        last_(Clock::now()) {}

  // Retune; takes effect on the next acquire. rate <= 0 disables.
  void set_rate(double tokens_per_sec, double burst = 1.0) {
    std::lock_guard<std::mutex> lock(mu_);
    refill_locked(Clock::now());
    rate_ = tokens_per_sec;
    burst_ = std::max(1.0, burst);
    tokens_ = std::min(tokens_, burst_);
  }

  double rate() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rate_;
  }

  // Blocks until `tokens` are available, consumes them, and returns the
  // nanoseconds spent waiting (0 when unthrottled or tokens were ready).
  int64_t acquire(double tokens = 1.0) {
    const auto start = Clock::now();
    for (;;) {
      Clock::duration sleep_for{};
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (rate_ <= 0.0) return 0;
        refill_locked(Clock::now());
        if (tokens_ >= tokens) {
          tokens_ -= tokens;
          return std::chrono::duration_cast<std::chrono::nanoseconds>(
                     Clock::now() - start)
              .count();
        }
        const double deficit = tokens - tokens_;
        sleep_for = std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(deficit / rate_));
      }
      std::this_thread::sleep_for(
          std::max(sleep_for, Clock::duration(std::chrono::microseconds(50))));
    }
  }

 private:
  using Clock = std::chrono::steady_clock;

  void refill_locked(Clock::time_point now) {
    if (rate_ > 0.0 && now > last_) {
      const double dt = std::chrono::duration<double>(now - last_).count();
      tokens_ = std::min(burst_, tokens_ + dt * rate_);
    }
    last_ = now;
  }

  mutable std::mutex mu_;
  double rate_;
  double burst_;
  double tokens_;
  Clock::time_point last_;
};

}  // namespace dcode

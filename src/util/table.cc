#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace dcode {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  DCODE_CHECK(!header_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(const std::vector<std::string>& cells) {
  DCODE_CHECK(cells.size() == header_.size(),
              "row width must match the header");
  rows_.push_back(cells);
}

void TablePrinter::add_numeric_row(const std::string& label,
                                   const std::vector<double>& values,
                                   int precision) {
  DCODE_CHECK(values.size() + 1 == header_.size(),
              "label + values must match the header width");
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_double(v, precision));
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << (c == 0 ? std::left : std::right) << row[c];
      os << std::right;
    }
    os << '\n';
  };

  print_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace dcode

#include "util/cpu.h"

namespace dcode::util {
namespace {

CpuFeatures detect() {
  CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  f.sse2 = __builtin_cpu_supports("sse2");
  f.ssse3 = __builtin_cpu_supports("ssse3");
  f.avx2 = __builtin_cpu_supports("avx2");
  f.avx512 = __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512vl");
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect();
  return f;
}

}  // namespace dcode::util

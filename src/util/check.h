// Lightweight runtime contract checking.
//
// The library validates public-API arguments with DCODE_CHECK (always on)
// and internal invariants with DCODE_ASSERT (compiled out in NDEBUG-with-
// DCODE_NO_INTERNAL_CHECKS builds). Violations throw std::logic_error /
// std::invalid_argument so callers and tests can observe them; array codes
// guard storage, so failing fast beats corrupting a stripe.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dcode::detail {

[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace dcode::detail

// Argument validation for public entry points: always enabled.
#define DCODE_CHECK(cond, msg)                                              \
  do {                                                                      \
    if (!(cond))                                                            \
      ::dcode::detail::check_failed("DCODE_CHECK", #cond, __FILE__,         \
                                    __LINE__, (msg));                       \
  } while (0)

// Internal invariant: enabled unless explicitly compiled out.
#if defined(DCODE_NO_INTERNAL_CHECKS)
#define DCODE_ASSERT(cond, msg) ((void)0)
#else
#define DCODE_ASSERT(cond, msg)                                             \
  do {                                                                      \
    if (!(cond))                                                            \
      ::dcode::detail::check_failed("DCODE_ASSERT", #cond, __FILE__,        \
                                    __LINE__, (msg));                       \
  } while (0)
#endif

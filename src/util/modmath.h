// Modular arithmetic helpers used by every array-code construction.
//
// The paper's equations use <x>_n, a *mathematical* (always non-negative)
// residue. C++ `%` truncates toward zero, so expressions like
// <i - j - 2>_n need the corrected form below. All helpers are constexpr
// so layouts can be built in constant expressions and unit tests can use
// static_assert.
#pragma once

#include <cstdint>

#include "util/check.h"

namespace dcode {

// Non-negative residue of `x` modulo `n` (n > 0). Works for negative x,
// which plain `%` does not: pmod(-1, 7) == 6 while -1 % 7 == -1.
constexpr int pmod(int64_t x, int n) {
  int64_t r = x % n;
  return static_cast<int>(r < 0 ? r + n : r);
}

// Multiplicative inverse of `a` modulo prime `p` via Fermat's little
// theorem (a^(p-2) mod p). Only meaningful for prime moduli.
constexpr int mod_inverse(int a, int p) {
  int64_t base = pmod(a, p);
  int64_t result = 1;
  for (int exp = p - 2; exp > 0; exp >>= 1) {
    if (exp & 1) result = (result * base) % p;
    base = (base * base) % p;
  }
  return static_cast<int>(result);
}

// x^e mod n for small non-negative exponents.
constexpr int mod_pow(int x, int e, int n) {
  int64_t base = pmod(x, n);
  int64_t result = 1 % n;  // e == 0 must still reduce (x^0 mod 1 == 0)
  for (; e > 0; e >>= 1) {
    if (e & 1) result = (result * base) % n;
    base = (base * base) % n;
  }
  return static_cast<int>(result);
}

static_assert(pmod(-1, 7) == 6);
static_assert(pmod(13, 7) == 6);
static_assert(pmod(-8, 5) == 2);
static_assert(mod_inverse(2, 7) == 4);
static_assert(mod_pow(3, 4, 7) == 4);

}  // namespace dcode

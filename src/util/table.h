// Console table / CSV formatting for experiment output.
//
// Every bench binary prints the same rows/series the paper's figures plot.
// TablePrinter right-aligns numeric columns so sweeps are readable in a
// terminal, and can emit the identical data as CSV for external plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dcode {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Convenience: formats doubles with `precision` digits after the point.
  void add_row(const std::vector<std::string>& cells);
  void add_numeric_row(const std::string& label,
                       const std::vector<double>& values, int precision = 2);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed precision (no trailing garbage, locale-free).
std::string format_double(double v, int precision = 2);

}  // namespace dcode

#include "util/primes.h"

#include "util/check.h"

namespace dcode {

std::vector<int> primes_in_range(int lo, int hi) {
  std::vector<int> out;
  for (int n = lo; n <= hi; ++n) {
    if (is_prime(n)) out.push_back(n);
  }
  return out;
}

int next_prime(int n) {
  DCODE_CHECK(n <= (1 << 24), "next_prime argument unreasonably large");
  if (n < 2) return 2;
  int c = n;
  while (!is_prime(c)) ++c;
  return c;
}

}  // namespace dcode

// Cache-line/SIMD-aligned byte buffers.
//
// XOR region kernels read and write whole machine words (and are written so
// the compiler can vectorize them); 64-byte alignment keeps every element
// buffer on its own cache line and lets vector loads be aligned. This is a
// move-only RAII owner — no hidden copies of multi-megabyte stripes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <utility>

#include "util/check.h"

namespace dcode {

class AlignedBuffer {
 public:
  static constexpr size_t kAlignment = 64;

  AlignedBuffer() = default;

  explicit AlignedBuffer(size_t size) : size_(size) {
    if (size_ > 0) {
      // Round the allocation up so the last word-wide access in a kernel
      // never touches unowned memory even for odd sizes.
      size_t alloc = (size_ + kAlignment - 1) / kAlignment * kAlignment;
      data_ = static_cast<uint8_t*>(::operator new(alloc, std::align_val_t{kAlignment}));
      std::memset(data_, 0, alloc);
    }
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::span<uint8_t> span() { return {data_, size_}; }
  std::span<const uint8_t> span() const { return {data_, size_}; }

  uint8_t& operator[](size_t i) {
    DCODE_ASSERT(i < size_, "AlignedBuffer index out of range");
    return data_[i];
  }
  uint8_t operator[](size_t i) const {
    DCODE_ASSERT(i < size_, "AlignedBuffer index out of range");
    return data_[i];
  }

  void zero() {
    if (data_) std::memset(data_, 0, size_);
  }

 private:
  void release() {
    if (data_) {
      ::operator delete(data_, std::align_val_t{kAlignment});
      data_ = nullptr;
    }
  }

  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace dcode

#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace dcode {

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads != 0 ? threads
                            : std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++in_flight_;
    tasks_.push(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(size_t count,
                              const std::function<void(size_t)>& fn) {
  parallel_for_chunked(count, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::parallel_for_chunked(
    size_t count, const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) return;
  const size_t nworkers = workers_.size();
  // Dispatch is pointless for tiny ranges or a single worker.
  if (nworkers <= 1 || count == 1) {
    fn(0, count);
    return;
  }

  const size_t nchunks = std::min(count, nworkers);
  const size_t base = count / nchunks;
  const size_t extra = count % nchunks;

  std::exception_ptr first_error;
  std::mutex error_mu;

  size_t begin = 0;
  for (size_t c = 0; c < nchunks; ++c) {
    size_t len = base + (c < extra ? 1 : 0);
    size_t end = begin + len;
    submit([&fn, &first_error, &error_mu, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
    begin = end;
  }
  DCODE_ASSERT(begin == count, "chunking must cover the whole range");
  wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dcode

#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "obs/metrics.h"
#include "util/check.h"

namespace dcode {
namespace {

// Set for the lifetime of a worker thread so parallel_for can detect a
// nested dispatch onto the pool the caller already serves.
thread_local const ThreadPool* current_pool = nullptr;

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Process-wide aggregates over every pool, in the global registry.
struct PoolMetrics {
  obs::Counter* tasks_run;
  obs::Counter* busy_ns;
  obs::Gauge* queue_depth_hwm;
  obs::Gauge* active_workers;

  static const PoolMetrics& get() {
    static const PoolMetrics m = [] {
      auto& reg = obs::Registry::global();
      return PoolMetrics{
          &reg.counter("threadpool.tasks_run", {},
                       "pool tasks (chunks) executed, all pools"),
          &reg.counter("threadpool.busy_ns", {},
                       "summed wall time inside pool tasks, all pools"),
          &reg.gauge("threadpool.queue_depth_hwm", {},
                     "max tasks ever queued at once, any pool"),
          &reg.gauge("threadpool.active_workers", {},
                     "workers running a task right now, all pools"),
      };
    }();
    return m;
  }
};

}  // namespace

// Per-dispatch completion ticket. Lives on the dispatching caller's stack;
// the caller cannot return before `remaining` hits zero, and workers only
// touch the ticket under its mutex, so the lifetime is safe.
struct ThreadPool::Batch {
  explicit Batch(size_t chunks) : remaining(chunks) {}

  std::mutex mu;
  std::condition_variable done_cv;  // the dispatching caller waits here
  size_t remaining;
  std::exception_ptr first_error;
};

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads != 0 ? threads
                            : std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  current_pool = this;
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    run_task(task.work);
    // Complete the dispatch ticket only now, after run_task recorded the
    // chunk: the dispatching caller may wake on this notify, and stats()
    // after parallel_for returns must already count every chunk.
    if (task.batch != nullptr) {
      std::lock_guard<std::mutex> batch_lock(task.batch->mu);
      if (--task.batch->remaining == 0) task.batch->done_cv.notify_all();
    }
  }
}

void ThreadPool::run_task(const std::function<void()>& task) {
  const PoolMetrics& pm = PoolMetrics::get();
  active_workers_.fetch_add(1, std::memory_order_relaxed);
  pm.active_workers->add(1);
  const int64_t t0 = now_ns();
  task();  // Batch wrapper: never throws across this boundary
  const int64_t dt = now_ns() - t0;
  busy_ns_.fetch_add(dt, std::memory_order_relaxed);
  pm.busy_ns->inc(dt);
  tasks_run_.fetch_add(1, std::memory_order_relaxed);
  pm.tasks_run->inc();
  active_workers_.fetch_sub(1, std::memory_order_relaxed);
  pm.active_workers->sub(1);
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  s.busy_ns = busy_ns_.load(std::memory_order_relaxed);
  s.queue_depth_high_water = queue_depth_hwm_.load(std::memory_order_relaxed);
  s.active_workers = active_workers_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  s.queued = tasks_.size();
  return s;
}

void ThreadPool::parallel_for(size_t count,
                              const std::function<void(size_t)>& fn) {
  parallel_for_chunked(count, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::parallel_for_chunked(
    size_t count, const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) return;
  const size_t nworkers = workers_.size();
  // Dispatch is pointless for tiny ranges or a single worker, and a
  // nested dispatch from one of our own workers must not queue: the
  // worker would block on chunks that need its own queue slot to run.
  if (nworkers <= 1 || count == 1 || current_pool == this) {
    fn(0, count);
    return;
  }

  const size_t nchunks = std::min(count, nworkers);
  const size_t base = count / nchunks;
  const size_t extra = count % nchunks;

  Batch batch(nchunks);
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t begin = 0;
    for (size_t c = 0; c < nchunks; ++c) {
      size_t len = base + (c < extra ? 1 : 0);
      size_t end = begin + len;
      tasks_.push({[&batch, &fn, begin, end] {
                     try {
                       fn(begin, end);
                     } catch (...) {
                       std::lock_guard<std::mutex> batch_lock(batch.mu);
                       if (!batch.first_error) {
                         batch.first_error = std::current_exception();
                       }
                     }
                   },
                   &batch});
      begin = end;
    }
    DCODE_ASSERT(begin == count, "chunking must cover the whole range");
    const int64_t depth = static_cast<int64_t>(tasks_.size());
    if (depth > queue_depth_hwm_.load(std::memory_order_relaxed)) {
      queue_depth_hwm_.store(depth, std::memory_order_relaxed);
      PoolMetrics::get().queue_depth_hwm->update_max(depth);
    }
  }
  task_cv_.notify_all();

  std::unique_lock<std::mutex> lock(batch.mu);
  batch.done_cv.wait(lock, [&batch] { return batch.remaining == 0; });
  if (batch.first_error) std::rethrow_exception(batch.first_error);
}

}  // namespace dcode

#include "util/thread_pool.h"

#include <algorithm>
#include <exception>

#include "util/check.h"

namespace dcode {
namespace {

// Set for the lifetime of a worker thread so parallel_for can detect a
// nested dispatch onto the pool the caller already serves.
thread_local const ThreadPool* current_pool = nullptr;

}  // namespace

// Per-dispatch completion ticket. Lives on the dispatching caller's stack;
// the caller cannot return before `remaining` hits zero, and workers only
// touch the ticket under its mutex, so the lifetime is safe.
struct ThreadPool::Batch {
  explicit Batch(size_t chunks) : remaining(chunks) {}

  std::mutex mu;
  std::condition_variable done_cv;  // the dispatching caller waits here
  size_t remaining;
  std::exception_ptr first_error;
};

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads != 0 ? threads
                            : std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(size_t count,
                              const std::function<void(size_t)>& fn) {
  parallel_for_chunked(count, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::parallel_for_chunked(
    size_t count, const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) return;
  const size_t nworkers = workers_.size();
  // Dispatch is pointless for tiny ranges or a single worker, and a
  // nested dispatch from one of our own workers must not queue: the
  // worker would block on chunks that need its own queue slot to run.
  if (nworkers <= 1 || count == 1 || current_pool == this) {
    fn(0, count);
    return;
  }

  const size_t nchunks = std::min(count, nworkers);
  const size_t base = count / nchunks;
  const size_t extra = count % nchunks;

  Batch batch(nchunks);
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t begin = 0;
    for (size_t c = 0; c < nchunks; ++c) {
      size_t len = base + (c < extra ? 1 : 0);
      size_t end = begin + len;
      tasks_.push([&batch, &fn, begin, end] {
        std::exception_ptr err;
        try {
          fn(begin, end);
        } catch (...) {
          err = std::current_exception();
        }
        std::lock_guard<std::mutex> batch_lock(batch.mu);
        if (err && !batch.first_error) batch.first_error = err;
        if (--batch.remaining == 0) batch.done_cv.notify_all();
      });
      begin = end;
    }
    DCODE_ASSERT(begin == count, "chunking must cover the whole range");
  }
  task_cv_.notify_all();

  std::unique_lock<std::mutex> lock(batch.mu);
  batch.done_cv.wait(lock, [&batch] { return batch.remaining == 0; });
  if (batch.first_error) std::rethrow_exception(batch.first_error);
}

}  // namespace dcode

// 256-bit (AVX2) XOR backend.
#include "xorops/xor_backend.h"

#ifdef DCODE_HAVE_ISA_AVX2

#include <immintrin.h>

#include "xorops/xor_simd_impl.h"

namespace dcode::xorops::detail {
namespace {

struct Avx2Traits {
  using V = __m256i;
  static V load(const uint8_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(uint8_t* p, V v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static V vxor(V a, V b) { return _mm256_xor_si256(a, b); }
};

}  // namespace

const XorKernels& avx2_xor_kernels() {
  return simd_kernel_table<Avx2Traits>();
}

}  // namespace dcode::xorops::detail

#endif  // DCODE_HAVE_ISA_AVX2

#include "xorops/isa.h"

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "obs/metrics.h"
#include "util/cpu.h"

namespace dcode::xorops {
namespace {

constexpr Isa kAllIsas[] = {Isa::kScalar, Isa::kSse2, Isa::kAvx2,
                            Isa::kAvx512};

bool parse_isa(const char* s, Isa* out) {
  for (Isa isa : kAllIsas) {
    if (std::strcmp(s, isa_name(isa)) == 0) {
      *out = isa;
      return true;
    }
  }
  return false;
}

Isa best_supported() {
  Isa best = Isa::kScalar;
  for (Isa isa : kAllIsas) {
    if (isa_supported(isa)) best = isa;
  }
  return best;
}

Isa resolve() {
  Isa chosen = best_supported();
  const char* env = std::getenv("DCODE_ISA");
  if (env != nullptr && env[0] != '\0') {
    Isa requested;
    if (!parse_isa(env, &requested)) {
      std::cerr << "dcode: ignoring unknown DCODE_ISA='" << env
                << "' (expected scalar|sse2|avx2|avx512)\n";
    } else if (requested > chosen) {
      std::cerr << "dcode: DCODE_ISA=" << env
                << " not supported on this CPU/build; using "
                << isa_name(chosen) << "\n";
    } else {
      chosen = requested;
    }
  }

  // Export the choice so every telemetry document (which snapshots the
  // global registry) records the ISA that produced its numbers.
  auto& reg = obs::Registry::global();
  for (Isa isa : kAllIsas) {
    reg.gauge("isa.supported", {{"isa", isa_name(isa)}},
              "kernel backend compiled in and runnable on this CPU")
        .set(isa_supported(isa) ? 1 : 0);
  }
  reg.gauge("isa.active", {{"isa", isa_name(chosen)}},
            "kernel backend all dispatched region ops use")
      .set(1);
  return chosen;
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool isa_compiled(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
#ifdef DCODE_HAVE_ISA_SSE2
      return true;
#else
      return false;
#endif
    case Isa::kAvx2:
#ifdef DCODE_HAVE_ISA_AVX2
      return true;
#else
      return false;
#endif
    case Isa::kAvx512:
#ifdef DCODE_HAVE_ISA_AVX512
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool isa_supported(Isa isa) {
  if (!isa_compiled(isa)) return false;
  const auto& cpu = util::cpu_features();
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
      return cpu.sse2 && cpu.ssse3;  // GF kernels need PSHUFB
    case Isa::kAvx2:
      return cpu.avx2;
    case Isa::kAvx512:
      return cpu.avx512;
  }
  return false;
}

std::vector<Isa> supported_isas() {
  std::vector<Isa> out;
  for (Isa isa : kAllIsas) {
    if (isa_supported(isa)) out.push_back(isa);
  }
  return out;
}

Isa active_isa() {
  static const Isa isa = resolve();
  return isa;
}

}  // namespace dcode::xorops

// Shared bodies for the vector XOR backends.
//
// Each backend translation unit (compiled with its ISA's target flags)
// instantiates these templates with a Traits type wrapping the ISA's
// load/store/xor intrinsics:
//
//   struct Traits {
//     using V = <vector register type>;
//     static V load(const uint8_t* p);      // unaligned
//     static void store(uint8_t* p, V v);   // unaligned
//     static V vxor(V a, V b);
//   };
//
// This header contains no intrinsics itself, so it can be included from
// any TU; all vector code is generated where the target flags are active.
// Main loops process four vectors per iteration; the sub-block tail is
// delegated to the scalar kernels, which handle any length/alignment.
#pragma once

#include <cstddef>
#include <cstdint>

#include "xorops/xor_backend.h"

namespace dcode::xorops::detail {

template <typename T>
void simd_xor_into(uint8_t* dst, const uint8_t* src, size_t len) {
  constexpr size_t kV = sizeof(typename T::V);
  size_t i = 0;
  for (; i + 4 * kV <= len; i += 4 * kV) {
    for (size_t v = 0; v < 4 * kV; v += kV) {
      T::store(dst + i + v,
               T::vxor(T::load(dst + i + v), T::load(src + i + v)));
    }
  }
  for (; i + kV <= len; i += kV) {
    T::store(dst + i, T::vxor(T::load(dst + i), T::load(src + i)));
  }
  if (i < len) scalar_xor_kernels().xor_into(dst + i, src + i, len - i);
}

template <typename T>
void simd_xor_assign(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                     size_t len) {
  constexpr size_t kV = sizeof(typename T::V);
  size_t i = 0;
  for (; i + 4 * kV <= len; i += 4 * kV) {
    for (size_t v = 0; v < 4 * kV; v += kV) {
      T::store(dst + i + v, T::vxor(T::load(a + i + v), T::load(b + i + v)));
    }
  }
  for (; i + kV <= len; i += kV) {
    T::store(dst + i, T::vxor(T::load(a + i), T::load(b + i)));
  }
  if (i < len) scalar_xor_kernels().xor_assign(dst + i, a + i, b + i, len - i);
}

template <typename T>
void simd_xor2_into(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                    size_t len) {
  constexpr size_t kV = sizeof(typename T::V);
  size_t i = 0;
  for (; i + 2 * kV <= len; i += 2 * kV) {
    for (size_t v = 0; v < 2 * kV; v += kV) {
      auto acc = T::vxor(T::load(dst + i + v), T::load(a + i + v));
      T::store(dst + i + v, T::vxor(acc, T::load(b + i + v)));
    }
  }
  for (; i + kV <= len; i += kV) {
    auto acc = T::vxor(T::load(dst + i), T::load(a + i));
    T::store(dst + i, T::vxor(acc, T::load(b + i)));
  }
  if (i < len) scalar_xor_kernels().xor2_into(dst + i, a + i, b + i, len - i);
}

template <typename T>
void simd_xor3_into(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                    const uint8_t* c, size_t len) {
  constexpr size_t kV = sizeof(typename T::V);
  size_t i = 0;
  for (; i + 2 * kV <= len; i += 2 * kV) {
    for (size_t v = 0; v < 2 * kV; v += kV) {
      auto acc = T::vxor(T::load(dst + i + v), T::load(a + i + v));
      acc = T::vxor(acc, T::load(b + i + v));
      T::store(dst + i + v, T::vxor(acc, T::load(c + i + v)));
    }
  }
  for (; i + kV <= len; i += kV) {
    auto acc = T::vxor(T::load(dst + i), T::load(a + i));
    acc = T::vxor(acc, T::load(b + i));
    T::store(dst + i, T::vxor(acc, T::load(c + i)));
  }
  if (i < len) {
    scalar_xor_kernels().xor3_into(dst + i, a + i, b + i, c + i, len - i);
  }
}

template <typename T>
void simd_xor4_into(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                    const uint8_t* c, const uint8_t* d, size_t len) {
  constexpr size_t kV = sizeof(typename T::V);
  size_t i = 0;
  for (; i + 2 * kV <= len; i += 2 * kV) {
    for (size_t v = 0; v < 2 * kV; v += kV) {
      auto acc = T::vxor(T::load(dst + i + v), T::load(a + i + v));
      acc = T::vxor(acc, T::load(b + i + v));
      acc = T::vxor(acc, T::load(c + i + v));
      T::store(dst + i + v, T::vxor(acc, T::load(d + i + v)));
    }
  }
  for (; i + kV <= len; i += kV) {
    auto acc = T::vxor(T::load(dst + i), T::load(a + i));
    acc = T::vxor(acc, T::load(b + i));
    acc = T::vxor(acc, T::load(c + i));
    T::store(dst + i, T::vxor(acc, T::load(d + i)));
  }
  if (i < len) {
    scalar_xor_kernels().xor4_into(dst + i, a + i, b + i, c + i, d + i,
                                   len - i);
  }
}

template <typename T>
void simd_xor5_into(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                    const uint8_t* c, const uint8_t* d, const uint8_t* e,
                    size_t len) {
  constexpr size_t kV = sizeof(typename T::V);
  size_t i = 0;
  for (; i + 2 * kV <= len; i += 2 * kV) {
    for (size_t v = 0; v < 2 * kV; v += kV) {
      auto acc = T::vxor(T::load(dst + i + v), T::load(a + i + v));
      acc = T::vxor(acc, T::load(b + i + v));
      acc = T::vxor(acc, T::load(c + i + v));
      acc = T::vxor(acc, T::load(d + i + v));
      T::store(dst + i + v, T::vxor(acc, T::load(e + i + v)));
    }
  }
  for (; i + kV <= len; i += kV) {
    auto acc = T::vxor(T::load(dst + i), T::load(a + i));
    acc = T::vxor(acc, T::load(b + i));
    acc = T::vxor(acc, T::load(c + i));
    acc = T::vxor(acc, T::load(d + i));
    T::store(dst + i, T::vxor(acc, T::load(e + i)));
  }
  if (i < len) {
    scalar_xor_kernels().xor5_into(dst + i, a + i, b + i, c + i, d + i, e + i,
                                   len - i);
  }
}

// Fills a table from one Traits instantiation.
template <typename T>
const XorKernels& simd_kernel_table() {
  static constexpr XorKernels k = {
      simd_xor_into<T>,  simd_xor_assign<T>, simd_xor2_into<T>,
      simd_xor3_into<T>, simd_xor4_into<T>,  simd_xor5_into<T>};
  return k;
}

}  // namespace dcode::xorops::detail

// 128-bit (SSE2) XXH64 block-accumulate backend: two lanes per vector.
#include "xorops/checksum_backend.h"

#ifdef DCODE_HAVE_ISA_SSE2

#include <emmintrin.h>

namespace dcode::xorops::detail {
namespace {

constexpr long long kP1 = static_cast<long long>(0x9E3779B185EBCA87ULL);
constexpr long long kP2 = static_cast<long long>(0xC2B2AE3D27D4EB4FULL);

// SSE2 has no 64-bit mullo; build it from 32x32->64 cross products.
inline __m128i mul64(__m128i a, __m128i b) {
  const __m128i ahi = _mm_srli_epi64(a, 32);
  const __m128i bhi = _mm_srli_epi64(b, 32);
  const __m128i lo = _mm_mul_epu32(a, b);
  const __m128i mid = _mm_add_epi64(_mm_mul_epu32(a, bhi),
                                    _mm_mul_epu32(ahi, b));
  return _mm_add_epi64(lo, _mm_slli_epi64(mid, 32));
}

inline __m128i rotl31(__m128i x) {
  return _mm_or_si128(_mm_slli_epi64(x, 31), _mm_srli_epi64(x, 33));
}

void sse2_accumulate(uint64_t lanes[4], const uint8_t* p, size_t nblocks) {
  const __m128i p1 = _mm_set1_epi64x(kP1);
  const __m128i p2 = _mm_set1_epi64x(kP2);
  __m128i acc01 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(lanes));
  __m128i acc23 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(lanes + 2));
  for (size_t b = 0; b < nblocks; ++b, p += 32) {
    const __m128i w01 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m128i w23 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
    acc01 = mul64(rotl31(_mm_add_epi64(acc01, mul64(w01, p2))), p1);
    acc23 = mul64(rotl31(_mm_add_epi64(acc23, mul64(w23, p2))), p1);
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), acc01);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes + 2), acc23);
}

}  // namespace

const ChecksumKernels& sse2_checksum_kernels() {
  static constexpr ChecksumKernels k = {sse2_accumulate};
  return k;
}

}  // namespace dcode::xorops::detail

#endif  // DCODE_HAVE_ISA_SSE2

// 128-bit (SSE2) XOR backend.
#include "xorops/xor_backend.h"

#ifdef DCODE_HAVE_ISA_SSE2

#include <emmintrin.h>

#include "xorops/xor_simd_impl.h"

namespace dcode::xorops::detail {
namespace {

struct Sse2Traits {
  using V = __m128i;
  static V load(const uint8_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void store(uint8_t* p, V v) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static V vxor(V a, V b) { return _mm_xor_si128(a, b); }
};

}  // namespace

const XorKernels& sse2_xor_kernels() {
  return simd_kernel_table<Sse2Traits>();
}

}  // namespace dcode::xorops::detail

#endif  // DCODE_HAVE_ISA_SSE2

// 256-bit (AVX2) XXH64 block-accumulate backend: all four lanes in one
// vector. Also serves AVX-512 hosts (see checksum_backend.h).
#include "xorops/checksum_backend.h"

#ifdef DCODE_HAVE_ISA_AVX2

#include <immintrin.h>

namespace dcode::xorops::detail {
namespace {

constexpr long long kP1 = static_cast<long long>(0x9E3779B185EBCA87ULL);
constexpr long long kP2 = static_cast<long long>(0xC2B2AE3D27D4EB4FULL);

// AVX2 has no 64-bit mullo (that is AVX-512DQ); build it from 32x32->64
// cross products.
inline __m256i mul64(__m256i a, __m256i b) {
  const __m256i ahi = _mm256_srli_epi64(a, 32);
  const __m256i bhi = _mm256_srli_epi64(b, 32);
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i mid = _mm256_add_epi64(_mm256_mul_epu32(a, bhi),
                                       _mm256_mul_epu32(ahi, b));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(mid, 32));
}

inline __m256i rotl31(__m256i x) {
  return _mm256_or_si256(_mm256_slli_epi64(x, 31), _mm256_srli_epi64(x, 33));
}

void avx2_accumulate(uint64_t lanes[4], const uint8_t* p, size_t nblocks) {
  const __m256i p1 = _mm256_set1_epi64x(kP1);
  const __m256i p2 = _mm256_set1_epi64x(kP2);
  __m256i acc =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lanes));
  for (size_t b = 0; b < nblocks; ++b, p += 32) {
    const __m256i w =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    acc = mul64(rotl31(_mm256_add_epi64(acc, mul64(w, p2))), p1);
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
}

}  // namespace

const ChecksumKernels& avx2_checksum_kernels() {
  static constexpr ChecksumKernels k = {avx2_accumulate};
  return k;
}

}  // namespace dcode::xorops::detail

#endif  // DCODE_HAVE_ISA_AVX2

#include "xorops/checksum.h"

#include <cstring>

#include "util/check.h"
#include "xorops/checksum_backend.h"

namespace dcode::xorops {
namespace {

// XXH64 primes (Collet's reference constants).
constexpr uint64_t kP1 = 0x9E3779B185EBCA87ULL;
constexpr uint64_t kP2 = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kP3 = 0x165667B19E3779F9ULL;
constexpr uint64_t kP4 = 0x85EBCA77C2B2AE63ULL;
constexpr uint64_t kP5 = 0x27D4EB2F165667C5ULL;

inline uint64_t load64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t rotl64(uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline uint64_t round64(uint64_t acc, uint64_t input) {
  return rotl64(acc + input * kP2, 31) * kP1;
}

inline uint64_t merge_round(uint64_t h, uint64_t acc) {
  return (h ^ round64(0, acc)) * kP1 + kP4;
}

void scalar_accumulate(uint64_t lanes[4], const uint8_t* p, size_t nblocks) {
  uint64_t a0 = lanes[0], a1 = lanes[1], a2 = lanes[2], a3 = lanes[3];
  for (size_t b = 0; b < nblocks; ++b, p += 32) {
    a0 = round64(a0, load64(p));
    a1 = round64(a1, load64(p + 8));
    a2 = round64(a2, load64(p + 16));
    a3 = round64(a3, load64(p + 24));
  }
  lanes[0] = a0;
  lanes[1] = a1;
  lanes[2] = a2;
  lanes[3] = a3;
}

// The scalar driver around whichever accumulate() backend is active:
// lane setup, merge, tail, avalanche — the parts that never vectorize
// and whose single implementation keeps all backends bit-identical.
uint64_t xxh64_with(const detail::ChecksumKernels& k, const uint8_t* p,
                    size_t len, uint64_t seed) {
  const uint8_t* const end = p + len;
  uint64_t h;
  if (len >= 32) {
    uint64_t lanes[4] = {seed + kP1 + kP2, seed + kP2, seed, seed - kP1};
    const size_t nblocks = len / 32;
    k.accumulate(lanes, p, nblocks);
    p += nblocks * 32;
    h = rotl64(lanes[0], 1) + rotl64(lanes[1], 7) + rotl64(lanes[2], 12) +
        rotl64(lanes[3], 18);
    h = merge_round(h, lanes[0]);
    h = merge_round(h, lanes[1]);
    h = merge_round(h, lanes[2]);
    h = merge_round(h, lanes[3]);
  } else {
    h = seed + kP5;
  }
  h += static_cast<uint64_t>(len);
  while (p + 8 <= end) {
    h ^= round64(0, load64(p));
    h = rotl64(h, 27) * kP1 + kP4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(load32(p)) * kP1;
    h = rotl64(h, 23) * kP2 + kP3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(*p) * kP5;
    h = rotl64(h, 11) * kP1;
    ++p;
  }
  h ^= h >> 33;
  h *= kP2;
  h ^= h >> 29;
  h *= kP3;
  h ^= h >> 32;
  return h;
}

// The backend the public entry point uses, resolved on first call.
const detail::ChecksumKernels& active() {
  static const detail::ChecksumKernels& k =
      detail::checksum_kernels(active_isa());
  return k;
}

}  // namespace

namespace detail {

const ChecksumKernels& scalar_checksum_kernels() {
  static constexpr ChecksumKernels k = {scalar_accumulate};
  return k;
}

const ChecksumKernels& checksum_kernels(Isa isa) {
  DCODE_CHECK(isa_supported(isa), "requested ISA backend is not available");
  switch (isa) {
    case Isa::kScalar:
      break;
#ifdef DCODE_HAVE_ISA_SSE2
    case Isa::kSse2:
      return sse2_checksum_kernels();
#endif
#ifdef DCODE_HAVE_ISA_AVX2
    case Isa::kAvx2:
      return avx2_checksum_kernels();
#endif
#ifdef DCODE_HAVE_ISA_AVX2
    case Isa::kAvx512:
      // No dedicated AVX-512 backend: the four lanes already fill one
      // 256-bit vector, so wider registers buy nothing here.
      return avx2_checksum_kernels();
#endif
    default:
      break;
  }
  return scalar_checksum_kernels();
}

}  // namespace detail

uint64_t checksum64(const void* data, size_t len, uint64_t seed) {
  return xxh64_with(active(), static_cast<const uint8_t*>(data), len, seed);
}

uint64_t checksum64_isa(Isa isa, const void* data, size_t len, uint64_t seed) {
  return xxh64_with(detail::checksum_kernels(isa),
                    static_cast<const uint8_t*>(data), len, seed);
}

}  // namespace dcode::xorops

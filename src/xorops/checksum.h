// Fast 64-bit content checksums for the integrity sidecar.
//
// checksum64() is XXH64 (Yann Collet's xxHash, 64-bit variant),
// reimplemented here so the hot 32-byte-block accumulation loop can be
// runtime-SIMD-dispatched through the same per-ISA kernel-table scheme
// as the XOR region kernels (xorops/xor_backend.h). Only the block
// accumulation is dispatched; setup, lane merge, tail, and the final
// avalanche always run scalar, so every backend is bit-identical by
// construction — a requirement, because the values are persisted in
// FileDisk sidecar files and must verify on a machine with a different
// active ISA.
//
// The scalar path matches the published XXH64 spec exactly (pinned
// against the reference test vectors in tests/integrity_test.cc), so a
// sidecar written by this library can be audited with any stock xxhash
// tool.
#pragma once

#include <cstddef>
#include <cstdint>

#include "xorops/isa.h"

namespace dcode::xorops {

// XXH64(data, len, seed), dispatched through the active ISA.
uint64_t checksum64(const void* data, size_t len, uint64_t seed = 0);

// Same value computed with one specific backend — differential tests
// compare every supported backend against scalar bit-for-bit. Throws
// std::logic_error if the ISA is not available (like xor_kernels).
uint64_t checksum64_isa(Isa isa, const void* data, size_t len,
                        uint64_t seed = 0);

}  // namespace dcode::xorops

// Runtime ISA selection for the SIMD kernel backends.
//
// Every hot region kernel in the library (the fused XOR kernels in
// xorops/xor_region.h and GaloisField::mul_region for w=8) has one
// implementation per vector ISA. This module decides, once per process,
// which backend every dispatched call uses:
//
//   1. Compile-time: a backend exists only if the build enabled it
//      (DCODE_HAVE_ISA_* definitions, set by src/CMakeLists.txt on x86-64
//      when the compiler accepts the target flags). The scalar backend
//      always exists and is the ground truth the others are tested
//      against.
//   2. Runtime: the CPU must actually support the ISA (util/cpu.h).
//      kSse2 is the 128-bit backend; it additionally requires SSSE3
//      because the GF kernels are built on PSHUFB (universal on x86-64
//      hardware since ~2006).
//   3. Override: the DCODE_ISA environment variable
//      (scalar|sse2|avx2|avx512) caps the choice — requesting a narrower
//      backend than the hardware's best is honored exactly (how the CI
//      fallback matrix pins each leg), requesting more than the hardware
//      supports clamps down to the widest available with a warning, and
//      unknown values are ignored with a warning.
//
// Dispatch is resolved exactly once, on first use, into function-pointer
// tables — no per-call feature tests. The resolved choice is exported to
// obs::Registry::global() as gauges (`isa.active{isa=...}` = 1 and
// `isa.supported{isa=...}` per backend) so bench telemetry records which
// ISA produced each number.
#pragma once

#include <vector>

namespace dcode::xorops {

// Ordered narrow-to-wide; comparisons rely on the ordering.
enum class Isa : int { kScalar = 0, kSse2 = 1, kAvx2 = 2, kAvx512 = 3 };

// "scalar", "sse2", "avx2", "avx512".
const char* isa_name(Isa isa);

// Backend was compiled into this binary.
bool isa_compiled(Isa isa);

// Backend is compiled in AND runnable on this CPU.
bool isa_supported(Isa isa);

// Every supported backend, ascending; always starts with kScalar.
std::vector<Isa> supported_isas();

// The backend the dispatched kernels use, resolved once per process (see
// file comment for the resolution rules).
Isa active_isa();

}  // namespace dcode::xorops

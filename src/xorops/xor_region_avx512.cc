// 512-bit (AVX-512F/BW/VL) XOR backend.
#include "xorops/xor_backend.h"

#ifdef DCODE_HAVE_ISA_AVX512

#include <immintrin.h>

#include "xorops/xor_simd_impl.h"

namespace dcode::xorops::detail {
namespace {

struct Avx512Traits {
  using V = __m512i;
  static V load(const uint8_t* p) { return _mm512_loadu_si512(p); }
  static void store(uint8_t* p, V v) { _mm512_storeu_si512(p, v); }
  static V vxor(V a, V b) { return _mm512_xor_si512(a, b); }
};

}  // namespace

const XorKernels& avx512_xor_kernels() {
  return simd_kernel_table<Avx512Traits>();
}

}  // namespace dcode::xorops::detail

#endif  // DCODE_HAVE_ISA_AVX512

// Word-wide XOR region kernels.
//
// Array-code encode/decode reduces to `dst ^= src` over element-sized
// regions. These kernels process uint64_t words with a 4-way unrolled main
// loop the compiler auto-vectorizes, plus fused multi-source variants
// (xor3/xor5) that keep `dst` in registers across several sources — the
// dominant pattern when computing a parity of n-3 inputs. Buffers from
// AlignedBuffer are 64-byte aligned; the kernels also accept unaligned
// tails byte-by-byte so arbitrary element sizes work.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace dcode::xorops {

// dst[i] ^= src[i] for i in [0, len).
void xor_into(uint8_t* dst, const uint8_t* src, size_t len);

// dst[i] = a[i] ^ b[i].
void xor_assign(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t len);

// dst[i] ^= a[i] ^ b[i] (two sources, one pass over dst).
void xor2_into(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t len);

// dst[i] ^= a[i] ^ b[i] ^ c[i] ^ d[i] (four sources, one pass).
void xor4_into(uint8_t* dst, const uint8_t* a, const uint8_t* b,
               const uint8_t* c, const uint8_t* d, size_t len);

// dst[i] = XOR of all sources[i]; sources must be non-empty and all of
// length `len`. Dispatches to the fused kernels in groups.
void xor_many(uint8_t* dst, std::span<const uint8_t* const> sources,
              size_t len);

// Reference byte-at-a-time implementation used by tests to validate the
// optimized kernels.
void xor_into_naive(uint8_t* dst, const uint8_t* src, size_t len);

// True if the region is all zero (verification helper).
bool is_zero(const uint8_t* data, size_t len);

}  // namespace dcode::xorops

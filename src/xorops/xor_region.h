// Word-wide XOR region kernels with runtime-dispatched SIMD backends.
//
// Array-code encode/decode reduces to `dst ^= src` over element-sized
// regions. Every entry point below dispatches (once-resolved function
// pointers, see xorops/isa.h) to the widest vector backend the CPU and
// build support — SSE2, AVX2, or AVX-512 — with a scalar uint64_t
// implementation as the always-available fallback and ground truth. The
// fused multi-source variants (xor2/xor3/xor4/xor5) keep `dst` in
// registers across several sources — the dominant pattern when computing
// a parity of n-3 inputs; xor_many groups arbitrary source counts onto
// them. Buffers from AlignedBuffer are 64-byte aligned, but all kernels
// also accept unaligned pointers and arbitrary lengths (vector main loop
// plus word/byte tails), so arbitrary element sizes work.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace dcode::xorops {

// dst[i] ^= src[i] for i in [0, len).
void xor_into(uint8_t* dst, const uint8_t* src, size_t len);

// dst[i] = a[i] ^ b[i].
void xor_assign(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t len);

// dst[i] ^= a[i] ^ b[i] (two sources, one pass over dst).
void xor2_into(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t len);

// dst[i] ^= a[i] ^ b[i] ^ c[i] (three sources, one pass).
void xor3_into(uint8_t* dst, const uint8_t* a, const uint8_t* b,
               const uint8_t* c, size_t len);

// dst[i] ^= a[i] ^ b[i] ^ c[i] ^ d[i] (four sources, one pass).
void xor4_into(uint8_t* dst, const uint8_t* a, const uint8_t* b,
               const uint8_t* c, const uint8_t* d, size_t len);

// dst[i] ^= a[i] ^ b[i] ^ c[i] ^ d[i] ^ e[i] (five sources, one pass).
void xor5_into(uint8_t* dst, const uint8_t* a, const uint8_t* b,
               const uint8_t* c, const uint8_t* d, const uint8_t* e,
               size_t len);

// dst[i] = XOR of all sources[i]; sources must be non-empty and all of
// length `len`. Dispatches to the fused kernels in groups of five, then
// one fused call for whatever remains.
void xor_many(uint8_t* dst, std::span<const uint8_t* const> sources,
              size_t len);

// Reference byte-at-a-time implementation used by tests to validate the
// optimized kernels.
void xor_into_naive(uint8_t* dst, const uint8_t* src, size_t len);

// True if the region is all zero (verification helper).
bool is_zero(const uint8_t* data, size_t len);

}  // namespace dcode::xorops

#include "xorops/xor_region.h"

#include <cstring>

#include "util/check.h"

namespace dcode::xorops {
namespace {

// Loads/stores through memcpy keep the kernels free of alignment UB while
// still compiling to single mov/vmov instructions.
inline uint64_t load64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void store64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }

}  // namespace

void xor_into(uint8_t* dst, const uint8_t* src, size_t len) {
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    store64(dst + i, load64(dst + i) ^ load64(src + i));
    store64(dst + i + 8, load64(dst + i + 8) ^ load64(src + i + 8));
    store64(dst + i + 16, load64(dst + i + 16) ^ load64(src + i + 16));
    store64(dst + i + 24, load64(dst + i + 24) ^ load64(src + i + 24));
  }
  for (; i + 8 <= len; i += 8) {
    store64(dst + i, load64(dst + i) ^ load64(src + i));
  }
  for (; i < len; ++i) dst[i] ^= src[i];
}

void xor_assign(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    store64(dst + i, load64(a + i) ^ load64(b + i));
  }
  for (; i < len; ++i) dst[i] = a[i] ^ b[i];
}

void xor2_into(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    store64(dst + i, load64(dst + i) ^ load64(a + i) ^ load64(b + i));
  }
  for (; i < len; ++i) dst[i] ^= static_cast<uint8_t>(a[i] ^ b[i]);
}

void xor4_into(uint8_t* dst, const uint8_t* a, const uint8_t* b,
               const uint8_t* c, const uint8_t* d, size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    store64(dst + i, load64(dst + i) ^ load64(a + i) ^ load64(b + i) ^
                         load64(c + i) ^ load64(d + i));
  }
  for (; i < len; ++i)
    dst[i] ^= static_cast<uint8_t>(a[i] ^ b[i] ^ c[i] ^ d[i]);
}

void xor_many(uint8_t* dst, std::span<const uint8_t* const> sources,
              size_t len) {
  DCODE_CHECK(!sources.empty(), "xor_many needs at least one source");
  std::memcpy(dst, sources[0], len);
  size_t i = 1;
  for (; i + 4 <= sources.size(); i += 4) {
    xor4_into(dst, sources[i], sources[i + 1], sources[i + 2], sources[i + 3],
              len);
  }
  for (; i + 2 <= sources.size(); i += 2) {
    xor2_into(dst, sources[i], sources[i + 1], len);
  }
  for (; i < sources.size(); ++i) {
    xor_into(dst, sources[i], len);
  }
}

void xor_into_naive(uint8_t* dst, const uint8_t* src, size_t len) {
  for (size_t i = 0; i < len; ++i) dst[i] ^= src[i];
}

bool is_zero(const uint8_t* data, size_t len) {
  size_t i = 0;
  uint64_t acc = 0;
  for (; i + 8 <= len; i += 8) acc |= load64(data + i);
  for (; i < len; ++i) acc |= data[i];
  return acc == 0;
}

}  // namespace dcode::xorops

#include "xorops/xor_region.h"

#include <cstring>

#include "util/check.h"
#include "xorops/xor_backend.h"

namespace dcode::xorops {
namespace {

// Loads/stores through memcpy keep the kernels free of alignment UB while
// still compiling to single mov/vmov instructions.
inline uint64_t load64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void store64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }

void scalar_xor_into(uint8_t* dst, const uint8_t* src, size_t len) {
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    store64(dst + i, load64(dst + i) ^ load64(src + i));
    store64(dst + i + 8, load64(dst + i + 8) ^ load64(src + i + 8));
    store64(dst + i + 16, load64(dst + i + 16) ^ load64(src + i + 16));
    store64(dst + i + 24, load64(dst + i + 24) ^ load64(src + i + 24));
  }
  for (; i + 8 <= len; i += 8) {
    store64(dst + i, load64(dst + i) ^ load64(src + i));
  }
  for (; i < len; ++i) dst[i] ^= src[i];
}

void scalar_xor_assign(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                       size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    store64(dst + i, load64(a + i) ^ load64(b + i));
  }
  for (; i < len; ++i) dst[i] = a[i] ^ b[i];
}

void scalar_xor2_into(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                      size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    store64(dst + i, load64(dst + i) ^ load64(a + i) ^ load64(b + i));
  }
  for (; i < len; ++i) dst[i] ^= static_cast<uint8_t>(a[i] ^ b[i]);
}

void scalar_xor3_into(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                      const uint8_t* c, size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    store64(dst + i, load64(dst + i) ^ load64(a + i) ^ load64(b + i) ^
                         load64(c + i));
  }
  for (; i < len; ++i) dst[i] ^= static_cast<uint8_t>(a[i] ^ b[i] ^ c[i]);
}

void scalar_xor4_into(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                      const uint8_t* c, const uint8_t* d, size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    store64(dst + i, load64(dst + i) ^ load64(a + i) ^ load64(b + i) ^
                         load64(c + i) ^ load64(d + i));
  }
  for (; i < len; ++i)
    dst[i] ^= static_cast<uint8_t>(a[i] ^ b[i] ^ c[i] ^ d[i]);
}

void scalar_xor5_into(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                      const uint8_t* c, const uint8_t* d, const uint8_t* e,
                      size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    store64(dst + i, load64(dst + i) ^ load64(a + i) ^ load64(b + i) ^
                         load64(c + i) ^ load64(d + i) ^ load64(e + i));
  }
  for (; i < len; ++i)
    dst[i] ^= static_cast<uint8_t>(a[i] ^ b[i] ^ c[i] ^ d[i] ^ e[i]);
}

// The backend all public entry points use, resolved on first call.
const detail::XorKernels& active() {
  static const detail::XorKernels& k = detail::xor_kernels(active_isa());
  return k;
}

}  // namespace

namespace detail {

const XorKernels& scalar_xor_kernels() {
  static constexpr XorKernels k = {scalar_xor_into,  scalar_xor_assign,
                                   scalar_xor2_into, scalar_xor3_into,
                                   scalar_xor4_into, scalar_xor5_into};
  return k;
}

const XorKernels& xor_kernels(Isa isa) {
  DCODE_CHECK(isa_supported(isa), "requested ISA backend is not available");
  switch (isa) {
    case Isa::kScalar:
      break;
#ifdef DCODE_HAVE_ISA_SSE2
    case Isa::kSse2:
      return sse2_xor_kernels();
#endif
#ifdef DCODE_HAVE_ISA_AVX2
    case Isa::kAvx2:
      return avx2_xor_kernels();
#endif
#ifdef DCODE_HAVE_ISA_AVX512
    case Isa::kAvx512:
      return avx512_xor_kernels();
#endif
    default:
      break;
  }
  return scalar_xor_kernels();
}

}  // namespace detail

void xor_into(uint8_t* dst, const uint8_t* src, size_t len) {
  active().xor_into(dst, src, len);
}

void xor_assign(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t len) {
  active().xor_assign(dst, a, b, len);
}

void xor2_into(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t len) {
  active().xor2_into(dst, a, b, len);
}

void xor3_into(uint8_t* dst, const uint8_t* a, const uint8_t* b,
               const uint8_t* c, size_t len) {
  active().xor3_into(dst, a, b, c, len);
}

void xor4_into(uint8_t* dst, const uint8_t* a, const uint8_t* b,
               const uint8_t* c, const uint8_t* d, size_t len) {
  active().xor4_into(dst, a, b, c, d, len);
}

void xor5_into(uint8_t* dst, const uint8_t* a, const uint8_t* b,
               const uint8_t* c, const uint8_t* d, const uint8_t* e,
               size_t len) {
  active().xor5_into(dst, a, b, c, d, e, len);
}

void xor_many(uint8_t* dst, std::span<const uint8_t* const> sources,
              size_t len) {
  DCODE_CHECK(!sources.empty(), "xor_many needs at least one source");
  const detail::XorKernels& k = active();
  std::memcpy(dst, sources[0], len);
  size_t i = 1;
  const size_t n = sources.size();
  // Widest fused kernel first, then one call for whatever remains, so dst
  // is streamed the minimum number of times.
  for (; i + 5 <= n; i += 5) {
    k.xor5_into(dst, sources[i], sources[i + 1], sources[i + 2],
                sources[i + 3], sources[i + 4], len);
  }
  switch (n - i) {
    case 4:
      k.xor4_into(dst, sources[i], sources[i + 1], sources[i + 2],
                  sources[i + 3], len);
      break;
    case 3:
      k.xor3_into(dst, sources[i], sources[i + 1], sources[i + 2], len);
      break;
    case 2:
      k.xor2_into(dst, sources[i], sources[i + 1], len);
      break;
    case 1:
      k.xor_into(dst, sources[i], len);
      break;
    default:
      break;
  }
}

void xor_into_naive(uint8_t* dst, const uint8_t* src, size_t len) {
  for (size_t i = 0; i < len; ++i) dst[i] ^= src[i];
}

bool is_zero(const uint8_t* data, size_t len) {
  size_t i = 0;
  uint64_t acc = 0;
  for (; i + 8 <= len; i += 8) acc |= load64(data + i);
  for (; i < len; ++i) acc |= data[i];
  return acc == 0;
}

}  // namespace dcode::xorops

// Per-ISA kernel tables behind the public xorops API.
//
// Each backend translation unit (xor_region.cc for scalar,
// xor_region_{sse2,avx2,avx512}.cc for the vector ISAs) fills one
// XorKernels table with its implementations of the fused XOR kernels.
// xor_kernels(isa) hands out a table for any *supported* backend — the
// public entry points dispatch through the active_isa() table resolved
// once at startup, while tests and benches grab specific backends to
// compare them against scalar bit-for-bit.
//
// Every kernel accepts arbitrary (unaligned) pointers and arbitrary
// lengths: the vector backends run their wide main loop and delegate the
// sub-block tail to the scalar kernels, so element sizes that are not
// vector multiples keep working.
#pragma once

#include <cstddef>
#include <cstdint>

#include "xorops/isa.h"

namespace dcode::xorops::detail {

struct XorKernels {
  void (*xor_into)(uint8_t* dst, const uint8_t* src, size_t len);
  void (*xor_assign)(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                     size_t len);
  void (*xor2_into)(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                    size_t len);
  void (*xor3_into)(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                    const uint8_t* c, size_t len);
  void (*xor4_into)(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                    const uint8_t* c, const uint8_t* d, size_t len);
  void (*xor5_into)(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                    const uint8_t* c, const uint8_t* d, const uint8_t* e,
                    size_t len);
};

// Table for one backend; throws std::logic_error if the ISA is not
// supported (not compiled in, or the CPU lacks it).
const XorKernels& xor_kernels(Isa isa);

const XorKernels& scalar_xor_kernels();
#ifdef DCODE_HAVE_ISA_SSE2
const XorKernels& sse2_xor_kernels();
#endif
#ifdef DCODE_HAVE_ISA_AVX2
const XorKernels& avx2_xor_kernels();
#endif
#ifdef DCODE_HAVE_ISA_AVX512
const XorKernels& avx512_xor_kernels();
#endif

}  // namespace dcode::xorops::detail

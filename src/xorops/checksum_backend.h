// Per-ISA kernel tables behind xorops/checksum.h.
//
// XXH64 splits into a hot part — folding 32-byte input blocks into four
// independent 64-bit accumulator lanes — and a cold part (setup, lane
// merge, tail bytes, avalanche). Only the hot part lives in the table;
// each backend translation unit (checksum.cc scalar,
// checksum_{sse2,avx2}.cc vector) supplies one accumulate() and the
// shared scalar driver does everything else, which keeps the backends
// bit-identical without per-backend tail logic. AVX-512 has no dedicated
// backend: the lane rounds need 64-bit multiplies that AVX2 already
// emulates at full width for the four lanes, so the dispatcher hands
// AVX-512 hosts the AVX2 table.
#pragma once

#include <cstddef>
#include <cstdint>

#include "xorops/isa.h"

namespace dcode::xorops::detail {

struct ChecksumKernels {
  // Folds nblocks consecutive 32-byte blocks starting at p into the four
  // XXH64 accumulator lanes:  lane[i] = round(lane[i], word_i(block))
  // per block, where round(acc, w) = rotl64((acc + w * P2), 31) * P1.
  // p may be unaligned; nblocks may be zero.
  void (*accumulate)(uint64_t lanes[4], const uint8_t* p, size_t nblocks);
};

// Table for one backend; throws std::logic_error if the ISA is not
// supported (not compiled in, or the CPU lacks it).
const ChecksumKernels& checksum_kernels(Isa isa);

const ChecksumKernels& scalar_checksum_kernels();
#ifdef DCODE_HAVE_ISA_SSE2
const ChecksumKernels& sse2_checksum_kernels();
#endif
#ifdef DCODE_HAVE_ISA_AVX2
const ChecksumKernels& avx2_checksum_kernels();
#endif

}  // namespace dcode::xorops::detail

#include "obs/trace.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "obs/json_writer.h"

namespace dcode::obs {

namespace detail {
// Small dense per-thread ids (lane numbers for timeline viewers);
// std::thread::id stringifies unhelpfully.
int this_thread_trace_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}
}  // namespace detail

namespace {

using detail::this_thread_trace_id;

// The calling thread's innermost live span (0 = none).
thread_local uint64_t current_span_id = 0;

uint64_t next_span_id() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void write_attrs(JsonWriter& w, TraceAttrs attrs) {
  if (attrs.size() == 0) return;
  w.key("attrs").begin_object();
  for (const TraceAttr& a : attrs) {
    w.key(a.key);
    switch (a.kind) {
      case TraceAttr::Kind::kInt: w.value(a.i); break;
      case TraceAttr::Kind::kDouble: w.value(a.d); break;
      case TraceAttr::Kind::kString: w.value(a.s); break;
      case TraceAttr::Kind::kBool: w.value(a.b); break;
    }
  }
  w.end_object();
}

}  // namespace

TraceLog::~TraceLog() { close(); }

TraceLog& TraceLog::global() {
  static TraceLog* log = [] {
    auto* l = new TraceLog();  // leaked: outlives static teardown
    if (const char* path = std::getenv("DCODE_TRACE");
        path != nullptr && path[0] != '\0') {
      l->open(path);
    }
    return l;
  }();
  return *log;
}

// The log whose buffer the crash hooks flush; set by the first open().
// A plain pointer (not the global() accessor) so the async-signal path
// never runs a function-local-static guard.
namespace {

std::atomic<TraceLog*> g_crash_flush_target{nullptr};

// Fatal signals whose handlers flush the trace buffer before re-raising.
constexpr int kCrashSignals[] = {SIGABRT, SIGSEGV, SIGBUS, SIGILL, SIGFPE,
                                 SIGTERM, SIGINT};
struct sigaction g_old_actions[sizeof(kCrashSignals) / sizeof(int)];

void crash_signal_handler(int sig) {
  if (TraceLog* log = g_crash_flush_target.load(std::memory_order_acquire)) {
    log->panic_flush();
  }
  // Restore the previous disposition and re-raise, so the process still
  // dies (or core-dumps) exactly as it would have without us.
  for (size_t i = 0; i < sizeof(kCrashSignals) / sizeof(int); ++i) {
    if (kCrashSignals[i] == sig) {
      sigaction(sig, &g_old_actions[i], nullptr);
      break;
    }
  }
  raise(sig);
}

void atexit_flush() {
  if (TraceLog* log = g_crash_flush_target.load(std::memory_order_acquire)) {
    log->flush();
  }
}

}  // namespace

void TraceLog::install_crash_hooks() {
  static bool installed = [] {
    std::atexit(atexit_flush);
    struct sigaction sa;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sa.sa_handler = crash_signal_handler;
    for (size_t i = 0; i < sizeof(kCrashSignals) / sizeof(int); ++i) {
      sigaction(kCrashSignals[i], &sa, &g_old_actions[i]);
    }
    return true;
  }();
  (void)installed;
}

void TraceLog::open(const std::string& path) {
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    throw std::runtime_error("cannot open trace log '" + path + "'");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ >= 0) {
      flush_locked();
      ::close(fd_);
    }
    fd_ = fd;
    out_ = nullptr;
    buf_.clear();
    buf_.reserve(kFlushBytes + 4096);
    epoch_ns_ = steady_ns();
    events_written_.store(0, std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_relaxed);
  }
  g_crash_flush_target.store(this, std::memory_order_release);
  install_crash_hooks();
}

void TraceLog::attach(std::ostream* os) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    flush_locked();
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
  out_ = os;
  epoch_ns_ = steady_ns();
  events_written_.store(0, std::memory_order_relaxed);
  enabled_.store(os != nullptr, std::memory_order_relaxed);
}

void TraceLog::close() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  flush_locked();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (out_ != nullptr) out_->flush();
  out_ = nullptr;
}

void TraceLog::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  flush_locked();
}

void TraceLog::flush_locked() {
  if (fd_ >= 0 && !buf_.empty()) {
    const char* p = buf_.data();
    size_t left = buf_.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n <= 0) break;  // best effort; the sink is diagnostics, not data
      p += n;
      left -= static_cast<size_t>(n);
    }
    buf_.clear();
  }
  if (out_ != nullptr) out_->flush();
}

void TraceLog::panic_flush() noexcept {
  // Called from a signal handler: only write(2) (async-signal-safe) and a
  // try_lock. If the crashing thread holds mu_ mid-append we skip rather
  // than deadlock or read a string being resized — best effort by design.
  if (!mu_.try_lock()) return;
  if (fd_ >= 0 && !buf_.empty()) {
    ssize_t ignored = ::write(fd_, buf_.data(), buf_.size());
    (void)ignored;
    buf_.clear();
  }
  mu_.unlock();
}

int64_t TraceLog::now_ns() const { return steady_ns() - epoch_ns_; }

void TraceLog::write_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    // Buffered: per-line write(2)+flush costs more than the traced work
    // at device-event granularity. Crash durability comes from the
    // atexit/signal hooks, not from flushing every line.
    buf_ += line;
    buf_ += '\n';
    if (buf_.size() >= kFlushBytes) flush_locked();
  } else if (out_ != nullptr) {
    // Attached streams are test fixtures: flush through so the test can
    // parse the stream right after the traced call returns.
    *out_ << line << '\n';
    out_->flush();
  } else {
    return;  // closed between the enabled check and here
  }
  events_written_.fetch_add(1, std::memory_order_relaxed);
}

void TraceLog::event(std::string_view name, TraceAttrs attrs) {
  event_in_span(0, name, attrs);
}

void TraceLog::event_in_span(uint64_t span, std::string_view name,
                             TraceAttrs attrs) {
  if (!enabled()) return;
  if (span == 0) span = current_span_id;
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("ts_ns").value(now_ns());
  w.key("tid").value(this_thread_trace_id());
  w.key("type").value("event");
  if (span != 0) w.key("span").value(span);
  w.key("name").value(name);
  write_attrs(w, attrs);
  w.end_object();
  write_line(os.str());
}

void TraceLog::emit_span_begin(uint64_t id, uint64_t parent,
                               std::string_view name, TraceAttrs attrs) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("ts_ns").value(now_ns());
  w.key("tid").value(this_thread_trace_id());
  w.key("type").value("span_begin");
  w.key("id").value(id);
  if (parent != 0) w.key("parent").value(parent);
  w.key("name").value(name);
  write_attrs(w, attrs);
  w.end_object();
  write_line(os.str());
}

void TraceLog::emit_span_end(uint64_t id, std::string_view name,
                             int64_t dur_ns) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("ts_ns").value(now_ns());
  w.key("tid").value(this_thread_trace_id());
  w.key("type").value("span_end");
  w.key("id").value(id);
  w.key("name").value(name);
  w.key("dur_ns").value(dur_ns);
  w.end_object();
  write_line(os.str());
}

Span::Span(TraceLog& log, std::string_view name, TraceAttrs attrs)
    : Span(log, name, 0, attrs) {}

Span::Span(TraceLog& log, std::string_view name, uint64_t parent,
           TraceAttrs attrs) {
  if (!log.enabled()) return;
  log_ = &log;
  id_ = next_span_id();
  if (parent == 0) parent = current_span_id;
  // The explicit parent wins for the emitted tree; the thread-local
  // nesting state still restores to whatever was live on *this* thread,
  // so implicit child spans opened inside chain correctly.
  prev_current_ = current_span_id;
  current_span_id = id_;
  name_ = name;
  start_ns_ = steady_ns();
  log.emit_span_begin(id_, parent, name_, attrs);
}

Span::~Span() {
  if (id_ == 0) return;
  current_span_id = prev_current_;
  log_->emit_span_end(id_, name_, steady_ns() - start_ns_);
}

void Span::note(std::string_view name, TraceAttrs attrs) {
  if (id_ == 0) return;
  log_->event_in_span(id_, name, attrs);
}

}  // namespace dcode::obs

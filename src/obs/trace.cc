#include "obs/trace.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json_writer.h"

namespace dcode::obs {

namespace {

// Small dense per-thread ids (lane numbers for timeline viewers);
// std::thread::id stringifies unhelpfully.
int this_thread_trace_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// The calling thread's innermost live span (0 = none).
thread_local uint64_t current_span_id = 0;

uint64_t next_span_id() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void write_attrs(JsonWriter& w, TraceAttrs attrs) {
  if (attrs.size() == 0) return;
  w.key("attrs").begin_object();
  for (const TraceAttr& a : attrs) {
    w.key(a.key);
    switch (a.kind) {
      case TraceAttr::Kind::kInt: w.value(a.i); break;
      case TraceAttr::Kind::kDouble: w.value(a.d); break;
      case TraceAttr::Kind::kString: w.value(a.s); break;
      case TraceAttr::Kind::kBool: w.value(a.b); break;
    }
  }
  w.end_object();
}

}  // namespace

TraceLog::~TraceLog() { close(); }

TraceLog& TraceLog::global() {
  static TraceLog* log = [] {
    auto* l = new TraceLog();  // leaked: outlives static teardown
    if (const char* path = std::getenv("DCODE_TRACE");
        path != nullptr && path[0] != '\0') {
      l->open(path);
    }
    return l;
  }();
  return *log;
}

void TraceLog::open(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!*file) {
    throw std::runtime_error("cannot open trace log '" + path + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  owned_ = std::move(file);
  out_ = owned_.get();
  epoch_ns_ = steady_ns();
  events_written_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceLog::attach(std::ostream* os) {
  std::lock_guard<std::mutex> lock(mu_);
  owned_.reset();
  out_ = os;
  epoch_ns_ = steady_ns();
  events_written_.store(0, std::memory_order_relaxed);
  enabled_.store(os != nullptr, std::memory_order_relaxed);
}

void TraceLog::close() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  if (out_ != nullptr) out_->flush();
  owned_.reset();
  out_ = nullptr;
}

int64_t TraceLog::now_ns() const { return steady_ns() - epoch_ns_; }

void TraceLog::write_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_ == nullptr) return;  // closed between the enabled check and here
  *out_ << line << '\n';
  out_->flush();  // a trace that stops at a crash is the point
  events_written_.fetch_add(1, std::memory_order_relaxed);
}

void TraceLog::event(std::string_view name, TraceAttrs attrs) {
  if (!enabled()) return;
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("ts_ns").value(now_ns());
  w.key("tid").value(this_thread_trace_id());
  w.key("type").value("event");
  if (current_span_id != 0) w.key("span").value(current_span_id);
  w.key("name").value(name);
  write_attrs(w, attrs);
  w.end_object();
  write_line(os.str());
}

void TraceLog::emit_span_begin(uint64_t id, uint64_t parent,
                               std::string_view name, TraceAttrs attrs) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("ts_ns").value(now_ns());
  w.key("tid").value(this_thread_trace_id());
  w.key("type").value("span_begin");
  w.key("id").value(id);
  if (parent != 0) w.key("parent").value(parent);
  w.key("name").value(name);
  write_attrs(w, attrs);
  w.end_object();
  write_line(os.str());
}

void TraceLog::emit_span_end(uint64_t id, std::string_view name,
                             int64_t dur_ns) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("ts_ns").value(now_ns());
  w.key("tid").value(this_thread_trace_id());
  w.key("type").value("span_end");
  w.key("id").value(id);
  w.key("name").value(name);
  w.key("dur_ns").value(dur_ns);
  w.end_object();
  write_line(os.str());
}

Span::Span(TraceLog& log, std::string_view name, TraceAttrs attrs) {
  if (!log.enabled()) return;
  log_ = &log;
  id_ = next_span_id();
  parent_ = current_span_id;
  current_span_id = id_;
  name_ = name;
  start_ns_ = steady_ns();
  log.emit_span_begin(id_, parent_, name_, attrs);
}

Span::~Span() {
  if (id_ == 0) return;
  current_span_id = parent_;
  log_->emit_span_end(id_, name_, steady_ns() - start_ns_);
}

void Span::note(std::string_view name, TraceAttrs attrs) {
  if (id_ == 0 || !log_->enabled()) return;
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("ts_ns").value(log_->now_ns());
  w.key("tid").value(this_thread_trace_id());
  w.key("type").value("event");
  w.key("span").value(id_);
  w.key("name").value(name);
  write_attrs(w, attrs);
  w.end_object();
  log_->write_line(os.str());
}

}  // namespace dcode::obs

// Minimal streaming JSON writer shared by the observability layer: the
// metrics registry's JSON exposition, the trace log's JSON Lines events,
// and the bench binaries' --json telemetry all emit through this one
// class so escaping and number formatting cannot diverge between them.
//
// The writer tracks container nesting and inserts commas itself; callers
// pair begin_/end_ calls and alternate key()/value() inside objects. It
// does not validate structure beyond what the comma logic needs — the
// emitters are all fixed-shape, tested output.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dcode::obs {

// Escapes `s` for inclusion in a JSON string literal (quotes excluded).
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object() {
    separate();
    os_ << '{';
    stack_.push_back(true);
    return *this;
  }
  JsonWriter& end_object() {
    stack_.pop_back();
    os_ << '}';
    return *this;
  }
  JsonWriter& begin_array() {
    separate();
    os_ << '[';
    stack_.push_back(true);
    return *this;
  }
  JsonWriter& end_array() {
    stack_.pop_back();
    os_ << ']';
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    separate();
    os_ << '"' << json_escape(k) << "\":";
    after_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    separate();
    os_ << '"' << json_escape(v) << '"';
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(int64_t v) {
    separate();
    os_ << v;
    return *this;
  }
  JsonWriter& value(uint64_t v) {
    separate();
    os_ << v;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(bool v) {
    separate();
    os_ << (v ? "true" : "false");
    return *this;
  }
  // Non-finite doubles have no JSON representation; they emit as null
  // (consumers treat null as "not measurable", e.g. an infinite LF).
  JsonWriter& value(double v) {
    separate();
    if (!std::isfinite(v)) {
      os_ << "null";
      return *this;
    }
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    os_.write(buf, res.ptr - buf);
    return *this;
  }
  JsonWriter& null() {
    separate();
    os_ << "null";
    return *this;
  }

  // Embeds pre-serialized JSON verbatim — e.g. nesting a whole
  // Registry::write_json dump inside a larger document. The caller is
  // responsible for `json` being well-formed.
  JsonWriter& raw(std::string_view json) {
    separate();
    os_ << json;
    return *this;
  }

 private:
  // Emits the comma between siblings; the first element of a container
  // and the value right after a key get none.
  void separate() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (stack_.empty()) return;
    if (stack_.back()) {
      stack_.back() = false;
    } else {
      os_ << ',';
    }
  }

  std::ostream& os_;
  std::vector<bool> stack_;  // true = container still empty
  bool after_key_ = false;
};

}  // namespace dcode::obs

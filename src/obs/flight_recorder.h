// Always-on flight recorder: a fixed-size per-thread ring of recent op
// events, cheap enough (~a handful of relaxed atomic stores) to leave
// recording in production and in every test run. When something goes
// wrong — a health-monitor failure escalation, an op over the slow-op
// threshold, a chaos-campaign crash — the last few thousand events per
// thread are dumped as JSONL for post-mortem reading, without anyone
// having had the foresight to enable full tracing.
//
// Concurrency design (TSan-clean by construction):
//   - Every slot field is a relaxed std::atomic; the ring is strictly
//     single-writer (its owning thread) and the dump side is a reader.
//   - Each slot carries a seqlock-style sequence word: the writer sets
//     it odd, fills the fields, then publishes even (release). A reader
//     (dump/snapshot) accepts a slot only if it observes the same even
//     sequence before and after reading the fields — torn slots are
//     simply skipped. The dump is a diagnostic sample, not an audit log.
//   - Rings are registered in a mutex-guarded list and kept alive after
//     their thread exits, so a dump can still show what a dead worker
//     did last.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dcode::obs {

enum class FlightEventKind : uint16_t {
  kNone = 0,
  kReadBegin,        // array read op admitted       a=offset b=size
  kReadEnd,          // array read op finished       a=latency_ns
  kWriteBegin,       // array write op admitted      a=offset b=size
  kWriteEnd,         // array write op finished      a=latency_ns
  kDiskRead,         // coalesced device read run    a=dev_offset b=elements
  kDiskWrite,        // coalesced device write run   a=dev_offset b=elements
  kRetry,            // transient result retried     a=attempt b=status code
  kFailStop,         // retry budget exhausted       a=status code
  kHealthTransition, // disk health state change     a=old b=new state
  kSlowOp,           // op over slow_op_threshold_ns a=latency_ns b=threshold
  kRebuildStripe,    // stripe rebuilt onto a spare  a=stripe
  kIntegrityMismatch,// verify-on-read condemned an
                     // element                      a=element b=verdict
  kCustom,           // caller-defined               a,b free
};

const char* to_string(FlightEventKind kind);

// Decoded event, as produced by snapshot()/dump().
struct FlightEvent {
  int64_t ts_ns = 0;  // steady clock
  int tid = 0;        // dense per-thread id (same numbering as traces)
  uint64_t op_id = 0;
  FlightEventKind kind = FlightEventKind::kNone;
  int disk = -1;  // -1 = not disk-scoped
  int64_t a = 0;
  int64_t b = 0;
};

class FlightRecorder {
 public:
  // The process-wide recorder the raid layers record into. Reads the
  // DCODE_FLIGHT_DUMP environment variable on first use as the default
  // auto-dump path.
  static FlightRecorder& global();

  // events_per_thread is rounded up to a power of two.
  explicit FlightRecorder(size_t events_per_thread = 4096);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Hot path. ~few ns: one thread-local load, five relaxed stores, one
  // release store. `disk` < 0 means not disk-scoped.
  void record(FlightEventKind kind, uint64_t op_id, int disk, int64_t a,
              int64_t b) noexcept;

  // Global kill switch (one relaxed load on the hot path). On by
  // default — the recorder exists to be always-on; the switch is for
  // measuring its own overhead.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Consistent-enough copy of every thread's ring, oldest-first overall
  // (sorted by timestamp). Slots mid-write are skipped.
  std::vector<FlightEvent> snapshot() const;

  // JSONL: one header line {"type":"flight_dump","reason":R,"events":N}
  // then one line per event.
  void dump(std::ostream& os, const std::string& reason = "on_demand") const;

  // Auto-dump sink for request_dump(). Empty disables auto-dumps.
  // Dumps append, so one file collects every escalation of a run.
  void set_dump_path(std::string path);
  std::string dump_path() const;

  // Rate-limited (min_dump_interval_ns apart) dump to the configured
  // path. Called on health escalation and slow-op breach; safe to call
  // often. Returns true if a dump was written.
  bool request_dump(const std::string& reason);
  void set_min_dump_interval_ns(int64_t ns) {
    min_dump_interval_ns_.store(ns, std::memory_order_relaxed);
  }
  int64_t dumps_written() const {
    return dumps_written_.load(std::memory_order_relaxed);
  }

  size_t capacity_per_thread() const { return mask_ + 1; }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  // even = stable, odd = being written
    std::atomic<int64_t> ts_ns{0};
    std::atomic<uint64_t> op_id{0};
    std::atomic<int64_t> meta{0};  // kind (16) | disk+1 (16) | unused
    std::atomic<int64_t> a{0};
    std::atomic<int64_t> b{0};
  };

  struct Ring {
    explicit Ring(size_t slots);
    std::atomic<uint64_t> head{0};  // next logical index; owner-written
    int tid = 0;
    std::unique_ptr<Slot[]> slots;
  };

  Ring* ring_for_this_thread() noexcept;

  std::atomic<bool> enabled_{true};
  uint64_t id_ = 0;  // never-reused instance id (thread cache key)
  size_t mask_;      // slots per ring - 1 (power of two)
  mutable std::mutex rings_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;  // kept past thread exit

  mutable std::mutex dump_mu_;
  std::string dump_path_;
  std::atomic<int64_t> min_dump_interval_ns_{500'000'000};
  std::atomic<int64_t> last_dump_ns_{0};
  std::atomic<int64_t> dumps_written_{0};
};

}  // namespace dcode::obs

// Structured event tracing: a JSON Lines stream of point events and
// nested spans, so a rebuild or a journal replay can be replayed as a
// timeline (see docs/observability.md for the event schema).
//
// A TraceLog is disabled until opened; every emit site guards on one
// relaxed atomic load, so compiled-in tracing costs nothing measurable
// when off. Span nesting is tracked per thread: a Span opened while
// another Span is live on the same thread records it as its parent.
// Events carry a monotonic timestamp (nanoseconds since the log was
// opened) and a small per-thread id, which is what a timeline viewer
// needs to lay concurrent rebuild workers out in lanes.
//
// Event shapes (one JSON object per line):
//   {"ts_ns":N,"tid":T,"type":"span_begin","id":I,"parent":P,
//    "name":"rebuild","attrs":{...}}
//   {"ts_ns":N,"tid":T,"type":"span_end","id":I,"name":"rebuild",
//    "dur_ns":D}
//   {"ts_ns":N,"tid":T,"type":"event","span":I,"name":"...","attrs":{...}}
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace dcode::obs {

namespace detail {
// Small dense per-thread id used as the `tid` in trace lines and flight-
// recorder events, so both artifacts number lanes identically.
int this_thread_trace_id();
}  // namespace detail

// One key/value attribute on an event or span.
struct TraceAttr {
  enum class Kind { kInt, kDouble, kString, kBool };

  TraceAttr(std::string_view k, int64_t v)
      : key(k), kind(Kind::kInt), i(v) {}
  TraceAttr(std::string_view k, int v)
      : key(k), kind(Kind::kInt), i(v) {}
  TraceAttr(std::string_view k, uint64_t v)
      : key(k), kind(Kind::kInt), i(static_cast<int64_t>(v)) {}
  TraceAttr(std::string_view k, double v)
      : key(k), kind(Kind::kDouble), d(v) {}
  TraceAttr(std::string_view k, bool v) : key(k), kind(Kind::kBool), b(v) {}
  TraceAttr(std::string_view k, std::string_view v)
      : key(k), kind(Kind::kString), s(v) {}
  TraceAttr(std::string_view k, const char* v)
      : key(k), kind(Kind::kString), s(v) {}

  std::string key;
  Kind kind;
  int64_t i = 0;
  double d = 0;
  std::string s;
  bool b = false;
};

using TraceAttrs = std::initializer_list<TraceAttr>;

class TraceLog {
 public:
  TraceLog() = default;
  ~TraceLog();
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  // The process-wide log the library layers emit into. Honors the
  // DCODE_TRACE environment variable on first use: if set, the log opens
  // that path immediately (so any binary can be traced without code
  // changes).
  static TraceLog& global();

  // Start writing JSON Lines to `path` (truncates). Throws on failure.
  // File output is buffered (flushed every ~64KiB and at close); the
  // first open() installs atexit and fatal-signal hooks that flush the
  // buffer with raw write(2) calls, so a crashing process — a chaos
  // campaign leg, an assert — keeps the tail of its trace.
  void open(const std::string& path);
  // Start writing to a caller-owned stream (tests; every line is flushed
  // through immediately). The stream must outlive the log or the next
  // close()/attach().
  void attach(std::ostream* os);
  void close();
  // Drain the buffer to the sink. Called automatically at close/atexit.
  void flush();
  // Signal-handler flush path: try-locks and write(2)s whatever is
  // buffered. Public so the installed crash hooks can reach it; not for
  // general use.
  void panic_flush() noexcept;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Point event, attributed to the calling thread's current span (0 if
  // none). No-op when disabled.
  void event(std::string_view name, TraceAttrs attrs = {});

  // Point event attributed to an explicit span id — how pool workers tag
  // device-level events onto the dispatching op's span from another
  // thread. span 0 falls back to the calling thread's current span.
  void event_in_span(uint64_t span, std::string_view name,
                     TraceAttrs attrs = {});

  // Number of events written since open/attach (tests).
  int64_t events_written() const {
    return events_written_.load(std::memory_order_relaxed);
  }

 private:
  friend class Span;

  int64_t now_ns() const;
  void emit_span_begin(uint64_t id, uint64_t parent, std::string_view name,
                       TraceAttrs attrs);
  void emit_span_end(uint64_t id, std::string_view name, int64_t dur_ns);
  void write_line(const std::string& line);
  void flush_locked();
  static void install_crash_hooks();

  static constexpr size_t kFlushBytes = 64 * 1024;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  int fd_ = -1;              // when open(path) was used; raw fd so the
                             // crash path can flush with async-signal-safe
                             // write(2) instead of iostream machinery
  std::string buf_;          // pending lines for the fd sink
  std::ostream* out_ = nullptr;  // when attach() was used
  int64_t epoch_ns_ = 0;
  std::atomic<int64_t> events_written_{0};
};

// RAII span: emits span_begin on construction and span_end (with
// duration) on destruction. Constructing against a disabled log is free
// apart from one relaxed load.
class Span {
 public:
  Span(TraceLog& log, std::string_view name, TraceAttrs attrs = {});
  // Explicit-parent form: ties this span under `parent` (e.g. an op's
  // root span id carried in an OpContext) regardless of which thread it
  // runs on — the glue that keeps an op's causal tree connected across
  // the engine's pool fan-out. parent 0 falls back to the calling
  // thread's current span (i.e. behaves like the implicit form).
  Span(TraceLog& log, std::string_view name, uint64_t parent,
       TraceAttrs attrs = {});
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Point event inside this span. Usable from any thread (workers tag
  // their own tid); attributed to this span explicitly.
  void note(std::string_view name, TraceAttrs attrs = {});

  uint64_t id() const { return id_; }

 private:
  TraceLog* log_ = nullptr;
  uint64_t id_ = 0;  // 0 = span is disabled (log was off at creation)
  uint64_t prev_current_ = 0;  // this thread's current span on entry,
                               // restored on exit (may differ from the
                               // emitted parent in the explicit form)
  int64_t start_ns_ = 0;
  std::string name_;
};

}  // namespace dcode::obs

// Per-operation identity threaded through the layers (see
// docs/observability.md).
//
// A Raid6Array public op (read/write) mints an OpContext — a 64-bit op
// id, the op's root span id, and its enqueue/start timestamps — and
// binds it to the calling thread for the op's duration. Lower layers
// (StripeIoEngine dispatch, retries, the flight recorder) pick it up via
// current_op_context() and stamp the id on everything they emit, so the
// JSONL spans of one op form a connected causal tree and a flight-
// recorder dump can be grepped by op.
//
// Callers that model queueing (the open-loop load harness) bind their
// own context with enqueue_ns set to the op's *intended* arrival time
// before calling into the array; the array adopts an already-bound
// context instead of minting a new one, so measured spans include the
// queueing the harness wants to observe (no coordinated omission).
//
// The binding is a plain thread_local pointer: binding costs two stores,
// reading costs one load, and nothing here allocates.
#pragma once

#include <cstdint>

namespace dcode::obs {

struct OpContext {
  uint64_t op_id = 0;      // process-unique, from next_op_id()
  uint64_t span_id = 0;    // the op's root trace span (0 = tracing off)
  int64_t enqueue_ns = 0;  // intended arrival (steady clock); open-loop
                           // harnesses set this before submitting
  int64_t start_ns = 0;    // when the array actually began the op
};

// Process-unique op ids, starting at 1.
uint64_t next_op_id();

// The context bound to the calling thread, or nullptr.
OpContext* current_op_context();

// RAII binder. Restores the previous binding on destruction so nested
// ops (a rebuild triggered inside a write's failover, tests driving an
// array from inside another op) unwind correctly.
class OpContextScope {
 public:
  explicit OpContextScope(OpContext* ctx);
  ~OpContextScope();
  OpContextScope(const OpContextScope&) = delete;
  OpContextScope& operator=(const OpContextScope&) = delete;

 private:
  OpContext* prev_;
};

}  // namespace dcode::obs

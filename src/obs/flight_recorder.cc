#include "obs/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "obs/json_writer.h"
#include "obs/trace.h"

namespace dcode::obs {

namespace {

int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// kind in the low 16 bits, disk+1 in the next 16 (so disk -1 encodes as
// 0 and any non-negative disk survives the round trip).
int64_t pack_meta(FlightEventKind kind, int disk) {
  uint32_t d = disk < 0 ? 0u : static_cast<uint32_t>(disk) + 1u;
  return static_cast<int64_t>(static_cast<uint64_t>(kind) |
                              (static_cast<uint64_t>(d & 0xffffu) << 16));
}

void unpack_meta(int64_t meta, FlightEventKind* kind, int* disk) {
  auto m = static_cast<uint64_t>(meta);
  *kind = static_cast<FlightEventKind>(m & 0xffffu);
  uint32_t d = static_cast<uint32_t>((m >> 16) & 0xffffu);
  *disk = d == 0 ? -1 : static_cast<int>(d - 1);
}

// Thread-local ring cache. Keyed by a never-reused recorder id so a
// dangling cache entry from a destroyed recorder can never be mistaken
// for a live one.
struct RingCache {
  uint64_t recorder_id = 0;
  void* ring = nullptr;
};
thread_local RingCache tl_ring_cache;

std::atomic<uint64_t> g_next_recorder_id{1};

}  // namespace

const char* to_string(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kNone: return "none";
    case FlightEventKind::kReadBegin: return "read_begin";
    case FlightEventKind::kReadEnd: return "read_end";
    case FlightEventKind::kWriteBegin: return "write_begin";
    case FlightEventKind::kWriteEnd: return "write_end";
    case FlightEventKind::kDiskRead: return "disk_read";
    case FlightEventKind::kDiskWrite: return "disk_write";
    case FlightEventKind::kRetry: return "retry";
    case FlightEventKind::kFailStop: return "fail_stop";
    case FlightEventKind::kHealthTransition: return "health_transition";
    case FlightEventKind::kSlowOp: return "slow_op";
    case FlightEventKind::kRebuildStripe: return "rebuild_stripe";
    case FlightEventKind::kIntegrityMismatch: return "integrity_mismatch";
    case FlightEventKind::kCustom: return "custom";
  }
  return "?";
}

FlightRecorder::Ring::Ring(size_t slot_count)
    : slots(new Slot[slot_count]) {}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* r = [] {
    auto* rec = new FlightRecorder();  // leaked: outlives static teardown
    if (const char* path = std::getenv("DCODE_FLIGHT_DUMP");
        path != nullptr && path[0] != '\0') {
      rec->set_dump_path(path);
    }
    return rec;
  }();
  return *r;
}

FlightRecorder::FlightRecorder(size_t events_per_thread) {
  size_t cap = 1;
  while (cap < events_per_thread) cap <<= 1;
  mask_ = cap - 1;
  id_ = g_next_recorder_id.fetch_add(1, std::memory_order_relaxed);
}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder::Ring* FlightRecorder::ring_for_this_thread() noexcept {
  if (tl_ring_cache.recorder_id == id_) {
    return static_cast<Ring*>(tl_ring_cache.ring);
  }
  int tid = detail::this_thread_trace_id();
  Ring* ring = nullptr;
  try {
    std::lock_guard<std::mutex> lock(rings_mu_);
    // A thread that bounced between recorders (tests) finds its old ring
    // again instead of growing the list.
    for (const auto& r : rings_) {
      if (r->tid == tid) {
        ring = r.get();
        break;
      }
    }
    if (ring == nullptr) {
      rings_.push_back(std::make_unique<Ring>(mask_ + 1));
      ring = rings_.back().get();
      ring->tid = tid;
    }
  } catch (...) {
    return nullptr;  // allocation failure: drop the event, never throw
  }
  tl_ring_cache = {id_, ring};
  return ring;
}

void FlightRecorder::record(FlightEventKind kind, uint64_t op_id, int disk,
                            int64_t a, int64_t b) noexcept {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Ring* r = ring_for_this_thread();
  if (r == nullptr) return;
  uint64_t i = r->head.load(std::memory_order_relaxed);
  Slot& s = r->slots[i & mask_];
  s.seq.store(2 * i + 1, std::memory_order_relaxed);  // odd: being written
  s.ts_ns.store(steady_ns(), std::memory_order_relaxed);
  s.op_id.store(op_id, std::memory_order_relaxed);
  s.meta.store(pack_meta(kind, disk), std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.seq.store(2 * i + 2, std::memory_order_release);  // even: stable
  r->head.store(i + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (const auto& r : rings_) {
    for (size_t j = 0; j <= mask_; ++j) {
      const Slot& s = r->slots[j];
      uint64_t s1 = s.seq.load(std::memory_order_acquire);
      if (s1 == 0 || (s1 & 1) != 0) continue;  // empty or mid-write
      FlightEvent e;
      e.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
      e.tid = r->tid;
      e.op_id = s.op_id.load(std::memory_order_relaxed);
      unpack_meta(s.meta.load(std::memory_order_relaxed), &e.kind, &e.disk);
      e.a = s.a.load(std::memory_order_relaxed);
      e.b = s.b.load(std::memory_order_relaxed);
      uint64_t s2 = s.seq.load(std::memory_order_acquire);
      if (s1 != s2) continue;  // overwritten underneath us: skip
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.ts_ns < y.ts_ns;
            });
  return out;
}

void FlightRecorder::dump(std::ostream& os, const std::string& reason) const {
  std::vector<FlightEvent> events = snapshot();
  {
    JsonWriter w(os);
    w.begin_object();
    w.key("type").value("flight_dump");
    w.key("reason").value(reason);
    w.key("ts_ns").value(steady_ns());
    w.key("events").value(static_cast<int64_t>(events.size()));
    w.end_object();
  }
  os << '\n';
  for (const FlightEvent& e : events) {
    JsonWriter w(os);
    w.begin_object();
    w.key("ts_ns").value(e.ts_ns);
    w.key("tid").value(e.tid);
    if (e.op_id != 0) w.key("op").value(e.op_id);
    w.key("kind").value(to_string(e.kind));
    if (e.disk >= 0) w.key("disk").value(e.disk);
    w.key("a").value(e.a);
    w.key("b").value(e.b);
    w.end_object();
    os << '\n';
  }
  os.flush();
}

void FlightRecorder::set_dump_path(std::string path) {
  std::lock_guard<std::mutex> lock(dump_mu_);
  dump_path_ = std::move(path);
}

std::string FlightRecorder::dump_path() const {
  std::lock_guard<std::mutex> lock(dump_mu_);
  return dump_path_;
}

bool FlightRecorder::request_dump(const std::string& reason) {
  int64_t now = steady_ns();
  int64_t last = last_dump_ns_.load(std::memory_order_relaxed);
  if (last != 0 &&
      now - last < min_dump_interval_ns_.load(std::memory_order_relaxed)) {
    return false;
  }
  if (!last_dump_ns_.compare_exchange_strong(last, now,
                                             std::memory_order_relaxed)) {
    return false;  // another thread is dumping right now
  }
  std::lock_guard<std::mutex> lock(dump_mu_);
  if (dump_path_.empty()) return false;
  std::ofstream os(dump_path_, std::ios::app);
  if (!os) return false;
  dump(os, reason);
  dumps_written_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace dcode::obs

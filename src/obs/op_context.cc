#include "obs/op_context.h"

#include <atomic>

namespace dcode::obs {

namespace {
thread_local OpContext* tl_current_op = nullptr;
}  // namespace

uint64_t next_op_id() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

OpContext* current_op_context() { return tl_current_op; }

OpContextScope::OpContextScope(OpContext* ctx) : prev_(tl_current_op) {
  tl_current_op = ctx;
}

OpContextScope::~OpContextScope() { tl_current_op = prev_; }

}  // namespace dcode::obs

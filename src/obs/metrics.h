// Low-overhead metrics for the runtime layers (see docs/observability.md).
//
// The D-Code paper's whole argument is about where I/O lands, so the
// runtime must be able to answer "how many ops / bytes / element accesses
// happened, and how long did they take" without perturbing the result.
// Design constraints, in order:
//
//   1. Hot-path cost: one relaxed atomic add on a cache-line-padded,
//      per-thread shard. Threads hash to shards by a thread-local id, so
//      concurrent writers on different cores never bounce a line between
//      them. Reads (value(), snapshot()) sum the shards — reading is the
//      rare operation and pays the aggregation.
//   2. TSan-clean: everything is std::atomic; snapshots taken while
//      writers are mid-increment are torn only across *different*
//      metrics, never within one shard cell.
//   3. No dependencies above the standard library, so every layer
//      (util's ThreadPool included) can link against it.
//
// Counter    — monotonic int64 (ops, bytes, element accesses).
// Gauge      — settable int64 with add/sub and a CAS update_max, for
//              levels and high-water marks.
// Histogram  — fixed upper-bound buckets (inclusive, ascending) plus an
//              overflow bucket, a running sum, and an exact maximum;
//              latencies and sizes. percentile(q) interpolates within
//              the owning bucket, so a fine (log-linear) ladder reads
//              out p50/p99/p999 with sub-bucket resolution.
// Registry   — names -> metrics, with optional key=value labels; hands
//              out stable references and serializes the whole set as a
//              text table, JSON, or Prometheus exposition format.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dcode::obs {

// Label set attached to a metric, e.g. {{"disk", "3"}}. Order is
// preserved and significant for identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {
// Shard count is a power of two fixed at process start (>= hardware
// concurrency, capped so per-metric memory stays bounded).
int shard_count();
// Stable shard index for the calling thread, in [0, shard_count()).
int this_thread_shard();

struct alignas(64) ShardCell {
  std::atomic<int64_t> v{0};
};
}  // namespace detail

class Counter {
 public:
  Counter();
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(int64_t n = 1) {
    shards_[static_cast<size_t>(detail::this_thread_shard())].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  int64_t value() const;
  // Zeroes every shard. Not atomic with respect to concurrent inc();
  // meant for test setup and bench warmup boundaries.
  void reset();

 private:
  std::unique_ptr<detail::ShardCell[]> shards_;
};

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(int64_t n) { v_.fetch_sub(n, std::memory_order_relaxed); }
  // Monotonic high-water update: max(current, v).
  void update_max(int64_t v) {
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

class Histogram {
 public:
  // `bounds` are ascending inclusive upper bounds; observations above the
  // last bound land in an implicit overflow bucket.
  explicit Histogram(std::vector<int64_t> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(int64_t v) {
    size_t b = bucket_for(v);
    auto* row = cells_.get() +
                static_cast<size_t>(detail::this_thread_shard()) * stride_;
    row[b].fetch_add(1, std::memory_order_relaxed);
    row[sum_slot_].fetch_add(v, std::memory_order_relaxed);
    auto& mx = row[max_slot_];
    int64_t cur = mx.load(std::memory_order_relaxed);
    while (cur < v &&
           !mx.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  const std::vector<int64_t>& bounds() const { return bounds_; }
  // Per-bucket counts; size bounds().size() + 1, last is overflow.
  std::vector<int64_t> bucket_counts() const;
  int64_t count() const;
  int64_t sum() const;
  // Largest observed value (exact, not bucket-rounded); 0 when empty.
  // Observations are assumed non-negative (latencies, sizes).
  int64_t max_value() const;
  // Quantile estimate with linear interpolation inside the owning bucket;
  // q in [0,1]. The overflow bucket interpolates toward max_value(), so
  // p999/max stay meaningful even past the last bound. 0 when empty.
  double percentile(double q) const;
  void reset();

 private:
  size_t bucket_for(int64_t v) const {
    // Coarse ladders are short (tens): a branch-predictable linear scan
    // beats binary search for the typical low buckets. Fine log-linear
    // ladders (hundreds) go through the search.
    if (bounds_.size() > 32) {
      return static_cast<size_t>(
          std::lower_bound(bounds_.begin(), bounds_.end(), v) -
          bounds_.begin());
    }
    for (size_t i = 0; i < bounds_.size(); ++i) {
      if (v <= bounds_[i]) return i;
    }
    return bounds_.size();
  }

  std::vector<int64_t> bounds_;
  size_t sum_slot_;  // index of the sum cell within a shard row
  size_t max_slot_;  // index of the max cell within a shard row
  size_t stride_;    // cells per shard row, cache-line multiple
  std::unique_ptr<std::atomic<int64_t>[]> cells_;
};

// Convenience bucket ladders.
std::vector<int64_t> exponential_bounds(int64_t start, double factor,
                                        int count);
// Log-linear ladder: `sub` equal-width buckets per power-of-two octave
// from `min` (inclusive) up past `max`. Relative quantile error is
// bounded by ~1/sub anywhere in the range — the resolution the coarse
// x4 ladder lacks at the tail.
std::vector<int64_t> log_linear_bounds(int64_t min, int64_t max, int sub);
// 1us .. ~17s in x4 steps — the default latency ladder (nanoseconds).
const std::vector<int64_t>& latency_bounds_ns();
// 1us .. ~4.3s, 8 sub-buckets per octave (~180 buckets) — the fine
// latency ladder behind p50/p90/p99/p999 extraction (nanoseconds).
const std::vector<int64_t>& latency_fine_bounds_ns();
// 512B .. 16MiB in x4 steps — the default size ladder (bytes).
const std::vector<int64_t>& size_bounds_bytes();

// Quantile from a (bounds, bucket_counts) pair as found in a
// MetricSnapshot; linear interpolation within the owning bucket. The
// overflow bucket (counts.size() == bounds.size() + 1) interpolates
// between the last bound and `max_value` when a positive one is given.
double percentile_from_buckets(const std::vector<int64_t>& bounds,
                               const std::vector<int64_t>& counts, double q,
                               int64_t max_value = 0);

// A point-in-time copy of one metric, produced by Registry::snapshot().
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  Labels labels;
  std::string help;
  int64_t value = 0;  // counter / gauge
  // Histogram only:
  std::vector<int64_t> bounds;
  std::vector<int64_t> bucket_counts;  // bounds.size() + 1 (overflow last)
  int64_t count = 0;
  int64_t sum = 0;
  int64_t max = 0;  // exact largest observation

  // Histogram quantile via percentile_from_buckets; 0 for other kinds.
  double percentile(double q) const;
};

struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // The process-wide default registry the library layers register into.
  static Registry& global();

  // Namespaced view: a child Registry whose registrations land in this
  // registry (the root) with `prefix` prepended to every metric name, so
  // a layer can hand each sub-component its own registry without string
  // concatenation at call sites — e.g. a pool hands shard 3 the view
  // `root.namespaced("shard3.")` and the shard's `raid.reads` shows up
  // as `shard3.raid.reads` in the root.
  //
  // Semantics:
  //   - counter/gauge/histogram delegate to the root under the prefixed
  //     name; the same (prefixed name, labels) from root or child yields
  //     the same metric object.
  //   - snapshot()/write_*/size()/reset() on a child see only metrics in
  //     its namespace (names keep the full prefix in expositions).
  //   - add_collector/remove_collector delegate to the root: collectors
  //     run on any snapshot, root or child.
  //   - namespaced() nests: child.namespaced("x.") prefixes "<child>x.".
  //   - The returned reference is owned by the root and lives as long as
  //     the root; calling with the same prefix returns the same child.
  Registry& namespaced(const std::string& prefix);

  // Full name prefix of this view ("" for a root registry).
  const std::string& prefix() const { return prefix_; }

  // Get-or-create. Re-registering the same (name, labels) returns the
  // same object; re-registering under a different kind (or different
  // histogram bounds) throws.
  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<int64_t> bounds,
                       const Labels& labels = {},
                       const std::string& help = "");

  // Collectors run at the start of every snapshot()/exposition call, so
  // pull-style sources (e.g. per-disk cumulative counters held by a
  // Raid6Array) can refresh gauges just-in-time. Collectors must only
  // touch metric handles they already hold — registering new metrics
  // from inside a collector deadlocks.
  using CollectorId = uint64_t;
  CollectorId add_collector(std::function<void()> fn);
  void remove_collector(CollectorId id);

  RegistrySnapshot snapshot() const;

  // Exposition formats: aligned text table (humans), JSON (tooling, the
  // bench telemetry's runtime_metrics section), and Prometheus text
  // format (scrapers; dots in names become underscores).
  void write_text(std::ostream& os) const;
  void write_json(std::ostream& os) const;
  void write_prometheus(std::ostream& os) const;

  // Zeroes every metric (shards and gauges). Same caveat as
  // Counter::reset(); for tests and bench phase boundaries.
  void reset();

  size_t size() const;

 private:
  struct Entry {
    MetricSnapshot::Kind kind;
    std::string name;
    Labels labels;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  // Child-view constructor used by namespaced().
  Registry(Registry* root, std::string prefix);

  Entry& find_or_create(MetricSnapshot::Kind kind, const std::string& name,
                        const Labels& labels, const std::string& help);
  static std::string key_of(const std::string& name, const Labels& labels);
  bool in_namespace(const std::string& name) const;

  // Null for a root registry; the owning root for a namespaced view.
  Registry* root_ = nullptr;
  std::string prefix_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // stable addresses
  std::map<std::string, Entry*> index_;
  std::map<CollectorId, std::function<void()>> collectors_;
  CollectorId next_collector_id_ = 1;
  // Child views keyed by full prefix, owned by the root (guarded by mu_).
  std::map<std::string, std::unique_ptr<Registry>> children_;
};

}  // namespace dcode::obs

#include "obs/metrics.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "obs/json_writer.h"

namespace dcode::obs {

namespace detail {

namespace {
int compute_shard_count() {
  unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  int n = 1;
  while (n < static_cast<int>(hw) && n < 64) n <<= 1;
  return n;
}
}  // namespace

int shard_count() {
  static const int n = compute_shard_count();
  return n;
}

int this_thread_shard() {
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) & (shard_count() - 1);
  return shard;
}

}  // namespace detail

// --- Counter ---------------------------------------------------------------

Counter::Counter()
    : shards_(new detail::ShardCell[static_cast<size_t>(
          detail::shard_count())]) {}

int64_t Counter::value() const {
  int64_t total = 0;
  for (int i = 0; i < detail::shard_count(); ++i) {
    total += shards_[static_cast<size_t>(i)].v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (int i = 0; i < detail::shard_count(); ++i) {
    shards_[static_cast<size_t>(i)].v.store(0, std::memory_order_relaxed);
  }
}

// --- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<int64_t> bounds) : bounds_(std::move(bounds)) {
  for (size_t i = 0; i + 1 < bounds_.size(); ++i) {
    if (bounds_[i] >= bounds_[i + 1]) {
      throw std::invalid_argument(
          "histogram bounds must be strictly ascending");
    }
  }
  // Shard row: one cell per bucket, one overflow, one sum, one max —
  // rounded up to a cache line (8 int64s) so rows never share a line.
  sum_slot_ = bounds_.size() + 1;
  max_slot_ = sum_slot_ + 1;
  stride_ = ((max_slot_ + 1) + 7) & ~size_t{7};
  size_t cells = stride_ * static_cast<size_t>(detail::shard_count());
  cells_.reset(new std::atomic<int64_t>[cells]);
  for (size_t i = 0; i < cells; ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<int64_t> Histogram::bucket_counts() const {
  std::vector<int64_t> out(bounds_.size() + 1, 0);
  for (int s = 0; s < detail::shard_count(); ++s) {
    const auto* row = cells_.get() + static_cast<size_t>(s) * stride_;
    for (size_t b = 0; b < out.size(); ++b) {
      out[b] += row[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

int64_t Histogram::count() const {
  int64_t total = 0;
  for (int64_t c : bucket_counts()) total += c;
  return total;
}

int64_t Histogram::sum() const {
  int64_t total = 0;
  for (int s = 0; s < detail::shard_count(); ++s) {
    total += cells_[static_cast<size_t>(s) * stride_ + sum_slot_].load(
        std::memory_order_relaxed);
  }
  return total;
}

int64_t Histogram::max_value() const {
  int64_t mx = 0;
  for (int s = 0; s < detail::shard_count(); ++s) {
    mx = std::max(mx, cells_[static_cast<size_t>(s) * stride_ + max_slot_]
                          .load(std::memory_order_relaxed));
  }
  return mx;
}

double Histogram::percentile(double q) const {
  return percentile_from_buckets(bounds_, bucket_counts(), q, max_value());
}

void Histogram::reset() {
  size_t cells = stride_ * static_cast<size_t>(detail::shard_count());
  for (size_t i = 0; i < cells; ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<int64_t> exponential_bounds(int64_t start, double factor,
                                        int count) {
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(count));
  double v = static_cast<double>(start);
  int64_t prev = 0;
  for (int i = 0; i < count; ++i) {
    int64_t b = static_cast<int64_t>(v);
    if (b <= prev) b = prev + 1;  // keep strictly ascending after rounding
    out.push_back(b);
    prev = b;
    v *= factor;
  }
  return out;
}

std::vector<int64_t> log_linear_bounds(int64_t min, int64_t max, int sub) {
  std::vector<int64_t> out;
  // Each octave [base, 2*base) is split into `sub` equal-width buckets;
  // bounds are the buckets' inclusive upper edges. Widths double per
  // octave, so relative resolution is constant (~1/sub) across the range.
  for (int64_t base = min; base <= max; base *= 2) {
    int64_t width = base / sub;
    if (width < 1) width = 1;
    for (int i = 1; i <= sub; ++i) {
      int64_t b = base + i * width;
      if (i == sub) b = base * 2;  // close the octave exactly
      if (out.empty() || b > out.back()) out.push_back(b);
    }
  }
  return out;
}

const std::vector<int64_t>& latency_bounds_ns() {
  static const std::vector<int64_t> bounds =
      exponential_bounds(1'000, 4.0, 13);  // 1us .. ~17s
  return bounds;
}

const std::vector<int64_t>& latency_fine_bounds_ns() {
  static const std::vector<int64_t> bounds =
      log_linear_bounds(1'024, int64_t{1} << 32, 8);  // ~1us .. ~4.3s
  return bounds;
}

double percentile_from_buckets(const std::vector<int64_t>& bounds,
                               const std::vector<int64_t>& counts, double q,
                               int64_t max_value) {
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank target with interpolation: the q-quantile sits `target`
  // observations into the cumulative distribution.
  double target = q * static_cast<double>(total);
  int64_t cum = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    double before = static_cast<double>(cum);
    cum += counts[b];
    if (static_cast<double>(cum) < target) continue;
    double lo = b == 0 ? 0.0 : static_cast<double>(bounds[b - 1]);
    double hi;
    if (b < bounds.size()) {
      hi = static_cast<double>(bounds[b]);
    } else {
      // Overflow bucket: stretch toward the exact max when known,
      // otherwise pin to the last bound (the best the ladder can say).
      hi = max_value > 0 ? static_cast<double>(max_value) : lo;
    }
    double frac = counts[b] > 0
                      ? (target - before) / static_cast<double>(counts[b])
                      : 1.0;
    if (frac < 0.0) frac = 0.0;
    if (frac > 1.0) frac = 1.0;
    double v = lo + frac * (hi - lo);
    // An exact max bounds every quantile from above.
    if (max_value > 0 && v > static_cast<double>(max_value)) {
      v = static_cast<double>(max_value);
    }
    return v;
  }
  return max_value > 0 ? static_cast<double>(max_value) : 0.0;
}

double MetricSnapshot::percentile(double q) const {
  if (kind != Kind::kHistogram) return 0.0;
  return percentile_from_buckets(bounds, bucket_counts, q, max);
}

const std::vector<int64_t>& size_bounds_bytes() {
  static const std::vector<int64_t> bounds =
      exponential_bounds(512, 4.0, 9);  // 512B .. 16MiB
  return bounds;
}

// --- Registry --------------------------------------------------------------

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: outlives static teardown
  return *r;
}

Registry::Registry(Registry* root, std::string prefix)
    : root_(root), prefix_(std::move(prefix)) {}

Registry& Registry::namespaced(const std::string& prefix) {
  // All views hang off the root so nesting composes by concatenation and
  // ownership stays in one place.
  Registry& root = root_ ? *root_ : *this;
  std::string full = prefix_ + prefix;
  std::lock_guard<std::mutex> lock(root.mu_);
  auto it = root.children_.find(full);
  if (it == root.children_.end()) {
    it = root.children_
             .emplace(full, std::unique_ptr<Registry>(
                                new Registry(&root, full)))
             .first;
  }
  return *it->second;
}

bool Registry::in_namespace(const std::string& name) const {
  return name.size() >= prefix_.size() &&
         name.compare(0, prefix_.size(), prefix_) == 0;
}

std::string Registry::key_of(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\0';
    key += k;
    key += '\0';
    key += v;
  }
  return key;
}

Registry::Entry& Registry::find_or_create(MetricSnapshot::Kind kind,
                                          const std::string& name,
                                          const Labels& labels,
                                          const std::string& help) {
  std::string key = key_of(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    if (it->second->kind != kind) {
      throw std::logic_error("metric '" + name +
                             "' re-registered with a different kind");
    }
    return *it->second;
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->name = name;
  entry->labels = labels;
  entry->help = help;
  Entry& ref = *entry;
  entries_.push_back(std::move(entry));
  index_.emplace(std::move(key), &ref);
  return ref;
}

Counter& Registry::counter(const std::string& name, const Labels& labels,
                           const std::string& help) {
  if (root_) return root_->counter(prefix_ + name, labels, help);
  Entry& e = find_or_create(MetricSnapshot::Kind::kCounter, name, labels,
                            help);
  if (!e.counter) e.counter = std::unique_ptr<Counter>(new Counter());
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels,
                       const std::string& help) {
  if (root_) return root_->gauge(prefix_ + name, labels, help);
  Entry& e = find_or_create(MetricSnapshot::Kind::kGauge, name, labels, help);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<int64_t> bounds,
                               const Labels& labels, const std::string& help) {
  if (root_) {
    return root_->histogram(prefix_ + name, std::move(bounds), labels, help);
  }
  Entry& e = find_or_create(MetricSnapshot::Kind::kHistogram, name, labels,
                            help);
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
  } else if (e.histogram->bounds() != bounds) {
    throw std::logic_error("histogram '" + name +
                           "' re-registered with different bounds");
  }
  return *e.histogram;
}

Registry::CollectorId Registry::add_collector(std::function<void()> fn) {
  if (root_) return root_->add_collector(std::move(fn));
  std::lock_guard<std::mutex> lock(mu_);
  CollectorId id = next_collector_id_++;
  collectors_.emplace(id, std::move(fn));
  return id;
}

void Registry::remove_collector(CollectorId id) {
  if (root_) {
    root_->remove_collector(id);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.erase(id);
}

size_t Registry::size() const {
  if (root_) {
    std::lock_guard<std::mutex> lock(root_->mu_);
    size_t n = 0;
    for (const auto& e : root_->entries_) {
      if (in_namespace(e->name)) ++n;
    }
    return n;
  }
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

RegistrySnapshot Registry::snapshot() const {
  if (root_) {
    // Runs every root collector (shared state refreshes regardless of
    // which view is snapshotted), then keeps only this namespace.
    RegistrySnapshot all = root_->snapshot();
    RegistrySnapshot snap;
    for (auto& m : all.metrics) {
      if (in_namespace(m.name)) snap.metrics.push_back(std::move(m));
    }
    return snap;
  }
  // Run collectors outside the lock: they update gauges (atomic) and may
  // not touch registration, so this only races benignly with writers.
  std::vector<std::function<void()>> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    collectors.reserve(collectors_.size());
    for (const auto& [id, fn] : collectors_) collectors.push_back(fn);
  }
  for (const auto& fn : collectors) fn();

  RegistrySnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.metrics.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricSnapshot m;
    m.kind = e->kind;
    m.name = e->name;
    m.labels = e->labels;
    m.help = e->help;
    switch (e->kind) {
      case MetricSnapshot::Kind::kCounter:
        m.value = e->counter->value();
        break;
      case MetricSnapshot::Kind::kGauge:
        m.value = e->gauge->value();
        break;
      case MetricSnapshot::Kind::kHistogram:
        m.bounds = e->histogram->bounds();
        m.bucket_counts = e->histogram->bucket_counts();
        m.sum = e->histogram->sum();
        m.max = e->histogram->max_value();
        m.count = 0;
        for (int64_t c : m.bucket_counts) m.count += c;
        break;
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

void Registry::reset() {
  Registry& root = root_ ? *root_ : *this;
  std::lock_guard<std::mutex> lock(root.mu_);
  for (const auto& e : root.entries_) {
    if (root_ && !in_namespace(e->name)) continue;
    switch (e->kind) {
      case MetricSnapshot::Kind::kCounter: e->counter->reset(); break;
      case MetricSnapshot::Kind::kGauge: e->gauge->reset(); break;
      case MetricSnapshot::Kind::kHistogram: e->histogram->reset(); break;
    }
  }
}

namespace {

std::string label_suffix(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ',';
    out += labels[i].first;
    out += '=';
    out += labels[i].second;
  }
  out += '}';
  return out;
}

const char* kind_name(MetricSnapshot::Kind k) {
  switch (k) {
    case MetricSnapshot::Kind::kCounter: return "counter";
    case MetricSnapshot::Kind::kGauge: return "gauge";
    case MetricSnapshot::Kind::kHistogram: return "histogram";
  }
  return "?";
}

// Prometheus metric names allow [a-zA-Z0-9_:]; dots map to underscores.
std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

void Registry::write_text(std::ostream& os) const {
  RegistrySnapshot snap = snapshot();
  size_t name_w = 4;
  for (const auto& m : snap.metrics) {
    name_w = std::max(name_w, m.name.size() + label_suffix(m.labels).size());
  }
  for (const auto& m : snap.metrics) {
    std::string display = m.name + label_suffix(m.labels);
    os << display << std::string(name_w - display.size() + 2, ' ');
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
      case MetricSnapshot::Kind::kGauge:
        os << m.value;
        break;
      case MetricSnapshot::Kind::kHistogram: {
        os << "count=" << m.count << " sum=" << m.sum;
        if (m.count > 0) {
          os << " buckets[";
          bool first = true;
          for (size_t b = 0; b < m.bucket_counts.size(); ++b) {
            if (m.bucket_counts[b] == 0) continue;
            if (!first) os << ' ';
            first = false;
            if (b < m.bounds.size()) {
              os << "le" << m.bounds[b];
            } else {
              os << "inf";
            }
            os << ':' << m.bucket_counts[b];
          }
          os << ']';
        }
        break;
      }
    }
    os << '\n';
  }
}

void Registry::write_json(std::ostream& os) const {
  RegistrySnapshot snap = snapshot();
  JsonWriter w(os);
  w.begin_object();
  w.key("metrics").begin_array();
  for (const auto& m : snap.metrics) {
    w.begin_object();
    w.key("name").value(m.name);
    w.key("type").value(kind_name(m.kind));
    if (!m.labels.empty()) {
      w.key("labels").begin_object();
      for (const auto& [k, v] : m.labels) w.key(k).value(v);
      w.end_object();
    }
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
      case MetricSnapshot::Kind::kGauge:
        w.key("value").value(m.value);
        break;
      case MetricSnapshot::Kind::kHistogram:
        w.key("count").value(m.count);
        w.key("sum").value(m.sum);
        w.key("max").value(m.max);
        w.key("buckets").begin_array();
        for (size_t b = 0; b < m.bucket_counts.size(); ++b) {
          w.begin_object();
          if (b < m.bounds.size()) {
            w.key("le").value(m.bounds[b]);
          } else {
            w.key("le").value("inf");
          }
          w.key("count").value(m.bucket_counts[b]);
          w.end_object();
        }
        w.end_array();
        break;
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void Registry::write_prometheus(std::ostream& os) const {
  RegistrySnapshot snap = snapshot();
  auto labels_block = [](const Labels& labels) {
    if (labels.empty()) return std::string();
    std::string out = "{";
    for (size_t i = 0; i < labels.size(); ++i) {
      if (i) out += ',';
      out += prom_name(labels[i].first);
      out += "=\"";
      out += json_escape(labels[i].second);
      out += '"';
    }
    out += '}';
    return out;
  };
  for (const auto& m : snap.metrics) {
    std::string name = prom_name(m.name);
    if (!m.help.empty()) {
      os << "# HELP " << name << ' ' << m.help << '\n';
    }
    os << "# TYPE " << name << ' ' << kind_name(m.kind) << '\n';
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
      case MetricSnapshot::Kind::kGauge:
        os << name << labels_block(m.labels) << ' ' << m.value << '\n';
        break;
      case MetricSnapshot::Kind::kHistogram: {
        // Cumulative le-buckets, Prometheus histogram convention.
        int64_t cum = 0;
        for (size_t b = 0; b < m.bucket_counts.size(); ++b) {
          cum += m.bucket_counts[b];
          Labels bl = m.labels;
          bl.emplace_back("le", b < m.bounds.size()
                                    ? std::to_string(m.bounds[b])
                                    : std::string("+Inf"));
          os << name << "_bucket" << labels_block(bl) << ' ' << cum << '\n';
        }
        os << name << "_sum" << labels_block(m.labels) << ' ' << m.sum
           << '\n';
        os << name << "_count" << labels_block(m.labels) << ' ' << m.count
           << '\n';
        break;
      }
    }
  }
}

}  // namespace dcode::obs

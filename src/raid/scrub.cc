// Parity scrub: verify every XOR equation of every stripe, tolerate
// degraded arrays, and (in repair mode) localize and rewrite
// single-element silent corruption.
//
// Localization uses both parity families as coordinates. A single
// corrupted element with XOR delta D leaves exactly the equations that
// contain it unsatisfied, each with syndrome D. The membership sets are
// distinct per element (a row and a diagonal intersect in one cell;
// parities own their equation), so "unsatisfied set == membership set,
// all syndromes equal" pins the corruption to one element and D is the
// repair patch. Anything else — multiple corruptions, mismatched
// syndromes, a degraded stripe where equations had to be skipped — is
// reported unrepairable rather than guessed at.
//
// Scrub takes NO stripe locks: its chunks run on the same pool user
// writes fan out over, so blocking a pool worker on a stripe lock held
// by a writer that is itself waiting for pool workers would deadlock.
// Callers quiesce writes and rebuild first (see scrub_report() docs).
#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>

#include "codes/stripe.h"
#include "obs/trace.h"
#include "raid/raid6_array.h"
#include "xorops/xor_region.h"

namespace dcode::raid {

using codes::CodeLayout;
using codes::Element;
using codes::Equation;
using codes::Stripe;

using ReadOp = StripeIoEngine::ReadOp;

namespace {

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool all_zero(const uint8_t* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (p[i] != 0) return false;
  }
  return true;
}

}  // namespace

int64_t Raid6Array::scrub() {
  return static_cast<int64_t>(scrub_report().inconsistent_stripes.size());
}

ScrubReport Raid6Array::scrub_report(ScrubOptions options) {
  ensure_online();
  const CodeLayout& layout = *layout_;
  const int64_t t0 = now_ns();
  metrics_.scrubs->inc();
  obs::Span span(obs::TraceLog::global(), "scrub",
                 {{"stripes", stripes_}, {"repair", options.repair}});
  ScrubReport report;
  report.stripes_checked = stripes_;
  const auto& equations = layout.equations();
  std::mutex agg_mu;
  pool_.parallel_for_chunked(
      static_cast<size_t>(stripes_), [&](size_t begin, size_t end) {
        Stripe s(layout, element_size_);
        std::vector<uint8_t> syndrome(element_size_);
        std::vector<uint8_t> delta(element_size_);
        std::vector<ReadOp> rops;
        std::vector<char> dead(static_cast<size_t>(layout.cols()));
        std::vector<int> bad;
        ScrubReport local;
        for (size_t st = begin; st < end; ++st) {
          const int64_t stripe = static_cast<int64_t>(st);
          // Per-stripe retry: a disk can fail (or escalate through its
          // health budget and get a spare promoted) while this stripe is
          // being read — the engine surfaces that as DiskFailedError.
          // Retry from scratch with a fresh dead set so the lost disk's
          // equations are skipped; stripe-local tallies merge into the
          // chunk report only on success, so a retry never double-counts.
          for (int attempt = 0;; ++attempt) {
            ScrubReport tally;
            try {
              bool any_dead = false;
              rops.clear();
              for (int c = 0; c < layout.cols(); ++c) {
                const int pd = map_.physical_disk(stripe, c);
                dead[static_cast<size_t>(c)] =
                    disk_degraded_for_stripe(pd, stripe) ? 1 : 0;
                if (dead[static_cast<size_t>(c)] != 0) {
                  any_dead = true;
                  continue;
                }
                for (int r = 0; r < layout.rows(); ++r) {
                  rops.push_back({pd, stripe, r, s.at(r, c)});
                }
              }
              engine_.read_batch(rops);

              bad.clear();
              bool deltas_agree = true;
              for (size_t qi = 0; qi < equations.size(); ++qi) {
                const Equation& eq = equations[qi];
                bool skip = dead[static_cast<size_t>(eq.parity.col)] != 0;
                for (const Element& src : eq.sources) {
                  skip = skip || dead[static_cast<size_t>(src.col)] != 0;
                }
                if (skip) {
                  ++tally.equations_skipped;
                  continue;
                }
                ++tally.equations_checked;
                std::memcpy(syndrome.data(), s.at(eq.parity), element_size_);
                for (const Element& src : eq.sources) {
                  xorops::xor_into(syndrome.data(), s.at(src), element_size_);
                }
                if (all_zero(syndrome.data(), element_size_)) continue;
                if (bad.empty()) {
                  std::memcpy(delta.data(), syndrome.data(), element_size_);
                } else if (std::memcmp(delta.data(), syndrome.data(),
                                       element_size_) != 0) {
                  deltas_agree = false;
                }
                bad.push_back(static_cast<int>(qi));
              }
              if (!bad.empty()) {
                tally.inconsistent_stripes.push_back(stripe);
                if (options.repair) {
                  if (any_dead || !deltas_agree) {
                    // Skipped equations make the membership comparison
                    // unsound; disagreeing deltas mean >1 corrupt element.
                    ++tally.stripes_unrepairable;
                  } else {
                    // `bad` is ascending by construction and membership
                    // lists are built in equation order, so set equality
                    // is a straight vector compare.
                    int hits = 0;
                    Element culprit{};
                    for (int c = 0; c < layout.cols() && hits < 2; ++c) {
                      for (int r = 0; r < layout.rows() && hits < 2; ++r) {
                        if (layout.equations_containing(r, c) == bad) {
                          culprit = codes::make_element(r, c);
                          ++hits;
                        }
                      }
                    }
                    if (hits != 1) {
                      ++tally.stripes_unrepairable;
                    } else {
                      ++tally.elements_located;
                      xorops::xor_into(s.at(culprit), delta.data(),
                                       element_size_);
                      engine_.write_element(
                          map_.physical_disk(stripe, culprit.col), stripe,
                          culprit.row, s.at(culprit));
                      ++tally.elements_repaired;
                    }
                  }
                }
              }
            } catch (const DiskFailedError&) {
              if (attempt >= 4) throw;
              continue;
            }
            local.equations_checked += tally.equations_checked;
            local.equations_skipped += tally.equations_skipped;
            local.elements_located += tally.elements_located;
            local.elements_repaired += tally.elements_repaired;
            local.stripes_unrepairable += tally.stripes_unrepairable;
            local.inconsistent_stripes.insert(
                local.inconsistent_stripes.end(),
                tally.inconsistent_stripes.begin(),
                tally.inconsistent_stripes.end());
            break;
          }
        }
        std::lock_guard<std::mutex> lock(agg_mu);
        report.inconsistent_stripes.insert(report.inconsistent_stripes.end(),
                                           local.inconsistent_stripes.begin(),
                                           local.inconsistent_stripes.end());
        report.equations_checked += local.equations_checked;
        report.equations_skipped += local.equations_skipped;
        report.elements_located += local.elements_located;
        report.elements_repaired += local.elements_repaired;
        report.stripes_unrepairable += local.stripes_unrepairable;
      });
  std::sort(report.inconsistent_stripes.begin(),
            report.inconsistent_stripes.end());
  metrics_.scrub_stripes_checked->inc(stripes_);
  metrics_.scrub_stripes_inconsistent->inc(
      static_cast<int64_t>(report.inconsistent_stripes.size()));
  metrics_.scrub_equations_skipped->inc(report.equations_skipped);
  metrics_.scrub_elements_located->inc(report.elements_located);
  metrics_.scrub_elements_repaired->inc(report.elements_repaired);
  metrics_.scrub_stripes_unrepairable->inc(report.stripes_unrepairable);
  metrics_.scrub_latency_ns->observe(now_ns() - t0);
  if (!report.inconsistent_stripes.empty()) {
    span.note("scrub.inconsistent",
              {{"count",
                static_cast<int64_t>(report.inconsistent_stripes.size())},
               {"repaired", report.elements_repaired},
               {"unrepairable", report.stripes_unrepairable}});
  }
  return report;
}

}  // namespace dcode::raid

// Parity scrub: verify every XOR equation of every stripe, tolerate
// degraded arrays, and (in repair mode) localize and rewrite
// single-element silent corruption.
//
// Two localization channels, tried in order:
//
//  * Checksum sidecar (ScrubOptions::use_checksums, the default when the
//    array maintains integrity records): each element's payload is
//    classified against its recorded checksum + write-identity tag, so a
//    corrupt/misdirected/stale element is condemned DIRECTLY — no
//    syndrome agreement needed. Condemned elements are reconstructed
//    from any surviving equation whose other members are trusted,
//    re-verified against the sidecar, and written back. This repairs
//    cases the parity-only channel must give up on (several corrupt
//    elements, disagreeing families) and is the only channel that sees
//    whole-stripe stale writes (parity-consistent rollbacks).
//
//  * Parity syndromes: a single corrupted element with XOR delta D
//    leaves exactly the equations that contain it unsatisfied, each with
//    syndrome D. The membership sets are distinct per element (a row and
//    a diagonal intersect in one cell; parities own their equation), so
//    "unsatisfied set == membership set, all syndromes equal" pins the
//    corruption to one element and D is the repair patch. Anything else
//    is unrepairable from parity alone — reported split by reason:
//    degraded equations (a member disk is dead) vs family disagreement.
//
// Scrub takes NO stripe locks: its chunks run on the same pool user
// writes fan out over, so blocking a pool worker on a stripe lock held
// by a writer that is itself waiting for pool workers would deadlock.
// Callers quiesce writes and rebuild first (see scrub_report() docs).
#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <mutex>

#include "codes/decoder.h"
#include "codes/encoder.h"
#include "codes/stripe.h"
#include "obs/trace.h"
#include "raid/raid6_array.h"
#include "xorops/xor_region.h"

namespace dcode::raid {

using codes::CodeLayout;
using codes::Element;
using codes::Equation;
using codes::Stripe;

using ReadOp = StripeIoEngine::ReadOp;
using WriteOp = StripeIoEngine::WriteOp;

namespace {

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool all_zero(const uint8_t* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (p[i] != 0) return false;
  }
  return true;
}

size_t elem_index(const CodeLayout& layout, const Element& e) {
  return static_cast<size_t>(e.row) * static_cast<size_t>(layout.cols()) +
         static_cast<size_t>(e.col);
}

// Fixpoint reconstruction of checksum-condemned elements: an equation
// whose members are all live and exactly one of them distrusted rewrites
// that member as the XOR of the others. Each candidate is re-verified
// through `acceptable` (the sidecar knows the expected checksum) before
// being accepted — a reconstruction through an equation that itself
// holds an undetected wrong value would manufacture garbage, so a
// rejected candidate is rolled back and the element stays distrusted.
// Accepted elements become trusted members for later equations, so
// multi-element damage (e.g. a misdirected write's victim AND its
// intended target) repairs iteratively. Returns the repaired elements;
// `distrust` is cleared for exactly those.
std::vector<Element> reconstruct_distrusted(
    const CodeLayout& layout, Stripe& s, const std::vector<char>& dead,
    std::vector<char>& distrust, size_t element_size,
    const std::function<bool(const Element&, const uint8_t*)>& acceptable) {
  std::vector<Element> repaired;
  std::vector<uint8_t> saved(element_size);
  bool progress = true;
  while (progress) {
    progress = false;
    for (const Equation& q : layout.equations()) {
      Element target{};
      int distrusted_members = 0;
      bool usable = true;
      auto consider = [&](const Element& m) {
        if (dead[static_cast<size_t>(m.col)] != 0) {
          usable = false;
          return;
        }
        if (distrust[elem_index(layout, m)] != 0) {
          target = m;
          ++distrusted_members;
        }
      };
      consider(q.parity);
      for (const Element& src : q.sources) consider(src);
      if (!usable || distrusted_members != 1) continue;
      std::memcpy(saved.data(), s.at(target), element_size);
      std::memset(s.at(target), 0, element_size);
      auto fold = [&](const Element& m) {
        if (m.row == target.row && m.col == target.col) return;
        xorops::xor_into(s.at(target), s.at(m), element_size);
      };
      fold(q.parity);
      for (const Element& src : q.sources) fold(src);
      if (!acceptable(target, s.at(target))) {
        std::memcpy(s.at(target), saved.data(), element_size);
        continue;
      }
      distrust[elem_index(layout, target)] = 0;
      repaired.push_back(target);
      progress = true;
    }
  }
  return repaired;
}

}  // namespace

int64_t Raid6Array::scrub() {
  return static_cast<int64_t>(scrub_report().inconsistent_stripes.size());
}

ScrubReport Raid6Array::scrub_report(ScrubOptions options) {
  ensure_online();
  const CodeLayout& layout = *layout_;
  const int64_t t0 = now_ns();
  metrics_.scrubs->inc();
  const bool use_ck = options.use_checksums && engine_.integrity_enabled();
  obs::Span span(obs::TraceLog::global(), "scrub",
                 {{"stripes", stripes_},
                  {"repair", options.repair},
                  {"checksums", use_ck}});
  ScrubReport report;
  report.stripes_checked = stripes_;
  const auto& equations = layout.equations();
  std::mutex agg_mu;
  pool_.parallel_for_chunked(
      static_cast<size_t>(stripes_), [&](size_t begin, size_t end) {
        Stripe s(layout, element_size_);
        std::vector<uint8_t> syndrome(element_size_);
        std::vector<uint8_t> delta(element_size_);
        std::vector<ReadOp> rops;
        std::vector<char> dead(static_cast<size_t>(layout.cols()));
        std::vector<char> distrust(
            static_cast<size_t>(layout.rows() * layout.cols()));
        std::vector<int> bad;
        ScrubReport local;
        for (size_t st = begin; st < end; ++st) {
          const int64_t stripe = static_cast<int64_t>(st);
          // Per-stripe retry: a disk can fail (or escalate through its
          // health budget and get a spare promoted) while this stripe is
          // being read — the engine surfaces that as DiskFailedError.
          // Retry from scratch with a fresh dead set so the lost disk's
          // equations are skipped; stripe-local tallies merge into the
          // chunk report only on success, so a retry never double-counts.
          for (int attempt = 0;; ++attempt) {
            ScrubReport tally;
            try {
              bool any_dead = false;
              rops.clear();
              for (int c = 0; c < layout.cols(); ++c) {
                const int pd = map_.physical_disk(stripe, c);
                dead[static_cast<size_t>(c)] =
                    disk_degraded_for_stripe(pd, stripe) ? 1 : 0;
                if (dead[static_cast<size_t>(c)] != 0) {
                  any_dead = true;
                  continue;
                }
                for (int r = 0; r < layout.rows(); ++r) {
                  rops.push_back({pd, stripe, r, s.at(r, c)});
                }
              }
              // Raw reads: scrub judges the bytes itself, so
              // verify-on-read must not veto them first.
              engine_.read_batch(rops, /*verify=*/false);

              // Checksum channel: classify every live element against
              // the sidecar before any parity math.
              int64_t distrusted = 0;
              int64_t corrupt_distrusted = 0;
              if (use_ck) {
                std::fill(distrust.begin(), distrust.end(), 0);
                for (int c = 0; c < layout.cols(); ++c) {
                  if (dead[static_cast<size_t>(c)] != 0) continue;
                  const int pd = map_.physical_disk(stripe, c);
                  for (int r = 0; r < layout.rows(); ++r) {
                    const IntegrityVerdict v =
                        engine_.classify_element(pd, stripe, r, s.at(r, c));
                    if (v == IntegrityVerdict::kCorrupt ||
                        v == IntegrityVerdict::kMisdirected ||
                        v == IntegrityVerdict::kStale) {
                      distrust[elem_index(layout,
                                          codes::make_element(r, c))] = 1;
                      ++distrusted;
                      ++tally.checksum_mismatches;
                      if (v == IntegrityVerdict::kStale) {
                        ++tally.elements_stale;
                      } else {
                        ++corrupt_distrusted;
                      }
                    }
                  }
                }
              }

              // Erasure-decode fallback for degraded stripes: when the
              // sidecar condemns elements whose covering equations are
              // all dead-skipped (or single-equation reconstruction
              // stalls), treat dead columns AND distrusted elements as
              // one erasure set and chain-decode across both families.
              // Candidates are re-verified against the sidecar before
              // anything is written; on any rejection every buffer is
              // rolled back and the stripe stays reported instead of
              // silently wrong.
              auto decode_through_degraded = [&](ScrubReport& t) {
                std::vector<Element> lostv;
                std::vector<Element> suspects;
                for (int c = 0; c < layout.cols(); ++c) {
                  for (int r = 0; r < layout.rows(); ++r) {
                    const Element e = codes::make_element(r, c);
                    if (dead[static_cast<size_t>(c)] != 0) {
                      lostv.push_back(e);
                    } else if (distrust[elem_index(layout, e)] != 0) {
                      lostv.push_back(e);
                      suspects.push_back(e);
                    }
                  }
                }
                if (suspects.empty()) return false;
                std::vector<std::vector<uint8_t>> saved;
                saved.reserve(suspects.size());
                for (const Element& e : suspects) {
                  saved.emplace_back(s.at(e), s.at(e) + element_size_);
                }
                auto restore = [&] {
                  for (size_t i = 0; i < suspects.size(); ++i) {
                    std::memcpy(s.at(suspects[i]), saved[i].data(),
                                element_size_);
                  }
                };
                const auto res = codes::hybrid_decode(s, lostv);
                if (!res.success) {
                  restore();
                  return false;
                }
                for (const Element& e : suspects) {
                  const IntegrityVerdict v = engine_.classify_element(
                      map_.physical_disk(stripe, e.col), stripe, e.row,
                      s.at(e));
                  if (v != IntegrityVerdict::kOk &&
                      v != IntegrityVerdict::kUntracked) {
                    restore();
                    return false;
                  }
                }
                for (const Element& e : suspects) {
                  engine_.write_element(map_.physical_disk(stripe, e.col),
                                        stripe, e.row, s.at(e));
                  distrust[elem_index(layout, e)] = 0;
                  ++t.elements_located;
                  ++t.elements_checksum_located;
                  ++t.elements_repaired;
                }
                return true;
              };

              // Evaluate every parity equation. The first pass counts
              // into the tally; re-evaluations after a checksum repair
              // only refresh `bad`/`delta`.
              bool deltas_agree = true;
              auto evaluate = [&](bool count) {
                bad.clear();
                deltas_agree = true;
                for (size_t qi = 0; qi < equations.size(); ++qi) {
                  const Equation& eq = equations[qi];
                  bool skip = dead[static_cast<size_t>(eq.parity.col)] != 0;
                  for (const Element& src : eq.sources) {
                    skip = skip || dead[static_cast<size_t>(src.col)] != 0;
                  }
                  if (skip) {
                    if (count) ++tally.equations_skipped;
                    continue;
                  }
                  if (count) ++tally.equations_checked;
                  std::memcpy(syndrome.data(), s.at(eq.parity),
                              element_size_);
                  for (const Element& src : eq.sources) {
                    xorops::xor_into(syndrome.data(), s.at(src),
                                     element_size_);
                  }
                  if (all_zero(syndrome.data(), element_size_)) continue;
                  if (bad.empty()) {
                    std::memcpy(delta.data(), syndrome.data(),
                                element_size_);
                  } else if (std::memcmp(delta.data(), syndrome.data(),
                                         element_size_) != 0) {
                    deltas_agree = false;
                  }
                  bad.push_back(static_cast<int>(qi));
                }
              };
              evaluate(/*count=*/true);

              if (bad.empty()) {
                if (distrusted > 0 && corrupt_distrusted == 0) {
                  // Every evaluable equation holds, yet the sidecar says
                  // the content is old: a whole-stripe rollback (the
                  // write of data AND parity lost together) — invisible
                  // to parity, and redundancy holds no newer copy, so
                  // this is reportable, never repairable. Repair mode
                  // accepts the rollback and resyncs the sidecar so
                  // reads stop condemning bytes nothing can improve; the
                  // report row is the only remaining trace.
                  tally.stale_stripes.push_back(stripe);
                  if (options.repair) {
                    for (int c = 0; c < layout.cols(); ++c) {
                      if (dead[static_cast<size_t>(c)] != 0) continue;
                      const int pd = map_.physical_disk(stripe, c);
                      for (int r = 0; r < layout.rows(); ++r) {
                        engine_.resync_element_integrity(pd, stripe, r,
                                                         s.at(r, c));
                      }
                    }
                  }
                } else if (distrusted > 0) {
                  // Corrupt/misdirected verdicts while every evaluable
                  // equation holds: real damage hidden behind
                  // dead-skipped equations (or a parity-consistent
                  // foreign image). NOT a rollback — resyncing would
                  // bless wrong bytes. Report it, and in repair mode
                  // erase-decode through the dead columns; sidecar
                  // re-verification gates the writes.
                  tally.inconsistent_stripes.push_back(stripe);
                  if (options.repair && !decode_through_degraded(tally)) {
                    ++tally.stripes_unrepairable;
                    ++(any_dead ? tally.stripes_skipped_degraded
                                : tally.stripes_family_disagreement);
                  }
                }
              } else {
                tally.inconsistent_stripes.push_back(stripe);
                if (options.repair) {
                  bool fixed = false;
                  if (distrusted > 0) {
                    // Checksum-assisted localization first: the sidecar
                    // names the condemned elements directly, so repair
                    // works even where the two families' syndromes
                    // disagree (several corrupt elements).
                    const std::vector<Element> found = reconstruct_distrusted(
                        layout, s, dead, distrust, element_size_,
                        [&](const Element& e, const uint8_t* p) {
                          const IntegrityVerdict v = engine_.classify_element(
                              map_.physical_disk(stripe, e.col), stripe,
                              e.row, p);
                          return v == IntegrityVerdict::kOk ||
                                 v == IntegrityVerdict::kUntracked;
                        });
                    for (const Element& e : found) {
                      engine_.write_element(
                          map_.physical_disk(stripe, e.col), stripe, e.row,
                          s.at(e));
                      ++tally.elements_located;
                      ++tally.elements_checksum_located;
                      ++tally.elements_repaired;
                    }
                    if (!found.empty()) evaluate(/*count=*/false);
                    fixed = bad.empty();
                    if (!fixed && any_dead && decode_through_degraded(tally)) {
                      // Equation-at-a-time reconstruction stalled on
                      // dead-skipped equations; the erasure decode
                      // recovered the condemned elements.
                      evaluate(/*count=*/false);
                      fixed = bad.empty();
                    }
                  }
                  if (!fixed && (any_dead || !deltas_agree)) {
                    // Skipped equations make the membership comparison
                    // unsound; disagreeing deltas mean >1 corrupt
                    // element — beyond the parity-only channel.
                    ++tally.stripes_unrepairable;
                    ++(any_dead ? tally.stripes_skipped_degraded
                                : tally.stripes_family_disagreement);
                  } else if (!fixed) {
                    // `bad` is ascending by construction and membership
                    // lists are built in equation order, so set equality
                    // is a straight vector compare.
                    int hits = 0;
                    Element culprit{};
                    for (int c = 0; c < layout.cols() && hits < 2; ++c) {
                      for (int r = 0; r < layout.rows() && hits < 2; ++r) {
                        if (layout.equations_containing(r, c) == bad) {
                          culprit = codes::make_element(r, c);
                          ++hits;
                        }
                      }
                    }
                    if (hits != 1) {
                      ++tally.stripes_unrepairable;
                      ++tally.stripes_family_disagreement;
                    } else {
                      ++tally.elements_located;
                      xorops::xor_into(s.at(culprit), delta.data(),
                                       element_size_);
                      engine_.write_element(
                          map_.physical_disk(stripe, culprit.col), stripe,
                          culprit.row, s.at(culprit));
                      ++tally.elements_repaired;
                    }
                  }
                }
              }
            } catch (const DiskFailedError&) {
              if (attempt >= 4) throw;
              continue;
            }
            local.equations_checked += tally.equations_checked;
            local.equations_skipped += tally.equations_skipped;
            local.elements_located += tally.elements_located;
            local.elements_repaired += tally.elements_repaired;
            local.stripes_unrepairable += tally.stripes_unrepairable;
            local.stripes_skipped_degraded += tally.stripes_skipped_degraded;
            local.stripes_family_disagreement +=
                tally.stripes_family_disagreement;
            local.checksum_mismatches += tally.checksum_mismatches;
            local.elements_checksum_located +=
                tally.elements_checksum_located;
            local.elements_stale += tally.elements_stale;
            local.inconsistent_stripes.insert(
                local.inconsistent_stripes.end(),
                tally.inconsistent_stripes.begin(),
                tally.inconsistent_stripes.end());
            local.stale_stripes.insert(local.stale_stripes.end(),
                                       tally.stale_stripes.begin(),
                                       tally.stale_stripes.end());
            break;
          }
        }
        std::lock_guard<std::mutex> lock(agg_mu);
        report.inconsistent_stripes.insert(report.inconsistent_stripes.end(),
                                           local.inconsistent_stripes.begin(),
                                           local.inconsistent_stripes.end());
        report.stale_stripes.insert(report.stale_stripes.end(),
                                    local.stale_stripes.begin(),
                                    local.stale_stripes.end());
        report.equations_checked += local.equations_checked;
        report.equations_skipped += local.equations_skipped;
        report.elements_located += local.elements_located;
        report.elements_repaired += local.elements_repaired;
        report.stripes_unrepairable += local.stripes_unrepairable;
        report.stripes_skipped_degraded += local.stripes_skipped_degraded;
        report.stripes_family_disagreement +=
            local.stripes_family_disagreement;
        report.checksum_mismatches += local.checksum_mismatches;
        report.elements_checksum_located += local.elements_checksum_located;
        report.elements_stale += local.elements_stale;
      });
  std::sort(report.inconsistent_stripes.begin(),
            report.inconsistent_stripes.end());
  std::sort(report.stale_stripes.begin(), report.stale_stripes.end());
  metrics_.scrub_stripes_checked->inc(stripes_);
  metrics_.scrub_stripes_inconsistent->inc(
      static_cast<int64_t>(report.inconsistent_stripes.size()));
  metrics_.scrub_equations_skipped->inc(report.equations_skipped);
  metrics_.scrub_elements_located->inc(report.elements_located);
  metrics_.scrub_elements_repaired->inc(report.elements_repaired);
  metrics_.scrub_stripes_unrepairable->inc(report.stripes_unrepairable);
  metrics_.scrub_stripes_skipped_degraded->inc(
      report.stripes_skipped_degraded);
  metrics_.scrub_family_disagreements->inc(
      report.stripes_family_disagreement);
  metrics_.scrub_checksum_located->inc(report.elements_checksum_located);
  metrics_.scrub_elements_stale->inc(report.elements_stale);
  metrics_.scrub_stripes_stale->inc(
      static_cast<int64_t>(report.stale_stripes.size()));
  metrics_.scrub_latency_ns->observe(now_ns() - t0);
  if (!report.inconsistent_stripes.empty()) {
    span.note("scrub.inconsistent",
              {{"count",
                static_cast<int64_t>(report.inconsistent_stripes.size())},
               {"repaired", report.elements_repaired},
               {"checksum_located", report.elements_checksum_located},
               {"unrepairable", report.stripes_unrepairable}});
  }
  if (!report.stale_stripes.empty()) {
    span.note("scrub.stale",
              {{"stripes", static_cast<int64_t>(report.stale_stripes.size())},
               {"elements", report.elements_stale}});
  }
  return report;
}

void Raid6Array::clean_stripe_integrity(int64_t stripe) {
  if (!engine_.integrity_enabled()) return;
  const CodeLayout& layout = *layout_;
  obs::Span span(obs::TraceLog::global(), "integrity.clean_stripe",
                 {{"stripe", stripe}});
  Stripe s(layout, element_size_);
  std::vector<char> dead(static_cast<size_t>(layout.cols()), 0);
  std::vector<char> distrust(
      static_cast<size_t>(layout.rows() * layout.cols()), 0);
  std::vector<ReadOp> rops;
  for (int c = 0; c < layout.cols(); ++c) {
    const int pd = map_.physical_disk(stripe, c);
    dead[static_cast<size_t>(c)] =
        disk_degraded_for_stripe(pd, stripe) ? 1 : 0;
    if (dead[static_cast<size_t>(c)] != 0) continue;
    for (int r = 0; r < layout.rows(); ++r) {
      rops.push_back({pd, stripe, r, s.at(r, c)});
    }
  }
  engine_.read_batch(rops, /*verify=*/false);
  int64_t condemned = 0;
  for (int c = 0; c < layout.cols(); ++c) {
    if (dead[static_cast<size_t>(c)] != 0) continue;
    const int pd = map_.physical_disk(stripe, c);
    for (int r = 0; r < layout.rows(); ++r) {
      const IntegrityVerdict v =
          engine_.classify_element(pd, stripe, r, s.at(r, c));
      if (v == IntegrityVerdict::kCorrupt ||
          v == IntegrityVerdict::kMisdirected ||
          v == IntegrityVerdict::kStale) {
        distrust[elem_index(layout, codes::make_element(r, c))] = 1;
        ++condemned;
      }
    }
  }
  std::vector<Element> repaired = reconstruct_distrusted(
      layout, s, dead, distrust, element_size_,
      [&](const Element& e, const uint8_t* p) {
        const IntegrityVerdict v = engine_.classify_element(
            map_.physical_disk(stripe, e.col), stripe, e.row, p);
        return v == IntegrityVerdict::kOk ||
               v == IntegrityVerdict::kUntracked;
      });
  // Data is authoritative for derived parity: an equation whose members
  // are all live and trusted but which still fails can only be the
  // mid-update window (the data writes landed, the parity catch-up write
  // never did because verify condemned its pre-read) — re-encode that
  // parity from its sources so the retried RMW starts from a consistent
  // stripe.
  std::vector<uint8_t> syndrome(element_size_);
  for (const Equation& q : layout.equations()) {
    if (dead[static_cast<size_t>(q.parity.col)] != 0 ||
        distrust[elem_index(layout, q.parity)] != 0) {
      continue;
    }
    bool usable = true;
    for (const Element& src : q.sources) {
      usable = usable && dead[static_cast<size_t>(src.col)] == 0 &&
               distrust[elem_index(layout, src)] == 0;
    }
    if (!usable) continue;
    std::memcpy(syndrome.data(), s.at(q.parity), element_size_);
    for (const Element& src : q.sources) {
      xorops::xor_into(syndrome.data(), s.at(src), element_size_);
    }
    if (all_zero(syndrome.data(), element_size_)) continue;
    xorops::xor_into(s.at(q.parity), syndrome.data(), element_size_);
    repaired.push_back(q.parity);
  }
  for (const Element& e : repaired) {
    engine_.write_element(map_.physical_disk(stripe, e.col), stripe, e.row,
                          s.at(e));
  }
  if (!repaired.empty()) metrics_.integrity_write_repairs->inc();
  span.note("integrity.clean_stripe.done",
            {{"condemned", condemned},
             {"repaired", static_cast<int64_t>(repaired.size())}});
}

void Raid6Array::salvage_stripe_rewrite(int64_t stripe, int64_t g,
                                        int64_t stripe_end, int64_t offset,
                                        std::span<const uint8_t> data) {
  // Why clean_stripe_integrity alone is not enough: a misdirected data
  // write caught at the RMW parity pre-read leaves the stripe with new
  // data on the healthy columns, a condemned victim column, and parity
  // that is still uniformly pre-update. Every equation through the
  // victim then mixes old parity with new data, so reconstruction
  // candidates can never re-verify — the in-place repair loops without
  // progress. The caller's buffer breaks the deadlock: salvage the old
  // bytes that are still derivable, overlay the incoming data, re-encode
  // parity from the data alone and rewrite the stripe, refreshing every
  // sidecar record.
  const CodeLayout& layout = *layout_;
  obs::Span span(obs::TraceLog::global(), "integrity.salvage_rewrite",
                 {{"stripe", stripe}});
  Stripe s(layout, element_size_);
  std::vector<char> dead(static_cast<size_t>(layout.cols()), 0);
  std::vector<char> distrust(
      static_cast<size_t>(layout.rows() * layout.cols()), 0);
  std::vector<Element> lost;
  std::vector<ReadOp> rops;
  for (int c = 0; c < layout.cols(); ++c) {
    const int pd = map_.physical_disk(stripe, c);
    dead[static_cast<size_t>(c)] =
        disk_degraded_for_stripe(pd, stripe) ? 1 : 0;
    for (int r = 0; r < layout.rows(); ++r) {
      if (dead[static_cast<size_t>(c)] != 0) {
        lost.push_back(codes::make_element(r, c));
      } else {
        rops.push_back({pd, stripe, r, s.at(r, c)});
      }
    }
  }
  engine_.read_batch(rops, /*verify=*/false);
  if (engine_.integrity_enabled()) {
    for (int c = 0; c < layout.cols(); ++c) {
      if (dead[static_cast<size_t>(c)] != 0) continue;
      const int pd = map_.physical_disk(stripe, c);
      for (int r = 0; r < layout.rows(); ++r) {
        const IntegrityVerdict v =
            engine_.classify_element(pd, stripe, r, s.at(r, c));
        if (v == IntegrityVerdict::kCorrupt ||
            v == IntegrityVerdict::kMisdirected ||
            v == IntegrityVerdict::kStale) {
          distrust[elem_index(layout, codes::make_element(r, c))] = 1;
        }
      }
    }
  }
  // Condemned elements whose pre-update payload is still derivable come
  // back through equations with trusted members; each candidate is
  // re-verified against the sidecar, so mid-update parity cannot fake a
  // salvage.
  std::vector<Element> salvaged = reconstruct_distrusted(
      layout, s, dead, distrust, element_size_,
      [&](const Element& e, const uint8_t* p) {
        const IntegrityVerdict v = engine_.classify_element(
            map_.physical_disk(stripe, e.col), stripe, e.row, p);
        return v == IntegrityVerdict::kOk ||
               v == IntegrityVerdict::kUntracked;
      });
  // Parity is recomputed from the data below, so condemned parity needs
  // no old bytes; neither does a data element the incoming write covers
  // wholesale. Anything else still distrusted is genuinely gone —
  // refuse rather than hand the caller silent garbage.
  for (const Equation& q : layout.equations()) {
    distrust[elem_index(layout, q.parity)] = 0;
  }
  std::vector<char> covered(distrust.size(), 0);
  for (int64_t e = g; e <= stripe_end; ++e) {
    const auto loc = map_.locate(e);
    size_t eb, sb, len;
    overlay_range(e, offset, static_cast<int64_t>(data.size()),
                  static_cast<int64_t>(element_size_), &eb, &sb, &len);
    if (len == element_size_) covered[elem_index(layout, loc.element)] = 1;
  }
  bool garbage_left = false;
  for (int c = 0; c < layout.cols(); ++c) {
    for (int r = 0; r < layout.rows(); ++r) {
      const size_t idx = elem_index(layout, codes::make_element(r, c));
      if (distrust[idx] == 0) continue;
      garbage_left = true;
      if (covered[idx] == 0) {
        throw ElementIntegrityError(map_.physical_disk(stripe, c), stripe, r,
                                    IntegrityVerdict::kCorrupt);
      }
    }
  }
  if (!lost.empty()) {
    // Decoding a dead column folds parity, which is only sound when the
    // surviving stripe is internally consistent (pre-update). Mid-update
    // or residual-garbage state cannot be decoded through — refuse
    // instead of writing back a silently wrong reconstruction.
    if (garbage_left) {
      throw ElementIntegrityError(map_.physical_disk(stripe, 0), stripe, 0,
                                  IntegrityVerdict::kCorrupt);
    }
    std::vector<uint8_t> syndrome(element_size_);
    for (const Equation& q : layout.equations()) {
      bool usable = dead[static_cast<size_t>(q.parity.col)] == 0;
      for (const Element& src : q.sources) {
        usable = usable && dead[static_cast<size_t>(src.col)] == 0;
      }
      if (!usable) continue;
      std::memcpy(syndrome.data(), s.at(q.parity), element_size_);
      for (const Element& src : q.sources) {
        xorops::xor_into(syndrome.data(), s.at(src), element_size_);
      }
      if (!all_zero(syndrome.data(), element_size_)) {
        throw ElementIntegrityError(map_.physical_disk(stripe, q.parity.col),
                                    stripe, q.parity.row,
                                    IntegrityVerdict::kCorrupt);
      }
    }
    auto res = codes::hybrid_decode(s, lost);
    DCODE_CHECK(res.success, "stripe unrecoverable (more than two failures)");
    metrics_.elements_reconstructed->inc(static_cast<int64_t>(lost.size()));
  }
  for (int64_t e = g; e <= stripe_end; ++e) {
    const auto loc = map_.locate(e);
    size_t eb, sb, len;
    overlay_range(e, offset, static_cast<int64_t>(data.size()),
                  static_cast<int64_t>(element_size_), &eb, &sb, &len);
    std::memcpy(s.at(loc.element) + eb, data.data() + sb, len);
  }
  codes::encode_stripe(s);
  std::vector<WriteOp> wops;
  for (int c = 0; c < layout.cols(); ++c) {
    if (dead[static_cast<size_t>(c)] != 0) continue;
    const int pd = map_.physical_disk(stripe, c);
    for (int r = 0; r < layout.rows(); ++r) {
      wops.push_back({pd, stripe, r, s.at(r, c)});
    }
  }
  engine_.write_batch(wops);
  metrics_.integrity_write_repairs->inc();
  span.note("integrity.salvage_rewrite.done",
            {{"salvaged", static_cast<int64_t>(salvaged.size())},
             {"writes", static_cast<int64_t>(wops.size())}});
}

}  // namespace dcode::raid

// FileDisk: a persistent BlockDevice over one file.
//
// Each disk is a regular file accessed with pread/pwrite (preadv/pwritev
// on the vectored paths); flush() is fsync, so a FileDisk array survives
// process crashes and Raid6Array::restart() the way a real JBOD does —
// the write-hole tests prove a write → power loss → restart →
// journal_recover round-trip against real files on disk.
//
// Construction creates (or truncates to size, see Options::reuse) the
// file; `unlink_on_close` turns the disk into a self-cleaning temp file,
// which is how the DCODE_DISK_BACKEND=file test legs run.
#pragma once

#include <string>

#include "raid/block_device.h"

namespace dcode::raid {

// FileDisk construction knobs. Namespace-level (not nested) so it can
// serve as a defaulted constructor argument.
struct FileDiskOptions {
  bool reuse = false;            // keep existing file contents (reopen)
  bool unlink_on_close = false;  // delete the file in the destructor
};

class FileDisk : public BlockDevice {
 public:
  using Options = FileDiskOptions;

  // Throws std::runtime_error if the file cannot be opened or sized.
  FileDisk(int id, size_t size, std::string path, Options opts = {});
  ~FileDisk() override;

  const std::string& path() const { return path_; }

  std::string_view backend_name() const override { return "file"; }
  uint32_t capabilities() const override {
    return kDevicePersistent | kDeviceFlush | kDeviceDiscard;
  }

 protected:
  IoResult do_read(uint64_t offset, std::span<uint8_t> out) override;
  IoResult do_write(uint64_t offset, std::span<const uint8_t> in) override;
  IoResult do_readv(uint64_t offset, std::span<const IoVec> iov) override;
  IoResult do_writev(uint64_t offset,
                     std::span<const ConstIoVec> iov) override;
  IoResult do_flush() override;
  IoResult do_discard(uint64_t offset, size_t len) override;

 private:
  std::string path_;
  int fd_ = -1;
  bool unlink_on_close_ = false;
};

}  // namespace dcode::raid

// Raid6Array's write-hole machinery: the WriteGate the StripeIoEngine
// admits every element write through (power-loss injection), and the
// write-ahead intent journal's recovery pass. Split from raid6_array.cc
// so the core policy file stays readable.
#include <vector>

#include "codes/encoder.h"
#include "codes/stripe.h"
#include "obs/trace.h"
#include "raid/raid6_array.h"

namespace dcode::raid {

using codes::CodeLayout;
using codes::Equation;
using codes::Stripe;

void Raid6Array::ensure_online() const {
  if (crashed_.load(std::memory_order_relaxed)) throw PowerLossError();
}

bool Raid6Array::armed() const {
  // Crashed counts as armed so every post-crash write still funnels into
  // admit() and throws, exactly as the monolith's write_element did.
  return crash_countdown_.load(std::memory_order_relaxed) >= 0 ||
         crashed_.load(std::memory_order_relaxed);
}

void Raid6Array::admit() {
  ensure_online();
  if (crash_countdown_.load(std::memory_order_relaxed) >= 0) {
    if (crash_countdown_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
      crashed_.store(true, std::memory_order_relaxed);
      throw PowerLossError();
    }
  }
}

void Raid6Array::enable_journal(int slots) {
  DCODE_CHECK(!journal_, "journal already enabled");
  journal_.emplace(slots);
}

void Raid6Array::inject_power_loss_after(int64_t element_writes) {
  DCODE_CHECK(element_writes >= 0, "write budget must be non-negative");
  crash_countdown_.store(element_writes, std::memory_order_relaxed);
}

void Raid6Array::restart() {
  crashed_.store(false, std::memory_order_relaxed);
  crash_countdown_.store(-1, std::memory_order_relaxed);
}

std::vector<int64_t> Raid6Array::journal_open_stripes() const {
  DCODE_CHECK(journal_.has_value(), "journal not enabled");
  return journal_->open_stripes();
}

int64_t Raid6Array::journal_recover() {
  ensure_online();
  DCODE_CHECK(journal_.has_value(), "journal not enabled");
  const CodeLayout& layout = *layout_;
  const std::vector<int64_t> open = journal_->open_stripes();
  obs::Span span(obs::TraceLog::global(), "journal.recover",
                 {{"open_intents", static_cast<int64_t>(open.size())}});
  metrics_.journal_recoveries->inc();
  int64_t repaired = 0;
  for (int64_t stripe : open) {
    // Re-encode parity from whatever data survived the crash: every data
    // element is individually consistent (element writes are atomic), so
    // a fresh encode restores the stripe invariant. On a degraded array
    // the lost columns are decoded first (a crash can race a disk
    // failure), and only live-for-this-stripe devices are rewritten.
    std::unique_lock<std::mutex> lock = stripe_lock(stripe);
    bool degraded = false;
    for (int c = 0; c < layout.cols(); ++c) {
      degraded = degraded ||
                 disk_degraded_for_stripe(map_.physical_disk(stripe, c),
                                          stripe);
    }
    Stripe s(layout, element_size_);
    // Raw reads: a crash can strand sidecar records ahead of the platter
    // (the write was admitted but never landed), and replay's whole job
    // is to rebuild consistency from the bytes that DID survive —
    // verify-on-read vetoing them would deadlock recovery.
    if (degraded) {
      load_stripe_degraded(stripe, s, /*verify=*/false);
    } else {
      std::vector<StripeIoEngine::ReadOp> rops;
      for (int c = 0; c < layout.cols(); ++c) {
        const int pd = map_.physical_disk(stripe, c);
        for (int r = 0; r < layout.rows(); ++r) {
          rops.push_back({pd, stripe, r, s.at(r, c)});
        }
      }
      engine_.read_batch(rops, /*verify=*/false);
    }
    codes::encode_stripe(s);
    std::vector<StripeIoEngine::WriteOp> wops;
    for (const Equation& q : layout.equations()) {
      const int pd = map_.physical_disk(stripe, q.parity.col);
      if (disk_degraded_for_stripe(pd, stripe)) continue;
      wops.push_back({pd, stripe, q.parity.row, s.at(q.parity)});
    }
    engine_.write_batch(wops);
    // The stripe invariant is restored: re-derive every live element's
    // checksum + identity tag from the now-authoritative content, so
    // records stranded by the crash (or torn sidecar slots on reopen)
    // stop condemning replayed data.
    for (int c = 0; c < layout.cols(); ++c) {
      const int pd = map_.physical_disk(stripe, c);
      if (disk_degraded_for_stripe(pd, stripe)) continue;
      for (int r = 0; r < layout.rows(); ++r) {
        engine_.resync_element_integrity(pd, stripe, r, s.at(r, c));
      }
    }
    journal_->commit(stripe);
    span.note("journal.replayed_stripe", {{"stripe", stripe}});
    ++repaired;
  }
  metrics_.journal_replayed_stripes->inc(repaired);
  return repaired;
}

}  // namespace dcode::raid

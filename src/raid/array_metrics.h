// The Raid6Array's metric handles, resolved once at array construction.
//
// All metrics live in an obs::Registry (the process-global one unless the
// array was given its own) and are additive across arrays sharing a
// registry: counters only ever inc(), so two arrays on the global
// registry simply sum, Prometheus-style. The per-disk element access
// counters mirror sim::IoStats semantics at runtime — one increment per
// element read or written on that physical disk — so a scripted workload
// can be checked against the planner's IoPlan predictions (see
// tests/runtime_metrics_test.cc). The full catalogue with meanings is in
// docs/observability.md.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace dcode::raid {

struct ArrayMetrics {
  ArrayMetrics(obs::Registry& registry, int disks) : reg(&registry) {
    using obs::Labels;
    reads = &registry.counter("raid.reads", {}, "healthy-mode read ops");
    writes = &registry.counter("raid.writes", {}, "healthy-mode write ops");
    degraded_reads = &registry.counter("raid.degraded_reads", {},
                                       "read ops served with failed disks");
    degraded_writes = &registry.counter(
        "raid.degraded_writes", {}, "write ops served with failed disks");
    bytes_read =
        &registry.counter("raid.bytes_read", {}, "user bytes returned");
    bytes_written =
        &registry.counter("raid.bytes_written", {}, "user bytes accepted");
    rebuilds = &registry.counter("raid.rebuilds", {}, "rebuild operations");
    elements_reconstructed = &registry.counter(
        "raid.elements_reconstructed", {},
        "elements recomputed from parity (degraded reads + rebuilds)");
    scrubs = &registry.counter("raid.scrubs", {}, "scrub operations");
    scrub_stripes_checked = &registry.counter(
        "raid.scrub.stripes_checked", {}, "stripes verified by scrub");
    scrub_stripes_inconsistent =
        &registry.counter("raid.scrub.stripes_inconsistent", {},
                          "stripes whose parity failed verification");
    disks_failed = &registry.gauge("raid.disks_failed", {},
                                   "currently failed disks");
    engine_transient_retries = &registry.counter(
        "raid.engine.transient_retries", {},
        "transient device errors retried by the engine");
    engine_retry_exhausted = &registry.counter(
        "raid.engine.retry_exhausted", {},
        "transfers whose transient-retry budget ran out, escalating the "
        "device to fail-stop");
    failovers = &registry.counter(
        "raid.failovers", {},
        "user ops re-planned after a disk failed mid-operation");
    spare_promotions = &registry.counter(
        "raid.spare_promotions", {},
        "hot spares automatically promoted into failed slots");
    rebuild_stripes = &registry.counter(
        "raid.rebuild.stripes_rebuilt", {},
        "stripes reconstructed by the background rebuild worker");
    rebuild_in_progress = &registry.gauge(
        "raid.rebuild.in_progress", {},
        "1 while a background rebuild worker is active");
    scrub_equations_skipped = &registry.counter(
        "raid.scrub.equations_skipped", {},
        "parity equations skipped by scrub (a member on a degraded disk)");
    scrub_elements_located = &registry.counter(
        "raid.scrub.elements_located", {},
        "corrupted elements localized via the parity-family syndromes");
    scrub_elements_repaired = &registry.counter(
        "raid.scrub.elements_repaired", {},
        "corrupted elements rewritten by repair-mode scrub");
    scrub_stripes_unrepairable = &registry.counter(
        "raid.scrub.stripes_unrepairable", {},
        "inconsistent stripes repair-mode scrub could not localize");
    scrub_stripes_skipped_degraded = &registry.counter(
        "raid.scrub.stripes_skipped_degraded", {},
        "inconsistent stripes scrub could not attempt (degraded "
        "equations: a member disk is dead)");
    scrub_family_disagreements = &registry.counter(
        "raid.scrub.family_disagreements", {},
        "inconsistent stripes whose two parity-family syndromes "
        "disagreed (repairable only via checksums)");
    scrub_checksum_located = &registry.counter(
        "raid.scrub.checksum_located", {},
        "corrupted elements localized via the checksum sidecar (subset "
        "of elements_located)");
    scrub_elements_stale = &registry.counter(
        "raid.scrub.elements_stale", {},
        "elements whose payload matched their previous checksum (lost "
        "or stale writes found by scrub)");
    scrub_stripes_stale = &registry.counter(
        "raid.scrub.stripes_stale", {},
        "parity-consistent stripes flagged stale by identity tags "
        "(whole-stripe lost write; reported, not repaired)");
    integrity_elements_verified = &registry.counter(
        "raid.integrity.elements_verified", {},
        "element payloads checksum-verified on read");
    integrity_mismatch_corrupt = &registry.counter(
        "raid.integrity.read_mismatches", {{"kind", "corrupt"}},
        "verify-on-read verdicts: payload matches no known checksum "
        "(torn write or bit rot)");
    integrity_mismatch_misdirected = &registry.counter(
        "raid.integrity.read_mismatches", {{"kind", "misdirected"}},
        "verify-on-read verdicts: payload is another element's current "
        "content (write landed on the wrong LBA)");
    integrity_mismatch_stale = &registry.counter(
        "raid.integrity.read_mismatches", {{"kind", "stale"}},
        "verify-on-read verdicts: payload is this element's previous "
        "content (lost/stale write)");
    integrity_read_fallbacks = &registry.counter(
        "raid.integrity.read_fallbacks", {},
        "reads re-served from parity after verify-on-read condemned an "
        "element");
    integrity_write_repairs = &registry.counter(
        "raid.integrity.write_repairs", {},
        "stripes cleaned in the write path after a verified pre-read "
        "failed integrity");
    journal_intents_opened =
        &registry.counter("raid.journal.intents_opened", {},
                          "write-intent records newly opened");
    journal_commits = &registry.counter("raid.journal.commits", {},
                                        "write-intent records committed");
    journal_replayed_stripes =
        &registry.counter("raid.journal.replayed_stripes", {},
                          "stripes re-encoded by journal recovery");
    journal_recoveries = &registry.counter(
        "raid.journal.recoveries", {}, "journal recovery passes");
    read_latency_ns = &registry.histogram(
        "raid.read_latency_ns", obs::latency_bounds_ns(), {},
        "wall time per read op");
    write_latency_ns = &registry.histogram(
        "raid.write_latency_ns", obs::latency_bounds_ns(), {},
        "wall time per write op");
    read_latency_fine_ns = &registry.histogram(
        "raid.read_latency_fine_ns", obs::latency_fine_bounds_ns(), {},
        "wall time per read op, log-linear buckets for p99/p999");
    write_latency_fine_ns = &registry.histogram(
        "raid.write_latency_fine_ns", obs::latency_fine_bounds_ns(), {},
        "wall time per write op, log-linear buckets for p99/p999");
    slow_ops = &registry.counter(
        "raid.slow_ops", {},
        "ops over ArrayOptions::slow_op_threshold_ns (each triggers a "
        "flight-recorder dump request)");
    rebuild_latency_ns = &registry.histogram(
        "raid.rebuild_latency_ns", obs::latency_bounds_ns(), {},
        "wall time per rebuild");
    scrub_latency_ns = &registry.histogram(
        "raid.scrub_latency_ns", obs::latency_bounds_ns(), {},
        "wall time per scrub");
    engine_retry_backoff_ns = &registry.histogram(
        "raid.engine.retry_backoff_ns", obs::latency_bounds_ns(), {},
        "backoff slept before each transient retry");
    rebuild_throttle_wait_ns = &registry.histogram(
        "raid.rebuild.throttle_wait_ns", obs::latency_bounds_ns(), {},
        "time the background rebuild worker waited on its token bucket, "
        "per stripe");
    stripe_lock_wait_ns = &registry.histogram(
        "raid.stripe_lock_wait_ns", obs::latency_bounds_ns(), {},
        "time a stripe mutator blocked on the sharded stripe lock table "
        "(contended acquisitions only)");
    read_bytes = &registry.histogram("raid.read_bytes",
                                     obs::size_bounds_bytes(), {},
                                     "user bytes per read op");
    write_bytes = &registry.histogram("raid.write_bytes",
                                      obs::size_bounds_bytes(), {},
                                      "user bytes per write op");
    disk_element_reads.reserve(static_cast<size_t>(disks));
    disk_element_writes.reserve(static_cast<size_t>(disks));
    disk_failures.reserve(static_cast<size_t>(disks));
    for (int d = 0; d < disks; ++d) {
      Labels l = {{"disk", std::to_string(d)}};
      disk_element_reads.push_back(&registry.counter(
          "raid.disk.element_reads", l, "element reads per physical disk"));
      disk_element_writes.push_back(&registry.counter(
          "raid.disk.element_writes", l,
          "element writes per physical disk"));
      disk_failures.push_back(&registry.counter(
          "raid.disk.failures", l, "failure injections per physical disk"));
    }
  }

  obs::Registry* reg;
  obs::Counter* reads;
  obs::Counter* writes;
  obs::Counter* degraded_reads;
  obs::Counter* degraded_writes;
  obs::Counter* bytes_read;
  obs::Counter* bytes_written;
  obs::Counter* rebuilds;
  obs::Counter* elements_reconstructed;
  obs::Counter* scrubs;
  obs::Counter* scrub_stripes_checked;
  obs::Counter* scrub_stripes_inconsistent;
  obs::Gauge* disks_failed;
  obs::Counter* engine_transient_retries;
  obs::Counter* engine_retry_exhausted;
  obs::Counter* failovers;
  obs::Counter* spare_promotions;
  obs::Counter* rebuild_stripes;
  obs::Gauge* rebuild_in_progress;
  obs::Counter* scrub_equations_skipped;
  obs::Counter* scrub_elements_located;
  obs::Counter* scrub_elements_repaired;
  obs::Counter* scrub_stripes_unrepairable;
  obs::Counter* scrub_stripes_skipped_degraded;
  obs::Counter* scrub_family_disagreements;
  obs::Counter* scrub_checksum_located;
  obs::Counter* scrub_elements_stale;
  obs::Counter* scrub_stripes_stale;
  obs::Counter* integrity_elements_verified;
  obs::Counter* integrity_mismatch_corrupt;
  obs::Counter* integrity_mismatch_misdirected;
  obs::Counter* integrity_mismatch_stale;
  obs::Counter* integrity_read_fallbacks;
  obs::Counter* integrity_write_repairs;
  obs::Counter* journal_intents_opened;
  obs::Counter* journal_commits;
  obs::Counter* journal_replayed_stripes;
  obs::Counter* journal_recoveries;
  obs::Histogram* read_latency_ns;
  obs::Histogram* write_latency_ns;
  obs::Histogram* read_latency_fine_ns;
  obs::Histogram* write_latency_fine_ns;
  obs::Counter* slow_ops;
  obs::Histogram* rebuild_latency_ns;
  obs::Histogram* scrub_latency_ns;
  obs::Histogram* engine_retry_backoff_ns;
  obs::Histogram* rebuild_throttle_wait_ns;
  obs::Histogram* stripe_lock_wait_ns;
  obs::Histogram* read_bytes;
  obs::Histogram* write_bytes;
  std::vector<obs::Counter*> disk_element_reads;
  std::vector<obs::Counter*> disk_element_writes;
  std::vector<obs::Counter*> disk_failures;
};

}  // namespace dcode::raid

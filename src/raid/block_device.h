// BlockDevice: the abstract disk the RAID stack runs on.
//
// The array layer used to BE the disk (a hard-wired in-memory byte
// buffer); this interface splits the two so the same coding/policy code
// can run over RAM (MemDisk), real files (FileDisk), or any future
// backend (io_uring, network) without touching the layers above. The
// contract is deliberately narrow and status-code based — a device
// reports failure, it does not decide what the array should do about it:
//
//  * read/write     — one contiguous range.
//  * readv/writev   — one contiguous *device* range scattered to /
//                     gathered from multiple memory buffers (preadv
//                     semantics). This is what the StripeIoEngine's
//                     coalescer emits: many same-disk element accesses
//                     become one ranged transfer.
//  * flush          — make previously acknowledged writes durable.
//  * discard        — hint that a range's contents are dead.
//
// Offsets/lengths are bounds-checked with DCODE_CHECK (a caller bug, not
// a device condition); device conditions travel in IoResult. Op/byte
// accounting lives here in the base class (non-virtual entry points
// around protected do_*() hooks) so every implementation counts the same
// way and the engine can report device-level op counts next to its
// element-granular counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/check.h"

namespace dcode::raid {

// Why an I/O completed the way it did. kFailed is fail-stop (the device
// is gone until replaced); kTransient is a retryable error (the engine
// retries within its budget before escalating to failed).
enum class IoStatus { kOk, kFailed, kTransient };

struct IoResult {
  IoStatus status = IoStatus::kOk;
  size_t bytes = 0;  // bytes actually transferred

  bool ok() const { return status == IoStatus::kOk; }
  static IoResult success(size_t n) { return IoResult{IoStatus::kOk, n}; }
  static IoResult failed() { return IoResult{IoStatus::kFailed, 0}; }
  static IoResult transient() { return IoResult{IoStatus::kTransient, 0}; }
};

// Scatter/gather segments for the vectored calls.
struct IoVec {
  uint8_t* data = nullptr;
  size_t len = 0;
};
struct ConstIoVec {
  const uint8_t* data = nullptr;
  size_t len = 0;
};

// Capability flags, OR-ed into capabilities().
enum DeviceCaps : uint32_t {
  kDevicePersistent = 1u << 0,  // contents survive process restart
  kDeviceFlush = 1u << 1,       // flush() is meaningful (not a no-op)
  kDeviceDiscard = 1u << 2,     // discard() actually releases storage
};

// Thrown by the engine when a device is (or becomes) fail-stop.
class DiskFailedError : public std::runtime_error {
 public:
  explicit DiskFailedError(int disk)
      : std::runtime_error("disk " + std::to_string(disk) + " has failed"),
        disk_(disk) {}
  int disk() const { return disk_; }

 private:
  int disk_;
};

class BlockDevice {
 public:
  BlockDevice(int id, size_t size) : id_(id), size_(size) {}
  virtual ~BlockDevice() = default;

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  int id() const { return id_; }
  size_t size() const { return size_; }

  virtual std::string_view backend_name() const = 0;
  virtual uint32_t capabilities() const = 0;

  IoResult read(uint64_t offset, std::span<uint8_t> out) {
    DCODE_CHECK(offset + out.size() <= size_, "read past end of device");
    IoResult r = do_read(offset, out);
    account_read(r);
    return r;
  }

  IoResult write(uint64_t offset, std::span<const uint8_t> in) {
    DCODE_CHECK(offset + in.size() <= size_, "write past end of device");
    IoResult r = do_write(offset, in);
    account_write(r);
    return r;
  }

  // Reads one contiguous device range starting at `offset`, filling each
  // segment of `iov` in turn (preadv semantics). One device op.
  IoResult readv(uint64_t offset, std::span<const IoVec> iov) {
    DCODE_CHECK(offset + total_len(iov) <= size_, "readv past end of device");
    IoResult r = do_readv(offset, iov);
    account_read(r);
    return r;
  }

  // Writes the concatenation of `iov` to one contiguous device range
  // starting at `offset` (pwritev semantics). One device op.
  IoResult writev(uint64_t offset, std::span<const ConstIoVec> iov) {
    DCODE_CHECK(offset + total_len(iov) <= size_, "writev past end of device");
    IoResult r = do_writev(offset, iov);
    account_write(r);
    return r;
  }

  IoResult flush() { return do_flush(); }

  IoResult discard(uint64_t offset, size_t len) {
    DCODE_CHECK(offset + len <= size_, "discard past end of device");
    return do_discard(offset, len);
  }

  // Device-level op accounting: one readv/writev counts one op however
  // many elements it carries — the visible payoff of coalescing.
  int64_t read_ops() const { return read_ops_.load(std::memory_order_relaxed); }
  int64_t write_ops() const {
    return write_ops_.load(std::memory_order_relaxed);
  }
  int64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  int64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  void reset_op_stats() {
    read_ops_.store(0, std::memory_order_relaxed);
    write_ops_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
    bytes_written_.store(0, std::memory_order_relaxed);
  }

 protected:
  virtual IoResult do_read(uint64_t offset, std::span<uint8_t> out) = 0;
  virtual IoResult do_write(uint64_t offset,
                            std::span<const uint8_t> in) = 0;
  // Default vectored paths degrade to one ranged op per segment walk; a
  // backend with native scatter/gather (FileDisk's preadv) overrides.
  virtual IoResult do_readv(uint64_t offset, std::span<const IoVec> iov) {
    size_t total = 0;
    for (const IoVec& v : iov) {
      IoResult r = do_read(offset + total, {v.data, v.len});
      if (!r.ok()) return r;
      total += v.len;
    }
    return IoResult::success(total);
  }
  virtual IoResult do_writev(uint64_t offset,
                             std::span<const ConstIoVec> iov) {
    size_t total = 0;
    for (const ConstIoVec& v : iov) {
      IoResult r = do_write(offset + total, {v.data, v.len});
      if (!r.ok()) return r;
      total += v.len;
    }
    return IoResult::success(total);
  }
  virtual IoResult do_flush() { return IoResult::success(0); }
  virtual IoResult do_discard(uint64_t, size_t) { return IoResult::success(0); }

  static size_t total_len(std::span<const IoVec> iov) {
    size_t n = 0;
    for (const IoVec& v : iov) n += v.len;
    return n;
  }
  static size_t total_len(std::span<const ConstIoVec> iov) {
    size_t n = 0;
    for (const ConstIoVec& v : iov) n += v.len;
    return n;
  }

 private:
  void account_read(const IoResult& r) {
    read_ops_.fetch_add(1, std::memory_order_relaxed);
    bytes_read_.fetch_add(static_cast<int64_t>(r.bytes),
                          std::memory_order_relaxed);
  }
  void account_write(const IoResult& r) {
    write_ops_.fetch_add(1, std::memory_order_relaxed);
    bytes_written_.fetch_add(static_cast<int64_t>(r.bytes),
                             std::memory_order_relaxed);
  }

  int id_;
  size_t size_;
  // Relaxed atomics: the engine drives devices from pool workers.
  std::atomic<int64_t> read_ops_{0};
  std::atomic<int64_t> write_ops_{0};
  std::atomic<int64_t> bytes_read_{0};
  std::atomic<int64_t> bytes_written_{0};
};

// How the engine materializes a backend for disk `id` of `size` bytes
// (construction and replace-with-blank both go through this).
using DeviceFactory =
    std::function<std::unique_ptr<BlockDevice>(int id, size_t size)>;

// The process-default factory: MemDisk, unless DCODE_DISK_BACKEND=file
// selects temp-file-backed FileDisks (in DCODE_DISK_DIR, else TMPDIR,
// else /tmp; the files are deleted on close). Defined in file_disk.cc so
// the env handling lives next to the backend it selects.
DeviceFactory default_device_factory();

}  // namespace dcode::raid

// Raid6Array: a byte-level RAID-6 array over in-memory disks.
//
// This is deliverable (a)'s top-level object and the substrate the
// examples and the read-speed experiments run on. It owns one MemDisk per
// layout column and `stripes` consecutive stripes; the logical address
// space is the concatenated row-major data stream (element granularity
// inside; byte-granularity at the public API).
//
// Behaviour:
//  * write — healthy mode uses the planner's RMW/RCW choice, applying
//    parity deltas with the XOR kernels; if any disk is failed, the
//    affected stripes are reconstructed in memory, modified, re-encoded
//    and written back to the surviving disks (stripe-rewrite policy).
//  * read — healthy elements stream straight from the disks; lost ones are
//    rebuilt through the degraded-read planner's equation choices.
//  * fail_disk / replace_disk / rebuild — fault injection and repair.
//    Rebuild fans out across stripes on a thread pool; one failed disk
//    uses the minimal-read recovery plan, two use D-Code's chain decoder
//    (for dcode) or the generic hybrid decoder.
//  * scrub — verifies every parity equation, returning the number of
//    inconsistent stripes (silent-corruption detection).
//  * write-hole protection — with enable_journal(), every stripe update
//    is bracketed by write-ahead intent records; inject_power_loss_after()
//    simulates a crash after N more element writes, restart() brings the
//    array back up, and journal_recover() re-encodes exactly the stripes
//    with open intents (see raid/journal.h).
#pragma once

#include <memory>
#include <vector>

#include <atomic>
#include <optional>

#include "codes/code_layout.h"
#include "codes/stripe.h"
#include "obs/metrics.h"
#include "raid/address_map.h"
#include "raid/array_metrics.h"
#include "raid/journal.h"
#include "raid/mem_disk.h"
#include "raid/planner.h"
#include "util/thread_pool.h"

namespace dcode::raid {

// Result of a full parity scrub: every stripe whose parity equations do
// not match its data, by stripe id (what a repair pass needs, not just a
// count).
struct ScrubReport {
  int64_t stripes_checked = 0;
  std::vector<int64_t> inconsistent_stripes;  // ascending
};

class Raid6Array {
 public:
  // `registry` receives the array's metrics (counters, histograms,
  // per-disk element access counters); nullptr means the process-global
  // obs::Registry. Metrics are additive across arrays sharing a registry.
  Raid6Array(std::unique_ptr<codes::CodeLayout> layout, size_t element_size,
             int64_t stripes, unsigned threads = 0,
             obs::Registry* registry = nullptr);

  const codes::CodeLayout& layout() const { return *layout_; }
  size_t element_size() const { return element_size_; }
  int64_t stripes() const { return stripes_; }
  // Usable capacity in bytes.
  int64_t capacity() const {
    return stripes_ * layout_->data_count() *
           static_cast<int64_t>(element_size_);
  }

  // Byte-addressed user I/O over the logical data space.
  void write(int64_t offset, std::span<const uint8_t> data);
  void read(int64_t offset, std::span<uint8_t> out);

  // Fault injection and repair.
  void fail_disk(int disk);
  void replace_disk(int disk);  // swap in a blank disk (still failed data!)

  // Hot spares: blank standby disks. While spares remain, fail_disk()
  // immediately swaps one in and rebuilds onto it — the array never stays
  // degraded (a real controller's behaviour).
  void add_hot_spares(int count);
  int hot_spares() const { return hot_spares_; }
  // Reconstructs the contents of every replaced disk. Call after
  // replace_disk; throws if more than two disks are unrecovered.
  void rebuild();

  // Parity scrub: returns the number of stripes whose parities are
  // inconsistent with their data.
  int64_t scrub();
  // Like scrub(), but reports *which* stripes are inconsistent so a
  // repair pass (or a metrics consumer) can act per stripe.
  ScrubReport scrub_report();

  int failed_disk_count() const;
  const MemDisk& disk(int d) const { return *disks_[static_cast<size_t>(d)]; }
  MemDisk& disk(int d) { return *disks_[static_cast<size_t>(d)]; }
  void reset_stats();

  // --- Observability ------------------------------------------------------
  // The registry this array's metrics live in.
  obs::Registry& metrics_registry() const { return *metrics_.reg; }
  // Cumulative element accesses (reads + writes) per physical disk since
  // construction / the last reset_stats() — the runtime equivalent of the
  // simulator's sim::IoStats per-disk tallies; every MemDisk access in
  // this array is element-granular, so the two units coincide.
  std::vector<int64_t> per_disk_element_accesses() const;
  // Copies each disk's cumulative MemDisk counters and fault state into
  // labeled gauges (raid.disk.reads{disk=N}, .writes, .bytes_read,
  // .bytes_written, .failed) of `registry` — an explicit pull for
  // exposition; call right before scraping/printing.
  void publish_disk_metrics(obs::Registry& registry) const;

  // --- Write-hole protection ---------------------------------------------
  // Turns on write-ahead intent journaling for all subsequent writes.
  void enable_journal(int slots = 64);
  bool journal_enabled() const { return journal_.has_value(); }
  // After `element_writes` more element-granular disk writes, every
  // further write throws PowerLossError (data already written persists).
  void inject_power_loss_after(int64_t element_writes);
  bool crashed() const { return crashed_; }
  // Clears the crashed state (reboot). Disk contents and the journal's
  // intent records survive; call journal_recover() next.
  void restart();
  // Re-encodes the parity of every stripe with an open intent record and
  // clears the journal. Returns the number of stripes repaired.
  int64_t journal_recover();
  // Open intent records (for tests/monitoring).
  std::vector<int64_t> journal_open_stripes() const;

 private:
  // All mutating element I/O funnels through here so crash injection sees
  // every write in order.
  void write_element(int disk, int64_t stripe, int row,
                     std::span<const uint8_t> data);
  // All element reads funnel through here so the per-disk access
  // counters see every read (mirrors write_element).
  void read_element(int disk, int64_t stripe, int row, uint8_t* dst);
  // Consumes one unit of the injected write budget (journal records and
  // element writes both count); throws PowerLossError at zero.
  void consume_write_budget();
  void ensure_online() const;
  size_t element_offset(int64_t stripe, int row) const {
    return (static_cast<size_t>(stripe) * layout_->rows() +
            static_cast<size_t>(row)) *
           element_size_;
  }
  // Degraded helper: reconstruct one whole stripe into `out` (all columns).
  void load_stripe_degraded(int64_t stripe, codes::Stripe& out);
  void store_stripe(int64_t stripe, const codes::Stripe& in);

  std::unique_ptr<codes::CodeLayout> layout_;
  size_t element_size_;
  int64_t stripes_;
  AddressMap map_;
  IoPlanner planner_;
  std::vector<std::unique_ptr<MemDisk>> disks_;
  ThreadPool pool_;
  // Disks replaced but not yet rebuilt (their contents are blank).
  std::vector<bool> needs_rebuild_;

  int hot_spares_ = 0;
  ArrayMetrics metrics_;
  std::optional<WriteIntentJournal> journal_;
  // Atomics: rebuild writes flow through the thread pool.
  std::atomic<int64_t> crash_countdown_{-1};  // -1 = no injection armed
  std::atomic<bool> crashed_{false};
};

}  // namespace dcode::raid

// Raid6Array: the RAID-6 policy layer.
//
// This is deliverable (a)'s top-level object and the substrate the
// examples and the read-speed experiments run on. Since the monolith
// split, the array is pure policy over two lower layers:
//
//   Raid6Array            — RMW/RCW choice, degraded paths, journal,
//                           spares, rebuild orchestration (this class)
//   StripeIoEngine        — batched element I/O: coalescing into ranged
//                           vectored transfers, per-disk parallelism,
//                           transient-error retries, element accounting
//   BlockDevice           — MemDisk (RAM), FileDisk (real files), or any
//                           other backend, each behind a composable
//                           FaultInjectingDevice decorator
//
// The logical address space is the concatenated row-major data stream
// (element granularity inside; byte granularity at the public API).
//
// Behaviour:
//  * write — healthy mode uses the planner's RMW/RCW choice, applying
//    parity deltas with the XOR kernels; if any disk is failed, the
//    affected stripes are reconstructed in memory, modified, re-encoded
//    and written back to the surviving disks (stripe-rewrite policy).
//  * read — healthy elements stream straight from the disks; lost ones are
//    rebuilt through the degraded-read planner's equation choices.
//  * fail_disk / replace_disk / rebuild — fault injection and repair.
//    Rebuild fans out across stripes on a thread pool; one failed disk
//    uses the minimal-read recovery plan, two use D-Code's chain decoder
//    (for dcode) or the generic hybrid decoder.
//  * scrub — verifies every parity equation, returning the number of
//    inconsistent stripes (silent-corruption detection).
//  * write-hole protection — with enable_journal(), every stripe update
//    is bracketed by write-ahead intent records; inject_power_loss_after()
//    simulates a crash after N more element writes, restart() brings the
//    array back up, and journal_recover() re-encodes exactly the stripes
//    with open intents (see raid/journal.h).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "codes/code_layout.h"
#include "codes/stripe.h"
#include "obs/metrics.h"
#include "raid/address_map.h"
#include "raid/array_metrics.h"
#include "raid/health_monitor.h"
#include "raid/journal.h"
#include "raid/planner.h"
#include "raid/stripe_io_engine.h"
#include "raid/stripe_lock_table.h"
#include "util/thread_pool.h"
#include "util/token_bucket.h"

namespace dcode::raid {

// Result of a full parity scrub: every stripe whose parity equations do
// not match its data, by stripe id (what a repair pass needs, not just a
// count). On a degraded array, equations with a member on a dead disk
// cannot be evaluated and are tallied in equations_skipped instead of
// aborting the scrub. Repair mode additionally localizes single-element
// corruptions (see ScrubOptions) and reports what it could fix.
struct ScrubReport {
  int64_t stripes_checked = 0;
  std::vector<int64_t> inconsistent_stripes;  // ascending, as *found*
                                              // (before any repair)
  int64_t equations_checked = 0;
  int64_t equations_skipped = 0;   // member on a failed/rebuilding disk
  int64_t elements_located = 0;    // corruptions pinpointed (any channel)
  int64_t elements_repaired = 0;   // ...and rewritten + re-verified
  int64_t stripes_unrepairable = 0;
  // The two distinct reasons an inconsistent stripe goes unrepaired,
  // previously conflated in stripes_unrepairable (their sum):
  int64_t stripes_skipped_degraded = 0;     // dead-disk equations made the
                                            // membership comparison unsound
  int64_t stripes_family_disagreement = 0;  // both families evaluable but
                                            // their syndromes disagree
                                            // (>1 corrupt element)
  // Checksum-sidecar channel (zero when the array runs without
  // integrity or ScrubOptions::use_checksums is off):
  int64_t checksum_mismatches = 0;        // elements the sidecar condemned
  int64_t elements_checksum_located = 0;  // repairs localized by checksum
                                          // (subset of elements_located)
  int64_t elements_stale = 0;  // payload matched the *previous* checksum
                               // (lost/stale write)
  // Parity-consistent stripes whose elements carry stale checksums: a
  // whole-stripe lost write (data AND parity rolled back together) is
  // invisible to every parity equation and unrecoverable from redundancy
  // — reported here, never repaired, never counted inconsistent.
  std::vector<int64_t> stale_stripes;
};

struct ScrubOptions {
  // Localize-and-rewrite single-element corruption: an element is charged
  // when the set of unsatisfied equations exactly matches the set of
  // equations containing it (both parity families agree) and every
  // unsatisfied syndrome carries the same XOR delta.
  bool repair = false;
  // Consult the checksum sidecar first: condemned elements are
  // reconstructed from any surviving equation directly, so repair no
  // longer needs both parity families' syndromes to agree — two-family
  // disagreements (multiple corrupt elements) become localized repairs,
  // and identity tags expose whole-stripe stale writes parity cannot
  // see. Off = the parity-only contract (for A/B tests and arrays
  // without integrity).
  bool use_checksums = true;
};

// Array-level configuration: which device backend to run on and how the
// StripeIoEngine executes user I/O. The defaults reproduce the fast path
// (coalesced + parallel over the process-default backend); benches flip
// the flags off to measure what each layer buys.
struct ArrayOptions {
  DeviceFactory device_factory;   // null => default_device_factory()
  bool coalesce = true;           // merge adjacent same-disk accesses
  bool parallel_user_io = true;   // fan per-disk runs across the pool
  int transient_retry_limit = 3;  // engine retries per transfer
  int64_t retry_backoff_base_ns = 20'000;  // engine retry backoff base
  int64_t retry_deadline_ns = 0;  // per-transfer retry deadline (0 = off)
  // Health-monitor escalation thresholds (see raid/health_monitor.h).
  HealthPolicy health;
  // When true, a failure that promotes a hot spare rebuilds on a
  // background worker thread (rate-limited by rebuild_rate) while
  // foreground I/O continues; when false, fail_disk() rebuilds
  // synchronously before returning (the legacy behaviour).
  bool background_rebuild = false;
  // Background rebuild throttle in stripes/second; <= 0 = unthrottled.
  double rebuild_rate_stripes_per_sec = 0.0;
  double rebuild_burst_stripes = 8.0;
  // Slots in the sharded stripe lock table (each slot is one
  // cache-line-padded mutex; stripes hash to slots by modulo). More
  // slots = fewer false conflicts between unrelated stripes under high
  // pipeline concurrency.
  int stripe_lock_slots = 64;
  // Slow-op watchdog: a read/write whose wall time reaches this threshold
  // bumps raid.slow_ops, emits a trace event, and asks the global
  // FlightRecorder for a dump (rate-limited; written only when a dump
  // path is configured). 0 disables the watchdog.
  int64_t slow_op_threshold_ns = 0;
  // Convenience: non-empty sets the global FlightRecorder's auto-dump
  // path at construction (same effect as DCODE_FLIGHT_DUMP; the recorder
  // is process-wide, so the last array to set this wins).
  std::string flight_dump_path;
  // --- end-to-end integrity (see raid/integrity.h) ------------------------
  // Maintain a per-element checksum + write-identity sidecar on every
  // disk. This is the only channel that catches the write-failure
  // families parity is structurally blind to (misdirected, torn within
  // an acknowledged element, lost/stale writes).
  bool integrity_checksums = true;
  // Verify every element payload against the sidecar on read; condemned
  // elements are transparently re-served from parity. Off = sidecar
  // still maintained (scrub can use it) but reads skip the hash.
  bool verify_reads = true;
  // Non-empty: persist each disk's sidecar at <dir>/disk<N>.sum with
  // torn-write-safe dual slots (FileDisk deployments survive restart);
  // empty keeps sidecars in memory only (MemDisk).
  std::string integrity_sidecar_dir;
};

class Raid6Array : private WriteGate {
 public:
  // `registry` receives the array's metrics (counters, histograms,
  // per-disk element access counters); nullptr means the process-global
  // obs::Registry. Metrics are additive across arrays sharing a registry.
  Raid6Array(std::unique_ptr<codes::CodeLayout> layout, size_t element_size,
             int64_t stripes, unsigned threads = 0,
             obs::Registry* registry = nullptr, ArrayOptions options = {});
  ~Raid6Array();

  const codes::CodeLayout& layout() const { return *layout_; }
  size_t element_size() const { return element_size_; }
  int64_t stripes() const { return stripes_; }
  // Usable capacity in bytes.
  int64_t capacity() const {
    return stripes_ * layout_->data_count() *
           static_cast<int64_t>(element_size_);
  }

  // Byte-addressed user I/O over the logical data space.
  void write(int64_t offset, std::span<const uint8_t> data);
  void read(int64_t offset, std::span<uint8_t> out);

  // Makes every acknowledged write durable on every live device (fsync
  // for file-backed disks). Returns the number of devices flushed.
  int flush() { return engine_.flush(); }

  // Fault injection and repair.
  void fail_disk(int disk);
  void replace_disk(int disk);  // swap in a blank disk (still failed data!)

  // Hot spares: blank standby disks. While spares remain, a declared
  // failure (manual fail_disk() or a health-monitor escalation)
  // immediately promotes one; the rebuild onto it runs synchronously
  // (legacy default) or on the background worker
  // (ArrayOptions::background_rebuild) — either way the array never
  // stays degraded while spares last (a real controller's behaviour).
  void add_hot_spares(int count);
  int hot_spares() const {
    return hot_spares_.load(std::memory_order_relaxed);
  }
  // Reconstructs the contents of every replaced disk, synchronously
  // (joins any background worker first). Call after replace_disk; throws
  // if more than two disks are unrecovered.
  void rebuild();
  // Blocks until no background rebuild worker is active. Returns true
  // when every replaced disk has been fully reconstructed.
  bool wait_for_rebuild();
  bool rebuild_in_progress() const;
  // Retunes the background rebuild throttle (stripes/second; <= 0 =
  // unthrottled). Applies to the current pass too.
  void set_rebuild_rate(double stripes_per_sec, double burst = 8.0);

  // The health state machine watching this array's devices.
  HealthMonitor& health() { return health_; }
  const HealthMonitor& health() const { return health_; }

  // Parity scrub: returns the number of stripes whose parities are
  // inconsistent with their data.
  int64_t scrub();
  // Like scrub(), but reports *which* stripes are inconsistent so a
  // repair pass (or a metrics consumer) can act per stripe — and, with
  // ScrubOptions::repair, localizes and rewrites single-element silent
  // corruptions. Works on a degraded array (unverifiable equations are
  // skipped and counted). Must not run concurrently with writes or an
  // active rebuild: scrub chunks execute on the same pool that user
  // batches fan out on, so taking stripe locks here could deadlock —
  // quiesce first (wait_for_rebuild()).
  ScrubReport scrub_report(ScrubOptions options = {});

  int failed_disk_count() const;
  const DiskHandle& disk(int d) const { return engine_.disk(d); }
  DiskHandle& disk(int d) { return engine_.disk(d); }
  // The batched I/O layer under this array (device op counts, options).
  StripeIoEngine& io_engine() { return engine_; }
  const StripeIoEngine& io_engine() const { return engine_; }
  void reset_stats();

  // --- Observability ------------------------------------------------------
  // The registry this array's metrics live in.
  obs::Registry& metrics_registry() const { return *metrics_.reg; }
  // Cumulative element accesses (reads + writes) per physical disk since
  // construction / the last reset_stats() — the runtime equivalent of the
  // simulator's sim::IoStats per-disk tallies; the engine accounts one
  // count per element no matter how transfers were coalesced, so the two
  // units coincide.
  std::vector<int64_t> per_disk_element_accesses() const;
  // Copies each disk's cumulative element counters and fault state into
  // labeled gauges (raid.disk.reads{disk=N}, .writes, .bytes_read,
  // .bytes_written, .failed), plus backend-labeled device-level op gauges
  // (raid.disk.device_read_ops{backend=...,disk=N}, .device_write_ops —
  // one count per ranged transfer, the coalescing ratio's denominator) —
  // an explicit pull for exposition; call right before scraping/printing.
  void publish_disk_metrics(obs::Registry& registry) const;

  // --- Write-hole protection ---------------------------------------------
  // Turns on write-ahead intent journaling for all subsequent writes.
  void enable_journal(int slots = 64);
  bool journal_enabled() const { return journal_.has_value(); }
  // After `element_writes` more element-granular disk writes, every
  // further write throws PowerLossError (data already written persists).
  void inject_power_loss_after(int64_t element_writes);
  bool crashed() const { return crashed_.load(std::memory_order_relaxed); }
  // Clears the crashed state (reboot). Disk contents and the journal's
  // intent records survive; call journal_recover() next.
  void restart();
  // Re-encodes the parity of every stripe with an open intent record and
  // clears the journal. Returns the number of stripes repaired.
  int64_t journal_recover();
  // Open intent records (for tests/monitoring).
  std::vector<int64_t> journal_open_stripes() const;

 private:
  // How many times an I/O path re-plans around a disk that failed
  // mid-operation before giving up. Each genuine failure consumes one
  // attempt, so anything past the code's fault tolerance exits quickly.
  static constexpr int kMaxFailoverAttempts = 4;

  // WriteGate: the engine admits every element write through here, so
  // injected power loss sees the same write stream the monolith produced.
  // (Defined with the rest of the crash machinery in array_journal.cc.)
  bool armed() const override;
  void admit() override;

  // The byte range of element `g` covered by a user op at [offset,
  // offset+len): *elem_begin within the element, *src_begin within the
  // user buffer.
  static void overlay_range(int64_t g, int64_t offset, int64_t len,
                            int64_t esize, size_t* elem_begin,
                            size_t* src_begin, size_t* out_len);

  void ensure_online() const;
  bool needs_rebuild(int d) const {
    return needs_rebuild_[static_cast<size_t>(d)].load(
        std::memory_order_acquire);
  }
  bool disk_degraded(int d) const {
    return engine_.disk(d).failed() || needs_rebuild(d);
  }
  // Per-stripe degradedness: a rebuilding disk serves stripes below its
  // watermark normally and only counts as degraded above it — what lets
  // foreground reads go back to the fast path behind the rebuild front.
  bool disk_degraded_for_stripe(int d, int64_t stripe) const {
    if (engine_.disk(d).failed()) return true;
    return needs_rebuild(d) && stripe >= engine_.disk(d).readable_stripes();
  }
  // Degraded for ANY stripe in [first_stripe, last_stripe] — the
  // watermark is monotonic, so checking the last stripe suffices.
  bool disk_degraded_for_range(int d, int64_t last_stripe) const {
    return disk_degraded_for_stripe(d, last_stripe);
  }
  // Locks the (sharded) mutex serializing mutators of `stripe`; blocked
  // time lands in raid.stripe_lock_wait_ns.
  std::unique_lock<std::mutex> stripe_lock(int64_t stripe) {
    return stripe_locks_.lock(stripe);
  }

  // Escalation handler (health-monitor callback): promotes a hot spare
  // into the failed slot when one is available and starts/extends the
  // background rebuild. Never rebuilds inline — it can run on a pool
  // worker mid-batch.
  void handle_disk_failure(int disk);
  // Claims a spare (if any) and swaps a blank into `disk`'s slot with the
  // watermark protocol (needs_rebuild -> watermark 0 -> replace). Returns
  // true when a spare was promoted.
  bool try_promote_spare(int disk);
  // Spawns the background worker if idle (no-op when one is running —
  // the worker rescans for new targets between passes).
  void start_background_rebuild();
  void background_rebuild_worker();
  // One pass over the stripes for the given targets; returns false when
  // the pass had to abort (crash / unrecoverable). Targets are re-scanned
  // by the caller.
  bool rebuild_pass(const std::vector<int>& targets);
  // Marks targets whose watermark reached stripes_ fully rebuilt.
  void finish_rebuilt_targets(const std::vector<int>& targets);
  // Degraded helper: reconstruct one whole stripe into `out` (all
  // columns). `verify` = false reads surviving elements raw (journal
  // replay judges the bytes itself).
  void load_stripe_degraded(int64_t stripe, codes::Stripe& out,
                            bool verify = true);
  // Write-path integrity repair: re-reads `stripe` raw, classifies every
  // live element against the sidecar, reconstructs the condemned ones
  // from surviving equations and writes them back. Called under the
  // stripe lock when an RMW pre-read fails verification (folding a bad
  // old value into a parity delta would corrupt parity). Defined in
  // scrub.cc beside the scrub-time twin of the same algorithm.
  void clean_stripe_integrity(int64_t stripe);
  // Last-resort write path when clean_stripe_integrity cannot converge
  // (e.g. a misdirected data write detected at the RMW parity pre-read:
  // the victim column is condemned while every parity that could
  // reconstruct it is still pre-update, so neither channel can repair
  // it in place). Reconstructs the salvageable old state, overlays the
  // caller's data, re-encodes parity from scratch and rewrites the
  // stripe so every sidecar record is refreshed. Defined in scrub.cc.
  void salvage_stripe_rewrite(int64_t stripe, int64_t g, int64_t stripe_end,
                              int64_t offset, std::span<const uint8_t> data);
  // Healthy-path RMW for the elements [g, stripe_end] of one stripe.
  void write_stripe_rmw(int64_t stripe, int64_t g, int64_t stripe_end,
                        int64_t offset, std::span<const uint8_t> data);
  // Degraded-path stripe rewrite for the same element range.
  void write_stripe_degraded(int64_t stripe, int64_t g, int64_t stripe_end,
                             int64_t offset, std::span<const uint8_t> data);
  void read_healthy(int64_t first, int64_t last, int64_t offset,
                    std::span<uint8_t> out);
  void read_degraded(int64_t first, int64_t last, int64_t offset,
                     std::span<uint8_t> out, const std::vector<int>& failed);

  std::unique_ptr<codes::CodeLayout> layout_;
  size_t element_size_;
  int64_t stripes_;
  AddressMap map_;
  IoPlanner planner_;
  ThreadPool pool_;
  ArrayMetrics metrics_;
  StripeIoEngine engine_;
  HealthMonitor health_;
  ArrayOptions options_;
  // Disks replaced but not yet rebuilt (their contents are blank above
  // the watermark). Atomic: read on pool workers, flipped by promotion
  // and the rebuild worker.
  std::vector<std::atomic<bool>> needs_rebuild_;

  // Stripe-level write serialization: foreground writes, the background
  // rebuild worker, and journal recovery each lock the stripe they
  // mutate (sharded — collisions just serialize unrelated stripes; slot
  // count via ArrayOptions::stripe_lock_slots, each slot on its own
  // cache line). Engine pool tasks never take these, so there is no
  // lock/pool cycle.
  StripeLockTable stripe_locks_;

  std::atomic<int> hot_spares_{0};
  // Serializes spare promotion against rebuild completion, so a disk
  // re-failing exactly as its rebuild finishes cannot interleave the
  // needs_rebuild/watermark updates. Leaf lock: nothing is acquired
  // under it.
  std::mutex promote_mu_;

  // Background rebuild worker: at most one thread, restarted on demand;
  // promotions while a pass runs are picked up by the between-pass
  // rescan under rebuild_mu_.
  mutable std::mutex rebuild_mu_;
  std::condition_variable rebuild_cv_;
  bool rebuild_running_ = false;
  std::thread rebuild_thread_;
  std::atomic<bool> stop_rebuild_{false};
  TokenBucket rebuild_throttle_;

  std::optional<WriteIntentJournal> journal_;
  // Atomics: rebuild writes flow through the thread pool.
  std::atomic<int64_t> crash_countdown_{-1};  // -1 = no injection armed
  std::atomic<bool> crashed_{false};
};

}  // namespace dcode::raid

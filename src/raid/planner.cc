#include "raid/planner.h"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <set>

namespace dcode::raid {

namespace {

using codes::CodeLayout;
using codes::Element;
using codes::Equation;
using codes::make_element;

// Requested logical range grouped by stripe, preserving logical order.
struct StripeSlice {
  int64_t stripe;
  std::vector<Element> elements;
};

std::vector<StripeSlice> slice_by_stripe(const AddressMap& map, int64_t start,
                                         int len) {
  DCODE_CHECK(start >= 0 && len > 0, "invalid logical range");
  std::vector<StripeSlice> slices;
  for (int64_t g = start; g < start + len; ++g) {
    auto loc = map.locate(g);
    if (slices.empty() || slices.back().stripe != loc.stripe) {
      slices.push_back(StripeSlice{loc.stripe, {}});
    }
    slices.back().elements.push_back(loc.element);
  }
  return slices;
}

// A dry-run peeling schedule for a set of failed columns: for every
// recoverable lost element, the equation that rebuilds it and its
// position in peeling order (dependencies always come earlier). Elements
// peeling cannot reach keep step -1.
struct PeelSchedule {
  // Indexed by cell (row * cols + col): equation used, or -1.
  std::vector<int> equation;
  // Resolution order as cell indices.
  std::vector<int> order;
  bool complete = false;  // every lost element reachable
};

PeelSchedule build_peel_schedule(const CodeLayout& layout,
                                 const std::vector<int>& failed_cols) {
  const size_t ncells = static_cast<size_t>(layout.rows()) * layout.cols();
  auto cell = [&](Element e) {
    return static_cast<size_t>(e.row) * layout.cols() + e.col;
  };

  std::vector<char> lost(ncells, 0);
  size_t remaining = 0;
  for (int c : failed_cols) {
    for (int r = 0; r < layout.rows(); ++r) {
      lost[cell(make_element(r, c))] = 1;
      ++remaining;
    }
  }

  PeelSchedule sched;
  sched.equation.assign(ncells, -1);
  const auto& eqs = layout.equations();
  std::vector<int> missing(eqs.size(), 0);
  for (size_t qi = 0; qi < eqs.size(); ++qi) {
    if (lost[cell(eqs[qi].parity)]) ++missing[qi];
    for (const Element& e : eqs[qi].sources) {
      if (lost[cell(e)]) ++missing[qi];
    }
  }

  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (size_t qi = 0; qi < eqs.size(); ++qi) {
      if (missing[qi] != 1) continue;
      const Equation& q = eqs[qi];
      Element target = q.parity;
      if (!lost[cell(target)]) {
        for (const Element& e : q.sources) {
          if (lost[cell(e)]) {
            target = e;
            break;
          }
        }
      }
      lost[cell(target)] = 0;
      sched.equation[cell(target)] = static_cast<int>(qi);
      sched.order.push_back(static_cast<int>(cell(target)));
      for (int mq : layout.equations_containing(target.row, target.col)) {
        --missing[static_cast<size_t>(mq)];
      }
      --remaining;
      progress = true;
    }
  }
  sched.complete = remaining == 0;
  return sched;
}

}  // namespace

std::vector<int> dirty_parity_closure(
    const CodeLayout& layout, std::span<const Element> written) {
  std::vector<char> eq_dirty(layout.equations().size(), 0);
  std::vector<int> dirty;
  std::deque<Element> work(written.begin(), written.end());
  while (!work.empty()) {
    Element x = work.front();
    work.pop_front();
    for (int qi : layout.equations_containing(x.row, x.col)) {
      const Equation& q = layout.equations()[static_cast<size_t>(qi)];
      if (q.parity == x) continue;  // x *stores* this equation
      if (!eq_dirty[static_cast<size_t>(qi)]) {
        eq_dirty[static_cast<size_t>(qi)] = 1;
        dirty.push_back(qi);
        work.push_back(q.parity);
      }
    }
  }
  // Topological order (the layout's encode order restricted to dirty).
  std::vector<int> rank(layout.equations().size(), 0);
  const auto& order = layout.encode_order();
  for (size_t i = 0; i < order.size(); ++i)
    rank[static_cast<size_t>(order[i])] = static_cast<int>(i);
  std::sort(dirty.begin(), dirty.end(),
            [&](int a, int b) { return rank[static_cast<size_t>(a)] <
                                       rank[static_cast<size_t>(b)]; });
  return dirty;
}

IoPlan IoPlanner::plan_read(int64_t start, int len) const {
  IoPlan plan;
  plan.accesses.reserve(static_cast<size_t>(len));
  for (int64_t g = start; g < start + len; ++g) {
    auto loc = map_->locate(g);
    plan.accesses.push_back(
        IoAccess{loc.stripe, loc.element, loc.disk, /*is_write=*/false});
  }
  return plan;
}

IoPlan IoPlanner::plan_write(int64_t start, int len,
                             WritePolicy policy) const {
  const CodeLayout& layout = map_->layout();
  IoPlan plan;

  for (const StripeSlice& slice : slice_by_stripe(*map_, start, len)) {
    std::set<Element> written(slice.elements.begin(), slice.elements.end());
    std::vector<int> dirty = dirty_parity_closure(layout, slice.elements);

    std::set<Element> dirty_parities;
    for (int qi : dirty)
      dirty_parities.insert(layout.equations()[static_cast<size_t>(qi)].parity);

    // RCW read set: untouched sources of every dirty equation.
    std::set<Element> rcw_reads;
    for (int qi : dirty) {
      for (const Element& e :
           layout.equations()[static_cast<size_t>(qi)].sources) {
        if (!written.count(e) && !dirty_parities.count(e)) rcw_reads.insert(e);
      }
    }

    const size_t rmw_cost = 2 * (written.size() + dirty_parities.size());
    const size_t rcw_cost =
        rcw_reads.size() + written.size() + dirty_parities.size();

    bool use_rmw = policy == WritePolicy::kReadModifyWrite ||
                   (policy == WritePolicy::kAuto && rmw_cost <= rcw_cost);

    auto emit = [&](const Element& e, bool is_write) {
      plan.accesses.push_back(IoAccess{
          slice.stripe, e, map_->physical_disk(slice.stripe, e.col),
          is_write});
    };

    if (use_rmw) {
      for (const Element& e : written) emit(e, false);
      for (const Element& e : dirty_parities) emit(e, false);
    } else {
      for (const Element& e : rcw_reads) emit(e, false);
    }
    for (const Element& e : written) emit(e, true);
    for (const Element& e : dirty_parities) emit(e, true);
  }
  return plan;
}

IoPlan IoPlanner::plan_degraded_write(int64_t start, int len,
                                      std::span<const int> failed_disks) const {
  if (failed_disks.empty()) return plan_write(start, len);
  const CodeLayout& layout = map_->layout();
  IoPlan plan;

  auto is_failed = [&](int disk) {
    return std::find(failed_disks.begin(), failed_disks.end(), disk) !=
           failed_disks.end();
  };

  for (const StripeSlice& slice : slice_by_stripe(*map_, start, len)) {
    const int64_t s = slice.stripe;
    auto disk_of = [&](const Element& e) {
      return map_->physical_disk(s, e.col);
    };

    // Does this stripe involve a failed disk at all (data touched, or any
    // parity hosted there)?
    bool stripe_degraded = false;
    for (int c = 0; c < layout.cols() && !stripe_degraded; ++c) {
      if (is_failed(map_->physical_disk(s, c))) stripe_degraded = true;
    }
    if (!stripe_degraded) {
      // Healthy stripe: delegate to the normal per-stripe write plan.
      IoPlan sub = plan_write(
          static_cast<int64_t>(s) * layout.data_count() +
              layout.data_index(slice.elements.front().row,
                                slice.elements.front().col),
          static_cast<int>(slice.elements.size()));
      plan.accesses.insert(plan.accesses.end(), sub.accesses.begin(),
                           sub.accesses.end());
      continue;
    }

    // Stripe-rewrite: read all surviving cells, write touched surviving
    // data plus every surviving parity.
    std::set<Element> touched(slice.elements.begin(), slice.elements.end());
    for (int r = 0; r < layout.rows(); ++r) {
      for (int c = 0; c < layout.cols(); ++c) {
        Element e = make_element(r, c);
        if (is_failed(disk_of(e))) continue;
        plan.accesses.push_back(IoAccess{s, e, disk_of(e), false});
        bool write_back = layout.is_parity(r, c) || touched.count(e) > 0;
        if (write_back) {
          plan.accesses.push_back(IoAccess{s, e, disk_of(e), true});
        }
      }
    }
  }
  return plan;
}

IoPlan IoPlanner::plan_degraded_read(int64_t start, int len,
                                     std::span<const int> failed_disks) const {
  const CodeLayout& layout = map_->layout();
  IoPlan plan;

  auto is_failed = [&](int disk) {
    return std::find(failed_disks.begin(), failed_disks.end(), disk) !=
           failed_disks.end();
  };

  for (const StripeSlice& slice : slice_by_stripe(*map_, start, len)) {
    const int64_t s = slice.stripe;
    auto disk_of = [&](const Element& e) {
      return map_->physical_disk(s, e.col);
    };

    // Elements whose bytes the plan already has (read or reconstructed).
    std::set<Element> available;
    std::vector<Element> lost;
    for (const Element& e : slice.elements) {
      if (is_failed(disk_of(e))) {
        lost.push_back(e);
      } else if (available.insert(e).second) {
        plan.accesses.push_back(IoAccess{s, e, disk_of(e), false});
      }
    }

    // Lazily-built peel schedule for this stripe's failed columns (used
    // when single-equation reconstruction is impossible).
    std::optional<PeelSchedule> sched;
    auto schedule = [&]() -> const PeelSchedule& {
      if (!sched) {
        std::vector<int> failed_cols;
        for (int c = 0; c < layout.cols(); ++c) {
          if (is_failed(map_->physical_disk(s, c))) failed_cols.push_back(c);
        }
        sched = build_peel_schedule(layout, failed_cols);
      }
      return *sched;
    };
    auto cell_of = [&](Element x) {
      return static_cast<size_t>(x.row) * layout.cols() + x.col;
    };

    // Chain resolution: read the survivors an equation needs, recursing
    // into lost members first (their schedule steps precede ours).
    auto resolve_chain = [&](auto&& self, Element x) -> void {
      if (available.count(x)) return;
      int qi = schedule().equation[cell_of(x)];
      DCODE_ASSERT(qi >= 0, "chain resolution on an unpeelable element");
      const Equation& q = layout.equations()[static_cast<size_t>(qi)];
      auto need = [&](const Element& m) {
        if (m == x || available.count(m)) return;
        if (is_failed(disk_of(m))) {
          self(self, m);
        } else {
          available.insert(m);
          plan.accesses.push_back(IoAccess{s, m, disk_of(m), false});
        }
      };
      need(q.parity);
      for (const Element& m : q.sources) need(m);
      plan.reconstructions.push_back(Reconstruction{s, x, qi});
      available.insert(x);
    };

    bool full_decode_done = false;
    for (const Element& e : lost) {
      if (full_decode_done) break;
      if (available.count(e)) continue;  // already rebuilt en passant

      // Candidate equations: `e` must be their only member on a failed disk.
      int best_eq = -1;
      size_t best_extra = SIZE_MAX;
      for (int qi : layout.equations_containing(e.row, e.col)) {
        const Equation& q = layout.equations()[static_cast<size_t>(qi)];
        bool usable = true;
        size_t extra = 0;
        auto consider = [&](const Element& m) {
          if (m == e) return;
          if (is_failed(disk_of(m)) && !available.count(m)) {
            usable = false;
          } else if (!available.count(m)) {
            ++extra;
          }
        };
        consider(q.parity);
        for (const Element& m : q.sources) consider(m);
        if (usable && extra < best_extra) {
          best_extra = extra;
          best_eq = qi;
        }
      }

      if (best_eq < 0) {
        // Every equation of `e` crosses another failed disk. If the code
        // peels, rebuild exactly the recovery-chain prefix `e` depends on.
        if (schedule().equation[cell_of(e)] >= 0) {
          resolve_chain(resolve_chain, e);
          continue;
        }
        // Unpeelable (EVENODD / liberation coupling): fall back to a full
        // stripe decode — read all surviving elements not yet in the
        // plan; everything lost becomes available.
        for (int r = 0; r < layout.rows(); ++r) {
          for (int c = 0; c < layout.cols(); ++c) {
            Element m = codes::make_element(r, c);
            if (is_failed(disk_of(m))) continue;
            if (available.insert(m).second) {
              plan.accesses.push_back(IoAccess{s, m, disk_of(m), false});
            }
          }
        }
        for (const Element& l : lost) {
          if (!available.count(l)) {
            plan.reconstructions.push_back(Reconstruction{s, l, -1});
            available.insert(l);
          }
        }
        full_decode_done = true;
        continue;
      }

      const Equation& q = layout.equations()[static_cast<size_t>(best_eq)];
      auto pull = [&](const Element& m) {
        if (m == e || available.count(m)) return;
        available.insert(m);
        plan.accesses.push_back(IoAccess{s, m, disk_of(m), false});
      };
      pull(q.parity);
      for (const Element& m : q.sources) pull(m);
      plan.reconstructions.push_back(Reconstruction{s, e, best_eq});
      available.insert(e);
    }
  }
  return plan;
}

}  // namespace dcode::raid

// StripePipeline: asynchronous submission in front of Raid6Array.
//
// The array is synchronous policy-per-call and the engine only fans out
// *within* one stripe op, so a single caller thread serializes the whole
// array no matter how balanced D-Code's layout is. The pipeline adds the
// missing inter-op concurrency:
//
//   submit_read / submit_write            (any thread, returns OpFuture)
//        │  bounded OpQueue — backpressure, arrival-order seq numbers
//        ▼
//   pop + write-merge                     (worker, atomic with…)
//        ▼
//   StripeRangeLock admission ticket      (…registration, in pop order)
//        ▼
//   Raid6Array::read / write              (N workers concurrently)
//        ▼
//   future completion                     (wait()/get() rethrows errors)
//
// Ordering contract: ops whose stripe ranges overlap (with at least one
// writer) execute in exactly admission order; everything else runs
// concurrently. Merged writes are applied in admission order inside the
// batch (later source wins on byte overlap), so the array contents after
// any run equal a serial array that applied the same ops in admission
// order — tests/pipeline_test.cc proves this bit-for-bit.
//
// Observability: each submitted op carries its own op id and enqueue
// timestamp; the worker binds an OpContext before calling the array, so
// the existing OpGuard adopts it — the causal span tree, flight
// recorder, and coordinated-omission-free latency accounting all hold
// per pipelined op (a merged batch executes under its head op's
// identity). Queue depth, admission wait, and merge width are exported
// as pipeline.* metrics in the array's registry.
//
// Fault interplay: workers call the array's public ops, so the PR 5
// machinery — mid-op failover replay, rebuild watermark, device
// generation checks, journal bracketing, power-loss gate — covers
// in-flight pipelined ops unchanged. A failed op surfaces its exception
// (DiskFailedError, PowerLossError, …) on every future of its batch.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "raid/op_queue.h"
#include "raid/raid6_array.h"
#include "raid/stripe_lock_table.h"

namespace dcode::raid {

struct PipelineOptions {
  int workers = 4;          // executor threads
  size_t queue_depth = 256; // push() backpressure threshold
  bool merge_writes = true;
  size_t merge_limit = 16;  // max writes coalesced into one batch
};

// Completion handle for one submitted op. Copyable; all copies observe
// the same completion.
class OpFuture {
 public:
  OpFuture() = default;
  explicit OpFuture(std::shared_ptr<OpState> st) : st_(std::move(st)) {}

  bool valid() const { return st_ != nullptr; }
  // Blocks until the op completes, then rethrows its error if it failed.
  void get() {
    st_->wait();
    std::lock_guard<std::mutex> l(st_->mu);
    if (st_->error) std::rethrow_exception(st_->error);
  }
  // Blocks without rethrowing. Returns true iff the op succeeded.
  bool wait() {
    st_->wait();
    std::lock_guard<std::mutex> l(st_->mu);
    return st_->error == nullptr;
  }
  bool ready() const { return st_->ready(); }
  uint64_t op_id() const { return st_->op_id; }
  // Admission order; assigned when submit enqueued the op.
  uint64_t sequence() const { return st_->seq; }
  // Submit-to-completion wall time. Valid after completion.
  int64_t latency_ns() const {
    std::lock_guard<std::mutex> l(st_->mu);
    return st_->complete_ns - st_->enqueue_ns;
  }

 private:
  std::shared_ptr<OpState> st_;
};

class StripePipeline {
 public:
  // Metrics land in `array.metrics_registry()` under pipeline.*.
  explicit StripePipeline(Raid6Array& array, PipelineOptions options = {});
  // Closes the queue, drains every queued op, joins the workers.
  ~StripePipeline();

  StripePipeline(const StripePipeline&) = delete;
  StripePipeline& operator=(const StripePipeline&) = delete;

  // Asynchronous user I/O. Write data is copied before submit returns;
  // a read's destination must stay valid until its future completes.
  // Blocks only on queue backpressure. Throws std::runtime_error if the
  // pipeline is shutting down.
  OpFuture submit_read(int64_t offset, std::span<uint8_t> out);
  OpFuture submit_write(int64_t offset, std::span<const uint8_t> data);

  // Blocks until every op submitted so far has completed.
  void drain();

  Raid6Array& array() { return array_; }
  const PipelineOptions& options() const { return options_; }

 private:
  struct Metrics {
    obs::Gauge* queue_depth;
    obs::Histogram* admission_wait_ns;
    obs::Histogram* merge_width;
    obs::Counter* ops_submitted;
    obs::Counter* ops_completed;
    obs::Counter* writes_merged;
    obs::Counter* batches;
  };

  static Metrics resolve_metrics(Raid6Array& array);
  void worker_loop();
  void execute(OpBatch& batch);
  OpFuture submit(PendingOp op);
  // Stripe range covered by the byte range [offset, offset+len).
  void stripe_range(int64_t offset, int64_t len, int64_t* first,
                    int64_t* last) const;

  Raid6Array& array_;
  PipelineOptions options_;
  Metrics metrics_;
  StripeRangeLock range_lock_;
  OpQueue queue_;

  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace dcode::raid

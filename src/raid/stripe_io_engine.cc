#include "raid/stripe_io_engine.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>

#include "obs/flight_recorder.h"
#include "obs/op_context.h"
#include "obs/trace.h"
#include "raid/journal.h"
#include "xorops/checksum.h"

namespace dcode::raid {

namespace {

// Upper bound on elements per ranged transfer: keeps iovec arrays small
// and each pool task's critical section bounded. FileDisk additionally
// chunks at the syscall layer (IOV_MAX).
constexpr size_t kMaxRunElements = 1024;

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// splitmix64: hashes the (seed, disk, attempt, serial) tuple into the
// jitter fraction — stateless, so concurrent retry loops never contend
// on a shared RNG and the same tuple always jitters the same way.
uint64_t mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

StripeIoEngine::StripeIoEngine(int disks, size_t disk_size,
                               size_t element_size, int rows,
                               ThreadPool& pool, ArrayMetrics* metrics,
                               WriteGate* gate, Options options)
    : disk_size_(disk_size),
      element_size_(element_size),
      rows_(rows),
      pool_(&pool),
      metrics_(metrics),
      gate_(gate),
      options_(std::move(options)) {
  DCODE_CHECK(disks > 0, "engine needs at least one disk");
  DCODE_CHECK(element_size_ > 0, "element size must be positive");
  DCODE_CHECK(rows_ > 0, "rows must be positive");
  if (!options_.factory) options_.factory = default_device_factory();
  disks_.reserve(static_cast<size_t>(disks));
  for (int d = 0; d < disks; ++d) {
    obs::Counter* er = nullptr;
    obs::Counter* ew = nullptr;
    if (metrics_ != nullptr) {
      er = metrics_->disk_element_reads[static_cast<size_t>(d)];
      ew = metrics_->disk_element_writes[static_cast<size_t>(d)];
    }
    std::unique_ptr<ChecksumStore> store;
    if (options_.integrity) {
      store = std::make_unique<ChecksumStore>(
          static_cast<int64_t>(disk_size_ / element_size_));
      if (!options_.integrity_sidecar_dir.empty()) {
        store->attach_file(options_.integrity_sidecar_dir + "/disk" +
                           std::to_string(d) + ".sum");
      }
    }
    disks_.push_back(std::make_unique<DiskHandle>(
        options_.factory(d, disk_size_), er, ew, std::move(store)));
  }
}

void StripeIoEngine::replace_disk(int d) {
  disk(d).faults().replace(options_.factory(d, disk_size_));
  // A blank replacement has no history: forget every record so rebuilt
  // elements re-register as they are written rather than reading as
  // corrupt against the dead disk's sums.
  if (ChecksumStore* store = disk(d).integrity()) store->invalidate_all();
}

int StripeIoEngine::flush() {
  int flushed = 0;
  for (auto& h : disks_) {
    if (h->failed()) continue;
    DCODE_CHECK(h->faults().flush().ok(), "device flush failed");
    if (ChecksumStore* store = h->integrity()) store->flush();
    ++flushed;
  }
  return flushed;
}

void StripeIoEngine::backoff_sleep(int disk, int attempt) const {
  const int64_t base = options_.retry_backoff_base_ns;
  if (base <= 0) return;
  int64_t delay = base << std::min(attempt, 20);
  delay = std::min(delay, std::max(base, options_.retry_backoff_max_ns));
  // Jitter into [delay/2, delay) so synchronized retry loops desynchronize
  // but the delay stays deterministic for a given (seed, disk, attempt,
  // serial) tuple.
  const uint64_t serial =
      backoff_serial_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t h =
      mix64(options_.backoff_seed ^ (static_cast<uint64_t>(disk) << 32) ^
            (static_cast<uint64_t>(attempt) << 48) ^ serial);
  const int64_t half = delay / 2;
  if (half > 0) delay = half + static_cast<int64_t>(h % static_cast<uint64_t>(half));
  if (metrics_ != nullptr) metrics_->engine_retry_backoff_ns->observe(delay);
  std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
}

IoResult StripeIoEngine::with_retries(
    FaultInjectingDevice& dev, uint64_t op_id,
    const std::function<IoResult()>& io) const {
  const int d = dev.id();
  const int64_t t0 = now_ns();
  IoResult r = io();
  int attempt = 0;
  while (r.status == IoStatus::kTransient) {
    if (monitor_ != nullptr) monitor_->record_transient(d);
    obs::FlightRecorder::global().record(obs::FlightEventKind::kRetry, op_id,
                                         d, attempt,
                                         static_cast<int64_t>(r.status));
    const bool out_of_attempts = attempt >= options_.transient_retry_limit;
    const bool past_deadline = options_.retry_deadline_ns > 0 &&
                               now_ns() - t0 >= options_.retry_deadline_ns;
    if (out_of_attempts || past_deadline) {
      // Retry budget exhausted: escalate to fail-stop, the way a
      // controller offlines a drive that keeps erroring — but leave a
      // telemetry trail, a silent fail-stop is indistinguishable from a
      // pulled drive.
      dev.fail();
      if (metrics_ != nullptr) metrics_->engine_retry_exhausted->inc();
      obs::FlightRecorder::global().record(obs::FlightEventKind::kFailStop,
                                           op_id, d, attempt, 0);
      obs::Span span(obs::TraceLog::global(), "engine.retry_exhausted",
                     {{"disk", d},
                      {"attempts", attempt},
                      {"reason", out_of_attempts ? "attempts" : "deadline"}});
      if (monitor_ != nullptr) monitor_->report_fail_stop(d);
      return IoResult::failed();
    }
    if (metrics_ != nullptr) metrics_->engine_transient_retries->inc();
    backoff_sleep(d, attempt);
    r = io();
    ++attempt;
  }
  if (monitor_ != nullptr) {
    if (r.status == IoStatus::kFailed) {
      // The device fail-stopped on its own (injected or real): the
      // monitor still owns the escalation decision.
      monitor_->report_fail_stop(d);
    } else if (r.ok()) {
      monitor_->record_success(d, now_ns() - t0);
    }
  }
  return r;
}

void StripeIoEngine::verify_run(int d, std::span<const ReadOp> ops,
                                std::span<const size_t> idx, size_t first,
                                size_t run, uint64_t gen, uint64_t trace_span,
                                uint64_t op_id) {
  DiskHandle& h = disk(d);
  ChecksumStore* store = h.integrity();
  for (size_t k = 0; k < run; ++k) {
    const ReadOp& op = ops[idx[first + k]];
    const int64_t elem = element_index(op.stripe, op.row);
    uint64_t sum = xorops::checksum64(op.dst, element_size_);
    IntegrityVerdict v = store->classify(elem, sum);
    if (v == IntegrityVerdict::kOk || v == IntegrityVerdict::kUntracked) {
      continue;
    }
    // One defensive re-read before condemning: a coalesced run can race
    // a concurrent writer to a *neighboring* element's stripe, and media
    // may return a one-off flipped read; fetching just this element
    // settles both.
    const uint64_t base = element_offset(op.stripe, op.row);
    IoResult r = with_retries(h.faults(), op_id, [&] {
      return h.faults().read(base, {op.dst, element_size_});
    });
    if (!r.ok() || h.faults().generation() != gen) throw DiskFailedError(d);
    sum = xorops::checksum64(op.dst, element_size_);
    v = store->classify(elem, sum);
    if (v == IntegrityVerdict::kOk || v == IntegrityVerdict::kUntracked) {
      continue;
    }
    if (metrics_ != nullptr) {
      switch (v) {
        case IntegrityVerdict::kMisdirected:
          metrics_->integrity_mismatch_misdirected->inc();
          break;
        case IntegrityVerdict::kStale:
          metrics_->integrity_mismatch_stale->inc();
          break;
        default:
          metrics_->integrity_mismatch_corrupt->inc();
          break;
      }
    }
    obs::FlightRecorder::global().record(
        obs::FlightEventKind::kIntegrityMismatch, op_id, d, elem,
        static_cast<int64_t>(v));
    if (auto& tlog = obs::TraceLog::global(); tlog.enabled()) {
      tlog.event_in_span(trace_span, "integrity.mismatch",
                         {{"disk", d},
                          {"stripe", op.stripe},
                          {"row", op.row},
                          {"verdict", to_string(v)}});
    }
    if (monitor_ != nullptr) monitor_->record_checksum_mismatch(d);
    throw ElementIntegrityError(d, op.stripe, op.row, v);
  }
  if (metrics_ != nullptr) {
    metrics_->integrity_elements_verified->inc(static_cast<int64_t>(run));
  }
}

void StripeIoEngine::run_read(int d, std::span<const ReadOp> ops,
                              std::span<const size_t> idx,
                              uint64_t trace_span, uint64_t op_id,
                              bool verify) {
  DiskHandle& h = disk(d);
  // Rebuild watermark: a promoted spare only holds valid data below its
  // readable-stripe floor; a plan that reaches above it raced a failure
  // and must re-plan degraded (same contract as a failed device).
  const int64_t readable = h.readable_stripes();
  if (readable != std::numeric_limits<int64_t>::max()) {
    for (size_t k : idx) {
      if (ops[k].stripe >= readable) throw DiskFailedError(d);
    }
  }
  // An automatic spare promotion can swap the device between this guard
  // and the reads below (or between the retries inside with_retries), in
  // which case an op "succeeds" against the blank replacement and returns
  // zeros. The generation check after the reads rejects anything that
  // straddled a swap.
  const uint64_t gen = h.faults().generation();
  size_t i = 0;
  while (i < idx.size()) {
    // Extend the run while device offsets stay adjacent.
    size_t run = 1;
    uint64_t base = element_offset(ops[idx[i]].stripe, ops[idx[i]].row);
    if (options_.coalesce) {
      while (i + run < idx.size() && run < kMaxRunElements &&
             element_offset(ops[idx[i + run]].stripe, ops[idx[i + run]].row) ==
                 base + run * element_size_) {
        ++run;
      }
    }
    IoResult r;
    if (run == 1) {
      r = with_retries(h.faults(), op_id, [&] {
        return h.faults().read(base,
                               {ops[idx[i]].dst, element_size_});
      });
    } else {
      std::vector<IoVec> iov(run);
      for (size_t k = 0; k < run; ++k) {
        iov[k] = IoVec{ops[idx[i + k]].dst, element_size_};
      }
      r = with_retries(h.faults(), op_id,
                       [&] { return h.faults().readv(base, iov); });
    }
    if (!r.ok() || h.faults().generation() != gen) throw DiskFailedError(d);
    h.account_reads(static_cast<int64_t>(run),
                    static_cast<int64_t>(run * element_size_));
    obs::FlightRecorder::global().record(
        obs::FlightEventKind::kDiskRead, op_id, d, static_cast<int64_t>(base),
        static_cast<int64_t>(run));
    // One leaf per coalesced run: the causal tree stays element-exact
    // because (offset, elements) expands back to per-element accesses.
    // Guarded here so attr construction is skipped when tracing is off.
    if (auto& tlog = obs::TraceLog::global(); tlog.enabled()) {
      tlog.event_in_span(trace_span, "disk.read",
                         {{"disk", d},
                          {"offset", static_cast<int64_t>(base)},
                          {"elements", static_cast<int64_t>(run)}});
    }
    if (verify && options_.verify_reads && h.integrity() != nullptr) {
      verify_run(d, ops, idx, i, run, gen, trace_span, op_id);
    }
    i += run;
  }
}

void StripeIoEngine::run_write(int d, std::span<const WriteOp> ops,
                               std::span<const size_t> idx,
                               uint64_t trace_span, uint64_t op_id) {
  DiskHandle& h = disk(d);
  size_t i = 0;
  while (i < idx.size()) {
    size_t run = 1;
    uint64_t base = element_offset(ops[idx[i]].stripe, ops[idx[i]].row);
    if (options_.coalesce) {
      while (i + run < idx.size() && run < kMaxRunElements &&
             element_offset(ops[idx[i + run]].stripe, ops[idx[i + run]].row) ==
                 base + run * element_size_) {
        ++run;
      }
    }
    IoResult r;
    if (run == 1) {
      r = with_retries(h.faults(), op_id, [&] {
        return h.faults().write(base, {ops[idx[i]].src, element_size_});
      });
    } else {
      std::vector<ConstIoVec> iov(run);
      for (size_t k = 0; k < run; ++k) {
        iov[k] = ConstIoVec{ops[idx[i + k]].src, element_size_};
      }
      r = with_retries(h.faults(), op_id,
                       [&] { return h.faults().writev(base, iov); });
    }
    if (!r.ok()) throw DiskFailedError(d);
    h.account_writes(static_cast<int64_t>(run),
                     static_cast<int64_t>(run * element_size_));
    obs::FlightRecorder::global().record(
        obs::FlightEventKind::kDiskWrite, op_id, d,
        static_cast<int64_t>(base), static_cast<int64_t>(run));
    if (auto& tlog = obs::TraceLog::global(); tlog.enabled()) {
      tlog.event_in_span(trace_span, "disk.write",
                         {{"disk", d},
                          {"offset", static_cast<int64_t>(base)},
                          {"elements", static_cast<int64_t>(run)}});
    }
    // Record-after-write: the store only learns sums the device has
    // acknowledged. A device that acks and then drops the payload (lost
    // write) leaves the store ahead of the platter — which is exactly
    // what makes the loss detectable on the next read.
    if (ChecksumStore* store = h.integrity()) {
      for (size_t k = 0; k < run; ++k) {
        const WriteOp& op = ops[idx[i + k]];
        store->record(element_index(op.stripe, op.row),
                      xorops::checksum64(op.src, element_size_), op.stripe,
                      op.row, element_role(d, op.stripe, op.row));
      }
    }
    i += run;
  }
}

void StripeIoEngine::read_batch(std::span<const ReadOp> ops, bool verify) {
  if (ops.empty()) return;
  // Capture the dispatching op's identity before fanning out: batch
  // calls block until every run finishes, so pool workers can safely
  // stamp the context's op id and hang their device events under this
  // span no matter which thread executes them.
  const obs::OpContext* ctx = obs::current_op_context();
  const uint64_t op_id = ctx != nullptr ? ctx->op_id : 0;
  obs::Span span(obs::TraceLog::global(), "engine.read_batch",
                 ctx != nullptr ? ctx->span_id : 0,
                 {{"ops", static_cast<int64_t>(ops.size())}});
  if (ops.size() == 1) {
    const ReadOp& op = ops.front();
    size_t one = 0;
    run_read(op.disk, ops, {&one, 1}, span.id(), op_id, verify);
    return;
  }
  // Group by disk, order each group by device offset so adjacency is
  // visible to the coalescer.
  std::vector<std::vector<size_t>> by_disk(disks_.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    by_disk[static_cast<size_t>(ops[i].disk)].push_back(i);
  }
  std::vector<int> active;
  for (int d = 0; d < disk_count(); ++d) {
    auto& g = by_disk[static_cast<size_t>(d)];
    if (g.empty()) continue;
    std::sort(g.begin(), g.end(), [&](size_t a, size_t b) {
      return element_offset(ops[a].stripe, ops[a].row) <
             element_offset(ops[b].stripe, ops[b].row);
    });
    active.push_back(d);
  }
  auto run_group = [&](size_t i) {
    int d = active[i];
    run_read(d, ops, by_disk[static_cast<size_t>(d)], span.id(), op_id,
             verify);
  };
  if (options_.parallel && active.size() > 1) {
    pool_->parallel_for(active.size(), run_group);
  } else {
    for (size_t i = 0; i < active.size(); ++i) run_group(i);
  }
}

void StripeIoEngine::write_batch(std::span<const WriteOp> ops) {
  if (ops.empty()) return;
  const obs::OpContext* ctx = obs::current_op_context();
  const uint64_t op_id = ctx != nullptr ? ctx->op_id : 0;
  obs::Span span(obs::TraceLog::global(), "engine.write_batch",
                 ctx != nullptr ? ctx->span_id : 0,
                 {{"ops", static_cast<int64_t>(ops.size())}});
  if (gate_ != nullptr && gate_->armed()) {
    // Power-loss injection active: execute strictly in batch order, one
    // admission per element, so the crash lands between the same element
    // writes it always did — and elements admitted before it persist.
    for (const WriteOp& op : ops) {
      gate_->admit();
      size_t idx_store = &op - ops.data();
      run_write(op.disk, ops, {&idx_store, 1}, span.id(), op_id);
    }
    return;
  }
  if (ops.size() == 1) {
    size_t one = 0;
    run_write(ops.front().disk, ops, {&one, 1}, span.id(), op_id);
    return;
  }
  std::vector<std::vector<size_t>> by_disk(disks_.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    by_disk[static_cast<size_t>(ops[i].disk)].push_back(i);
  }
  std::vector<int> active;
  for (int d = 0; d < disk_count(); ++d) {
    auto& g = by_disk[static_cast<size_t>(d)];
    if (g.empty()) continue;
    std::sort(g.begin(), g.end(), [&](size_t a, size_t b) {
      return element_offset(ops[a].stripe, ops[a].row) <
             element_offset(ops[b].stripe, ops[b].row);
    });
    active.push_back(d);
  }
  auto run_group = [&](size_t i) {
    int d = active[i];
    run_write(d, ops, by_disk[static_cast<size_t>(d)], span.id(), op_id);
  };
  if (options_.parallel && active.size() > 1) {
    pool_->parallel_for(active.size(), run_group);
  } else {
    for (size_t i = 0; i < active.size(); ++i) run_group(i);
  }
}

void StripeIoEngine::read_element(int d, int64_t stripe, int row,
                                  uint8_t* dst, bool verify) {
  // Single-element path runs on the caller's thread: trace_span 0 lets
  // the device event attach to whatever span is live there (the op root,
  // a degraded_read span, ...).
  const obs::OpContext* ctx = obs::current_op_context();
  ReadOp op{d, stripe, row, dst};
  size_t one = 0;
  run_read(d, {&op, 1}, {&one, 1}, 0, ctx != nullptr ? ctx->op_id : 0,
           verify);
}

void StripeIoEngine::write_element(int d, int64_t stripe, int row,
                                   const uint8_t* src) {
  if (gate_ != nullptr) gate_->admit();
  const obs::OpContext* ctx = obs::current_op_context();
  WriteOp op{d, stripe, row, src};
  size_t one = 0;
  run_write(d, {&op, 1}, {&one, 1}, 0, ctx != nullptr ? ctx->op_id : 0);
}

IntegrityVerdict StripeIoEngine::classify_element(int d, int64_t stripe,
                                                  int row,
                                                  const uint8_t* data) const {
  const ChecksumStore* store = disks_[static_cast<size_t>(d)]->integrity();
  if (store == nullptr) return IntegrityVerdict::kUntracked;
  return store->classify(element_index(stripe, row),
                         xorops::checksum64(data, element_size_));
}

void StripeIoEngine::resync_element_integrity(int d, int64_t stripe, int row,
                                              const uint8_t* data) {
  ChecksumStore* store = disk(d).integrity();
  if (store == nullptr) return;
  store->resync(element_index(stripe, row),
                xorops::checksum64(data, element_size_), stripe, row,
                element_role(d, stripe, row));
}

std::vector<int64_t> StripeIoEngine::per_disk_element_accesses() const {
  std::vector<int64_t> out;
  out.reserve(disks_.size());
  for (const auto& h : disks_) out.push_back(h->reads() + h->writes());
  return out;
}

void StripeIoEngine::reset_stats() {
  for (auto& h : disks_) h->reset_stats();
}

}  // namespace dcode::raid

// IoPlanner: logical operations -> element-level I/O plans.
//
// This is where the codes' I/O-load differences actually arise:
//
//  * plan_read — one read per requested element; parity disks contribute
//    nothing (the horizontal codes' normal-read weakness).
//  * plan_write — partial stripe write. Computes the *dirty parity
//    closure* (a data update dirties its parities; a dirty parity dirties
//    any parity whose equation contains it, e.g. RDP's diagonals covering
//    the row parities and HDP's anti-diagonals covering the horizontal
//    parities), then takes the cheaper of
//      RMW (read-modify-write): read old data + old dirty parities,
//          write new data + new parities;
//      RCW (reconstruct-write): read the untouched sources of every dirty
//          equation, recompute parities outright.
//    Sharing a horizontal parity across consecutive elements is exactly
//    what makes D-Code / RDP / H-Code cheap here and X-Code / HDP dear
//    (paper Figure 5).
//  * plan_degraded_read — surviving requested elements are read directly;
//    each lost one picks the reconstruction equation with the smallest
//    number of *additional* reads given everything already in the plan
//    (greedy, in logical order). Consecutive lost elements sharing a
//    horizontal parity re-use each other's reads — D-Code's degraded-read
//    edge over X-Code (paper Figure 7).
//
// Counting convention: one access = one element read or written, the
// papers' unit. `times` multipliers from <S, L, T> tuples are applied by
// the simulator when accumulating stats, not by expanding plans.
#pragma once

#include <span>

#include "raid/address_map.h"
#include "raid/io_plan.h"

namespace dcode::raid {

enum class WritePolicy { kAuto, kReadModifyWrite, kReconstructWrite };

class IoPlanner {
 public:
  explicit IoPlanner(const AddressMap& map) : map_(&map) {}

  // Normal-mode read of `len` consecutive logical data elements.
  IoPlan plan_read(int64_t start, int len) const;

  // Healthy-mode partial stripe write of `len` consecutive elements.
  IoPlan plan_write(int64_t start, int len,
                    WritePolicy policy = WritePolicy::kAuto) const;

  // Partial stripe write while disks are failed. Unaffected stripes plan
  // like healthy writes; a stripe touching a failed disk uses the
  // stripe-rewrite policy the byte-level array implements: read every
  // surviving element, reconstruct, then write the touched surviving data
  // plus every surviving parity. (The paper evaluates degraded *reads*
  // only; this extends the load experiments to degraded writes.)
  IoPlan plan_degraded_write(int64_t start, int len,
                             std::span<const int> failed_disks) const;

  // Read under failed disks. Single-disk failures use per-element greedy
  // equation selection. With two failed disks, elements whose every
  // equation also crosses the other failed disk are rebuilt through
  // *recovery chains* (the §III-C structure): the planner computes the
  // stripe's peeling schedule and pulls in exactly the chain prefix the
  // requested elements depend on — far less I/O than decoding the whole
  // stripe. Codes whose double failures do not peel (EVENODD,
  // liberation) fall back to a full-stripe decode.
  IoPlan plan_degraded_read(int64_t start, int len,
                            std::span<const int> failed_disks) const;

 private:
  const AddressMap* map_;
};

// The set of parity equations a write to `written` data elements must
// refresh, in topological order (closure over parity-in-parity coverage).
// Exposed for tests and the update-complexity bench.
std::vector<int> dirty_parity_closure(const codes::CodeLayout& layout,
                                      std::span<const codes::Element> written);

}  // namespace dcode::raid

// HealthMonitor: the per-device health state machine behind the
// self-healing array.
//
// Every engine-level I/O outcome feeds the monitor — successes (with
// latency), transient errors, and hard failures — and the monitor decides
// when a device has degraded from noisy to dead:
//
//   healthy ──(transient/latency budget in window)──▶ suspect
//   suspect ──(budget keeps eroding)────────────────▶ failed
//   any     ──(fail-stop result / retry exhaustion)─▶ failed
//   failed  ──(spare promoted, rebuild started)─────▶ rebuilding
//   rebuilding ──(rebuild complete)─────────────────▶ healthy
//
// The sliding window is count-based and deterministic: every recorded op
// ages the window, and once `window_ops` outcomes accumulate, all tallies
// halve (exponential decay without a clock), so a burst of transients
// fades as healthy traffic flows. Chaos tests rely on this determinism —
// the same op sequence always produces the same transitions.
//
// Escalation to kFailed fires the registered callback exactly once per
// failure episode (a disk can fail again after rebuilding — that is a new
// episode). The callback runs OUTSIDE the per-disk lock so it may call
// back into the monitor (e.g. mark_rebuilding after promoting a spare);
// it must not perform blocking rebuild work inline — pool workers report
// outcomes, and a synchronous rebuild from a worker would deadlock on the
// pool it is running on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace dcode::raid {

enum class DiskHealth { kHealthy = 0, kSuspect = 1, kFailed = 2,
                        kRebuilding = 3 };

const char* to_string(DiskHealth h);

// Escalation thresholds. Counters are evaluated against a sliding window
// of the last ~window_ops outcomes (tallies halve each time the window
// fills). A threshold of 0 disables that particular escalation.
struct HealthPolicy {
  int64_t window_ops = 256;    // outcomes per decay period
  int suspect_transients = 4;  // transients in window: healthy -> suspect
  int fail_transients = 12;    // transients in window: -> failed
  int64_t slow_op_ns = 0;      // ops at/above this latency count as slow
                               // (0 disables latency tracking)
  int suspect_slow_ops = 8;    // slow ops in window: healthy -> suspect
  int fail_slow_ops = 0;       // slow ops in window: -> failed (0 = never)
  // Verify-on-read checksum/identity mismatches (corrupt, misdirected or
  // stale payloads). A disk returning wrong bytes is more alarming than
  // one returning errors, so the suspect bar is lower; auto-fail stays
  // off by default — the integrity paths recover the data from parity,
  // and condemning the whole disk is an operator policy, not a given.
  int suspect_checksum_mismatches = 2;
  int fail_checksum_mismatches = 0;
};

class HealthMonitor {
 public:
  HealthMonitor(int disks, HealthPolicy policy, obs::Registry& registry);

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  // Invoked (outside the per-disk lock) on every transition into kFailed.
  void set_escalation_callback(std::function<void(int)> cb);

  // --- outcome feed (engine threads; thread-safe) --------------------------
  void record_success(int disk, int64_t latency_ns);
  void record_transient(int disk);
  // Verify-on-read condemned an element this disk served (the payload
  // hashed wrong): a silent-corruption outcome, tallied separately from
  // transients because the device *reported success* and lied.
  void record_checksum_mismatch(int disk);
  // A hard failure observed (fail-stop result or retry exhaustion):
  // transitions straight to kFailed and fires the escalation callback if
  // this is a new episode.
  void report_fail_stop(int disk);

  // --- controller transitions ----------------------------------------------
  // failed -> rebuilding: a spare was promoted and reconstruction is due.
  void mark_rebuilding(int disk);
  // rebuilding (or anything else, e.g. a manual repair) -> healthy; all
  // window tallies reset.
  void mark_healthy(int disk);

  // --- inspection ----------------------------------------------------------
  DiskHealth state(int disk) const;
  int64_t transients_in_window(int disk) const;
  int64_t slow_ops_in_window(int disk) const;
  int64_t checksum_mismatches_in_window(int disk) const;
  const HealthPolicy& policy() const { return policy_; }
  int disk_count() const { return static_cast<int>(disks_.size()); }

 private:
  struct PerDisk {
    mutable std::mutex mu;
    DiskHealth state = DiskHealth::kHealthy;
    int64_t ops_in_window = 0;
    int64_t transients = 0;
    int64_t slow_ops = 0;
    int64_t checksum_mismatches = 0;
    obs::Gauge* health_gauge = nullptr;
  };

  // Ages the window and applies threshold transitions; returns true when
  // the disk newly entered kFailed (caller fires the callback unlocked).
  bool evaluate_locked(PerDisk& d);
  void age_window_locked(PerDisk& d);
  void set_state_locked(PerDisk& d, DiskHealth next);
  void fire_escalation(int disk);

  HealthPolicy policy_;
  std::vector<std::unique_ptr<PerDisk>> disks_;
  obs::Counter* suspects_;     // transitions into kSuspect
  obs::Counter* escalations_;  // transitions into kFailed
  obs::Counter* recoveries_;   // transitions into kHealthy (from non-healthy)

  std::mutex cb_mu_;
  std::function<void(int)> escalation_cb_;
};

}  // namespace dcode::raid

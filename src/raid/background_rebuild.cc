// Raid6Array's background rebuild worker: the rate-limited reconstruction
// that runs behind foreground I/O after a hot spare is promoted.
//
// Protocol (the rebuild watermark):
//  * a promoted spare starts with readable_stripes == 0 — every stripe is
//    degraded-for-stripe on it, so reads avoid it and writes skip it;
//  * the worker walks stripes in order under the per-stripe lock:
//    reconstruct the lost columns from the live ones, write them to the
//    rebuilding devices, then CAS the watermark s -> s+1 *inside the
//    lock* — a foreground writer that grabs the lock next already sees
//    the stripe as healthy and RMWs through the spare;
//  * stripes below the watermark serve normal (fast-path) reads, stripes
//    at/above it serve degraded reads — foreground I/O never blocks on
//    the whole rebuild, only on the single stripe the worker holds;
//  * the CAS fails if the device re-failed and was re-promoted mid-pass
//    (watermark reset to 0): the pass keeps going but stops advancing
//    that device, and the between-pass rescan starts it over.
//
// One worker thread at a time; promotions during a pass are picked up by
// the rescan under rebuild_mu_. The token bucket paces the walk so
// rebuild bandwidth can be capped below foreground throughput.
#include <algorithm>
#include <limits>

#include "codes/decoder.h"
#include "codes/stripe.h"
#include "obs/trace.h"
#include "raid/raid6_array.h"

namespace dcode::raid {

using codes::CodeLayout;
using codes::Element;
using codes::Stripe;

using ReadOp = StripeIoEngine::ReadOp;
using WriteOp = StripeIoEngine::WriteOp;

void Raid6Array::start_background_rebuild() {
  std::lock_guard<std::mutex> lock(rebuild_mu_);
  if (rebuild_running_) return;  // the worker rescans between passes
  if (rebuild_thread_.joinable()) rebuild_thread_.join();
  rebuild_running_ = true;
  metrics_.rebuild_in_progress->set(1);
  rebuild_thread_ = std::thread([this] { background_rebuild_worker(); });
}

void Raid6Array::background_rebuild_worker() {
  obs::Span span(obs::TraceLog::global(), "rebuild.background",
                 {{"stripes", stripes_}, {"code", layout_->name()}});
  for (;;) {
    std::vector<int> targets;
    {
      std::lock_guard<std::mutex> lock(rebuild_mu_);
      if (!stop_rebuild_.load(std::memory_order_relaxed)) {
        for (int d = 0; d < layout_->cols(); ++d) {
          if (needs_rebuild(d) && !engine_.disk(d).failed() &&
              engine_.disk(d).readable_stripes() < stripes_) {
            targets.push_back(d);
          }
        }
      }
      if (targets.empty()) {
        // Exit decision under the same lock start_background_rebuild
        // takes: a promotion either sees rebuild_running_ still true (we
        // will rescan) or false (it spawns a fresh worker) — a new
        // target can never be stranded.
        rebuild_running_ = false;
        metrics_.rebuild_in_progress->set(0);
        rebuild_cv_.notify_all();
        return;
      }
    }
    span.note("rebuild.pass",
              {{"targets", static_cast<int64_t>(targets.size())}});
    if (!rebuild_pass(targets)) {
      // Crash or unrecoverable loss: leave needs_rebuild set for a later
      // synchronous rebuild() and stand down.
      std::lock_guard<std::mutex> lock(rebuild_mu_);
      rebuild_running_ = false;
      metrics_.rebuild_in_progress->set(0);
      rebuild_cv_.notify_all();
      return;
    }
    finish_rebuilt_targets(targets);
  }
}

bool Raid6Array::rebuild_pass(const std::vector<int>& targets) {
  const CodeLayout& layout = *layout_;
  metrics_.rebuilds->inc();

  int64_t start = stripes_;
  for (int d : targets) {
    start = std::min(start, engine_.disk(d).readable_stripes());
  }
  for (int64_t s = std::max<int64_t>(0, start); s < stripes_; ++s) {
    if (stop_rebuild_.load(std::memory_order_relaxed)) return false;
    const int64_t waited = rebuild_throttle_.acquire(1.0);
    if (waited > 0) metrics_.rebuild_throttle_wait_ns->observe(waited);

    for (int attempt = 0;; ++attempt) {
      std::unique_lock<std::mutex> lock = stripe_lock(s);
      try {
        Stripe buf(layout, element_size_);
        std::vector<Element> lost;
        std::vector<ReadOp> rops;
        for (int c = 0; c < layout.cols(); ++c) {
          const int pd = map_.physical_disk(s, c);
          if (disk_degraded_for_stripe(pd, s)) {
            for (int r = 0; r < layout.rows(); ++r) {
              lost.push_back(codes::make_element(r, c));
            }
          } else {
            for (int r = 0; r < layout.rows(); ++r) {
              rops.push_back({pd, s, r, buf.at(r, c)});
            }
          }
        }
        if (!lost.empty()) {
          engine_.read_batch(rops);
          auto res = codes::hybrid_decode(buf, lost);
          if (!res.success) return false;  // beyond tolerance; stand down
          std::vector<WriteOp> wops;
          for (const Element& e : lost) {
            const int pd = map_.physical_disk(s, e.col);
            if (engine_.disk(pd).failed()) continue;  // no spare yet
            wops.push_back({pd, s, e.row, buf.at(e)});
          }
          engine_.write_batch(wops);
          metrics_.elements_reconstructed->inc(
              static_cast<int64_t>(lost.size()));
        }
        // Advance the watermark before releasing the stripe lock: the
        // next writer of this stripe must already see it healthy, or its
        // RMW would skip the device the worker just filled.
        for (int d : targets) {
          engine_.disk(d).advance_readable_stripes(s);
        }
        metrics_.rebuild_stripes->inc();
        break;
      } catch (const PowerLossError&) {
        return false;
      } catch (const DiskFailedError&) {
        // Another device died mid-stripe; the refreshed degraded set on
        // retry folds it into `lost` (or the pass aborts at decode).
        if (attempt >= 3) return false;
      }
    }
  }
  return true;
}

void Raid6Array::finish_rebuilt_targets(const std::vector<int>& targets) {
  std::lock_guard<std::mutex> lock(promote_mu_);
  for (int d : targets) {
    DiskHandle& h = engine_.disk(d);
    if (h.failed() || !needs_rebuild(d)) continue;
    // CAS from the exact stripe count: a re-promotion that reset the
    // watermark mid-pass loses nothing — the flag stays set and the next
    // pass starts over from stripe 0.
    if (h.mark_fully_readable(stripes_)) {
      needs_rebuild_[static_cast<size_t>(d)].store(
          false, std::memory_order_release);
      health_.mark_healthy(d);
    }
  }
}

bool Raid6Array::wait_for_rebuild() {
  {
    std::unique_lock<std::mutex> lock(rebuild_mu_);
    rebuild_cv_.wait(lock, [&] { return !rebuild_running_; });
    if (rebuild_thread_.joinable()) rebuild_thread_.join();
  }
  for (int d = 0; d < layout_->cols(); ++d) {
    if (needs_rebuild(d)) return false;
  }
  return true;
}

bool Raid6Array::rebuild_in_progress() const {
  std::lock_guard<std::mutex> lock(rebuild_mu_);
  return rebuild_running_;
}

void Raid6Array::set_rebuild_rate(double stripes_per_sec, double burst) {
  rebuild_throttle_.set_rate(stripes_per_sec, burst);
}

}  // namespace dcode::raid

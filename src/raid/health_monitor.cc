#include "raid/health_monitor.h"

#include "util/check.h"

namespace dcode::raid {

const char* to_string(DiskHealth h) {
  switch (h) {
    case DiskHealth::kHealthy:
      return "healthy";
    case DiskHealth::kSuspect:
      return "suspect";
    case DiskHealth::kFailed:
      return "failed";
    case DiskHealth::kRebuilding:
      return "rebuilding";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(int disks, HealthPolicy policy,
                             obs::Registry& registry)
    : policy_(policy) {
  DCODE_CHECK(disks > 0, "health monitor needs at least one disk");
  DCODE_CHECK(policy_.window_ops > 0, "health window must be positive");
  disks_.reserve(static_cast<size_t>(disks));
  for (int d = 0; d < disks; ++d) {
    auto pd = std::make_unique<PerDisk>();
    pd->health_gauge = &registry.gauge(
        "raid.disk.health", {{"disk", std::to_string(d)}},
        "device health state (0 healthy, 1 suspect, 2 failed, 3 rebuilding)");
    pd->health_gauge->set(0);
    disks_.push_back(std::move(pd));
  }
  suspects_ = &registry.counter("raid.health.suspects", {},
                                "disks escalated healthy -> suspect");
  escalations_ = &registry.counter(
      "raid.health.escalations", {},
      "disks declared failed by the health monitor");
  recoveries_ = &registry.counter(
      "raid.health.recoveries", {}, "disks returned to healthy after repair");
}

void HealthMonitor::set_escalation_callback(std::function<void(int)> cb) {
  std::lock_guard<std::mutex> lock(cb_mu_);
  escalation_cb_ = std::move(cb);
}

void HealthMonitor::set_state_locked(PerDisk& d, DiskHealth next) {
  if (d.state == next) return;
  d.state = next;
  d.health_gauge->set(static_cast<int64_t>(next));
}

void HealthMonitor::age_window_locked(PerDisk& d) {
  if (++d.ops_in_window < policy_.window_ops) return;
  // Window full: halve everything. A tally of transients decays to zero
  // within a few windows of clean traffic instead of haunting the disk
  // forever, and the decay is purely count-driven (deterministic).
  d.ops_in_window /= 2;
  d.transients /= 2;
  d.slow_ops /= 2;
  d.checksum_mismatches /= 2;
}

bool HealthMonitor::evaluate_locked(PerDisk& d) {
  if (d.state == DiskHealth::kFailed || d.state == DiskHealth::kRebuilding) {
    return false;  // already handled / being repaired
  }
  const bool transient_fail = policy_.fail_transients > 0 &&
                              d.transients >= policy_.fail_transients;
  const bool slow_fail =
      policy_.fail_slow_ops > 0 && d.slow_ops >= policy_.fail_slow_ops;
  const bool checksum_fail =
      policy_.fail_checksum_mismatches > 0 &&
      d.checksum_mismatches >= policy_.fail_checksum_mismatches;
  if (transient_fail || slow_fail || checksum_fail) {
    set_state_locked(d, DiskHealth::kFailed);
    escalations_->inc();
    return true;
  }
  const bool transient_suspect = policy_.suspect_transients > 0 &&
                                 d.transients >= policy_.suspect_transients;
  const bool slow_suspect =
      policy_.suspect_slow_ops > 0 && d.slow_ops >= policy_.suspect_slow_ops;
  const bool checksum_suspect =
      policy_.suspect_checksum_mismatches > 0 &&
      d.checksum_mismatches >= policy_.suspect_checksum_mismatches;
  if (d.state == DiskHealth::kHealthy &&
      (transient_suspect || slow_suspect || checksum_suspect)) {
    set_state_locked(d, DiskHealth::kSuspect);
    suspects_->inc();
  }
  return false;
}

void HealthMonitor::record_success(int disk, int64_t latency_ns) {
  PerDisk& d = *disks_[static_cast<size_t>(disk)];
  bool escalated = false;
  {
    std::lock_guard<std::mutex> lock(d.mu);
    age_window_locked(d);
    if (policy_.slow_op_ns > 0 && latency_ns >= policy_.slow_op_ns) {
      ++d.slow_ops;
      escalated = evaluate_locked(d);
    }
  }
  if (escalated) fire_escalation(disk);
}

void HealthMonitor::record_transient(int disk) {
  PerDisk& d = *disks_[static_cast<size_t>(disk)];
  bool escalated = false;
  {
    std::lock_guard<std::mutex> lock(d.mu);
    age_window_locked(d);
    ++d.transients;
    escalated = evaluate_locked(d);
  }
  if (escalated) fire_escalation(disk);
}

void HealthMonitor::record_checksum_mismatch(int disk) {
  PerDisk& d = *disks_[static_cast<size_t>(disk)];
  bool escalated = false;
  {
    std::lock_guard<std::mutex> lock(d.mu);
    age_window_locked(d);
    ++d.checksum_mismatches;
    escalated = evaluate_locked(d);
  }
  if (escalated) fire_escalation(disk);
}

void HealthMonitor::report_fail_stop(int disk) {
  PerDisk& d = *disks_[static_cast<size_t>(disk)];
  bool escalated = false;
  {
    std::lock_guard<std::mutex> lock(d.mu);
    if (d.state != DiskHealth::kFailed) {
      set_state_locked(d, DiskHealth::kFailed);
      escalations_->inc();
      escalated = true;
    }
  }
  if (escalated) fire_escalation(disk);
}

void HealthMonitor::fire_escalation(int disk) {
  // Copy under the lock, invoke outside it: the callback may re-enter the
  // monitor (mark_rebuilding) or trigger further fail-stops.
  std::function<void(int)> cb;
  {
    std::lock_guard<std::mutex> lock(cb_mu_);
    cb = escalation_cb_;
  }
  if (cb) cb(disk);
}

void HealthMonitor::mark_rebuilding(int disk) {
  PerDisk& d = *disks_[static_cast<size_t>(disk)];
  std::lock_guard<std::mutex> lock(d.mu);
  set_state_locked(d, DiskHealth::kRebuilding);
}

void HealthMonitor::mark_healthy(int disk) {
  PerDisk& d = *disks_[static_cast<size_t>(disk)];
  std::lock_guard<std::mutex> lock(d.mu);
  if (d.state != DiskHealth::kHealthy) recoveries_->inc();
  d.ops_in_window = 0;
  d.transients = 0;
  d.slow_ops = 0;
  d.checksum_mismatches = 0;
  set_state_locked(d, DiskHealth::kHealthy);
}

DiskHealth HealthMonitor::state(int disk) const {
  const PerDisk& d = *disks_[static_cast<size_t>(disk)];
  std::lock_guard<std::mutex> lock(d.mu);
  return d.state;
}

int64_t HealthMonitor::transients_in_window(int disk) const {
  const PerDisk& d = *disks_[static_cast<size_t>(disk)];
  std::lock_guard<std::mutex> lock(d.mu);
  return d.transients;
}

int64_t HealthMonitor::slow_ops_in_window(int disk) const {
  const PerDisk& d = *disks_[static_cast<size_t>(disk)];
  std::lock_guard<std::mutex> lock(d.mu);
  return d.slow_ops;
}

int64_t HealthMonitor::checksum_mismatches_in_window(int disk) const {
  const PerDisk& d = *disks_[static_cast<size_t>(disk)];
  std::lock_guard<std::mutex> lock(d.mu);
  return d.checksum_mismatches;
}

}  // namespace dcode::raid

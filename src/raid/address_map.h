// AddressMap: logical data addresses -> (stripe, element, physical disk).
//
// The papers address workloads in "continuous data elements": D-Code's
// <S, L, T> tuples walk the row-major data stream. Logical element g lives
// in stripe g / data_per_stripe at the layout's data element
// g % data_per_stripe. Optional stripe-by-stripe rotation (RAID-5-style
// remapping of columns to physical disks, paper §I's "global load
// balancing" strawman) is supported so the rotation ablation bench can
// demonstrate the paper's claim that it does NOT fix intra-stripe
// imbalance.
#pragma once

#include <cstdint>

#include "codes/code_layout.h"
#include "util/check.h"

namespace dcode::raid {

class AddressMap {
 public:
  explicit AddressMap(const codes::CodeLayout& layout, bool rotate = false)
      : layout_(&layout), rotate_(rotate) {}

  const codes::CodeLayout& layout() const { return *layout_; }
  bool rotate() const { return rotate_; }

  int64_t data_per_stripe() const { return layout_->data_count(); }

  struct Location {
    int64_t stripe;
    codes::Element element;  // logical element within the stripe layout
    int disk;                // physical disk
  };

  Location locate(int64_t logical) const {
    DCODE_CHECK(logical >= 0, "negative logical address");
    int64_t stripe = logical / data_per_stripe();
    int idx = static_cast<int>(logical % data_per_stripe());
    codes::Element e = layout_->data_element(idx);
    return Location{stripe, e, physical_disk(stripe, e.col)};
  }

  // Column -> physical disk for a given stripe (identity unless rotating).
  int physical_disk(int64_t stripe, int col) const {
    if (!rotate_) return col;
    return static_cast<int>((col + stripe) % layout_->cols());
  }

 private:
  const codes::CodeLayout* layout_;
  bool rotate_;
};

}  // namespace dcode::raid

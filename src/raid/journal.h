// Write-intent journal: closing the RAID write hole.
//
// A partial-stripe write touches a data element and its parities in
// separate disk writes; power loss between them leaves the stripe's
// parity stale — silent corruption that only surfaces when a later disk
// failure reconstructs garbage. The standard fix is write-ahead intent
// logging: persist "stripe S is being modified" *before* touching it and
// clear the record after the last parity lands. Crash recovery then
// re-encodes exactly the stripes with open intent records.
//
// The journal models the persistent intent area of a controller's NVRAM:
// a fixed array of slots surviving a crash (in this simulation, an
// in-memory buffer that crash injection never clears). Slots are a hard
// resource — begin() throws when the journal is full, the same
// backpressure a real controller applies.
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "util/check.h"

namespace dcode::raid {

class WriteIntentJournal {
 public:
  explicit WriteIntentJournal(int slots = 64)
      : slots_(static_cast<size_t>(slots), kEmpty) {
    DCODE_CHECK(slots > 0, "journal needs at least one slot");
  }

  // Marks `stripe` dirty. Idempotent for an already-open stripe; returns
  // true when a record was newly opened (false if one was already open —
  // what intent-open metrics want to count). Throws when every slot is
  // taken (caller must commit earlier writes first).
  bool begin(int64_t stripe) {
    std::lock_guard<std::mutex> lock(mu_);
    int free_slot = -1;
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i] == stripe) return false;  // already open
      if (slots_[i] == kEmpty && free_slot < 0) free_slot = static_cast<int>(i);
    }
    DCODE_CHECK(free_slot >= 0, "write-intent journal full");
    slots_[static_cast<size_t>(free_slot)] = stripe;
    return true;
  }

  // Clears the intent record after the stripe's parity is durable.
  void commit(int64_t stripe) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& s : slots_) {
      if (s == stripe) {
        s = kEmpty;
        return;
      }
    }
    // Committing a stripe that was never begun is a logic error in the
    // array layer.
    DCODE_CHECK(false, "commit without matching begin");
  }

  // Stripes with open intents — exactly what crash recovery must scrub.
  std::vector<int64_t> open_stripes() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<int64_t> out;
    for (int64_t s : slots_) {
      if (s != kEmpty) out.push_back(s);
    }
    return out;
  }

  bool empty() const { return open_stripes().empty(); }
  int capacity() const { return static_cast<int>(slots_.size()); }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& s : slots_) s = kEmpty;
  }

 private:
  static constexpr int64_t kEmpty = -1;
  // Concurrent writers journal different stripes at once; the NVRAM slot
  // array is one shared resource.
  mutable std::mutex mu_;
  std::vector<int64_t> slots_;
};

// Thrown when injected power loss interrupts an array operation. Disk
// contents written so far persist; the operation did not complete.
class PowerLossError : public std::runtime_error {
 public:
  PowerLossError() : std::runtime_error("injected power loss") {}
};

}  // namespace dcode::raid

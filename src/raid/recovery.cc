#include "raid/recovery.h"

#include <algorithm>
#include <map>
#include <vector>

#include "codes/dcode_decoder.h"
#include "codes/decoder.h"
#include "codes/stripe.h"
#include "raid/stripe_io_engine.h"
#include "util/aligned_buffer.h"
#include "util/check.h"
#include "xorops/xor_region.h"

namespace dcode::raid {

namespace {

using codes::CodeLayout;
using codes::Element;
using codes::Equation;

// Word-packed bitset over stripe cells for fast unions during the search.
class CellSet {
 public:
  explicit CellSet(size_t cells) : words_((cells + 63) / 64, 0) {}

  void add(size_t cell) { words_[cell >> 6] |= 1ull << (cell & 63); }

  void merge(const CellSet& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }

  size_t count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  void collect(const CodeLayout& layout, std::vector<Element>* out) const {
    for (size_t cell = 0; cell < static_cast<size_t>(layout.rows()) *
                                     layout.cols();
         ++cell) {
      if (words_[cell >> 6] & (1ull << (cell & 63))) {
        out->push_back(codes::make_element(
            static_cast<int>(cell / layout.cols()),
            static_cast<int>(cell % layout.cols())));
      }
    }
  }

 private:
  std::vector<uint64_t> words_;
};

// The elements an equation reads to rebuild `target` (everything but it).
CellSet equation_reads(const CodeLayout& layout, const Equation& q,
                       Element target) {
  CellSet s(static_cast<size_t>(layout.rows()) * layout.cols());
  auto add = [&](Element e) {
    if (e != target)
      s.add(static_cast<size_t>(e.row) * layout.cols() + e.col);
  };
  add(q.parity);
  for (const Element& e : q.sources) add(e);
  return s;
}

}  // namespace

RecoveryPlan plan_single_disk_recovery(const CodeLayout& layout,
                                       int failed_disk,
                                       RecoveryStrategy strategy) {
  DCODE_CHECK(failed_disk >= 0 && failed_disk < layout.cols(),
              "failed disk out of range");
  const size_t ncells = static_cast<size_t>(layout.rows()) * layout.cols();

  // Lost elements, split into those with a real choice (two usable
  // equations) and those without.
  struct Lost {
    Element element;
    std::vector<int> eqs;               // usable equations
    std::vector<CellSet> reads_per_eq;  // read set of each choice
  };
  std::vector<Lost> lost;
  for (int r = 0; r < layout.rows(); ++r) {
    Element e = codes::make_element(r, failed_disk);
    Lost entry{e, {}, {}};
    for (int qi : layout.equations_containing(e.row, e.col)) {
      const Equation& q = layout.equations()[static_cast<size_t>(qi)];
      // Usable only if no *other* member sits on the failed disk.
      bool usable = true;
      auto check = [&](Element m) {
        if (m != e && m.col == failed_disk) usable = false;
      };
      check(q.parity);
      for (const Element& m : q.sources) check(m);
      if (usable) {
        entry.eqs.push_back(qi);
        entry.reads_per_eq.push_back(equation_reads(layout, q, e));
      }
    }
    DCODE_CHECK(!entry.eqs.empty(),
                "single-disk loss must be recoverable per element");
    lost.push_back(std::move(entry));
  }

  std::vector<size_t> choice(lost.size(), 0);

  if (strategy == RecoveryStrategy::kMinimalReads) {
    // Indices with an actual alternative.
    std::vector<size_t> free_idx;
    for (size_t i = 0; i < lost.size(); ++i) {
      if (lost[i].eqs.size() > 1) free_idx.push_back(i);
    }

    auto total_reads = [&](const std::vector<size_t>& ch) {
      CellSet u(ncells);
      for (size_t i = 0; i < lost.size(); ++i)
        u.merge(lost[i].reads_per_eq[ch[i]]);
      return u.count();
    };

    if (free_idx.size() <= 16) {
      // Exhaustive: tractable for every RAID-scale prime (2^(p-2) states).
      size_t best_cost = SIZE_MAX;
      std::vector<size_t> best = choice;
      std::vector<size_t> cur = choice;
      for (uint64_t mask = 0; mask < (1ull << free_idx.size()); ++mask) {
        for (size_t b = 0; b < free_idx.size(); ++b)
          cur[free_idx[b]] = (mask >> b) & 1;
        size_t cost = total_reads(cur);
        if (cost < best_cost) {
          best_cost = cost;
          best = cur;
        }
      }
      choice = best;
    } else {
      // Greedy descent: flip any choice that lowers the union, to fixpoint.
      size_t cost = total_reads(choice);
      bool improved = true;
      while (improved) {
        improved = false;
        for (size_t i : free_idx) {
          std::vector<size_t> alt = choice;
          alt[i] = 1 - alt[i];
          size_t alt_cost = total_reads(alt);
          if (alt_cost < cost) {
            cost = alt_cost;
            choice = std::move(alt);
            improved = true;
          }
        }
      }
    }
  }

  RecoveryPlan plan;
  CellSet reads(ncells);
  for (size_t i = 0; i < lost.size(); ++i) {
    plan.reconstructions.push_back(
        Reconstruction{0, lost[i].element, lost[i].eqs[choice[i]]});
    reads.merge(lost[i].reads_per_eq[choice[i]]);
  }
  reads.collect(layout, &plan.reads);
  return plan;
}

void execute_single_disk_rebuild(const CodeLayout& layout,
                                 const RecoveryPlan& plan,
                                 StripeIoEngine& engine, int failed_disk,
                                 int64_t stripes) {
  const size_t esize = engine.element_size();
  engine.pool().parallel_for_chunked(
      static_cast<size_t>(stripes), [&](size_t begin, size_t end) {
        std::map<Element, AlignedBuffer> cache;
        std::vector<StripeIoEngine::ReadOp> rops;
        std::vector<StripeIoEngine::WriteOp> wops;
        std::vector<AlignedBuffer> rebuilt;
        for (size_t s = begin; s < end; ++s) {
          const int64_t stripe = static_cast<int64_t>(s);
          cache.clear();
          rops.clear();
          for (const Element& e : plan.reads) {
            auto it = cache.emplace(e, AlignedBuffer(esize)).first;
            rops.push_back({e.col, stripe, e.row, it->second.data()});
          }
          engine.read_batch(rops);
          wops.clear();
          rebuilt.clear();
          rebuilt.reserve(plan.reconstructions.size());
          for (const Reconstruction& rec : plan.reconstructions) {
            AlignedBuffer buf(esize);
            const Equation& q =
                layout.equations()[static_cast<size_t>(rec.equation)];
            auto fold = [&](const Element& m) {
              if (m == rec.target) return;
              auto it = cache.find(m);
              DCODE_ASSERT(it != cache.end(),
                           "recovery plan read set incomplete");
              xorops::xor_into(buf.data(), it->second.data(), esize);
            };
            fold(q.parity);
            for (const Element& m : q.sources) fold(m);
            rebuilt.push_back(std::move(buf));
            wops.push_back(
                {failed_disk, stripe, rec.target.row, rebuilt.back().data()});
          }
          engine.write_batch(wops);
        }
      });
}

void execute_multi_disk_rebuild(const CodeLayout& layout,
                                StripeIoEngine& engine,
                                const std::vector<int>& targets,
                                int64_t stripes) {
  const size_t esize = engine.element_size();
  const bool use_chain = layout.name() == "dcode" && targets.size() == 2;
  engine.pool().parallel_for_chunked(
      static_cast<size_t>(stripes), [&](size_t begin, size_t end) {
        codes::Stripe s(layout, esize);
        std::vector<StripeIoEngine::ReadOp> rops;
        std::vector<StripeIoEngine::WriteOp> wops;
        auto is_target = [&](int c) {
          return std::find(targets.begin(), targets.end(), c) !=
                 targets.end();
        };
        for (size_t st = begin; st < end; ++st) {
          const int64_t stripe = static_cast<int64_t>(st);
          // Read survivors (one coalesced run per surviving column).
          rops.clear();
          for (int c = 0; c < layout.cols(); ++c) {
            if (is_target(c)) continue;
            for (int r = 0; r < layout.rows(); ++r) {
              rops.push_back({c, stripe, r, s.at(r, c)});
            }
          }
          engine.read_batch(rops);
          if (use_chain) {
            auto res = codes::dcode_decode_two_disks(s, targets[0],
                                                     targets[1]);
            DCODE_CHECK(res.success, "D-Code chain decode failed");
          } else {
            auto lost = codes::elements_of_disks(layout, targets);
            auto res = codes::hybrid_decode(s, lost);
            DCODE_CHECK(res.success, "stripe unrecoverable");
          }
          wops.clear();
          for (int c : targets) {
            for (int r = 0; r < layout.rows(); ++r) {
              wops.push_back({c, stripe, r, s.at(r, c)});
            }
          }
          engine.write_batch(wops);
        }
      });
}

}  // namespace dcode::raid

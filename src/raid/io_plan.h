// IoPlan: the exact element-level disk accesses an operation performs.
//
// Planners translate logical operations (read / partial-stripe write /
// degraded read / rebuild) into IoPlans. The same plan objects drive
//   * the counting experiments (Figures 4 & 5: per-disk access tallies),
//   * the timing experiments (Figures 6 & 7: the disk service-time model),
//   * and the byte-level Raid6Array execution,
// so the three views of "how much I/O does this code do" cannot diverge.
#pragma once

#include <cstdint>
#include <vector>

#include "codes/element.h"

namespace dcode::raid {

struct IoAccess {
  int64_t stripe = 0;
  codes::Element element;  // logical position within the stripe layout
  int disk = 0;            // physical disk (after any rotation)
  bool is_write = false;
};

// How a lost element is rebuilt: XOR of every other member of `equation`.
struct Reconstruction {
  int64_t stripe = 0;
  codes::Element target;
  int equation = -1;  // index into layout.equations()
};

struct IoPlan {
  std::vector<IoAccess> accesses;
  std::vector<Reconstruction> reconstructions;  // degraded reads / rebuilds

  int64_t reads() const {
    int64_t n = 0;
    for (const auto& a : accesses) n += a.is_write ? 0 : 1;
    return n;
  }
  int64_t writes() const {
    return static_cast<int64_t>(accesses.size()) - reads();
  }
  int64_t total() const { return static_cast<int64_t>(accesses.size()); }
};

}  // namespace dcode::raid

// Stripe-granular locking for the array and the request pipeline.
//
// Two cooperating pieces live here:
//
//  * StripeLockTable — the array-internal sharded mutex table that
//    serializes stripe mutators (foreground writes, the background
//    rebuild worker, journal recovery). Replaces the old fixed
//    std::array<std::mutex, 64>: each slot is cache-line padded so two
//    cores spinning on neighbouring slots no longer false-share, the
//    slot count is configurable (ArrayOptions::stripe_lock_slots), and
//    acquisition records how long the caller blocked.
//
//  * StripeRangeLock — the pipeline's admission layer. Each submitted
//    op covers a stripe range; tickets are registered in admission
//    (queue-pop) order and granted so that non-overlapping ops proceed
//    fully concurrently while overlapping ops serialize in exactly
//    arrival order. Two reads never conflict; read/write and
//    write/write overlaps do. Wait time is observed into the
//    admission-wait histogram.
//
// Lock ordering: StripeRangeLock tickets are registered while the
// OpQueue's mutex is held (registration must be atomic with the FIFO
// pop, or a later op could be granted before an earlier overlapping one
// is even visible); the range lock's own mutex is a leaf below it.
// StripeLockTable slots are leaves below everything in the array.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "obs/metrics.h"
#include "util/check.h"

namespace dcode::raid {

// Sharded per-stripe mutex table. Stripes hash to slots by modulo, so a
// collision merely serializes two unrelated stripes — never a
// correctness issue, only a throughput one; more slots = fewer
// collisions at (64 bytes + mutex) per slot.
class StripeLockTable {
 public:
  // `slots` must be positive; `wait_hist` (optional) receives the
  // blocked-time of every acquisition that had to wait.
  explicit StripeLockTable(int slots, obs::Histogram* wait_hist = nullptr)
      : count_(static_cast<size_t>(slots)), wait_hist_(wait_hist) {
    DCODE_CHECK(slots > 0, "stripe lock table needs at least one slot");
    slots_ = std::make_unique<Slot[]>(count_);
  }

  size_t slot_count() const { return count_; }

  // Locks the slot owning `stripe`, recording contention: the uncontended
  // path is a single try_lock, the contended one measures the block and
  // observes it into the wait histogram.
  std::unique_lock<std::mutex> lock(int64_t stripe) {
    std::mutex& mu = slots_[static_cast<size_t>(stripe) % count_].mu;
    std::unique_lock<std::mutex> l(mu, std::try_to_lock);
    if (!l.owns_lock()) {
      const int64_t t0 = now_ns();
      l.lock();
      if (wait_hist_ != nullptr) wait_hist_->observe(now_ns() - t0);
    }
    return l;
  }

 private:
  struct alignas(64) Slot {
    std::mutex mu;
  };

  static int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  size_t count_;
  std::unique_ptr<Slot[]> slots_;
  obs::Histogram* wait_hist_;
};

// FIFO range-lock over stripe ranges: the pipeline's admission layer.
//
// Protocol: register_ticket() is called in admission order (atomically
// with the op-queue pop, under the queue's mutex); acquire() then blocks
// until no conflicting ticket with a smaller sequence number remains
// registered; release() retires the ticket and wakes waiters. Because
// registration order equals admission order and a ticket only ever
// waits on strictly smaller sequence numbers, grants are acyclic (no
// deadlock) and overlapping ops execute in exactly arrival order.
class StripeRangeLock {
 public:
  explicit StripeRangeLock(obs::Histogram* wait_hist = nullptr)
      : wait_hist_(wait_hist) {}

  // Registers a ticket for stripes [first, last]. `seq` values must be
  // registered in strictly increasing order (the op queue's pop order).
  void register_ticket(uint64_t seq, int64_t first, int64_t last,
                       bool is_write) {
    std::lock_guard<std::mutex> l(mu_);
    tickets_.emplace(seq, Ticket{first, last, is_write});
  }

  // Blocks until the ticket is frontmost among the registered tickets it
  // conflicts with. Records blocked time into the admission-wait
  // histogram (0 is observed too — the uncontended admission is part of
  // the latency story).
  void acquire(uint64_t seq) {
    std::unique_lock<std::mutex> l(mu_);
    auto self = tickets_.find(seq);
    DCODE_CHECK(self != tickets_.end(), "acquire of unregistered ticket");
    if (!grantable(self)) {
      const int64_t t0 = now_ns();
      cv_.wait(l, [&] { return grantable(self); });
      if (wait_hist_ != nullptr) wait_hist_->observe(now_ns() - t0);
    } else if (wait_hist_ != nullptr) {
      wait_hist_->observe(0);
    }
  }

  void release(uint64_t seq) {
    {
      std::lock_guard<std::mutex> l(mu_);
      tickets_.erase(seq);
    }
    cv_.notify_all();
  }

  // Registered (granted or waiting) tickets — for tests and the drain
  // check.
  size_t registered() const {
    std::lock_guard<std::mutex> l(mu_);
    return tickets_.size();
  }

 private:
  struct Ticket {
    int64_t first;
    int64_t last;
    bool is_write;
  };

  static int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  bool grantable(std::map<uint64_t, Ticket>::iterator self) const {
    // tickets_ is keyed by seq, so everything before `self` in iteration
    // order is an earlier admission.
    for (auto it = tickets_.begin(); it != self; ++it) {
      const Ticket& u = it->second;
      const Ticket& t = self->second;
      const bool overlap = u.first <= t.last && t.first <= u.last;
      if (overlap && (u.is_write || t.is_write)) return false;
    }
    return true;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, Ticket> tickets_;
  obs::Histogram* wait_hist_;
};

}  // namespace dcode::raid

// The per-element integrity channel: content checksums + write-identity
// tags, independent of parity.
//
// Parity syndromes can localize a corrupt element only when both parity
// families agree, and they are structurally blind to three failure
// modes real drives exhibit: a *misdirected* write (payload lands on the
// wrong LBA — two stripes wrong, both internally parity-consistent after
// repair elsewhere), a *lost* write (acknowledged but never persisted —
// the old payload is perfectly well-formed), and a *stale* full stripe
// (every element old but mutually consistent). The ChecksumStore closes
// that gap: for every device element it keeps
//
//   sum   — XXH64 of the element payload as last acknowledged,
//   prev  — the sum the element held before that write (the stale
//           candidate: a lost write leaves the device serving exactly
//           this content),
//   tag   — a write-identity tag packing (generation, stripe, row, role)
//           so scrub can tell *which* logical write an element belongs
//           to, not just whether its bytes hash right.
//
// Classification on a read whose payload hashes to `h`:
//
//   h == sum                     kOk           payload is current
//   tag == 0                     kUntracked    element never written
//   h == prev                    kStale        lost / stale write
//   h == some other element's    kMisdirected  write landed on the
//        sum on this device                    wrong LBA
//   otherwise                    kCorrupt      torn write or bit rot
//
// The store is updated strictly *after* the device acknowledges a write
// (record-after-write): if the device lies — accepts the write and drops
// it — the store remembers the new sum while the platter serves the old
// payload, which is precisely how lost writes become detectable.
//
// Persistence: MemDisk stores stay in memory; FileDisk stores attach a
// sidecar file. Each element owns two 40-byte slots written alternately
// (sequence-numbered dual slots), each slot self-checksummed with the
// element index as seed — a torn sidecar write invalidates only the slot
// being written, the loader falls back to the other, and a sidecar
// record that ends up at the wrong element offset fails its seed check.
// Crash consistency therefore needs no ordering guarantees from the
// filesystem beyond single-pwrite atomicity *per byte*: any prefix of a
// slot write leaves a bad self-checksum, never a wrong-but-valid record.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "raid/block_device.h"

namespace dcode::raid {

enum class IntegrityVerdict {
  kOk = 0,
  kUntracked,   // element has no recorded write; nothing to verify
  kCorrupt,     // payload matches neither current nor any known sum
  kMisdirected, // payload is another element's current content
  kStale,       // payload is this element's *previous* content
};

const char* to_string(IntegrityVerdict v);

// Thrown by the engine when verify-on-read condemns an element. Derives
// from DiskFailedError so every existing catch site treats it as "this
// disk cannot serve this element" — the safe default — while integrity-
// aware paths (read failover, write repair) catch it first and recover
// from parity instead of failing the disk.
class ElementIntegrityError : public DiskFailedError {
 public:
  ElementIntegrityError(int disk, int64_t stripe, int row,
                        IntegrityVerdict verdict)
      : DiskFailedError(disk), stripe_(stripe), row_(row), verdict_(verdict) {}
  int64_t stripe() const { return stripe_; }
  int row() const { return row_; }
  IntegrityVerdict verdict() const { return verdict_; }

 private:
  int64_t stripe_;
  int row_;
  IntegrityVerdict verdict_;
};

// Write-identity tag: (generation << 32) | stripe:20 | row:8 | role:4.
// generation counts acknowledged writes to the element (starts at 1, so
// tag == 0 always means "untracked"); role is the element's coding role
// (0 = data, 1.. = parity family index + 1) so scrub can cross-check
// that a sidecar record describes the element it sits on.
constexpr uint64_t make_tag(uint32_t generation, int64_t stripe, int row,
                            int role) {
  return (static_cast<uint64_t>(generation) << 32) |
         ((static_cast<uint64_t>(stripe) & 0xFFFFF) << 12) |
         ((static_cast<uint64_t>(row) & 0xFF) << 4) |
         (static_cast<uint64_t>(role) & 0xF);
}
constexpr uint32_t tag_generation(uint64_t tag) {
  return static_cast<uint32_t>(tag >> 32);
}
constexpr int64_t tag_stripe(uint64_t tag) {
  return static_cast<int64_t>((tag >> 12) & 0xFFFFF);
}
constexpr int tag_row(uint64_t tag) {
  return static_cast<int>((tag >> 4) & 0xFF);
}
constexpr int tag_role(uint64_t tag) { return static_cast<int>(tag & 0xF); }

namespace detail {
// Partial-count-safe positional I/O used by the sidecar (and tested
// directly: pread/pwrite may legally transfer fewer bytes than asked).
// pread_fully returns false on EOF-before-n or error; pwrite_fully
// returns false on error. Both retry EINTR and short counts.
bool pread_fully(int fd, void* buf, size_t n, int64_t offset);
bool pwrite_fully(int fd, const void* buf, size_t n, int64_t offset);
}  // namespace detail

// One disk's integrity records. Thread contract: at most one writer per
// element at a time (the array's stripe locks already guarantee this);
// readers are unrestricted — each record is a seqlock over atomics.
class ChecksumStore {
 public:
  explicit ChecksumStore(int64_t elements);
  ~ChecksumStore();

  ChecksumStore(const ChecksumStore&) = delete;
  ChecksumStore& operator=(const ChecksumStore&) = delete;

  int64_t elements() const { return elements_; }

  struct Snapshot {
    uint64_t sum = 0;
    uint64_t prev = 0;
    uint64_t tag = 0;
    bool tracked() const { return tag != 0; }
  };

  Snapshot load(int64_t element) const;

  // Records an acknowledged write: current sum becomes prev, the new sum
  // and identity land, the generation advances. Call *after* the device
  // acks. `stripe`/`row`/`role` form the identity half of the tag.
  void record(int64_t element, uint64_t sum, int64_t stripe, int row,
              int role);

  // Re-derives the record from known-good content (journal replay,
  // scrub repair, degraded reconstruction). Clears prev — the previous
  // payload is unknowable after reconstruction, so stale detection
  // starts over rather than false-positive.
  void resync(int64_t element, uint64_t sum, int64_t stripe, int row,
              int role);

  // Classifies a payload hash against this disk's records (table above).
  IntegrityVerdict classify(int64_t element, uint64_t payload_sum) const;

  // Forgets everything (disk replaced with a blank: no history survives).
  void invalidate_all();

  // --- persistence (FileDisk sidecars) ---------------------------------
  // Attaches (creating or loading) a sidecar file. Existing valid slots
  // populate the in-memory records; subsequent record/resync calls write
  // through. Throws std::runtime_error on open/format errors.
  void attach_file(const std::string& path);
  bool persistent() const { return fd_ >= 0; }
  void flush();

  // Raw slot access for crash/torn-slot tests: byte offset of (element,
  // slot) in the sidecar file, and the slot payload size.
  static int64_t slot_offset(int64_t element, int slot);
  static constexpr size_t kSlotBytes = 40;

 private:
  struct Record {
    std::atomic<uint64_t> seq{0};  // seqlock; odd = writer active
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> prev{0};
    std::atomic<uint64_t> tag{0};
  };

  void store_locked(int64_t element, uint64_t sum, uint64_t prev,
                    uint64_t tag);
  void persist(int64_t element, uint64_t sum, uint64_t prev, uint64_t tag,
               uint64_t seq);

  int64_t elements_;
  std::unique_ptr<Record[]> recs_;
  int fd_ = -1;
  std::string path_;
};

}  // namespace dcode::raid

// StripeIoEngine: the batched stripe I/O executor between the array's
// policy layer and the BlockDevice layer.
//
// The array describes WHAT to transfer as batches of element-granular
// accesses (the planner's unit); the engine decides HOW:
//
//  * coalescing — same-disk accesses to adjacent device offsets merge
//    into one ranged vectored transfer (readv/writev), so a full-stripe
//    read costs a handful of device ops instead of rows × cols memcpys;
//  * parallelism — per-disk runs fan out across the ThreadPool, so
//    independent disks (and therefore independent stripes) transfer
//    concurrently for user reads/writes, not just rebuild;
//  * accounting — element-granular per-disk counters are maintained
//    exactly as if every element were its own access, so
//    per_disk_element_accesses() still equals the planner's IoPlan
//    predictions no matter how transfers were merged;
//  * fault handling — transient device errors are retried within a
//    budget, fail-stop devices surface as DiskFailedError, and every
//    element write is admitted through the array's WriteGate so
//    power-loss injection sees the same write stream it always did.
//
// The engine owns the disks (each backend wrapped in a
// FaultInjectingDevice) and the factory that materializes replacements.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "raid/array_metrics.h"
#include "raid/fault_injection.h"
#include "raid/health_monitor.h"
#include "raid/integrity.h"
#include "util/thread_pool.h"

namespace dcode::raid {

// The array's power-loss injection hook: every element write is admitted
// through the gate before it reaches a device. armed() lets the engine
// skip the serial admission path entirely when no injection is active.
class WriteGate {
 public:
  virtual ~WriteGate() = default;
  virtual bool armed() const = 0;
  // Consumes one unit of write budget; throws PowerLossError when the
  // injected budget is exhausted.
  virtual void admit() = 0;
};

// One array disk as the upper layers see it: the decorated device plus
// the element-granular accounting the experiments are built on.
class DiskHandle {
 public:
  DiskHandle(std::unique_ptr<BlockDevice> backend, obs::Counter* element_reads,
             obs::Counter* element_writes,
             std::unique_ptr<ChecksumStore> integrity = nullptr)
      : device_(std::make_unique<FaultInjectingDevice>(std::move(backend))),
        integrity_(std::move(integrity)),
        obs_reads_(element_reads),
        obs_writes_(element_writes) {}

  int id() const { return device_->id(); }
  size_t size() const { return device_->size(); }
  bool failed() const { return device_->failed(); }
  std::string_view backend_name() const { return device_->backend_name(); }

  // Element-granular accounting (one count per element read/written via
  // the engine, however the transfers were coalesced) — the runtime twin
  // of sim::IoStats.
  int64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  int64_t writes() const { return writes_.load(std::memory_order_relaxed); }
  int64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  int64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  void reset_stats() {
    reads_.store(0, std::memory_order_relaxed);
    writes_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
    bytes_written_.store(0, std::memory_order_relaxed);
    device_->reset_op_stats();
  }

  // Device-level op counts (one per ranged transfer): the coalescing
  // ratio is reads()/device_read_ops().
  int64_t device_read_ops() const { return device_->read_ops(); }
  int64_t device_write_ops() const { return device_->write_ops(); }

  // Rebuild watermark: stripes [0, readable_stripes) hold valid data on
  // this device. A freshly promoted (blank) spare starts at 0 and the
  // background rebuild worker advances the watermark stripe by stripe;
  // engine reads at/above it throw DiskFailedError so a stale healthy
  // plan can never silently return blank bytes. Writes are always
  // allowed: below the watermark they update rebuilt data, above it they
  // pre-populate elements the worker will overwrite consistently.
  int64_t readable_stripes() const {
    return readable_stripes_.load(std::memory_order_acquire);
  }
  void set_readable_stripes(int64_t stripes) {
    readable_stripes_.store(stripes, std::memory_order_release);
  }
  // Advance `expected` -> `expected + 1`; fails (returns false) when the
  // watermark moved underneath us — i.e. the device was re-promoted mid
  // rebuild pass and the pass's progress no longer applies.
  bool advance_readable_stripes(int64_t expected) {
    return readable_stripes_.compare_exchange_strong(
        expected, expected + 1, std::memory_order_acq_rel);
  }
  // `expected` -> fully readable; same CAS protection against a racing
  // re-promotion that reset the watermark to 0.
  bool mark_fully_readable(int64_t expected) {
    return readable_stripes_.compare_exchange_strong(
        expected, std::numeric_limits<int64_t>::max(),
        std::memory_order_acq_rel);
  }

  // This disk's integrity records (null when the engine runs without
  // the checksum sidecar).
  ChecksumStore* integrity() { return integrity_.get(); }
  const ChecksumStore* integrity() const { return integrity_.get(); }

  // Fault injection (decorator passthrough).
  FaultInjectingDevice& faults() { return *device_; }
  void corrupt(uint64_t offset, size_t len, Pcg32& rng) {
    device_->corrupt(offset, len, rng);
  }

  // Direct unaccounted device access — the test backdoor for planting
  // bytes behind the array's back. Throws DiskFailedError on a failed
  // device, like any other access.
  void read(uint64_t offset, std::span<uint8_t> out) const {
    if (!device_->read(offset, out).ok()) throw DiskFailedError(id());
  }
  void write(uint64_t offset, std::span<const uint8_t> in) {
    if (!device_->write(offset, in).ok()) throw DiskFailedError(id());
  }

 private:
  friend class StripeIoEngine;

  void account_reads(int64_t elements, int64_t bytes) {
    reads_.fetch_add(elements, std::memory_order_relaxed);
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    if (obs_reads_ != nullptr) obs_reads_->inc(elements);
  }
  void account_writes(int64_t elements, int64_t bytes) {
    writes_.fetch_add(elements, std::memory_order_relaxed);
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
    if (obs_writes_ != nullptr) obs_writes_->inc(elements);
  }

  std::unique_ptr<FaultInjectingDevice> device_;
  std::unique_ptr<ChecksumStore> integrity_;
  std::atomic<int64_t> readable_stripes_{
      std::numeric_limits<int64_t>::max()};
  obs::Counter* obs_reads_;
  obs::Counter* obs_writes_;
  mutable std::atomic<int64_t> reads_{0};
  mutable std::atomic<int64_t> writes_{0};
  mutable std::atomic<int64_t> bytes_read_{0};
  mutable std::atomic<int64_t> bytes_written_{0};
};

// Engine execution knobs. Namespace-level (not nested) so it can serve
// as a defaulted constructor argument.
struct EngineOptions {
  DeviceFactory factory;     // null => default_device_factory()
  bool coalesce = true;      // merge adjacent same-disk accesses
  bool parallel = true;      // fan per-disk runs across the pool
  int transient_retry_limit = 3;  // kTransient retries per transfer
  // Exponential backoff between transient retries: sleep roughly
  // base * 2^attempt (jittered into [delay/2, delay)), capped at max.
  // base <= 0 disables the sleep (tests that count retries exactly).
  int64_t retry_backoff_base_ns = 20'000;
  int64_t retry_backoff_max_ns = 5'000'000;
  // Per-transfer retry deadline: once this much wall time has been spent
  // inside one transfer's retry loop, the next transient escalates even
  // if attempts remain. 0 = attempts-only.
  int64_t retry_deadline_ns = 0;
  // Seeds the deterministic jitter stream (per disk x attempt x serial).
  uint64_t backoff_seed = 0x5EEDBACCu;
  // --- integrity (per-element checksum sidecar) -------------------------
  bool integrity = true;      // maintain per-element checksums + tags
  bool verify_reads = true;   // checksum-verify every element read
  // Persist sidecars as files in this directory ("" = in-memory only;
  // FileDisk arrays point this at the disk directory).
  std::string integrity_sidecar_dir;
  // Resolves an element's coding role for the write-identity tag:
  // (disk, stripe, row) -> 0 for data, 1 + family index for parity.
  // Null = record every element as role 0.
  std::function<int(int, int64_t, int)> element_role;
};

class StripeIoEngine {
 public:
  using Options = EngineOptions;

  // One element access. `dst`/`src` must stay valid until the batch call
  // returns; element length is the engine-wide element_size.
  struct ReadOp {
    int disk;
    int64_t stripe;
    int row;
    uint8_t* dst;
  };
  struct WriteOp {
    int disk;
    int64_t stripe;
    int row;
    const uint8_t* src;
  };

  StripeIoEngine(int disks, size_t disk_size, size_t element_size, int rows,
                 ThreadPool& pool, ArrayMetrics* metrics, WriteGate* gate,
                 Options options = {});

  int disk_count() const { return static_cast<int>(disks_.size()); }
  size_t element_size() const { return element_size_; }
  const Options& options() const { return options_; }

  DiskHandle& disk(int d) { return *disks_[static_cast<size_t>(d)]; }
  const DiskHandle& disk(int d) const { return *disks_[static_cast<size_t>(d)]; }

  // Batched element I/O: coalesced into ranged vectored transfers per
  // disk and fanned across the pool (per Options). Ops may arrive in any
  // order; reads of a failed device throw DiskFailedError. With `verify`
  // (the default, when Options::verify_reads is on) every element
  // payload is checksum-verified after the transfer; a condemned element
  // throws ElementIntegrityError. Scrub and journal replay pass verify =
  // false — they read raw precisely to judge the bytes themselves.
  void read_batch(std::span<const ReadOp> ops) { read_batch(ops, true); }
  void read_batch(std::span<const ReadOp> ops, bool verify);
  // Element writes. When the WriteGate is armed, ops execute serially in
  // batch order, one gate admission per element, so injected power loss
  // lands between exactly the same element writes as before batching.
  void write_batch(std::span<const WriteOp> ops);

  // Single-element conveniences.
  void read_element(int disk, int64_t stripe, int row, uint8_t* dst,
                    bool verify = true);
  void write_element(int disk, int64_t stripe, int row, const uint8_t* src);

  // --- integrity --------------------------------------------------------
  bool integrity_enabled() const { return options_.integrity; }
  // Classifies raw payload bytes against disk `d`'s records (kUntracked
  // when the engine runs without integrity).
  IntegrityVerdict classify_element(int d, int64_t stripe, int row,
                                    const uint8_t* data) const;
  // Re-derives checksum + identity tag from known-good content (journal
  // replay, scrub repair, reconstruction). No-op without integrity.
  void resync_element_integrity(int d, int64_t stripe, int row,
                                const uint8_t* data);
  // Linear element index on one device (ChecksumStore addressing).
  int64_t element_index(int64_t stripe, int row) const {
    return stripe * static_cast<int64_t>(rows_) + row;
  }

  // Fail-stop injection and blank-replacement (new backend from the
  // factory), mirroring a controller pulling and reseating a drive.
  void fail_disk(int d) { disk(d).faults().fail(); }
  void replace_disk(int d);

  // Routes per-op outcomes (success latency, transients, fail-stops) into
  // the health monitor. Optional; set once right after construction,
  // before any I/O.
  void set_health_monitor(HealthMonitor* monitor) { monitor_ = monitor; }

  // Flushes every non-failed device (fsync for FileDisk). Returns the
  // number of devices flushed.
  int flush();

  std::vector<int64_t> per_disk_element_accesses() const;
  void reset_stats();

  ThreadPool& pool() { return *pool_; }

 private:
  uint64_t element_offset(int64_t stripe, int row) const {
    return (static_cast<uint64_t>(stripe) * static_cast<uint64_t>(rows_) +
            static_cast<uint64_t>(row)) *
           element_size_;
  }
  // Issues the coalesced runs for `disk`; `idx` indexes into the batch.
  // `trace_span` attributes the emitted disk.read/disk.write events (0 =
  // the calling thread's current span); `op_id` stamps flight-recorder
  // events with the originating array op.
  void run_read(int d, std::span<const ReadOp> ops,
                std::span<const size_t> idx, uint64_t trace_span,
                uint64_t op_id, bool verify);
  // Verifies one coalesced run's payloads; throws ElementIntegrityError
  // (after one defensive re-read) on a condemned element.
  void verify_run(int d, std::span<const ReadOp> ops,
                  std::span<const size_t> idx, size_t first, size_t run,
                  uint64_t gen, uint64_t trace_span, uint64_t op_id);
  int element_role(int d, int64_t stripe, int row) const {
    return options_.element_role ? options_.element_role(d, stripe, row) : 0;
  }
  void run_write(int d, std::span<const WriteOp> ops,
                 std::span<const size_t> idx, uint64_t trace_span,
                 uint64_t op_id);
  IoResult with_retries(FaultInjectingDevice& dev, uint64_t op_id,
                        const std::function<IoResult()>& io) const;
  void backoff_sleep(int disk, int attempt) const;

  size_t disk_size_;
  size_t element_size_;
  int rows_;
  ThreadPool* pool_;
  ArrayMetrics* metrics_;
  WriteGate* gate_;
  HealthMonitor* monitor_ = nullptr;
  Options options_;
  std::vector<std::unique_ptr<DiskHandle>> disks_;
  // Distinguishes concurrent backoff jitter streams deterministically.
  mutable std::atomic<uint64_t> backoff_serial_{0};
};

}  // namespace dcode::raid

// Raid6Array's degraded-mode paths: whole-stripe reconstruction, the
// stripe-rewrite write policy, and planner-driven degraded reads. Split
// from raid6_array.cc so the core policy file stays readable.
#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "codes/decoder.h"
#include "codes/encoder.h"
#include "codes/stripe.h"
#include "obs/trace.h"
#include "raid/raid6_array.h"
#include "xorops/xor_region.h"

namespace dcode::raid {

using codes::CodeLayout;
using codes::Element;
using codes::Equation;
using codes::Stripe;

using ReadOp = StripeIoEngine::ReadOp;
using WriteOp = StripeIoEngine::WriteOp;

void Raid6Array::load_stripe_degraded(int64_t stripe, Stripe& out,
                                      bool verify) {
  const CodeLayout& layout = *layout_;
  std::vector<Element> lost;
  std::vector<ReadOp> rops;
  for (int c = 0; c < layout.cols(); ++c) {
    const int pd = map_.physical_disk(stripe, c);
    // Per-stripe degradedness: a rebuilding disk is live for stripes
    // below its watermark, so a partially rebuilt spare contributes the
    // data it already has instead of forcing a full decode.
    bool dead = disk_degraded_for_stripe(pd, stripe);
    for (int r = 0; r < layout.rows(); ++r) {
      if (dead) {
        lost.push_back(codes::make_element(r, c));
      } else {
        rops.push_back({pd, stripe, r, out.at(r, c)});
      }
    }
  }
  engine_.read_batch(rops, verify);
  if (!lost.empty()) {
    auto res = codes::hybrid_decode(out, lost);
    DCODE_CHECK(res.success, "stripe unrecoverable (more than two failures)");
    metrics_.elements_reconstructed->inc(static_cast<int64_t>(lost.size()));
  }
}

void Raid6Array::write_stripe_degraded(int64_t stripe, int64_t g,
                                       int64_t stripe_end, int64_t offset,
                                       std::span<const uint8_t> data) {
  // Stripe-rewrite policy: reconstruct, modify, re-encode, then write
  // back only the touched surviving data elements plus every surviving
  // parity (untouched data is already on disk).
  const CodeLayout& layout = *layout_;
  Stripe s(layout, element_size_);
  load_stripe_degraded(stripe, s);
  std::set<Element> touched;
  for (int64_t e = g; e <= stripe_end; ++e) {
    auto loc = map_.locate(e);
    size_t eb, sb, len;
    overlay_range(e, offset, static_cast<int64_t>(data.size()),
                  static_cast<int64_t>(element_size_), &eb, &sb, &len);
    std::memcpy(s.at(loc.element) + eb, data.data() + sb, len);
    touched.insert(loc.element);
  }
  codes::encode_stripe(s);
  // Write phase with internal failover: once the first write lands the
  // on-disk stripe mixes old and new state, so another disk dying here
  // must NOT trigger a re-load (decoding through half-updated parity
  // would manufacture consistent garbage). Replay the captured target
  // values instead — they are idempotent — skipping disks that have died
  // since; rebuild reconstructs their elements from the survivors.
  for (int attempt = 0;; ++attempt) {
    try {
      std::vector<WriteOp> wops;
      for (int r = 0; r < layout.rows(); ++r) {
        for (int c = 0; c < layout.cols(); ++c) {
          int pdisk = map_.physical_disk(stripe, c);
          if (disk_degraded_for_stripe(pdisk, stripe)) continue;
          Element e = codes::make_element(r, c);
          if (layout.is_parity(r, c) || touched.count(e)) {
            wops.push_back({pdisk, stripe, r, s.at(r, c)});
          }
        }
      }
      engine_.write_batch(wops);
      return;
    } catch (const DiskFailedError&) {
      if (attempt >= kMaxFailoverAttempts) throw;
      metrics_.failovers->inc();
    }
  }
}

void Raid6Array::read_degraded(int64_t first, int64_t last, int64_t offset,
                               std::span<uint8_t> out,
                               const std::vector<int>& failed) {
  const CodeLayout& layout = *layout_;
  const int64_t esize = static_cast<int64_t>(element_size_);
  // Follow the planner's per-element equation choices.
  IoPlan plan = planner_.plan_degraded_read(first,
                                            static_cast<int>(last - first + 1),
                                            failed);
  obs::Span span(
      obs::TraceLog::global(), "degraded_read",
      {{"offset", offset}, {"bytes", static_cast<int64_t>(out.size())},
       {"failed_disks", static_cast<int64_t>(failed.size())},
       {"plan_reads", plan.reads()},
       {"reconstructions", static_cast<int64_t>(plan.reconstructions.size())}});
  // Scratch cache of element buffers per (stripe, element).
  struct Key {
    int64_t stripe;
    Element e;
    bool operator<(const Key& o) const {
      return stripe != o.stripe ? stripe < o.stripe : e < o.e;
    }
  };
  std::map<Key, AlignedBuffer> cache;

  std::vector<ReadOp> rops;
  rops.reserve(plan.accesses.size());
  for (const IoAccess& a : plan.accesses) {
    DCODE_ASSERT(!a.is_write, "degraded read plan must not write");
    auto [it, fresh] =
        cache.emplace(Key{a.stripe, a.element}, AlignedBuffer(element_size_));
    (void)fresh;  // duplicate plan reads share a buffer but still count
    rops.push_back({a.disk, a.stripe, a.element.row, it->second.data()});
  }
  engine_.read_batch(rops);

  for (const Reconstruction& rec : plan.reconstructions) {
    AlignedBuffer buf(element_size_);
    if (rec.equation >= 0) {
      const Equation& q = layout.equations()[static_cast<size_t>(rec.equation)];
      auto fold = [&](const Element& m) {
        if (m == rec.target) return;
        auto it = cache.find(Key{rec.stripe, m});
        DCODE_CHECK(it != cache.end(),
                    "planner promised this member was read");
        xorops::xor_into(buf.data(), it->second.data(), element_size_);
      };
      fold(q.parity);
      for (const Element& m : q.sources) fold(m);
    } else {
      // Full-stripe chained decode fallback (two failed disks crossing
      // every equation of the target).
      span.note("full_stripe_decode", {{"stripe", rec.stripe}});
      Stripe s(layout, element_size_);
      load_stripe_degraded(rec.stripe, s);
      std::memcpy(buf.data(), s.at(rec.target), element_size_);
    }
    cache.emplace(Key{rec.stripe, rec.target}, std::move(buf));
  }
  // Equation-based reconstructions (the fallback already counted its own
  // rebuilt elements inside load_stripe_degraded).
  int64_t eq_recs = 0;
  for (const Reconstruction& rec : plan.reconstructions) {
    if (rec.equation >= 0) ++eq_recs;
  }
  metrics_.elements_reconstructed->inc(eq_recs);

  for (int64_t e = first; e <= last; ++e) {
    auto loc = map_.locate(e);
    auto it = cache.find(Key{loc.stripe, loc.element});
    DCODE_CHECK(it != cache.end(), "requested element missing from plan");
    size_t eb, sb, len;
    overlay_range(e, offset, static_cast<int64_t>(out.size()), esize, &eb,
                  &sb, &len);
    std::memcpy(out.data() + sb, it->second.data() + eb, len);
  }
}

}  // namespace dcode::raid

// Bounded admission queue for the request pipeline, with write merging.
//
// Submitters push PendingOps (sequence numbers are assigned under the
// queue mutex, so queue order == sequence order == arrival order);
// pipeline workers pop OpBatches. A pop takes the head op and, when it
// is a write and merging is on, absorbs the *consecutive run* of queued
// writes whose byte ranges overlap or adjoin the accumulated union —
// stopping at the first non-mergeable op, so nothing is ever reordered
// past anything it could conflict with. The union stays contiguous by
// induction (each absorbed op touches it), which is what lets D-Code's
// consecutive-elements-share-one-horizontal-parity property turn k
// queued partial writes into one RMW/RCW plan.
//
// Backpressure: push() blocks while the queue is at depth. close()
// wakes everyone; pops drain the remainder and then return false.
//
// The ticket-registration callback passed to pop_merged() runs under
// the queue mutex, making the FIFO pop atomic with admission-order
// ticket registration (see StripeRangeLock's protocol). Lock order is
// queue mutex -> range-lock mutex, nothing else.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace dcode::raid {

// Completion state shared between a submitted op's OpFuture and the
// pipeline worker that eventually executes it.
struct OpState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;       // set iff the op failed
  uint64_t op_id = 0;             // obs::next_op_id(), minted at submit
  uint64_t seq = 0;               // admission order, assigned by the queue
  int64_t enqueue_ns = 0;         // submit time (steady clock)
  int64_t complete_ns = 0;        // completion time (steady clock)

  void complete(std::exception_ptr e, int64_t now_ns) {
    {
      std::lock_guard<std::mutex> l(mu);
      error = std::move(e);
      complete_ns = now_ns;
      done = true;
    }
    cv.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> l(mu);
    cv.wait(l, [&] { return done; });
  }

  bool ready() {
    std::lock_guard<std::mutex> l(mu);
    return done;
  }
};

// One submitted-but-not-yet-executed op. Writes own a copy of their
// payload (the caller's buffer is free the moment submit returns);
// reads borrow the destination, which must stay valid until the future
// completes.
struct PendingOp {
  bool is_write = false;
  int64_t offset = 0;
  int64_t len = 0;
  std::vector<uint8_t> data;    // write payload (owned)
  uint8_t* read_dst = nullptr;  // read destination (caller-owned)
  int64_t first_stripe = 0;     // stripe range covered by [offset, len)
  int64_t last_stripe = 0;
  uint64_t seq = 0;  // assigned by OpQueue::push
  std::shared_ptr<OpState> state;
};

// What a worker executes: one read, or one-or-more merged writes whose
// byte ranges union to the contiguous [offset, end). Sources are in
// admission order; on overlap the later source wins (applied last when
// the merged buffer is assembled).
struct OpBatch {
  std::vector<PendingOp> sources;
  bool is_write = false;
  int64_t offset = 0;  // union begin
  int64_t end = 0;     // union end (exclusive)
  int64_t first_stripe = 0;
  int64_t last_stripe = 0;
  uint64_t seq = 0;  // the head source's seq — the batch's ticket id
};

class OpQueue {
 public:
  struct Options {
    size_t depth = 256;       // backpressure threshold for push()
    bool merge_writes = true;
    size_t merge_limit = 16;  // max sources per merged batch
  };

  // `depth_gauge` (optional) tracks the live queue length;
  // `merge_width` (optional) gets one observation per write batch
  // (its source count — width 1 means nothing merged).
  OpQueue(Options options, obs::Gauge* depth_gauge = nullptr,
          obs::Histogram* merge_width = nullptr)
      : options_(options),
        depth_gauge_(depth_gauge),
        merge_width_(merge_width) {}

  // Assigns the op's sequence number and enqueues it, blocking while the
  // queue is full. Returns false (op not queued) iff the queue is closed.
  bool push(PendingOp op);

  // Called under the queue mutex, once per popped batch, before the pop
  // is visible to anyone: (seq, first_stripe, last_stripe, is_write).
  using RegisterFn =
      std::function<void(uint64_t, int64_t, int64_t, bool)>;

  // Pops the next batch (merging queued writes into it, see above) and
  // registers its admission ticket via `reg`. Blocks while the queue is
  // empty; returns false once it is closed *and* drained.
  bool pop_merged(OpBatch* out, const RegisterFn& reg);

  // Wakes all waiters; subsequent pushes fail, pops drain then stop.
  void close();

  size_t depth() const {
    std::lock_guard<std::mutex> l(mu_);
    return q_.size();
  }

 private:
  Options options_;
  obs::Gauge* depth_gauge_;
  obs::Histogram* merge_width_;

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<PendingOp> q_;
  uint64_t next_seq_ = 1;
  bool closed_ = false;
};

}  // namespace dcode::raid

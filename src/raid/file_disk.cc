#include "raid/file_disk.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "raid/mem_disk.h"

namespace dcode::raid {

namespace {

// preadv/pwritev segment caps: IOV_MAX is 1024 on Linux; stay under it.
constexpr size_t kMaxIov = 512;

std::string errno_message(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

}  // namespace

FileDisk::FileDisk(int id, size_t size, std::string path, Options opts)
    : BlockDevice(id, size),
      path_(std::move(path)),
      unlink_on_close_(opts.unlink_on_close) {
  int flags = O_RDWR | O_CREAT | O_CLOEXEC;
  if (!opts.reuse) flags |= O_TRUNC;
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) throw std::runtime_error(errno_message("open", path_));
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    int saved = errno;
    ::close(fd_);
    errno = saved;
    throw std::runtime_error(errno_message("ftruncate", path_));
  }
}

FileDisk::~FileDisk() {
  if (fd_ >= 0) ::close(fd_);
  if (unlink_on_close_) ::unlink(path_.c_str());
}

IoResult FileDisk::do_read(uint64_t offset, std::span<uint8_t> out) {
  size_t done = 0;
  while (done < out.size()) {
    ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) return IoResult::transient();
      return IoResult::failed();
    }
    if (n == 0) break;  // hole past EOF reads as zero via ftruncate sizing
    done += static_cast<size_t>(n);
  }
  return IoResult::success(done);
}

IoResult FileDisk::do_write(uint64_t offset, std::span<const uint8_t> in) {
  size_t done = 0;
  while (done < in.size()) {
    ssize_t n = ::pwrite(fd_, in.data() + done, in.size() - done,
                         static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) return IoResult::transient();
      return IoResult::failed();
    }
    done += static_cast<size_t>(n);
  }
  return IoResult::success(done);
}

IoResult FileDisk::do_readv(uint64_t offset, std::span<const IoVec> iov) {
  size_t total = 0;
  size_t i = 0;
  std::vector<struct iovec> sys;
  while (i < iov.size()) {
    sys.clear();
    size_t chunk_bytes = 0;
    while (i < iov.size() && sys.size() < kMaxIov) {
      sys.push_back({iov[i].data, iov[i].len});
      chunk_bytes += iov[i].len;
      ++i;
    }
    size_t done = 0;
    while (done < chunk_bytes) {
      ssize_t n = ::preadv(fd_, sys.data(), static_cast<int>(sys.size()),
                           static_cast<off_t>(offset + total + done));
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) return IoResult::transient();
        return IoResult::failed();
      }
      if (n == 0) break;
      done += static_cast<size_t>(n);
      if (done < chunk_bytes) {
        // Short transfer: advance the segment list past `n` bytes.
        size_t skip = static_cast<size_t>(n);
        while (!sys.empty() && skip >= sys.front().iov_len) {
          skip -= sys.front().iov_len;
          sys.erase(sys.begin());
        }
        if (!sys.empty() && skip > 0) {
          sys.front().iov_base = static_cast<uint8_t*>(sys.front().iov_base) +
                                 skip;
          sys.front().iov_len -= skip;
        }
      }
    }
    total += done;
  }
  return IoResult::success(total);
}

IoResult FileDisk::do_writev(uint64_t offset,
                             std::span<const ConstIoVec> iov) {
  size_t total = 0;
  size_t i = 0;
  std::vector<struct iovec> sys;
  while (i < iov.size()) {
    sys.clear();
    size_t chunk_bytes = 0;
    while (i < iov.size() && sys.size() < kMaxIov) {
      sys.push_back({const_cast<uint8_t*>(iov[i].data), iov[i].len});
      chunk_bytes += iov[i].len;
      ++i;
    }
    size_t done = 0;
    while (done < chunk_bytes) {
      ssize_t n = ::pwritev(fd_, sys.data(), static_cast<int>(sys.size()),
                            static_cast<off_t>(offset + total + done));
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) return IoResult::transient();
        return IoResult::failed();
      }
      done += static_cast<size_t>(n);
      if (done < chunk_bytes) {
        size_t skip = static_cast<size_t>(n);
        while (!sys.empty() && skip >= sys.front().iov_len) {
          skip -= sys.front().iov_len;
          sys.erase(sys.begin());
        }
        if (!sys.empty() && skip > 0) {
          sys.front().iov_base = static_cast<uint8_t*>(sys.front().iov_base) +
                                 skip;
          sys.front().iov_len -= skip;
        }
      }
    }
    total += done;
  }
  return IoResult::success(total);
}

IoResult FileDisk::do_flush() {
  if (::fsync(fd_) != 0) return IoResult::failed();
  return IoResult::success(0);
}

IoResult FileDisk::do_discard(uint64_t offset, size_t len) {
  // Portable discard: write zeros (a hole punch where supported would be
  // an optimization, not a semantic change — reads return zeros either
  // way).
  std::vector<uint8_t> zeros(std::min<size_t>(len, 1 << 20), 0);
  size_t done = 0;
  while (done < len) {
    size_t n = std::min(zeros.size(), len - done);
    IoResult r = do_write(offset + done, {zeros.data(), n});
    if (!r.ok()) return r;
    done += n;
  }
  return IoResult::success(len);
}

DeviceFactory default_device_factory() {
  const char* backend = std::getenv("DCODE_DISK_BACKEND");
  if (backend == nullptr || std::string_view(backend) == "mem" ||
      std::string_view(backend).empty()) {
    return [](int id, size_t size) -> std::unique_ptr<BlockDevice> {
      return std::make_unique<MemDisk>(id, size);
    };
  }
  DCODE_CHECK(std::string_view(backend) == "file",
              "DCODE_DISK_BACKEND must be 'mem' or 'file'");
  const char* dir = std::getenv("DCODE_DISK_DIR");
  if (dir == nullptr) dir = std::getenv("TMPDIR");
  if (dir == nullptr) dir = "/tmp";
  std::string base = dir;
  return [base](int id, size_t size) -> std::unique_ptr<BlockDevice> {
    // Unique per process × disk × incarnation so parallel tests and
    // replace-with-blank never collide on a path.
    static std::atomic<uint64_t> serial{0};
    std::string path = base + "/dcode-disk-" + std::to_string(::getpid()) +
                       "-" + std::to_string(id) + "-" +
                       std::to_string(serial.fetch_add(1)) + ".img";
    return std::make_unique<FileDisk>(id, size, std::move(path),
                                      FileDisk::Options{
                                          .reuse = false,
                                          .unlink_on_close = true,
                                      });
  };
}

}  // namespace dcode::raid

#include "raid/pipeline.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/op_context.h"
#include "util/check.h"

namespace dcode::raid {

namespace {

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<int64_t> merge_width_bounds() {
  return {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64};
}

}  // namespace

StripePipeline::Metrics StripePipeline::resolve_metrics(Raid6Array& array) {
  obs::Registry& reg = array.metrics_registry();
  Metrics m;
  m.queue_depth = &reg.gauge("pipeline.queue_depth", {},
                             "ops waiting in the pipeline's admission queue");
  m.admission_wait_ns = &reg.histogram(
      "pipeline.admission_wait_ns", obs::latency_fine_bounds_ns(), {},
      "time a popped batch waited for its stripe-range ticket (0 = no "
      "conflicting earlier op)");
  m.merge_width = &reg.histogram(
      "pipeline.merge_width", merge_width_bounds(), {},
      "submitted writes coalesced per executed write batch (1 = nothing "
      "merged)");
  m.ops_submitted = &reg.counter(
      "pipeline.ops_submitted", {}, "ops accepted by submit_read/submit_write");
  m.ops_completed = &reg.counter("pipeline.ops_completed", {},
                                 "ops whose futures have completed");
  m.writes_merged = &reg.counter(
      "pipeline.writes_merged", {},
      "writes absorbed into another batch (sources beyond each batch head)");
  m.batches =
      &reg.counter("pipeline.batches", {}, "batches executed by workers");
  return m;
}

StripePipeline::StripePipeline(Raid6Array& array, PipelineOptions options)
    : array_(array),
      options_(options),
      metrics_(resolve_metrics(array)),
      range_lock_(metrics_.admission_wait_ns),
      queue_(OpQueue::Options{options.queue_depth, options.merge_writes,
                              options.merge_limit},
             metrics_.queue_depth, metrics_.merge_width) {
  DCODE_CHECK(options_.workers > 0, "pipeline needs at least one worker");
  DCODE_CHECK(options_.queue_depth > 0, "pipeline queue depth must be > 0");
  DCODE_CHECK(options_.merge_limit > 0, "merge limit must be > 0");

  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

StripePipeline::~StripePipeline() {
  queue_.close();
  for (auto& w : workers_) w.join();
}

void StripePipeline::stripe_range(int64_t offset, int64_t len,
                                  int64_t* first, int64_t* last) const {
  const int64_t stripe_bytes =
      array_.layout().data_count() *
      static_cast<int64_t>(array_.element_size());
  *first = offset / stripe_bytes;
  *last = (len > 0 ? offset + len - 1 : offset) / stripe_bytes;
}

OpFuture StripePipeline::submit(PendingOp op) {
  DCODE_CHECK(op.offset >= 0 && op.offset + op.len <= array_.capacity(),
              "pipeline op outside the array's logical space");
  op.state = std::make_shared<OpState>();
  op.state->op_id = obs::next_op_id();
  op.state->enqueue_ns = now_ns();
  stripe_range(op.offset, op.len, &op.first_stripe, &op.last_stripe);
  OpFuture fut(op.state);
  metrics_.ops_submitted->inc();
  if (op.len == 0) {  // nothing to do — complete inline
    op.state->complete(nullptr, now_ns());
    metrics_.ops_completed->inc();
    return fut;
  }
  {
    std::lock_guard<std::mutex> l(drain_mu_);
    ++submitted_;
  }
  if (!queue_.push(std::move(op))) {
    {
      std::lock_guard<std::mutex> l(drain_mu_);
      --submitted_;
    }
    throw std::runtime_error("StripePipeline: submit after shutdown");
  }
  return fut;
}

OpFuture StripePipeline::submit_read(int64_t offset, std::span<uint8_t> out) {
  PendingOp op;
  op.is_write = false;
  op.offset = offset;
  op.len = static_cast<int64_t>(out.size());
  op.read_dst = out.data();
  return submit(std::move(op));
}

OpFuture StripePipeline::submit_write(int64_t offset,
                                      std::span<const uint8_t> data) {
  PendingOp op;
  op.is_write = true;
  op.offset = offset;
  op.len = static_cast<int64_t>(data.size());
  op.data.assign(data.begin(), data.end());
  return submit(std::move(op));
}

void StripePipeline::drain() {
  std::unique_lock<std::mutex> l(drain_mu_);
  drain_cv_.wait(l, [&] { return submitted_ == completed_; });
}

void StripePipeline::worker_loop() {
  OpBatch batch;
  const auto reg = [this](uint64_t seq, int64_t first, int64_t last,
                          bool is_write) {
    range_lock_.register_ticket(seq, first, last, is_write);
  };
  while (queue_.pop_merged(&batch, reg)) {
    range_lock_.acquire(batch.seq);
    execute(batch);
    range_lock_.release(batch.seq);
    metrics_.batches->inc();
    if (batch.is_write && batch.sources.size() > 1)
      metrics_.writes_merged->inc(
          static_cast<int64_t>(batch.sources.size()) - 1);
    metrics_.ops_completed->inc(static_cast<int64_t>(batch.sources.size()));
    {
      std::lock_guard<std::mutex> l(drain_mu_);
      completed_ += batch.sources.size();
    }
    drain_cv_.notify_all();
  }
}

void StripePipeline::execute(OpBatch& batch) {
  // The batch runs under its head op's identity: the array's OpGuard
  // adopts this context, so the root span, flight-recorder events, and
  // enqueue-anchored latency all attribute to the op that opened the
  // batch (merged followers keep their own ids on their futures).
  PendingOp& head = batch.sources.front();
  obs::OpContext ctx;
  ctx.op_id = head.state->op_id;
  ctx.enqueue_ns = head.state->enqueue_ns;
  obs::OpContextScope scope(&ctx);

  std::exception_ptr err;
  try {
    if (!batch.is_write) {
      array_.read(head.offset,
                  std::span<uint8_t>(head.read_dst,
                                     static_cast<size_t>(head.len)));
    } else if (batch.sources.size() == 1) {
      array_.write(head.offset, std::span<const uint8_t>(head.data));
    } else {
      // Assemble the merged image in admission order — later sources
      // overwrite earlier ones on byte overlap, and the union is
      // contiguous (each merged op overlapped or adjoined it), so every
      // byte of [offset, end) is covered by some source.
      std::vector<uint8_t> buf(static_cast<size_t>(batch.end - batch.offset));
      for (const PendingOp& s : batch.sources)
        std::copy(s.data.begin(), s.data.end(),
                  buf.begin() + static_cast<size_t>(s.offset - batch.offset));
      array_.write(batch.offset, std::span<const uint8_t>(buf));
    }
  } catch (...) {
    err = std::current_exception();
  }

  const int64_t done = now_ns();
  for (PendingOp& s : batch.sources) s.state->complete(err, done);
}

}  // namespace dcode::raid

#include "raid/op_queue.h"

#include <algorithm>
#include <utility>

namespace dcode::raid {

bool OpQueue::push(PendingOp op) {
  std::unique_lock<std::mutex> l(mu_);
  not_full_.wait(l, [&] { return q_.size() < options_.depth || closed_; });
  if (closed_) return false;
  op.seq = next_seq_++;
  if (op.state) op.state->seq = op.seq;
  q_.push_back(std::move(op));
  if (depth_gauge_ != nullptr)
    depth_gauge_->set(static_cast<int64_t>(q_.size()));
  l.unlock();
  not_empty_.notify_one();
  return true;
}

bool OpQueue::pop_merged(OpBatch* out, const RegisterFn& reg) {
  std::unique_lock<std::mutex> l(mu_);
  not_empty_.wait(l, [&] { return !q_.empty() || closed_; });
  if (q_.empty()) return false;  // closed and drained

  out->sources.clear();
  PendingOp head = std::move(q_.front());
  q_.pop_front();
  out->is_write = head.is_write;
  out->offset = head.offset;
  out->end = head.offset + head.len;
  out->first_stripe = head.first_stripe;
  out->last_stripe = head.last_stripe;
  out->seq = head.seq;
  out->sources.push_back(std::move(head));

  if (out->is_write && options_.merge_writes) {
    // Absorb the consecutive run of mergeable writes behind the head.
    // Stopping at the first non-mergeable op is what keeps this
    // order-preserving: every op left in the queue is behind (in
    // admission order) everything we merged.
    while (!q_.empty() && out->sources.size() < options_.merge_limit) {
      const PendingOp& n = q_.front();
      const bool mergeable = n.is_write && n.offset <= out->end &&
                             n.offset + n.len >= out->offset;
      if (!mergeable) break;
      out->offset = std::min(out->offset, n.offset);
      out->end = std::max(out->end, n.offset + n.len);
      out->first_stripe = std::min(out->first_stripe, n.first_stripe);
      out->last_stripe = std::max(out->last_stripe, n.last_stripe);
      out->sources.push_back(std::move(q_.front()));
      q_.pop_front();
    }
    if (merge_width_ != nullptr)
      merge_width_->observe(static_cast<int64_t>(out->sources.size()));
  }

  // Register the admission ticket while the pop is still invisible:
  // with the queue mutex held, no later op can be popped (and thus
  // registered) before this one, so ticket order == admission order.
  reg(out->seq, out->first_stripe, out->last_stripe, out->is_write);

  if (depth_gauge_ != nullptr)
    depth_gauge_->set(static_cast<int64_t>(q_.size()));
  l.unlock();
  not_full_.notify_all();
  return true;
}

void OpQueue::close() {
  {
    std::lock_guard<std::mutex> l(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

}  // namespace dcode::raid

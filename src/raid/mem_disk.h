// MemDisk: the RAM-backed BlockDevice.
//
// Substitute for the paper's 16-disk SAS array (see DESIGN.md §4): an
// aligned byte buffer behind the BlockDevice contract. Pure storage —
// failure injection, silent corruption, and latency all live in the
// composable FaultInjectingDevice decorator (raid/fault_injection.h),
// and access accounting lives in the BlockDevice base plus the
// StripeIoEngine's element-granular counters.
#pragma once

#include <cstring>

#include "raid/block_device.h"
#include "util/aligned_buffer.h"

namespace dcode::raid {

class MemDisk : public BlockDevice {
 public:
  MemDisk(int id, size_t size) : BlockDevice(id, size), storage_(size) {}

  std::string_view backend_name() const override { return "mem"; }
  uint32_t capabilities() const override { return kDeviceDiscard; }

 protected:
  IoResult do_read(uint64_t offset, std::span<uint8_t> out) override {
    std::memcpy(out.data(), storage_.data() + offset, out.size());
    return IoResult::success(out.size());
  }

  IoResult do_write(uint64_t offset, std::span<const uint8_t> in) override {
    std::memcpy(storage_.data() + offset, in.data(), in.size());
    return IoResult::success(in.size());
  }

  IoResult do_readv(uint64_t offset, std::span<const IoVec> iov) override {
    uint64_t at = offset;
    for (const IoVec& v : iov) {
      std::memcpy(v.data, storage_.data() + at, v.len);
      at += v.len;
    }
    return IoResult::success(static_cast<size_t>(at - offset));
  }

  IoResult do_writev(uint64_t offset,
                     std::span<const ConstIoVec> iov) override {
    uint64_t at = offset;
    for (const ConstIoVec& v : iov) {
      std::memcpy(storage_.data() + at, v.data, v.len);
      at += v.len;
    }
    return IoResult::success(static_cast<size_t>(at - offset));
  }

  IoResult do_discard(uint64_t offset, size_t len) override {
    std::memset(storage_.data() + offset, 0, len);
    return IoResult::success(len);
  }

 private:
  AlignedBuffer storage_;
};

}  // namespace dcode::raid

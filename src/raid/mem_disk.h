// MemDisk: an in-memory, fault-injectable disk.
//
// Substitute for the paper's 16-disk SAS array (see DESIGN.md §4): byte
// storage plus the two things the experiments need from a disk — failure
// injection and per-disk access accounting. Reads/writes to a failed disk
// throw DiskFailedError, which is how the array layer notices it must
// reconstruct.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>

#include "util/aligned_buffer.h"
#include "util/rng.h"

namespace dcode::raid {

class DiskFailedError : public std::runtime_error {
 public:
  explicit DiskFailedError(int disk)
      : std::runtime_error("disk " + std::to_string(disk) + " has failed"),
        disk_(disk) {}
  int disk() const { return disk_; }

 private:
  int disk_;
};

class MemDisk {
 public:
  MemDisk(int id, size_t size) : id_(id), storage_(size) {}

  int id() const { return id_; }
  size_t size() const { return storage_.size(); }
  bool failed() const { return failed_; }

  void read(size_t offset, std::span<uint8_t> out) const {
    if (failed_) throw DiskFailedError(id_);
    DCODE_CHECK(offset + out.size() <= storage_.size(),
                "read past end of disk");
    std::memcpy(out.data(), storage_.data() + offset, out.size());
    reads_.fetch_add(1, std::memory_order_relaxed);
    bytes_read_.fetch_add(static_cast<int64_t>(out.size()),
                          std::memory_order_relaxed);
  }

  void write(size_t offset, std::span<const uint8_t> in) {
    if (failed_) throw DiskFailedError(id_);
    DCODE_CHECK(offset + in.size() <= storage_.size(),
                "write past end of disk");
    std::memcpy(storage_.data() + offset, in.data(), in.size());
    writes_.fetch_add(1, std::memory_order_relaxed);
    bytes_written_.fetch_add(static_cast<int64_t>(in.size()),
                             std::memory_order_relaxed);
  }

  // Failure injection. fail() keeps the bytes (a controller cannot see
  // them anyway); replace() simulates swapping in a blank disk.
  void fail() { failed_ = true; }
  void replace() {
    storage_.zero();
    failed_ = false;
  }

  // Silent data corruption for scrub tests: flips bytes without the disk
  // reporting any error.
  void corrupt(size_t offset, size_t len, Pcg32& rng) {
    DCODE_CHECK(offset + len <= storage_.size(), "corrupt past end of disk");
    for (size_t i = 0; i < len; ++i) {
      storage_[offset + i] ^= static_cast<uint8_t>(rng.next_u32() | 1);
    }
  }

  // Accounting. Counters are relaxed atomics (rebuild touches disks from
  // the thread pool) and mutable so const reads still count, like a real
  // bus trace.
  int64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  int64_t writes() const { return writes_.load(std::memory_order_relaxed); }
  int64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  int64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  void reset_stats() {
    reads_.store(0, std::memory_order_relaxed);
    writes_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
    bytes_written_.store(0, std::memory_order_relaxed);
  }

  // Direct storage access for rebuild fast paths (counts as one access per
  // caller-declared element; see Raid6Array::rebuild).
  uint8_t* raw() { return storage_.data(); }
  const uint8_t* raw() const { return storage_.data(); }

 private:
  int id_;
  AlignedBuffer storage_;
  bool failed_ = false;
  mutable std::atomic<int64_t> reads_{0};
  mutable std::atomic<int64_t> writes_{0};
  mutable std::atomic<int64_t> bytes_read_{0};
  mutable std::atomic<int64_t> bytes_written_{0};
};

}  // namespace dcode::raid

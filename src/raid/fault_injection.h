// FaultInjectingDevice: a composable fault decorator for any BlockDevice.
//
// Replaces the ad-hoc fail()/corrupt() methods the old MemDisk carried.
// One decorator wraps every array disk (whatever the backend) and
// injects, independently:
//
//  * fail-stop       — fail() makes every I/O return IoStatus::kFailed
//                      until the engine swaps in a blank device
//                      (replace()); the flag is an atomic because pool
//                      workers read it while the controller thread
//                      writes it (the old MemDisk::failed_ data race).
//  * transient errors — the next N ops return IoStatus::kTransient; the
//                      engine retries against its per-op retry budget,
//                      so a budget-sized burst heals and a longer one
//                      escalates to DiskFailedError.
//  * silent corruption — corrupt() flips stored bytes through the inner
//                      device without any error surfacing (scrub's job).
//  * latency         — a fixed per-op service delay, for pacing tests.
#pragma once

#include <algorithm>
#include <chrono>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <utility>
#include <vector>

#include "raid/block_device.h"
#include "util/rng.h"

namespace dcode::raid {

class FaultInjectingDevice : public BlockDevice {
 public:
  explicit FaultInjectingDevice(std::unique_ptr<BlockDevice> inner)
      : BlockDevice(inner->id(), inner->size()), inner_(std::move(inner)) {}

  std::string_view backend_name() const override {
    std::shared_lock<std::shared_mutex> lock(inner_mu_);
    return inner_->backend_name();  // views a static name, safe past unlock
  }
  uint32_t capabilities() const override {
    std::shared_lock<std::shared_mutex> lock(inner_mu_);
    return inner_->capabilities();
  }

  BlockDevice& inner() { return *inner_; }
  const BlockDevice& inner() const { return *inner_; }

  // --- fail-stop ----------------------------------------------------------
  bool failed() const { return failed_.load(std::memory_order_acquire); }
  void fail() { failed_.store(true, std::memory_order_release); }
  // Swap in a blank replacement device (a fresh backend from the array's
  // factory) and clear the fail-stop state. Safe against concurrent I/O:
  // in-flight ops hold the inner lock shared, so the swap waits for them
  // (automatic spare promotion replaces a disk while pool workers run).
  void replace(std::unique_ptr<BlockDevice> blank) {
    DCODE_CHECK(blank->size() == size(), "replacement device size mismatch");
    std::unique_lock<std::shared_mutex> lock(inner_mu_);
    inner_ = std::move(blank);
    transient_remaining_.store(0, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
    failed_.store(false, std::memory_order_release);
  }

  // Bumped by every replace(). Readers that must not accept data from a
  // swapped-in blank (a retry loop can straddle an automatic spare
  // promotion) capture this before issuing I/O and re-check it after.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  // --- transient errors ---------------------------------------------------
  // The next `count` I/Os (reads and writes alike) fail with kTransient.
  void inject_transient_errors(int64_t count) {
    DCODE_CHECK(count >= 0, "transient error count must be non-negative");
    transient_remaining_.store(count, std::memory_order_relaxed);
  }
  int64_t pending_transient_errors() const {
    return std::max<int64_t>(
        0, transient_remaining_.load(std::memory_order_relaxed));
  }

  // --- latency ------------------------------------------------------------
  void set_latency_ns(int64_t ns) {
    DCODE_CHECK(ns >= 0, "latency must be non-negative");
    latency_ns_.store(ns, std::memory_order_relaxed);
  }

  // --- silent corruption --------------------------------------------------
  // Flips bytes in [offset, offset+len) through the inner device without
  // reporting any error — the condition scrubbing exists to catch. Does
  // not count as injected faults (the disk "succeeded").
  void corrupt(uint64_t offset, size_t len, Pcg32& rng) {
    DCODE_CHECK(offset + len <= size(), "corrupt past end of device");
    std::shared_lock<std::shared_mutex> lock(inner_mu_);
    std::vector<uint8_t> buf(len);
    DCODE_CHECK(inner_->read(offset, buf).ok(), "corrupt: readback failed");
    for (size_t i = 0; i < len; ++i) {
      buf[i] ^= static_cast<uint8_t>(rng.next_u32() | 1);
    }
    DCODE_CHECK(inner_->write(offset, buf).ok(), "corrupt: writeback failed");
  }

 protected:
  IoResult do_read(uint64_t offset, std::span<uint8_t> out) override {
    if (IoResult r = intercept(); !r.ok()) return r;
    std::shared_lock<std::shared_mutex> lock(inner_mu_);
    return inner_->read(offset, out);
  }
  IoResult do_write(uint64_t offset, std::span<const uint8_t> in) override {
    if (IoResult r = intercept(); !r.ok()) return r;
    std::shared_lock<std::shared_mutex> lock(inner_mu_);
    return inner_->write(offset, in);
  }
  IoResult do_readv(uint64_t offset, std::span<const IoVec> iov) override {
    if (IoResult r = intercept(); !r.ok()) return r;
    std::shared_lock<std::shared_mutex> lock(inner_mu_);
    return inner_->readv(offset, iov);
  }
  IoResult do_writev(uint64_t offset,
                     std::span<const ConstIoVec> iov) override {
    if (IoResult r = intercept(); !r.ok()) return r;
    std::shared_lock<std::shared_mutex> lock(inner_mu_);
    return inner_->writev(offset, iov);
  }
  IoResult do_flush() override {
    if (IoResult r = intercept(); !r.ok()) return r;
    std::shared_lock<std::shared_mutex> lock(inner_mu_);
    return inner_->flush();
  }
  IoResult do_discard(uint64_t offset, size_t len) override {
    if (IoResult r = intercept(); !r.ok()) return r;
    std::shared_lock<std::shared_mutex> lock(inner_mu_);
    return inner_->discard(offset, len);
  }

 private:
  IoResult intercept() {
    // Latency first: an erroring op still occupies the device for its
    // service time, so paced tests see realistic timings on fault paths
    // too (the early-return ordering here once skipped the sleep).
    if (int64_t ns = latency_ns_.load(std::memory_order_relaxed); ns > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
    }
    if (failed_.load(std::memory_order_acquire)) return IoResult::failed();
    if (transient_remaining_.load(std::memory_order_relaxed) > 0 &&
        transient_remaining_.fetch_sub(1, std::memory_order_relaxed) > 0) {
      return IoResult::transient();
    }
    return IoResult::success(0);
  }

  // Guards inner_ against replace() while ops are in flight; the sleep in
  // intercept() happens before the lock so latency injection never holds
  // it.
  mutable std::shared_mutex inner_mu_;
  std::unique_ptr<BlockDevice> inner_;
  std::atomic<bool> failed_{false};
  std::atomic<uint64_t> generation_{0};
  std::atomic<int64_t> transient_remaining_{0};
  std::atomic<int64_t> latency_ns_{0};
};

}  // namespace dcode::raid

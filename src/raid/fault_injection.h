// FaultInjectingDevice: a composable fault decorator for any BlockDevice.
//
// Replaces the ad-hoc fail()/corrupt() methods the old MemDisk carried.
// One decorator wraps every array disk (whatever the backend) and
// injects, independently:
//
//  * fail-stop       — fail() makes every I/O return IoStatus::kFailed
//                      until the engine swaps in a blank device
//                      (replace()); the flag is an atomic because pool
//                      workers read it while the controller thread
//                      writes it (the old MemDisk::failed_ data race).
//  * transient errors — the next N ops return IoStatus::kTransient; the
//                      engine retries against its per-op retry budget,
//                      so a budget-sized burst heals and a longer one
//                      escalates to DiskFailedError.
//  * silent corruption — corrupt() flips stored bytes through the inner
//                      device without any error surfacing (scrub's job).
//  * latency         — a fixed per-op service delay, for pacing tests.
#pragma once

#include <algorithm>
#include <chrono>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <utility>
#include <vector>

#include "raid/block_device.h"
#include "util/rng.h"

namespace dcode::raid {

class FaultInjectingDevice : public BlockDevice {
 public:
  explicit FaultInjectingDevice(std::unique_ptr<BlockDevice> inner)
      : BlockDevice(inner->id(), inner->size()), inner_(std::move(inner)) {}

  std::string_view backend_name() const override {
    std::shared_lock<std::shared_mutex> lock(inner_mu_);
    return inner_->backend_name();  // views a static name, safe past unlock
  }
  uint32_t capabilities() const override {
    std::shared_lock<std::shared_mutex> lock(inner_mu_);
    return inner_->capabilities();
  }

  BlockDevice& inner() { return *inner_; }
  const BlockDevice& inner() const { return *inner_; }

  // --- fail-stop ----------------------------------------------------------
  bool failed() const { return failed_.load(std::memory_order_acquire); }
  void fail() { failed_.store(true, std::memory_order_release); }
  // Swap in a blank replacement device (a fresh backend from the array's
  // factory) and clear the fail-stop state. Safe against concurrent I/O:
  // in-flight ops hold the inner lock shared, so the swap waits for them
  // (automatic spare promotion replaces a disk while pool workers run).
  void replace(std::unique_ptr<BlockDevice> blank) {
    DCODE_CHECK(blank->size() == size(), "replacement device size mismatch");
    std::unique_lock<std::shared_mutex> lock(inner_mu_);
    inner_ = std::move(blank);
    transient_remaining_.store(0, std::memory_order_relaxed);
    misdirected_remaining_.store(0, std::memory_order_relaxed);
    torn_remaining_.store(0, std::memory_order_relaxed);
    lost_remaining_.store(0, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
    failed_.store(false, std::memory_order_release);
  }

  // Bumped by every replace(). Readers that must not accept data from a
  // swapped-in blank (a retry loop can straddle an automatic spare
  // promotion) capture this before issuing I/O and re-check it after.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  // --- transient errors ---------------------------------------------------
  // The next `count` I/Os (reads and writes alike) fail with kTransient.
  void inject_transient_errors(int64_t count) {
    DCODE_CHECK(count >= 0, "transient error count must be non-negative");
    transient_remaining_.store(count, std::memory_order_relaxed);
  }
  int64_t pending_transient_errors() const {
    return std::max<int64_t>(
        0, transient_remaining_.load(std::memory_order_relaxed));
  }

  // --- latency ------------------------------------------------------------
  void set_latency_ns(int64_t ns) {
    DCODE_CHECK(ns >= 0, "latency must be non-negative");
    latency_ns_.store(ns, std::memory_order_relaxed);
  }

  // --- wrong-path writes --------------------------------------------------
  // The silent write-failure families parity cannot express: every one of
  // these acknowledges the write as fully complete (the caller sees
  // success, accounting and checksum recording proceed normally) while
  // the platter ends up with something else. Composable with the
  // latency/transient/fail-stop knobs above — intercept() still runs
  // first, so a transient burst can precede a lost write, etc.
  //
  // The next `count` writes land at (offset + offset_delta) mod the
  // writable range instead of the requested offset — a misdirected write.
  // Keep offset_delta a multiple of the element size to model a firmware
  // LBA slip; unaligned deltas model head-placement scribble.
  void inject_misdirected_writes(int64_t count, uint64_t offset_delta) {
    DCODE_CHECK(count >= 0, "misdirected write count must be non-negative");
    misdirect_delta_.store(offset_delta, std::memory_order_relaxed);
    misdirected_remaining_.store(count, std::memory_order_relaxed);
  }
  // The next `count` writes persist only the first keep_bytes bytes of
  // their payload (torn intra-element write), acknowledged complete.
  void inject_torn_writes(int64_t count, size_t keep_bytes) {
    DCODE_CHECK(count >= 0, "torn write count must be non-negative");
    torn_keep_bytes_.store(keep_bytes, std::memory_order_relaxed);
    torn_remaining_.store(count, std::memory_order_relaxed);
  }
  // The next `count` writes are dropped entirely (lost write),
  // acknowledged complete.
  void inject_lost_writes(int64_t count) {
    DCODE_CHECK(count >= 0, "lost write count must be non-negative");
    lost_remaining_.store(count, std::memory_order_relaxed);
  }
  int64_t pending_wrong_path_writes() const {
    return std::max<int64_t>(
               0, misdirected_remaining_.load(std::memory_order_relaxed)) +
           std::max<int64_t>(0,
                             torn_remaining_.load(std::memory_order_relaxed)) +
           std::max<int64_t>(0,
                             lost_remaining_.load(std::memory_order_relaxed));
  }
  // Disarms any unconsumed wrong-path budget (campaign quiesce: repair
  // writes must actually land).
  void clear_wrong_path_writes() {
    misdirected_remaining_.store(0, std::memory_order_relaxed);
    torn_remaining_.store(0, std::memory_order_relaxed);
    lost_remaining_.store(0, std::memory_order_relaxed);
  }

  // --- silent corruption --------------------------------------------------
  // Flips bytes in [offset, offset+len) through the inner device without
  // reporting any error — the condition scrubbing exists to catch. Does
  // not count as injected faults (the disk "succeeded").
  void corrupt(uint64_t offset, size_t len, Pcg32& rng) {
    DCODE_CHECK(offset + len <= size(), "corrupt past end of device");
    std::shared_lock<std::shared_mutex> lock(inner_mu_);
    std::vector<uint8_t> buf(len);
    DCODE_CHECK(inner_->read(offset, buf).ok(), "corrupt: readback failed");
    for (size_t i = 0; i < len; ++i) {
      buf[i] ^= static_cast<uint8_t>(rng.next_u32() | 1);
    }
    DCODE_CHECK(inner_->write(offset, buf).ok(), "corrupt: writeback failed");
  }

 protected:
  IoResult do_read(uint64_t offset, std::span<uint8_t> out) override {
    if (IoResult r = intercept(); !r.ok()) return r;
    std::shared_lock<std::shared_mutex> lock(inner_mu_);
    return inner_->read(offset, out);
  }
  IoResult do_write(uint64_t offset, std::span<const uint8_t> in) override {
    if (IoResult r = intercept(); !r.ok()) return r;
    std::shared_lock<std::shared_mutex> lock(inner_mu_);
    if (wrong_path_armed()) return wrong_path_write(offset, in);
    return inner_->write(offset, in);
  }
  IoResult do_readv(uint64_t offset, std::span<const IoVec> iov) override {
    if (IoResult r = intercept(); !r.ok()) return r;
    std::shared_lock<std::shared_mutex> lock(inner_mu_);
    return inner_->readv(offset, iov);
  }
  IoResult do_writev(uint64_t offset,
                     std::span<const ConstIoVec> iov) override {
    if (IoResult r = intercept(); !r.ok()) return r;
    std::shared_lock<std::shared_mutex> lock(inner_mu_);
    if (wrong_path_armed()) {
      // Flatten so one armed fault applies to the whole transfer, same
      // as the single-range path (only taken while a fault is armed).
      std::vector<uint8_t> flat(total_len(iov));
      size_t at = 0;
      for (const ConstIoVec& v : iov) {
        std::copy_n(v.data, v.len, flat.data() + at);
        at += v.len;
      }
      return wrong_path_write(offset, flat);
    }
    return inner_->writev(offset, iov);
  }
  IoResult do_flush() override {
    if (IoResult r = intercept(); !r.ok()) return r;
    std::shared_lock<std::shared_mutex> lock(inner_mu_);
    return inner_->flush();
  }
  IoResult do_discard(uint64_t offset, size_t len) override {
    if (IoResult r = intercept(); !r.ok()) return r;
    std::shared_lock<std::shared_mutex> lock(inner_mu_);
    return inner_->discard(offset, len);
  }

 private:
  IoResult intercept() {
    // Latency first: an erroring op still occupies the device for its
    // service time, so paced tests see realistic timings on fault paths
    // too (the early-return ordering here once skipped the sleep).
    if (int64_t ns = latency_ns_.load(std::memory_order_relaxed); ns > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
    }
    if (failed_.load(std::memory_order_acquire)) return IoResult::failed();
    if (transient_remaining_.load(std::memory_order_relaxed) > 0 &&
        transient_remaining_.fetch_sub(1, std::memory_order_relaxed) > 0) {
      return IoResult::transient();
    }
    return IoResult::success(0);
  }

  static bool dec_if_positive(std::atomic<int64_t>& c) {
    return c.load(std::memory_order_relaxed) > 0 &&
           c.fetch_sub(1, std::memory_order_relaxed) > 0;
  }

  bool wrong_path_armed() const {
    return misdirected_remaining_.load(std::memory_order_relaxed) > 0 ||
           torn_remaining_.load(std::memory_order_relaxed) > 0 ||
           lost_remaining_.load(std::memory_order_relaxed) > 0;
  }

  // Applies the armed wrong-path fault to one flattened write. Caller
  // holds inner_mu_ shared. Every branch acknowledges the full length —
  // that lie is the fault being modeled.
  IoResult wrong_path_write(uint64_t offset, std::span<const uint8_t> in) {
    if (dec_if_positive(lost_remaining_)) {
      return IoResult::success(in.size());  // dropped on the floor
    }
    if (dec_if_positive(torn_remaining_)) {
      const size_t keep =
          std::min(torn_keep_bytes_.load(std::memory_order_relaxed),
                   in.size());
      if (keep > 0) {
        IoResult r = inner_->write(offset, in.subspan(0, keep));
        if (!r.ok()) return r;
      }
      return IoResult::success(in.size());
    }
    if (dec_if_positive(misdirected_remaining_)) {
      const uint64_t span = size() - in.size();  // bounds pre-checked
      const uint64_t delta = misdirect_delta_.load(std::memory_order_relaxed);
      const uint64_t wrong = span == 0 ? 0 : (offset + delta) % (span + 1);
      IoResult r = inner_->write(wrong, in);
      return r.ok() ? IoResult::success(in.size()) : r;
    }
    return inner_->write(offset, in);  // lost the arm race: normal write
  }

  // Guards inner_ against replace() while ops are in flight; the sleep in
  // intercept() happens before the lock so latency injection never holds
  // it.
  mutable std::shared_mutex inner_mu_;
  std::unique_ptr<BlockDevice> inner_;
  std::atomic<bool> failed_{false};
  std::atomic<uint64_t> generation_{0};
  std::atomic<int64_t> transient_remaining_{0};
  std::atomic<int64_t> latency_ns_{0};
  std::atomic<int64_t> misdirected_remaining_{0};
  std::atomic<uint64_t> misdirect_delta_{0};
  std::atomic<int64_t> torn_remaining_{0};
  std::atomic<size_t> torn_keep_bytes_{0};
  std::atomic<int64_t> lost_remaining_{0};
};

}  // namespace dcode::raid

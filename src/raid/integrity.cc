#include "raid/integrity.h"

#include <errno.h>
#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <mutex>
#include <stdexcept>

#include "util/check.h"
#include "xorops/checksum.h"

namespace dcode::raid {
namespace {

constexpr uint64_t kSidecarMagic = 0x444353494445434BULL;  // "DCSIDECK"
constexpr uint32_t kSidecarVersion = 1;
constexpr int64_t kHeaderBytes = 24;

struct SlotImage {
  uint64_t seq;
  uint64_t sum;
  uint64_t prev;
  uint64_t tag;
  uint64_t self;  // checksum64 of the first 32 bytes, seeded with element
};
static_assert(sizeof(SlotImage) == ChecksumStore::kSlotBytes);

uint64_t slot_self_checksum(const SlotImage& s, int64_t element) {
  return xorops::checksum64(&s, 32, static_cast<uint64_t>(element));
}

// Writers are rare (one per element write) and already serialized per
// stripe by the array; this small pool only closes the scrub-resync vs
// foreground-write race so the per-record seqlock keeps its
// single-writer invariant.
std::mutex& writer_mutex(int64_t element) {
  static std::mutex mus[16];
  return mus[static_cast<size_t>(element) & 15];
}

}  // namespace

const char* to_string(IntegrityVerdict v) {
  switch (v) {
    case IntegrityVerdict::kOk:
      return "ok";
    case IntegrityVerdict::kUntracked:
      return "untracked";
    case IntegrityVerdict::kCorrupt:
      return "corrupt";
    case IntegrityVerdict::kMisdirected:
      return "misdirected";
    case IntegrityVerdict::kStale:
      return "stale";
  }
  return "?";
}

namespace detail {

bool pread_fully(int fd, void* buf, size_t n, int64_t offset) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  while (n > 0) {
    const ssize_t r = ::pread(fd, p, n, static_cast<off_t>(offset));
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF before the full count
    p += r;
    offset += r;
    n -= static_cast<size_t>(r);
  }
  return true;
}

bool pwrite_fully(int fd, const void* buf, size_t n, int64_t offset) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  while (n > 0) {
    const ssize_t r = ::pwrite(fd, p, n, static_cast<off_t>(offset));
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += r;
    offset += r;
    n -= static_cast<size_t>(r);
  }
  return true;
}

}  // namespace detail

ChecksumStore::ChecksumStore(int64_t elements)
    : elements_(elements), recs_(new Record[static_cast<size_t>(elements)]) {
  DCODE_CHECK(elements > 0, "ChecksumStore needs at least one element");
}

ChecksumStore::~ChecksumStore() {
  if (fd_ >= 0) ::close(fd_);
}

int64_t ChecksumStore::slot_offset(int64_t element, int slot) {
  return kHeaderBytes + element * 2 * static_cast<int64_t>(kSlotBytes) +
         slot * static_cast<int64_t>(kSlotBytes);
}

ChecksumStore::Snapshot ChecksumStore::load(int64_t element) const {
  DCODE_CHECK(element >= 0 && element < elements_,
              "integrity element out of range");
  const Record& r = recs_[static_cast<size_t>(element)];
  for (;;) {
    const uint64_t s1 = r.seq.load(std::memory_order_acquire);
    if (s1 & 1) continue;  // writer mid-update; spin (writers are brief)
    Snapshot out;
    out.sum = r.sum.load(std::memory_order_relaxed);
    out.prev = r.prev.load(std::memory_order_relaxed);
    out.tag = r.tag.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (r.seq.load(std::memory_order_relaxed) == s1) return out;
  }
}

void ChecksumStore::store_locked(int64_t element, uint64_t sum, uint64_t prev,
                                 uint64_t tag) {
  Record& r = recs_[static_cast<size_t>(element)];
  const uint64_t s = r.seq.load(std::memory_order_relaxed);
  r.seq.store(s + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  r.sum.store(sum, std::memory_order_relaxed);
  r.prev.store(prev, std::memory_order_relaxed);
  r.tag.store(tag, std::memory_order_relaxed);
  r.seq.store(s + 2, std::memory_order_release);
  if (fd_ >= 0) persist(element, sum, prev, tag, s + 2);
}

void ChecksumStore::record(int64_t element, uint64_t sum, int64_t stripe,
                           int row, int role) {
  DCODE_CHECK(element >= 0 && element < elements_,
              "integrity element out of range");
  std::lock_guard<std::mutex> lk(writer_mutex(element));
  const Record& r = recs_[static_cast<size_t>(element)];
  const uint64_t old_tag = r.tag.load(std::memory_order_relaxed);
  const uint64_t old_sum = r.sum.load(std::memory_order_relaxed);
  uint32_t gen = tag_generation(old_tag) + 1;
  if (gen == 0) gen = 1;  // wrap: never back to the untracked sentinel
  store_locked(element, sum, old_tag != 0 ? old_sum : 0,
               make_tag(gen, stripe, row, role));
}

void ChecksumStore::resync(int64_t element, uint64_t sum, int64_t stripe,
                           int row, int role) {
  DCODE_CHECK(element >= 0 && element < elements_,
              "integrity element out of range");
  std::lock_guard<std::mutex> lk(writer_mutex(element));
  const Record& r = recs_[static_cast<size_t>(element)];
  uint32_t gen = tag_generation(r.tag.load(std::memory_order_relaxed)) + 1;
  if (gen == 0) gen = 1;
  // prev cleared: after reconstruction the pre-image is unknowable, so
  // stale detection restarts instead of false-positive matching it.
  store_locked(element, sum, 0, make_tag(gen, stripe, row, role));
}

IntegrityVerdict ChecksumStore::classify(int64_t element,
                                         uint64_t payload_sum) const {
  const Snapshot snap = load(element);
  if (!snap.tracked()) return IntegrityVerdict::kUntracked;
  if (payload_sum == snap.sum) return IntegrityVerdict::kOk;
  if (snap.prev != 0 && payload_sum == snap.prev)
    return IntegrityVerdict::kStale;
  // Mismatch path only (rare): is this payload some *other* element's
  // current content? Then the write that produced it was misdirected.
  for (int64_t e = 0; e < elements_; ++e) {
    if (e == element) continue;
    const Snapshot other = load(e);
    if (other.tracked() && other.sum == payload_sum)
      return IntegrityVerdict::kMisdirected;
  }
  return IntegrityVerdict::kCorrupt;
}

void ChecksumStore::invalidate_all() {
  for (int64_t e = 0; e < elements_; ++e) {
    std::lock_guard<std::mutex> lk(writer_mutex(e));
    store_locked(e, 0, 0, 0);
  }
}

void ChecksumStore::attach_file(const std::string& path) {
  DCODE_CHECK(fd_ < 0, "ChecksumStore already has a sidecar attached");
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw std::runtime_error("integrity sidecar open failed: " + path);
  }
  const int64_t want_size =
      kHeaderBytes + elements_ * 2 * static_cast<int64_t>(kSlotBytes);
  const off_t cur = ::lseek(fd, 0, SEEK_END);
  if (cur == 0) {
    // Fresh sidecar: header + zeroed (sparse) slot area. A zero slot has
    // seq 0 and a wrong self-checksum, i.e. invalid by construction.
    uint8_t hdr[kHeaderBytes] = {};
    std::memcpy(hdr, &kSidecarMagic, 8);
    std::memcpy(hdr + 8, &kSidecarVersion, 4);
    const uint64_t n = static_cast<uint64_t>(elements_);
    std::memcpy(hdr + 16, &n, 8);
    if (!detail::pwrite_fully(fd, hdr, sizeof(hdr), 0) ||
        ::ftruncate(fd, static_cast<off_t>(want_size)) != 0) {
      ::close(fd);
      throw std::runtime_error("integrity sidecar init failed: " + path);
    }
  } else {
    uint8_t hdr[kHeaderBytes] = {};
    uint64_t magic = 0, n = 0;
    uint32_t version = 0;
    if (!detail::pread_fully(fd, hdr, sizeof(hdr), 0)) {
      ::close(fd);
      throw std::runtime_error("integrity sidecar header unreadable: " + path);
    }
    std::memcpy(&magic, hdr, 8);
    std::memcpy(&version, hdr + 8, 4);
    std::memcpy(&n, hdr + 16, 8);
    if (magic != kSidecarMagic || version != kSidecarVersion ||
        n != static_cast<uint64_t>(elements_)) {
      ::close(fd);
      throw std::runtime_error("integrity sidecar format mismatch: " + path);
    }
    if (::ftruncate(fd, static_cast<off_t>(want_size)) != 0) {
      ::close(fd);
      throw std::runtime_error("integrity sidecar resize failed: " + path);
    }
    // Adopt the newer valid slot of each element; torn or misplaced
    // slots fail their seeded self-checksum and are ignored.
    for (int64_t e = 0; e < elements_; ++e) {
      SlotImage slots[2];
      if (!detail::pread_fully(fd, slots, sizeof(slots), slot_offset(e, 0))) {
        continue;  // short file: remaining elements stay untracked
      }
      const SlotImage* best = nullptr;
      for (SlotImage& s : slots) {
        if (s.seq == 0 || slot_self_checksum(s, e) != s.self) continue;
        if (best == nullptr || s.seq > best->seq) best = &s;
      }
      if (best == nullptr) continue;
      Record& r = recs_[static_cast<size_t>(e)];
      r.sum.store(best->sum, std::memory_order_relaxed);
      r.prev.store(best->prev, std::memory_order_relaxed);
      r.tag.store(best->tag, std::memory_order_relaxed);
      r.seq.store(best->seq, std::memory_order_release);
    }
  }
  fd_ = fd;
  path_ = path;
}

void ChecksumStore::persist(int64_t element, uint64_t sum, uint64_t prev,
                            uint64_t tag, uint64_t seq) {
  SlotImage s{seq, sum, prev, tag, 0};
  s.self = slot_self_checksum(s, element);
  // Alternate slots by write number so the previous good record survives
  // a torn write to the one being replaced.
  const int slot = static_cast<int>((seq / 2) & 1);
  // A failed sidecar write is deliberately non-fatal: the in-memory
  // record stays authoritative for this run, and on reload the stale
  // slot just loses to the other or reports untracked — integrity
  // degrades to "unverified", never to "wrong".
  (void)detail::pwrite_fully(fd_, &s, sizeof(s), slot_offset(element, slot));
}

void ChecksumStore::flush() {
  if (fd_ >= 0) ::fdatasync(fd_);
}

}  // namespace dcode::raid

// VolumeManager: named volumes on top of a Raid6Array.
//
// The thinnest useful storage frontend: a superblock at the start of the
// array's logical space holds a volume table (name, offset, size);
// volumes are contiguous byte extents allocated first-fit. The
// superblock lives *inside* the protected data space, so volume metadata
// enjoys the same two-disk fault tolerance as the data — open() after a
// failure/rebuild cycle sees the same volumes.
//
// This is deliberately a flat, fixed-size table (64 volumes, 32-byte
// names): the point is a realistic consumer of the array API (byte
// addressing, degraded reads, journaled writes), not a filesystem.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "raid/raid6_array.h"

namespace dcode::raid {

struct VolumeInfo {
  std::string name;
  int64_t offset = 0;  // bytes, within the array's data space
  int64_t size = 0;    // bytes
};

class VolumeManager {
 public:
  static constexpr int kMaxVolumes = 64;
  static constexpr size_t kMaxNameLen = 31;

  // Initializes an empty volume table (destroys existing metadata).
  static VolumeManager format(Raid6Array& array);
  // Loads an existing table; throws if the superblock is not recognized.
  static VolumeManager open(Raid6Array& array);

  // Creates a volume of `size` bytes; first-fit allocation. Throws on
  // duplicate name, a full table, or insufficient contiguous space.
  void create(const std::string& name, int64_t size);
  // Removes a volume (its extent becomes reusable). Throws if unknown.
  void remove(const std::string& name);

  // Byte I/O within a volume; bounds-checked against the volume size.
  void write(const std::string& name, int64_t offset,
             std::span<const uint8_t> data);
  void read(const std::string& name, int64_t offset, std::span<uint8_t> out);

  std::vector<VolumeInfo> list() const;
  std::optional<VolumeInfo> find(const std::string& name) const;

  // Usable bytes not covered by any volume or the superblock.
  int64_t free_bytes() const;
  // Largest single volume that could be created right now.
  int64_t largest_free_extent() const;

 private:
  explicit VolumeManager(Raid6Array& array) : array_(&array) {}
  void persist();
  void load();
  const VolumeInfo& lookup(const std::string& name) const;

  static size_t superblock_bytes();

  Raid6Array* array_;
  std::vector<VolumeInfo> volumes_;
};

}  // namespace dcode::raid

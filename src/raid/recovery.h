// Single-disk failure recovery planning (paper §III-D's last feature).
//
// Conventional recovery rebuilds every lost element through its primary
// parity family, reading each equation's full source set. Because the two
// parity families overlap heavily in which elements they touch, choosing
// *per lost element* which family to use can shrink the union of elements
// read — Xu et al. (IEEE TC 2013) proved the optimum saves ~25% of disk
// reads for X-Code; the same holds for D-Code since it is a per-column
// reordering of X-Code.
//
// plan_single_disk_recovery() computes
//   * the conventional plan (first family only), and
//   * an optimized plan: exhaustive search over the 2^(lost data elements)
//     family choices when that is tractable (the RAID-scale primes the
//     paper uses give at most 2^15 states), greedy refinement otherwise.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "codes/code_layout.h"
#include "raid/io_plan.h"

namespace dcode::raid {

struct RecoveryPlan {
  // For each lost element, the equation used to rebuild it.
  std::vector<Reconstruction> reconstructions;
  // Union of surviving elements that must be read.
  std::vector<codes::Element> reads;
};

enum class RecoveryStrategy {
  kConventional,  // always the first equation of each lost element
  kMinimalReads,  // exhaustive / greedy hybrid choice
};

RecoveryPlan plan_single_disk_recovery(const codes::CodeLayout& layout,
                                       int failed_disk,
                                       RecoveryStrategy strategy);

class StripeIoEngine;

// Rebuild executors (moved here from the Raid6Array monolith): fan the
// stripes across the engine's thread pool and run each stripe's reads and
// reconstruction writes as coalesced batches.
//
// Applies `plan` to every stripe, writing the reconstructed elements onto
// `failed_disk` (already replaced with a blank device).
void execute_single_disk_rebuild(const codes::CodeLayout& layout,
                                 const RecoveryPlan& plan,
                                 StripeIoEngine& engine, int failed_disk,
                                 int64_t stripes);

// Whole-stripe decode for two (or, for higher-tolerance codes like STAR,
// three) replaced disks: D-Code's chain decoder on its fast path, the
// generic hybrid decoder otherwise. `targets` must be sorted.
void execute_multi_disk_rebuild(const codes::CodeLayout& layout,
                                StripeIoEngine& engine,
                                const std::vector<int>& targets,
                                int64_t stripes);

}  // namespace dcode::raid

// Raid6Array core: construction, healthy-path read/write, fault
// injection and repair orchestration, scrub, and observability. The
// write-hole machinery lives in array_journal.cc and the degraded-mode
// paths in degraded_path.cc; batched element I/O is the StripeIoEngine's
// job and rebuild execution lives in recovery.cc.
#include "raid/raid6_array.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>

#include "codes/encoder.h"
#include "codes/stripe.h"
#include "obs/trace.h"
#include "raid/recovery.h"
#include "xorops/xor_region.h"

namespace dcode::raid {

using codes::CodeLayout;
using codes::Element;
using codes::Equation;
using codes::Stripe;

using ReadOp = StripeIoEngine::ReadOp;
using WriteOp = StripeIoEngine::WriteOp;

namespace {

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Observes wall time into a latency histogram on scope exit (including
// unwinds — a failed op's latency is still a latency).
class LatencyTimer {
 public:
  explicit LatencyTimer(obs::Histogram* h) : h_(h), t0_(now_ns()) {}
  ~LatencyTimer() { h_->observe(now_ns() - t0_); }
  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

 private:
  obs::Histogram* h_;
  int64_t t0_;
};

size_t checked_disk_size(const CodeLayout& layout, size_t element_size,
                         int64_t stripes) {
  DCODE_CHECK(element_size > 0, "element size must be positive");
  DCODE_CHECK(stripes > 0, "array needs at least one stripe");
  return static_cast<size_t>(stripes) *
         static_cast<size_t>(layout.rows()) * element_size;
}

}  // namespace

void Raid6Array::overlay_range(int64_t g, int64_t offset, int64_t len,
                               int64_t esize, size_t* elem_begin,
                               size_t* src_begin, size_t* out_len) {
  int64_t elem_start = g * esize;
  int64_t lo = std::max<int64_t>(offset, elem_start);
  int64_t hi = std::min<int64_t>(offset + len, elem_start + esize);
  *elem_begin = static_cast<size_t>(lo - elem_start);
  *src_begin = static_cast<size_t>(lo - offset);
  *out_len = static_cast<size_t>(hi - lo);
}

Raid6Array::Raid6Array(std::unique_ptr<CodeLayout> layout,
                       size_t element_size, int64_t stripes, unsigned threads,
                       obs::Registry* registry, ArrayOptions options)
    : layout_(std::move(layout)),
      element_size_(element_size),
      stripes_(stripes),
      map_(*layout_),
      planner_(map_),
      pool_(threads),
      metrics_(registry != nullptr ? *registry : obs::Registry::global(),
               layout_->cols()),
      engine_(layout_->cols(),
              checked_disk_size(*layout_, element_size, stripes),
              element_size, layout_->rows(), pool_, &metrics_, this,
              StripeIoEngine::Options{
                  std::move(options.device_factory),
                  options.coalesce,
                  options.parallel_user_io,
                  options.transient_retry_limit,
              }) {
  needs_rebuild_.assign(static_cast<size_t>(layout_->cols()), false);
}

int Raid6Array::failed_disk_count() const {
  int n = 0;
  for (int d = 0; d < layout_->cols(); ++d) n += engine_.disk(d).failed();
  return n;
}

void Raid6Array::reset_stats() { engine_.reset_stats(); }

void Raid6Array::add_hot_spares(int count) {
  DCODE_CHECK(count >= 0, "spare count must be non-negative");
  hot_spares_ += count;
}

void Raid6Array::fail_disk(int disk) {
  DCODE_CHECK(disk >= 0 && disk < layout_->cols(), "disk out of range");
  if (!engine_.disk(disk).failed()) {
    metrics_.disk_failures[static_cast<size_t>(disk)]->inc();
    metrics_.disks_failed->add(1);
  }
  engine_.fail_disk(disk);
  if (hot_spares_ > 0) {
    --hot_spares_;
    engine_.replace_disk(disk);
    metrics_.disks_failed->sub(1);
    needs_rebuild_[static_cast<size_t>(disk)] = true;
    rebuild();
  }
}

void Raid6Array::replace_disk(int disk) {
  DCODE_CHECK(disk >= 0 && disk < layout_->cols(), "disk out of range");
  DCODE_CHECK(engine_.disk(disk).failed(),
              "only failed disks can be replaced");
  engine_.replace_disk(disk);
  metrics_.disks_failed->sub(1);
  needs_rebuild_[static_cast<size_t>(disk)] = true;
}

void Raid6Array::write_stripe_rmw(int64_t stripe, int64_t g,
                                  int64_t stripe_end, int64_t offset,
                                  std::span<const uint8_t> data) {
  const CodeLayout& layout = *layout_;
  const int64_t esize = static_cast<int64_t>(element_size_);
  const size_t n = static_cast<size_t>(stripe_end - g + 1);

  // Phase 1: batch-read the old contents of every touched data element.
  std::vector<AddressMap::Location> locs;
  std::vector<AlignedBuffer> old_data;
  std::vector<ReadOp> rops;
  locs.reserve(n);
  old_data.reserve(n);
  rops.reserve(n);
  for (int64_t e = g; e <= stripe_end; ++e) {
    locs.push_back(map_.locate(e));
    old_data.emplace_back(element_size_);
    rops.push_back({locs.back().disk, stripe, locs.back().element.row,
                    old_data.back().data()});
  }
  engine_.read_batch(rops);

  // Phase 2: overlay the user bytes, compute per-element deltas, and
  // batch-write the fresh data (in element order — the same budget
  // consumption order the monolith's per-element loop produced).
  std::vector<Element> written;
  std::map<Element, AlignedBuffer> delta;  // old ^ new per element
  std::vector<AlignedBuffer> fresh;
  std::vector<WriteOp> wops;
  written.reserve(n);
  fresh.reserve(n);
  wops.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t e = g + static_cast<int64_t>(i);
    size_t eb, sb, len;
    overlay_range(e, offset, static_cast<int64_t>(data.size()), esize, &eb,
                  &sb, &len);
    fresh.emplace_back(element_size_);
    std::memcpy(fresh.back().data(), old_data[i].data(), element_size_);
    std::memcpy(fresh.back().data() + eb, data.data() + sb, len);

    AlignedBuffer dbuf(element_size_);
    xorops::xor_assign(dbuf.data(), old_data[i].data(), fresh.back().data(),
                       element_size_);
    wops.push_back(
        {locs[i].disk, stripe, locs[i].element.row, fresh.back().data()});
    written.push_back(locs[i].element);
    delta.emplace(locs[i].element, std::move(dbuf));
  }
  engine_.write_batch(wops);

  // Phase 3: batch-read the old parities of the dirty closure, fold the
  // deltas through in topo order, batch-write them back (topo order).
  const std::vector<int> closure = dirty_parity_closure(layout, written);
  std::vector<int> pdisks;
  std::vector<AlignedBuffer> parity;
  rops.clear();
  pdisks.reserve(closure.size());
  parity.reserve(closure.size());
  for (int qi : closure) {
    const Equation& q = layout.equations()[static_cast<size_t>(qi)];
    pdisks.push_back(map_.physical_disk(stripe, q.parity.col));
    parity.emplace_back(element_size_);
    rops.push_back(
        {pdisks.back(), stripe, q.parity.row, parity.back().data()});
  }
  engine_.read_batch(rops);
  wops.clear();
  for (size_t i = 0; i < closure.size(); ++i) {
    const Equation& q = layout.equations()[static_cast<size_t>(closure[i])];
    AlignedBuffer pdelta(element_size_);
    for (const Element& src : q.sources) {
      auto it = delta.find(src);
      if (it != delta.end()) {
        xorops::xor_into(pdelta.data(), it->second.data(), element_size_);
      }
    }
    xorops::xor_into(parity[i].data(), pdelta.data(), element_size_);
    wops.push_back({pdisks[i], stripe, q.parity.row, parity[i].data()});
    delta.emplace(q.parity, std::move(pdelta));
  }
  engine_.write_batch(wops);
}

void Raid6Array::write(int64_t offset, std::span<const uint8_t> data) {
  ensure_online();
  DCODE_CHECK(offset >= 0 && offset + static_cast<int64_t>(data.size()) <=
                                 capacity(),
              "write outside the array's data space");
  if (data.empty()) return;
  const CodeLayout& layout = *layout_;
  const int64_t esize = static_cast<int64_t>(element_size_);
  const int64_t first = offset / esize;
  const int64_t last = (offset + static_cast<int64_t>(data.size()) - 1) / esize;

  bool degraded = false;
  for (int d = 0; d < layout.cols(); ++d) degraded |= disk_degraded(d);
  LatencyTimer timer(metrics_.write_latency_ns);
  (degraded ? metrics_.degraded_writes : metrics_.writes)->inc();
  metrics_.bytes_written->inc(static_cast<int64_t>(data.size()));
  metrics_.write_bytes->observe(static_cast<int64_t>(data.size()));

  // Group the touched elements by stripe.
  int64_t g = first;
  while (g <= last) {
    const int64_t stripe = g / layout.data_count();
    const int64_t stripe_end =
        std::min(last, (stripe + 1) * layout.data_count() - 1);

    // Write-ahead intent record: must be durable before the first element
    // write of this stripe (itself consumes write budget, so an injected
    // crash can land on either side of it — both sides are safe).
    if (journal_) {
      admit();
      if (journal_->begin(stripe)) metrics_.journal_intents_opened->inc();
    }

    if (degraded) {
      write_stripe_degraded(stripe, g, stripe_end, offset, data);
    } else {
      write_stripe_rmw(stripe, g, stripe_end, offset, data);
    }

    if (journal_) {
      admit();
      journal_->commit(stripe);
      metrics_.journal_commits->inc();
    }
    g = stripe_end + 1;
  }
}

void Raid6Array::read_healthy(int64_t first, int64_t last, int64_t offset,
                              std::span<uint8_t> out) {
  const int64_t esize = static_cast<int64_t>(element_size_);
  const int64_t end = offset + static_cast<int64_t>(out.size());
  // Fully covered elements land straight in the caller's buffer; the (at
  // most two) partially covered edge elements bounce through scratch.
  AlignedBuffer head(element_size_), tail(element_size_);
  std::vector<ReadOp> rops;
  rops.reserve(static_cast<size_t>(last - first + 1));
  for (int64_t e = first; e <= last; ++e) {
    auto loc = map_.locate(e);
    const bool full = e * esize >= offset && (e + 1) * esize <= end;
    uint8_t* dst = full ? out.data() + (e * esize - offset)
                        : (e == first ? head.data() : tail.data());
    rops.push_back({loc.disk, loc.stripe, loc.element.row, dst});
  }
  engine_.read_batch(rops);
  auto copy_out = [&](int64_t e, const uint8_t* elem) {
    size_t eb, sb, len;
    overlay_range(e, offset, static_cast<int64_t>(out.size()), esize, &eb,
                  &sb, &len);
    std::memcpy(out.data() + sb, elem + eb, len);
  };
  if (first * esize < offset) copy_out(first, head.data());
  if ((last + 1) * esize > end) {
    copy_out(last, last == first ? head.data() : tail.data());
  }
}

void Raid6Array::read(int64_t offset, std::span<uint8_t> out) {
  ensure_online();
  DCODE_CHECK(offset >= 0 && offset + static_cast<int64_t>(out.size()) <=
                                 capacity(),
              "read outside the array's data space");
  if (out.empty()) return;
  const int64_t esize = static_cast<int64_t>(element_size_);
  const int64_t first = offset / esize;
  const int64_t last = (offset + static_cast<int64_t>(out.size()) - 1) / esize;

  std::vector<int> failed;
  for (int d = 0; d < layout_->cols(); ++d) {
    if (disk_degraded(d)) failed.push_back(d);
  }
  LatencyTimer timer(metrics_.read_latency_ns);
  (failed.empty() ? metrics_.reads : metrics_.degraded_reads)->inc();
  metrics_.bytes_read->inc(static_cast<int64_t>(out.size()));
  metrics_.read_bytes->observe(static_cast<int64_t>(out.size()));

  if (failed.empty()) {
    read_healthy(first, last, offset, out);
  } else {
    read_degraded(first, last, offset, out, failed);
  }
}

void Raid6Array::rebuild() {
  ensure_online();
  const CodeLayout& layout = *layout_;
  std::vector<int> targets;
  for (int d = 0; d < layout.cols(); ++d) {
    if (needs_rebuild_[static_cast<size_t>(d)]) {
      DCODE_CHECK(!engine_.disk(d).failed(), "replace_disk before rebuild");
      targets.push_back(d);
    }
  }
  if (targets.empty()) return;
  DCODE_CHECK(static_cast<int>(targets.size()) <= layout.fault_tolerance(),
              "more failed disks than the code tolerates");

  LatencyTimer timer(metrics_.rebuild_latency_ns);
  metrics_.rebuilds->inc();
  obs::Span span(obs::TraceLog::global(), "rebuild",
                 {{"targets", static_cast<int64_t>(targets.size())},
                  {"stripes", stripes_},
                  {"code", layout.name()}});

  if (targets.size() == 1) {
    RecoveryPlan plan = plan_single_disk_recovery(
        layout, targets[0], RecoveryStrategy::kMinimalReads);
    span.note("rebuild.plan",
              {{"mode", "minimal_reads"}, {"disk", targets[0]},
               {"reads_per_stripe", static_cast<int64_t>(plan.reads.size())}});
    execute_single_disk_rebuild(layout, plan, engine_, targets[0], stripes_);
  } else {
    std::sort(targets.begin(), targets.end());
    const bool chain = layout.name() == "dcode" && targets.size() == 2;
    span.note("rebuild.plan",
              {{"mode", chain ? "dcode_chain" : "hybrid_decode"}});
    execute_multi_disk_rebuild(layout, engine_, targets, stripes_);
  }

  for (int d : targets) needs_rebuild_[static_cast<size_t>(d)] = false;
  metrics_.elements_reconstructed->inc(static_cast<int64_t>(targets.size()) *
                                       layout.rows() * stripes_);
}

int64_t Raid6Array::scrub() {
  return static_cast<int64_t>(scrub_report().inconsistent_stripes.size());
}

ScrubReport Raid6Array::scrub_report() {
  ensure_online();
  DCODE_CHECK(failed_disk_count() == 0, "scrub requires a healthy array");
  const CodeLayout& layout = *layout_;
  LatencyTimer timer(metrics_.scrub_latency_ns);
  metrics_.scrubs->inc();
  obs::Span span(obs::TraceLog::global(), "scrub", {{"stripes", stripes_}});
  ScrubReport report;
  report.stripes_checked = stripes_;
  std::mutex bad_mu;
  pool_.parallel_for_chunked(
      static_cast<size_t>(stripes_), [&](size_t begin, size_t end) {
        Stripe s(layout, element_size_);
        std::vector<ReadOp> rops;
        for (size_t st = begin; st < end; ++st) {
          rops.clear();
          for (int c = 0; c < layout.cols(); ++c) {
            for (int r = 0; r < layout.rows(); ++r) {
              rops.push_back({c, static_cast<int64_t>(st), r, s.at(r, c)});
            }
          }
          engine_.read_batch(rops);
          Stripe re = s.clone();
          codes::encode_stripe(re);
          if (!re.equals(s)) {
            std::lock_guard<std::mutex> lock(bad_mu);
            report.inconsistent_stripes.push_back(static_cast<int64_t>(st));
          }
        }
      });
  std::sort(report.inconsistent_stripes.begin(),
            report.inconsistent_stripes.end());
  metrics_.scrub_stripes_checked->inc(stripes_);
  metrics_.scrub_stripes_inconsistent->inc(
      static_cast<int64_t>(report.inconsistent_stripes.size()));
  if (!report.inconsistent_stripes.empty()) {
    span.note("scrub.inconsistent",
              {{"count",
                static_cast<int64_t>(report.inconsistent_stripes.size())}});
  }
  return report;
}

std::vector<int64_t> Raid6Array::per_disk_element_accesses() const {
  return engine_.per_disk_element_accesses();
}

void Raid6Array::publish_disk_metrics(obs::Registry& registry) const {
  for (int d = 0; d < layout_->cols(); ++d) {
    const DiskHandle& h = engine_.disk(d);
    obs::Labels l = {{"disk", std::to_string(h.id())}};
    registry.gauge("raid.disk.reads", l).set(h.reads());
    registry.gauge("raid.disk.writes", l).set(h.writes());
    registry.gauge("raid.disk.bytes_read", l).set(h.bytes_read());
    registry.gauge("raid.disk.bytes_written", l).set(h.bytes_written());
    registry.gauge("raid.disk.failed", l).set(h.failed() ? 1 : 0);
    // Device-level op counts, labeled by backend: one count per ranged
    // transfer, so reads()/device_read_ops() is the coalescing ratio.
    obs::Labels lb = {{"backend", std::string(h.backend_name())},
                      {"disk", std::to_string(h.id())}};
    registry.gauge("raid.disk.device_read_ops", lb).set(h.device_read_ops());
    registry.gauge("raid.disk.device_write_ops", lb)
        .set(h.device_write_ops());
  }
}

}  // namespace dcode::raid

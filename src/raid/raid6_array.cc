// Raid6Array core: construction, healthy-path read/write, fault
// injection and repair orchestration, scrub, and observability. The
// write-hole machinery lives in array_journal.cc and the degraded-mode
// paths in degraded_path.cc; batched element I/O is the StripeIoEngine's
// job and rebuild execution lives in recovery.cc.
#include "raid/raid6_array.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "codes/encoder.h"
#include "codes/stripe.h"
#include "obs/flight_recorder.h"
#include "obs/op_context.h"
#include "obs/trace.h"
#include "raid/recovery.h"
#include "xorops/xor_region.h"

namespace dcode::raid {

using codes::CodeLayout;
using codes::Element;
using codes::Equation;
using codes::Stripe;

using ReadOp = StripeIoEngine::ReadOp;
using WriteOp = StripeIoEngine::WriteOp;

namespace {

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Observes wall time into a latency histogram on scope exit (including
// unwinds — a failed op's latency is still a latency).
class LatencyTimer {
 public:
  explicit LatencyTimer(obs::Histogram* h) : h_(h), t0_(now_ns()) {}
  ~LatencyTimer() { h_->observe(now_ns() - t0_); }
  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

 private:
  obs::Histogram* h_;
  int64_t t0_;
};

// Per-op envelope for read()/write(): binds an obs::OpContext to the
// calling thread (adopting one already bound by the caller — the load
// harness binds its own with enqueue_ns set to the op's intended
// arrival), opens the op's root trace span, stamps begin/end events into
// the flight recorder, and on scope exit (including unwinds) observes
// latency into both the coarse and the fine histograms and runs the
// slow-op watchdog.
class OpGuard {
 public:
  OpGuard(bool is_write, int64_t offset, int64_t bytes, bool degraded,
          ArrayMetrics& metrics, const ArrayOptions& opts)
      : is_write_(is_write), metrics_(metrics), opts_(opts) {
    ctx_ = obs::current_op_context();
    if (ctx_ == nullptr) {
      local_.op_id = obs::next_op_id();
      local_.enqueue_ns = now_ns();
      ctx_ = &local_;
      scope_.emplace(&local_);
    }
    ctx_->start_ns = now_ns();
    if (auto& log = obs::TraceLog::global(); log.enabled()) {
      obs::TraceAttrs attrs = {
          {"op", ctx_->op_id},
          {"offset", offset},
          {"bytes", bytes},
          {"degraded", degraded},
          {"queue_ns", ctx_->start_ns - ctx_->enqueue_ns}};
      span_ = std::make_unique<obs::Span>(
          log, is_write ? "array.write" : "array.read", uint64_t{0}, attrs);
      ctx_->span_id = span_->id();
    }
    obs::FlightRecorder::global().record(
        is_write ? obs::FlightEventKind::kWriteBegin
                 : obs::FlightEventKind::kReadBegin,
        ctx_->op_id, -1, offset, bytes);
  }

  ~OpGuard() {
    // Latency from the *intended* arrival when the caller provided one:
    // an op that sat behind a queue was slow from the client's point of
    // view no matter how fast the array served it once started.
    const int64_t end = now_ns();
    const int64_t lat =
        end - (ctx_->enqueue_ns > 0 ? ctx_->enqueue_ns : ctx_->start_ns);
    (is_write_ ? metrics_.write_latency_ns : metrics_.read_latency_ns)
        ->observe(lat);
    (is_write_ ? metrics_.write_latency_fine_ns
               : metrics_.read_latency_fine_ns)
        ->observe(lat);
    obs::FlightRecorder::global().record(
        is_write_ ? obs::FlightEventKind::kWriteEnd
                  : obs::FlightEventKind::kReadEnd,
        ctx_->op_id, -1, lat, 0);
    if (opts_.slow_op_threshold_ns > 0 && lat >= opts_.slow_op_threshold_ns) {
      metrics_.slow_ops->inc();
      obs::FlightRecorder::global().record(obs::FlightEventKind::kSlowOp,
                                           ctx_->op_id, -1, lat,
                                           opts_.slow_op_threshold_ns);
      if (span_ != nullptr) {
        span_->note("array.slow_op",
                    {{"latency_ns", lat},
                     {"threshold_ns", opts_.slow_op_threshold_ns}});
      }
      obs::FlightRecorder::global().request_dump("slow_op");
    }
  }

  OpGuard(const OpGuard&) = delete;
  OpGuard& operator=(const OpGuard&) = delete;

 private:
  bool is_write_;
  ArrayMetrics& metrics_;
  const ArrayOptions& opts_;
  obs::OpContext local_{};
  obs::OpContext* ctx_ = nullptr;
  std::optional<obs::OpContextScope> scope_;
  std::unique_ptr<obs::Span> span_;  // destroyed after ~OpGuard's body,
                                     // so slow-op notes land inside it
};

size_t checked_disk_size(const CodeLayout& layout, size_t element_size,
                         int64_t stripes) {
  DCODE_CHECK(element_size > 0, "element size must be positive");
  DCODE_CHECK(stripes > 0, "array needs at least one stripe");
  return static_cast<size_t>(stripes) *
         static_cast<size_t>(layout.rows()) * element_size;
}

}  // namespace

void Raid6Array::overlay_range(int64_t g, int64_t offset, int64_t len,
                               int64_t esize, size_t* elem_begin,
                               size_t* src_begin, size_t* out_len) {
  int64_t elem_start = g * esize;
  int64_t lo = std::max<int64_t>(offset, elem_start);
  int64_t hi = std::min<int64_t>(offset + len, elem_start + esize);
  *elem_begin = static_cast<size_t>(lo - elem_start);
  *src_begin = static_cast<size_t>(lo - offset);
  *out_len = static_cast<size_t>(hi - lo);
}

Raid6Array::Raid6Array(std::unique_ptr<CodeLayout> layout,
                       size_t element_size, int64_t stripes, unsigned threads,
                       obs::Registry* registry, ArrayOptions options)
    : layout_(std::move(layout)),
      element_size_(element_size),
      stripes_(stripes),
      map_(*layout_),
      planner_(map_),
      pool_(threads),
      metrics_(registry != nullptr ? *registry : obs::Registry::global(),
               layout_->cols()),
      engine_(layout_->cols(),
              checked_disk_size(*layout_, element_size, stripes),
              element_size, layout_->rows(), pool_, &metrics_, this,
              StripeIoEngine::Options{
                  std::move(options.device_factory),
                  options.coalesce,
                  options.parallel_user_io,
                  options.transient_retry_limit,
                  options.retry_backoff_base_ns,
                  /*retry_backoff_max_ns=*/5'000'000,
                  options.retry_deadline_ns,
                  /*backoff_seed=*/0x5EEDBACCu,
                  options.integrity_checksums,
                  options.verify_reads,
                  options.integrity_sidecar_dir,
                  // Write-identity role for the sidecar tags: invert the
                  // stripe rotation to the logical column, then ask the
                  // layout. map_/layout_ are constructed above; the
                  // engine only calls this from write paths, never
                  // during construction.
                  [this](int d, int64_t stripe, int row) {
                    for (int c = 0; c < layout_->cols(); ++c) {
                      if (map_.physical_disk(stripe, c) == d) {
                        return layout_->is_parity(row, c) ? 1 : 0;
                      }
                    }
                    return 0;
                  },
              }),
      health_(layout_->cols(), options.health,
              registry != nullptr ? *registry : obs::Registry::global()),
      options_(std::move(options)),
      needs_rebuild_(static_cast<size_t>(layout_->cols())),
      stripe_locks_(options_.stripe_lock_slots, metrics_.stripe_lock_wait_ns),
      rebuild_throttle_(options_.rebuild_rate_stripes_per_sec,
                        options_.rebuild_burst_stripes) {
  engine_.set_health_monitor(&health_);
  health_.set_escalation_callback([this](int d) { handle_disk_failure(d); });
  if (!options_.flight_dump_path.empty()) {
    obs::FlightRecorder::global().set_dump_path(options_.flight_dump_path);
  }
}

Raid6Array::~Raid6Array() {
  stop_rebuild_.store(true, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(rebuild_mu_);
  rebuild_cv_.wait(lock, [&] { return !rebuild_running_; });
  if (rebuild_thread_.joinable()) rebuild_thread_.join();
}

int Raid6Array::failed_disk_count() const {
  int n = 0;
  for (int d = 0; d < layout_->cols(); ++d) n += engine_.disk(d).failed();
  return n;
}

void Raid6Array::reset_stats() { engine_.reset_stats(); }

void Raid6Array::add_hot_spares(int count) {
  DCODE_CHECK(count >= 0, "spare count must be non-negative");
  hot_spares_.fetch_add(count, std::memory_order_relaxed);
}

void Raid6Array::fail_disk(int disk) {
  DCODE_CHECK(disk >= 0 && disk < layout_->cols(), "disk out of range");
  engine_.fail_disk(disk);
  // Route the declaration through the monitor: it fires the escalation
  // handler (metrics, spare promotion, background rebuild) exactly once
  // per failure episode.
  health_.report_fail_stop(disk);
  if (!options_.background_rebuild && needs_rebuild(disk)) {
    // Legacy synchronous behaviour: a promoted spare is rebuilt before
    // fail_disk returns, so the array never observes the intermediate
    // state.
    rebuild();
  }
}

void Raid6Array::handle_disk_failure(int disk) {
  metrics_.disk_failures[static_cast<size_t>(disk)]->inc();
  metrics_.disks_failed->add(1);
  // The moments before an escalation are exactly what a post-mortem
  // wants: dump the flight rings before the promotion/rebuild machinery
  // floods them with recovery traffic.
  obs::FlightRecorder::global().request_dump("disk_failure");
  if (!engine_.disk(disk).failed()) engine_.fail_disk(disk);
  if (try_promote_spare(disk) && options_.background_rebuild &&
      !crashed_.load(std::memory_order_relaxed)) {
    start_background_rebuild();
  }
}

bool Raid6Array::try_promote_spare(int disk) {
  int cur = hot_spares_.load(std::memory_order_relaxed);
  while (cur > 0 &&
         !hot_spares_.compare_exchange_weak(cur, cur - 1,
                                            std::memory_order_relaxed)) {
  }
  if (cur <= 0) return false;
  {
    std::lock_guard<std::mutex> lock(promote_mu_);
    // Watermark protocol: readers must see the slot as fully degraded
    // before the blank goes live, so needs_rebuild and the zero watermark
    // are published first.
    needs_rebuild_[static_cast<size_t>(disk)].store(
        true, std::memory_order_release);
    engine_.disk(disk).set_readable_stripes(0);
    engine_.replace_disk(disk);
  }
  metrics_.disks_failed->sub(1);
  metrics_.spare_promotions->inc();
  health_.mark_rebuilding(disk);
  obs::Span span(obs::TraceLog::global(), "spare.promoted",
                 {{"disk", disk}});
  return true;
}

void Raid6Array::replace_disk(int disk) {
  DCODE_CHECK(disk >= 0 && disk < layout_->cols(), "disk out of range");
  DCODE_CHECK(engine_.disk(disk).failed(),
              "only failed disks can be replaced");
  std::lock_guard<std::mutex> lock(promote_mu_);
  needs_rebuild_[static_cast<size_t>(disk)].store(true,
                                                  std::memory_order_release);
  engine_.disk(disk).set_readable_stripes(0);
  engine_.replace_disk(disk);
  metrics_.disks_failed->sub(1);
  health_.mark_rebuilding(disk);
}

void Raid6Array::write_stripe_rmw(int64_t stripe, int64_t g,
                                  int64_t stripe_end, int64_t offset,
                                  std::span<const uint8_t> data) {
  const CodeLayout& layout = *layout_;
  const int64_t esize = static_cast<int64_t>(element_size_);
  const size_t n = static_cast<size_t>(stripe_end - g + 1);

  // Phase 1: batch-read the old contents of every touched data element.
  std::vector<AddressMap::Location> locs;
  std::vector<AlignedBuffer> old_data;
  std::vector<ReadOp> rops;
  locs.reserve(n);
  old_data.reserve(n);
  rops.reserve(n);
  for (int64_t e = g; e <= stripe_end; ++e) {
    locs.push_back(map_.locate(e));
    old_data.emplace_back(element_size_);
    rops.push_back({locs.back().disk, stripe, locs.back().element.row,
                    old_data.back().data()});
  }
  engine_.read_batch(rops);

  // Phase 2 (computation only): overlay the user bytes and compute the
  // per-element deltas, including the parity deltas of the dirty closure
  // in topo order. No I/O happens here, so everything below works from
  // values captured while the stripe was still consistent.
  std::vector<Element> written;
  std::map<Element, AlignedBuffer> delta;  // old ^ new per element
  std::vector<AlignedBuffer> fresh;
  std::vector<WriteOp> wops;
  written.reserve(n);
  fresh.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t e = g + static_cast<int64_t>(i);
    size_t eb, sb, len;
    overlay_range(e, offset, static_cast<int64_t>(data.size()), esize, &eb,
                  &sb, &len);
    fresh.emplace_back(element_size_);
    std::memcpy(fresh.back().data(), old_data[i].data(), element_size_);
    std::memcpy(fresh.back().data() + eb, data.data() + sb, len);

    AlignedBuffer dbuf(element_size_);
    xorops::xor_assign(dbuf.data(), old_data[i].data(), fresh.back().data(),
                       element_size_);
    written.push_back(locs[i].element);
    delta.emplace(locs[i].element, std::move(dbuf));
  }
  const std::vector<int> closure = dirty_parity_closure(layout, written);
  std::vector<int> pdisks;
  std::vector<AlignedBuffer> pdeltas;
  pdisks.reserve(closure.size());
  pdeltas.reserve(closure.size());
  for (int qi : closure) {
    const Equation& q = layout.equations()[static_cast<size_t>(qi)];
    pdisks.push_back(map_.physical_disk(stripe, q.parity.col));
    AlignedBuffer pdelta(element_size_);
    for (const Element& src : q.sources) {
      auto it = delta.find(src);
      if (it != delta.end()) {
        xorops::xor_into(pdelta.data(), it->second.data(), element_size_);
      }
    }
    pdeltas.emplace_back(element_size_);
    std::memcpy(pdeltas.back().data(), pdelta.data(), element_size_);
    delta.emplace(q.parity, std::move(pdelta));
  }

  // Phase 3 (writes, with internal failover): once the first device write
  // lands the stripe is mid-update, and re-reading it would mix old and
  // new state — a degraded re-plan decoding through a stale parity would
  // manufacture consistent garbage. So a disk dying from here on is
  // handled by REPLAYING the captured target values (data writes and
  // parity old^delta are idempotent), skipping disks that have died; the
  // rebuild later reconstructs their elements from the consistent
  // survivors. Only the pre-write phases above may throw to the caller.
  std::vector<AlignedBuffer> parity;  // old parity, captured exactly once
  std::vector<char> parity_live(closure.size(), 0);
  bool parity_read = false;
  for (int attempt = 0;; ++attempt) {
    try {
      wops.clear();
      for (size_t i = 0; i < n; ++i) {
        if (disk_degraded_for_stripe(locs[i].disk, stripe)) continue;
        wops.push_back(
            {locs[i].disk, stripe, locs[i].element.row, fresh[i].data()});
      }
      engine_.write_batch(wops);
      if (!parity_read) {
        // Parity is still uniformly old (no parity write has happened in
        // any attempt), so reading it now is safe; after this point the
        // captured values are authoritative and are never re-read.
        parity.clear();
        rops.clear();
        for (size_t i = 0; i < closure.size(); ++i) {
          const Equation& q =
              layout.equations()[static_cast<size_t>(closure[i])];
          parity.emplace_back(element_size_);
          parity_live[i] = disk_degraded_for_stripe(pdisks[i], stripe) ? 0 : 1;
          if (parity_live[i] != 0) {
            rops.push_back(
                {pdisks[i], stripe, q.parity.row, parity[i].data()});
          }
        }
        engine_.read_batch(rops);
        for (size_t i = 0; i < closure.size(); ++i) {
          xorops::xor_into(parity[i].data(), pdeltas[i].data(),
                           element_size_);
        }
        parity_read = true;
      }
      wops.clear();
      for (size_t i = 0; i < closure.size(); ++i) {
        if (parity_live[i] == 0 ||
            disk_degraded_for_stripe(pdisks[i], stripe)) {
          continue;
        }
        const Equation& q =
            layout.equations()[static_cast<size_t>(closure[i])];
        wops.push_back({pdisks[i], stripe, q.parity.row, parity[i].data()});
      }
      engine_.write_batch(wops);
      return;
    } catch (const ElementIntegrityError&) {
      // A condemned parity pre-read: replaying won't help (the platter
      // holds a stale/foreign value) — surface to write()'s integrity
      // handler, which repairs the stripe in place and retries.
      throw;
    } catch (const DiskFailedError&) {
      // More failures than the code tolerates would loop forever; at that
      // point the array is lost anyway — surface the error.
      if (attempt >= kMaxFailoverAttempts) throw;
      metrics_.failovers->inc();
    }
  }
}

void Raid6Array::write(int64_t offset, std::span<const uint8_t> data) {
  ensure_online();
  DCODE_CHECK(offset >= 0 && offset + static_cast<int64_t>(data.size()) <=
                                 capacity(),
              "write outside the array's data space");
  if (data.empty()) return;
  const CodeLayout& layout = *layout_;
  const int64_t esize = static_cast<int64_t>(element_size_);
  const int64_t first = offset / esize;
  const int64_t last = (offset + static_cast<int64_t>(data.size()) - 1) / esize;

  bool degraded = false;
  for (int d = 0; d < layout.cols(); ++d) degraded |= disk_degraded(d);
  OpGuard op(/*is_write=*/true, offset, static_cast<int64_t>(data.size()),
             degraded, metrics_, options_);
  (degraded ? metrics_.degraded_writes : metrics_.writes)->inc();
  metrics_.bytes_written->inc(static_cast<int64_t>(data.size()));
  metrics_.write_bytes->observe(static_cast<int64_t>(data.size()));

  // Group the touched elements by stripe.
  int64_t g = first;
  while (g <= last) {
    const int64_t stripe = g / layout.data_count();
    const int64_t stripe_end =
        std::min(last, (stripe + 1) * layout.data_count() - 1);

    // Write-ahead intent record: must be durable before the first element
    // write of this stripe (itself consumes write budget, so an injected
    // crash can land on either side of it — both sides are safe).
    if (journal_) {
      admit();
      if (journal_->begin(stripe)) metrics_.journal_intents_opened->inc();
    }

    // The stripe lock serializes this update against the background
    // rebuild worker (and other writers); degradedness is decided
    // per stripe under the lock, so a stripe behind the rebuild
    // watermark takes the fast RMW path while stripes ahead of it
    // rewrite around the rebuilding disk. A disk failing mid-write
    // surfaces as DiskFailedError — re-plan and retry (failover).
    bool salvage = false;
    for (int attempt = 0;; ++attempt) {
      std::unique_lock<std::mutex> lock = stripe_lock(stripe);
      bool stripe_degraded = false;
      for (int d = 0; d < layout.cols(); ++d) {
        stripe_degraded |= disk_degraded_for_stripe(d, stripe);
      }
      try {
        if (salvage) {
          salvage_stripe_rewrite(stripe, g, stripe_end, offset, data);
        } else if (stripe_degraded) {
          write_stripe_degraded(stripe, g, stripe_end, offset, data);
        } else {
          write_stripe_rmw(stripe, g, stripe_end, offset, data);
        }
        break;
      } catch (const ElementIntegrityError&) {
        // An RMW pre-read (old data or old parity) failed verification.
        // Folding a condemned old value into a parity delta would fold
        // the corruption INTO parity, so repair the stripe in place
        // (we hold its lock) and retry the update against clean state.
        // If the in-place repair cannot converge (a mid-update stripe
        // where the condemned column's equations hold pre-update
        // parity), escalate to the salvage rewrite, which uses the
        // caller's buffer instead of RMW deltas.
        if (attempt >= kMaxFailoverAttempts) throw;
        metrics_.failovers->inc();
        if (attempt == 0 && !salvage) {
          clean_stripe_integrity(stripe);
        } else {
          salvage = true;
        }
      } catch (const DiskFailedError&) {
        if (attempt >= kMaxFailoverAttempts) throw;
        metrics_.failovers->inc();
      }
    }

    if (journal_) {
      admit();
      journal_->commit(stripe);
      metrics_.journal_commits->inc();
    }
    g = stripe_end + 1;
  }
}

void Raid6Array::read_healthy(int64_t first, int64_t last, int64_t offset,
                              std::span<uint8_t> out) {
  const int64_t esize = static_cast<int64_t>(element_size_);
  const int64_t end = offset + static_cast<int64_t>(out.size());
  // Fully covered elements land straight in the caller's buffer; the (at
  // most two) partially covered edge elements bounce through scratch.
  AlignedBuffer head(element_size_), tail(element_size_);
  std::vector<ReadOp> rops;
  rops.reserve(static_cast<size_t>(last - first + 1));
  for (int64_t e = first; e <= last; ++e) {
    auto loc = map_.locate(e);
    const bool full = e * esize >= offset && (e + 1) * esize <= end;
    uint8_t* dst = full ? out.data() + (e * esize - offset)
                        : (e == first ? head.data() : tail.data());
    rops.push_back({loc.disk, loc.stripe, loc.element.row, dst});
  }
  engine_.read_batch(rops);
  auto copy_out = [&](int64_t e, const uint8_t* elem) {
    size_t eb, sb, len;
    overlay_range(e, offset, static_cast<int64_t>(out.size()), esize, &eb,
                  &sb, &len);
    std::memcpy(out.data() + sb, elem + eb, len);
  };
  if (first * esize < offset) copy_out(first, head.data());
  if ((last + 1) * esize > end) {
    copy_out(last, last == first ? head.data() : tail.data());
  }
}

void Raid6Array::read(int64_t offset, std::span<uint8_t> out) {
  ensure_online();
  DCODE_CHECK(offset >= 0 && offset + static_cast<int64_t>(out.size()) <=
                                 capacity(),
              "read outside the array's data space");
  if (out.empty()) return;
  const int64_t esize = static_cast<int64_t>(element_size_);
  const int64_t first = offset / esize;
  const int64_t last = (offset + static_cast<int64_t>(out.size()) - 1) / esize;

  const int64_t last_stripe = last / layout_->data_count();
  // Disks verify-on-read has condemned an element of during THIS op:
  // planned around like failed disks, so the data comes from parity
  // (which is correct — parity took the write the platter lost). The set
  // is op-local; scrub owns the durable repair.
  std::vector<int> suspects;
  auto collect_failed = [&] {
    std::vector<int> failed;
    for (int d = 0; d < layout_->cols(); ++d) {
      if (disk_degraded_for_range(d, last_stripe)) failed.push_back(d);
    }
    for (int d : suspects) {
      if (std::find(failed.begin(), failed.end(), d) == failed.end()) {
        failed.push_back(d);
      }
    }
    std::sort(failed.begin(), failed.end());
    return failed;
  };
  std::vector<int> failed = collect_failed();
  OpGuard op(/*is_write=*/false, offset, static_cast<int64_t>(out.size()),
             !failed.empty(), metrics_, options_);
  (failed.empty() ? metrics_.reads : metrics_.degraded_reads)->inc();
  metrics_.bytes_read->inc(static_cast<int64_t>(out.size()));
  metrics_.read_bytes->observe(static_cast<int64_t>(out.size()));

  // Failover loop: a disk failing (or a spare being promoted) while this
  // read is in flight surfaces as DiskFailedError from the engine; the
  // failure set is recomputed and the read re-planned, so user reads
  // never fail for fault sequences the code tolerates.
  for (int attempt = 0;; ++attempt) {
    try {
      if (failed.empty()) {
        read_healthy(first, last, offset, out);
      } else {
        read_degraded(first, last, offset, out, failed);
      }
      return;
    } catch (const ElementIntegrityError& e) {
      // Must precede the DiskFailedError catch (it's a subclass). The
      // engine already counted/traced the mismatch; here we only
      // re-plan so the caller gets correct bytes.
      if (attempt >= kMaxFailoverAttempts) throw;
      metrics_.failovers->inc();
      metrics_.integrity_read_fallbacks->inc();
      if (std::find(suspects.begin(), suspects.end(), e.disk()) ==
          suspects.end()) {
        suspects.push_back(e.disk());
      }
      failed = collect_failed();
    } catch (const DiskFailedError&) {
      if (attempt >= kMaxFailoverAttempts) throw;
      metrics_.failovers->inc();
      failed = collect_failed();
    }
  }
}

void Raid6Array::rebuild() {
  // Joins any background worker first: the synchronous rebuild is the
  // catch-all (post-crash recovery, manual repair) and must not race the
  // worker's watermark advances.
  wait_for_rebuild();
  ensure_online();
  const CodeLayout& layout = *layout_;
  std::vector<int> targets;
  for (int d = 0; d < layout.cols(); ++d) {
    if (needs_rebuild(d)) {
      DCODE_CHECK(!engine_.disk(d).failed(), "replace_disk before rebuild");
      targets.push_back(d);
    }
  }
  if (targets.empty()) return;
  DCODE_CHECK(static_cast<int>(targets.size()) <= layout.fault_tolerance(),
              "more failed disks than the code tolerates");

  LatencyTimer timer(metrics_.rebuild_latency_ns);
  metrics_.rebuilds->inc();
  obs::Span span(obs::TraceLog::global(), "rebuild",
                 {{"targets", static_cast<int64_t>(targets.size())},
                  {"stripes", stripes_},
                  {"code", layout.name()}});

  if (targets.size() == 1) {
    RecoveryPlan plan = plan_single_disk_recovery(
        layout, targets[0], RecoveryStrategy::kMinimalReads);
    span.note("rebuild.plan",
              {{"mode", "minimal_reads"}, {"disk", targets[0]},
               {"reads_per_stripe", static_cast<int64_t>(plan.reads.size())}});
    execute_single_disk_rebuild(layout, plan, engine_, targets[0], stripes_);
  } else {
    std::sort(targets.begin(), targets.end());
    const bool chain = layout.name() == "dcode" && targets.size() == 2;
    span.note("rebuild.plan",
              {{"mode", chain ? "dcode_chain" : "hybrid_decode"}});
    execute_multi_disk_rebuild(layout, engine_, targets, stripes_);
  }

  {
    std::lock_guard<std::mutex> lock(promote_mu_);
    for (int d : targets) {
      engine_.disk(d).set_readable_stripes(
          std::numeric_limits<int64_t>::max());
      needs_rebuild_[static_cast<size_t>(d)].store(
          false, std::memory_order_release);
    }
  }
  for (int d : targets) health_.mark_healthy(d);
  metrics_.elements_reconstructed->inc(static_cast<int64_t>(targets.size()) *
                                       layout.rows() * stripes_);
}

std::vector<int64_t> Raid6Array::per_disk_element_accesses() const {
  return engine_.per_disk_element_accesses();
}

void Raid6Array::publish_disk_metrics(obs::Registry& registry) const {
  for (int d = 0; d < layout_->cols(); ++d) {
    const DiskHandle& h = engine_.disk(d);
    obs::Labels l = {{"disk", std::to_string(h.id())}};
    registry.gauge("raid.disk.reads", l).set(h.reads());
    registry.gauge("raid.disk.writes", l).set(h.writes());
    registry.gauge("raid.disk.bytes_read", l).set(h.bytes_read());
    registry.gauge("raid.disk.bytes_written", l).set(h.bytes_written());
    registry.gauge("raid.disk.failed", l).set(h.failed() ? 1 : 0);
    registry.gauge("raid.disk.health_state", l)
        .set(static_cast<int64_t>(health_.state(d)));
    // Rebuild progress: stripes of this device currently readable
    // (clamped — a healthy device reports the stripe count).
    registry.gauge("raid.disk.readable_stripes", l)
        .set(std::min<int64_t>(h.readable_stripes(), stripes_));
    // Device-level op counts, labeled by backend: one count per ranged
    // transfer, so reads()/device_read_ops() is the coalescing ratio.
    obs::Labels lb = {{"backend", std::string(h.backend_name())},
                      {"disk", std::to_string(h.id())}};
    registry.gauge("raid.disk.device_read_ops", lb).set(h.device_read_ops());
    registry.gauge("raid.disk.device_write_ops", lb)
        .set(h.device_write_ops());
  }
}

}  // namespace dcode::raid

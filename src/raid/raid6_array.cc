#include "raid/raid6_array.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <set>

#include "codes/decoder.h"
#include "codes/dcode_decoder.h"
#include "codes/encoder.h"
#include "codes/stripe.h"
#include "obs/trace.h"
#include "raid/recovery.h"
#include "xorops/xor_region.h"

namespace dcode::raid {

using codes::CodeLayout;
using codes::Element;
using codes::Equation;
using codes::Stripe;

namespace {

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Observes wall time into a latency histogram on scope exit (including
// unwinds — a failed op's latency is still a latency).
class LatencyTimer {
 public:
  explicit LatencyTimer(obs::Histogram* h) : h_(h), t0_(now_ns()) {}
  ~LatencyTimer() { h_->observe(now_ns() - t0_); }
  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

 private:
  obs::Histogram* h_;
  int64_t t0_;
};

}  // namespace

Raid6Array::Raid6Array(std::unique_ptr<CodeLayout> layout,
                       size_t element_size, int64_t stripes, unsigned threads,
                       obs::Registry* registry)
    : layout_(std::move(layout)),
      element_size_(element_size),
      stripes_(stripes),
      map_(*layout_),
      planner_(map_),
      pool_(threads),
      metrics_(registry != nullptr ? *registry : obs::Registry::global(),
               layout_->cols()) {
  DCODE_CHECK(element_size_ > 0, "element size must be positive");
  DCODE_CHECK(stripes_ > 0, "array needs at least one stripe");
  size_t disk_size =
      static_cast<size_t>(stripes_) * layout_->rows() * element_size_;
  for (int d = 0; d < layout_->cols(); ++d) {
    disks_.push_back(std::make_unique<MemDisk>(d, disk_size));
  }
  needs_rebuild_.assign(static_cast<size_t>(layout_->cols()), false);
}

void Raid6Array::ensure_online() const {
  if (crashed_.load(std::memory_order_relaxed)) throw PowerLossError();
}

void Raid6Array::consume_write_budget() {
  ensure_online();
  if (crash_countdown_.load(std::memory_order_relaxed) >= 0) {
    if (crash_countdown_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
      crashed_.store(true, std::memory_order_relaxed);
      throw PowerLossError();
    }
  }
}

void Raid6Array::write_element(int disk, int64_t stripe, int row,
                               std::span<const uint8_t> data) {
  consume_write_budget();
  disks_[static_cast<size_t>(disk)]->write(element_offset(stripe, row), data);
  metrics_.disk_element_writes[static_cast<size_t>(disk)]->inc();
}

void Raid6Array::read_element(int disk, int64_t stripe, int row,
                              uint8_t* dst) {
  disks_[static_cast<size_t>(disk)]->read(
      element_offset(stripe, row), std::span<uint8_t>(dst, element_size_));
  metrics_.disk_element_reads[static_cast<size_t>(disk)]->inc();
}

void Raid6Array::enable_journal(int slots) {
  DCODE_CHECK(!journal_, "journal already enabled");
  journal_.emplace(slots);
}

void Raid6Array::inject_power_loss_after(int64_t element_writes) {
  DCODE_CHECK(element_writes >= 0, "write budget must be non-negative");
  crash_countdown_.store(element_writes, std::memory_order_relaxed);
}

void Raid6Array::restart() {
  crashed_.store(false, std::memory_order_relaxed);
  crash_countdown_.store(-1, std::memory_order_relaxed);
}

std::vector<int64_t> Raid6Array::journal_open_stripes() const {
  DCODE_CHECK(journal_.has_value(), "journal not enabled");
  return journal_->open_stripes();
}

int64_t Raid6Array::journal_recover() {
  ensure_online();
  DCODE_CHECK(journal_.has_value(), "journal not enabled");
  DCODE_CHECK(failed_disk_count() == 0,
              "journal recovery requires a healthy array");
  const CodeLayout& layout = *layout_;
  const std::vector<int64_t> open = journal_->open_stripes();
  obs::Span span(obs::TraceLog::global(), "journal.recover",
                 {{"open_intents", static_cast<int64_t>(open.size())}});
  metrics_.journal_recoveries->inc();
  int64_t repaired = 0;
  for (int64_t stripe : open) {
    // Re-encode parity from whatever data survived the crash: every data
    // element is individually consistent (element writes are atomic), so
    // a fresh encode restores the stripe invariant.
    Stripe s(layout, element_size_);
    for (int c = 0; c < layout.cols(); ++c) {
      for (int r = 0; r < layout.rows(); ++r) {
        read_element(c, stripe, r, s.at(r, c));
      }
    }
    codes::encode_stripe(s);
    for (const Equation& q : layout.equations()) {
      write_element(q.parity.col, stripe, q.parity.row,
                    std::span<const uint8_t>(s.at(q.parity), element_size_));
    }
    journal_->commit(stripe);
    span.note("journal.replayed_stripe", {{"stripe", stripe}});
    ++repaired;
  }
  metrics_.journal_replayed_stripes->inc(repaired);
  return repaired;
}

int Raid6Array::failed_disk_count() const {
  int n = 0;
  for (const auto& d : disks_) n += d->failed() ? 1 : 0;
  return n;
}

void Raid6Array::reset_stats() {
  for (auto& d : disks_) d->reset_stats();
}

void Raid6Array::add_hot_spares(int count) {
  DCODE_CHECK(count >= 0, "spare count must be non-negative");
  hot_spares_ += count;
}

void Raid6Array::fail_disk(int disk) {
  DCODE_CHECK(disk >= 0 && disk < layout_->cols(), "disk out of range");
  if (!disks_[static_cast<size_t>(disk)]->failed()) {
    metrics_.disk_failures[static_cast<size_t>(disk)]->inc();
    metrics_.disks_failed->add(1);
  }
  disks_[static_cast<size_t>(disk)]->fail();
  if (hot_spares_ > 0) {
    --hot_spares_;
    disks_[static_cast<size_t>(disk)]->replace();
    metrics_.disks_failed->sub(1);
    needs_rebuild_[static_cast<size_t>(disk)] = true;
    rebuild();
  }
}

void Raid6Array::replace_disk(int disk) {
  DCODE_CHECK(disk >= 0 && disk < layout_->cols(), "disk out of range");
  DCODE_CHECK(disks_[static_cast<size_t>(disk)]->failed(),
              "only failed disks can be replaced");
  disks_[static_cast<size_t>(disk)]->replace();
  metrics_.disks_failed->sub(1);
  needs_rebuild_[static_cast<size_t>(disk)] = true;
}

void Raid6Array::load_stripe_degraded(int64_t stripe, Stripe& out) {
  const CodeLayout& layout = *layout_;
  std::vector<Element> lost;
  for (int c = 0; c < layout.cols(); ++c) {
    bool dead = disks_[static_cast<size_t>(c)]->failed() ||
                needs_rebuild_[static_cast<size_t>(c)];
    for (int r = 0; r < layout.rows(); ++r) {
      if (dead) {
        lost.push_back(codes::make_element(r, c));
      } else {
        read_element(c, stripe, r, out.at(r, c));
      }
    }
  }
  if (!lost.empty()) {
    auto res = codes::hybrid_decode(out, lost);
    DCODE_CHECK(res.success, "stripe unrecoverable (more than two failures)");
    metrics_.elements_reconstructed->inc(static_cast<int64_t>(lost.size()));
  }
}

void Raid6Array::store_stripe(int64_t stripe, const Stripe& in) {
  for (int c = 0; c < layout_->cols(); ++c) {
    if (disks_[static_cast<size_t>(c)]->failed()) continue;
    for (int r = 0; r < layout_->rows(); ++r) {
      write_element(c, stripe, r,
                    std::span<const uint8_t>(in.at(r, c), element_size_));
    }
  }
}

void Raid6Array::write(int64_t offset, std::span<const uint8_t> data) {
  ensure_online();
  DCODE_CHECK(offset >= 0 && offset + static_cast<int64_t>(data.size()) <=
                                 capacity(),
              "write outside the array's data space");
  if (data.empty()) return;
  const CodeLayout& layout = *layout_;
  const int64_t esize = static_cast<int64_t>(element_size_);
  const int64_t first = offset / esize;
  const int64_t last = (offset + static_cast<int64_t>(data.size()) - 1) / esize;

  const bool degraded = failed_disk_count() > 0 ||
                        std::any_of(needs_rebuild_.begin(),
                                    needs_rebuild_.end(),
                                    [](bool b) { return b; });
  LatencyTimer timer(metrics_.write_latency_ns);
  (degraded ? metrics_.degraded_writes : metrics_.writes)->inc();
  metrics_.bytes_written->inc(static_cast<int64_t>(data.size()));
  metrics_.write_bytes->observe(static_cast<int64_t>(data.size()));

  // Per-element overlay: [start, end) bytes of element g come from `data`.
  auto overlay_range = [&](int64_t g, size_t* elem_begin, size_t* src_begin,
                           size_t* len) {
    int64_t elem_start = g * esize;
    int64_t lo = std::max<int64_t>(offset, elem_start);
    int64_t hi = std::min<int64_t>(offset + static_cast<int64_t>(data.size()),
                                   elem_start + esize);
    *elem_begin = static_cast<size_t>(lo - elem_start);
    *src_begin = static_cast<size_t>(lo - offset);
    *len = static_cast<size_t>(hi - lo);
  };

  // Group the touched elements by stripe.
  int64_t g = first;
  while (g <= last) {
    const int64_t stripe = g / layout.data_count();
    const int64_t stripe_end =
        std::min(last, (stripe + 1) * layout.data_count() - 1);

    // Write-ahead intent record: must be durable before the first element
    // write of this stripe (itself consumes write budget, so an injected
    // crash can land on either side of it — both sides are safe).
    if (journal_) {
      consume_write_budget();
      if (journal_->begin(stripe)) metrics_.journal_intents_opened->inc();
    }

    if (degraded) {
      // Stripe-rewrite policy: reconstruct, modify, re-encode, then write
      // back only the touched surviving data elements plus every
      // surviving parity (untouched data is already on disk).
      Stripe s(layout, element_size_);
      load_stripe_degraded(stripe, s);
      std::set<Element> touched;
      for (int64_t e = g; e <= stripe_end; ++e) {
        auto loc = map_.locate(e);
        size_t eb, sb, len;
        overlay_range(e, &eb, &sb, &len);
        std::memcpy(s.at(loc.element) + eb, data.data() + sb, len);
        touched.insert(loc.element);
      }
      codes::encode_stripe(s);
      for (int r = 0; r < layout.rows(); ++r) {
        for (int c = 0; c < layout.cols(); ++c) {
          int pdisk = map_.physical_disk(stripe, c);
          if (disks_[static_cast<size_t>(pdisk)]->failed() ||
              needs_rebuild_[static_cast<size_t>(pdisk)]) {
            continue;
          }
          Element e = codes::make_element(r, c);
          if (layout.is_parity(r, c) || touched.count(e)) {
            write_element(pdisk, stripe, r,
                          std::span<const uint8_t>(s.at(r, c),
                                                   element_size_));
          }
        }
      }
      if (journal_) {
        consume_write_budget();
        journal_->commit(stripe);
        metrics_.journal_commits->inc();
      }
      g = stripe_end + 1;
      continue;
    }

    // Healthy path: delta-based read-modify-write.
    std::vector<Element> written;
    std::map<Element, AlignedBuffer> delta;  // old ^ new per element
    for (int64_t e = g; e <= stripe_end; ++e) {
      auto loc = map_.locate(e);
      size_t eb, sb, len;
      overlay_range(e, &eb, &sb, &len);

      AlignedBuffer old(element_size_);
      read_element(loc.disk, stripe, loc.element.row, old.data());

      AlignedBuffer fresh(element_size_);
      std::memcpy(fresh.data(), old.data(), element_size_);
      std::memcpy(fresh.data() + eb, data.data() + sb, len);

      AlignedBuffer dbuf(element_size_);
      xorops::xor_assign(dbuf.data(), old.data(), fresh.data(),
                         element_size_);
      write_element(loc.disk, stripe, loc.element.row,
                    std::span<const uint8_t>(fresh.data(), element_size_));
      written.push_back(loc.element);
      delta.emplace(loc.element, std::move(dbuf));
    }

    // Propagate deltas through the dirty parity closure in topo order.
    for (int qi : dirty_parity_closure(layout, written)) {
      const Equation& q = layout.equations()[static_cast<size_t>(qi)];
      AlignedBuffer pdelta(element_size_);
      for (const Element& src : q.sources) {
        auto it = delta.find(src);
        if (it != delta.end()) {
          xorops::xor_into(pdelta.data(), it->second.data(), element_size_);
        }
      }
      int pdisk = map_.physical_disk(stripe, q.parity.col);
      AlignedBuffer parity(element_size_);
      read_element(pdisk, stripe, q.parity.row, parity.data());
      xorops::xor_into(parity.data(), pdelta.data(), element_size_);
      write_element(pdisk, stripe, q.parity.row,
                    std::span<const uint8_t>(parity.data(), element_size_));
      delta.emplace(q.parity, std::move(pdelta));
    }

    if (journal_) {
      consume_write_budget();
      journal_->commit(stripe);
      metrics_.journal_commits->inc();
    }
    g = stripe_end + 1;
  }
}

void Raid6Array::read(int64_t offset, std::span<uint8_t> out) {
  ensure_online();
  DCODE_CHECK(offset >= 0 && offset + static_cast<int64_t>(out.size()) <=
                                 capacity(),
              "read outside the array's data space");
  if (out.empty()) return;
  const CodeLayout& layout = *layout_;
  const int64_t esize = static_cast<int64_t>(element_size_);
  const int64_t first = offset / esize;
  const int64_t last = (offset + static_cast<int64_t>(out.size()) - 1) / esize;

  std::vector<int> failed;
  for (int d = 0; d < layout.cols(); ++d) {
    if (disks_[static_cast<size_t>(d)]->failed() ||
        needs_rebuild_[static_cast<size_t>(d)]) {
      failed.push_back(d);
    }
  }
  LatencyTimer timer(metrics_.read_latency_ns);
  (failed.empty() ? metrics_.reads : metrics_.degraded_reads)->inc();
  metrics_.bytes_read->inc(static_cast<int64_t>(out.size()));
  metrics_.read_bytes->observe(static_cast<int64_t>(out.size()));

  auto copy_out = [&](int64_t g, const uint8_t* elem) {
    int64_t elem_start = g * esize;
    int64_t lo = std::max<int64_t>(offset, elem_start);
    int64_t hi = std::min<int64_t>(offset + static_cast<int64_t>(out.size()),
                                   elem_start + esize);
    std::memcpy(out.data() + (lo - offset), elem + (lo - elem_start),
                static_cast<size_t>(hi - lo));
  };

  if (failed.empty()) {
    AlignedBuffer buf(element_size_);
    for (int64_t e = first; e <= last; ++e) {
      auto loc = map_.locate(e);
      read_element(loc.disk, loc.stripe, loc.element.row, buf.data());
      copy_out(e, buf.data());
    }
    return;
  }

  // Degraded read: follow the planner's per-element equation choices.
  IoPlan plan = planner_.plan_degraded_read(first,
                                            static_cast<int>(last - first + 1),
                                            failed);
  obs::Span span(
      obs::TraceLog::global(), "degraded_read",
      {{"offset", offset}, {"bytes", static_cast<int64_t>(out.size())},
       {"failed_disks", static_cast<int64_t>(failed.size())},
       {"plan_reads", plan.reads()},
       {"reconstructions", static_cast<int64_t>(plan.reconstructions.size())}});
  // Scratch cache of element buffers per (stripe, element).
  struct Key {
    int64_t stripe;
    Element e;
    bool operator<(const Key& o) const {
      return stripe != o.stripe ? stripe < o.stripe : e < o.e;
    }
  };
  std::map<Key, AlignedBuffer> cache;

  for (const IoAccess& a : plan.accesses) {
    DCODE_ASSERT(!a.is_write, "degraded read plan must not write");
    AlignedBuffer buf(element_size_);
    read_element(a.disk, a.stripe, a.element.row, buf.data());
    cache.emplace(Key{a.stripe, a.element}, std::move(buf));
  }

  for (const Reconstruction& rec : plan.reconstructions) {
    AlignedBuffer buf(element_size_);
    if (rec.equation >= 0) {
      const Equation& q = layout.equations()[static_cast<size_t>(rec.equation)];
      auto fold = [&](const Element& m) {
        if (m == rec.target) return;
        auto it = cache.find(Key{rec.stripe, m});
        DCODE_CHECK(it != cache.end(),
                    "planner promised this member was read");
        xorops::xor_into(buf.data(), it->second.data(), element_size_);
      };
      fold(q.parity);
      for (const Element& m : q.sources) fold(m);
    } else {
      // Full-stripe chained decode fallback (two failed disks crossing
      // every equation of the target).
      span.note("full_stripe_decode", {{"stripe", rec.stripe}});
      Stripe s(layout, element_size_);
      load_stripe_degraded(rec.stripe, s);
      std::memcpy(buf.data(), s.at(rec.target), element_size_);
    }
    cache.emplace(Key{rec.stripe, rec.target}, std::move(buf));
  }
  // Equation-based reconstructions (the fallback already counted its own
  // rebuilt elements inside load_stripe_degraded).
  int64_t eq_recs = 0;
  for (const Reconstruction& rec : plan.reconstructions) {
    if (rec.equation >= 0) ++eq_recs;
  }
  metrics_.elements_reconstructed->inc(eq_recs);

  for (int64_t e = first; e <= last; ++e) {
    auto loc = map_.locate(e);
    auto it = cache.find(Key{loc.stripe, loc.element});
    DCODE_CHECK(it != cache.end(), "requested element missing from plan");
    copy_out(e, it->second.data());
  }
}

void Raid6Array::rebuild() {
  ensure_online();
  const CodeLayout& layout = *layout_;
  std::vector<int> targets;
  for (int d = 0; d < layout.cols(); ++d) {
    if (needs_rebuild_[static_cast<size_t>(d)]) {
      DCODE_CHECK(!disks_[static_cast<size_t>(d)]->failed(),
                  "replace_disk before rebuild");
      targets.push_back(d);
    }
  }
  if (targets.empty()) return;
  DCODE_CHECK(static_cast<int>(targets.size()) <= layout.fault_tolerance(),
              "more failed disks than the code tolerates");

  LatencyTimer timer(metrics_.rebuild_latency_ns);
  metrics_.rebuilds->inc();
  obs::Span span(obs::TraceLog::global(), "rebuild",
                 {{"targets", static_cast<int64_t>(targets.size())},
                  {"stripes", stripes_},
                  {"code", layout.name()}});

  if (targets.size() == 1) {
    const int f = targets[0];
    RecoveryPlan plan = plan_single_disk_recovery(
        layout, f, RecoveryStrategy::kMinimalReads);
    span.note("rebuild.plan",
              {{"mode", "minimal_reads"}, {"disk", f},
               {"reads_per_stripe", static_cast<int64_t>(plan.reads.size())}});
    pool_.parallel_for_chunked(
        static_cast<size_t>(stripes_), [&](size_t begin, size_t end) {
          std::map<Element, AlignedBuffer> cache;
          for (size_t s = begin; s < end; ++s) {
            cache.clear();
            for (const Element& e : plan.reads) {
              AlignedBuffer buf(element_size_);
              read_element(e.col, static_cast<int64_t>(s), e.row, buf.data());
              cache.emplace(e, std::move(buf));
            }
            for (const Reconstruction& rec : plan.reconstructions) {
              AlignedBuffer buf(element_size_);
              const Equation& q =
                  layout.equations()[static_cast<size_t>(rec.equation)];
              auto fold = [&](const Element& m) {
                if (m == rec.target) return;
                auto it = cache.find(m);
                DCODE_ASSERT(it != cache.end(),
                             "recovery plan read set incomplete");
                xorops::xor_into(buf.data(), it->second.data(),
                                 element_size_);
              };
              fold(q.parity);
              for (const Element& m : q.sources) fold(m);
              write_element(f, static_cast<int64_t>(s), rec.target.row,
                            std::span<const uint8_t>(buf.data(),
                                                     element_size_));
            }
          }
        });
  } else {
    // Two (or, for higher-tolerance codes like STAR, three) failed disks:
    // whole-stripe decode, D-Code's chain decoder on its fast path.
    std::vector<int> fs = targets;
    std::sort(fs.begin(), fs.end());
    const bool use_chain = layout.name() == "dcode" && fs.size() == 2;
    span.note("rebuild.plan",
              {{"mode", use_chain ? "dcode_chain" : "hybrid_decode"}});
    pool_.parallel_for_chunked(
        static_cast<size_t>(stripes_), [&](size_t begin, size_t end) {
          Stripe s(layout, element_size_);
          auto is_target = [&](int c) {
            return std::find(fs.begin(), fs.end(), c) != fs.end();
          };
          for (size_t st = begin; st < end; ++st) {
            // Read survivors.
            for (int c = 0; c < layout.cols(); ++c) {
              if (is_target(c)) continue;
              for (int r = 0; r < layout.rows(); ++r) {
                read_element(c, static_cast<int64_t>(st), r, s.at(r, c));
              }
            }
            if (use_chain) {
              auto res = codes::dcode_decode_two_disks(s, fs[0], fs[1]);
              DCODE_CHECK(res.success, "D-Code chain decode failed");
            } else {
              auto lost = codes::elements_of_disks(layout, fs);
              auto res = codes::hybrid_decode(s, lost);
              DCODE_CHECK(res.success, "stripe unrecoverable");
            }
            for (int c : fs) {
              for (int r = 0; r < layout.rows(); ++r) {
                write_element(c, static_cast<int64_t>(st), r,
                              std::span<const uint8_t>(s.at(r, c),
                                                       element_size_));
              }
            }
          }
        });
  }

  for (int d : targets) needs_rebuild_[static_cast<size_t>(d)] = false;
  metrics_.elements_reconstructed->inc(static_cast<int64_t>(targets.size()) *
                                       layout.rows() * stripes_);
}

int64_t Raid6Array::scrub() {
  return static_cast<int64_t>(scrub_report().inconsistent_stripes.size());
}

ScrubReport Raid6Array::scrub_report() {
  ensure_online();
  DCODE_CHECK(failed_disk_count() == 0, "scrub requires a healthy array");
  const CodeLayout& layout = *layout_;
  LatencyTimer timer(metrics_.scrub_latency_ns);
  metrics_.scrubs->inc();
  obs::Span span(obs::TraceLog::global(), "scrub", {{"stripes", stripes_}});
  ScrubReport report;
  report.stripes_checked = stripes_;
  std::mutex bad_mu;
  pool_.parallel_for_chunked(
      static_cast<size_t>(stripes_), [&](size_t begin, size_t end) {
        Stripe s(layout, element_size_);
        for (size_t st = begin; st < end; ++st) {
          for (int c = 0; c < layout.cols(); ++c) {
            for (int r = 0; r < layout.rows(); ++r) {
              read_element(c, static_cast<int64_t>(st), r, s.at(r, c));
            }
          }
          Stripe re = s.clone();
          codes::encode_stripe(re);
          if (!re.equals(s)) {
            std::lock_guard<std::mutex> lock(bad_mu);
            report.inconsistent_stripes.push_back(static_cast<int64_t>(st));
          }
        }
      });
  std::sort(report.inconsistent_stripes.begin(),
            report.inconsistent_stripes.end());
  metrics_.scrub_stripes_checked->inc(stripes_);
  metrics_.scrub_stripes_inconsistent->inc(
      static_cast<int64_t>(report.inconsistent_stripes.size()));
  if (!report.inconsistent_stripes.empty()) {
    span.note("scrub.inconsistent",
              {{"count",
                static_cast<int64_t>(report.inconsistent_stripes.size())}});
  }
  return report;
}

std::vector<int64_t> Raid6Array::per_disk_element_accesses() const {
  std::vector<int64_t> out;
  out.reserve(disks_.size());
  for (const auto& d : disks_) out.push_back(d->reads() + d->writes());
  return out;
}

void Raid6Array::publish_disk_metrics(obs::Registry& registry) const {
  for (const auto& d : disks_) {
    obs::Labels l = {{"disk", std::to_string(d->id())}};
    registry.gauge("raid.disk.reads", l).set(d->reads());
    registry.gauge("raid.disk.writes", l).set(d->writes());
    registry.gauge("raid.disk.bytes_read", l).set(d->bytes_read());
    registry.gauge("raid.disk.bytes_written", l).set(d->bytes_written());
    registry.gauge("raid.disk.failed", l).set(d->failed() ? 1 : 0);
  }
}

}  // namespace dcode::raid

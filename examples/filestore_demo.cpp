// Filestore demo: a miniature object store on a D-Code RAID-6 array —
// the "cloud storage" scenario that motivates the paper's read-only
// workload class.
//
// A flat allocator places variable-size objects in the array's logical
// byte space; a tiny in-memory catalog maps names to extents. The demo
// stores a batch of objects, serves reads while injecting disk failures
// mid-flight, repairs, and proves every object back intact.
//
//   $ ./examples/filestore_demo
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "codes/registry.h"
#include "raid/raid6_array.h"
#include "util/rng.h"

using namespace dcode;

namespace {

// A minimal append-only object store over the array's byte space.
class FileStore {
 public:
  explicit FileStore(raid::Raid6Array& array) : array_(&array) {}

  bool put(const std::string& name, std::span<const uint8_t> bytes) {
    if (next_ + static_cast<int64_t>(bytes.size()) > array_->capacity())
      return false;
    array_->write(next_, bytes);
    catalog_[name] = Extent{next_, static_cast<int64_t>(bytes.size())};
    next_ += static_cast<int64_t>(bytes.size());
    return true;
  }

  std::vector<uint8_t> get(const std::string& name) {
    auto it = catalog_.find(name);
    if (it == catalog_.end()) return {};
    std::vector<uint8_t> out(static_cast<size_t>(it->second.size));
    array_->read(it->second.offset, out);
    return out;
  }

  size_t count() const { return catalog_.size(); }
  int64_t bytes_used() const { return next_; }

 private:
  struct Extent {
    int64_t offset;
    int64_t size;
  };
  raid::Raid6Array* array_;
  std::map<std::string, Extent> catalog_;
  int64_t next_ = 0;
};

}  // namespace

int main() {
  raid::Raid6Array array(codes::make_layout("dcode", 11),
                         /*element_size=*/4096, /*stripes=*/48,
                         /*threads=*/4);
  FileStore store(array);
  Pcg32 rng(7);

  // Ingest a batch of objects with skewed sizes (mostly small, some big —
  // a cloud-object-store-like distribution).
  std::map<std::string, std::vector<uint8_t>> shadow;
  for (int i = 0; i < 64; ++i) {
    size_t size = 1 + rng.next_below(4096);
    if (rng.next_below(8) == 0) size *= 37;  // occasional large object
    std::vector<uint8_t> bytes(size);
    rng.fill_bytes(bytes.data(), bytes.size());
    std::string name = "obj-" + std::to_string(i);
    if (!store.put(name, bytes)) break;
    shadow[name] = std::move(bytes);
  }
  std::printf("stored %zu objects, %lld bytes (of %lld usable)\n",
              store.count(), static_cast<long long>(store.bytes_used()),
              static_cast<long long>(array.capacity()));

  auto verify_all = [&](const char* phase) {
    size_t bad = 0;
    for (const auto& [name, bytes] : shadow) {
      if (store.get(name) != bytes) ++bad;
    }
    std::printf("%-28s %zu/%zu objects intact\n", phase,
                shadow.size() - bad, shadow.size());
    return bad == 0;
  };

  bool ok = verify_all("healthy:");

  array.fail_disk(3);
  ok &= verify_all("one disk down:");

  // Keep writing while degraded (stripe-rewrite path).
  std::vector<uint8_t> extra(9000);
  rng.fill_bytes(extra.data(), extra.size());
  store.put("written-degraded", extra);
  shadow["written-degraded"] = extra;
  ok &= verify_all("after degraded write:");

  array.fail_disk(8);
  ok &= verify_all("two disks down:");

  array.replace_disk(3);
  array.replace_disk(8);
  array.rebuild();
  ok &= verify_all("after rebuild:");
  std::printf("scrub: %lld inconsistent stripes\n",
              static_cast<long long>(array.scrub()));

  std::printf(ok ? "filestore survived a double disk failure intact\n"
                 : "DATA LOSS DETECTED\n");
  return ok ? 0 : 1;
}

// Layout explorer: prints the stripe geometry of any code, the D-Code
// labeling of the paper's Figure 2, and the I/O footprints of the
// paper's Figure 1 (degraded read and partial stripe write in RDP and
// X-Code vs D-Code).
//
//   $ ./examples/layout_explorer                 # overview of all codes, p=7
//   $ ./examples/layout_explorer grid dcode 7    # parity map of one code
//   $ ./examples/layout_explorer labels 7        # Figure 2: D-Code labels
//   $ ./examples/layout_explorer footprints 7    # Figure 1: I/O footprints
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "codes/dcode.h"
#include "codes/registry.h"
#include "raid/planner.h"

using namespace dcode;
using codes::Element;

namespace {

void print_grid(const codes::CodeLayout& l) {
  std::printf("%s: %d rows x %d disks, %d data + %d parity elements\n",
              l.name().c_str(), l.rows(), l.cols(), l.data_count(),
              l.parity_count());
  for (int r = 0; r < l.rows(); ++r) {
    for (int c = 0; c < l.cols(); ++c) {
      char ch = '.';
      if (l.kind(r, c) == codes::ElementKind::kParityP) ch = 'P';
      if (l.kind(r, c) == codes::ElementKind::kParityQ) ch = 'Q';
      std::printf(" %c", ch);
    }
    std::printf("\n");
  }
  std::printf("  (. = data, P = first parity family, Q = second)\n\n");
}

// Figure 2: the paper's number/letter labeling of D-Code groups.
void print_labels(int n) {
  auto hgroups = codes::DCodeLayout::horizontal_groups(n);
  auto dgroups = codes::DCodeLayout::deployment_groups(n);

  std::map<Element, int> hlabel, dlabel;
  for (int g = 0; g < n; ++g) {
    for (const Element& e : hgroups[static_cast<size_t>(g)]) hlabel[e] = g;
    for (const Element& e : dgroups[static_cast<size_t>(g)]) dlabel[e] = g;
  }

  std::printf("D-Code n=%d horizontal labels (paper Figure 2a):\n", n);
  for (int r = 0; r <= n - 3; ++r) {
    for (int c = 0; c < n; ++c)
      std::printf(" %2d", hlabel[codes::make_element(r, c)]);
    std::printf("\n");
  }
  std::printf("  parity row:");
  for (int c = 0; c < n; ++c) {
    // Which group stores its parity at column c?
    int group = -1;
    for (int g = 0; g < n; ++g) {
      if (codes::DCodeLayout::horizontal_parity_col(n, g) == c) group = g;
    }
    std::printf(" %2d", group);
  }
  std::printf("\n\n");

  std::printf("D-Code n=%d deployment labels (paper Figure 2b, A=0):\n", n);
  for (int r = 0; r <= n - 3; ++r) {
    for (int c = 0; c < n; ++c)
      std::printf("  %c", 'A' + dlabel[codes::make_element(r, c)]);
    std::printf("\n");
  }
  std::printf("  parity row:");
  for (int c = 0; c < n; ++c) {
    int group = -1;
    for (int g = 0; g < n; ++g) {
      if (codes::DCodeLayout::deployment_parity_col(n, g) == c) group = g;
    }
    std::printf("  %c", 'A' + group);
  }
  std::printf("\n\n");
}

// Figure 1: mark requested elements '*' and extra accesses 'o'.
void print_footprint(const codes::CodeLayout& l, const raid::IoPlan& plan,
                     const std::set<Element>& requested, const char* title) {
  std::printf("%s (%s): %lld element accesses total\n", title,
              l.name().c_str(), static_cast<long long>(plan.total()));
  std::set<Element> touched;
  for (const auto& a : plan.accesses) {
    if (a.stripe == 0) touched.insert(a.element);
  }
  for (int r = 0; r < l.rows(); ++r) {
    for (int c = 0; c < l.cols(); ++c) {
      Element e = codes::make_element(r, c);
      char ch = l.is_parity(r, c) ? '-' : '.';
      if (touched.count(e)) ch = 'o';
      if (requested.count(e)) ch = '*';
      std::printf(" %c", ch);
    }
    std::printf("\n");
  }
  std::printf("  (* = requested, o = extra read/write, . data, - parity)\n\n");
}

void footprints(int p) {
  std::printf("== Paper Figure 1: why D-Code wins on partial writes and "
              "degraded reads (p=%d) ==\n\n", p);
  for (const char* name : {"rdp", "xcode", "dcode"}) {
    auto l = codes::make_layout(name, p);
    raid::AddressMap map(*l);
    raid::IoPlanner planner(map);

    // Degraded read of 4 continuous elements crossing the failed disk.
    const int failed = 2;
    int fd[1] = {failed};
    int64_t start = 1;  // row 0, col 1.. — crosses column 2
    auto dplan = planner.plan_degraded_read(start, 4, fd);
    std::set<Element> req;
    for (int64_t g = start; g < start + 4; ++g)
      req.insert(l->data_element(static_cast<int>(g)));
    std::printf("disk %d failed; ", failed);
    print_footprint(*l, dplan, req, "degraded read of 4 elements");

    // Partial stripe write of 4 continuous elements.
    auto wplan = planner.plan_write(start, 4);
    print_footprint(*l, wplan, req, "partial stripe write of 4 elements");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    for (const auto& name : codes::all_code_names()) {
      print_grid(*codes::make_layout(name, 7));
    }
    std::printf("also try: grid <code> <p> | labels <n> | footprints <p>\n");
    return 0;
  }
  if (args[0] == "grid" && args.size() == 3) {
    print_grid(*codes::make_layout(args[1], std::stoi(args[2])));
    return 0;
  }
  if (args[0] == "labels") {
    print_labels(args.size() > 1 ? std::stoi(args[1]) : 7);
    return 0;
  }
  if (args[0] == "footprints") {
    footprints(args.size() > 1 ? std::stoi(args[1]) : 7);
    return 0;
  }
  std::fprintf(stderr,
               "usage: layout_explorer [grid <code> <p> | labels <n> | "
               "footprints <p>]\n");
  return 2;
}

// verify_code: exhaustive fault-tolerance verification from the command
// line — the oracle that validated every construction in this library,
// packaged for users who modify a layout or add their own.
//
//   $ ./examples/verify_code dcode 17          # all failure pairs
//   $ ./examples/verify_code star 11 --triples # all failure triples
//   $ ./examples/verify_code all 13            # every registered code
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "codes/decoder.h"
#include "codes/encoder.h"
#include "codes/registry.h"
#include "util/rng.h"

using namespace dcode;
using namespace dcode::codes;

namespace {

// Exhaustively erase every t-subset of disks and demand byte-perfect
// recovery. Returns the number of failing subsets.
int verify(const CodeLayout& layout, int t) {
  Pcg32 rng(0xC0DE);
  Stripe good(layout, 32);
  good.randomize_data(rng);
  encode_stripe(good);

  std::vector<int> subset(static_cast<size_t>(t));
  int failures = 0;
  int checked = 0;

  // Iterate t-subsets of [0, cols).
  for (int i = 0; i < t; ++i) subset[static_cast<size_t>(i)] = i;
  for (;;) {
    Stripe broken = good.clone();
    for (int d : subset) broken.erase_disk(d);
    auto lost = elements_of_disks(layout, subset);
    auto res = hybrid_decode(broken, lost);
    ++checked;
    if (!res.success || !broken.equals(good)) {
      ++failures;
      std::printf("  FAIL disks {");
      for (int d : subset) std::printf(" %d", d);
      std::printf(" }\n");
    }
    // Next subset.
    int i = t - 1;
    while (i >= 0 &&
           subset[static_cast<size_t>(i)] == layout.cols() - t + i) {
      --i;
    }
    if (i < 0) break;
    ++subset[static_cast<size_t>(i)];
    for (int j = i + 1; j < t; ++j) {
      subset[static_cast<size_t>(j)] = subset[static_cast<size_t>(j - 1)] + 1;
    }
  }
  std::printf("%-11s p=%-3d t=%d: %d subsets checked, %d failures%s\n",
              layout.name().c_str(), layout.prime(), t, checked, failures,
              failures == 0 ? " — fault tolerance verified" : "");
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <code|all> <prime> [--triples]\n"
                 "codes: dcode xcode rdp evenodd hcode hdp pcode liberation "
                 "star\n",
                 argv[0]);
    return 2;
  }
  std::string code = argv[1];
  int p = std::atoi(argv[2]);
  bool triples = argc > 3 && std::strcmp(argv[3], "--triples") == 0;

  int failures = 0;
  try {
    std::vector<std::string> names =
        code == "all" ? all_code_names() : std::vector<std::string>{code};
    for (const auto& name : names) {
      auto layout = make_layout(name, p);
      int t = triples ? 3 : std::min(2, layout->fault_tolerance());
      if (t > layout->fault_tolerance()) {
        std::printf("%-11s tolerates only %d failures; skipping t=%d\n",
                    name.c_str(), layout->fault_tolerance(), t);
        continue;
      }
      failures += verify(*layout, t);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "verify_code: %s\n", e.what());
    return 2;
  }
  return failures == 0 ? 0 : 1;
}

// Recovery walkthrough: reproduces the paper's Figure 3 — D-Code's
// double-disk-failure recovery chains, step by step, for any prime and
// failure pair.
//
//   $ ./examples/recovery_walkthrough           # the paper's n=7, disks 2+3
//   $ ./examples/recovery_walkthrough 11 4 9    # any prime / pair
#include <cstdio>
#include <cstdlib>

#include "codes/dcode.h"
#include "codes/dcode_decoder.h"
#include "codes/encoder.h"
#include "util/rng.h"

using namespace dcode;

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 7;
  int f1 = argc > 2 ? std::atoi(argv[2]) : 2;
  int f2 = argc > 3 ? std::atoi(argv[3]) : 3;

  codes::DCodeLayout layout(n);
  Pcg32 rng(42);
  codes::Stripe stripe(layout, 16);
  stripe.randomize_data(rng);
  codes::encode_stripe(stripe);

  codes::Stripe broken = stripe.clone();
  broken.erase_disk(f1);
  broken.erase_disk(f2);

  std::printf("D-Code n=%d, disks %d and %d failed: %d elements lost\n\n",
              n, f1, f2, 2 * n);
  auto res = codes::dcode_decode_two_disks(broken, f1, f2);
  if (!res.success) {
    std::printf("UNRECOVERABLE (should never happen for two disks)\n");
    return 1;
  }

  std::printf("recovery sequence (the paper's chain order — each recovered "
              "element's other\nequation unlocks the next link):\n");
  int step = 1;
  for (const auto& s : res.sequence) {
    const auto& q = layout.equations()[static_cast<size_t>(s.equation)];
    const bool horizontal = s.equation < n;
    const bool is_parity = layout.is_parity(s.recovered.row, s.recovered.col);
    std::printf("  %2d. %s[%d][%d] via the %s equation of P[%d][%d]%s\n",
                step++, is_parity ? "P" : "D", s.recovered.row,
                s.recovered.col, horizontal ? "horizontal" : "deployment",
                q.parity.row, q.parity.col,
                s.recovered == q.parity ? " (direct recompute)" : "");
  }

  std::printf("\nverification: %s; %zu XOR element-operations "
              "(= 2n(n-3) = %d, the optimal decode cost)\n",
              broken.equals(stripe) ? "all bytes match the original"
                                    : "MISMATCH",
              res.xor_ops, 2 * n * (n - 3));
  return broken.equals(stripe) ? 0 : 1;
}

// raidsim: the command-line front end to the I/O-load simulator — run any
// code / prime / workload (synthetic or trace file) and get per-disk
// loads, the load-balancing factor, total I/O cost, and modeled read
// speeds, as a table or CSV.
//
//   $ ./examples/raidsim --code dcode --p 13 --workload mixed
//   $ ./examples/raidsim --code rdp --p 7 --workload read-intensive --rotate
//   $ ./examples/raidsim --code dcode --p 11 --trace ops.trace --failed 3
//   $ ./examples/raidsim --code xcode --p 13 --workload mixed --gen-trace ops.trace
//   $ ./examples/raidsim --compare --p 13 --workload mixed --csv
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "codes/registry.h"
#include "codes/shortened.h"
#include "raid/planner.h"
#include "sim/experiments.h"
#include "sim/trace.h"
#include "util/table.h"

using namespace dcode;

namespace {

struct Options {
  std::string code = "dcode";
  int p = 7;
  int disks = 0;  // 0 = use p directly; otherwise shorten to this count
  std::string workload = "mixed";
  std::string trace;
  std::string gen_trace;
  int ops = 2000;
  uint64_t seed = 42;
  bool rotate = false;
  bool csv = false;
  bool compare = false;
  bool speed = false;
  std::optional<int> failed;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --code NAME        dcode|xcode|rdp|evenodd|hcode|hdp|pcode\n"
      "  --p P              prime parameter (default 7)\n"
      "  --disks N          shorten to exactly N disks (horizontal codes)\n"
      "  --workload KIND    read-only|read-intensive|mixed (default mixed)\n"
      "  --trace FILE       replay a trace instead of a synthetic workload\n"
      "  --gen-trace FILE   write the synthetic workload out as a trace\n"
      "  --ops N            synthetic operation count (default 2000)\n"
      "  --seed S           RNG seed (default 42)\n"
      "  --rotate           rotate logical->physical disks per stripe\n"
      "  --failed D         run reads degraded with disk D failed\n"
      "  --speed            also report modeled read speeds (Fig. 6/7)\n"
      "  --compare          run all five paper codes side by side\n"
      "  --csv              CSV output\n",
      argv0);
  std::exit(2);
}

sim::WorkloadKind parse_kind(const std::string& s, const char* argv0) {
  if (s == "read-only") return sim::WorkloadKind::kReadOnly;
  if (s == "read-intensive") return sim::WorkloadKind::kReadIntensive;
  if (s == "mixed") return sim::WorkloadKind::kMixed;
  usage(argv0);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--code") {
      o.code = next();
    } else if (a == "--p") {
      o.p = std::stoi(next());
    } else if (a == "--disks") {
      o.disks = std::stoi(next());
    } else if (a == "--workload") {
      o.workload = next();
    } else if (a == "--trace") {
      o.trace = next();
    } else if (a == "--gen-trace") {
      o.gen_trace = next();
    } else if (a == "--ops") {
      o.ops = std::stoi(next());
    } else if (a == "--seed") {
      o.seed = std::stoull(next());
    } else if (a == "--rotate") {
      o.rotate = true;
    } else if (a == "--failed") {
      o.failed = std::stoi(next());
    } else if (a == "--speed") {
      o.speed = true;
    } else if (a == "--compare") {
      o.compare = true;
    } else if (a == "--csv") {
      o.csv = true;
    } else {
      usage(argv[0]);
    }
  }
  return o;
}

struct RunResult {
  sim::IoStats stats;
  double lf;
  int64_t cost;
};

RunResult run_one(const codes::CodeLayout& layout, const Options& o,
                  const std::vector<sim::Op>& ops) {
  raid::AddressMap map(layout, o.rotate);
  raid::IoPlanner planner(map);
  sim::IoStats stats(layout.cols());
  std::vector<int> failed;
  if (o.failed) failed.push_back(*o.failed);
  for (const sim::Op& op : ops) {
    raid::IoPlan plan;
    if (op.is_write) {
      plan = planner.plan_write(op.start, op.len);
    } else if (!failed.empty()) {
      plan = planner.plan_degraded_read(op.start, op.len, failed);
    } else {
      plan = planner.plan_read(op.start, op.len);
    }
    stats.accumulate(plan, op.times);
  }
  return RunResult{stats, stats.load_balancing_factor(), stats.total()};
}

std::vector<sim::Op> make_ops(const codes::CodeLayout& layout,
                              const Options& o, const char* argv0) {
  if (!o.trace.empty()) return sim::load_trace_file(o.trace);
  sim::WorkloadParams params;
  params.operations = o.ops;
  params.start_space = layout.data_count();
  params.seed = o.seed;
  auto ops = sim::generate_workload(parse_kind(o.workload, argv0), params);
  if (!o.gen_trace.empty()) sim::save_trace_file(ops, o.gen_trace);
  return ops;
}

std::unique_ptr<codes::CodeLayout> build_layout(const Options& o) {
  if (o.disks > 0) return codes::make_shortened_layout(o.code, o.disks);
  return codes::make_layout(o.code, o.p);
}

}  // namespace

int main(int argc, char** argv) {
  Options o = parse(argc, argv);
  try {
    std::vector<std::string> code_list =
        o.compare ? codes::paper_comparison_codes()
                  : std::vector<std::string>{o.code};

    TablePrinter table({"code", "disks", "LF", "total-cost", "Lmax", "Lmin"});
    for (const auto& name : code_list) {
      Options oc = o;
      oc.code = name;
      auto layout = build_layout(oc);
      auto ops = make_ops(*layout, oc, argv[0]);
      auto res = run_one(*layout, oc, ops);
      std::string lf_str =
          std::isinf(res.lf) ? std::string("inf") : format_double(res.lf, 3);
      table.add_row({name, std::to_string(layout->cols()), lf_str,
                     std::to_string(res.cost),
                     std::to_string(res.stats.max_load()),
                     std::to_string(res.stats.min_load())});
    }
    if (o.csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }

    if (!o.compare && code_list.size() == 1) {
      auto layout = build_layout(o);
      auto ops = make_ops(*layout, o, argv[0]);
      auto res = run_one(*layout, o, ops);
      std::cout << "\nper-disk accesses:";
      for (int d = 0; d < res.stats.disks(); ++d) {
        std::cout << " d" << d << "=" << res.stats.accesses(d);
      }
      std::cout << "\n";
    }

    if (o.speed) {
      sim::DiskModelParams params;
      std::cout << "\nmodeled read speeds (MB/s):\n";
      TablePrinter sp({"code", "normal", "normal/disk", "degraded",
                       "degraded/disk"});
      for (const auto& name : code_list) {
        Options oc = o;
        oc.code = name;
        auto layout = build_layout(oc);
        auto n = sim::run_normal_read_experiment(*layout, o.seed, params,
                                                 o.ops);
        auto d = sim::run_degraded_read_experiment(*layout, o.seed, params,
                                                   std::max(1, o.ops / 10));
        sp.add_numeric_row(name, {n.read_mb_s, n.avg_mb_s_disk, d.read_mb_s,
                                  d.avg_mb_s_disk});
      }
      if (o.csv) {
        sp.print_csv(std::cout);
      } else {
        sp.print(std::cout);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "raidsim: %s\n", e.what());
    return 1;
  }
  return 0;
}

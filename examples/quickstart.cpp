// Quickstart: the 60-second tour of the library.
//
// Builds a 7-disk D-Code RAID-6 array over in-memory disks, writes a
// payload, kills two disks, reads the data back degraded, swaps in blank
// disks, rebuilds, and scrubs. Everything here is the public API a
// storage system would use.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <iostream>
#include <vector>

#include "codes/registry.h"
#include "obs/metrics.h"
#include "raid/raid6_array.h"
#include "util/rng.h"

int main() {
  using namespace dcode;

  // A RAID-6 array: D-Code over 7 disks (n must be prime), 4 KiB
  // elements, 64 stripes, parallel rebuild on 4 threads.
  raid::Raid6Array array(codes::make_layout("dcode", 7),
                         /*element_size=*/4096, /*stripes=*/64,
                         /*threads=*/4);
  std::printf("array: %s over %d disks, %lld stripes, %lld bytes usable\n",
              array.layout().name().c_str(), array.layout().cols(),
              static_cast<long long>(array.stripes()),
              static_cast<long long>(array.capacity()));

  // Write a random payload across the whole logical space.
  Pcg32 rng(2026);
  std::vector<uint8_t> payload(static_cast<size_t>(array.capacity()));
  rng.fill_bytes(payload.data(), payload.size());
  array.write(0, payload);
  std::printf("wrote %zu bytes; scrub reports %lld inconsistent stripes\n",
              payload.size(), static_cast<long long>(array.scrub()));

  // Kill two disks — the worst case RAID-6 tolerates.
  array.fail_disk(2);
  array.fail_disk(5);
  std::printf("disks 2 and 5 failed (%d down)\n", array.failed_disk_count());

  // Degraded read: the array reconstructs lost elements on the fly.
  std::vector<uint8_t> out(payload.size());
  array.read(0, out);
  std::printf("degraded read of the full array: %s\n",
              out == payload ? "all bytes intact" : "DATA LOSS");

  // Replace both disks with blanks and rebuild (D-Code uses its chain
  // decoder, stripes in parallel).
  array.replace_disk(2);
  array.replace_disk(5);
  array.rebuild();
  std::printf("rebuilt; scrub reports %lld inconsistent stripes\n",
              static_cast<long long>(array.scrub()));

  array.read(0, out);
  std::printf("post-rebuild read: %s\n",
              out == payload ? "all bytes intact" : "DATA LOSS");

  // Per-disk I/O accounting comes for free.
  std::printf("disk I/O (reads/writes): ");
  for (int d = 0; d < array.layout().cols(); ++d) {
    std::printf("d%d=%lld/%lld ", d,
                static_cast<long long>(array.disk(d).reads()),
                static_cast<long long>(array.disk(d).writes()));
  }
  std::printf("\n");

  // Everything above was also metered: the array counts operations,
  // bytes, element-granular per-disk accesses, and latency histograms
  // in obs::Registry::global() (pass a registry to the constructor to
  // use a private one). publish_disk_metrics() snapshots the per-disk
  // element counters and backend-labeled device op counts into labeled
  // gauges; write_json()/write_prometheus() are the machine-readable
  // siblings of the text table.
  array.publish_disk_metrics(array.metrics_registry());
  std::printf("\nruntime metrics:\n");
  array.metrics_registry().write_text(std::cout);
  return out == payload ? 0 : 1;
}

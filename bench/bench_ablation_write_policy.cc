// Ablation: partial-stripe write cost vs run length for the three write
// policies (RMW, RCW, auto) — the design choice behind the planner's
// per-stripe policy switch.
//
// Expected shape: RMW wins for short runs (few parities), RCW wins as the
// run approaches a full stripe (reads shrink to zero), auto tracks the
// lower envelope — and the D-Code/X-Code gap widens with run length on
// the RMW side (that is Figure 5's mechanism at single-op granularity).
#include <iostream>

#include "bench_common.h"
#include "raid/planner.h"

using namespace dcode;
using namespace dcode::bench;

int main(int argc, char** argv) {
  Telemetry telemetry("bench_ablation_write_policy", argc, argv);
  print_header("Ablation: write policy (accesses per partial write, p=13)",
               "L = run length in consecutive logical elements starting at "
               "element 0.");

  for (const char* name : {"dcode", "xcode", "rdp"}) {
    auto layout = codes::make_layout(name, 13);
    raid::AddressMap map(*layout);
    raid::IoPlanner planner(map);
    std::cout << "-- " << name << " --\n";
    TablePrinter table({"L", "rmw", "rcw", "auto"});
    for (int len : {1, 2, 4, 8, 11, 16, 32, 64, 110, 143}) {
      if (len > layout->data_count()) continue;
      auto rmw = planner.plan_write(0, len,
                                    raid::WritePolicy::kReadModifyWrite);
      auto rcw = planner.plan_write(0, len,
                                    raid::WritePolicy::kReconstructWrite);
      auto aut = planner.plan_write(0, len);
      obs::Labels cell = {{"code", name},
                          {"p", "13"},
                          {"run_length", std::to_string(len)}};
      telemetry.add("write_accesses_rmw", static_cast<double>(rmw.total()),
                    cell);
      telemetry.add("write_accesses_rcw", static_cast<double>(rcw.total()),
                    cell);
      telemetry.add("write_accesses_auto", static_cast<double>(aut.total()),
                    cell);
      table.add_row({std::to_string(len), std::to_string(rmw.total()),
                     std::to_string(rcw.total()),
                     std::to_string(aut.total())});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Check: auto == min(rmw, rcw) at every L; the rmw column is "
               "where dcode's shared horizontal parities beat xcode.\n";
  telemetry.finish();
  return 0;
}

// Figure 7: degraded-mode read speed (a) and per-disk average (b).
// For every disk hosting data, 200 random reads of 1..20 elements are
// planned with that disk failed; lost elements are reconstructed through
// the planner's minimal-extra-read equation choices.
//
// Paper result being reproduced: D-Code 11.6%..26.0% faster than X-Code
// (its horizontal parities let consecutive lost elements share recovery
// reads); RDP and H-Code slightly faster than D-Code (2.3..4.9% /
// 4.1..9.6% — one more disk, and the horizontal parity disk helps
// degraded reads); HDP below D-Code in read speed.
#include "bench_common.h"
#include "sim/experiments.h"

using namespace dcode;
using namespace dcode::bench;

int main(int argc, char** argv) {
  Telemetry telemetry("bench_fig7_degraded_read", argc, argv);
  sim::DiskModelParams params;
  print_header(
      "Figure 7: degraded read speed (modeled 10k-RPM SAS disks)",
      "200 random reads per failure case, every data-hosting disk failed "
      "in turn; L in [1,20].");

  std::cout << "-- Figure 7(a): degraded read speed (MB/s) --\n";
  TablePrinter speed({"code", "p=5", "p=7", "p=11", "p=13"});
  for (const auto& name : codes::paper_comparison_codes()) {
    std::vector<double> row;
    for (int p : paper_primes()) {
      auto layout = codes::make_layout(name, p);
      double mb_s =
          sim::run_degraded_read_experiment(*layout, 0xF170000 + p, params)
              .read_mb_s;
      row.push_back(mb_s);
      telemetry.add("read_mb_s", mb_s,
                    {{"code", name},
                     {"p", std::to_string(p)},
                     {"mode", "degraded"}});
    }
    speed.add_numeric_row(name, row, 1);
  }
  speed.print(std::cout);

  std::cout << "\n-- Figure 7(b): average degraded read speed per disk "
               "(MB/s) --\n";
  TablePrinter avg({"code", "p=5", "p=7", "p=11", "p=13"});
  for (const auto& name : codes::paper_comparison_codes()) {
    std::vector<double> row;
    for (int p : paper_primes()) {
      auto layout = codes::make_layout(name, p);
      double mb_s =
          sim::run_degraded_read_experiment(*layout, 0xF170000 + p, params)
              .avg_mb_s_disk;
      row.push_back(mb_s);
      telemetry.add("avg_mb_s_disk", mb_s,
                    {{"code", name},
                     {"p", std::to_string(p)},
                     {"mode", "degraded"}});
    }
    avg.add_numeric_row(name, row, 2);
  }
  avg.print(std::cout);

  std::cout << "\nPaper shape check: dcode well above xcode; rdp/hcode "
               "slightly above dcode; hdp in between; xcode lowest.\n";
  telemetry.finish();
  return 0;
}

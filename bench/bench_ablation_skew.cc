// Ablation: hot-spot (skewed) workloads. The paper draws starts uniformly
// within the stripe; real workloads concentrate on hot data. Skewing the
// start distribution concentrates I/O on a few columns — parity
// distribution then matters even more, and the horizontal codes' LF
// degrades further while D-Code's stays near 1 (its parity *groups* are
// spread even when the data accesses are not).
#include <iostream>

#include "bench_common.h"
#include "sim/experiments.h"

using namespace dcode;
using namespace dcode::bench;

int main(int argc, char** argv) {
  Telemetry telemetry("bench_ablation_skew", argc, argv);
  print_header("Ablation: start-address skew (mixed workload, p=13)",
               "skew 1.0 = the paper's uniform draw; higher = hotter "
               "hot spot at low addresses.");

  TablePrinter table({"code", "skew=1.0", "skew=2.0", "skew=4.0",
                      "skew=8.0"});
  for (const auto& name : codes::paper_comparison_codes()) {
    auto layout = codes::make_layout(name, 13);
    std::vector<std::string> row = {name};
    for (double skew : {1.0, 2.0, 4.0, 8.0}) {
      sim::WorkloadParams params;
      params.operations = 2000;
      params.seed = 0x5EED;
      params.skew = skew;
      auto res = sim::run_load_experiment(*layout, sim::WorkloadKind::kMixed,
                                          params);
      row.push_back(format_lf(res.load_balancing_factor));
      telemetry.add("load_balancing_factor", res.load_balancing_factor,
                    {{"code", name},
                     {"p", "13"},
                     {"skew", format_double(skew, 1)}});
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nCheck: the vertical codes degrade gracefully (hot data "
               "still implies hot columns), while rdp's parity disks "
               "amplify the skew several-fold.\n";
  telemetry.finish();
  return 0;
}

// Figure 5: total I/O cost (sum of element accesses over all disks) for
// the five comparison codes under the three workloads of §IV-A.
//
// Paper result being reproduced: read-only cost is identical across
// codes; on read-intensive and mixed workloads HDP and X-Code cost much
// more than the rest (at p=13 D-Code is 16.0% / 15.3% cheaper than
// HDP / X-Code read-intensive, 23.1% / 22.2% cheaper on mixed), while RDP
// and H-Code are at most ~3.4% cheaper than D-Code (they have one more
// disk to shunt accesses to).
#include "bench_common.h"
#include "runtime_vs_sim.h"
#include "sim/experiments.h"

using namespace dcode;
using namespace dcode::bench;

int main(int argc, char** argv) {
  Telemetry telemetry("bench_fig5_io_cost", argc, argv);
  print_header("Figure 5: total I/O cost (element accesses)",
               "2000 ops per cell, L in [1,20], T in [1,1000].");

  const struct {
    sim::WorkloadKind kind;
    const char* figure;
    const char* label;
  } workloads[] = {
      {sim::WorkloadKind::kReadOnly, "Figure 5(a) read-only", "read_only"},
      {sim::WorkloadKind::kReadIntensive, "Figure 5(b) read-intensive 7:3",
       "read_intensive"},
      {sim::WorkloadKind::kMixed, "Figure 5(c) read-write mixed 1:1", "mixed"},
  };

  for (const auto& w : workloads) {
    std::cout << "-- " << w.figure << " --\n";
    TablePrinter table({"code", "p=5", "p=7", "p=11", "p=13"});
    std::vector<int64_t> dcode_cost(paper_primes().size(), 0);
    // D-Code first pass to compute relative deltas afterwards.
    for (const auto& name : codes::paper_comparison_codes()) {
      std::vector<std::string> row = {name};
      for (size_t pi = 0; pi < paper_primes().size(); ++pi) {
        int p = paper_primes()[pi];
        auto layout = codes::make_layout(name, p);
        auto res = sim::run_load_experiment(*layout, w.kind,
                                            /*seed=*/0xF150000 + p);
        if (name == "dcode") dcode_cost[pi] = res.io_cost;
        row.push_back(std::to_string(res.io_cost));
        telemetry.add("io_cost", static_cast<double>(res.io_cost),
                      {{"code", name},
                       {"p", std::to_string(p)},
                       {"workload", w.label}});
      }
      table.add_row(row);
    }
    table.print(std::cout);

    if (w.kind != sim::WorkloadKind::kReadOnly) {
      std::cout << "relative to dcode at p=13: ";
      for (const auto& name : codes::paper_comparison_codes()) {
        auto layout = codes::make_layout(name, 13);
        auto res = sim::run_load_experiment(*layout, w.kind, 0xF150000 + 13);
        double delta = 100.0 *
                       (static_cast<double>(res.io_cost) -
                        static_cast<double>(dcode_cost[3])) /
                       static_cast<double>(res.io_cost == 0 ? 1 : res.io_cost);
        std::cout << name << " " << format_double(delta, 1) << "%  ";
      }
      std::cout << "\n";
    }
    std::cout << "\n";
  }
  // Total-cost view of the same cross-check: identical <S, L, T> workload
  // through Raid6Array and the planner (ROADMAP item), read-intensive mix.
  report_runtime_vs_sim(telemetry, sim::WorkloadKind::kReadIntensive,
                        "read_intensive");

  std::cout << "Paper shape check: hdp/xcode cost the most on write-bearing "
               "workloads; dcode within a few percent of rdp/hcode.\n";
  telemetry.finish();
  return 0;
}

// Shared helpers for the figure-reproduction bench binaries.
#pragma once

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "codes/registry.h"
#include "util/table.h"

namespace dcode::bench {

// The paper's sweep (Figures 4-7): p in {5, 7, 11, 13}.
inline const std::vector<int>& paper_primes() {
  static const std::vector<int> primes = {5, 7, 11, 13};
  return primes;
}

// Figure 4 clamps infinity at 30; we print the same convention.
inline std::string format_lf(double lf) {
  if (std::isinf(lf)) return "inf(>30)";
  return format_double(lf, 2);
}

inline void print_header(const std::string& title, const std::string& note) {
  std::cout << "\n== " << title << " ==\n";
  if (!note.empty()) std::cout << note << "\n";
  std::cout << "\n";
}

}  // namespace dcode::bench

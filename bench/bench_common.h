// Shared helpers for the figure-reproduction bench binaries.
#pragma once

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "codes/registry.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "raid/file_disk.h"
#include "raid/mem_disk.h"
#include "util/table.h"

namespace dcode::bench {

// Explicit-backend device factory for runtime sections that measure both
// device backends in one process (unlike raid::default_device_factory(),
// which picks the backend from DCODE_DISK_BACKEND). File disks are
// self-cleaning temp files under $TMPDIR.
inline raid::DeviceFactory backend_device_factory(const std::string& backend) {
  if (backend == "mem") {
    return [](int id, size_t size) -> std::unique_ptr<raid::BlockDevice> {
      return std::make_unique<raid::MemDisk>(id, size);
    };
  }
  if (backend != "file") {
    std::cerr << "unknown device backend: " << backend << "\n";
    std::exit(2);
  }
  return [](int id, size_t size) -> std::unique_ptr<raid::BlockDevice> {
    static std::atomic<uint64_t> serial{0};
    const char* tmp = std::getenv("TMPDIR");
    std::string path = std::string(tmp != nullptr ? tmp : "/tmp") +
                       "/dcode-bench-" + std::to_string(::getpid()) + "-" +
                       std::to_string(id) + "-" +
                       std::to_string(serial.fetch_add(1)) + ".img";
    raid::FileDisk::Options opts;
    opts.unlink_on_close = true;
    return std::make_unique<raid::FileDisk>(id, size, std::move(path), opts);
  };
}

// The backends a runtime bench section sweeps.
inline const std::vector<std::string>& runtime_backends() {
  static const std::vector<std::string> backends = {"mem", "file"};
  return backends;
}

// Machine-readable bench output, opted into with `--json <path>`.
//
// Every bench binary keeps printing its human-readable tables; when the
// flag is present it *additionally* writes one JSON document:
//
//   {
//     "schema": "dcode.bench.telemetry",
//     "version": 1,
//     "bench": "bench_fig4_load_balancing",
//     "results": [
//       {"metric": "load_balancing_factor", "value": 1.03,
//        "labels": {"code": "dcode", "p": "7", "workload": "read_only"}},
//       ...
//     ],
//     "runtime_metrics": { ...obs::Registry::global() JSON dump... }
//   }
//
// `results` carries the numbers the bench exists to measure; the
// `runtime_metrics` snapshot records what the process actually did
// (element accesses, pool activity, ...) so a regression in the headline
// number can be cross-checked against behavior. The schema is validated
// in CI by scripts/check_bench_telemetry.py against
// scripts/bench_schema.json; bump `version` on breaking changes.
class Telemetry {
 public:
  // Parses `--json <path>` out of argv (removing both tokens) so the
  // remaining flags can be forwarded to other consumers — the
  // google-benchmark binaries hand the stripped argv to
  // benchmark::Initialize.
  Telemetry(std::string bench_name, int& argc, char** argv)
      : bench_(std::move(bench_name)) {
    for (int i = 1; i < argc; ++i) {
      if (std::string_view(argv[i]) != "--json") continue;
      if (i + 1 >= argc) {
        std::cerr << bench_ << ": --json requires a file path\n";
        std::exit(2);
      }
      path_ = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }

  bool enabled() const { return !path_.empty(); }

  // Records one measured value. Labels are free-form key/value pairs that
  // identify the cell ({code, p, workload}, ...); values are stringified
  // by the caller so "7" and "read_only" travel the same way.
  void add(std::string metric, double value, obs::Labels labels = {}) {
    if (!enabled()) return;
    rows_.push_back(Row{std::move(metric), value, std::move(labels)});
  }

  // Writes the document (no-op without --json). Call once at the end of
  // main, after the last add().
  //
  // Besides the rows the bench added explicitly, every non-empty
  // histogram in the global registry contributes interpolated hist_p50 /
  // hist_p99 rows (labelled with the histogram's name), so every bench's
  // telemetry carries tail-latency percentiles without per-bench wiring.
  void finish() const {
    if (!enabled()) return;
    std::vector<Row> rows = rows_;
    for (const auto& m : obs::Registry::global().snapshot().metrics) {
      if (m.kind != obs::MetricSnapshot::Kind::kHistogram || m.count == 0) {
        continue;
      }
      obs::Labels labels = m.labels;
      labels.emplace_back("hist", m.name);
      rows.push_back(Row{"hist_p50", m.percentile(0.50), labels});
      rows.push_back(Row{"hist_p99", m.percentile(0.99), labels});
    }
    std::ofstream out(path_);
    if (!out) {
      std::cerr << bench_ << ": cannot open " << path_ << " for writing\n";
      std::exit(2);
    }
    obs::JsonWriter w(out);
    w.begin_object();
    w.key("schema").value("dcode.bench.telemetry");
    w.key("version").value(static_cast<int64_t>(1));
    w.key("bench").value(bench_);
    w.key("results").begin_array();
    for (const auto& r : rows) {
      w.begin_object();
      w.key("metric").value(r.metric);
      w.key("value").value(r.value);
      w.key("labels").begin_object();
      for (const auto& [k, v] : r.labels) w.key(k).value(v);
      w.end_object();
      w.end_object();
    }
    w.end_array();
    std::ostringstream reg;
    obs::Registry::global().write_json(reg);
    w.key("runtime_metrics").raw(reg.str());
    w.end_object();
    out << "\n";
    std::cout << "\ntelemetry: wrote " << rows.size() << " results to "
              << path_ << "\n";
  }

 private:
  struct Row {
    std::string metric;
    double value;
    obs::Labels labels;
  };

  std::string bench_;
  std::string path_;
  std::vector<Row> rows_;
};

// The paper's sweep (Figures 4-7): p in {5, 7, 11, 13}.
inline const std::vector<int>& paper_primes() {
  static const std::vector<int> primes = {5, 7, 11, 13};
  return primes;
}

// Figure 4 clamps infinity at 30; we print the same convention.
inline std::string format_lf(double lf) {
  if (std::isinf(lf)) return "inf(>30)";
  return format_double(lf, 2);
}

inline void print_header(const std::string& title, const std::string& note) {
  std::cout << "\n== " << title << " ==\n";
  if (!note.empty()) std::cout << note << "\n";
  std::cout << "\n";
}

}  // namespace dcode::bench

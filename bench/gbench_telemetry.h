// Glue that gives the google-benchmark binaries the same `--json <path>`
// telemetry contract as the table-style benches: a ConsoleReporter
// subclass mirrors every finished run into a bench::Telemetry document,
// and run_gbench_with_telemetry() replaces BENCHMARK_MAIN().
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.h"
#include "xorops/isa.h"

namespace dcode::bench {

class TelemetryReporter : public benchmark::ConsoleReporter {
 public:
  explicit TelemetryReporter(Telemetry* telemetry) : telemetry_(telemetry) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations <= 0) continue;
      obs::Labels labels = {
          {"name", run.benchmark_name()},
          {"isa", xorops::isa_name(xorops::active_isa())}};
      telemetry_->add(
          "real_time_s_per_iter",
          run.real_accumulated_time / static_cast<double>(run.iterations),
          labels);
      auto it = run.counters.find("bytes_per_second");
      if (it != run.counters.end()) {
        telemetry_->add("bytes_per_second", static_cast<double>(it->second),
                        labels);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  Telemetry* telemetry_;
};

// Drop-in replacement for BENCHMARK_MAIN()'s body. Strips --json before
// benchmark::Initialize sees the argv, so the two flag namespaces never
// collide.
inline int run_gbench_with_telemetry(const std::string& bench_name, int argc,
                                     char** argv) {
  Telemetry telemetry(bench_name, argc, argv);
  benchmark::AddCustomContext("dcode_isa",
                              xorops::isa_name(xorops::active_isa()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  TelemetryReporter reporter(&telemetry);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  telemetry.finish();
  return 0;
}

}  // namespace dcode::bench

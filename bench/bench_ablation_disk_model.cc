// Ablation: how sensitive are the Figure 6/7 *conclusions* to the disk
// model parameters? Sweeps element size and positioning cost and reports
// the D-Code : X-Code and D-Code : RDP speed ratios. The orderings the
// paper reports should hold across the whole plausible parameter range —
// if they flipped anywhere, the reproduction would be an artifact of one
// calibration point.
#include <iostream>

#include "bench_common.h"
#include "sim/experiments.h"

using namespace dcode;
using namespace dcode::bench;

int main(int argc, char** argv) {
  Telemetry telemetry("bench_ablation_disk_model", argc, argv);
  print_header("Ablation: disk-model sensitivity (p=11, 500 ops)",
               "ratios > 1.00 mean D-Code is faster.");

  TablePrinter table({"element", "positioning-ms", "normal d/rdp",
                      "degraded d/x", "degraded rdp/d"});
  for (size_t elem_kb : {4, 16, 64, 256, 1024}) {
    for (double pos_ms : {1.0, 3.0, 6.8, 12.0}) {
      sim::DiskModelParams params;
      params.element_bytes = elem_kb * 1024;
      params.seek_ms = pos_ms;
      params.rotational_ms = 0.0;

      auto dl = codes::make_layout("dcode", 11);
      auto xl = codes::make_layout("xcode", 11);
      auto rl = codes::make_layout("rdp", 11);

      double dn = sim::run_normal_read_experiment(*dl, 7, params, 500)
                      .read_mb_s;
      double rn = sim::run_normal_read_experiment(*rl, 7, params, 500)
                      .read_mb_s;
      double dd = sim::run_degraded_read_experiment(*dl, 7, params, 50)
                      .read_mb_s;
      double xd = sim::run_degraded_read_experiment(*xl, 7, params, 50)
                      .read_mb_s;
      double rd = sim::run_degraded_read_experiment(*rl, 7, params, 50)
                      .read_mb_s;

      obs::Labels cell = {{"element_kb", std::to_string(elem_kb)},
                          {"positioning_ms", format_double(pos_ms, 1)},
                          {"p", "11"}};
      telemetry.add("speed_ratio_normal_dcode_rdp", dn / rn, cell);
      telemetry.add("speed_ratio_degraded_dcode_xcode", dd / xd, cell);
      telemetry.add("speed_ratio_degraded_rdp_dcode", rd / dd, cell);
      table.add_row({std::to_string(elem_kb) + "KiB",
                     format_double(pos_ms, 1), format_double(dn / rn, 3),
                     format_double(dd / xd, 3), format_double(rd / dd, 3)});
    }
  }
  table.print(std::cout);

  std::cout << "\nCheck: 'normal d/rdp' and 'degraded d/x' stay > 1 across "
               "the sweep — the paper's orderings are not a calibration "
               "artifact.\n";
  telemetry.finish();
  return 0;
}

// Figure 4: the load balancing factor LF = Lmax / Lmin for RDP, H-Code,
// HDP, X-Code, and D-Code over p in {5, 7, 11, 13} under the three
// workloads of §IV-A (2000 random <S, L, T> tuples, L in [1,20],
// T in [1,1000]).
//
// Paper result being reproduced: RDP badly balanced everywhere (infinite
// LF on read-only); H-Code unbalanced on read-only/read-intensive and
// medium on mixed (2.61 -> 1.97 read-intensive, 1.38 -> 1.63 mixed); HDP,
// X-Code and D-Code all close to 1 (1.03 - 1.07 on mixed).
#include "bench_common.h"
#include "runtime_vs_sim.h"
#include "sim/experiments.h"

using namespace dcode;
using namespace dcode::bench;

int main(int argc, char** argv) {
  Telemetry telemetry("bench_fig4_load_balancing", argc, argv);
  print_header("Figure 4: load balancing factor (LF = Lmax / Lmin)",
               "2000 ops per cell, L in [1,20], T in [1,1000]; LF of 1.00 is "
               "perfectly balanced; 'inf' means an idle disk (paper plots it "
               "as 30).");

  const struct {
    sim::WorkloadKind kind;
    const char* figure;
    const char* label;
  } workloads[] = {
      {sim::WorkloadKind::kReadOnly, "Figure 4(a) read-only", "read_only"},
      {sim::WorkloadKind::kReadIntensive, "Figure 4(b) read-intensive 7:3",
       "read_intensive"},
      {sim::WorkloadKind::kMixed, "Figure 4(c) read-write mixed 1:1", "mixed"},
  };

  for (const auto& w : workloads) {
    std::cout << "-- " << w.figure << " --\n";
    TablePrinter table({"code", "p=5", "p=7", "p=11", "p=13"});
    for (const auto& name : codes::paper_comparison_codes()) {
      std::vector<std::string> row = {name};
      for (int p : paper_primes()) {
        auto layout = codes::make_layout(name, p);
        auto res = sim::run_load_experiment(*layout, w.kind,
                                            /*seed=*/0xF16'4000 + p);
        row.push_back(format_lf(res.load_balancing_factor));
        telemetry.add("load_balancing_factor", res.load_balancing_factor,
                      {{"code", name},
                       {"p", std::to_string(p)},
                       {"workload", w.label}});
      }
      table.add_row(row);
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // The same LF computation validated against the live array: identical
  // <S, L, T> workload through Raid6Array and the planner (ROADMAP item).
  report_runtime_vs_sim(telemetry, sim::WorkloadKind::kMixed, "mixed");

  std::cout << "Paper shape check: rdp/hcode unbalanced, hdp/xcode/dcode "
               "close to 1 under every workload.\n";
  telemetry.finish();
  return 0;
}

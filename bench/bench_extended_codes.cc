// Extended comparison beyond the paper's five codes: every RAID-6 code in
// the library (adding EVENODD, P-Code and the liberation code) through
// the Figure 4/5 metrics, plus the 3-fault STAR code for reference.
//
// Expected placement: EVENODD behaves like RDP (dedicated parity disks —
// unbalanced, but cheap writes apart from its S-diagonal hot elements);
// P-Code balances like the verticals with write costs between D-Code and
// X-Code (its pair groups are not consecutive); liberation behaves like a
// cheaper RDP (minimum-density Q column).
#include "bench_common.h"
#include "sim/experiments.h"

using namespace dcode;
using namespace dcode::bench;

int main(int argc, char** argv) {
  Telemetry telemetry("bench_extended_codes", argc, argv);
  print_header("Extended code comparison (Figure 4/5 metrics, all codes)",
               "mixed 1:1 workload, 2000 ops; LF and total I/O cost.");

  for (int p : {7, 13}) {
    std::cout << "-- p = " << p << " --\n";
    TablePrinter table({"code", "disks", "tolerance", "LF", "io-cost"});
    for (const auto& name : codes::all_code_names()) {
      auto layout = codes::make_layout(name, p);
      auto res = sim::run_load_experiment(*layout, sim::WorkloadKind::kMixed,
                                          0xE7 + p);
      obs::Labels cell = {{"code", name},
                          {"p", std::to_string(p)},
                          {"workload", "mixed"}};
      telemetry.add("load_balancing_factor", res.load_balancing_factor,
                    cell);
      telemetry.add("io_cost", static_cast<double>(res.io_cost), cell);
      table.add_row({name, std::to_string(layout->cols()),
                     std::to_string(layout->fault_tolerance()),
                     format_lf(res.load_balancing_factor),
                     std::to_string(res.io_cost)});
    }
    table.print(std::cout);
    std::cout << "(star tolerates three failures — its higher cost buys a "
                 "different reliability class)\n\n";
  }
  telemetry.finish();
  return 0;
}

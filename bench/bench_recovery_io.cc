// §III-D "Reducing I/O Cost to Recover from Single Failures": disk reads
// needed to rebuild one failed disk, conventional (primary parity family
// only) vs minimal (per-element hybrid family choice, Xu et al. 2013).
//
// Paper claim being reproduced: D-Code inherits X-Code's ~25% read
// saving (it is a per-column reordering of X-Code, so the optimal plans
// are isomorphic — the table shows identical counts for the two).
#include <iostream>

#include "bench_common.h"
#include "raid/recovery.h"
#include "util/stats.h"

using namespace dcode;
using namespace dcode::bench;

int main(int argc, char** argv) {
  Telemetry telemetry("bench_recovery_io", argc, argv);
  print_header("Single-disk recovery I/O (reads per stripe, averaged over "
               "every failed-disk case)",
               "conventional = primary parity family only; minimal = "
               "optimal per-element family choice.");

  TablePrinter table({"code", "p", "conventional", "minimal", "saving"});
  for (const auto& name : codes::all_code_names()) {
    for (int p : paper_primes()) {
      auto layout = codes::make_layout(name, p);
      Accumulator conv, opt;
      for (int f = 0; f < layout->cols(); ++f) {
        conv.add(static_cast<double>(
            raid::plan_single_disk_recovery(
                *layout, f, raid::RecoveryStrategy::kConventional)
                .reads.size()));
        opt.add(static_cast<double>(
            raid::plan_single_disk_recovery(
                *layout, f, raid::RecoveryStrategy::kMinimalReads)
                .reads.size()));
      }
      double saving = 1.0 - opt.mean() / conv.mean();
      telemetry.add("recovery_reads_per_stripe", conv.mean(),
                    {{"code", name},
                     {"p", std::to_string(p)},
                     {"strategy", "conventional"}});
      telemetry.add("recovery_reads_per_stripe", opt.mean(),
                    {{"code", name},
                     {"p", std::to_string(p)},
                     {"strategy", "minimal_reads"}});
      telemetry.add("recovery_read_saving", saving,
                    {{"code", name}, {"p", std::to_string(p)}});
      table.add_row({name, std::to_string(p), format_double(conv.mean(), 1),
                     format_double(opt.mean(), 1),
                     format_double(100.0 * saving, 1) + "%"});
    }
  }
  table.print(std::cout);

  std::cout << "\nPaper check: dcode and xcode rows are identical "
               "(Theorem 1) and approach ~25% saving as p grows.\n";
  telemetry.finish();
  return 0;
}

// Extension experiment: I/O loads in DEGRADED mode. The paper's Figure
// 4/5 run healthy arrays; here the same mixed workload runs with one data
// disk failed (reads reconstruct through the planner's chains, writes use
// the stripe-rewrite policy), averaged over every failure case.
//
// Expected shape: degraded cost is dominated by reconstruction reads, so
// the codes whose continuous elements share parities (D-Code, RDP,
// H-Code) stay cheapest, and the LF of the horizontal codes *improves*
// (their idle parity disks finally serve reconstruction reads) while
// remaining worse than the verticals'.
#include <chrono>
#include <cstring>

#include "bench_common.h"
#include "raid/planner.h"
#include "raid/raid6_array.h"
#include "sim/io_stats.h"
#include "sim/workload.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace dcode;
using namespace dcode::bench;

namespace {

// Runtime counterpart: degraded-read throughput of a real Raid6Array
// (one data disk down, full sequential read reconstructing through the
// planner's equation chains) per device backend.
double measure_runtime_degraded_read_mb_s(const std::string& backend) {
  const size_t esize = 8 * 1024;
  const int64_t stripes = 32;
  raid::ArrayOptions opts;
  opts.device_factory = backend_device_factory(backend);
  raid::Raid6Array array(codes::make_layout("dcode", 11), esize, stripes, 0,
                         nullptr, std::move(opts));
  Pcg32 rng(0xDE64);
  std::vector<uint8_t> blob(static_cast<size_t>(array.capacity()));
  rng.fill_bytes(blob.data(), blob.size());
  array.write(0, blob);
  array.fail_disk(2);

  std::vector<uint8_t> out(blob.size());
  array.read(0, out);  // warmup
  DCODE_CHECK(out == blob, "degraded read returned wrong data");
  const int iters = 3;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) array.read(0, out);
  auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(blob.size()) * iters / secs / (1024.0 * 1024.0);
}

// Verify-on-read A/B: healthy sequential read throughput with
// ArrayOptions::verify_reads on (the default) vs off, same array shape
// and content. The difference is the per-read cost of hashing every
// element against its sidecar record — the number pinned in
// docs/robustness.md's integrity section.
double measure_runtime_read_mb_s(bool verify) {
  const size_t esize = 8 * 1024;
  const int64_t stripes = 32;
  raid::ArrayOptions opts;
  opts.verify_reads = verify;
  raid::Raid6Array array(codes::make_layout("dcode", 11), esize, stripes, 0,
                         nullptr, std::move(opts));
  Pcg32 rng(0x1F0D);
  std::vector<uint8_t> blob(static_cast<size_t>(array.capacity()));
  rng.fill_bytes(blob.data(), blob.size());
  array.write(0, blob);

  std::vector<uint8_t> out(blob.size());
  array.read(0, out);  // warmup
  DCODE_CHECK(out == blob, "healthy read returned wrong data");
  const int iters = 5;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) array.read(0, out);
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(blob.size()) * iters / secs / (1024.0 * 1024.0);
}

// Repair-mode scrub wall time: corrupt one element in each of several
// stripes through the device backdoor, then time the syndrome-localizing
// scrub pass that finds and rewrites them all.
double measure_runtime_scrub_repair_ms() {
  const size_t esize = 8 * 1024;
  const int64_t stripes = 32;
  raid::Raid6Array array(codes::make_layout("dcode", 11), esize, stripes, 0);
  const int rows = 10;  // p - 1
  Pcg32 rng(0x5C4B);
  std::vector<uint8_t> blob(static_cast<size_t>(array.capacity()));
  rng.fill_bytes(blob.data(), blob.size());
  array.write(0, blob);

  const int corruptions = 8;
  for (int i = 0; i < corruptions; ++i) {
    const int disk = i % 12;  // p + 1 columns
    const int64_t stripe = (i * 4) % stripes;
    const uint64_t off =
        (static_cast<uint64_t>(stripe) * rows + static_cast<uint64_t>(i % rows)) *
        esize;
    std::vector<uint8_t> buf(64);
    array.disk(disk).read(off, buf);
    for (auto& b : buf) b ^= 0x3C;
    array.disk(disk).write(off, buf);
  }

  const auto t0 = std::chrono::steady_clock::now();
  raid::ScrubReport rep = array.scrub_report({.repair = true});
  const auto t1 = std::chrono::steady_clock::now();
  DCODE_CHECK(rep.elements_repaired == corruptions,
              "scrub repair missed a corrupted element");
  DCODE_CHECK(array.scrub() == 0, "scrub repair did not converge");
  std::vector<uint8_t> out(blob.size());
  array.read(0, out);
  DCODE_CHECK(out == blob, "scrub repair did not restore the content");
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// Transient-burst tick: a burst of transient device errors against a full
// sequential read, absorbed entirely by the engine's backoff-retry loop
// (no escalation). Measures the latency cost of riding out the burst.
double measure_runtime_transient_burst_read_ms() {
  const size_t esize = 8 * 1024;
  const int64_t stripes = 32;
  raid::ArrayOptions opts;
  opts.transient_retry_limit = 3;
  opts.retry_backoff_base_ns = 20'000;
  raid::Raid6Array array(codes::make_layout("dcode", 11), esize, stripes, 0,
                         nullptr, std::move(opts));
  Pcg32 rng(0x7B57);
  std::vector<uint8_t> blob(static_cast<size_t>(array.capacity()));
  rng.fill_bytes(blob.data(), blob.size());
  array.write(0, blob);

  std::vector<uint8_t> out(blob.size());
  array.read(0, out);  // warmup, no faults
  array.disk(4).faults().inject_transient_errors(2);
  const auto t0 = std::chrono::steady_clock::now();
  array.read(0, out);
  const auto t1 = std::chrono::steady_clock::now();
  DCODE_CHECK(out == blob, "read through transient burst corrupted data");
  DCODE_CHECK(array.failed_disk_count() == 0,
              "a budget-sized burst must not escalate");
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  Telemetry telemetry("bench_degraded_load", argc, argv);
  print_header("Extension: degraded-mode I/O loads (mixed 1:1, p=11)",
               "one data disk failed, averaged over every failure case; "
               "500 ops per case.");

  TablePrinter table({"code", "LF-healthy", "LF-degraded", "cost-healthy",
                      "cost-degraded", "penalty"});
  for (const auto& name : codes::paper_comparison_codes()) {
    auto layout = codes::make_layout(name, 11);
    raid::AddressMap map(*layout);
    raid::IoPlanner planner(map);

    sim::WorkloadParams params;
    params.operations = 500;
    params.start_space = layout->data_count();
    params.seed = 0xDE62;
    auto ops = sim::generate_workload(sim::WorkloadKind::kMixed, params);

    // Healthy baseline.
    sim::IoStats healthy(layout->cols());
    for (const auto& op : ops) {
      auto plan = op.is_write ? planner.plan_write(op.start, op.len)
                              : planner.plan_read(op.start, op.len);
      healthy.accumulate(plan, op.times);
    }

    // Degraded, averaged over data-hosting failure cases.
    Accumulator lf_acc, cost_acc;
    for (int f = 0; f < layout->cols(); ++f) {
      if (layout->parity_elements_on_disk(f) == layout->rows()) continue;
      int fd[1] = {f};
      sim::IoStats stats(layout->cols());
      for (const auto& op : ops) {
        auto plan = op.is_write
                        ? planner.plan_degraded_write(op.start, op.len, fd)
                        : planner.plan_degraded_read(op.start, op.len, fd);
        stats.accumulate(plan, op.times);
      }
      // LF over the surviving disks only (the failed one serves nothing).
      int64_t lmax = 0, lmin = INT64_MAX;
      for (int d = 0; d < layout->cols(); ++d) {
        if (d == f) continue;
        lmax = std::max(lmax, stats.accesses(d));
        lmin = std::min(lmin, stats.accesses(d));
      }
      lf_acc.add(lmin > 0 ? static_cast<double>(lmax) /
                                static_cast<double>(lmin)
                          : 1e9);
      cost_acc.add(static_cast<double>(stats.total()));
    }

    double penalty = cost_acc.mean() / static_cast<double>(healthy.total());
    obs::Labels cell = {{"code", name}, {"p", "11"}, {"workload", "mixed"}};
    telemetry.add("load_balancing_factor_healthy",
                  healthy.load_balancing_factor(), cell);
    telemetry.add("load_balancing_factor_degraded", lf_acc.mean(), cell);
    telemetry.add("io_cost_healthy",
                  static_cast<double>(healthy.total()), cell);
    telemetry.add("io_cost_degraded", cost_acc.mean(), cell);
    telemetry.add("degraded_cost_penalty", penalty, cell);
    table.add_row({name, format_lf(healthy.load_balancing_factor()),
                   format_double(lf_acc.mean(), 2),
                   std::to_string(healthy.total()),
                   format_double(cost_acc.mean(), 0),
                   format_double(penalty, 2) + "x"});
  }
  table.print(std::cout);

  std::cout << "\nObservations: stripe-rewrite writes dominate degraded "
               "cost, so the narrower arrays (hdp) pay the smallest "
               "absolute penalty; RDP's parity disks finally serve I/O, "
               "pulling its LF down toward the verticals'.\n";

  std::cout << "\n-- Runtime: degraded sequential read throughput per "
               "device backend (dcode, p=11, disk 2 failed) --\n";
  TablePrinter rt({"backend", "MB/s"});
  for (const std::string& backend : runtime_backends()) {
    double mb_s = measure_runtime_degraded_read_mb_s(backend);
    rt.add_row({backend, format_double(mb_s, 0)});
    telemetry.add("runtime_degraded_read_mb_s", mb_s,
                  {{"code", "dcode"}, {"p", "11"}, {"backend", backend}});
  }
  rt.print(std::cout);

  std::cout << "\n-- Runtime: self-healing costs (dcode, p=11, 32 "
               "stripes) --\n";
  TablePrinter heal({"scenario", "ms"});
  const double scrub_ms = measure_runtime_scrub_repair_ms();
  heal.add_row({"scrub-repair (8 corrupt elements)",
                format_double(scrub_ms, 1)});
  telemetry.add("runtime_scrub_repair_ms", scrub_ms,
                {{"code", "dcode"}, {"p", "11"}, {"corruptions", "8"}});
  const double burst_ms = measure_runtime_transient_burst_read_ms();
  heal.add_row({"full read through transient burst",
                format_double(burst_ms, 1)});
  telemetry.add("runtime_transient_burst_read_ms", burst_ms,
                {{"code", "dcode"}, {"p", "11"}, {"burst", "2"}});
  heal.print(std::cout);

  std::cout << "\n-- Runtime: verify-on-read overhead (dcode, p=11, "
               "healthy sequential read) --\n";
  const double off_mb_s = measure_runtime_read_mb_s(false);
  const double on_mb_s = measure_runtime_read_mb_s(true);
  const double overhead_pct = (off_mb_s / on_mb_s - 1.0) * 100.0;
  TablePrinter vr({"verify-on-read", "MB/s"});
  vr.add_row({"off", format_double(off_mb_s, 0)});
  vr.add_row({"on", format_double(on_mb_s, 0)});
  vr.print(std::cout);
  std::cout << "overhead: " << format_double(overhead_pct, 1) << "%\n";
  const obs::Labels vcell = {{"code", "dcode"}, {"p", "11"}};
  telemetry.add("runtime_read_mb_s_verify_off", off_mb_s, vcell);
  telemetry.add("runtime_read_mb_s_verify_on", on_mb_s, vcell);
  telemetry.add("verify_on_read_overhead_pct", overhead_pct, vcell);

  telemetry.finish();
  return 0;
}

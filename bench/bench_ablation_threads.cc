// Ablation: thread scaling of array-wide operations (stripe-parallel
// rebuild and scrub on the byte-level Raid6Array). Stripes are
// independent, so rebuild should scale until memory bandwidth saturates.
#include <benchmark/benchmark.h>

#include "gbench_telemetry.h"

#include <vector>

#include "codes/registry.h"
#include "raid/raid6_array.h"
#include "util/rng.h"

using namespace dcode;

namespace {

constexpr size_t kElement = 16 * 1024;
constexpr int64_t kStripes = 64;

void BM_RebuildTwoDisks(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  Pcg32 rng(1);
  std::vector<uint8_t> blob;
  for (auto _ : state) {
    state.PauseTiming();
    raid::Raid6Array array(codes::make_layout("dcode", 13), kElement,
                           kStripes, threads);
    if (blob.empty()) {
      blob.resize(static_cast<size_t>(array.capacity()));
      rng.fill_bytes(blob.data(), blob.size());
    }
    array.write(0, blob);
    array.fail_disk(2);
    array.fail_disk(9);
    array.replace_disk(2);
    array.replace_disk(9);
    state.ResumeTiming();
    array.rebuild();
    benchmark::DoNotOptimize(array.disk(2).reads());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 2 * 13 *
                          kStripes * static_cast<int64_t>(kElement));
}

void BM_Scrub(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  Pcg32 rng(2);
  raid::Raid6Array array(codes::make_layout("dcode", 13), kElement, kStripes,
                         threads);
  std::vector<uint8_t> blob(static_cast<size_t>(array.capacity()));
  rng.fill_bytes(blob.data(), blob.size());
  array.write(0, blob);
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.scrub());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 13 * 13 *
                          kStripes * static_cast<int64_t>(kElement));
}

}  // namespace

// UseRealTime: the work happens on pool threads, so CPU time of the
// driving thread is meaningless here.
BENCHMARK(BM_RebuildTwoDisks)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_Scrub)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

int main(int argc, char** argv) {
  return dcode::bench::run_gbench_with_telemetry("bench_ablation_threads", argc, argv);
}

// Ablation: stripe-by-stripe disk rotation (the RAID-5-style "global load
// balancing" strawman of §I) versus intrinsic parity distribution.
//
// Paper claim being reproduced: rotating logical-to-physical disk
// mappings stripe by stripe cannot balance accesses *within* a stripe —
// because tuples repeat T times against the same stripe, the skew
// survives rotation, so RDP/H-Code stay worse than D-Code even with
// rotation enabled.
#include <iostream>

#include "bench_common.h"
#include "sim/experiments.h"

using namespace dcode;
using namespace dcode::bench;

int main(int argc, char** argv) {
  Telemetry telemetry("bench_ablation_rotation", argc, argv);
  print_header("Ablation: stripe-by-stripe rotation vs intrinsic balance",
               "LF on the mixed (1:1) workload, p = 7 and 13; 2000 ops.");

  TablePrinter table(
      {"code", "p", "LF no-rotation", "LF rotated", "dcode LF (no rot)"});
  for (int p : {7, 13}) {
    auto dcode_layout = codes::make_layout("dcode", p);
    double dcode_lf =
        sim::run_load_experiment(*dcode_layout, sim::WorkloadKind::kMixed,
                                 0xAB10 + p)
            .load_balancing_factor;
    telemetry.add("load_balancing_factor", dcode_lf,
                  {{"code", "dcode"},
                   {"p", std::to_string(p)},
                   {"rotation", "off"}});
    for (const auto& name : {"rdp", "hcode", "xcode"}) {
      auto layout = codes::make_layout(name, p);
      auto plain = sim::run_load_experiment(
          *layout, sim::WorkloadKind::kMixed, 0xAB10 + p, /*rotate=*/false);
      auto rotated = sim::run_load_experiment(
          *layout, sim::WorkloadKind::kMixed, 0xAB10 + p, /*rotate=*/true);
      telemetry.add("load_balancing_factor",
                    plain.load_balancing_factor,
                    {{"code", name},
                     {"p", std::to_string(p)},
                     {"rotation", "off"}});
      telemetry.add("load_balancing_factor",
                    rotated.load_balancing_factor,
                    {{"code", name},
                     {"p", std::to_string(p)},
                     {"rotation", "on"}});
      table.add_row({name, std::to_string(p),
                     format_lf(plain.load_balancing_factor),
                     format_lf(rotated.load_balancing_factor),
                     format_lf(dcode_lf)});
    }
  }
  table.print(std::cout);

  std::cout << "\nPaper check: rotation narrows but does not close the gap "
               "— the rotated horizontal codes remain above D-Code's LF.\n";
  telemetry.finish();
  return 0;
}

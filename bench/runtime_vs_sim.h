// Runtime-vs-simulator cross-validation, shared by the Fig. 4 and Fig. 5
// benches: drive the same <S, L, T> workload through the live Raid6Array
// (with a private obs::Registry so global metrics stay clean) and through
// the planner-based simulator, then report the two per-disk element-access
// tallies side by side in the telemetry output.
//
// The simulator side uses WritePolicy::kReadModifyWrite — the execution
// model the byte-level array actually implements in healthy mode — so the
// two tallies must agree element-for-element; any mismatch is a real
// divergence between planner predictions and array behaviour, not policy
// noise. (The Fig. 4/5 headline numbers themselves keep kAuto.)
#pragma once

#include <cstdint>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "bench_common.h"
#include "codes/registry.h"
#include "obs/metrics.h"
#include "raid/planner.h"
#include "raid/raid6_array.h"
#include "sim/io_stats.h"
#include "sim/workload.h"
#include "util/rng.h"

namespace dcode::bench {

struct RuntimeVsSimResult {
  sim::IoStats sim_stats;      // planner tallies under the array's policy
  sim::IoStats runtime_stats;  // live per_disk_element_accesses() deltas
  int64_t mismatch_elements;   // sum over disks of |runtime - sim|
};

inline RuntimeVsSimResult run_runtime_vs_sim(const std::string& code, int p,
                                             sim::WorkloadKind kind,
                                             int operations, uint64_t seed) {
  auto layout = codes::make_layout(code, p);
  const int64_t data_count = layout->data_count();

  sim::WorkloadParams params;
  params.operations = operations;
  params.seed = seed;
  params.start_space = data_count;
  std::vector<sim::Op> ops = sim::generate_workload(kind, params);

  // Simulator side: exactly run_load_experiment's tallying, with the
  // write policy pinned to the array's.
  raid::AddressMap map(*layout);
  raid::IoPlanner planner(map);
  sim::IoStats sim_stats(layout->cols());
  for (const sim::Op& op : ops) {
    raid::IoPlan plan =
        op.is_write ? planner.plan_write(op.start, op.len,
                                         raid::WritePolicy::kReadModifyWrite)
                    : planner.plan_read(op.start, op.len);
    sim_stats.accumulate(plan, op.times);
  }

  // Runtime side: execute each op once against the live array and weight
  // the per-disk access delta by T — plans depend only on addresses, so
  // repeating the op T times would touch the same elements T times.
  constexpr size_t kElem = 64;
  const int64_t stripes =
      1 + (static_cast<int64_t>(params.max_len) + data_count - 1) / data_count;
  obs::Registry reg;
  raid::Raid6Array array(codes::make_layout(code, p), kElem, stripes,
                         /*threads=*/1, &reg);
  Pcg32 rng(seed ^ 0xA11A);
  std::vector<uint8_t> fill(static_cast<size_t>(array.capacity()));
  rng.fill_bytes(fill.data(), fill.size());
  array.write(0, fill);
  array.reset_stats();

  sim::IoStats runtime_stats(layout->cols());
  std::vector<int64_t> prev(static_cast<size_t>(layout->cols()), 0);
  std::vector<uint8_t> buf(static_cast<size_t>(params.max_len) * kElem);
  for (const sim::Op& op : ops) {
    const size_t bytes = static_cast<size_t>(op.len) * kElem;
    const int64_t off = op.start * static_cast<int64_t>(kElem);
    if (op.is_write) {
      rng.fill_bytes(buf.data(), bytes);
      array.write(off, std::span<const uint8_t>(buf.data(), bytes));
    } else {
      array.read(off, std::span<uint8_t>(buf.data(), bytes));
    }
    std::vector<int64_t> now = array.per_disk_element_accesses();
    for (int d = 0; d < layout->cols(); ++d) {
      runtime_stats.add(d, (now[static_cast<size_t>(d)] -
                            prev[static_cast<size_t>(d)]) *
                               op.times);
    }
    prev = std::move(now);
  }

  int64_t mismatch = 0;
  for (int d = 0; d < layout->cols(); ++d) {
    int64_t diff = runtime_stats.accesses(d) - sim_stats.accesses(d);
    mismatch += diff < 0 ? -diff : diff;
  }
  return RuntimeVsSimResult{std::move(sim_stats), std::move(runtime_stats),
                            mismatch};
}

// Prints the cross-check table and emits per-disk telemetry rows. Kept
// small-scale (few hundred ops, p in {5, 7}) so it adds seconds, not
// minutes, to the figure benches it rides along with.
inline void report_runtime_vs_sim(Telemetry& telemetry,
                                  sim::WorkloadKind kind,
                                  const char* workload_label,
                                  int operations = 200,
                                  uint64_t seed = 0xCA11) {
  std::cout << "-- Runtime vs simulator cross-check (" << workload_label
            << ", " << operations << " ops, live Raid6Array) --\n";
  TablePrinter table({"code", "p", "sim_total", "runtime_total", "sim_lf",
                      "runtime_lf", "mismatch_elems"});
  for (const auto& name : codes::paper_comparison_codes()) {
    for (int p : {5, 7}) {
      RuntimeVsSimResult r =
          run_runtime_vs_sim(name, p, kind, operations, seed + p);
      table.add_row({name, std::to_string(p), std::to_string(r.sim_stats.total()),
                     std::to_string(r.runtime_stats.total()),
                     format_lf(r.sim_stats.load_balancing_factor()),
                     format_lf(r.runtime_stats.load_balancing_factor()),
                     std::to_string(r.mismatch_elements)});
      obs::Labels base = {{"code", name},
                          {"p", std::to_string(p)},
                          {"workload", workload_label}};
      for (int d = 0; d < r.sim_stats.disks(); ++d) {
        obs::Labels l = base;
        l.emplace_back("disk", std::to_string(d));
        telemetry.add("sim_per_disk_accesses",
                      static_cast<double>(r.sim_stats.accesses(d)), l);
        telemetry.add("runtime_per_disk_accesses",
                      static_cast<double>(r.runtime_stats.accesses(d)), l);
      }
      telemetry.add("runtime_sim_mismatch_elements",
                    static_cast<double>(r.mismatch_elements), base);
    }
  }
  table.print(std::cout);
  std::cout << "mismatch_elems of 0 means the live array touched exactly the "
               "elements the planner predicted, per disk.\n\n";
}

}  // namespace dcode::bench

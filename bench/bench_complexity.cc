// §III-D features table: storage efficiency, encoding/decoding
// computational complexity, and update complexity for every code in the
// library (the paper's analytical claims, computed from the actual
// constructions rather than restated).
//
// Paper claims being reproduced (for D-Code): optimal storage efficiency
// (MDS), encode cost 2 - 2/(n-2) XORs per data element, decode cost n-3
// XORs per lost element, update complexity exactly 2.
#include <iostream>

#include "bench_common.h"
#include "codes/decoder.h"
#include "codes/encoder.h"
#include "raid/planner.h"
#include "util/rng.h"

using namespace dcode;
using namespace dcode::bench;

int main(int argc, char** argv) {
  Telemetry telemetry("bench_complexity", argc, argv);
  print_header("Features (paper §III-D): computed from the constructions",
               "encode = XORs per data element; decode = XORs per lost "
               "element (two-disk failure); update = parity elements "
               "dirtied per single-element write (incl. cascades).");

  for (int p : {7, 13}) {
    std::cout << "-- p = " << p << " --\n";
    TablePrinter table({"code", "disks", "data/stripe", "storage-eff",
                        "encode-xors/elem", "optimal-encode", "decode-xors/lost",
                        "update-avg", "update-max"});
    for (const auto& name : codes::all_code_names()) {
      auto layout = codes::make_layout(name, p);
      const int disks = layout->cols();
      const int data = layout->data_count();
      const int total = layout->rows() * layout->cols();

      double encode_per_elem =
          static_cast<double>(codes::encode_xor_count(*layout)) / data;
      // Lower bound for a RAID-6 MDS code with this geometry: every data
      // element enters exactly two parity chains, so the best possible is
      // 2 - (#parity elements)/(#data elements) XORs per element
      // (= 2 - 2/(n-2) for D-Code, 2 - 2/(p-1) for RDP).
      double optimal = 2.0 - static_cast<double>(total - data) / data;

      // Decode cost: measured on a real double failure.
      Pcg32 rng(1);
      codes::Stripe s(*layout, 16);
      s.randomize_data(rng);
      codes::encode_stripe(s);
      codes::Stripe broken = s.clone();
      broken.erase_disk(0);
      broken.erase_disk(disks / 2);
      int fd[2] = {0, disks / 2};
      auto lost = codes::elements_of_disks(*layout, fd);
      auto res = codes::hybrid_decode(broken, lost);
      double decode_per_lost =
          res.success ? static_cast<double>(res.xor_ops) / lost.size() : -1;

      // Update complexity: dirty parity closure per single data element.
      double upd_sum = 0;
      size_t upd_max = 0;
      for (int i = 0; i < data; ++i) {
        codes::Element e = layout->data_element(i);
        std::vector<codes::Element> w = {e};
        size_t n = raid::dirty_parity_closure(*layout, w).size();
        upd_sum += static_cast<double>(n);
        upd_max = std::max(upd_max, n);
      }

      obs::Labels cell = {{"code", name}, {"p", std::to_string(p)}};
      telemetry.add("storage_efficiency",
                    static_cast<double>(data) / total, cell);
      telemetry.add("encode_xors_per_element", encode_per_elem, cell);
      telemetry.add("optimal_encode_xors_per_element", optimal, cell);
      telemetry.add("decode_xors_per_lost_element", decode_per_lost, cell);
      telemetry.add("update_complexity_avg", upd_sum / data, cell);
      telemetry.add("update_complexity_max",
                    static_cast<double>(upd_max), cell);
      table.add_row({name, std::to_string(disks), std::to_string(data),
                     format_double(static_cast<double>(data) / total, 3),
                     format_double(encode_per_elem, 3),
                     format_double(optimal, 3),
                     format_double(decode_per_lost, 2),
                     format_double(upd_sum / data, 2),
                     std::to_string(upd_max)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Paper check (dcode): encode-xors/elem == 2 - 2/(n-2), "
               "decode-xors/lost == n-3, update-avg == update-max == 2.\n";
  telemetry.finish();
  return 0;
}

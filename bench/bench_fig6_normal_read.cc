// Figure 6: normal-mode read speed (a) and per-disk average read speed
// (b) for the five comparison codes, 2000 random reads of 1..20 elements.
//
// The paper measured a 16-disk SAS array; we run the same access plans
// through the disk service-time model of sim/disk_model.h (see DESIGN.md
// §4). Absolute MB/s differ from the paper's testbed; the orderings and
// ratios are the reproduction target: D-Code ~= X-Code at the top (same
// data layout), up to ~21.3% over RDP and ~13.5% over H-Code; average
// speed decreasing in p for every code.
#include "bench_common.h"
#include "sim/experiments.h"

using namespace dcode;
using namespace dcode::bench;

int main(int argc, char** argv) {
  Telemetry telemetry("bench_fig6_normal_read", argc, argv);
  sim::DiskModelParams params;
  print_header(
      "Figure 6: normal read speed (modeled 10k-RPM SAS disks)",
      "2000 random reads per cell, L in [1,20]; element = 64 KiB, "
      "positioning = 6.8 ms, media rate = 150 MB/s.");

  std::cout << "-- Figure 6(a): read speed (MB/s) --\n";
  TablePrinter speed({"code", "p=5", "p=7", "p=11", "p=13"});
  std::cout.flush();
  for (const auto& name : codes::paper_comparison_codes()) {
    std::vector<double> row;
    for (int p : paper_primes()) {
      auto layout = codes::make_layout(name, p);
      double mb_s =
          sim::run_normal_read_experiment(*layout, 0xF160000 + p, params)
              .read_mb_s;
      row.push_back(mb_s);
      telemetry.add("read_mb_s", mb_s,
                    {{"code", name},
                     {"p", std::to_string(p)},
                     {"mode", "normal"}});
    }
    speed.add_numeric_row(name, row, 1);
  }
  speed.print(std::cout);

  std::cout << "\n-- Figure 6(b): average read speed per disk (MB/s) --\n";
  TablePrinter avg({"code", "p=5", "p=7", "p=11", "p=13"});
  for (const auto& name : codes::paper_comparison_codes()) {
    std::vector<double> row;
    for (int p : paper_primes()) {
      auto layout = codes::make_layout(name, p);
      double mb_s =
          sim::run_normal_read_experiment(*layout, 0xF160000 + p, params)
              .avg_mb_s_disk;
      row.push_back(mb_s);
      telemetry.add("avg_mb_s_disk", mb_s,
                    {{"code", name},
                     {"p", std::to_string(p)},
                     {"mode", "normal"}});
    }
    avg.add_numeric_row(name, row, 2);
  }
  avg.print(std::cout);

  std::cout << "\nPaper shape check: dcode ~= xcode fastest; rdp slowest "
               "(its two parity disks serve no reads); per-disk average "
               "highest for the p-1-disk HDP and the p-disk verticals.\n";
  telemetry.finish();
  return 0;
}

// Figure 6: normal-mode read speed (a) and per-disk average read speed
// (b) for the five comparison codes, 2000 random reads of 1..20 elements.
//
// The paper measured a 16-disk SAS array; we run the same access plans
// through the disk service-time model of sim/disk_model.h (see DESIGN.md
// §4). Absolute MB/s differ from the paper's testbed; the orderings and
// ratios are the reproduction target: D-Code ~= X-Code at the top (same
// data layout), up to ~21.3% over RDP and ~13.5% over H-Code; average
// speed decreasing in p for every code.
#include <chrono>

#include "bench_common.h"
#include "obs/flight_recorder.h"
#include "raid/raid6_array.h"
#include "sim/experiments.h"
#include "util/rng.h"

using namespace dcode;
using namespace dcode::bench;

namespace {

// Runtime section: full-stripe sequential reads through a real
// Raid6Array, on both device backends. The naive arm reproduces the
// pre-engine monolith's read loop exactly: locate each element, issue
// one accounted device read into a bounce buffer, memcpy into the user
// buffer — one device op and two copies per element (coalescing and
// parallel fan-out off, one pool worker). The engine arm is the
// batched path: adjacent same-column elements merge into one vectored
// transfer scattered straight into the caller's buffer — one copy, and
// the per-op cost (a syscall on the file backend) paid once per run.
// Same data, same element accounting in both arms.
//
// Each backend runs twice: with zero per-op service time (pure software
// overhead — RAM and page-cache are nearly free per op, so this mostly
// shows the removed bounce copy) and with a modeled per-op service
// delay (the runtime analogue of the sim section's positioning cost —
// on a device where ops cost time, coalescing divides the op count by
// the run length and the engine overlaps the remaining ops across
// disks on the pool).
struct RuntimeRead {
  double mb_s = 0;
  double coalescing = 1;  // elements per device read op
  std::string backend;
};

RuntimeRead measure_runtime_read(const std::string& backend, bool engine_mode,
                                 int64_t service_ns) {
  const int p = 11;  // 11-disk array (>= 8, per the engine's design target)
  const size_t esize = 4 * 1024;
  const int64_t stripes = 96;
  raid::ArrayOptions opts;
  opts.device_factory = backend_device_factory(backend);
  opts.coalesce = engine_mode;
  opts.parallel_user_io = engine_mode;
  obs::Registry reg;  // private: keep array counters out of the telemetry dump
  // The engine arm gets an I/O-sized pool (workers block in device ops,
  // so more workers than cores is the point); the naive arm is the
  // monolith's serial loop.
  raid::Raid6Array array(codes::make_layout("dcode", p), esize, stripes,
                         engine_mode ? 8u : 1u, &reg, std::move(opts));
  std::vector<uint8_t> blob(static_cast<size_t>(array.capacity()));
  Pcg32 rng(0xF16);
  rng.fill_bytes(blob.data(), blob.size());
  array.write(0, blob);

  raid::AddressMap map(array.layout());
  const int64_t elements =
      array.capacity() / static_cast<int64_t>(esize);
  AlignedBuffer bounce(esize);
  auto read_once = [&](std::span<uint8_t> out) {
    if (engine_mode) {
      array.read(0, out);
      return;
    }
    // The monolith's healthy read loop, verbatim: one accounted device
    // read per element into a bounce buffer, then copy out.
    for (int64_t e = 0; e < elements; ++e) {
      auto loc = map.locate(e);
      array.io_engine().read_element(loc.disk, loc.stripe, loc.element.row,
                                     bounce.data());
      std::memcpy(out.data() + e * static_cast<int64_t>(esize), bounce.data(),
                  esize);
    }
  };

  std::vector<uint8_t> out(blob.size());
  read_once(out);  // warmup
  DCODE_CHECK(out == blob, "runtime read returned wrong data");
  if (service_ns > 0) {
    for (int d = 0; d < array.layout().cols(); ++d) {
      array.disk(d).faults().set_latency_ns(service_ns);
    }
  }
  array.reset_stats();

  const int iters = service_ns > 0 ? 3 : 6;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) read_once(out);
  auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  RuntimeRead res;
  res.mb_s = static_cast<double>(blob.size()) * iters / secs / (1024.0 * 1024.0);
  int64_t elems = 0, ops = 0;
  for (int d = 0; d < array.layout().cols(); ++d) {
    elems += array.disk(d).reads();
    ops += array.disk(d).device_read_ops();
  }
  res.coalescing = ops > 0 ? static_cast<double>(elems) / static_cast<double>(ops)
                           : 1.0;
  res.backend = std::string(array.disk(0).backend_name());
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Telemetry telemetry("bench_fig6_normal_read", argc, argv);
  sim::DiskModelParams params;
  print_header(
      "Figure 6: normal read speed (modeled 10k-RPM SAS disks)",
      "2000 random reads per cell, L in [1,20]; element = 64 KiB, "
      "positioning = 6.8 ms, media rate = 150 MB/s.");

  std::cout << "-- Figure 6(a): read speed (MB/s) --\n";
  TablePrinter speed({"code", "p=5", "p=7", "p=11", "p=13"});
  std::cout.flush();
  for (const auto& name : codes::paper_comparison_codes()) {
    std::vector<double> row;
    for (int p : paper_primes()) {
      auto layout = codes::make_layout(name, p);
      double mb_s =
          sim::run_normal_read_experiment(*layout, 0xF160000 + p, params)
              .read_mb_s;
      row.push_back(mb_s);
      telemetry.add("read_mb_s", mb_s,
                    {{"code", name},
                     {"p", std::to_string(p)},
                     {"mode", "normal"}});
    }
    speed.add_numeric_row(name, row, 1);
  }
  speed.print(std::cout);

  std::cout << "\n-- Figure 6(b): average read speed per disk (MB/s) --\n";
  TablePrinter avg({"code", "p=5", "p=7", "p=11", "p=13"});
  for (const auto& name : codes::paper_comparison_codes()) {
    std::vector<double> row;
    for (int p : paper_primes()) {
      auto layout = codes::make_layout(name, p);
      double mb_s =
          sim::run_normal_read_experiment(*layout, 0xF160000 + p, params)
              .avg_mb_s_disk;
      row.push_back(mb_s);
      telemetry.add("avg_mb_s_disk", mb_s,
                    {{"code", name},
                     {"p", std::to_string(p)},
                     {"mode", "normal"}});
    }
    avg.add_numeric_row(name, row, 2);
  }
  avg.print(std::cout);

  std::cout << "\nPaper shape check: dcode ~= xcode fastest; rdp slowest "
               "(its two parity disks serve no reads); per-disk average "
               "highest for the p-1-disk HDP and the p-disk verticals.\n";

  std::cout << "\n-- Runtime: full-stripe sequential read through "
               "Raid6Array (dcode, p=11) --\n";
  TablePrinter runtime({"backend", "svc/op", "naive MB/s", "engine MB/s",
                        "elems/device-op", "speedup"});
  double best_speedup = 0;
  for (const int64_t service_us : {0, 5}) {
    for (const std::string& backend : runtime_backends()) {
      RuntimeRead naive =
          measure_runtime_read(backend, /*engine_mode=*/false,
                               service_us * 1000);
      RuntimeRead engine =
          measure_runtime_read(backend, /*engine_mode=*/true,
                               service_us * 1000);
      const double speedup = engine.mb_s / naive.mb_s;
      best_speedup = std::max(best_speedup, speedup);
      runtime.add_row({backend, std::to_string(service_us) + "us",
                       format_double(naive.mb_s, 0),
                       format_double(engine.mb_s, 0),
                       format_double(engine.coalescing, 1),
                       format_double(speedup, 2) + "x"});
      obs::Labels cell = {{"code", "dcode"},
                          {"p", "11"},
                          {"backend", backend},
                          {"service_time_us", std::to_string(service_us)}};
      for (const auto* r : {&naive, &engine}) {
        obs::Labels l = cell;
        l.emplace_back("mode", r == &naive ? "naive" : "engine");
        telemetry.add("runtime_read_mb_s", r->mb_s, l);
      }
      telemetry.add("runtime_read_speedup", speedup, cell);
    }
  }
  runtime.print(std::cout);
  std::cout << "\nbest engine/naive speedup: " << format_double(best_speedup, 2)
            << "x\n";

  // Flight-recorder overhead: the always-on recorder must cost nothing
  // measurable on the fast path (budget: <= 5%). Measured on the
  // cheapest configuration (mem backend, zero service time) where the
  // per-event cost is largest relative to the work; best-of-3 per arm to
  // shave scheduler noise.
  auto& recorder = obs::FlightRecorder::global();
  auto best_of3 = [&](bool recorder_on) {
    recorder.set_enabled(recorder_on);
    double best = 0;
    for (int i = 0; i < 3; ++i) {
      best = std::max(
          best, measure_runtime_read("mem", /*engine_mode=*/true, 0).mb_s);
    }
    return best;
  };
  const double rec_off_mb_s = best_of3(false);
  const double rec_on_mb_s = best_of3(true);
  recorder.set_enabled(true);
  const double overhead_pct = (rec_off_mb_s / rec_on_mb_s - 1.0) * 100.0;
  std::cout << "\n-- Runtime: flight-recorder overhead (engine path, mem, "
               "0us svc) --\n";
  std::cout << "recorder off: " << format_double(rec_off_mb_s, 0)
            << " MB/s, on: " << format_double(rec_on_mb_s, 0)
            << " MB/s, overhead: " << format_double(overhead_pct, 2) << "%\n";
  obs::Labels rec_cell = {{"code", "dcode"}, {"p", "11"}, {"backend", "mem"}};
  telemetry.add("flight_recorder_overhead_pct", overhead_pct, rec_cell);
  for (bool on : {false, true}) {
    obs::Labels l = rec_cell;
    l.emplace_back("recorder", on ? "on" : "off");
    telemetry.add("runtime_read_mb_s", on ? rec_on_mb_s : rec_off_mb_s, l);
  }
  std::cout << "The engine rows are what the batched I/O layer buys: "
               "adjacent same-column elements merge into one vectored "
               "device op scattered straight into the user buffer (no "
               "bounce copy), and once ops cost service time the "
               "remaining ops overlap across disks — the svc/op rows "
               "are the runtime analogue of the sim section's "
               "positioning cost.\n";

  telemetry.finish();
  return 0;
}

// XOR kernel microbenchmarks: the fused multi-source kernels vs the
// single-source loop vs the byte-at-a-time reference. The fused variants
// matter because a parity of n-3 sources computed pairwise re-reads dst
// n-4 times; xor_many streams it once per 4 sources.
#include <benchmark/benchmark.h>

#include "gbench_telemetry.h"

#include <string>
#include <vector>

#include "gf/gf.h"
#include "util/aligned_buffer.h"
#include "util/rng.h"
#include "xorops/isa.h"
#include "xorops/xor_backend.h"
#include "xorops/xor_region.h"

using namespace dcode;

namespace {

constexpr size_t kLen = 64 * 1024;

struct Buffers {
  std::vector<AlignedBuffer> bufs;
  std::vector<const uint8_t*> ptrs;
  AlignedBuffer dst{kLen};

  explicit Buffers(int n) {
    Pcg32 rng(7);
    for (int i = 0; i < n; ++i) {
      bufs.emplace_back(kLen);
      rng.fill_bytes(bufs.back().data(), kLen);
      ptrs.push_back(bufs.back().data());
    }
  }
};

void BM_XorIntoNaive(benchmark::State& state) {
  Buffers b(1);
  for (auto _ : state) {
    xorops::xor_into_naive(b.dst.data(), b.ptrs[0], kLen);
    benchmark::DoNotOptimize(b.dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kLen);
}

void BM_XorInto(benchmark::State& state) {
  Buffers b(1);
  for (auto _ : state) {
    xorops::xor_into(b.dst.data(), b.ptrs[0], kLen);
    benchmark::DoNotOptimize(b.dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kLen);
}

void BM_XorManyPairwise(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Buffers b(n);
  for (auto _ : state) {
    std::memcpy(b.dst.data(), b.ptrs[0], kLen);
    for (int i = 1; i < n; ++i) xorops::xor_into(b.dst.data(), b.ptrs[i], kLen);
    benchmark::DoNotOptimize(b.dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n * kLen);
}

void BM_XorManyFused(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Buffers b(n);
  for (auto _ : state) {
    xorops::xor_many(b.dst.data(), b.ptrs, kLen);
    benchmark::DoNotOptimize(b.dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n * kLen);
}

// Per-backend variants via the explicit-ISA entry points, so one run on
// wide-vector hardware reports every compiled-in backend side by side
// (the acceptance gate: avx2 mul_region8 >= 3x scalar).
void BM_XorIntoIsa(benchmark::State& state, xorops::Isa isa) {
  const auto& k = xorops::detail::xor_kernels(isa);
  Buffers b(1);
  for (auto _ : state) {
    k.xor_into(b.dst.data(), b.ptrs[0], kLen);
    benchmark::DoNotOptimize(b.dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kLen);
}

void BM_Xor5IntoIsa(benchmark::State& state, xorops::Isa isa) {
  const auto& k = xorops::detail::xor_kernels(isa);
  Buffers b(5);
  for (auto _ : state) {
    k.xor5_into(b.dst.data(), b.ptrs[0], b.ptrs[1], b.ptrs[2], b.ptrs[3],
                b.ptrs[4], kLen);
    benchmark::DoNotOptimize(b.dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 5 * kLen);
}

void BM_MulRegion8Isa(benchmark::State& state, xorops::Isa isa,
                      bool accumulate) {
  const gf::GaloisField& f = gf::gf8();
  Buffers b(1);
  for (auto _ : state) {
    f.mul_region(b.dst.data(), b.ptrs[0], 0x1d, kLen, accumulate, isa);
    benchmark::DoNotOptimize(b.dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kLen);
}

// w=16 region multiply through the dispatched path; kLen is far above the
// table-build threshold, so this measures the two-table fast path.
void BM_MulRegion16(benchmark::State& state) {
  const gf::GaloisField& f = gf::gf16();
  Buffers b(1);
  for (auto _ : state) {
    f.mul_region(b.dst.data(), b.ptrs[0], 0x1234, kLen, false);
    benchmark::DoNotOptimize(b.dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kLen);
}

}  // namespace

BENCHMARK(BM_XorIntoNaive);
BENCHMARK(BM_XorInto);
BENCHMARK(BM_XorManyPairwise)->Arg(4)->Arg(10)->Arg(15);
BENCHMARK(BM_XorManyFused)->Arg(4)->Arg(10)->Arg(15);
BENCHMARK(BM_MulRegion16);

int main(int argc, char** argv) {
  for (xorops::Isa isa : xorops::supported_isas()) {
    const std::string tag = xorops::isa_name(isa);
    benchmark::RegisterBenchmark(("BM_XorInto/isa:" + tag).c_str(),
                                 BM_XorIntoIsa, isa);
    benchmark::RegisterBenchmark(("BM_Xor5Into/isa:" + tag).c_str(),
                                 BM_Xor5IntoIsa, isa);
    benchmark::RegisterBenchmark(("BM_MulRegion8/isa:" + tag).c_str(),
                                 BM_MulRegion8Isa, isa, false);
    benchmark::RegisterBenchmark(("BM_MulRegion8Acc/isa:" + tag).c_str(),
                                 BM_MulRegion8Isa, isa, true);
  }
  return dcode::bench::run_gbench_with_telemetry("bench_xor_kernels", argc, argv);
}

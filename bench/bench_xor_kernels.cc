// XOR kernel microbenchmarks: the fused multi-source kernels vs the
// single-source loop vs the byte-at-a-time reference. The fused variants
// matter because a parity of n-3 sources computed pairwise re-reads dst
// n-4 times; xor_many streams it once per 4 sources.
#include <benchmark/benchmark.h>

#include "gbench_telemetry.h"

#include <vector>

#include "util/aligned_buffer.h"
#include "util/rng.h"
#include "xorops/xor_region.h"

using namespace dcode;

namespace {

constexpr size_t kLen = 64 * 1024;

struct Buffers {
  std::vector<AlignedBuffer> bufs;
  std::vector<const uint8_t*> ptrs;
  AlignedBuffer dst{kLen};

  explicit Buffers(int n) {
    Pcg32 rng(7);
    for (int i = 0; i < n; ++i) {
      bufs.emplace_back(kLen);
      rng.fill_bytes(bufs.back().data(), kLen);
      ptrs.push_back(bufs.back().data());
    }
  }
};

void BM_XorIntoNaive(benchmark::State& state) {
  Buffers b(1);
  for (auto _ : state) {
    xorops::xor_into_naive(b.dst.data(), b.ptrs[0], kLen);
    benchmark::DoNotOptimize(b.dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kLen);
}

void BM_XorInto(benchmark::State& state) {
  Buffers b(1);
  for (auto _ : state) {
    xorops::xor_into(b.dst.data(), b.ptrs[0], kLen);
    benchmark::DoNotOptimize(b.dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kLen);
}

void BM_XorManyPairwise(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Buffers b(n);
  for (auto _ : state) {
    std::memcpy(b.dst.data(), b.ptrs[0], kLen);
    for (int i = 1; i < n; ++i) xorops::xor_into(b.dst.data(), b.ptrs[i], kLen);
    benchmark::DoNotOptimize(b.dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n * kLen);
}

void BM_XorManyFused(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Buffers b(n);
  for (auto _ : state) {
    xorops::xor_many(b.dst.data(), b.ptrs, kLen);
    benchmark::DoNotOptimize(b.dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n * kLen);
}

}  // namespace

BENCHMARK(BM_XorIntoNaive);
BENCHMARK(BM_XorInto);
BENCHMARK(BM_XorManyPairwise)->Arg(4)->Arg(10)->Arg(15);
BENCHMARK(BM_XorManyFused)->Arg(4)->Arg(10)->Arg(15);

int main(int argc, char** argv) {
  return dcode::bench::run_gbench_with_telemetry("bench_xor_kernels", argc, argv);
}

// Raw encode/decode throughput of every codec in the library: the six
// XOR array codes, the matrix Reed–Solomon codecs (Cauchy and
// Vandermonde generators), the bitmatrix Cauchy-RS, and the classic
// RAID-6 P/Q — the role Jerasure 1.2 plays in the paper's testbed.
//
// Expected shape: XOR array codes and P/Q's P side run at memory
// bandwidth; GF(256) multiply codecs are several times slower; Cauchy-RS
// with the smart schedule sits between.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "gbench_telemetry.h"

#include "codes/dcode_decoder.h"
#include "codes/decoder.h"
#include "codes/encoder.h"
#include "codes/registry.h"
#include "rs/cauchy_rs.h"
#include "rs/reed_solomon.h"
#include "util/rng.h"

using namespace dcode;

namespace {

constexpr size_t kElement = 64 * 1024;

void BM_ArrayEncode(benchmark::State& state, const std::string& name) {
  const int p = static_cast<int>(state.range(0));
  auto layout = codes::make_layout(name, p);
  Pcg32 rng(1);
  codes::Stripe stripe(*layout, kElement);
  stripe.randomize_data(rng);
  for (auto _ : state) {
    codes::encode_stripe(stripe);
    benchmark::DoNotOptimize(stripe.disk(0));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          layout->data_count() *
                          static_cast<int64_t>(kElement));
}

void BM_ArrayDecodeTwoDisks(benchmark::State& state, const std::string& name) {
  const int p = static_cast<int>(state.range(0));
  auto layout = codes::make_layout(name, p);
  Pcg32 rng(2);
  codes::Stripe stripe(*layout, kElement);
  stripe.randomize_data(rng);
  codes::encode_stripe(stripe);
  int fd[2] = {0, p / 2};
  auto lost = codes::elements_of_disks(*layout, fd);
  for (auto _ : state) {
    state.PauseTiming();
    codes::Stripe broken = stripe.clone();
    broken.erase_disk(fd[0]);
    broken.erase_disk(fd[1]);
    state.ResumeTiming();
    auto res = name == "dcode"
                   ? [&] {
                       auto r = codes::dcode_decode_two_disks(broken, fd[0],
                                                              fd[1]);
                       codes::DecodeResult out;
                       out.success = r.success;
                       out.xor_ops = r.xor_ops;
                       return out;
                     }()
                   : codes::hybrid_decode(broken, lost);
    benchmark::DoNotOptimize(res.success);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(lost.size()) *
                          static_cast<int64_t>(kElement));
}

void BM_RsEncode(benchmark::State& state, rs::GeneratorKind kind) {
  const int k = static_cast<int>(state.range(0));
  rs::RsCodec codec(k, 2, 8, kind);
  Pcg32 rng(3);
  std::vector<std::vector<uint8_t>> data(static_cast<size_t>(k),
                                         std::vector<uint8_t>(kElement));
  std::vector<std::vector<uint8_t>> coding(2,
                                           std::vector<uint8_t>(kElement));
  for (auto& d : data) rng.fill_bytes(d.data(), d.size());
  std::vector<const uint8_t*> dp;
  std::vector<uint8_t*> cp;
  for (auto& d : data) dp.push_back(d.data());
  for (auto& c : coding) cp.push_back(c.data());
  for (auto _ : state) {
    codec.encode(dp, cp, kElement);
    benchmark::DoNotOptimize(coding[0].data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * k *
                          static_cast<int64_t>(kElement));
}

void BM_CauchyRsEncode(benchmark::State& state, bool smart) {
  const int k = static_cast<int>(state.range(0));
  rs::CauchyRsCodec codec(k, 2, 8, smart);
  Pcg32 rng(4);
  std::vector<std::vector<uint8_t>> data(static_cast<size_t>(k),
                                         std::vector<uint8_t>(kElement));
  std::vector<std::vector<uint8_t>> coding(2,
                                           std::vector<uint8_t>(kElement));
  for (auto& d : data) rng.fill_bytes(d.data(), d.size());
  std::vector<const uint8_t*> dp;
  std::vector<uint8_t*> cp;
  for (auto& d : data) dp.push_back(d.data());
  for (auto& c : coding) cp.push_back(c.data());
  for (auto _ : state) {
    codec.encode(dp, cp, kElement);
    benchmark::DoNotOptimize(coding[0].data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * k *
                          static_cast<int64_t>(kElement));
}

void BM_Raid6PqEncode(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  rs::Raid6PqCodec codec(k);
  Pcg32 rng(5);
  std::vector<std::vector<uint8_t>> data(static_cast<size_t>(k),
                                         std::vector<uint8_t>(kElement));
  std::vector<uint8_t> pbuf(kElement), qbuf(kElement);
  for (auto& d : data) rng.fill_bytes(d.data(), d.size());
  std::vector<const uint8_t*> dp;
  for (auto& d : data) dp.push_back(d.data());
  for (auto _ : state) {
    codec.encode(dp, pbuf.data(), qbuf.data(), kElement);
    benchmark::DoNotOptimize(pbuf.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * k *
                          static_cast<int64_t>(kElement));
}

}  // namespace

BENCHMARK_CAPTURE(BM_ArrayEncode, dcode, std::string("dcode"))
    ->Arg(7)->Arg(13)->Arg(17);
BENCHMARK_CAPTURE(BM_ArrayEncode, xcode, std::string("xcode"))
    ->Arg(7)->Arg(13)->Arg(17);
BENCHMARK_CAPTURE(BM_ArrayEncode, rdp, std::string("rdp"))->Arg(7)->Arg(13);
BENCHMARK_CAPTURE(BM_ArrayEncode, evenodd, std::string("evenodd"))
    ->Arg(7)->Arg(13);
BENCHMARK_CAPTURE(BM_ArrayEncode, hcode, std::string("hcode"))
    ->Arg(7)->Arg(13);
BENCHMARK_CAPTURE(BM_ArrayEncode, hdp, std::string("hdp"))->Arg(7)->Arg(13);

BENCHMARK_CAPTURE(BM_ArrayDecodeTwoDisks, dcode, std::string("dcode"))
    ->Arg(7)->Arg(13);
BENCHMARK_CAPTURE(BM_ArrayDecodeTwoDisks, xcode, std::string("xcode"))
    ->Arg(7)->Arg(13);
BENCHMARK_CAPTURE(BM_ArrayDecodeTwoDisks, rdp, std::string("rdp"))
    ->Arg(7)->Arg(13);

BENCHMARK_CAPTURE(BM_RsEncode, cauchy_gf256, rs::GeneratorKind::kCauchy)
    ->Arg(5)->Arg(11);
BENCHMARK_CAPTURE(BM_RsEncode, vandermonde_gf256,
                  rs::GeneratorKind::kVandermonde)
    ->Arg(5)->Arg(11);
BENCHMARK_CAPTURE(BM_CauchyRsEncode, smart_schedule, true)->Arg(5)->Arg(11);
BENCHMARK_CAPTURE(BM_CauchyRsEncode, dumb_schedule, false)->Arg(5)->Arg(11);
BENCHMARK(BM_Raid6PqEncode)->Arg(5)->Arg(11);

int main(int argc, char** argv) {
  return dcode::bench::run_gbench_with_telemetry("bench_codec_throughput",
                                                 argc, argv);
}

// Open-loop tail-latency harness: Poisson arrivals against a live array.
//
// Closed-loop benches (issue, wait, issue) understate tail latency: a
// slow op delays the *submission* of every op behind it, so the stall is
// counted once instead of once per queued op (coordinated omission).
// This harness is open-loop: arrival times are drawn up front from an
// exponential inter-arrival distribution at a fixed offered rate, workers
// submit each op at its intended arrival regardless of how the previous
// op fared, and latency is measured from the INTENDED arrival — an op
// that waited behind a stall is charged its full queueing delay.
//
// The matrix swept: offered rates x workloads {uniform, zipfian, mixed
// (paper §IV-A 1:1)} x array states {healthy, degraded, rebuilding} x
// device backends. Each cell reports interpolated p50/p90/p99/p999/max
// from the fine log-linear histogram ladder plus the achieved rate (a
// saturated cell achieves less than it offers — read its percentiles as
// "overloaded", not as service latency).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <sstream>
#include <thread>

#include "bench_common.h"
#include "obs/op_context.h"
#include "raid/raid6_array.h"
#include "sim/workload.h"
#include "util/rng.h"

using namespace dcode;
using namespace dcode::bench;

namespace {

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct HarnessConfig {
  int ops = 1200;              // ops per cell
  int threads = 8;             // submitting workers
  std::vector<double> rates = {2000.0, 8000.0, 20000.0};  // offered ops/s
  std::vector<std::string> backends = {"mem", "file"};
  std::vector<std::string> workloads = {"uniform", "zipfian", "mixed"};
  std::vector<std::string> states = {"healthy", "degraded", "rebuilding"};
};

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

HarnessConfig parse_flags(int argc, char** argv) {
  HarnessConfig cfg;
  for (int i = 1; i < argc; ++i) {
    std::string_view a(argv[i]);
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "flag " << a << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--ops") {
      cfg.ops = std::stoi(next());
    } else if (a == "--threads") {
      cfg.threads = std::stoi(next());
    } else if (a == "--rates") {
      cfg.rates.clear();
      for (const auto& r : split_csv(next())) cfg.rates.push_back(std::stod(r));
    } else if (a == "--backends") {
      cfg.backends = split_csv(next());
    } else if (a == "--workloads") {
      cfg.workloads = split_csv(next());
    } else if (a == "--states") {
      cfg.states = split_csv(next());
    } else if (a.substr(0, 11) == "--benchmark") {
      // Tolerated so CI's generic bench smoke loop (which passes
      // google-benchmark flags to every binary) can run this one too.
    } else {
      std::cerr << "unknown flag: " << a
                << " (flags: --ops --threads --rates --backends --workloads "
                   "--states --json)\n";
      std::exit(2);
    }
  }
  if (cfg.ops < 1 || cfg.threads < 1 || cfg.rates.empty()) {
    std::cerr << "need at least one op, one thread, one rate\n";
    std::exit(2);
  }
  return cfg;
}

// One submitted operation with its intended arrival (ns after cell start).
struct LoadOp {
  bool is_write = false;
  int64_t offset = 0;
  size_t len = 0;
  int64_t arrival_ns = 0;
};

// Expands a sim workload into byte-addressed ops with Poisson arrivals.
std::vector<LoadOp> build_ops(const std::string& workload, int count,
                              double rate_ops_s, int64_t capacity,
                              size_t esize, uint64_t seed) {
  const int64_t total_elements = capacity / static_cast<int64_t>(esize);
  sim::WorkloadParams params;
  params.operations = count;
  params.start_space = total_elements;
  params.seed = seed;
  sim::WorkloadKind kind = sim::WorkloadKind::kReadIntensive;  // 7:3
  if (workload == "uniform") {
    params.max_len = 8;
  } else if (workload == "zipfian") {
    params.max_len = 8;
    params.zipf_theta = 0.99;  // YCSB's default hot-spot skew
  } else if (workload == "mixed") {
    kind = sim::WorkloadKind::kMixed;  // paper §IV-A evenly mixed, L in [1,20]
  } else {
    std::cerr << "unknown workload: " << workload << "\n";
    std::exit(2);
  }
  auto tuples = sim::generate_workload(kind, params);

  std::vector<LoadOp> ops;
  ops.reserve(tuples.size());
  Pcg32 arrivals(seed ^ 0xA221BA1ull);
  const double mean_gap_ns = 1e9 / rate_ops_s;
  double t = 0.0;
  for (const auto& tup : tuples) {
    LoadOp op;
    op.is_write = tup.is_write;
    op.offset = tup.start * static_cast<int64_t>(esize);
    op.len = static_cast<size_t>(
        std::min<int64_t>(tup.len * static_cast<int64_t>(esize),
                          capacity - op.offset));
    // Exponential inter-arrival: -ln(1-u) * mean.
    t += -std::log(1.0 - arrivals.next_double()) * mean_gap_ns;
    op.arrival_ns = static_cast<int64_t>(t);
    ops.push_back(op);
  }
  return ops;
}

struct CellResult {
  double p50 = 0, p90 = 0, p99 = 0, p999 = 0, max = 0, mean = 0;
  double achieved_ops_s = 0;
  int64_t errors = 0;
};

// Runs one cell: `threads` workers claim ops in arrival order and submit
// each at its intended time. Latency = finish - intended arrival, so an
// op delayed behind a stalled predecessor is charged the queueing it
// actually suffered (the OpContext hands the same intended-arrival
// timestamp to the array, so raid.*_latency_fine_ns agrees).
CellResult run_cell(raid::Raid6Array& array, const std::vector<LoadOp>& ops,
                    int threads) {
  obs::Histogram hist(obs::latency_fine_bounds_ns());
  std::atomic<size_t> next{0};
  std::atomic<int64_t> errors{0};
  std::atomic<int64_t> last_finish_ns{0};
  size_t max_len = 0;
  for (const auto& op : ops) max_len = std::max(max_len, op.len);

  // Give every worker time to reach the claim loop before the clock
  // starts, so op 0's latency is not harness start-up.
  const int64_t start_ns = now_ns() + 5'000'000;

  auto worker = [&](int id) {
    std::vector<uint8_t> buf(max_len);
    Pcg32 rng(0xB0FF + static_cast<uint64_t>(id));
    rng.fill_bytes(buf.data(), buf.size());
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= ops.size()) break;
      const LoadOp& op = ops[i];
      const int64_t intended = start_ns + op.arrival_ns;
      // Coarse sleep to ~200us before the intended arrival, then spin on
      // the steady clock: sleep_until alone overshoots by tens of
      // microseconds, which would swamp mem-backend latencies.
      int64_t now = now_ns();
      if (intended - now > 250'000) {
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(intended - now - 200'000));
      }
      while (now_ns() < intended) {
      }
      obs::OpContext ctx;
      ctx.op_id = obs::next_op_id();
      ctx.enqueue_ns = intended;
      obs::OpContextScope scope(&ctx);
      try {
        if (op.is_write) {
          array.write(op.offset, std::span<const uint8_t>(buf.data(), op.len));
        } else {
          array.read(op.offset, std::span<uint8_t>(buf.data(), op.len));
        }
      } catch (const std::exception&) {
        errors.fetch_add(1, std::memory_order_relaxed);
      }
      const int64_t finish = now_ns();
      hist.observe(finish - intended);
      int64_t prev = last_finish_ns.load(std::memory_order_relaxed);
      while (prev < finish && !last_finish_ns.compare_exchange_weak(
                                  prev, finish, std::memory_order_relaxed)) {
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) workers.emplace_back(worker, t);
  for (auto& w : workers) w.join();

  CellResult r;
  r.p50 = hist.percentile(0.50);
  r.p90 = hist.percentile(0.90);
  r.p99 = hist.percentile(0.99);
  r.p999 = hist.percentile(0.999);
  r.max = static_cast<double>(hist.max_value());
  r.mean = hist.count() > 0
               ? static_cast<double>(hist.sum()) /
                     static_cast<double>(hist.count())
               : 0.0;
  const double wall_s =
      static_cast<double>(last_finish_ns.load() - start_ns) / 1e9;
  r.achieved_ops_s =
      wall_s > 0 ? static_cast<double>(ops.size()) / wall_s : 0.0;
  r.errors = errors.load();
  return r;
}

std::unique_ptr<raid::Raid6Array> make_array(const std::string& backend,
                                             const std::string& state) {
  const size_t esize = 4 * 1024;
  const int64_t stripes = 64;
  raid::ArrayOptions opts;
  opts.device_factory = backend_device_factory(backend);
  if (state == "rebuilding") {
    opts.background_rebuild = true;
    // Throttled so the rebuild stays active through the measured cell
    // instead of finishing during warmup.
    opts.rebuild_rate_stripes_per_sec = 24.0;
  }
  auto array = std::make_unique<raid::Raid6Array>(
      codes::make_layout("dcode", 7), esize, stripes, 0, nullptr,
      std::move(opts));

  Pcg32 rng(0x10AD);
  std::vector<uint8_t> blob(static_cast<size_t>(array->capacity()));
  rng.fill_bytes(blob.data(), blob.size());
  array->write(0, blob);

  if (state == "degraded") {
    array->fail_disk(2);  // no spares: stays degraded for the whole cell
  } else if (state == "rebuilding") {
    array->add_hot_spares(1);
    array->fail_disk(2);  // promotes the spare, background rebuild starts
  } else if (state != "healthy") {
    std::cerr << "unknown state: " << state << "\n";
    std::exit(2);
  }
  return array;
}

std::string format_us(double ns) { return format_double(ns / 1000.0, 1); }

}  // namespace

int main(int argc, char** argv) {
  Telemetry telemetry("bench_load_harness", argc, argv);
  HarnessConfig cfg = parse_flags(argc, argv);

  print_header(
      "Open-loop tail-latency harness (dcode p=7, 64 stripes, 4KiB elements)",
      "Poisson arrivals at fixed offered rates; latency measured from the "
      "intended arrival (coordinated-omission-free). Percentiles are "
      "interpolated from the fine log-linear ladder.");

  TablePrinter table({"backend", "workload", "state", "offered/s", "achieved/s",
                      "p50(us)", "p90(us)", "p99(us)", "p999(us)", "max(us)",
                      "errs"});
  uint64_t seed = 0x10AD5EED;
  for (const auto& backend : cfg.backends) {
    for (const auto& workload : cfg.workloads) {
      for (const auto& state : cfg.states) {
        for (double rate : cfg.rates) {
          auto array = make_array(backend, state);
          auto ops = build_ops(workload, cfg.ops, rate, array->capacity(),
                               array->element_size(), seed++);
          CellResult r = run_cell(*array, ops, cfg.threads);
          if (state == "rebuilding") {
            // Unthrottle so teardown doesn't wait out the throttle.
            array->set_rebuild_rate(0.0);
            array->wait_for_rebuild();
          }

          table.add_row({backend, workload, state, format_double(rate, 0),
                         format_double(r.achieved_ops_s, 0), format_us(r.p50),
                         format_us(r.p90), format_us(r.p99), format_us(r.p999),
                         format_us(r.max), std::to_string(r.errors)});

          obs::Labels cell = {{"backend", backend},
                              {"workload", workload},
                              {"state", state},
                              {"rate_ops_s", format_double(rate, 0)}};
          telemetry.add("latency_p50_ns", r.p50, cell);
          telemetry.add("latency_p90_ns", r.p90, cell);
          telemetry.add("latency_p99_ns", r.p99, cell);
          telemetry.add("latency_p999_ns", r.p999, cell);
          telemetry.add("latency_max_ns", r.max, cell);
          telemetry.add("latency_mean_ns", r.mean, cell);
          telemetry.add("offered_ops_per_s", rate, cell);
          telemetry.add("achieved_ops_per_s", r.achieved_ops_s, cell);
          telemetry.add("op_errors", static_cast<double>(r.errors), cell);
        }
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nReading the table: a cell whose achieved/s falls short of "
               "offered/s is saturated — its percentiles measure queueing "
               "under overload, not service latency. Degraded cells pay "
               "reconstruction reads; rebuilding cells additionally contend "
               "with the background worker's stripe locks.\n";

  telemetry.finish();
  return 0;
}

// Open-loop tail-latency harness: Poisson arrivals against a live array.
//
// Closed-loop benches (issue, wait, issue) understate tail latency: a
// slow op delays the *submission* of every op behind it, so the stall is
// counted once instead of once per queued op (coordinated omission).
// This harness is open-loop: arrival times are drawn up front from an
// exponential inter-arrival distribution at a fixed offered rate, workers
// submit each op at its intended arrival regardless of how the previous
// op fared, and latency is measured from the INTENDED arrival — an op
// that waited behind a stall is charged its full queueing delay.
//
// The matrix swept: offered rates x workloads {uniform, zipfian, mixed
// (paper §IV-A 1:1)} x array states {healthy, degraded, rebuilding} x
// device backends. Each cell reports interpolated p50/p90/p99/p999/max
// from the fine log-linear histogram ladder plus the achieved rate (a
// saturated cell achieves less than it offers — read its percentiles as
// "overloaded", not as service latency).
// A second section sweeps writer-thread counts through the async
// StripePipeline (submit_read/submit_write + completion futures) to
// measure how mixed 4K random IOPS scale with concurrency when every
// device transfer pays a fixed injected service latency — the
// acceptance gate for the request pipeline.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <sstream>
#include <thread>

#include "bench_common.h"
#include "obs/op_context.h"
#include "raid/pipeline.h"
#include "raid/raid6_array.h"
#include "sim/workload.h"
#include "util/rng.h"
#include "volume/storage_pool.h"

using namespace dcode;
using namespace dcode::bench;

namespace {

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct HarnessConfig {
  int ops = 1200;              // ops per cell
  int threads = 8;             // submitting workers
  std::vector<double> rates = {2000.0, 8000.0, 20000.0};  // offered ops/s
  std::vector<std::string> backends = {"mem", "file"};
  std::vector<std::string> workloads = {"uniform", "zipfian", "mixed"};
  std::vector<std::string> states = {"healthy", "degraded", "rebuilding"};
  // Pipelined writer-threads sweep (mem backend only).
  std::vector<int> writer_threads = {1, 4, 8};
  int writer_ops = 1600;             // total ops per sweep point
  int writer_disk_latency_us = 40;   // injected per-transfer service time
  // StoragePool shard sweep (mem backend only): shard counts drawn from
  // the fixed ~14-device budget (1x p13 = 13, 2x p7 = 14, 3x p5 = 15).
  std::vector<int> shards = {1, 2, 3};
};

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

HarnessConfig parse_flags(int argc, char** argv) {
  HarnessConfig cfg;
  for (int i = 1; i < argc; ++i) {
    std::string_view a(argv[i]);
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "flag " << a << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--ops") {
      cfg.ops = std::stoi(next());
    } else if (a == "--threads") {
      cfg.threads = std::stoi(next());
    } else if (a == "--rates") {
      cfg.rates.clear();
      for (const auto& r : split_csv(next())) cfg.rates.push_back(std::stod(r));
    } else if (a == "--backends") {
      cfg.backends = split_csv(next());
    } else if (a == "--workloads") {
      cfg.workloads = split_csv(next());
    } else if (a == "--states") {
      cfg.states = split_csv(next());
    } else if (a == "--writer-threads") {
      cfg.writer_threads.clear();
      for (const auto& n : split_csv(next())) {
        cfg.writer_threads.push_back(std::stoi(n));
      }
    } else if (a == "--writer-ops") {
      cfg.writer_ops = std::stoi(next());
    } else if (a == "--writer-disk-latency-us") {
      cfg.writer_disk_latency_us = std::stoi(next());
    } else if (a == "--shards") {
      cfg.shards.clear();
      for (const auto& n : split_csv(next())) {
        cfg.shards.push_back(std::stoi(n));
      }
    } else if (a.substr(0, 11) == "--benchmark") {
      // Tolerated so CI's generic bench smoke loop (which passes
      // google-benchmark flags to every binary) can run this one too.
    } else {
      std::cerr << "unknown flag: " << a
                << " (flags: --ops --threads --rates --backends --workloads "
                   "--states --writer-threads --writer-ops "
                   "--writer-disk-latency-us --shards --json)\n";
      std::exit(2);
    }
  }
  for (int n : cfg.writer_threads) {
    if (n < 1) {
      std::cerr << "--writer-threads entries must be >= 1\n";
      std::exit(2);
    }
  }
  for (int n : cfg.shards) {
    if (n < 1 || n > 3) {
      std::cerr << "--shards entries must be 1, 2, or 3 (the fixed "
                   "~14-device budget: 1x p13, 2x p7, 3x p5)\n";
      std::exit(2);
    }
  }
  if (cfg.ops < 1 || cfg.threads < 1 || cfg.rates.empty()) {
    std::cerr << "need at least one op, one thread, one rate\n";
    std::exit(2);
  }
  return cfg;
}

// One submitted operation with its intended arrival (ns after cell start).
struct LoadOp {
  bool is_write = false;
  int64_t offset = 0;
  size_t len = 0;
  int64_t arrival_ns = 0;
};

// Expands a sim workload into byte-addressed ops with Poisson arrivals.
std::vector<LoadOp> build_ops(const std::string& workload, int count,
                              double rate_ops_s, int64_t capacity,
                              size_t esize, uint64_t seed) {
  const int64_t total_elements = capacity / static_cast<int64_t>(esize);
  sim::WorkloadParams params;
  params.operations = count;
  params.start_space = total_elements;
  params.seed = seed;
  sim::WorkloadKind kind = sim::WorkloadKind::kReadIntensive;  // 7:3
  if (workload == "uniform") {
    params.max_len = 8;
  } else if (workload == "zipfian") {
    params.max_len = 8;
    params.zipf_theta = 0.99;  // YCSB's default hot-spot skew
  } else if (workload == "mixed") {
    kind = sim::WorkloadKind::kMixed;  // paper §IV-A evenly mixed, L in [1,20]
  } else {
    std::cerr << "unknown workload: " << workload << "\n";
    std::exit(2);
  }
  auto tuples = sim::generate_workload(kind, params);

  std::vector<LoadOp> ops;
  ops.reserve(tuples.size());
  Pcg32 arrivals(seed ^ 0xA221BA1ull);
  const double mean_gap_ns = 1e9 / rate_ops_s;
  double t = 0.0;
  for (const auto& tup : tuples) {
    LoadOp op;
    op.is_write = tup.is_write;
    op.offset = tup.start * static_cast<int64_t>(esize);
    op.len = static_cast<size_t>(
        std::min<int64_t>(tup.len * static_cast<int64_t>(esize),
                          capacity - op.offset));
    // Exponential inter-arrival: -ln(1-u) * mean.
    t += -std::log(1.0 - arrivals.next_double()) * mean_gap_ns;
    op.arrival_ns = static_cast<int64_t>(t);
    ops.push_back(op);
  }
  return ops;
}

struct CellResult {
  double p50 = 0, p90 = 0, p99 = 0, p999 = 0, max = 0, mean = 0;
  double achieved_ops_s = 0;
  int64_t errors = 0;
};

// Runs one cell: `threads` workers claim ops in arrival order and submit
// each at its intended time. Latency = finish - intended arrival, so an
// op delayed behind a stalled predecessor is charged the queueing it
// actually suffered (the OpContext hands the same intended-arrival
// timestamp to the array, so raid.*_latency_fine_ns agrees).
CellResult run_cell(raid::Raid6Array& array, const std::vector<LoadOp>& ops,
                    int threads) {
  obs::Histogram hist(obs::latency_fine_bounds_ns());
  std::atomic<size_t> next{0};
  std::atomic<int64_t> errors{0};
  std::atomic<int64_t> last_finish_ns{0};
  size_t max_len = 0;
  for (const auto& op : ops) max_len = std::max(max_len, op.len);

  // Give every worker time to reach the claim loop before the clock
  // starts, so op 0's latency is not harness start-up.
  const int64_t start_ns = now_ns() + 5'000'000;

  auto worker = [&](int id) {
    std::vector<uint8_t> buf(max_len);
    Pcg32 rng(0xB0FF + static_cast<uint64_t>(id));
    rng.fill_bytes(buf.data(), buf.size());
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= ops.size()) break;
      const LoadOp& op = ops[i];
      const int64_t intended = start_ns + op.arrival_ns;
      // Coarse sleep to ~200us before the intended arrival, then spin on
      // the steady clock: sleep_until alone overshoots by tens of
      // microseconds, which would swamp mem-backend latencies.
      int64_t now = now_ns();
      if (intended - now > 250'000) {
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(intended - now - 200'000));
      }
      while (now_ns() < intended) {
      }
      obs::OpContext ctx;
      ctx.op_id = obs::next_op_id();
      ctx.enqueue_ns = intended;
      obs::OpContextScope scope(&ctx);
      try {
        if (op.is_write) {
          array.write(op.offset, std::span<const uint8_t>(buf.data(), op.len));
        } else {
          array.read(op.offset, std::span<uint8_t>(buf.data(), op.len));
        }
      } catch (const std::exception&) {
        errors.fetch_add(1, std::memory_order_relaxed);
      }
      const int64_t finish = now_ns();
      hist.observe(finish - intended);
      int64_t prev = last_finish_ns.load(std::memory_order_relaxed);
      while (prev < finish && !last_finish_ns.compare_exchange_weak(
                                  prev, finish, std::memory_order_relaxed)) {
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) workers.emplace_back(worker, t);
  for (auto& w : workers) w.join();

  CellResult r;
  r.p50 = hist.percentile(0.50);
  r.p90 = hist.percentile(0.90);
  r.p99 = hist.percentile(0.99);
  r.p999 = hist.percentile(0.999);
  r.max = static_cast<double>(hist.max_value());
  r.mean = hist.count() > 0
               ? static_cast<double>(hist.sum()) /
                     static_cast<double>(hist.count())
               : 0.0;
  const double wall_s =
      static_cast<double>(last_finish_ns.load() - start_ns) / 1e9;
  r.achieved_ops_s =
      wall_s > 0 ? static_cast<double>(ops.size()) / wall_s : 0.0;
  r.errors = errors.load();
  return r;
}

std::unique_ptr<raid::Raid6Array> make_array(const std::string& backend,
                                             const std::string& state) {
  const size_t esize = 4 * 1024;
  const int64_t stripes = 64;
  raid::ArrayOptions opts;
  opts.device_factory = backend_device_factory(backend);
  if (state == "rebuilding") {
    opts.background_rebuild = true;
    // Throttled so the rebuild stays active through the measured cell
    // instead of finishing during warmup.
    opts.rebuild_rate_stripes_per_sec = 24.0;
  }
  auto array = std::make_unique<raid::Raid6Array>(
      codes::make_layout("dcode", 7), esize, stripes, 0, nullptr,
      std::move(opts));

  Pcg32 rng(0x10AD);
  std::vector<uint8_t> blob(static_cast<size_t>(array->capacity()));
  rng.fill_bytes(blob.data(), blob.size());
  array->write(0, blob);

  if (state == "degraded") {
    array->fail_disk(2);  // no spares: stays degraded for the whole cell
  } else if (state == "rebuilding") {
    array->add_hot_spares(1);
    array->fail_disk(2);  // promotes the spare, background rebuild starts
  } else if (state != "healthy") {
    std::cerr << "unknown state: " << state << "\n";
    std::exit(2);
  }
  return array;
}

std::string format_us(double ns) { return format_double(ns / 1000.0, 1); }

// --- pipelined writer-threads sweep ---------------------------------------

// Cumulative value of a global-registry counter, for before/after deltas.
int64_t global_counter(const std::string& name) {
  for (const auto& m : obs::Registry::global().snapshot().metrics) {
    if (m.name == name) return m.value;
  }
  return 0;
}

// A fresh mem-backend array for one sweep point. Every device transfer
// pays a fixed injected service latency so the array behaves like real
// disks: one writer is bounded by serial device waits, and extra writers
// gain throughput only if the pipeline overlaps independent stripes.
// Intra-op fan-out is disabled so all measured concurrency belongs to
// the pipeline and the result does not depend on the host's core count.
std::unique_ptr<raid::Raid6Array> make_sweep_array(int latency_us) {
  const size_t esize = 4 * 1024;
  const int64_t stripes = 128;
  raid::ArrayOptions opts;
  opts.device_factory = backend_device_factory("mem");
  opts.parallel_user_io = false;
  opts.stripe_lock_slots = 128;
  auto array = std::make_unique<raid::Raid6Array>(
      codes::make_layout("dcode", 7), esize, stripes, 0, nullptr,
      std::move(opts));
  Pcg32 rng(0x51EE6);
  std::vector<uint8_t> blob(static_cast<size_t>(array->capacity()));
  rng.fill_bytes(blob.data(), blob.size());
  array->write(0, blob);
  for (int d = 0; d < array->layout().cols(); ++d) {
    array->disk(d).faults().set_latency_ns(latency_us * 1000LL);
  }
  return array;
}

struct SweepResult {
  double iops = 0, p50 = 0, p99 = 0;
  int64_t merged = 0;
  int64_t errors = 0;
};

// One sweep point: `n` submitter threads, each holding up to kInFlight
// async ops, issuing 1:1 random 4K-aligned reads and writes through a
// StripePipeline with `n` executor workers. Latency per op comes from
// its completion future (complete - enqueue, coordinated-omission-free
// for a closed per-submitter window); IOPS from wall clock over the
// whole burst.
SweepResult run_writer_sweep_point(const HarnessConfig& cfg, int n) {
  constexpr int kInFlight = 4;
  auto array = make_sweep_array(cfg.writer_disk_latency_us);
  const int64_t merged_before = global_counter("pipeline.writes_merged");
  const size_t esize = array->element_size();
  const int64_t slots = array->capacity() / static_cast<int64_t>(esize);
  const int per_thread = (cfg.writer_ops + n - 1) / n;

  obs::Histogram hist(obs::latency_fine_bounds_ns());
  std::atomic<int64_t> errors{0};
  const int64_t t0 = now_ns();
  {
    raid::PipelineOptions popts;
    popts.workers = n;
    popts.queue_depth = static_cast<size_t>(n) * 2 * kInFlight;
    raid::StripePipeline pipeline(*array, popts);

    auto submitter = [&](int id) {
      Pcg32 rng(0xD15C0 + static_cast<uint64_t>(id));
      std::vector<uint8_t> wbuf(esize);
      rng.fill_bytes(wbuf.data(), wbuf.size());
      // Read destinations rotate through kInFlight slots; the settle
      // below guarantees op i - kInFlight completed before slot reuse.
      std::vector<std::vector<uint8_t>> rbufs(
          kInFlight, std::vector<uint8_t>(esize));
      std::deque<raid::OpFuture> inflight;
      auto settle = [&](size_t keep) {
        while (inflight.size() > keep) {
          raid::OpFuture f = std::move(inflight.front());
          inflight.pop_front();
          if (!f.wait()) errors.fetch_add(1, std::memory_order_relaxed);
          hist.observe(f.latency_ns());
        }
      };
      for (int i = 0; i < per_thread; ++i) {
        settle(kInFlight - 1);
        const int64_t off =
            static_cast<int64_t>(rng.next_below(static_cast<uint32_t>(slots))) *
            static_cast<int64_t>(esize);
        if (rng.next_below(2) == 0) {
          inflight.push_back(pipeline.submit_write(
              off, std::span<const uint8_t>(wbuf.data(), esize)));
        } else {
          auto& dst = rbufs[static_cast<size_t>(i % kInFlight)];
          inflight.push_back(
              pipeline.submit_read(off, std::span<uint8_t>(dst.data(), esize)));
        }
      }
      settle(0);
    };

    std::vector<std::thread> submitters;
    submitters.reserve(static_cast<size_t>(n));
    for (int id = 0; id < n; ++id) submitters.emplace_back(submitter, id);
    for (auto& s : submitters) s.join();
  }  // pipeline drains and joins its workers here
  const int64_t t1 = now_ns();

  SweepResult r;
  const double wall_s = static_cast<double>(t1 - t0) / 1e9;
  r.iops = wall_s > 0
               ? static_cast<double>(per_thread) * n / wall_s
               : 0.0;
  r.p50 = hist.percentile(0.50);
  r.p99 = hist.percentile(0.99);
  r.merged = global_counter("pipeline.writes_merged") - merged_before;
  r.errors = errors.load();
  return r;
}

void run_writer_sweep(const HarnessConfig& cfg, Telemetry& telemetry) {
  if (cfg.writer_threads.empty()) return;

  print_header(
      "Pipelined writer scaling (async submit, mem backend, mixed 4K random)",
      "Each point: N submitters x 4 in-flight async ops through a "
      "StripePipeline with N workers; every device transfer pays " +
          std::to_string(cfg.writer_disk_latency_us) +
          "us injected service latency, intra-op fan-out off. Scaling "
          "beyond 1.0x is concurrency the pipeline created by "
          "overlapping independent stripes.");

  TablePrinter table({"writers", "IOPS", "scaling", "p50(us)", "p99(us)",
                      "merged", "errs"});
  double base_iops = 0.0;
  for (int n : cfg.writer_threads) {
    SweepResult r = run_writer_sweep_point(cfg, n);
    if (base_iops <= 0.0) base_iops = r.iops;
    const double scaling = base_iops > 0 ? r.iops / base_iops : 0.0;
    table.add_row({std::to_string(n), format_double(r.iops, 0),
                   format_double(scaling, 2) + "x", format_us(r.p50),
                   format_us(r.p99), std::to_string(r.merged),
                   std::to_string(r.errors)});

    obs::Labels cell = {{"writer_threads", std::to_string(n)}};
    telemetry.add("pipeline_mixed_4k_iops", r.iops, cell);
    telemetry.add("pipeline_p50_ns", r.p50, cell);
    telemetry.add("pipeline_p99_ns", r.p99, cell);
    telemetry.add("pipeline_iops_scaling_x", scaling, cell);
    telemetry.add("pipeline_writes_merged",
                  static_cast<double>(r.merged), cell);
  }
  table.print(std::cout);

  std::cout << "\nReading the table: IOPS should rise close to linearly "
               "while injected device waits dominate; p50/p99 stay near "
               "flat because the per-submitter in-flight window is "
               "constant — each op queues behind the same ~4 "
               "predecessors regardless of writer count.\n";
}

// --- sharded StoragePool sweep ---------------------------------------------

// Device budget per shard count: every sweep point spends roughly the
// same number of devices, so throughput differences come from how the
// logical space is sharded, not from extra hardware.
int shard_sweep_prime(int shards) {
  switch (shards) {
    case 1: return 13;  // 13 devices
    case 2: return 7;   // 14 devices
    case 3: return 5;   // 15 devices
    default: return 0;
  }
}

// A seeded mem-backend pool for one sweep point, every device transfer
// paying the injected service latency. Same conditions as the writer
// sweep: intra-op fan-out off, so measured concurrency belongs to the
// per-shard pipelines and the pool's routing — not the host's cores.
std::unique_ptr<volume::StoragePool> make_sweep_pool(int shards, int prime,
                                                     int latency_us) {
  volume::ShardSpec spec;
  spec.prime = prime;
  spec.element_size = 4 * 1024;
  spec.stripes = 32;
  spec.threads = 0;  // no intra-op engine fan-out
  spec.array.device_factory = backend_device_factory("mem");
  spec.array.parallel_user_io = false;
  spec.array.stripe_lock_slots = 128;

  volume::PoolOptions popts;
  // One stripe per chunk: always divides the shard capacity, and 4K ops
  // land on a single shard while larger spans still fan out.
  popts.chunk_bytes = static_cast<int64_t>(
      codes::make_layout(spec.code, prime)->data_count() * spec.element_size);
  popts.pipeline.workers = 4;

  auto pool = std::make_unique<volume::StoragePool>(spec, shards, popts);
  Pcg32 rng(0x500113);
  std::vector<uint8_t> blob(static_cast<size_t>(pool->capacity()));
  rng.fill_bytes(blob.data(), blob.size());
  pool->write(0, blob);
  for (int s = 0; s < pool->shard_count(); ++s) {
    raid::Raid6Array& a = pool->shard_array(s);
    for (int d = 0; d < a.layout().cols(); ++d) {
      a.disk(d).faults().set_latency_ns(latency_us * 1000LL);
    }
  }
  return pool;
}

// One sweep point: cfg.threads submitters issue 1:1 random 4K-aligned
// reads and writes synchronously through the pool's routed path; each
// shard's own pipeline overlaps the ops that land on it.
SweepResult run_shard_sweep_point(const HarnessConfig& cfg, int shards,
                                  int prime, obs::Histogram& hist) {
  auto pool = make_sweep_pool(shards, prime, cfg.writer_disk_latency_us);
  const int64_t esize = 4 * 1024;
  const int64_t slots = pool->capacity() / esize;
  const int n = cfg.threads;
  const int per_thread = (cfg.writer_ops + n - 1) / n;

  std::atomic<int64_t> errors{0};
  const int64_t t0 = now_ns();
  {
    std::vector<std::thread> submitters;
    submitters.reserve(static_cast<size_t>(n));
    for (int id = 0; id < n; ++id) {
      submitters.emplace_back([&, id] {
        Pcg32 rng(0x5AADD + static_cast<uint64_t>(id));
        std::vector<uint8_t> buf(static_cast<size_t>(esize));
        rng.fill_bytes(buf.data(), buf.size());
        for (int i = 0; i < per_thread; ++i) {
          const int64_t off =
              static_cast<int64_t>(
                  rng.next_below(static_cast<uint32_t>(slots))) *
              esize;
          const int64_t s0 = now_ns();
          try {
            if (rng.next_below(2) == 0) {
              pool->write(off, buf);
            } else {
              pool->read(off, buf);
            }
          } catch (...) {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
          hist.observe(now_ns() - s0);
        }
      });
    }
    for (auto& s : submitters) s.join();
  }
  const int64_t t1 = now_ns();

  SweepResult r;
  const double wall_s = static_cast<double>(t1 - t0) / 1e9;
  r.iops = wall_s > 0 ? static_cast<double>(per_thread) * n / wall_s : 0.0;
  r.p50 = hist.percentile(0.50);
  r.p99 = hist.percentile(0.99);
  r.errors = errors.load();
  return r;
}

void run_shard_sweep(const HarnessConfig& cfg, Telemetry& telemetry) {
  if (cfg.shards.empty()) return;

  print_header(
      "Sharded StoragePool scaling (fixed ~14-device budget, mixed 4K "
      "random)",
      "Each point reshapes the same device budget: 1 shard x p13 (13 "
      "devices), 2 x p7 (14), 3 x p5 (15). " +
          std::to_string(cfg.threads) +
          " submitters issue synchronous routed ops; every device "
          "transfer pays " +
          std::to_string(cfg.writer_disk_latency_us) +
          "us injected service latency. Gains come from independent "
          "per-shard pipelines and journals, not extra hardware.");

  TablePrinter table({"shards", "prime", "devices", "IOPS", "scaling",
                      "p50(us)", "p99(us)", "errs"});
  double base_iops = 0.0;
  for (int shards : cfg.shards) {
    const int prime = shard_sweep_prime(shards);
    const int devices = shards * prime;
    obs::Histogram hist(obs::latency_fine_bounds_ns());
    SweepResult r = run_shard_sweep_point(cfg, shards, prime, hist);
    if (base_iops <= 0.0) base_iops = r.iops;
    const double scaling = base_iops > 0 ? r.iops / base_iops : 0.0;
    table.add_row({std::to_string(shards), std::to_string(prime),
                   std::to_string(devices), format_double(r.iops, 0),
                   format_double(scaling, 2) + "x", format_us(r.p50),
                   format_us(r.p99), std::to_string(r.errors)});

    obs::Labels cell = {{"shards", std::to_string(shards)},
                        {"prime", std::to_string(prime)},
                        {"devices", std::to_string(devices)}};
    telemetry.add("pool_mixed_4k_iops", r.iops, cell);
    telemetry.add("pool_p50_ns", r.p50, cell);
    telemetry.add("pool_p99_ns", r.p99, cell);
    telemetry.add("pool_iops_scaling_x", scaling, cell);
  }
  table.print(std::cout);

  // Online capacity add: restripe rate with no injected device latency —
  // the raw background-migration bandwidth of the chunk copier.
  {
    auto pool = make_sweep_pool(3, shard_sweep_prime(3), /*latency_us=*/0);
    const int64_t moved_bytes =
        pool->capacity();  // 3 shards' chunks re-placed across 4
    const int64_t t0 = now_ns();
    pool->add_shard();
    const bool ok = pool->wait_for_restripe();
    const int64_t t1 = now_ns();
    const double wall_s = static_cast<double>(t1 - t0) / 1e9;
    const double mb_s =
        ok && wall_s > 0
            ? static_cast<double>(moved_bytes) / (1024.0 * 1024.0) / wall_s
            : 0.0;
    obs::Labels cell = {{"shards_before", "3"},
                        {"shards_after", "4"},
                        {"prime", "5"}};
    telemetry.add("pool_restripe_mb_s", mb_s, cell);
    std::cout << "\nOnline capacity add (3 -> 4 shards, p5, mem backend, "
                 "no injected latency): restriped "
              << format_double(static_cast<double>(moved_bytes) /
                                   (1024.0 * 1024.0),
                               1)
              << " MiB at " << format_double(mb_s, 0) << " MiB/s\n";
  }

  std::cout << "\nReading the table: IOPS should rise with shard count "
               "while injected device waits dominate — the budget is "
               "flat, but each shard brings its own pipeline, journal, "
               "and stripe locks, so independent ops stop contending.\n";
}

}  // namespace

int main(int argc, char** argv) {
  Telemetry telemetry("bench_load_harness", argc, argv);
  HarnessConfig cfg = parse_flags(argc, argv);

  print_header(
      "Open-loop tail-latency harness (dcode p=7, 64 stripes, 4KiB elements)",
      "Poisson arrivals at fixed offered rates; latency measured from the "
      "intended arrival (coordinated-omission-free). Percentiles are "
      "interpolated from the fine log-linear ladder.");

  TablePrinter table({"backend", "workload", "state", "offered/s", "achieved/s",
                      "p50(us)", "p90(us)", "p99(us)", "p999(us)", "max(us)",
                      "errs"});
  uint64_t seed = 0x10AD5EED;
  for (const auto& backend : cfg.backends) {
    for (const auto& workload : cfg.workloads) {
      for (const auto& state : cfg.states) {
        for (double rate : cfg.rates) {
          auto array = make_array(backend, state);
          auto ops = build_ops(workload, cfg.ops, rate, array->capacity(),
                               array->element_size(), seed++);
          CellResult r = run_cell(*array, ops, cfg.threads);
          if (state == "rebuilding") {
            // Unthrottle so teardown doesn't wait out the throttle.
            array->set_rebuild_rate(0.0);
            array->wait_for_rebuild();
          }

          table.add_row({backend, workload, state, format_double(rate, 0),
                         format_double(r.achieved_ops_s, 0), format_us(r.p50),
                         format_us(r.p90), format_us(r.p99), format_us(r.p999),
                         format_us(r.max), std::to_string(r.errors)});

          obs::Labels cell = {{"backend", backend},
                              {"workload", workload},
                              {"state", state},
                              {"rate_ops_s", format_double(rate, 0)}};
          telemetry.add("latency_p50_ns", r.p50, cell);
          telemetry.add("latency_p90_ns", r.p90, cell);
          telemetry.add("latency_p99_ns", r.p99, cell);
          telemetry.add("latency_p999_ns", r.p999, cell);
          telemetry.add("latency_max_ns", r.max, cell);
          telemetry.add("latency_mean_ns", r.mean, cell);
          telemetry.add("offered_ops_per_s", rate, cell);
          telemetry.add("achieved_ops_per_s", r.achieved_ops_s, cell);
          telemetry.add("op_errors", static_cast<double>(r.errors), cell);
        }
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nReading the table: a cell whose achieved/s falls short of "
               "offered/s is saturated — its percentiles measure queueing "
               "under overload, not service latency. Degraded cells pay "
               "reconstruction reads; rebuilding cells additionally contend "
               "with the background worker's stripe locks.\n";

  run_writer_sweep(cfg, telemetry);
  run_shard_sweep(cfg, telemetry);

  telemetry.finish();
  return 0;
}

// Rebuild-time model: how long does a single-disk rebuild take per code,
// with conventional vs minimal-read recovery plans, through the disk
// service-time model? Rebuild reads dominate a real array's repair window
// (and the repair window dominates reliability).
//
// The model exposes the classic reads-vs-balance trade-off: the
// minimal-READ plan often LENGTHENS the window, because its savings come
// from concentrating reads on overlapping equations — uneven per-disk
// load and broken sequential runs — while the conventional plan reads
// more elements in longer merged runs spread evenly. (This is exactly why
// the load-balanced variants in the single-failure-recovery literature
// exist.) A second genuine effect: D-Code rebuilds faster than X-Code
// under either plan despite Theorem-1-identical read *counts*, because
// its horizontal groups are contiguous row-major runs that merge into
// single positioning delays.
#include <atomic>
#include <chrono>
#include <cstring>
#include <iostream>
#include <thread>

#include "bench_common.h"
#include "raid/raid6_array.h"
#include "raid/recovery.h"
#include "sim/disk_model.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace dcode;
using namespace dcode::bench;

namespace {

// Model the reads of one stripe's recovery plan; writes to the
// replacement disk happen in parallel and are sequential, so reads bound
// the time.
double plan_time_ms(const raid::RecoveryPlan& plan,
                    const sim::DiskModelParams& params) {
  raid::IoPlan io;
  for (const codes::Element& e : plan.reads) {
    io.accesses.push_back(raid::IoAccess{0, e, e.col, false});
  }
  return sim::plan_service_time_ms(io, params);
}

// Runtime counterpart: wall-clock single-disk rebuild of a real
// Raid6Array per device backend. The modeled numbers above rank plans;
// this measures the full engine path (batched reads, XOR folds, batched
// writes onto the replacement) against RAM and against real files.
double measure_runtime_rebuild_ms(const std::string& backend) {
  const size_t esize = 16 * 1024;
  const int64_t stripes = 32;
  raid::ArrayOptions opts;
  opts.device_factory = backend_device_factory(backend);
  raid::Raid6Array array(codes::make_layout("dcode", 11), esize, stripes, 0,
                         nullptr, std::move(opts));
  Pcg32 rng(0x9EBD);
  std::vector<uint8_t> blob(static_cast<size_t>(array.capacity()));
  rng.fill_bytes(blob.data(), blob.size());
  array.write(0, blob);

  array.fail_disk(2);
  array.replace_disk(2);
  auto t0 = std::chrono::steady_clock::now();
  array.rebuild();
  auto t1 = std::chrono::steady_clock::now();
  DCODE_CHECK(array.scrub() == 0, "rebuild left inconsistent stripes");
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// Self-healing path: fail a disk under live foreground reads, let the
// automatic spare promotion + background rebuild run at a given throttle,
// and measure both the rebuild window and the read throughput the
// foreground sustained inside it. Every read is verified against the
// seeded content — the "zero failed reads" invariant is checked, not
// assumed.
struct BackgroundRebuildSample {
  double rebuild_ms = 0.0;
  double foreground_mb_s = 0.0;
};

BackgroundRebuildSample measure_background_rebuild(
    double rate_stripes_per_sec) {
  const size_t esize = 8 * 1024;
  const int64_t stripes = 48;
  raid::ArrayOptions opts;
  opts.background_rebuild = true;
  opts.rebuild_rate_stripes_per_sec = rate_stripes_per_sec;
  opts.rebuild_burst_stripes = 4.0;
  raid::Raid6Array array(codes::make_layout("dcode", 11), esize, stripes, 0,
                         nullptr, std::move(opts));
  array.add_hot_spares(1);
  Pcg32 rng(0xBAC6);
  std::vector<uint8_t> blob(static_cast<size_t>(array.capacity()));
  rng.fill_bytes(blob.data(), blob.size());
  array.write(0, blob);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> fg_bytes{0};
  std::thread reader([&] {
    const size_t chunk = 128 * 1024;
    std::vector<uint8_t> out(chunk);
    Pcg32 r(0xF06E);
    while (!stop.load(std::memory_order_relaxed)) {
      const int64_t off = static_cast<int64_t>(r.next_below(
          static_cast<uint32_t>(array.capacity() - chunk)));
      array.read(off, out);
      DCODE_CHECK(std::memcmp(out.data(), blob.data() + off, chunk) == 0,
                  "foreground read returned wrong data during rebuild");
      fg_bytes.fetch_add(static_cast<int64_t>(chunk),
                         std::memory_order_relaxed);
    }
  });

  const auto t0 = std::chrono::steady_clock::now();
  array.fail_disk(3);  // spare auto-promotes, background rebuild starts
  const int64_t bytes_at_fail = fg_bytes.load(std::memory_order_relaxed);
  DCODE_CHECK(array.wait_for_rebuild(), "background rebuild did not finish");
  const auto t1 = std::chrono::steady_clock::now();
  const int64_t window_bytes =
      fg_bytes.load(std::memory_order_relaxed) - bytes_at_fail;
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  DCODE_CHECK(array.scrub() == 0, "rebuild left inconsistent stripes");

  BackgroundRebuildSample s;
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  s.rebuild_ms = secs * 1000.0;
  s.foreground_mb_s =
      static_cast<double>(window_bytes) / secs / (1024.0 * 1024.0);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  Telemetry telemetry("bench_rebuild_time", argc, argv);
  sim::DiskModelParams params;
  print_header("Single-disk rebuild time per stripe (modeled ms)",
               "reads bound rebuild; averaged over every failed-disk case.");

  TablePrinter table({"code", "p", "conventional-ms", "minimal-ms",
                      "conv/min time"});
  for (const auto& name : codes::all_code_names()) {
    for (int p : {7, 13}) {
      auto layout = codes::make_layout(name, p);
      Accumulator conv, opt;
      for (int f = 0; f < layout->cols(); ++f) {
        conv.add(plan_time_ms(
            raid::plan_single_disk_recovery(
                *layout, f, raid::RecoveryStrategy::kConventional),
            params));
        opt.add(plan_time_ms(
            raid::plan_single_disk_recovery(
                *layout, f, raid::RecoveryStrategy::kMinimalReads),
            params));
      }
      telemetry.add("rebuild_ms_per_stripe", conv.mean(),
                    {{"code", name},
                     {"p", std::to_string(p)},
                     {"strategy", "conventional"}});
      telemetry.add("rebuild_ms_per_stripe", opt.mean(),
                    {{"code", name},
                     {"p", std::to_string(p)},
                     {"strategy", "minimal_reads"}});
      table.add_row({name, std::to_string(p), format_double(conv.mean(), 2),
                     format_double(opt.mean(), 2),
                     format_double(conv.mean() / opt.mean(), 3) + "x"});
    }
  }
  table.print(std::cout);

  std::cout << "\nObservations: minimal-read plans trade balance and "
               "sequentiality for count, so ratios below 1 are expected — "
               "use the conventional plan when wall-clock matters and the "
               "minimal plan when surviving-disk wear matters. D-Code "
               "beats X-Code under both plans (contiguous recovery "
               "runs), even though Theorem 1 makes their read counts "
               "identical.\n";

  std::cout << "\n-- Runtime: single-disk rebuild wall time per device "
               "backend (dcode, p=11, 32 stripes) --\n";
  TablePrinter rt({"backend", "rebuild-ms"});
  for (const std::string& backend : runtime_backends()) {
    double ms = measure_runtime_rebuild_ms(backend);
    rt.add_row({backend, format_double(ms, 1)});
    telemetry.add("runtime_rebuild_ms", ms,
                  {{"code", "dcode"}, {"p", "11"}, {"backend", backend}});
  }
  rt.print(std::cout);

  std::cout << "\n-- Runtime: background rebuild under live foreground "
               "reads (dcode, p=11, 48 stripes, hot spare) --\n"
               "Disk 3 fails mid-workload; the spare promotes "
               "automatically and the token-bucket throttle paces the "
               "rebuild while a reader thread hammers verified random "
               "reads.\n";
  struct ThrottleSetting {
    double rate;
    const char* label;
  };
  const ThrottleSetting throttles[] = {
      {0.0, "unlimited"}, {1500.0, "1500"}, {400.0, "400"}};
  TablePrinter bg({"throttle (stripes/s)", "rebuild-ms", "foreground-MB/s"});
  for (const ThrottleSetting& t : throttles) {
    BackgroundRebuildSample s = measure_background_rebuild(t.rate);
    bg.add_row({t.label, format_double(s.rebuild_ms, 1),
                format_double(s.foreground_mb_s, 0)});
    obs::Labels cell = {{"code", "dcode"}, {"p", "11"}, {"throttle", t.label}};
    telemetry.add("background_rebuild_ms", s.rebuild_ms, cell);
    telemetry.add("foreground_read_mb_s_during_rebuild", s.foreground_mb_s,
                  cell);
  }
  bg.print(std::cout);
  std::cout << "\nObservations: the throttle bounds repair bandwidth, so "
               "tighter settings lengthen the rebuild window roughly as "
               "stripes/rate while foreground throughput recovers — the "
               "classic repair-speed vs. service-quality dial.\n";

  telemetry.finish();
  return 0;
}

// Randomized lifecycle fuzzing: long random sequences of writes, reads,
// failures, replacements, rebuilds, and scrubs against a shadow byte
// model, across every code. Any divergence between the array and the
// shadow — or any scrub inconsistency while healthy — is a bug.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "codes/registry.h"
#include "raid/raid6_array.h"
#include "util/rng.h"

namespace dcode::raid {
namespace {

class LifecycleFuzz
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Runs, LifecycleFuzz,
    ::testing::Combine(::testing::Values("dcode", "xcode", "rdp", "evenodd",
                                         "hcode", "hdp", "pcode", "liberation"),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(LifecycleFuzz, ArrayNeverDivergesFromShadow) {
  const auto& [name, seed] = GetParam();
  Pcg32 rng(seed * 7919);

  Raid6Array array(codes::make_layout(name, 7), /*element_size=*/128,
                   /*stripes=*/4, /*threads=*/2);
  std::vector<uint8_t> shadow(static_cast<size_t>(array.capacity()), 0);
  const int disks = array.layout().cols();

  std::vector<int> failed;  // disks currently failed or awaiting rebuild
  int rebuild_pending = 0;

  for (int step = 0; step < 120; ++step) {
    switch (rng.next_below(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // random write
        int64_t off = static_cast<int64_t>(
            rng.next_u64() % static_cast<uint64_t>(array.capacity() - 1));
        size_t len = 1 + rng.next_below(static_cast<uint32_t>(std::min<int64_t>(
                             2000, array.capacity() - off)));
        std::vector<uint8_t> patch(len);
        rng.fill_bytes(patch.data(), len);
        array.write(off, patch);
        std::copy(patch.begin(), patch.end(),
                  shadow.begin() + static_cast<ptrdiff_t>(off));
        break;
      }
      case 4:
      case 5:
      case 6: {  // random read + verify
        int64_t off = static_cast<int64_t>(
            rng.next_u64() % static_cast<uint64_t>(array.capacity() - 1));
        size_t len = 1 + rng.next_below(static_cast<uint32_t>(std::min<int64_t>(
                             2000, array.capacity() - off)));
        std::vector<uint8_t> out(len);
        array.read(off, out);
        ASSERT_TRUE(std::equal(out.begin(), out.end(),
                               shadow.begin() + static_cast<ptrdiff_t>(off)))
            << name << " diverged at step " << step;
        break;
      }
      case 7: {  // fail a disk if tolerance allows
        if (static_cast<int>(failed.size()) + rebuild_pending < 2) {
          int d = static_cast<int>(rng.next_below(static_cast<uint32_t>(disks)));
          if (std::find(failed.begin(), failed.end(), d) == failed.end() &&
              !array.disk(d).failed()) {
            array.fail_disk(d);
            failed.push_back(d);
          }
        }
        break;
      }
      case 8: {  // replace + rebuild everything pending
        for (int d : failed) {
          array.replace_disk(d);
        }
        if (!failed.empty()) {
          array.rebuild();
          failed.clear();
        }
        break;
      }
      case 9: {  // scrub when healthy
        if (failed.empty()) {
          ASSERT_EQ(array.scrub(), 0) << name << " at step " << step;
        }
        break;
      }
    }
  }

  // Repair and final full verification.
  for (int d : failed) array.replace_disk(d);
  if (!failed.empty()) array.rebuild();
  std::vector<uint8_t> out(shadow.size());
  array.read(0, out);
  EXPECT_EQ(out, shadow);
  EXPECT_EQ(array.scrub(), 0);
}

}  // namespace
}  // namespace dcode::raid

// Crash interactions with repair: power loss during rebuild and during
// journal recovery must leave the array repairable after restart.
#include <gtest/gtest.h>

#include <vector>

#include "codes/registry.h"
#include "raid/journal.h"
#include "raid/raid6_array.h"
#include "util/rng.h"

namespace dcode::raid {
namespace {

TEST(CrashDuringRebuild, RestartAndRerunCompletes) {
  Raid6Array array(codes::make_layout("dcode", 7), 256, 8, 1);
  Pcg32 rng(1);
  std::vector<uint8_t> blob(static_cast<size_t>(array.capacity()));
  rng.fill_bytes(blob.data(), blob.size());
  array.write(0, blob);

  array.fail_disk(3);
  array.replace_disk(3);
  array.inject_power_loss_after(10);  // dies partway through the rebuild
  EXPECT_THROW(array.rebuild(), PowerLossError);
  EXPECT_TRUE(array.crashed());

  array.restart();
  // The disk is still marked for rebuild; rerunning finishes the job.
  array.rebuild();
  EXPECT_EQ(array.scrub(), 0);
  std::vector<uint8_t> out(blob.size());
  array.read(0, out);
  EXPECT_EQ(out, blob);
}

TEST(CrashDuringRebuild, TwoDiskRebuildInterrupted) {
  Raid6Array array(codes::make_layout("xcode", 7), 256, 8, 2);
  Pcg32 rng(2);
  std::vector<uint8_t> blob(static_cast<size_t>(array.capacity()));
  rng.fill_bytes(blob.data(), blob.size());
  array.write(0, blob);

  array.fail_disk(1);
  array.fail_disk(5);
  array.replace_disk(1);
  array.replace_disk(5);
  array.inject_power_loss_after(25);
  EXPECT_THROW(array.rebuild(), PowerLossError);
  array.restart();
  array.rebuild();
  EXPECT_EQ(array.scrub(), 0);
  std::vector<uint8_t> out(blob.size());
  array.read(0, out);
  EXPECT_EQ(out, blob);
}

TEST(CrashDuringJournalRecovery, SecondRecoveryPassFinishes) {
  Raid6Array array(codes::make_layout("dcode", 7), 256, 6, 1);
  array.enable_journal();
  Pcg32 rng(3);
  std::vector<uint8_t> blob(static_cast<size_t>(array.capacity()));
  rng.fill_bytes(blob.data(), blob.size());
  array.write(0, blob);

  // Tear a multi-stripe write.
  std::vector<uint8_t> patch(20 * 256);
  rng.fill_bytes(patch.data(), patch.size());
  array.inject_power_loss_after(7);
  EXPECT_THROW(array.write(0, patch), PowerLossError);
  array.restart();

  // Crash again during recovery itself (parity rewrites consume budget).
  if (!array.journal_open_stripes().empty()) {
    array.inject_power_loss_after(3);
    try {
      array.journal_recover();
    } catch (const PowerLossError&) {
    }
    array.restart();
  }
  // A final recovery pass must converge.
  array.journal_recover();
  EXPECT_TRUE(array.journal_open_stripes().empty());
  EXPECT_EQ(array.scrub(), 0);
}

TEST(CrashBudget, ZeroBudgetCrashesImmediately) {
  Raid6Array array(codes::make_layout("dcode", 5), 128, 2, 1);
  Pcg32 rng(4);
  std::vector<uint8_t> patch(128);
  rng.fill_bytes(patch.data(), patch.size());
  array.inject_power_loss_after(0);
  EXPECT_THROW(array.write(0, patch), PowerLossError);
  array.restart();
  EXPECT_NO_THROW(array.write(0, patch));
}

}  // namespace
}  // namespace dcode::raid

// Flight recorder: ring semantics, dump format, the slow-op watchdog
// integration, and a TSan-facing concurrent stress (writers on many
// threads while a reader dumps continuously — the seqlock protocol must
// hold under the race detector).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "codes/registry.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "raid/raid6_array.h"
#include "util/rng.h"

namespace dcode::obs {
namespace {

TEST(FlightRecorder, RecordsAndSnapshotsInOrder) {
  FlightRecorder rec(64);
  rec.record(FlightEventKind::kReadBegin, /*op_id=*/7, /*disk=*/-1, 100, 200);
  rec.record(FlightEventKind::kDiskRead, 7, /*disk=*/3, 4096, 2);
  rec.record(FlightEventKind::kReadEnd, 7, -1, 1234, 0);

  auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kReadBegin);
  EXPECT_EQ(events[0].op_id, 7u);
  EXPECT_EQ(events[0].disk, -1);
  EXPECT_EQ(events[0].a, 100);
  EXPECT_EQ(events[0].b, 200);
  EXPECT_EQ(events[1].kind, FlightEventKind::kDiskRead);
  EXPECT_EQ(events[1].disk, 3);
  EXPECT_EQ(events[2].kind, FlightEventKind::kReadEnd);
  // Timestamps are monotone within one thread's ring.
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_LE(events[1].ts_ns, events[2].ts_ns);
}

TEST(FlightRecorder, RingOverwritesOldestAndKeepsCapacity) {
  FlightRecorder rec(8);  // rounds to 8 slots
  EXPECT_EQ(rec.capacity_per_thread(), 8u);
  for (int i = 0; i < 100; ++i) {
    rec.record(FlightEventKind::kCustom, 0, -1, i, 0);
  }
  auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The survivors are exactly the most recent 8, oldest first.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 92 + static_cast<int64_t>(i));
  }
}

TEST(FlightRecorder, DisabledRecordsNothing) {
  FlightRecorder rec(64);
  rec.set_enabled(false);
  rec.record(FlightEventKind::kCustom, 0, -1, 1, 2);
  EXPECT_TRUE(rec.snapshot().empty());
  rec.set_enabled(true);
  rec.record(FlightEventKind::kCustom, 0, -1, 3, 4);
  EXPECT_EQ(rec.snapshot().size(), 1u);
}

TEST(FlightRecorder, DumpEmitsHeaderAndOneLinePerEvent) {
  FlightRecorder rec(64);
  rec.record(FlightEventKind::kDiskWrite, 42, 5, 8192, 3);
  std::ostringstream os;
  rec.dump(os, "unit_test");
  const std::string text = os.str();
  EXPECT_NE(text.find("\"type\":\"flight_dump\""), std::string::npos);
  EXPECT_NE(text.find("\"reason\":\"unit_test\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"disk_write\""), std::string::npos);
  EXPECT_NE(text.find("\"op\":42"), std::string::npos);
  EXPECT_NE(text.find("\"disk\":5"), std::string::npos);
}

TEST(FlightRecorder, RequestDumpAppendsToPathAndRateLimits) {
  const std::string path = "/tmp/dcode_flight_test.jsonl";
  std::remove(path.c_str());
  FlightRecorder rec(64);
  rec.set_dump_path(path);
  rec.record(FlightEventKind::kCustom, 1, -1, 0, 0);

  EXPECT_TRUE(rec.request_dump("first"));
  // Inside the min interval: suppressed.
  EXPECT_FALSE(rec.request_dump("suppressed"));
  EXPECT_EQ(rec.dumps_written(), 1);

  rec.set_min_dump_interval_ns(0);
  EXPECT_TRUE(rec.request_dump("second"));
  EXPECT_EQ(rec.dumps_written(), 2);

  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"reason\":\"first\""), std::string::npos);
  EXPECT_EQ(text.find("\"reason\":\"suppressed\""), std::string::npos);
  EXPECT_NE(text.find("\"reason\":\"second\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, NoDumpPathMeansNoDump) {
  FlightRecorder rec(64);
  rec.record(FlightEventKind::kCustom, 1, -1, 0, 0);
  EXPECT_FALSE(rec.request_dump("nowhere"));
  EXPECT_EQ(rec.dumps_written(), 0);
}

// Writers on many threads, a reader snapshotting/dumping concurrently.
// Correctness bar: no crash, no torn slot surfacing as a bogus kind, and
// TSan (the suite runs under it in CI) sees no data race.
TEST(FlightRecorder, ConcurrentRecordAndDumpStress) {
  FlightRecorder rec(256);
  std::atomic<bool> stop{false};
  const int writers = 6;
  std::vector<std::thread> threads;
  threads.reserve(writers);
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&rec, &stop, w] {
      uint64_t i = 0;
      // do-while: every writer contributes events even if the reader
      // finishes its rounds before this thread gets scheduled.
      do {
        rec.record(FlightEventKind::kDiskRead, i, w, static_cast<int64_t>(i),
                   1);
        rec.record(FlightEventKind::kDiskWrite, i, w, static_cast<int64_t>(i),
                   2);
        ++i;
      } while (!stop.load(std::memory_order_relaxed));
    });
  }

  int64_t total_seen = 0;
  auto check_events = [&](const std::vector<FlightEvent>& events) {
    total_seen += static_cast<int64_t>(events.size());
    for (const auto& e : events) {
      // Only the two kinds the writers emit can ever surface.
      EXPECT_TRUE(e.kind == FlightEventKind::kDiskRead ||
                  e.kind == FlightEventKind::kDiskWrite)
          << static_cast<int>(e.kind);
      EXPECT_GE(e.disk, 0);
      EXPECT_LT(e.disk, writers);
    }
  };
  for (int round = 0; round < 50; ++round) {
    check_events(rec.snapshot());
    std::ostringstream os;
    rec.dump(os, "stress");
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  // Quiescent pass: with the writers joined, the rings must hold every
  // guarantee the concurrent rounds could only sample.
  check_events(rec.snapshot());
  EXPECT_GT(total_seen, 0);
}

// End-to-end: an array with a (deliberately absurd) slow-op threshold of
// 1ns trips the watchdog on the first op — the slow_ops counter moves
// and the configured dump file appears.
TEST(FlightRecorder, SlowOpWatchdogDumpsThroughTheArray) {
  const std::string path = "/tmp/dcode_flight_slowop_test.jsonl";
  std::remove(path.c_str());
  // The global recorder is process-wide state; restore its path after.
  auto& rec = FlightRecorder::global();
  const std::string old_path = rec.dump_path();

  obs::Registry reg;
  raid::ArrayOptions opts;
  opts.slow_op_threshold_ns = 1;
  opts.flight_dump_path = path;
  raid::Raid6Array array(codes::make_layout("dcode", 5), 64, 2, 1, &reg,
                         std::move(opts));
  std::vector<uint8_t> data(static_cast<size_t>(array.capacity()), 0x5A);
  array.write(0, data);

  EXPECT_GT(reg.counter("raid.slow_ops").value(), 0);
  EXPECT_GT(rec.dumps_written(), 0);
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "slow-op breach did not write " << path;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"reason\":\"slow_op\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"slow_op\""), std::string::npos);

  rec.set_dump_path(old_path);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dcode::obs

// Tests for code shortening (arbitrary disk counts over the horizontal
// families): structure, exhaustive MDS of shortened layouts, end-to-end
// array operation, and rejection of the unshortenable vertical families.
#include <gtest/gtest.h>

#include <tuple>

#include "codes/decoder.h"
#include "codes/encoder.h"
#include "codes/registry.h"
#include "codes/shortened.h"
#include "raid/raid6_array.h"
#include "util/rng.h"

namespace dcode::codes {
namespace {

TEST(Shortened, DroppableColumnCounts) {
  // Horizontal families: every data column is droppable. Vertical
  // families (parity on every disk): none are.
  EXPECT_EQ(droppable_columns(*make_layout("rdp", 7)), 6);
  EXPECT_EQ(droppable_columns(*make_layout("evenodd", 7)), 7);
  EXPECT_EQ(droppable_columns(*make_layout("hcode", 7)), 1);  // column 0
  EXPECT_EQ(droppable_columns(*make_layout("dcode", 7)), 0);
  EXPECT_EQ(droppable_columns(*make_layout("xcode", 7)), 0);
  EXPECT_EQ(droppable_columns(*make_layout("hdp", 7)), 0);
  EXPECT_EQ(droppable_columns(*make_layout("pcode", 7)), 0);
}

TEST(Shortened, StructurePreservedAfterRemap) {
  auto base = make_layout("rdp", 11);  // 12 disks
  ShortenedLayout l(*base, 4);         // down to 8
  EXPECT_EQ(l.cols(), 8);
  EXPECT_EQ(l.rows(), base->rows());
  EXPECT_EQ(l.name(), "rdp-short");
  EXPECT_EQ(l.dropped_columns(), 4);
  // Parity disks slid left but are still the last two columns.
  EXPECT_EQ(l.parity_elements_on_disk(6), l.rows());
  EXPECT_EQ(l.parity_elements_on_disk(7), l.rows());
  for (int d = 0; d < 6; ++d) EXPECT_EQ(l.parity_elements_on_disk(d), 0);
  // Fewer data elements, same parity count.
  EXPECT_EQ(l.data_count(), base->data_count() - 4 * base->rows());
  EXPECT_EQ(l.parity_count(), base->parity_count());
}

TEST(Shortened, MakeShortenedHitsExactDiskCounts) {
  for (int disks = 6; disks <= 16; ++disks) {
    auto l = make_shortened_layout("evenodd", disks);
    EXPECT_EQ(l->cols(), disks) << "evenodd " << disks;
  }
}

TEST(Shortened, VerticalFamiliesRejected) {
  EXPECT_THROW((void)make_shortened_layout("dcode", 8), std::logic_error);
  EXPECT_THROW((void)make_shortened_layout("xcode", 9), std::logic_error);
  EXPECT_THROW((void)make_shortened_layout("hdp", 8), std::logic_error);
  EXPECT_THROW((void)make_shortened_layout("pcode", 9), std::logic_error);
}

TEST(Shortened, ExactPrimeFitNeedsNoShortening) {
  auto l = make_shortened_layout("dcode", 7);  // 7 is prime: exact fit
  EXPECT_EQ(l->name(), "dcode");
  EXPECT_EQ(l->cols(), 7);
}

class ShortenedMds : public ::testing::TestWithParam<std::tuple<std::string, int>> {};
INSTANTIATE_TEST_SUITE_P(
    Families, ShortenedMds,
    ::testing::Combine(::testing::Values("rdp", "evenodd"),
                       ::testing::Values(6, 8, 9, 10, 12)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_d" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(ShortenedMds, EveryDoubleDiskFailureDecodes) {
  auto layout = make_shortened_layout(std::get<0>(GetParam()),
                                      std::get<1>(GetParam()));
  Pcg32 rng(9);
  Stripe s(*layout, 16);
  s.randomize_data(rng);
  encode_stripe(s);
  for (int f1 = 0; f1 < layout->cols(); ++f1) {
    for (int f2 = f1 + 1; f2 < layout->cols(); ++f2) {
      Stripe broken = s.clone();
      broken.erase_disk(f1);
      broken.erase_disk(f2);
      int disks[2] = {f1, f2};
      auto lost = elements_of_disks(*layout, disks);
      auto res = hybrid_decode(broken, lost);
      ASSERT_TRUE(res.success) << f1 << "," << f2;
      ASSERT_TRUE(broken.equals(s)) << f1 << "," << f2;
    }
  }
}

TEST(Shortened, ArrayEndToEndOnNonPrimeDiskCount) {
  raid::Raid6Array array(make_shortened_layout("evenodd", 10), 256, 4, 2);
  Pcg32 rng(10);
  std::vector<uint8_t> blob(static_cast<size_t>(array.capacity()));
  rng.fill_bytes(blob.data(), blob.size());
  array.write(0, blob);
  array.fail_disk(1);
  array.fail_disk(6);
  std::vector<uint8_t> out(blob.size());
  array.read(0, out);
  EXPECT_EQ(out, blob);
  array.replace_disk(1);
  array.replace_disk(6);
  array.rebuild();
  EXPECT_EQ(array.scrub(), 0);
}

}  // namespace
}  // namespace dcode::codes

// Unit tests for GF(2^w) arithmetic, matrices, and bit-matrix schedules.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gf/bitmatrix.h"
#include "gf/gf.h"
#include "gf/gf_matrix.h"
#include "util/rng.h"

namespace dcode::gf {
namespace {

class FieldAxioms : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Widths, FieldAxioms, ::testing::Values(4, 8, 16));

TEST_P(FieldAxioms, MultiplicationGroupStructure) {
  const GaloisField& f = field_for(GetParam());
  // Sample pairs for w=16 (full cross product is 4G ops); exhaustive for
  // smaller fields.
  Pcg32 rng(1);
  const uint32_t n = f.size();
  auto sample = [&](uint32_t) {
    return GetParam() == 16 ? rng.next_below(n) : 0u;
  };
  const int iters = GetParam() == 16 ? 20000 : static_cast<int>(n * n);
  for (int i = 0; i < iters; ++i) {
    uint32_t a, b;
    if (GetParam() == 16) {
      a = sample(0);
      b = sample(0);
    } else {
      a = static_cast<uint32_t>(i) / n;
      b = static_cast<uint32_t>(i) % n;
    }
    uint32_t ab = f.mul(a, b);
    ASSERT_LT(ab, n);
    ASSERT_EQ(ab, f.mul(b, a));            // commutative
    ASSERT_EQ(f.mul(a, 1), a);             // identity
    ASSERT_EQ(f.mul(a, 0), 0u);            // annihilator
    if (a && b) {
      ASSERT_EQ(f.div(ab, b), a);  // division inverts
    }
  }
}

TEST_P(FieldAxioms, EveryNonzeroElementHasInverse) {
  const GaloisField& f = field_for(GetParam());
  // Exhaustive for w=4/8; sampled for w=16.
  Pcg32 rng(2);
  int iters = GetParam() == 16 ? 5000 : static_cast<int>(f.size()) - 1;
  for (int i = 1; i <= iters; ++i) {
    uint32_t a = GetParam() == 16 ? 1 + rng.next_below(f.size() - 1)
                                  : static_cast<uint32_t>(i);
    ASSERT_EQ(f.mul(a, f.inverse(a)), 1u) << a;
  }
}

TEST_P(FieldAxioms, Distributivity) {
  const GaloisField& f = field_for(GetParam());
  Pcg32 rng(3);
  for (int i = 0; i < 5000; ++i) {
    uint32_t a = rng.next_below(f.size());
    uint32_t b = rng.next_below(f.size());
    uint32_t c = rng.next_below(f.size());
    ASSERT_EQ(f.mul(a, b ^ c), f.mul(a, b) ^ f.mul(a, c));
    ASSERT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
  }
}

TEST_P(FieldAxioms, ExpLogRoundTrip) {
  const GaloisField& f = field_for(GetParam());
  for (uint32_t e = 0; e < std::min<uint32_t>(f.size() - 1, 4096); ++e) {
    uint32_t v = f.exp(e);
    ASSERT_EQ(f.log(v), e);
  }
}

TEST_P(FieldAxioms, PowMatchesIteratedMul) {
  const GaloisField& f = field_for(GetParam());
  Pcg32 rng(4);
  for (int i = 0; i < 200; ++i) {
    uint32_t a = rng.next_below(f.size());
    uint32_t acc = 1;
    for (uint32_t e = 0; e < 16; ++e) {
      ASSERT_EQ(f.pow(a, e), acc) << "a=" << a << " e=" << e;
      acc = f.mul(acc, a);
    }
  }
}

TEST(Field, PrimitiveElementGeneratesFullGroup) {
  // Verified at table-build time by DCODE_ASSERT, but check directly too.
  const GaloisField& f = gf8();
  std::vector<bool> seen(256, false);
  uint32_t v = 1;
  for (int i = 0; i < 255; ++i) {
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
    v = f.mul(v, 2);
  }
  EXPECT_EQ(v, 1u);
}

TEST(Field, RejectsUnsupportedWidth) {
  EXPECT_THROW(GaloisField(5), std::logic_error);
  EXPECT_THROW(field_for(32), std::logic_error);
}

class RegionMul : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Widths, RegionMul, ::testing::Values(4, 8, 16));

TEST_P(RegionMul, MatchesScalarMul) {
  const GaloisField& f = field_for(GetParam());
  Pcg32 rng(5);
  const size_t len = 64;  // even, works for w=16
  std::vector<uint8_t> src(len);
  rng.fill_bytes(src.data(), len);
  for (uint32_t c : {0u, 1u, 2u, 3u, f.max_element()}) {
    std::vector<uint8_t> dst(len, 0xEE);
    f.mul_region(dst.data(), src.data(), c, len, /*accumulate=*/false);
    // Validate element-wise against scalar mul.
    if (f.w() == 8) {
      for (size_t i = 0; i < len; ++i)
        ASSERT_EQ(dst[i], f.mul(src[i], c));
    } else if (f.w() == 4) {
      for (size_t i = 0; i < len; ++i) {
        ASSERT_EQ(dst[i] & 0x0f, static_cast<int>(f.mul(src[i] & 0x0f, c)));
        ASSERT_EQ((dst[i] >> 4) & 0x0f,
                  static_cast<int>(f.mul((src[i] >> 4) & 0x0f, c)));
      }
    } else {
      for (size_t i = 0; i < len; i += 2) {
        uint32_t s = src[i] | (src[i + 1] << 8);
        uint32_t d = dst[i] | (dst[i + 1] << 8);
        ASSERT_EQ(d, f.mul(s, c));
      }
    }
  }
}

TEST_P(RegionMul, AccumulateXors) {
  const GaloisField& f = field_for(GetParam());
  Pcg32 rng(6);
  const size_t len = 32;
  std::vector<uint8_t> src(len), base(len);
  rng.fill_bytes(src.data(), len);
  rng.fill_bytes(base.data(), len);
  uint32_t c = 7 % f.size();

  std::vector<uint8_t> plain(len);
  f.mul_region(plain.data(), src.data(), c, len, false);
  std::vector<uint8_t> acc = base;
  f.mul_region(acc.data(), src.data(), c, len, true);
  for (size_t i = 0; i < len; ++i)
    ASSERT_EQ(acc[i], static_cast<uint8_t>(base[i] ^ plain[i]));
}

// ---------- matrices ----------

TEST(Matrix, IdentityMultiplication) {
  const GaloisField& f = gf8();
  Pcg32 rng(7);
  Matrix m(4, 4);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) m.at(r, c) = rng.next_below(256);
  Matrix i4 = Matrix::identity(4);
  EXPECT_EQ(multiply(f, m, i4), m);
  EXPECT_EQ(multiply(f, i4, m), m);
}

TEST(Matrix, InvertRoundTrip) {
  const GaloisField& f = gf8();
  Pcg32 rng(8);
  for (int n : {1, 2, 3, 5, 8}) {
    // Random matrices over GF(256) are invertible w.h.p.; retry otherwise.
    for (int attempt = 0; attempt < 10; ++attempt) {
      Matrix m(n, n);
      for (int r = 0; r < n; ++r)
        for (int c = 0; c < n; ++c) m.at(r, c) = rng.next_below(256);
      Matrix inv;
      if (!invert(f, m, &inv)) continue;
      EXPECT_EQ(multiply(f, m, inv), Matrix::identity(n));
      EXPECT_EQ(multiply(f, inv, m), Matrix::identity(n));
      break;
    }
  }
}

TEST(Matrix, SingularDetected) {
  const GaloisField& f = gf8();
  Matrix m(2, 2);
  m.at(0, 0) = 3;
  m.at(0, 1) = 5;
  m.at(1, 0) = 3;
  m.at(1, 1) = 5;  // duplicate row
  Matrix inv;
  EXPECT_FALSE(invert(f, m, &inv));
}

// Every square submatrix of [I; C] being invertible == MDS. Check all
// k x k combinations for small k, m.
void check_generator_mds(const GaloisField& f, const Matrix& coding, int k,
                         int m) {
  Matrix gen(k + m, k);
  for (int j = 0; j < k; ++j) gen.at(j, j) = 1;
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < k; ++j) gen.at(k + i, j) = coding.at(i, j);

  std::vector<int> rows(static_cast<size_t>(k));
  // Enumerate all k-subsets of k+m rows via bitmask (k+m <= 12 here).
  for (uint32_t mask = 0; mask < (1u << (k + m)); ++mask) {
    if (__builtin_popcount(mask) != k) continue;
    Matrix sub(k, k);
    int r = 0;
    for (int i = 0; i < k + m; ++i) {
      if (!(mask & (1u << i))) continue;
      for (int j = 0; j < k; ++j) sub.at(r, j) = gen.at(i, j);
      ++r;
    }
    Matrix inv;
    EXPECT_TRUE(invert(f, sub, &inv)) << "singular submatrix, mask=" << mask;
  }
}

TEST(Matrix, CauchyGeneratorIsMds) {
  const GaloisField& f = gf8();
  for (int k : {2, 4, 6}) {
    for (int m : {2, 3}) {
      check_generator_mds(f, cauchy_coding_matrix(f, k, m), k, m);
    }
  }
}

TEST(Matrix, VandermondeGeneratorIsMdsAndSystematic) {
  const GaloisField& f = gf8();
  for (int k : {2, 4, 6}) {
    for (int m : {2, 3}) {
      Matrix c = vandermonde_coding_matrix(f, k, m);
      check_generator_mds(f, c, k, m);
    }
  }
}

TEST(Matrix, CodingMatrixRejectsOversizedField) {
  EXPECT_THROW(cauchy_coding_matrix(gf4(), 10, 10), std::logic_error);
}

// ---------- bit matrices ----------

TEST(BitMatrix, ExpansionMatchesFieldMultiplication) {
  const GaloisField& f = gf8();
  const int w = 8;
  Pcg32 rng(9);
  Matrix m(1, 1);
  m.at(0, 0) = 0x53;
  BitMatrix bm = to_bitmatrix(f, m);
  ASSERT_EQ(bm.rows, w);
  ASSERT_EQ(bm.cols, w);
  // Multiplying a value through the bitmatrix equals field multiplication.
  for (int trial = 0; trial < 64; ++trial) {
    uint32_t x = rng.next_below(256);
    uint32_t y = 0;
    for (int r = 0; r < w; ++r) {
      uint32_t bit = 0;
      for (int c = 0; c < w; ++c) bit ^= bm.at(r, c) & ((x >> c) & 1u);
      y |= bit << r;
    }
    ASSERT_EQ(y, f.mul(0x53, x));
  }
}

TEST(BitMatrix, SmartScheduleNeverCostsMoreThanDumb) {
  const GaloisField& f = gf8();
  for (int k : {4, 6, 10}) {
    Matrix c = cauchy_coding_matrix(f, k, 2);
    BitMatrix bm = to_bitmatrix(f, c);
    auto dumb = dumb_schedule(bm, k, 2, 8);
    auto smart = smart_schedule(bm, k, 2, 8);
    auto xors = [](const std::vector<ScheduleOp>& ops) {
      size_t n = 0;
      for (const auto& op : ops) n += op.assign ? 0 : 1;
      return n;
    };
    EXPECT_LE(xors(smart), xors(dumb)) << "k=" << k;
  }
}

TEST(BitMatrix, SchedulesProduceIdenticalCodingOutput) {
  const GaloisField& f = gf8();
  const int k = 5, m = 2, w = 8;
  Matrix c = cauchy_coding_matrix(f, k, m);
  BitMatrix bm = to_bitmatrix(f, c);
  const size_t size = 512;  // divisible by w

  Pcg32 rng(10);
  std::vector<std::vector<uint8_t>> data(k, std::vector<uint8_t>(size));
  for (auto& d : data) rng.fill_bytes(d.data(), size);
  std::vector<const uint8_t*> dptr;
  for (auto& d : data) dptr.push_back(d.data());

  std::vector<std::vector<uint8_t>> out1(m, std::vector<uint8_t>(size, 1));
  std::vector<std::vector<uint8_t>> out2(m, std::vector<uint8_t>(size, 2));
  std::vector<uint8_t*> p1, p2;
  for (auto& o : out1) p1.push_back(o.data());
  for (auto& o : out2) p2.push_back(o.data());

  apply_schedule(dumb_schedule(bm, k, m, w), dptr, p1, w, size);
  apply_schedule(smart_schedule(bm, k, m, w), dptr, p2, w, size);
  EXPECT_EQ(out1, out2);
}

}  // namespace
}  // namespace dcode::gf

// Request-pipeline tests: the OpQueue's merge pass, the StripeRangeLock
// admission protocol, the StripeLockTable, and the StripePipeline's
// end-to-end ordering contract — any concurrent schedule of submitted
// ops leaves the array bit-identical to a serial array that applied the
// same ops in admission order (the seeded property test at the bottom,
// also run under TSan via the `pipeline` ctest label).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "codes/registry.h"
#include "raid/journal.h"
#include "raid/pipeline.h"
#include "raid/raid6_array.h"
#include "util/rng.h"

namespace dcode::raid {
namespace {

constexpr size_t kElem = 128;

std::vector<uint8_t> random_blob(Pcg32& rng, size_t n) {
  std::vector<uint8_t> v(n);
  rng.fill_bytes(v.data(), n);
  return v;
}

PendingOp make_write(int64_t offset, int64_t len, uint8_t fill) {
  PendingOp op;
  op.is_write = true;
  op.offset = offset;
  op.len = len;
  op.data.assign(static_cast<size_t>(len), fill);
  op.state = std::make_shared<OpState>();
  return op;
}

PendingOp make_read(int64_t offset, int64_t len) {
  PendingOp op;
  op.is_write = false;
  op.offset = offset;
  op.len = len;
  op.state = std::make_shared<OpState>();
  return op;
}

OpQueue::RegisterFn no_reg() {
  return [](uint64_t, int64_t, int64_t, bool) {};
}

const obs::MetricSnapshot& find_metric(const obs::RegistrySnapshot& snap,
                                       const std::string& name) {
  for (const auto& m : snap.metrics)
    if (m.name == name) return m;
  throw std::logic_error("metric not found: " + name);
}

// ---------- OpQueue: merge pass ----------

TEST(OpQueue, MergesAdjacentAndOverlappingWrites) {
  OpQueue q(OpQueue::Options{16, true, 8});
  ASSERT_TRUE(q.push(make_write(100, 50, 1)));   // [100,150)
  ASSERT_TRUE(q.push(make_write(150, 50, 2)));   // adjoins -> [100,200)
  ASSERT_TRUE(q.push(make_write(120, 100, 3)));  // overlaps -> [100,220)
  ASSERT_TRUE(q.push(make_write(90, 20, 4)));    // overlaps -> [90,220)
  OpBatch b;
  ASSERT_TRUE(q.pop_merged(&b, no_reg()));
  EXPECT_TRUE(b.is_write);
  EXPECT_EQ(b.sources.size(), 4u);
  EXPECT_EQ(b.offset, 90);
  EXPECT_EQ(b.end, 220);
  // Admission order preserved inside the batch.
  for (size_t i = 1; i < b.sources.size(); ++i)
    EXPECT_LT(b.sources[i - 1].seq, b.sources[i].seq);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(OpQueue, MergeStopsAtGapAndNeverReordersPastIt) {
  OpQueue q(OpQueue::Options{16, true, 8});
  ASSERT_TRUE(q.push(make_write(0, 10, 1)));    // [0,10)
  ASSERT_TRUE(q.push(make_write(500, 10, 2)));  // gap -> not mergeable
  ASSERT_TRUE(q.push(make_write(10, 10, 3)));   // would adjoin, but queued
                                                // behind the gap op
  OpBatch b;
  ASSERT_TRUE(q.pop_merged(&b, no_reg()));
  EXPECT_EQ(b.sources.size(), 1u);  // merge stopped at the first gap
  ASSERT_TRUE(q.pop_merged(&b, no_reg()));
  EXPECT_EQ(b.sources.size(), 1u);
  EXPECT_EQ(b.offset, 500);
}

TEST(OpQueue, MergeStopsAtReads) {
  OpQueue q(OpQueue::Options{16, true, 8});
  ASSERT_TRUE(q.push(make_write(0, 10, 1)));
  ASSERT_TRUE(q.push(make_read(5, 10)));      // overlapping read: barrier
  ASSERT_TRUE(q.push(make_write(10, 10, 2)));
  OpBatch b;
  ASSERT_TRUE(q.pop_merged(&b, no_reg()));
  EXPECT_EQ(b.sources.size(), 1u);
  ASSERT_TRUE(q.pop_merged(&b, no_reg()));
  EXPECT_FALSE(b.is_write);
}

TEST(OpQueue, MergeRespectsLimit) {
  OpQueue q(OpQueue::Options{16, true, 3});
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(q.push(make_write(i * 10, 10, static_cast<uint8_t>(i))));
  OpBatch b;
  ASSERT_TRUE(q.pop_merged(&b, no_reg()));
  EXPECT_EQ(b.sources.size(), 3u);
  ASSERT_TRUE(q.pop_merged(&b, no_reg()));
  EXPECT_EQ(b.sources.size(), 2u);
}

TEST(OpQueue, MergeDisabledPopsSingles) {
  OpQueue q(OpQueue::Options{16, false, 8});
  ASSERT_TRUE(q.push(make_write(0, 10, 1)));
  ASSERT_TRUE(q.push(make_write(10, 10, 2)));
  OpBatch b;
  ASSERT_TRUE(q.pop_merged(&b, no_reg()));
  EXPECT_EQ(b.sources.size(), 1u);
}

TEST(OpQueue, RegistersTicketInPopOrderUnderTheQueueLock) {
  OpQueue q(OpQueue::Options{16, true, 8});
  ASSERT_TRUE(q.push(make_write(0, 10, 1)));
  ASSERT_TRUE(q.push(make_write(10, 10, 2)));
  std::vector<uint64_t> registered;
  auto reg = [&](uint64_t seq, int64_t, int64_t, bool is_write) {
    registered.push_back(seq);
    EXPECT_TRUE(is_write);
  };
  OpBatch b;
  ASSERT_TRUE(q.pop_merged(&b, reg));
  ASSERT_EQ(registered.size(), 1u);
  EXPECT_EQ(registered[0], b.seq);
  EXPECT_EQ(b.sources.size(), 2u);  // batch seq is the head's
  EXPECT_EQ(b.seq, b.sources.front().seq);
}

TEST(OpQueue, BackpressureBlocksPushUntilPop) {
  OpQueue q(OpQueue::Options{2, true, 8});
  ASSERT_TRUE(q.push(make_read(0, 10)));
  ASSERT_TRUE(q.push(make_read(10, 10)));
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    EXPECT_TRUE(q.push(make_read(20, 10)));
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // still at depth 2
  OpBatch b;
  ASSERT_TRUE(q.pop_merged(&b, no_reg()));
  t.join();
  EXPECT_TRUE(pushed.load());
}

TEST(OpQueue, CloseDrainsThenStops) {
  OpQueue q(OpQueue::Options{16, true, 8});
  ASSERT_TRUE(q.push(make_read(0, 10)));
  q.close();
  EXPECT_FALSE(q.push(make_read(10, 10)));
  OpBatch b;
  EXPECT_TRUE(q.pop_merged(&b, no_reg()));   // drains the queued op
  EXPECT_FALSE(q.pop_merged(&b, no_reg()));  // then reports closed
}

// ---------- StripeRangeLock: admission protocol ----------

TEST(StripeRangeLock, OverlappingWritersSerializeInAdmissionOrder) {
  StripeRangeLock rl;
  rl.register_ticket(1, 0, 2, /*is_write=*/true);
  rl.register_ticket(2, 2, 4, /*is_write=*/true);  // overlaps stripe 2
  rl.acquire(1);
  std::atomic<bool> acquired2{false};
  std::thread t([&] {
    rl.acquire(2);
    acquired2.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired2.load());
  rl.release(1);
  t.join();
  EXPECT_TRUE(acquired2.load());
  rl.release(2);
  EXPECT_EQ(rl.registered(), 0u);
}

TEST(StripeRangeLock, DisjointRangesProceedConcurrently) {
  StripeRangeLock rl;
  rl.register_ticket(1, 0, 1, true);
  rl.register_ticket(2, 5, 6, true);
  rl.acquire(1);
  rl.acquire(2);  // must not block: no overlap
  rl.release(1);
  rl.release(2);
}

TEST(StripeRangeLock, ReadersShareReadersButNotWriters) {
  StripeRangeLock rl;
  rl.register_ticket(1, 0, 3, false);
  rl.register_ticket(2, 1, 2, false);
  rl.acquire(1);
  rl.acquire(2);  // read/read overlap is fine
  rl.register_ticket(3, 1, 1, true);
  std::atomic<bool> acquired3{false};
  std::thread t([&] {
    rl.acquire(3);
    acquired3.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired3.load());  // writer waits for both readers
  rl.release(2);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired3.load());
  rl.release(1);
  t.join();
  rl.release(3);
}

// ---------- StripeLockTable ----------

TEST(StripeLockTable, ConfigurableSlotCountAndModuloSharding) {
  StripeLockTable t(7);
  EXPECT_EQ(t.slot_count(), 7u);
  auto l = t.lock(3);
  EXPECT_TRUE(l.owns_lock());
  auto m = t.lock(4);  // different slot: no deadlock, both held
  EXPECT_TRUE(m.owns_lock());
}

TEST(StripeLockTable, RecordsContendedWaits) {
  obs::Registry reg;
  auto& h = reg.histogram("t.wait_ns", obs::latency_bounds_ns(), {}, "");
  StripeLockTable t(4, &h);
  auto l = t.lock(0);
  std::thread waiter([&] {
    auto w = t.lock(4);  // same slot as stripe 0 (4 % 4)
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  l.unlock();
  waiter.join();
  EXPECT_GE(find_metric(reg.snapshot(), "t.wait_ns").count, 1);
}

// ---------- StripePipeline: end-to-end ----------

Raid6Array make_array(obs::Registry& reg, int64_t stripes = 8,
                      ArrayOptions opts = {}) {
  return Raid6Array(codes::make_layout("dcode", 7), kElem, stripes, 2, &reg,
                    std::move(opts));
}

TEST(StripePipeline, ReadsAndWritesRoundTrip) {
  obs::Registry reg;
  auto array = make_array(reg);
  Pcg32 rng(42);
  auto blob = random_blob(rng, static_cast<size_t>(array.capacity()));
  StripePipeline pipe(array, {.workers = 3, .queue_depth = 32});
  std::vector<OpFuture> futs;
  const int64_t chunk = 1000;
  for (int64_t off = 0; off < array.capacity(); off += chunk) {
    const int64_t n = std::min(chunk, array.capacity() - off);
    futs.push_back(pipe.submit_write(
        off, std::span<const uint8_t>(blob.data() + off,
                                      static_cast<size_t>(n))));
  }
  for (auto& f : futs) f.get();
  std::vector<uint8_t> back(blob.size());
  std::vector<OpFuture> reads;
  for (int64_t off = 0; off < array.capacity(); off += chunk) {
    const int64_t n = std::min(chunk, array.capacity() - off);
    reads.push_back(pipe.submit_read(
        off, std::span<uint8_t>(back.data() + off, static_cast<size_t>(n))));
  }
  pipe.drain();
  for (auto& f : reads) EXPECT_TRUE(f.ready());
  EXPECT_EQ(back, blob);
  EXPECT_EQ(array.scrub(), 0);
  auto snap = reg.snapshot();
  EXPECT_EQ(find_metric(snap, "pipeline.ops_submitted").value,
            find_metric(snap, "pipeline.ops_completed").value);
  EXPECT_EQ(find_metric(snap, "pipeline.queue_depth").value, 0);
}

TEST(StripePipeline, SequenceNumbersFollowSubmissionOrder) {
  obs::Registry reg;
  auto array = make_array(reg);
  StripePipeline pipe(array, {.workers = 2});
  std::vector<uint8_t> d(64, 0xAB);
  auto f1 = pipe.submit_write(0, d);
  auto f2 = pipe.submit_write(0, d);
  auto f3 = pipe.submit_read(0, d);
  EXPECT_LT(f1.sequence(), f2.sequence());
  EXPECT_LT(f2.sequence(), f3.sequence());
  EXPECT_NE(f1.op_id(), f2.op_id());
  pipe.drain();
  EXPECT_GT(f1.latency_ns(), 0);
}

TEST(StripePipeline, ZeroLengthOpsCompleteInline) {
  obs::Registry reg;
  auto array = make_array(reg);
  StripePipeline pipe(array, {.workers = 1});
  std::vector<uint8_t> empty;
  auto f = pipe.submit_write(0, empty);
  EXPECT_TRUE(f.ready());
  f.get();
}

TEST(StripePipeline, OutOfRangeSubmitThrowsSynchronously) {
  obs::Registry reg;
  auto array = make_array(reg);
  StripePipeline pipe(array, {.workers = 1});
  std::vector<uint8_t> d(64);
  EXPECT_THROW(pipe.submit_write(array.capacity(), d), std::logic_error);
  EXPECT_THROW(pipe.submit_read(-1, d), std::logic_error);
}

TEST(StripePipeline, PowerLossSurfacesOnTheFuture) {
  obs::Registry reg;
  auto array = make_array(reg);
  array.enable_journal();
  std::vector<uint8_t> d(256, 0x5A);
  array.write(0, d);
  array.inject_power_loss_after(0);
  StripePipeline pipe(array, {.workers = 1});
  auto f = pipe.submit_write(0, d);
  EXPECT_FALSE(f.wait());
  EXPECT_THROW(f.get(), PowerLossError);
  // The pipeline itself survives; recovery follows the normal protocol.
  array.restart();
  array.journal_recover();
  EXPECT_EQ(array.scrub(), 0);
}

TEST(StripePipeline, MergesQueuedAdjacentWritesBehindABusyWorker) {
  obs::Registry reg;
  auto array = make_array(reg, /*stripes=*/8);
  for (int d = 0; d < array.layout().cols(); ++d)
    array.disk(d).faults().set_latency_ns(10'000'000);  // 10 ms per access
  const int64_t stripe_bytes =
      array.layout().data_count() * static_cast<int64_t>(kElem);
  StripePipeline pipe(array, {.workers = 1, .merge_limit = 8});
  std::vector<uint8_t> d(64, 0x11);
  // Occupy the single worker on stripe 4, then queue four adjacent
  // partial writes on stripe 0: by the time the worker returns they are
  // all queued and must coalesce into one batch.
  auto busy = pipe.submit_write(4 * stripe_bytes, d);
  std::vector<OpFuture> futs;
  for (int i = 0; i < 4; ++i)
    futs.push_back(pipe.submit_write(i * 64, d));
  pipe.drain();
  busy.get();
  for (auto& f : futs) f.get();
  auto snap = reg.snapshot();
  EXPECT_GE(find_metric(snap, "pipeline.writes_merged").value, 3);
  for (int dd = 0; dd < array.layout().cols(); ++dd)
    array.disk(dd).faults().set_latency_ns(0);
  std::vector<uint8_t> back(256);
  array.read(0, back);
  EXPECT_EQ(back, std::vector<uint8_t>(256, 0x11));
}

// ---------- the ordering property test ----------
//
// Seeded generator over deliberately overlapping byte ranges, several
// submitter threads, merging on, several workers. After the fact, the
// array must be bit-identical to a serial array that applied the same
// writes in admission (sequence) order — and every read must equal the
// serial prefix state of its range at its admission point.

struct LoggedOp {
  uint64_t seq = 0;
  bool is_write = false;
  int64_t offset = 0;
  int64_t len = 0;
  std::vector<uint8_t> data;  // payload (write) or observed bytes (read)
};

TEST(StripePipelineProperty, AnyScheduleEqualsSerialAdmissionOrder) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    obs::Registry reg;
    ArrayOptions opts;
    opts.stripe_lock_slots = 16;  // exercise the non-default table too
    auto array = make_array(reg, /*stripes=*/8, opts);
    const int64_t cap = array.capacity();
    Pcg32 seed_rng(seed);
    auto initial = random_blob(seed_rng, static_cast<size_t>(cap));
    array.write(0, initial);

    constexpr int kSubmitters = 3;
    constexpr int kOpsPerSubmitter = 120;
    std::vector<std::vector<LoggedOp>> logs(kSubmitters);
    {
      StripePipeline pipe(array, {.workers = 3,
                                  .queue_depth = 64,
                                  .merge_writes = true,
                                  .merge_limit = 8});
      std::vector<std::thread> subs;
      for (int s = 0; s < kSubmitters; ++s) {
        subs.emplace_back([&, s] {
          Pcg32 rng(seed * 1000 + static_cast<uint64_t>(s));
          std::vector<std::pair<OpFuture, size_t>> pending;
          for (int i = 0; i < kOpsPerSubmitter; ++i) {
            LoggedOp op;
            op.is_write = rng.next_u32() % 3 != 0;  // 2:1 writes
            // Cluster offsets into a quarter of the capacity so ranges
            // genuinely collide across submitters.
            const int64_t window = cap / 4;
            const int64_t base = (rng.next_u32() % 2) * window;
            op.offset =
                base + static_cast<int64_t>(rng.next_u32() %
                                            static_cast<uint32_t>(window));
            op.len = 1 + static_cast<int64_t>(rng.next_u32() % 700);
            op.len = std::min(op.len, cap - op.offset);
            op.data.resize(static_cast<size_t>(op.len));
            if (op.is_write) {
              rng.fill_bytes(op.data.data(), op.data.size());
              auto f = pipe.submit_write(op.offset, op.data);
              op.seq = f.sequence();
              logs[static_cast<size_t>(s)].push_back(std::move(op));
              pending.emplace_back(std::move(f), 0);
            } else {
              logs[static_cast<size_t>(s)].push_back(std::move(op));
              auto& slot = logs[static_cast<size_t>(s)].back();
              auto f = pipe.submit_read(
                  slot.offset, std::span<uint8_t>(slot.data.data(),
                                                  slot.data.size()));
              slot.seq = f.sequence();
              pending.emplace_back(std::move(f),
                                   logs[static_cast<size_t>(s)].size() - 1);
            }
            // Bounded in-flight window per submitter.
            if (pending.size() >= 8) {
              pending.front().first.get();
              pending.erase(pending.begin());
            }
          }
          for (auto& [f, idx] : pending) f.get();
        });
      }
      for (auto& t : subs) t.join();
      pipe.drain();
    }

    // Replay on a serial reference array in admission order.
    obs::Registry ref_reg;
    auto ref = make_array(ref_reg, /*stripes=*/8);
    ref.write(0, initial);
    std::vector<const LoggedOp*> all;
    for (auto& l : logs)
      for (auto& op : l) all.push_back(&op);
    std::sort(all.begin(), all.end(),
              [](const LoggedOp* a, const LoggedOp* b) {
                return a->seq < b->seq;
              });
    for (const LoggedOp* op : all) {
      if (op->is_write) ref.write(op->offset, op->data);
      // (Reads don't mutate; per-read snapshot checks need a single
      // submitter — see ReadsObserveSerialPrefixState below.)
    }
    std::vector<uint8_t> got(static_cast<size_t>(cap));
    std::vector<uint8_t> want(static_cast<size_t>(cap));
    array.read(0, got);
    ref.read(0, want);
    EXPECT_EQ(got, want) << "seed " << seed;
    EXPECT_EQ(array.scrub(), 0) << "seed " << seed;
  }
}

// With a single submitter, admission order == program order, so every
// read must return exactly the bytes produced by the serial prefix of
// writes before it — the range lock may not let any later overlapping
// write sneak ahead, and the merge pass may not jump a queued read.
TEST(StripePipelineProperty, ReadsObserveSerialPrefixState) {
  for (uint64_t seed : {3u, 11u}) {
    obs::Registry reg;
    auto array = make_array(reg, /*stripes=*/8);
    const int64_t cap = array.capacity();
    Pcg32 seed_rng(seed);
    auto initial = random_blob(seed_rng, static_cast<size_t>(cap));
    array.write(0, initial);

    obs::Registry ref_reg;
    auto ref = make_array(ref_reg, /*stripes=*/8);
    ref.write(0, initial);
    std::vector<uint8_t> shadow = initial;  // serial prefix image

    StripePipeline pipe(array, {.workers = 3,
                                .queue_depth = 64,
                                .merge_writes = true,
                                .merge_limit = 8});
    Pcg32 rng(seed * 77);
    struct InFlight {
      OpFuture f;
      bool is_write;
      int64_t offset;
      std::vector<uint8_t> expect;       // reads: serial prefix bytes
      std::vector<uint8_t>* dst;         // reads: where the pipeline wrote
    };
    std::vector<std::unique_ptr<std::vector<uint8_t>>> read_bufs;
    std::vector<InFlight> pending;
    auto settle = [&](size_t keep) {
      while (pending.size() > keep) {
        auto& p = pending.front();
        p.f.get();
        if (!p.is_write) {
          EXPECT_EQ(*p.dst, p.expect);
        }
        pending.erase(pending.begin());
      }
    };
    for (int i = 0; i < 250; ++i) {
      const bool is_write = rng.next_u32() % 2 == 0;
      const int64_t window = cap / 3;
      const int64_t offset = static_cast<int64_t>(
          rng.next_u32() % static_cast<uint32_t>(window));
      const int64_t len = std::min(
          1 + static_cast<int64_t>(rng.next_u32() % 600), cap - offset);
      if (is_write) {
        std::vector<uint8_t> d(static_cast<size_t>(len));
        rng.fill_bytes(d.data(), d.size());
        std::copy(d.begin(), d.end(),
                  shadow.begin() + static_cast<size_t>(offset));
        pending.push_back(
            {pipe.submit_write(offset, d), true, offset, {}, nullptr});
      } else {
        read_bufs.push_back(std::make_unique<std::vector<uint8_t>>(
            static_cast<size_t>(len)));
        auto* buf = read_bufs.back().get();
        std::vector<uint8_t> expect(
            shadow.begin() + static_cast<size_t>(offset),
            shadow.begin() + static_cast<size_t>(offset + len));
        auto f = pipe.submit_read(offset,
                                  std::span<uint8_t>(buf->data(), buf->size()));
        pending.push_back({std::move(f), false, offset, std::move(expect),
                           buf});
      }
      settle(6);
    }
    settle(0);
    pipe.drain();
    std::vector<uint8_t> got(static_cast<size_t>(cap));
    array.read(0, got);
    EXPECT_EQ(got, shadow) << "seed " << seed;
  }
}

}  // namespace
}  // namespace dcode::raid

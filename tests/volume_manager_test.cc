// Tests for the VolumeManager: allocation, persistence through the
// backing store's own protected space (including across failures and
// rebuilds), bounds enforcement, and the pool-backed mode where named
// volumes span shards and see restriped capacity.
#include <gtest/gtest.h>

#include <vector>

#include "codes/registry.h"
#include "util/rng.h"
#include "volume/volume_manager.h"

namespace dcode::volume {
namespace {

raid::Raid6Array make_array() {
  return raid::Raid6Array(codes::make_layout("dcode", 7), 512, 16, 1);
}

ShardSpec small_spec() {
  ShardSpec spec;
  spec.prime = 5;
  spec.element_size = 512;
  spec.stripes = 8;
  return spec;
}

TEST(VolumeManager, FormatCreateListRemove) {
  auto array = make_array();
  auto vm = VolumeManager::format(array);
  EXPECT_TRUE(vm.list().empty());

  vm.create("logs", 4096);
  vm.create("db", 8192);
  auto vols = vm.list();
  ASSERT_EQ(vols.size(), 2u);
  EXPECT_EQ(vols[0].name, "logs");
  EXPECT_EQ(vols[1].name, "db");
  EXPECT_NE(vols[0].offset, vols[1].offset);

  vm.remove("logs");
  EXPECT_FALSE(vm.find("logs").has_value());
  EXPECT_TRUE(vm.find("db").has_value());
}

TEST(VolumeManager, PersistsAcrossOpen) {
  auto array = make_array();
  {
    auto vm = VolumeManager::format(array);
    vm.create("alpha", 1000);
    vm.create("beta", 2000);
  }
  auto vm2 = VolumeManager::open(array);
  auto vols = vm2.list();
  ASSERT_EQ(vols.size(), 2u);
  EXPECT_EQ(vols[0].name, "alpha");
  EXPECT_EQ(vols[0].size, 1000);
  EXPECT_EQ(vols[1].name, "beta");
}

TEST(VolumeManager, OpenWithoutFormatRejected) {
  auto array = make_array();
  EXPECT_THROW((void)VolumeManager::open(array), std::logic_error);
}

TEST(VolumeManager, VolumeIoRoundTripAndBounds) {
  auto array = make_array();
  auto vm = VolumeManager::format(array);
  vm.create("v", 3000);

  Pcg32 rng(1);
  std::vector<uint8_t> data(3000);
  rng.fill_bytes(data.data(), data.size());
  vm.write("v", 0, data);
  std::vector<uint8_t> out(3000);
  vm.read("v", 0, out);
  EXPECT_EQ(out, data);

  // Partial I/O at an offset.
  std::vector<uint8_t> patch(100, 0xAB);
  vm.write("v", 2900, patch);
  std::vector<uint8_t> tail(100);
  vm.read("v", 2900, tail);
  EXPECT_EQ(tail, patch);

  // Bounds.
  EXPECT_THROW(vm.write("v", 2901, patch), std::logic_error);
  EXPECT_THROW(vm.read("v", -1, tail), std::logic_error);
  EXPECT_THROW(vm.read("nope", 0, tail), std::logic_error);
}

TEST(VolumeManager, VolumesAreIsolated) {
  auto array = make_array();
  auto vm = VolumeManager::format(array);
  vm.create("a", 1024);
  vm.create("b", 1024);
  std::vector<uint8_t> ones(1024, 1), twos(1024, 2), out(1024);
  vm.write("a", 0, ones);
  vm.write("b", 0, twos);
  vm.read("a", 0, out);
  EXPECT_EQ(out, ones);
  vm.read("b", 0, out);
  EXPECT_EQ(out, twos);
}

TEST(VolumeManager, FirstFitReusesFreedExtents) {
  auto array = make_array();
  auto vm = VolumeManager::format(array);
  vm.create("a", 1000);
  vm.create("b", 1000);
  vm.create("c", 1000);
  int64_t b_offset = vm.find("b")->offset;
  vm.remove("b");
  vm.create("b2", 800);  // fits in b's hole
  EXPECT_EQ(vm.find("b2")->offset, b_offset);

  int64_t free_before = vm.free_bytes();
  EXPECT_GT(vm.largest_free_extent(), 0);
  EXPECT_LE(vm.largest_free_extent(), free_before);
}

TEST(VolumeManager, AllocationFailuresReported) {
  auto array = make_array();
  auto vm = VolumeManager::format(array);
  EXPECT_THROW(vm.create("", 10), std::logic_error);
  EXPECT_THROW(vm.create("x", 0), std::logic_error);
  EXPECT_THROW(vm.create(std::string(40, 'y'), 10), std::logic_error);
  EXPECT_THROW(vm.create("huge", array.capacity()), std::logic_error);
  vm.create("dup", 100);
  EXPECT_THROW(vm.create("dup", 100), std::logic_error);
}

TEST(VolumeManager, MetadataSurvivesDoubleFailureAndRebuild) {
  auto array = make_array();
  Pcg32 rng(2);
  std::vector<uint8_t> payload(5000);
  rng.fill_bytes(payload.data(), payload.size());
  {
    auto vm = VolumeManager::format(array);
    vm.create("precious", 5000);
    vm.write("precious", 0, payload);
  }

  array.fail_disk(1);
  array.fail_disk(5);
  // Open and read while doubly degraded: metadata and data reconstruct.
  {
    auto vm = VolumeManager::open(array);
    ASSERT_TRUE(vm.find("precious").has_value());
    std::vector<uint8_t> out(5000);
    vm.read("precious", 0, out);
    EXPECT_EQ(out, payload);
  }

  array.replace_disk(1);
  array.replace_disk(5);
  array.rebuild();
  auto vm = VolumeManager::open(array);
  std::vector<uint8_t> out(5000);
  vm.read("precious", 0, out);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(array.scrub(), 0);
}

// --- Pool-backed mode ------------------------------------------------------

TEST(VolumeManager, PoolBackedVolumesSpanShards) {
  ShardSpec spec = small_spec();
  PoolOptions opts;
  // Small chunks so a modest volume necessarily crosses shards.
  opts.chunk_bytes = 2048;
  obs::Registry reg;
  StoragePool pool(spec, 3, opts, &reg);

  auto vm = VolumeManager::format(pool);
  // Big enough that the extent necessarily covers chunks on every shard.
  const int64_t vol_size = pool.capacity() / 2;
  vm.create("spanning", vol_size);

  Pcg32 rng(7);
  std::vector<uint8_t> data(static_cast<size_t>(vol_size));
  rng.fill_bytes(data.data(), data.size());
  vm.write("spanning", 0, data);
  std::vector<uint8_t> out(data.size());
  vm.read("spanning", 0, out);
  EXPECT_EQ(out, data);

  // The extent really did fan out: every shard saw reads and writes.
  for (int s = 0; s < pool.shard_count(); ++s) {
    const std::string p = "shard" + std::to_string(s) + ".";
    EXPECT_GT(reg.counter(p + "raid.writes").value(), 0) << p;
    EXPECT_GT(reg.counter(p + "raid.reads").value(), 0) << p;
  }

  // Reopen over the same pool: the superblock (itself striped across
  // shards) round-trips.
  auto vm2 = VolumeManager::open(pool);
  ASSERT_TRUE(vm2.find("spanning").has_value());
  vm2.read("spanning", 0, out);
  EXPECT_EQ(out, data);
}

TEST(VolumeManager, PoolCapacityAddBecomesAllocatable) {
  ShardSpec spec = small_spec();
  PoolOptions opts;
  opts.chunk_bytes = 2048;
  obs::Registry reg;
  StoragePool pool(spec, 2, opts, &reg);

  auto vm = VolumeManager::format(pool);
  const int64_t capacity_before = pool.capacity();
  // Fill everything so the next create must use grown space.
  vm.create("old", vm.largest_free_extent());
  EXPECT_THROW(vm.create("wont_fit", 4096), std::logic_error);

  pool.add_shard();
  ASSERT_TRUE(pool.wait_for_restripe());
  EXPECT_GT(pool.capacity(), capacity_before);
  // The manager sees the grown capacity without reopening.
  EXPECT_GE(vm.free_bytes(), pool.capacity() - capacity_before);
  vm.create("grown", 4096);  // allocates in the restriped space
  std::vector<uint8_t> blob(4096, 0x5C), out(4096);
  vm.write("grown", 0, blob);
  vm.read("grown", 0, out);
  EXPECT_EQ(out, blob);
}

}  // namespace
}  // namespace dcode::volume

// Tests for the I/O planners: read plans, partial-stripe write plans
// (RMW/RCW choice, dirty parity closures), and degraded-read plans —
// including *executing* degraded plans against real stripe bytes to prove
// the planned reconstructions produce the right data.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <tuple>

#include "codes/encoder.h"
#include "codes/registry.h"
#include "raid/planner.h"
#include "util/rng.h"
#include "xorops/xor_region.h"

namespace dcode::raid {
namespace {

using codes::CodeLayout;
using codes::Element;
using codes::Equation;
using codes::make_element;

// ---------- reads ----------

TEST(ReadPlan, OneAccessPerElementInLogicalOrder) {
  auto layout = codes::make_layout("dcode", 7);
  AddressMap map(*layout);
  IoPlanner planner(map);
  IoPlan plan = planner.plan_read(0, 4);
  ASSERT_EQ(plan.accesses.size(), 4u);
  // <0,4,T> reads D00, D01, D02, D03 — the paper's own example.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(plan.accesses[static_cast<size_t>(i)].element, make_element(0, i));
    EXPECT_EQ(plan.accesses[static_cast<size_t>(i)].disk, i);
    EXPECT_FALSE(plan.accesses[static_cast<size_t>(i)].is_write);
  }
  EXPECT_EQ(plan.reads(), 4);
  EXPECT_EQ(plan.writes(), 0);
}

TEST(ReadPlan, CrossesStripeBoundary) {
  auto layout = codes::make_layout("dcode", 5);  // 15 data elements/stripe
  AddressMap map(*layout);
  IoPlanner planner(map);
  IoPlan plan = planner.plan_read(13, 5);  // elements 13..17
  ASSERT_EQ(plan.accesses.size(), 5u);
  EXPECT_EQ(plan.accesses[0].stripe, 0);
  EXPECT_EQ(plan.accesses[1].stripe, 0);
  EXPECT_EQ(plan.accesses[2].stripe, 1);
  EXPECT_EQ(plan.accesses[2].element, layout->data_element(0));
}

TEST(ReadPlan, ParityDisksNeverServeNormalReads) {
  auto layout = codes::make_layout("rdp", 7);  // disks 6, 7 are parity
  AddressMap map(*layout);
  IoPlanner planner(map);
  IoPlan plan = planner.plan_read(0, 36);  // a full stripe of data
  for (const auto& a : plan.accesses) {
    EXPECT_LT(a.disk, 6) << "parity disk touched by a normal read";
  }
}

// ---------- dirty parity closure ----------

TEST(DirtyClosure, DCodeSingleElementTouchesExactlyTwoParities) {
  auto layout = codes::make_layout("dcode", 7);
  for (int i = 0; i < layout->data_count(); ++i) {
    Element e = layout->data_element(i);
    std::vector<Element> w = {e};
    EXPECT_EQ(dirty_parity_closure(*layout, w).size(), 2u);
  }
}

TEST(DirtyClosure, RdpCascadesThroughRowParity) {
  // Updating an RDP data element dirties its row parity and diagonal
  // parity; the row parity is itself covered by a diagonal, so the closure
  // reaches 3 equations (2 when the element lies on the missing diagonal
  // or its row parity's diagonal is the missing one).
  auto layout = codes::make_layout("rdp", 7);
  std::map<size_t, int> histogram;
  for (int i = 0; i < layout->data_count(); ++i) {
    Element e = layout->data_element(i);
    std::vector<Element> w = {e};
    ++histogram[dirty_parity_closure(*layout, w).size()];
  }
  EXPECT_GT(histogram[3], 0);
  EXPECT_GT(histogram.count(2), 0u);
  for (const auto& [size, count] : histogram) {
    EXPECT_GE(size, 2u);
    EXPECT_LE(size, 3u);
  }
}

TEST(DirtyClosure, HdpCascadesThroughDiagonalParityRow) {
  // HDP row parities cover the embedded diagonal parity: a data update
  // dirties its row parity, its diagonal parity, and the row parity of
  // the row hosting that diagonal parity (3 equations; 2 when the
  // diagonal parity lives in the writer's own row).
  auto layout = codes::make_layout("hdp", 7);
  std::map<size_t, int> histogram;
  for (int i = 0; i < layout->data_count(); ++i) {
    Element e = layout->data_element(i);
    std::vector<Element> w = {e};
    ++histogram[dirty_parity_closure(*layout, w).size()];
  }
  EXPECT_GT(histogram[3], 0) << "cross-row cascades must exist";
  for (const auto& [size, count] : histogram) {
    EXPECT_GE(size, 2u);
    EXPECT_LE(size, 3u);
  }
}

TEST(DirtyClosure, TopologicalOrderRespected) {
  auto layout = codes::make_layout("rdp", 7);
  std::vector<Element> w = {layout->data_element(0)};
  auto dirty = dirty_parity_closure(*layout, w);
  // Whenever equation B consumes equation A's parity, A must come first.
  std::set<Element> produced;
  for (int qi : dirty) {
    const Equation& q = layout->equations()[static_cast<size_t>(qi)];
    for (const Element& src : q.sources) {
      if (layout->is_parity(src.row, src.col)) {
        bool src_is_dirty = false;
        for (int other : dirty) {
          if (layout->equations()[static_cast<size_t>(other)].parity == src)
            src_is_dirty = true;
        }
        if (src_is_dirty) {
          EXPECT_TRUE(produced.count(src));
        }
      }
    }
    produced.insert(q.parity);
  }
}

// ---------- writes ----------

using WriteParam = std::tuple<std::string, int>;
class WritePlans : public ::testing::TestWithParam<WriteParam> {};
INSTANTIATE_TEST_SUITE_P(
    Codes, WritePlans,
    ::testing::Combine(::testing::Values("dcode", "xcode", "rdp", "hcode",
                                         "hdp", "pcode", "liberation"),
                       ::testing::Values(5, 7, 13)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(WritePlans, WritesCoverDataAndDirtyParitiesExactlyOnce) {
  auto layout = codes::make_layout(std::get<0>(GetParam()),
                                   std::get<1>(GetParam()));
  AddressMap map(*layout);
  IoPlanner planner(map);
  Pcg32 rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    int64_t start = rng.next_below(
        static_cast<uint32_t>(layout->data_count()));
    int len = rng.next_in_range(1, 20);
    IoPlan plan = planner.plan_write(start, len);

    // Every written data element appears exactly once as a write.
    std::map<std::pair<int64_t, Element>, int> write_count;
    for (const auto& a : plan.accesses) {
      if (a.is_write)
        ++write_count[{a.stripe, a.element}];
    }
    for (int64_t g = start; g < start + len; ++g) {
      auto loc = map.locate(g);
      EXPECT_EQ((write_count[{loc.stripe, loc.element}]), 1)
          << "logical " << g;
    }
    for (const auto& [k, c] : write_count) EXPECT_EQ(c, 1);
    // And the plan writes the data plus at least one parity element.
    EXPECT_GT(plan.writes(), static_cast<int64_t>(len));
  }
}

TEST_P(WritePlans, AutoPolicyNeverBeatenByForcedPolicies) {
  auto layout = codes::make_layout(std::get<0>(GetParam()),
                                   std::get<1>(GetParam()));
  AddressMap map(*layout);
  IoPlanner planner(map);
  Pcg32 rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    int64_t start = rng.next_below(static_cast<uint32_t>(layout->data_count()));
    int len = rng.next_in_range(1, 25);
    int64_t auto_cost = planner.plan_write(start, len).total();
    int64_t rmw = planner.plan_write(start, len,
                                     WritePolicy::kReadModifyWrite).total();
    int64_t rcw = planner.plan_write(start, len,
                                     WritePolicy::kReconstructWrite).total();
    // Auto picks per *stripe*, so on multi-stripe ops it can strictly beat
    // both single-policy plans.
    EXPECT_LE(auto_cost, std::min(rmw, rcw));
  }
}

TEST(WritePlans, FullStripeWriteIsReadFree) {
  auto layout = codes::make_layout("dcode", 7);
  AddressMap map(*layout);
  IoPlanner planner(map);
  IoPlan plan = planner.plan_write(0, layout->data_count());
  EXPECT_EQ(plan.reads(), 0) << "full-stripe write must reconstruct";
  EXPECT_EQ(plan.writes(), layout->data_count() + layout->parity_count());
}

TEST(WritePlans, SingleElementWriteCostsPaperOptimal) {
  // D-Code optimal update complexity: 1 data + exactly 2 parities,
  // RMW => 3 reads + 3 writes.
  auto layout = codes::make_layout("dcode", 11);
  AddressMap map(*layout);
  IoPlanner planner(map);
  for (int64_t g : {0, 5, 42, 98}) {
    IoPlan plan = planner.plan_write(g, 1);
    EXPECT_EQ(plan.total(), 6) << "logical " << g;
  }
}

TEST(WritePlans, ContinuousWriteSharesHorizontalParityInDCode) {
  // Writing n-2 aligned consecutive elements dirties exactly ONE
  // horizontal parity (plus n-2 deployment parities).
  const int n = 11;
  auto layout = codes::make_layout("dcode", n);
  std::vector<Element> w;
  for (int i = 0; i < n - 2; ++i) w.push_back(layout->data_element(i));
  auto dirty = dirty_parity_closure(*layout, w);
  int horizontal = 0, deployment = 0;
  for (int qi : dirty) {
    const Equation& q = layout->equations()[static_cast<size_t>(qi)];
    (q.parity.row == n - 2 ? horizontal : deployment) += 1;
  }
  EXPECT_EQ(horizontal, 1);
  EXPECT_EQ(deployment, n - 2);
}

TEST(WritePlans, XCodeSameWriteTouchesTwiceTheParities) {
  // The same n-2 consecutive elements in X-Code dirty ~2(n-2) parities —
  // the partial-write penalty the paper attacks.
  const int n = 11;
  auto dlayout = codes::make_layout("dcode", n);
  auto xlayout = codes::make_layout("xcode", n);
  std::vector<Element> w;
  for (int i = 0; i < n - 2; ++i) w.push_back(dlayout->data_element(i));
  // Same positions exist in X-Code (identical data geometry).
  auto ddirty = dirty_parity_closure(*dlayout, w);
  auto xdirty = dirty_parity_closure(*xlayout, w);
  EXPECT_EQ(ddirty.size(), static_cast<size_t>(n - 1));
  EXPECT_EQ(xdirty.size(), static_cast<size_t>(2 * (n - 2)));
}

// ---------- degraded reads ----------

class DegradedPlans : public ::testing::TestWithParam<WriteParam> {};
INSTANTIATE_TEST_SUITE_P(
    Codes, DegradedPlans,
    ::testing::Combine(::testing::Values("dcode", "xcode", "rdp", "evenodd",
                                         "hcode", "hdp", "pcode", "liberation"),
                       ::testing::Values(5, 7, 11)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

// Execute a degraded plan against a real encoded stripe and verify the
// reconstructions reproduce the lost bytes.
TEST_P(DegradedPlans, PlannedReconstructionsProduceCorrectBytes) {
  auto layout = codes::make_layout(std::get<0>(GetParam()),
                                   std::get<1>(GetParam()));
  AddressMap map(*layout);
  IoPlanner planner(map);
  const size_t esize = 16;

  Pcg32 rng(21);
  codes::Stripe good(*layout, esize);
  good.randomize_data(rng);
  codes::encode_stripe(good);

  for (int failed = 0; failed < layout->cols(); ++failed) {
    int fd[1] = {failed};
    for (int trial = 0; trial < 10; ++trial) {
      int64_t start = rng.next_below(
          static_cast<uint32_t>(layout->data_count()));
      int len = rng.next_in_range(1, 20);
      // Keep within one stripe for byte-level execution simplicity.
      len = static_cast<int>(
          std::min<int64_t>(len, layout->data_count() - start));
      IoPlan plan = planner.plan_degraded_read(start, len, fd);

      // The plan must never touch the failed disk.
      std::map<Element, const uint8_t*> have;
      for (const auto& a : plan.accesses) {
        ASSERT_NE(a.disk, failed);
        ASSERT_EQ(a.stripe, 0);
        have[a.element] = good.at(a.element);
      }
      // Execute reconstructions in order.
      std::map<Element, std::vector<uint8_t>> rebuilt;
      for (const auto& rec : plan.reconstructions) {
        ASSERT_GE(rec.equation, 0) << "single failure needs no full decode";
        const Equation& q =
            layout->equations()[static_cast<size_t>(rec.equation)];
        std::vector<uint8_t> buf(esize, 0);
        auto fold = [&](const Element& m) {
          if (m == rec.target) return;
          const uint8_t* src = nullptr;
          if (auto it = rebuilt.find(m); it != rebuilt.end()) {
            src = it->second.data();
          } else {
            auto it2 = have.find(m);
            ASSERT_NE(it2, have.end()) << "member not read by the plan";
            src = it2->second;
          }
          xorops::xor_into(buf.data(), src, esize);
        };
        fold(q.parity);
        for (const Element& m : q.sources) fold(m);
        ASSERT_EQ(0, std::memcmp(buf.data(), good.at(rec.target), esize))
            << "reconstruction of (" << rec.target.row << ","
            << rec.target.col << ") is wrong";
        rebuilt[rec.target] = std::move(buf);
      }
      // Every requested element is either read or reconstructed.
      for (int64_t g = start; g < start + len; ++g) {
        Element e = layout->data_element(static_cast<int>(g));
        EXPECT_TRUE(have.count(e) || rebuilt.count(e));
      }
    }
  }
}

TEST(DegradedPlans, NoFailureEqualsNormalRead) {
  auto layout = codes::make_layout("dcode", 7);
  AddressMap map(*layout);
  IoPlanner planner(map);
  std::vector<int> none;
  IoPlan degraded = planner.plan_degraded_read(3, 10, none);
  IoPlan normal = planner.plan_read(3, 10);
  EXPECT_EQ(degraded.total(), normal.total());
  EXPECT_TRUE(degraded.reconstructions.empty());
}

TEST(DegradedPlans, SharedHorizontalParityReducesDCodeExtraReads) {
  // Read a run crossing the failed disk twice in adjacent rows: D-Code's
  // horizontal grouping lets the two reconstructions share almost all
  // reads; X-Code's diagonals cannot.
  const int n = 11;
  auto dl = codes::make_layout("dcode", n);
  auto xl = codes::make_layout("xcode", n);
  AddressMap dm(*dl), xm(*xl);
  IoPlanner dp(dm), xp(xm);
  int fd[1] = {5};
  // Two full rows starting at row 0: hits disk 5 twice.
  IoPlan dplan = dp.plan_degraded_read(0, 2 * n, fd);
  IoPlan xplan = xp.plan_degraded_read(0, 2 * n, fd);
  EXPECT_LT(dplan.total(), xplan.total())
      << "D-Code degraded reads must be cheaper than X-Code";
}

TEST_P(DegradedPlans, DoubleFailureChainPlansProduceCorrectBytes) {
  // Two failed disks: plans must be executable in order (chain
  // reconstructions may depend on earlier reconstructions) and yield the
  // original bytes.
  auto layout = codes::make_layout(std::get<0>(GetParam()),
                                   std::get<1>(GetParam()));
  AddressMap map(*layout);
  IoPlanner planner(map);
  const size_t esize = 16;

  Pcg32 rng(31);
  codes::Stripe good(*layout, esize);
  good.randomize_data(rng);
  codes::encode_stripe(good);

  for (int trial = 0; trial < 20; ++trial) {
    int f1 = rng.next_in_range(0, layout->cols() - 2);
    int f2 = rng.next_in_range(f1 + 1, layout->cols() - 1);
    int fd[2] = {f1, f2};
    int64_t start = rng.next_below(static_cast<uint32_t>(layout->data_count()));
    int len = static_cast<int>(std::min<int64_t>(
        rng.next_in_range(1, 20), layout->data_count() - start));
    IoPlan plan = planner.plan_degraded_read(start, len, fd);

    std::map<Element, std::vector<uint8_t>> have;
    for (const auto& a : plan.accesses) {
      ASSERT_NE(a.disk, f1);
      ASSERT_NE(a.disk, f2);
      have[a.element] = std::vector<uint8_t>(
          good.at(a.element), good.at(a.element) + esize);
    }
    for (const auto& rec : plan.reconstructions) {
      std::vector<uint8_t> buf(esize, 0);
      if (rec.equation >= 0) {
        const Equation& q =
            layout->equations()[static_cast<size_t>(rec.equation)];
        auto fold = [&](const Element& m) {
          if (m == rec.target) return;
          auto it = have.find(m);
          ASSERT_NE(it, have.end())
              << "dependency not satisfied in plan order";
          for (size_t i = 0; i < esize; ++i) buf[i] ^= it->second[i];
        };
        fold(q.parity);
        for (const Element& m : q.sources) fold(m);
        ASSERT_EQ(0, std::memcmp(buf.data(), good.at(rec.target), esize));
        have[rec.target] = std::move(buf);
      } else {
        // Full-decode fallback marker (EVENODD/liberation): trust the
        // stripe decoder, just mark availability.
        have[rec.target] = std::vector<uint8_t>(
            good.at(rec.target), good.at(rec.target) + esize);
      }
    }
    for (int64_t g = start; g < start + len; ++g) {
      Element e = layout->data_element(static_cast<int>(g));
      EXPECT_TRUE(have.count(e)) << "requested element missing";
    }
  }
}

TEST(DegradedPlans, ChainPlansBeatFullStripeDecode) {
  // A short read crossing both failed disks must not read anywhere near
  // the whole stripe for the peelable codes.
  for (const char* name : {"dcode", "xcode", "rdp", "hcode", "hdp"}) {
    auto layout = codes::make_layout(name, 13);
    AddressMap map(*layout);
    IoPlanner planner(map);
    int fd[2] = {2, 3};
    IoPlan plan = planner.plan_degraded_read(0, 6, fd);
    int64_t survivors =
        static_cast<int64_t>(layout->rows()) * (layout->cols() - 2);
    EXPECT_LT(plan.total(), survivors / 2)
        << name << ": chain plan should be far below a full-stripe read";
  }
}

TEST(DegradedPlans, DoubleFailureFallsBackButStaysCorrect) {
  auto layout = codes::make_layout("dcode", 7);
  AddressMap map(*layout);
  IoPlanner planner(map);
  int fd[2] = {2, 3};
  IoPlan plan = planner.plan_degraded_read(0, layout->data_count(), fd);
  for (const auto& a : plan.accesses) {
    EXPECT_NE(a.disk, 2);
    EXPECT_NE(a.disk, 3);
  }
  // All requested lost elements appear as reconstructions.
  std::set<Element> rebuilt;
  for (const auto& r : plan.reconstructions) rebuilt.insert(r.target);
  for (int i = 0; i < layout->data_count(); ++i) {
    Element e = layout->data_element(i);
    if (e.col == 2 || e.col == 3) {
      EXPECT_TRUE(rebuilt.count(e));
    }
  }
}

TEST(DegradedPlans, RotationMapsFailedPhysicalDiskPerStripe) {
  auto layout = codes::make_layout("dcode", 5);
  AddressMap map(*layout, /*rotate=*/true);
  IoPlanner planner(map);
  int fd[1] = {0};
  // Span two stripes; with rotation, physical disk 0 hosts column 0 in
  // stripe 0 but column 4 in stripe 1.
  IoPlan plan = planner.plan_degraded_read(0, 2 * layout->data_count(), fd);
  for (const auto& a : plan.accesses) EXPECT_NE(a.disk, 0);
}

}  // namespace
}  // namespace dcode::raid

// Degraded-write planning tests: the planner's stripe-rewrite plans must
// mirror the byte-level array's actual I/O, and degraded writes must cost
// more than healthy ones (the quantity the degraded-load experiment
// reports).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "codes/registry.h"
#include "raid/planner.h"
#include "raid/raid6_array.h"
#include "util/rng.h"

namespace dcode::raid {
namespace {

TEST(DegradedWrite, NoFailuresEqualsHealthyPlan) {
  auto layout = codes::make_layout("dcode", 7);
  AddressMap map(*layout);
  IoPlanner planner(map);
  std::vector<int> none;
  EXPECT_EQ(planner.plan_degraded_write(3, 9, none).total(),
            planner.plan_write(3, 9).total());
}

TEST(DegradedWrite, PlansNeverTouchFailedDisks) {
  for (const char* name : {"dcode", "xcode", "rdp", "hdp"}) {
    auto layout = codes::make_layout(name, 7);
    AddressMap map(*layout);
    IoPlanner planner(map);
    Pcg32 rng(3);
    for (int f = 0; f < layout->cols(); ++f) {
      int fd[1] = {f};
      for (int trial = 0; trial < 10; ++trial) {
        int64_t start = rng.next_below(
            static_cast<uint32_t>(layout->data_count()));
        int len = rng.next_in_range(1, 20);
        IoPlan plan = planner.plan_degraded_write(start, len, fd);
        for (const auto& a : plan.accesses) {
          EXPECT_NE(a.disk, f) << name;
        }
      }
    }
  }
}

TEST(DegradedWrite, CostsMoreThanHealthyWrites) {
  auto layout = codes::make_layout("dcode", 11);
  AddressMap map(*layout);
  IoPlanner planner(map);
  int fd[1] = {4};
  // A short write to a stripe hosting the failed disk: the stripe-rewrite
  // reads dominate.
  IoPlan healthy = planner.plan_write(0, 4);
  IoPlan degraded = planner.plan_degraded_write(0, 4, fd);
  EXPECT_GT(degraded.total(), healthy.total());
}

TEST(DegradedWrite, ArrayAccessCountsMatchPlanner) {
  // The consistency bridge: execute a degraded write on the byte array
  // and compare per-operation disk access counts with the plan.
  auto layout = codes::make_layout("xcode", 7);
  const size_t esize = 128;
  Raid6Array array(codes::make_layout("xcode", 7), esize, 3, 1);
  Pcg32 rng(4);
  std::vector<uint8_t> blob(static_cast<size_t>(array.capacity()));
  rng.fill_bytes(blob.data(), blob.size());
  array.write(0, blob);
  array.fail_disk(2);
  array.reset_stats();

  AddressMap map(*layout);
  IoPlanner planner(map);
  int fd[1] = {2};
  const int64_t start = 5;
  const int len = 6;
  IoPlan plan = planner.plan_degraded_write(start, len, fd);

  std::vector<uint8_t> patch(static_cast<size_t>(len) * esize);
  rng.fill_bytes(patch.data(), patch.size());
  array.write(start * static_cast<int64_t>(esize), patch);

  int64_t accesses = 0;
  for (int d = 0; d < array.layout().cols(); ++d) {
    accesses += array.disk(d).reads() + array.disk(d).writes();
  }
  EXPECT_EQ(accesses, plan.total());
}

TEST(DegradedWrite, HealthyStripesInARangeStayCheap) {
  // A multi-stripe write where only the second stripe hosts failed data:
  // with rotation, disk 0 is column 0 only in stripe 0.
  auto layout = codes::make_layout("dcode", 5);
  AddressMap rotating(*layout, /*rotate=*/true);
  IoPlanner planner(rotating);
  int fd[1] = {0};
  // All stripes still host physical disk 0 somewhere, so every stripe is
  // degraded here — but the *cost* must match stripe-by-stripe rewrite
  // accounting: reads = surviving cells per stripe.
  IoPlan plan = planner.plan_degraded_write(0, 2 * layout->data_count(), fd);
  int64_t surviving_cells =
      static_cast<int64_t>(layout->rows()) * (layout->cols() - 1);
  EXPECT_EQ(plan.reads(), 2 * surviving_cells);
}

TEST(HotSpares, AutomaticRebuildKeepsArrayHealthy) {
  Raid6Array array(codes::make_layout("dcode", 7), 256, 4, 2);
  array.add_hot_spares(3);
  Pcg32 rng(5);
  std::vector<uint8_t> blob(static_cast<size_t>(array.capacity()));
  rng.fill_bytes(blob.data(), blob.size());
  array.write(0, blob);

  // Three sequential failures, each absorbed by a spare.
  for (int f : {1, 4, 6}) {
    array.fail_disk(f);
    EXPECT_EQ(array.failed_disk_count(), 0) << "spare must absorb disk " << f;
    EXPECT_EQ(array.scrub(), 0);
  }
  EXPECT_EQ(array.hot_spares(), 0);
  std::vector<uint8_t> out(blob.size());
  array.read(0, out);
  EXPECT_EQ(out, blob);

  // Spares exhausted: the next failure degrades the array normally.
  array.fail_disk(0);
  EXPECT_EQ(array.failed_disk_count(), 1);
  array.read(0, out);
  EXPECT_EQ(out, blob);
}

}  // namespace
}  // namespace dcode::raid

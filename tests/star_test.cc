// Tests for the STAR code: exhaustive TRIPLE-failure tolerance, structure,
// and end-to-end triple-failure operation of the byte-level array.
#include <gtest/gtest.h>

#include <vector>

#include "codes/decoder.h"
#include "codes/encoder.h"
#include "codes/registry.h"
#include "codes/star.h"
#include "raid/raid6_array.h"
#include "util/rng.h"

namespace dcode::codes {
namespace {

class StarMds : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Primes, StarMds, ::testing::Values(5, 7, 11));

TEST_P(StarMds, EveryTripleDiskFailureDecodes) {
  const int p = GetParam();
  StarLayout layout(p);
  EXPECT_EQ(layout.fault_tolerance(), 3);
  Pcg32 rng(static_cast<uint64_t>(p));
  Stripe s(layout, 16);
  s.randomize_data(rng);
  encode_stripe(s);

  for (int f1 = 0; f1 < layout.cols(); ++f1) {
    for (int f2 = f1 + 1; f2 < layout.cols(); ++f2) {
      for (int f3 = f2 + 1; f3 < layout.cols(); ++f3) {
        Stripe broken = s.clone();
        broken.erase_disk(f1);
        broken.erase_disk(f2);
        broken.erase_disk(f3);
        int disks[3] = {f1, f2, f3};
        auto lost = elements_of_disks(layout, disks);
        auto res = hybrid_decode(broken, lost);
        ASSERT_TRUE(res.success) << f1 << "," << f2 << "," << f3;
        ASSERT_TRUE(broken.equals(s)) << f1 << "," << f2 << "," << f3;
      }
    }
  }
}

TEST_P(StarMds, FourDiskFailuresRejected) {
  const int p = GetParam();
  StarLayout layout(p);
  int disks[4] = {0, 1, 2, 3};
  auto lost = elements_of_disks(layout, disks);
  EXPECT_FALSE(is_recoverable(layout, lost));
}

TEST(Star, Structure) {
  StarLayout l(7);
  EXPECT_EQ(l.rows(), 6);
  EXPECT_EQ(l.cols(), 10);
  EXPECT_EQ(l.data_count(), 42);
  EXPECT_EQ(l.parity_count(), 18);
  // Three dedicated parity disks, the rest pure data.
  for (int d = 0; d < 7; ++d) EXPECT_EQ(l.parity_elements_on_disk(d), 0);
  for (int d = 7; d < 10; ++d) EXPECT_EQ(l.parity_elements_on_disk(d), 6);
  // Registry knows it.
  EXPECT_EQ(make_layout("star", 7)->name(), "star");
  EXPECT_EQ(make_layout(CodeId::kStar, 7)->fault_tolerance(), 3);
  // RAID-6 codes still declare tolerance 2.
  EXPECT_EQ(make_layout("dcode", 7)->fault_tolerance(), 2);
}

TEST(Star, ArraySurvivesTripleFailureEndToEnd) {
  raid::Raid6Array array(make_layout("star", 7), 256, 4, 2);
  Pcg32 rng(1);
  std::vector<uint8_t> blob(static_cast<size_t>(array.capacity()));
  rng.fill_bytes(blob.data(), blob.size());
  array.write(0, blob);

  array.fail_disk(0);
  array.fail_disk(4);
  array.fail_disk(8);
  std::vector<uint8_t> out(blob.size());
  array.read(0, out);
  EXPECT_EQ(out, blob) << "triple-degraded read";

  array.replace_disk(0);
  array.replace_disk(4);
  array.replace_disk(8);
  array.rebuild();
  EXPECT_EQ(array.scrub(), 0);
  array.read(0, out);
  EXPECT_EQ(out, blob);

  // A fourth failure is beyond STAR.
  array.fail_disk(1);
  array.fail_disk(2);
  array.fail_disk(3);
  array.fail_disk(5);
  EXPECT_THROW(array.read(0, out), std::logic_error);
}

TEST(Star, EvenOddIsStarWithoutTheThirdColumn) {
  // Dropping STAR's anti-diagonal column yields EVENODD's equations
  // exactly (same classes, same S1 adjuster).
  StarLayout star(7);
  auto evenodd = make_layout("evenodd", 7);
  // Row + diagonal equations (the first 2(p-1)) must match EVENODD's.
  const auto& se = star.equations();
  const auto& ee = evenodd->equations();
  ASSERT_GE(se.size(), ee.size());
  for (size_t i = 0; i < ee.size(); ++i) {
    EXPECT_EQ(se[i].parity, ee[i].parity) << i;
    EXPECT_EQ(se[i].sources, ee[i].sources) << i;
  }
}

}  // namespace
}  // namespace dcode::codes

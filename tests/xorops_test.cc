// Unit tests for the XOR region kernels: every optimized kernel is checked
// against the byte-at-a-time reference across sizes that exercise the
// unrolled loops, the word loop, and the byte tail.
#include <gtest/gtest.h>

#include <vector>

#include "util/aligned_buffer.h"
#include "util/rng.h"
#include "xorops/xor_region.h"

namespace dcode::xorops {
namespace {

class XorSizes : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, XorSizes,
                         ::testing::Values(0, 1, 3, 7, 8, 9, 15, 16, 17, 31,
                                           32, 33, 63, 64, 65, 100, 256, 1000,
                                           4096, 4097));

std::vector<uint8_t> random_bytes(Pcg32& rng, size_t n) {
  std::vector<uint8_t> v(n);
  rng.fill_bytes(v.data(), n);
  return v;
}

TEST_P(XorSizes, XorIntoMatchesNaive) {
  const size_t n = GetParam();
  Pcg32 rng(n + 1);
  auto dst = random_bytes(rng, n);
  auto src = random_bytes(rng, n);
  auto expect = dst;
  xor_into_naive(expect.data(), src.data(), n);
  xor_into(dst.data(), src.data(), n);
  EXPECT_EQ(dst, expect);
}

TEST_P(XorSizes, XorAssign) {
  const size_t n = GetParam();
  Pcg32 rng(n + 2);
  auto a = random_bytes(rng, n);
  auto b = random_bytes(rng, n);
  std::vector<uint8_t> dst(n, 0xCC);
  xor_assign(dst.data(), a.data(), b.data(), n);
  for (size_t i = 0; i < n; ++i)
    ASSERT_EQ(dst[i], static_cast<uint8_t>(a[i] ^ b[i]));
}

TEST_P(XorSizes, Xor2Into) {
  const size_t n = GetParam();
  Pcg32 rng(n + 3);
  auto dst = random_bytes(rng, n);
  auto a = random_bytes(rng, n);
  auto b = random_bytes(rng, n);
  auto expect = dst;
  for (size_t i = 0; i < n; ++i)
    expect[i] ^= static_cast<uint8_t>(a[i] ^ b[i]);
  xor2_into(dst.data(), a.data(), b.data(), n);
  EXPECT_EQ(dst, expect);
}

TEST_P(XorSizes, Xor4Into) {
  const size_t n = GetParam();
  Pcg32 rng(n + 4);
  auto dst = random_bytes(rng, n);
  auto a = random_bytes(rng, n);
  auto b = random_bytes(rng, n);
  auto c = random_bytes(rng, n);
  auto d = random_bytes(rng, n);
  auto expect = dst;
  for (size_t i = 0; i < n; ++i)
    expect[i] ^= static_cast<uint8_t>(a[i] ^ b[i] ^ c[i] ^ d[i]);
  xor4_into(dst.data(), a.data(), b.data(), c.data(), d.data(), n);
  EXPECT_EQ(dst, expect);
}

class XorManyCount : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Counts, XorManyCount,
                         ::testing::Range(1, 14));  // crosses 4/2/1 grouping

TEST_P(XorManyCount, MatchesNaiveForEverySourceCount) {
  const int nsrc = GetParam();
  const size_t len = 257;
  Pcg32 rng(static_cast<uint64_t>(nsrc));
  std::vector<std::vector<uint8_t>> srcs;
  std::vector<const uint8_t*> ptrs;
  for (int i = 0; i < nsrc; ++i) {
    srcs.push_back(random_bytes(rng, len));
    ptrs.push_back(srcs.back().data());
  }
  std::vector<uint8_t> expect(len, 0);
  for (const auto& s : srcs) {
    for (size_t i = 0; i < len; ++i) expect[i] ^= s[i];
  }
  std::vector<uint8_t> dst(len, 0x55);  // must be fully overwritten
  xor_many(dst.data(), ptrs, len);
  EXPECT_EQ(dst, expect);
}

TEST(XorMany, RejectsEmptySourceList) {
  uint8_t d = 0;
  std::vector<const uint8_t*> none;
  EXPECT_THROW(xor_many(&d, none, 1), std::logic_error);
}

TEST(XorProperties, SelfInverse) {
  Pcg32 rng(9);
  auto a = random_bytes(rng, 333);
  auto b = random_bytes(rng, 333);
  auto orig = a;
  xor_into(a.data(), b.data(), a.size());
  xor_into(a.data(), b.data(), a.size());
  EXPECT_EQ(a, orig);
}

TEST(XorProperties, IsZeroDetectsSingleBit) {
  std::vector<uint8_t> z(129, 0);
  EXPECT_TRUE(is_zero(z.data(), z.size()));
  for (size_t pos : {0u, 7u, 8u, 64u, 127u, 128u}) {
    z[pos] = 1;
    EXPECT_FALSE(is_zero(z.data(), z.size())) << pos;
    z[pos] = 0;
  }
}

TEST(XorProperties, WorksOnAlignedBuffers) {
  AlignedBuffer a(4096), b(4096);
  Pcg32 rng(11);
  rng.fill_bytes(a.data(), a.size());
  rng.fill_bytes(b.data(), b.size());
  AlignedBuffer c(4096);
  xor_assign(c.data(), a.data(), b.data(), 4096);
  xor_into(c.data(), a.data(), 4096);
  EXPECT_EQ(0, std::memcmp(c.data(), b.data(), 4096));
}

}  // namespace
}  // namespace dcode::xorops

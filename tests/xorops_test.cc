// Unit tests for the XOR region kernels: every optimized kernel is checked
// against the byte-at-a-time reference across sizes that exercise the
// unrolled loops, the word loop, and the byte tail.
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <tuple>
#include <vector>

#include "util/aligned_buffer.h"
#include "util/rng.h"
#include "xorops/xor_region.h"

namespace dcode::xorops {
namespace {

class XorSizes : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, XorSizes,
                         ::testing::Values(0, 1, 3, 7, 8, 9, 15, 16, 17, 31,
                                           32, 33, 63, 64, 65, 100, 256, 1000,
                                           4096, 4097));

std::vector<uint8_t> random_bytes(Pcg32& rng, size_t n) {
  std::vector<uint8_t> v(n);
  rng.fill_bytes(v.data(), n);
  return v;
}

TEST_P(XorSizes, XorIntoMatchesNaive) {
  const size_t n = GetParam();
  Pcg32 rng(n + 1);
  auto dst = random_bytes(rng, n);
  auto src = random_bytes(rng, n);
  auto expect = dst;
  xor_into_naive(expect.data(), src.data(), n);
  xor_into(dst.data(), src.data(), n);
  EXPECT_EQ(dst, expect);
}

TEST_P(XorSizes, XorAssign) {
  const size_t n = GetParam();
  Pcg32 rng(n + 2);
  auto a = random_bytes(rng, n);
  auto b = random_bytes(rng, n);
  std::vector<uint8_t> dst(n, 0xCC);
  xor_assign(dst.data(), a.data(), b.data(), n);
  for (size_t i = 0; i < n; ++i)
    ASSERT_EQ(dst[i], static_cast<uint8_t>(a[i] ^ b[i]));
}

TEST_P(XorSizes, Xor2Into) {
  const size_t n = GetParam();
  Pcg32 rng(n + 3);
  auto dst = random_bytes(rng, n);
  auto a = random_bytes(rng, n);
  auto b = random_bytes(rng, n);
  auto expect = dst;
  for (size_t i = 0; i < n; ++i)
    expect[i] ^= static_cast<uint8_t>(a[i] ^ b[i]);
  xor2_into(dst.data(), a.data(), b.data(), n);
  EXPECT_EQ(dst, expect);
}

TEST_P(XorSizes, Xor4Into) {
  const size_t n = GetParam();
  Pcg32 rng(n + 4);
  auto dst = random_bytes(rng, n);
  auto a = random_bytes(rng, n);
  auto b = random_bytes(rng, n);
  auto c = random_bytes(rng, n);
  auto d = random_bytes(rng, n);
  auto expect = dst;
  for (size_t i = 0; i < n; ++i)
    expect[i] ^= static_cast<uint8_t>(a[i] ^ b[i] ^ c[i] ^ d[i]);
  xor4_into(dst.data(), a.data(), b.data(), c.data(), d.data(), n);
  EXPECT_EQ(dst, expect);
}

class XorManyCount : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Counts, XorManyCount,
                         ::testing::Range(1, 14));  // crosses 4/2/1 grouping

TEST_P(XorManyCount, MatchesNaiveForEverySourceCount) {
  const int nsrc = GetParam();
  const size_t len = 257;
  Pcg32 rng(static_cast<uint64_t>(nsrc));
  std::vector<std::vector<uint8_t>> srcs;
  std::vector<const uint8_t*> ptrs;
  for (int i = 0; i < nsrc; ++i) {
    srcs.push_back(random_bytes(rng, len));
    ptrs.push_back(srcs.back().data());
  }
  std::vector<uint8_t> expect(len, 0);
  for (const auto& s : srcs) {
    for (size_t i = 0; i < len; ++i) expect[i] ^= s[i];
  }
  std::vector<uint8_t> dst(len, 0x55);  // must be fully overwritten
  xor_many(dst.data(), ptrs, len);
  EXPECT_EQ(dst, expect);
}

TEST(XorMany, RejectsEmptySourceList) {
  uint8_t d = 0;
  std::vector<const uint8_t*> none;
  EXPECT_THROW(xor_many(&d, none, 1), std::logic_error);
}

TEST(XorProperties, SelfInverse) {
  Pcg32 rng(9);
  auto a = random_bytes(rng, 333);
  auto b = random_bytes(rng, 333);
  auto orig = a;
  xor_into(a.data(), b.data(), a.size());
  xor_into(a.data(), b.data(), a.size());
  EXPECT_EQ(a, orig);
}

TEST(XorProperties, IsZeroDetectsSingleBit) {
  std::vector<uint8_t> z(129, 0);
  EXPECT_TRUE(is_zero(z.data(), z.size()));
  for (size_t pos : {0u, 7u, 8u, 64u, 127u, 128u}) {
    z[pos] = 1;
    EXPECT_FALSE(is_zero(z.data(), z.size())) << pos;
    z[pos] = 0;
  }
}

// The kernels go through memcpy-based word loads, so they must be correct
// (and sanitizer-clean) for any combination of pointer misalignment and
// lengths that are not multiples of the word size. Offsets 0..7 for dst
// and sources cover every relative alignment of the 8-byte loop.
class XorMisalignment
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

INSTANTIATE_TEST_SUITE_P(Offsets, XorMisalignment,
                         ::testing::Combine(::testing::Range<size_t>(0, 8),
                                            ::testing::Range<size_t>(0, 8)));

// Lengths straddle the unrolled loop (32), the word loop (8), and the
// byte tail, none of them multiples of 8.
constexpr size_t kOddLengths[] = {1, 3, 5, 7, 9, 13, 29, 31, 63, 65, 100, 257};

TEST_P(XorMisalignment, FusedKernelsMatchNaive) {
  const auto [dst_off, src_off] = GetParam();
  Pcg32 rng(dst_off * 8 + src_off + 1);
  for (size_t len : kOddLengths) {
    const size_t span = len + 8;  // room for the offset
    // Five source regions, each misaligned by src_off from a 64-byte
    // aligned base, plus a dst region misaligned by dst_off.
    AlignedBuffer dst_mem(span), naive_mem(span);
    std::vector<AlignedBuffer> src_mem;
    std::vector<const uint8_t*> srcs;
    for (int s = 0; s < 5; ++s) {
      src_mem.emplace_back(span);
      rng.fill_bytes(src_mem.back().data(), span);
      srcs.push_back(src_mem.back().data() + src_off);
    }
    rng.fill_bytes(dst_mem.data(), span);
    std::memcpy(naive_mem.data(), dst_mem.data(), span);
    uint8_t* dst = dst_mem.data() + dst_off;
    uint8_t* naive = naive_mem.data() + dst_off;

    // xor_into
    xor_into(dst, srcs[0], len);
    xor_into_naive(naive, srcs[0], len);
    ASSERT_EQ(0, std::memcmp(dst, naive, len))
        << "xor_into len=" << len << " dst_off=" << dst_off
        << " src_off=" << src_off;

    // xor2_into
    xor2_into(dst, srcs[1], srcs[2], len);
    xor_into_naive(naive, srcs[1], len);
    xor_into_naive(naive, srcs[2], len);
    ASSERT_EQ(0, std::memcmp(dst, naive, len)) << "xor2_into len=" << len;

    // xor4_into
    xor4_into(dst, srcs[1], srcs[2], srcs[3], srcs[4], len);
    for (int s = 1; s <= 4; ++s) xor_into_naive(naive, srcs[s], len);
    ASSERT_EQ(0, std::memcmp(dst, naive, len)) << "xor4_into len=" << len;

    // xor_assign
    xor_assign(dst, srcs[0], srcs[3], len);
    for (size_t i = 0; i < len; ++i) {
      naive[i] = static_cast<uint8_t>(srcs[0][i] ^ srcs[3][i]);
    }
    ASSERT_EQ(0, std::memcmp(dst, naive, len)) << "xor_assign len=" << len;

    // xor_many across the 4/2/1 grouping boundaries.
    for (size_t nsrc : {1u, 2u, 3u, 4u, 5u}) {
      std::span<const uint8_t* const> some(srcs.data(), nsrc);
      xor_many(dst, some, len);
      std::memset(naive, 0, len);
      for (size_t s = 0; s < nsrc; ++s) xor_into_naive(naive, srcs[s], len);
      ASSERT_EQ(0, std::memcmp(dst, naive, len))
          << "xor_many nsrc=" << nsrc << " len=" << len;
    }

    // is_zero must not over-read past a misaligned region.
    std::memset(dst, 0, len);
    ASSERT_TRUE(is_zero(dst, len));
    dst[len - 1] = 1;
    ASSERT_FALSE(is_zero(dst, len));
  }
}

TEST(XorProperties, WorksOnAlignedBuffers) {
  AlignedBuffer a(4096), b(4096);
  Pcg32 rng(11);
  rng.fill_bytes(a.data(), a.size());
  rng.fill_bytes(b.data(), b.size());
  AlignedBuffer c(4096);
  xor_assign(c.data(), a.data(), b.data(), 4096);
  xor_into(c.data(), a.data(), 4096);
  EXPECT_EQ(0, std::memcmp(c.data(), b.data(), 4096));
}

}  // namespace
}  // namespace dcode::xorops

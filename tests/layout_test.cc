// Structural tests for every code layout: geometry, parity distribution,
// update complexity, XOR-count optimality, and — for D-Code — the paper's
// worked n=7 examples, the equivalence of the closed-form and procedural
// constructions, and Theorem 1 (D-Code is a per-column reordering of
// X-Code).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "codes/dcode.h"
#include "codes/encoder.h"
#include "codes/pcode.h"
#include "codes/registry.h"
#include "codes/xcode.h"
#include "util/modmath.h"
#include "util/rng.h"

namespace dcode::codes {
namespace {

using Param = std::tuple<std::string, int>;  // code name, prime

class LayoutStructure : public ::testing::TestWithParam<Param> {
 protected:
  std::unique_ptr<CodeLayout> layout_ = make_layout(std::get<0>(GetParam()),
                                                    std::get<1>(GetParam()));
};

INSTANTIATE_TEST_SUITE_P(
    AllCodes, LayoutStructure,
    ::testing::Combine(::testing::Values("dcode", "xcode", "rdp", "evenodd",
                                         "hcode", "hdp", "pcode", "liberation"),
                       ::testing::Values(5, 7, 11, 13, 17)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(LayoutStructure, GeometryMatchesFamilyDefinition) {
  const auto& [name, p] = GetParam();
  const CodeLayout& l = *layout_;
  EXPECT_EQ(l.prime(), p);
  if (name == "dcode" || name == "xcode") {
    EXPECT_EQ(l.rows(), p);
    EXPECT_EQ(l.cols(), p);
    EXPECT_EQ(l.data_count(), p * (p - 2));
  } else if (name == "rdp") {
    EXPECT_EQ(l.rows(), p - 1);
    EXPECT_EQ(l.cols(), p + 1);
    EXPECT_EQ(l.data_count(), (p - 1) * (p - 1));
  } else if (name == "evenodd") {
    EXPECT_EQ(l.rows(), p - 1);
    EXPECT_EQ(l.cols(), p + 2);
    EXPECT_EQ(l.data_count(), p * (p - 1));
  } else if (name == "hcode") {
    EXPECT_EQ(l.rows(), p - 1);
    EXPECT_EQ(l.cols(), p + 1);
    EXPECT_EQ(l.data_count(), (p - 1) * (p - 1));
  } else if (name == "hdp") {
    EXPECT_EQ(l.rows(), p - 1);
    EXPECT_EQ(l.cols(), p - 1);
    EXPECT_EQ(l.data_count(), (p - 1) * (p - 3));
  } else if (name == "pcode") {
    EXPECT_EQ(l.rows(), (p - 1) / 2);
    EXPECT_EQ(l.cols(), p - 1);
    EXPECT_EQ(l.data_count(), (p - 1) * (p - 3) / 2);
  } else if (name == "liberation") {
    EXPECT_EQ(l.rows(), p);
    EXPECT_EQ(l.cols(), p + 2);
    EXPECT_EQ(l.data_count(), p * p);
  }
}

TEST_P(LayoutStructure, EveryCellAccountedFor) {
  const CodeLayout& l = *layout_;
  int data = 0, parity = 0;
  for (int r = 0; r < l.rows(); ++r) {
    for (int c = 0; c < l.cols(); ++c) {
      if (l.is_parity(r, c)) {
        ++parity;
        EXPECT_GE(l.equation_of_parity(r, c), 0);
        EXPECT_EQ(l.data_index(r, c), -1);
      } else {
        ++data;
        EXPECT_EQ(l.equation_of_parity(r, c), -1);
        EXPECT_GE(l.data_index(r, c), 0);
      }
    }
  }
  EXPECT_EQ(data, l.data_count());
  EXPECT_EQ(parity, l.parity_count());
  EXPECT_EQ(data + parity, l.rows() * l.cols());
}

TEST_P(LayoutStructure, DataIndexRoundTrip) {
  const CodeLayout& l = *layout_;
  for (int i = 0; i < l.data_count(); ++i) {
    Element e = l.data_element(i);
    EXPECT_EQ(l.data_index(e.row, e.col), i);
    EXPECT_EQ(l.kind(e.row, e.col), ElementKind::kData);
  }
  // Row-major: logical order is sorted by (row, col).
  for (int i = 1; i < l.data_count(); ++i) {
    EXPECT_LT(l.data_element(i - 1), l.data_element(i));
  }
}

TEST_P(LayoutStructure, EquationsWellFormed) {
  const auto& [name, p] = GetParam();
  const CodeLayout& l = *layout_;
  for (const Equation& q : l.equations()) {
    EXPECT_TRUE(l.is_parity(q.parity.row, q.parity.col));
    std::set<Element> seen;
    std::set<int> cols;
    for (const Element& e : q.sources) {
      EXPECT_TRUE(seen.insert(e).second) << "duplicate source";
      EXPECT_NE(e, q.parity);
      cols.insert(e.col);
    }
    if (name != "evenodd" && name != "liberation") {
      // One member per disk: any single disk failure leaves the equation
      // with at most one unknown. (EVENODD's S-coupling and liberation's
      // extra bits legitimately revisit a disk.)
      EXPECT_EQ(cols.size(), q.sources.size())
          << name << " equation crosses a disk twice";
    }
  }
}

TEST_P(LayoutStructure, ParityDistributionMatchesFamily) {
  const auto& [name, p] = GetParam();
  const CodeLayout& l = *layout_;
  std::vector<int> per_disk(static_cast<size_t>(l.cols()));
  for (int d = 0; d < l.cols(); ++d) per_disk[static_cast<size_t>(d)] = l.parity_elements_on_disk(d);

  if (name == "dcode" || name == "xcode" || name == "hdp") {
    // Perfectly even: the vertical well-balanced codes.
    for (int d = 0; d < l.cols(); ++d) EXPECT_EQ(per_disk[static_cast<size_t>(d)], 2);
  } else if (name == "rdp" || name == "evenodd" || name == "liberation") {
    // Two dedicated parity disks, the rest pure data.
    int dedicated = 0;
    for (int d = 0; d < l.cols(); ++d) {
      if (per_disk[static_cast<size_t>(d)] == l.rows()) {
        ++dedicated;
      } else {
        EXPECT_EQ(per_disk[static_cast<size_t>(d)], 0);
      }
    }
    EXPECT_EQ(dedicated, 2);
  } else if (name == "hcode") {
    // One dedicated horizontal disk; anti-diagonal parities on disks
    // 1..p-1 (one each); disk 0 pure data.
    EXPECT_EQ(per_disk[static_cast<size_t>(l.cols() - 1)], l.rows());
    EXPECT_EQ(per_disk[0], 0);
    for (int d = 1; d < l.cols() - 1; ++d) EXPECT_EQ(per_disk[static_cast<size_t>(d)], 1);
  } else if (name == "pcode") {
    // One parity per disk, all in row 0.
    for (int d = 0; d < l.cols(); ++d) {
      EXPECT_EQ(per_disk[static_cast<size_t>(d)], 1);
      EXPECT_TRUE(l.is_parity(0, d));
    }
  }
}

TEST_P(LayoutStructure, UpdateComplexity) {
  const auto& [name, p] = GetParam();
  const CodeLayout& l = *layout_;
  // Membership count per data element == number of parities a data update
  // must touch directly.
  int min_m = 1 << 30, max_m = 0;
  int64_t total = 0;
  for (int i = 0; i < l.data_count(); ++i) {
    Element e = l.data_element(i);
    int m = static_cast<int>(l.equations_containing(e.row, e.col).size());
    min_m = std::min(min_m, m);
    max_m = std::max(max_m, m);
    total += m;
  }
  if (name == "dcode" || name == "xcode" || name == "hcode" ||
      name == "hdp" || name == "pcode") {
    // Optimal: exactly two parities per data element.
    EXPECT_EQ(min_m, 2);
    EXPECT_EQ(max_m, 2);
  } else if (name == "rdp") {
    // Elements on the missing diagonal have only their row parity.
    EXPECT_EQ(min_m, 1);
    EXPECT_EQ(max_m, 2);
  } else if (name == "evenodd") {
    // S-diagonal elements sit in every diagonal equation.
    EXPECT_EQ(min_m, 2);
    EXPECT_EQ(max_m, 1 + (p - 1));
  } else if (name == "liberation") {
    // Minimum density: p-1 data bits carry one extra Q membership.
    EXPECT_EQ(min_m, 2);
    EXPECT_EQ(max_m, 3);
    EXPECT_EQ(total, static_cast<int64_t>(2) * l.data_count() + (p - 1));
  }
}

TEST_P(LayoutStructure, EncodeXorCountMatchesTheory) {
  const auto& [name, p] = GetParam();
  const CodeLayout& l = *layout_;
  size_t xors = encode_xor_count(l);
  if (name == "dcode" || name == "xcode") {
    // Paper §III-D: 2n(n-3) XORs per stripe -> 2 - 2/(n-2) per element.
    EXPECT_EQ(xors, static_cast<size_t>(2 * p * (p - 3)));
    double per_element = static_cast<double>(xors) / l.data_count();
    EXPECT_NEAR(per_element, 2.0 - 2.0 / (p - 2), 1e-12);
  } else if (name == "rdp") {
    // RDP is XOR-optimal too: 2(p-1)(p-2) per stripe.
    EXPECT_EQ(xors, static_cast<size_t>(2 * (p - 1) * (p - 2)));
    double per_element = static_cast<double>(xors) / l.data_count();
    EXPECT_NEAR(per_element, 2.0 - 2.0 / (p - 1), 1e-12);
  }
}

TEST_P(LayoutStructure, EncodeOrderIsTopological) {
  const CodeLayout& l = *layout_;
  std::set<Element> computed;
  const auto& order = l.encode_order();
  EXPECT_EQ(order.size(), l.equations().size());
  for (int qi : order) {
    const Equation& q = l.equations()[static_cast<size_t>(qi)];
    for (const Element& e : q.sources) {
      if (l.is_parity(e.row, e.col)) {
        EXPECT_TRUE(computed.count(e))
            << "equation " << qi << " reads an uncomputed parity";
      }
    }
    computed.insert(q.parity);
  }
}

TEST_P(LayoutStructure, ElementsOnDisk) {
  const CodeLayout& l = *layout_;
  auto elems = l.elements_on_disk(0);
  ASSERT_EQ(static_cast<int>(elems.size()), l.rows());
  for (int r = 0; r < l.rows(); ++r) {
    EXPECT_EQ(elems[static_cast<size_t>(r)], make_element(r, 0));
  }
}

// ---------- construction validation ----------

TEST(LayoutValidation, PCodePairingStructure) {
  // The defining property of P-Code: data cells are exactly the pairs
  // {i, j} with i + j == column-label (mod p), each pair appearing once,
  // and each data element is a member of precisely the two parity groups
  // named by its pair.
  for (int p : {5, 7, 11, 13}) {
    PCodeLayout l(p);
    std::set<std::pair<int, int>> seen;
    for (int i = 0; i < l.data_count(); ++i) {
      Element e = l.data_element(i);
      auto pr = l.pair_of(e.row, e.col);
      EXPECT_LT(pr.first, pr.second);
      EXPECT_GE(pr.first, 1);
      EXPECT_LE(pr.second, p - 1);
      EXPECT_TRUE(seen.insert(pr).second) << "duplicate pair";
      EXPECT_EQ(pmod(pr.first + pr.second, p), e.col + 1);
      auto eqs = l.equations_containing(e.row, e.col);
      std::set<int> got(eqs.begin(), eqs.end());
      std::set<int> want = {pr.first - 1, pr.second - 1};
      EXPECT_EQ(got, want);
    }
    EXPECT_EQ(seen.size(),
              static_cast<size_t>((p - 1) * (p - 3) / 2));
  }
}

TEST(LayoutValidation, NonPrimeRejected) {
  for (const auto& name : all_code_names()) {
    EXPECT_THROW((void)make_layout(name, 9), std::logic_error) << name;
    EXPECT_THROW((void)make_layout(name, 15), std::logic_error) << name;
  }
}

TEST(LayoutValidation, TooSmallRejected) {
  EXPECT_THROW(DCodeLayout(3), std::logic_error);
  EXPECT_THROW(DCodeLayout(2), std::logic_error);
  EXPECT_THROW(XCodeLayout(3), std::logic_error);
}

TEST(LayoutValidation, UnknownNameRejected) {
  EXPECT_THROW((void)make_layout("raid5", 7), std::logic_error);
}

TEST(LayoutValidation, RegistryCoversAllNamesAndIds) {
  for (const auto& name : all_code_names()) {
    auto l = make_layout(name, 7);
    EXPECT_EQ(l->name(), name);
  }
  for (CodeId id : {CodeId::kDCode, CodeId::kXCode, CodeId::kRdp,
                    CodeId::kEvenOdd, CodeId::kHCode, CodeId::kHdp}) {
    EXPECT_NE(make_layout(id, 7), nullptr);
  }
  EXPECT_EQ(paper_comparison_codes().size(), 5u);
}

// ---------- D-Code paper examples (n = 7) ----------

TEST(DCodePaper, HorizontalExampleP51) {
  // §III-A: P[5][1] = D[1][3] ^ D[1][4] ^ D[1][5] ^ D[1][6] ^ D[2][0].
  DCodeLayout l(7);
  const Equation& q = l.equations()[1];  // horizontal equation of column 1
  EXPECT_EQ(q.parity, make_element(5, 1));
  std::set<Element> want = {make_element(1, 3), make_element(1, 4),
                            make_element(1, 5), make_element(1, 6),
                            make_element(2, 0)};
  EXPECT_EQ(std::set<Element>(q.sources.begin(), q.sources.end()), want);
}

TEST(DCodePaper, DeploymentExampleP62) {
  // §III-A: P[6][2] = D[0][0] ^ D[0][6] ^ D[1][5] ^ D[2][4] ^ D[3][3].
  DCodeLayout l(7);
  const Equation& q = l.equations()[7 + 2];  // deployment equation, col 2
  EXPECT_EQ(q.parity, make_element(6, 2));
  std::set<Element> want = {make_element(0, 0), make_element(0, 6),
                            make_element(1, 5), make_element(2, 4),
                            make_element(3, 3)};
  EXPECT_EQ(std::set<Element>(q.sources.begin(), q.sources.end()), want);
}

TEST(DCodePaper, HorizontalGroupsAreConsecutiveRowMajorChunks) {
  // Group 2 of n=7 must be the 10th..14th row-major data elements.
  auto groups = DCodeLayout::horizontal_groups(7);
  ASSERT_EQ(groups.size(), 7u);
  std::vector<Element> want = {make_element(1, 3), make_element(1, 4),
                               make_element(1, 5), make_element(1, 6),
                               make_element(2, 0)};
  EXPECT_EQ(groups[2], want);
  EXPECT_EQ(DCodeLayout::horizontal_parity_col(7, 2), 1);
}

TEST(DCodePaper, DeploymentWalkMatchesFigure) {
  // Letter 'A' (group 0): D00, D06, D15, D24, D33 -> parity column 2.
  auto groups = DCodeLayout::deployment_groups(7);
  ASSERT_EQ(groups.size(), 7u);
  std::vector<Element> want = {make_element(0, 0), make_element(0, 6),
                               make_element(1, 5), make_element(2, 4),
                               make_element(3, 3)};
  EXPECT_EQ(groups[0], want);
  EXPECT_EQ(DCodeLayout::deployment_parity_col(7, 0), 2);
  // Letter 'B' (group 1): D42, D01, D10, D16, D25 -> parity column 4.
  std::vector<Element> want_b = {make_element(4, 2), make_element(0, 1),
                                 make_element(1, 0), make_element(1, 6),
                                 make_element(2, 5)};
  EXPECT_EQ(groups[1], want_b);
  EXPECT_EQ(DCodeLayout::deployment_parity_col(7, 1), 4);
}

class DCodeConstructions : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Primes, DCodeConstructions,
                         ::testing::Values(5, 7, 11, 13, 17, 19));

TEST_P(DCodeConstructions, ProceduralEqualsClosedForm) {
  const int n = GetParam();
  DCodeLayout l(n);
  auto hg = DCodeLayout::horizontal_groups(n);
  auto dg = DCodeLayout::deployment_groups(n);

  for (int g = 0; g < n; ++g) {
    int hc = DCodeLayout::horizontal_parity_col(n, g);
    const Equation& hq = l.equations()[static_cast<size_t>(hc)];
    EXPECT_EQ(std::set<Element>(hq.sources.begin(), hq.sources.end()),
              std::set<Element>(hg[static_cast<size_t>(g)].begin(),
                                hg[static_cast<size_t>(g)].end()))
        << "horizontal group " << g;

    int dc = DCodeLayout::deployment_parity_col(n, g);
    const Equation& dq = l.equations()[static_cast<size_t>(n + dc)];
    EXPECT_EQ(std::set<Element>(dq.sources.begin(), dq.sources.end()),
              std::set<Element>(dg[static_cast<size_t>(g)].begin(),
                                dg[static_cast<size_t>(g)].end()))
        << "deployment group " << g;
  }
}

TEST_P(DCodeConstructions, WalksCoverEveryDataElementOnce) {
  const int n = GetParam();
  for (auto groups :
       {DCodeLayout::horizontal_groups(n), DCodeLayout::deployment_groups(n)}) {
    std::set<Element> seen;
    size_t total = 0;
    for (const auto& g : groups) {
      EXPECT_EQ(static_cast<int>(g.size()), n - 2);
      for (const Element& e : g) {
        EXPECT_TRUE(seen.insert(e).second) << "element visited twice";
        EXPECT_LE(e.row, n - 3);
      }
      total += g.size();
    }
    EXPECT_EQ(total, static_cast<size_t>(n * (n - 2)));
  }
}

TEST_P(DCodeConstructions, HorizontalGroupsCoverConsecutiveLogicalElements) {
  // The property that drives low partial-write cost: each horizontal
  // parity covers exactly n-2 *consecutive* elements of the logical
  // stream.
  const int n = GetParam();
  DCodeLayout l(n);
  for (int g = 0; g < n; ++g) {
    int col = DCodeLayout::horizontal_parity_col(n, g);
    const Equation& q = l.equations()[static_cast<size_t>(col)];
    std::vector<int> ids;
    for (const Element& e : q.sources) ids.push_back(l.data_index(e.row, e.col));
    std::sort(ids.begin(), ids.end());
    for (size_t i = 1; i < ids.size(); ++i) {
      EXPECT_EQ(ids[i], ids[i - 1] + 1) << "group " << g << " not contiguous";
    }
    EXPECT_EQ(ids.front(), g * (n - 2));
  }
}

TEST_P(DCodeConstructions, Theorem1ColumnReorderingOfXCode) {
  // Paper Theorem 1: relabeling X-Code's data element (i, j) to row
  // ((n-3)/2 * (j - i)) mod (n-2) (same column) yields D-Code, parity rows
  // unchanged. Encode the same logical content through both and compare
  // parities.
  const int n = GetParam();
  DCodeLayout dl(n);
  XCodeLayout xl(n);
  Pcg32 rng(static_cast<uint64_t>(n));
  const size_t esize = 24;

  Stripe xs(xl, esize);
  xs.randomize_data(rng);
  encode_stripe(xs);

  Stripe ds(dl, esize);
  const int half = (n - 3) / 2;
  for (int i = 0; i <= n - 3; ++i) {
    for (int j = 0; j < n; ++j) {
      int di = pmod(static_cast<int64_t>(half) * (j - i), n - 2);
      std::memcpy(ds.at(di, j), xs.at(i, j), esize);
    }
  }
  encode_stripe(ds);

  for (int c = 0; c < n; ++c) {
    EXPECT_EQ(0, std::memcmp(ds.at(n - 2, c), xs.at(n - 2, c), esize))
        << "horizontal/diagonal parity mismatch at column " << c;
    EXPECT_EQ(0, std::memcmp(ds.at(n - 1, c), xs.at(n - 1, c), esize))
        << "deployment/anti-diagonal parity mismatch at column " << c;
  }
}

}  // namespace
}  // namespace dcode::codes

// HealthMonitor unit tests: the deterministic state machine that decides
// when a noisy disk becomes a dead one, plus the array-level wiring that
// escalates engine retry exhaustion through it.
#include <gtest/gtest.h>

#include <vector>

#include "obs/metrics.h"
#include "raid/health_monitor.h"

namespace dcode::raid {
namespace {

TEST(HealthMonitor, StartsHealthyEverywhere) {
  obs::Registry reg;
  HealthMonitor mon(5, {}, reg);
  EXPECT_EQ(mon.disk_count(), 5);
  for (int d = 0; d < 5; ++d) {
    EXPECT_EQ(mon.state(d), DiskHealth::kHealthy);
    EXPECT_EQ(reg.gauge("raid.disk.health", {{"disk", std::to_string(d)}})
                  .value(),
              0);
  }
}

TEST(HealthMonitor, TransientBudgetWalksHealthySuspectFailed) {
  obs::Registry reg;
  HealthPolicy policy;
  policy.suspect_transients = 3;
  policy.fail_transients = 6;
  HealthMonitor mon(3, policy, reg);
  std::vector<int> escalated;
  mon.set_escalation_callback([&](int d) { escalated.push_back(d); });

  mon.record_transient(1);
  mon.record_transient(1);
  EXPECT_EQ(mon.state(1), DiskHealth::kHealthy);
  mon.record_transient(1);
  EXPECT_EQ(mon.state(1), DiskHealth::kSuspect);
  EXPECT_EQ(reg.counter("raid.health.suspects").value(), 1);
  EXPECT_TRUE(escalated.empty());

  mon.record_transient(1);
  mon.record_transient(1);
  mon.record_transient(1);
  EXPECT_EQ(mon.state(1), DiskHealth::kFailed);
  EXPECT_EQ(escalated, std::vector<int>({1}));
  EXPECT_EQ(reg.counter("raid.health.escalations").value(), 1);
  // Further noise on a failed disk is not a new episode.
  mon.record_transient(1);
  EXPECT_EQ(escalated.size(), 1u);
  // Other disks are unaffected.
  EXPECT_EQ(mon.state(0), DiskHealth::kHealthy);
  EXPECT_EQ(reg.gauge("raid.disk.health", {{"disk", "1"}}).value(), 2);
}

TEST(HealthMonitor, WindowDecayForgivesOldTransients) {
  obs::Registry reg;
  HealthPolicy policy;
  policy.window_ops = 8;
  policy.suspect_transients = 4;
  policy.fail_transients = 0;  // never fail on transients here
  HealthMonitor mon(1, policy, reg);

  mon.record_transient(0);
  mon.record_transient(0);
  mon.record_transient(0);
  EXPECT_EQ(mon.state(0), DiskHealth::kHealthy);
  EXPECT_EQ(mon.transients_in_window(0), 3);
  // Clean traffic fills the window and halves the tally: the burst fades
  // instead of accumulating toward suspect forever.
  for (int i = 0; i < 8; ++i) mon.record_success(0, 1'000);
  EXPECT_LT(mon.transients_in_window(0), 3);
  mon.record_transient(0);
  EXPECT_EQ(mon.state(0), DiskHealth::kHealthy);
}

TEST(HealthMonitor, SlowOpsEscalateWhenLatencyTrackingEnabled) {
  obs::Registry reg;
  HealthPolicy policy;
  policy.slow_op_ns = 1'000'000;
  policy.suspect_slow_ops = 2;
  policy.fail_slow_ops = 4;
  HealthMonitor mon(2, policy, reg);
  int fired = 0;
  mon.set_escalation_callback([&](int) { ++fired; });

  mon.record_success(0, 500);  // fast: not slow
  EXPECT_EQ(mon.slow_ops_in_window(0), 0);
  mon.record_success(0, 2'000'000);
  mon.record_success(0, 2'000'000);
  EXPECT_EQ(mon.state(0), DiskHealth::kSuspect);
  mon.record_success(0, 2'000'000);
  mon.record_success(0, 2'000'000);
  EXPECT_EQ(mon.state(0), DiskHealth::kFailed);
  EXPECT_EQ(fired, 1);
}

TEST(HealthMonitor, FailStopFiresOncePerEpisodeAndRecoveryOpensANewOne) {
  obs::Registry reg;
  HealthMonitor mon(2, {}, reg);
  int fired = 0;
  mon.set_escalation_callback([&](int) { ++fired; });

  mon.report_fail_stop(0);
  mon.report_fail_stop(0);  // same episode
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(mon.state(0), DiskHealth::kFailed);

  mon.mark_rebuilding(0);
  EXPECT_EQ(mon.state(0), DiskHealth::kRebuilding);
  // A rebuilding disk does not re-escalate on stale transient noise.
  mon.record_transient(0);
  EXPECT_EQ(fired, 1);

  mon.mark_healthy(0);
  EXPECT_EQ(mon.state(0), DiskHealth::kHealthy);
  EXPECT_EQ(reg.counter("raid.health.recoveries").value(), 1);
  EXPECT_EQ(mon.transients_in_window(0), 0);

  mon.report_fail_stop(0);  // new episode after recovery
  EXPECT_EQ(fired, 2);
}

TEST(HealthMonitor, EscalationCallbackMayReenterTheMonitor) {
  // The array's callback promotes a spare and calls mark_rebuilding from
  // inside the escalation — must not deadlock on the per-disk lock.
  obs::Registry reg;
  HealthMonitor mon(1, {}, reg);
  mon.set_escalation_callback([&](int d) { mon.mark_rebuilding(d); });
  mon.report_fail_stop(0);
  EXPECT_EQ(mon.state(0), DiskHealth::kRebuilding);
}

}  // namespace
}  // namespace dcode::raid
